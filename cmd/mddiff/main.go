// Command mddiff compares the scheduling constraints of two machine
// descriptions: it computes both forbidden-latency matrices and reports
// every constraint added or removed, matching operations by name.
//
// This is the co-design workflow the paper motivates ("high performance
// compilers are often developed in parallel with micro-architecture
// development during which resource requirements often change"): after a
// hardware revision, mddiff shows exactly which initiation intervals
// became legal or illegal, and whether a hand-edited description drifted
// from the hardware-shaped one.
//
// Usage:
//
//	mddiff old.mdl new.mdl
//	mddiff -machine mips new.mdl     # builtin vs file
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro"
	"repro/internal/forbidden"
	"repro/internal/resmodel"
)

func main() {
	builtin := flag.String("machine", "", "compare a built-in machine (left side) against the file")
	flag.Parse()

	var left, right *repro.Machine
	var err error
	args := flag.Args()
	switch {
	case *builtin != "" && len(args) == 1:
		left = repro.BuiltinMachine(*builtin)
		if left == nil {
			fail("unknown machine %q", *builtin)
		}
		right, err = loadFile(args[0])
	case len(args) == 2:
		if left, err = loadFile(args[0]); err == nil {
			right, err = loadFile(args[1])
		}
	default:
		fail("usage: mddiff [-machine NAME] old.mdl [new.mdl]")
	}
	if err != nil {
		fail("%v", err)
	}

	added, removed, common, onlyL, onlyR := diff(left, right)
	fmt.Printf("left:  %q (%d resources, %d ops)\n", left.Name, len(left.Resources), len(left.Ops))
	fmt.Printf("right: %q (%d resources, %d ops)\n", right.Name, len(right.Resources), len(right.Ops))
	if len(onlyL) > 0 {
		fmt.Printf("operations only in left:  %v\n", onlyL)
	}
	if len(onlyR) > 0 {
		fmt.Printf("operations only in right: %v\n", onlyR)
	}
	fmt.Printf("common operations: %d\n\n", common)

	if len(added) == 0 && len(removed) == 0 {
		fmt.Println("scheduling constraints are IDENTICAL on the common operations:")
		fmt.Println("every contention query answers the same on both descriptions.")
		return
	}
	if len(removed) > 0 {
		fmt.Printf("constraints REMOVED by right (%d) — schedules may get tighter:\n", len(removed))
		printConstraints(removed)
	}
	if len(added) > 0 {
		fmt.Printf("constraints ADDED by right (%d) — existing schedules may break:\n", len(added))
		printConstraints(added)
	}
	os.Exit(1)
}

type constraint struct {
	x, y string
	f    int
}

func diff(left, right *repro.Machine) (added, removed []constraint, common int, onlyL, onlyR []string) {
	le, re := left.Expand(), right.Expand()
	lm, rm := forbidden.Compute(le), forbidden.Compute(re)

	rIdx := map[string]int{}
	for i, o := range re.Ops {
		rIdx[o.Name] = i
	}
	lNames := map[string]bool{}
	for _, o := range le.Ops {
		lNames[o.Name] = true
		if _, ok := rIdx[o.Name]; !ok {
			onlyL = append(onlyL, o.Name)
		}
	}
	for _, o := range re.Ops {
		if !lNames[o.Name] {
			onlyR = append(onlyR, o.Name)
		}
	}

	collect := func(m *forbidden.Matrix, e *resmodel.Expanded, x, y int) map[int]bool {
		out := map[int]bool{}
		m.Set(x, y).ForEach(func(f int) bool {
			if f >= 0 {
				out[f] = true
			}
			return true
		})
		return out
	}
	for lx, ox := range le.Ops {
		rx, okx := rIdx[ox.Name]
		if !okx {
			continue
		}
		for ly, oy := range le.Ops {
			ry, oky := rIdx[oy.Name]
			if !oky {
				continue
			}
			ls := collect(lm, le, lx, ly)
			rs := collect(rm, re, rx, ry)
			for f := range ls {
				if !rs[f] {
					removed = append(removed, constraint{ox.Name, oy.Name, f})
				}
			}
			for f := range rs {
				if !ls[f] {
					added = append(added, constraint{ox.Name, oy.Name, f})
				}
			}
		}
		common++
	}
	sortConstraints(added)
	sortConstraints(removed)
	return
}

func sortConstraints(cs []constraint) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].x != cs[j].x {
			return cs[i].x < cs[j].x
		}
		if cs[i].y != cs[j].y {
			return cs[i].y < cs[j].y
		}
		return cs[i].f < cs[j].f
	})
}

func printConstraints(cs []constraint) {
	const max = 40
	for i, c := range cs {
		if i == max {
			fmt.Printf("  ... and %d more\n", len(cs)-max)
			break
		}
		fmt.Printf("  %s cannot issue %d cycle(s) after %s\n", c.x, c.f, c.y)
	}
}

func loadFile(path string) (*repro.Machine, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return repro.ParseMachine(string(src))
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "mddiff: "+format+"\n", args...)
	os.Exit(2)
}
