// Command mdinfo inspects a machine description: operation classes, the
// forbidden-latency matrix, reservation tables, and the generating set of
// maximal resources.
//
// Usage:
//
//	mdinfo -machine mips -classes -matrix
//	mdinfo -file mymachine.mdl -tables
//	mdinfo -machine example -genset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/forbidden"
	"repro/internal/resmodel"
)

func main() {
	var (
		file     = flag.String("file", "", "machine description file (.mdl)")
		machine  = flag.String("machine", "", "built-in machine: "+strings.Join(repro.BuiltinMachines(), ", "))
		classes  = flag.Bool("classes", false, "print operation classes")
		matrix   = flag.Bool("matrix", false, "print the forbidden-latency matrix")
		tablesF  = flag.Bool("tables", false, "print reservation tables")
		genset   = flag.Bool("genset", false, "print the pruned generating set of maximal resources")
		lint     = flag.Bool("lint", false, "print advisory warnings about the description")
		allFlags = flag.Bool("all", false, "print everything")
	)
	flag.Parse()

	m, err := load(*file, *machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdinfo:", err)
		os.Exit(1)
	}
	e := m.Expand()
	mat := forbidden.Compute(e)
	cls := mat.ComputeClasses()

	fmt.Printf("machine %q: %d resources, %d operations (%d expanded), %d classes, %d forbidden latencies (max %d)\n",
		m.Name, len(m.Resources), len(m.Ops), len(e.Ops), cls.NumClasses(),
		mat.Collapse(cls).NonnegCount(), mat.MaxLatency())

	if *classes || *allFlags {
		fmt.Println("\noperation classes:")
		for ci, members := range cls.Members {
			names := make([]string, len(members))
			for i, op := range members {
				names[i] = e.Ops[op].Name
			}
			fmt.Printf("  class %2d: %s\n", ci, strings.Join(names, ", "))
		}
	}

	if *tablesF || *allFlags {
		fmt.Println("\nreservation tables:")
		for _, o := range e.Ops {
			fmt.Printf("\noperation %s (latency %d):\n%s", o.Name, o.Latency,
				resmodel.TableString(e.Resources, o.Table))
		}
	}

	if *matrix || *allFlags {
		fmt.Println("\nforbidden-latency matrix (non-empty sets, class representatives):")
		cm := mat.Collapse(cls)
		for x := 0; x < cm.NumOps; x++ {
			for y := 0; y < cm.NumOps; y++ {
				if s := cm.Set(x, y); !s.Empty() {
					fmt.Printf("  F[%s][%s] = %s\n",
						e.Ops[cls.Rep[x]].Name, e.Ops[cls.Rep[y]].Name, s)
				}
			}
		}
	}

	if *lint || *allFlags {
		ws := resmodel.Lint(m)
		if len(ws) == 0 {
			fmt.Println("\nlint: no warnings")
		} else {
			fmt.Printf("\nlint: %d warning(s):\n", len(ws))
			for _, w := range ws {
				fmt.Printf("  %s\n", w)
			}
		}
	}

	if *genset || *allFlags {
		cm := mat.Collapse(cls)
		gen := core.GeneratingSet(cm, nil)
		pruned := core.Prune(cm, gen)
		fmt.Printf("\ngenerating set: %d resources, %d after pruning:\n", len(gen), len(pruned))
		opName := func(c int) string { return e.Ops[cls.Rep[c]].Name }
		for i, r := range pruned {
			fmt.Printf("  %3d: %s\n", i, r.StringWith(opName))
		}
	}
}

func load(file, builtin string) (*repro.Machine, error) {
	switch {
	case file != "" && builtin != "":
		return nil, fmt.Errorf("use either -file or -machine, not both")
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return repro.ParseMachine(string(src))
	case builtin != "":
		m := repro.BuiltinMachine(builtin)
		if m == nil {
			return nil, fmt.Errorf("unknown machine %q", builtin)
		}
		return m, nil
	}
	return nil, fmt.Errorf("need -file or -machine")
}
