// Command mdreduce reduces a machine description: it reads an .mdl file
// (or a built-in machine), runs the paper's automated reduction, verifies
// that scheduling constraints are preserved exactly, and prints the
// reduced description with statistics.
//
// Usage:
//
//	mdreduce -machine cydra5 -objective res-uses
//	mdreduce -file mymachine.mdl -objective 4-cycle-word
//	mdreduce -machine mips -objective 2-cycle-word -stats-only
//	mdreduce -machine cydra5 -parallel 8   # fan the pipeline across 8 workers
//	mdreduce -machine mips -metrics -     # reduction profile as JSON on stdout
//
// Reductions go through the process-wide content-keyed cache: asking for
// the same (machine content, objective) again — e.g. -exact after the
// main reduction — reuses the verified result instead of re-running
// reduce and Verify.
//
// -metrics FILE enables the observability layer and writes a validated
// JSON snapshot of the reduction's counters and histograms
// (generating-set sizes, branch-and-bound nodes, cache hits, worker-pool
// shape) to FILE; "-" writes the snapshot to stdout after the normal
// report.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/mdl"
	"repro/internal/obs"
	"repro/internal/parallel"
)

func main() {
	var (
		file      = flag.String("file", "", "machine description file (.mdl)")
		machine   = flag.String("machine", "", "built-in machine: "+strings.Join(repro.BuiltinMachines(), ", "))
		objective = flag.String("objective", "res-uses", "res-uses or <k>-cycle-word")
		statsOnly = flag.Bool("stats-only", false, "print statistics without the reduced description")
		exact     = flag.Bool("exact", false, "also compute the optimal res-uses cover by branch and bound (small machines only)")
		nParallel = flag.Int("parallel", 0, "worker-pool size for the reduction pipeline and -exact search (0 = GOMAXPROCS, 1 = serial)")
		metrics   = flag.String("metrics", "", "enable the observability layer and write a JSON metrics snapshot to this file (\"-\" = stdout)")
	)
	flag.Parse()
	workers := parallel.Workers(*nParallel)
	if *metrics != "" {
		obs.Default().SetEnabled(true)
		defer func() {
			if err := writeMetrics(*metrics); err != nil {
				fmt.Fprintln(os.Stderr, "mdreduce:", err)
				os.Exit(1)
			}
		}()
	}

	m, err := loadMachine(*file, *machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdreduce:", err)
		os.Exit(1)
	}
	obj, err := parseObjective(*objective)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdreduce:", err)
		os.Exit(1)
	}

	red, err := repro.ReduceParallel(m, obj, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdreduce:", err)
		os.Exit(1)
	}

	e := red.Input
	origUses := 0
	for _, o := range e.Ops {
		origUses += len(o.Table.Uses)
	}
	fmt.Printf("machine %q: %d resources, %d operations (%d after expansion), %d classes\n",
		m.Name, len(m.Resources), len(m.Ops), len(e.Ops), red.Classes.NumClasses())
	fmt.Printf("forbidden latencies: %d (max %d)\n",
		red.ClassMatrix.NonnegCount(), red.ClassMatrix.MaxLatency())
	fmt.Printf("generating set: %d resources (%d after pruning)\n", red.GenSetSize, red.PrunedSize)
	fmt.Printf("objective %v: %d -> %d resources, %d -> %d usages per class table\n",
		obj, len(m.Resources), red.NumResources(), origUses, red.NumUsages())
	fmt.Println("verification: reduced description preserves all scheduling constraints")

	if *exact {
		gen := core.GeneratingSetParallel(red.ClassMatrix, nil, workers)
		pruned := core.Prune(red.ClassMatrix, gen)
		opt := core.ExactCoverWorkers(red.ClassMatrix, pruned, 2_000_000, workers)
		status := "optimal"
		if !opt.Optimal {
			status = "best found (search truncated)"
		}
		fmt.Printf("exact cover (res-uses): %d usages, %s, %d search nodes; heuristic gap: %+d\n",
			opt.Usages, status, opt.Nodes, red.NumUsages()-opt.Usages)
	}

	if !*statsOnly {
		fmt.Println()
		fmt.Print(mdl.Print(red.Reduced.Machine()))
	}
}

// writeMetrics renders, validates and writes the default registry's
// snapshot to path ("-" = stdout).
func writeMetrics(path string) error {
	var buf bytes.Buffer
	if err := obs.Default().WriteJSON(&buf); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	data := buf.Bytes()
	if err := obs.ValidateSnapshotJSON(data, "core"); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if path == "-" {
		fmt.Println()
		if _, err := os.Stdout.Write(data); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		return nil
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	fmt.Fprintf(os.Stderr, "mdreduce: metrics -> %s\n", path)
	return nil
}

func loadMachine(file, builtin string) (*repro.Machine, error) {
	switch {
	case file != "" && builtin != "":
		return nil, fmt.Errorf("use either -file or -machine, not both")
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return repro.ParseMachine(string(src))
	case builtin != "":
		m := repro.BuiltinMachine(builtin)
		if m == nil {
			return nil, fmt.Errorf("unknown machine %q (have: %s)", builtin, strings.Join(repro.BuiltinMachines(), ", "))
		}
		return m, nil
	}
	return nil, fmt.Errorf("need -file or -machine")
}

func parseObjective(s string) (core.Objective, error) {
	return core.ParseObjective(s)
}
