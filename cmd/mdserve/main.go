// Command mdserve is a long-running machine-description service: a
// stdlib-only net/http JSON daemon that compiles, caches and serves
// reduced machine descriptions and batched contention queries.
//
// Usage:
//
//	mdserve                                   # serve on :8080
//	mdserve -addr 127.0.0.1:0                 # ephemeral port (printed on stdout)
//	mdserve -preload cydra5,mips -cache 64    # boot with built-ins registered
//
// Endpoints (see internal/serve): POST /v1/reduce, POST /v1/batch,
// POST /v1/sessions (+ /{id}/ops, /{id}/stream NDJSON, GET/DELETE),
// GET /v1/machines, GET /v1/metrics, GET /healthz.
//
// Reductions go through a capacity-bounded content-keyed LRU (-cache);
// the machine registry (-max-machines) and the scheduling-session table
// (-max-sessions, idle expiry -session-ttl) are sharded LRU tables, so
// no wire workload can grow the process without bound. Requests are
// admitted through a concurrency gate (-max-inflight) with a
// per-request deadline (-deadline); streamed sessions hold a reserved
// stream sub-quota of the gate. SIGINT/SIGTERM trigger a graceful
// drain: the listener closes, in-flight requests finish (up to -drain),
// then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (host:0 picks an ephemeral port)")
		cacheCap    = flag.Int("cache", 128, "reduction-LRU capacity in entries (<0 = unbounded)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently admitted reduce/batch requests (0 = 2x GOMAXPROCS)")
		deadline    = flag.Duration("deadline", 30*time.Second, "per-request deadline (admission wait + execution)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-drain timeout after SIGTERM/SIGINT")
		workers     = flag.Int("workers", 0, "reduction worker-pool size (0 = GOMAXPROCS, 1 = serial)")
		preload     = flag.String("preload", "", "comma-separated built-in machines to register at boot: "+strings.Join(repro.BuiltinMachines(), ", "))
		metrics     = flag.Bool("metrics", true, "collect internal/obs metrics (served at /v1/metrics)")
		maxMachines = flag.Int("max-machines", 0, "machine-registry capacity in entries (0 = 256, <0 = unbounded)")
		maxSessions = flag.Int("max-sessions", 0, "scheduling-session table capacity (0 = 1024, <0 = unbounded)")
		sessionTTL  = flag.Duration("session-ttl", 0, "idle scheduling-session expiry (0 = 5m, <0 = never)")
	)
	flag.Parse()
	if err := run(*addr, *cacheCap, *maxInflight, *maxMachines, *maxSessions, *sessionTTL, *deadline, *drain, *workers, *preload, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "mdserve:", err)
		os.Exit(1)
	}
}

func run(addr string, cacheCap, maxInflight, maxMachines, maxSessions int, sessionTTL, deadline, drain time.Duration, workers int, preload string, metrics bool) error {
	if metrics {
		obs.Default().SetEnabled(true)
	}
	if cacheCap < 0 {
		cacheCap = -1 // serve.Config: < 0 means unbounded
	}
	s := serve.New(serve.Config{
		CacheCapacity:  cacheCap,
		MaxInFlight:    maxInflight,
		RequestTimeout: deadline,
		Workers:        workers,
		MaxMachines:    maxMachines,
		MaxSessions:    maxSessions,
		SessionTTL:     sessionTTL,
	})

	if preload != "" {
		for _, name := range strings.Split(preload, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			m := repro.BuiltinMachine(name)
			if m == nil {
				return fmt.Errorf("unknown -preload machine %q (have: %s)", name, strings.Join(repro.BuiltinMachines(), ", "))
			}
			red, err := s.Register(name, m, core.Objective{Kind: core.ResUses})
			if err != nil {
				return fmt.Errorf("preload %s: %w", name, err)
			}
			fmt.Printf("mdserve: preloaded %s (%d -> %d resources)\n", name, len(m.Resources), red.NumResources())
		}
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The resolved address is the smoke harness's handshake: with -addr
	// host:0 the actual port is only known here.
	fmt.Printf("mdserve: listening on http://%s\n", ln.Addr())

	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err // Serve never returns nil; ErrServerClosed can't happen before Shutdown
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard
	fmt.Println("mdserve: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("mdserve: drained, bye")
	return nil
}
