// Command benchgate compares a freshly measured benchmark report against
// a committed baseline and fails when any entry regresses. It understands
// the BENCH_*.json schema written by `paper -bench-json` and
// `paper -bench-reduction`.
//
// Usage:
//
//	benchgate -baseline BENCH_reduction.json -current /tmp/bench.json
//	benchgate ... -max-regress 1.20 -min-delta-ms 5
//
// An entry regresses when its serial wall time exceeds the baseline by
// more than the -max-regress ratio AND by more than -min-delta-ms (the
// absolute floor absorbs scheduler noise on entries that run in
// microseconds). A baseline entry missing from the current report is
// always an error: a renamed or dropped stage must update the committed
// baseline deliberately. Extra entries in the current report are fine —
// they are future baseline material.
//
// Wall-clock throughput depends on the host's core count, so each
// entry's host shape (its own gomaxprocs/num_cpu fields when present,
// the report-level ones otherwise) is compared first: an entry whose
// current host shape differs from the baseline's is skipped with a
// warning rather than failed — a 1-core CI runner cannot meaningfully
// gate numbers measured on an 8-core box. Every report writer records
// the per-entry host shape, so the rule is uniform across all
// BENCH_*.json gates, and the final summary line counts gated and
// skipped entries so an all-skip run is visible at a glance. -entries
// restricts the gate to baseline entries matching a regular expression.
//
// Exit status: 0 when every baseline entry holds, 1 on any regression or
// missing entry, 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
)

type benchEntry struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers"`
	SerialNS   int64   `json:"serial_ns"`
	ParallelNS int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
	GoMaxProcs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
}

// hostShape resolves an entry's host shape, falling back to the
// report-level fields for entries (and reports) that predate per-entry
// recording.
func hostShape(rep *benchReport, e benchEntry) (gomaxprocs, numCPU int) {
	gomaxprocs, numCPU = e.GoMaxProcs, e.NumCPU
	if gomaxprocs == 0 {
		gomaxprocs = rep.GoMaxProcs
	}
	if numCPU == 0 {
		numCPU = rep.NumCPU
	}
	return gomaxprocs, numCPU
}

type benchReport struct {
	GeneratedAt string       `json:"generated_at"`
	GoMaxProcs  int          `json:"gomaxprocs"`
	NumCPU      int          `json:"num_cpu"`
	Loops       int          `json:"loops"`
	Entries     []benchEntry `json:"entries"`
}

func load(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Entries) == 0 {
		return nil, fmt.Errorf("%s: report has no entries", path)
	}
	return &rep, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed baseline report (required)")
		currentPath  = flag.String("current", "", "freshly measured report (required)")
		maxRegress   = flag.Float64("max-regress", 1.20, "maximum allowed current/baseline serial wall-time ratio")
		minDeltaMS   = flag.Float64("min-delta-ms", 5, "ignore regressions smaller than this many milliseconds")
		entriesRE    = flag.String("entries", "", "gate only baseline entries whose name matches this regexp")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *maxRegress <= 0 {
		fmt.Fprintln(os.Stderr, "benchgate: -max-regress must be positive")
		os.Exit(2)
	}
	var nameRE *regexp.Regexp
	if *entriesRE != "" {
		re, err := regexp.Compile(*entriesRE)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: -entries:", err)
			os.Exit(2)
		}
		nameRE = re
	}

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	curByName := make(map[string]benchEntry, len(cur.Entries))
	for _, e := range cur.Entries {
		curByName[e.Name] = e
	}

	failed := false
	gated, skipped := 0, 0
	minDeltaNS := int64(*minDeltaMS * 1e6)
	for _, b := range base.Entries {
		if nameRE != nil && !nameRE.MatchString(b.Name) {
			continue
		}
		c, ok := curByName[b.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %-22s missing from %s\n", b.Name, *currentPath)
			failed = true
			continue
		}
		bg, bn := hostShape(base, b)
		cg, cn := hostShape(cur, c)
		if bg != cg || bn != cn {
			fmt.Fprintf(os.Stderr, "benchgate: skip %-22s host shape %d/%d differs from baseline %d/%d (gomaxprocs/num_cpu)\n",
				b.Name, cg, cn, bg, bn)
			skipped++
			continue
		}
		gated++
		ratio := float64(c.SerialNS) / float64(b.SerialNS)
		if c.SerialNS > int64(float64(b.SerialNS)**maxRegress) && c.SerialNS-b.SerialNS > minDeltaNS {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %-22s serial %8.2fms vs baseline %8.2fms (%.2fx > %.2fx)\n",
				b.Name, float64(c.SerialNS)/1e6, float64(b.SerialNS)/1e6, ratio, *maxRegress)
			failed = true
			continue
		}
		fmt.Fprintf(os.Stderr, "benchgate: ok   %-22s serial %8.2fms vs baseline %8.2fms (%.2fx)\n",
			b.Name, float64(c.SerialNS)/1e6, float64(b.SerialNS)/1e6, ratio)
	}
	if failed {
		os.Exit(1)
	}
	if gated == 0 && skipped == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no baseline entries match -entries %q\n", *entriesRE)
		os.Exit(2)
	}
	fmt.Printf("benchgate: %d entries within %.0f%% of %s, %d skipped (host shape)\n",
		gated, (*maxRegress-1)*100, *baselinePath, skipped)
}
