// Command pipesched software-pipelines a loop with Rau's Iterative Modulo
// Scheduler, issuing contention queries through the representation of your
// choice — the vehicle for seeing the paper's query module in action.
//
// Usage:
//
//	pipesched -machine cydra5 -loop myloop.ddg
//	pipesched -machine cydra5 -loop myloop.ddg -rep bitvector -reduce 4-cycle-word
//	pipesched -machine cydra5 -demo          # built-in dot-product loop
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/query"
)

const demoLoop = `
loop dotprod
node addr aadd
node lda  ld.w
node ldb  ld.w
node mul  fmul.s
node acc  fadd.s
node test icmp
node br   brtop
edge addr addr delay 2 dist 1
edge addr lda delay 2
edge addr ldb delay 2
edge lda mul delay 22
edge ldb mul delay 22
edge mul acc delay 7
edge acc acc delay 6 dist 1
edge test br delay 1
`

func main() {
	var (
		machine  = flag.String("machine", "cydra5", "built-in machine: "+strings.Join(repro.BuiltinMachines(), ", "))
		loopFile = flag.String("loop", "", "loop dependence graph file (.ddg)")
		demo     = flag.Bool("demo", false, "schedule the built-in dot-product loop")
		rep      = flag.String("rep", "discrete", "reserved-table representation: discrete or bitvector")
		reduceTo = flag.String("reduce", "", "reduce the description first: res-uses or <k>-cycle-word")
		budget   = flag.Int("budget", 6, "scheduling-decision budget ratio")
		kern     = flag.Bool("kernel", false, "print the software-pipelined kernel with stages")
	)
	flag.Parse()

	m := repro.BuiltinMachine(*machine)
	if m == nil {
		fail("unknown machine %q", *machine)
	}

	var loopSrc string
	switch {
	case *demo:
		loopSrc = demoLoop
	case *loopFile != "":
		b, err := os.ReadFile(*loopFile)
		if err != nil {
			fail("%v", err)
		}
		loopSrc = string(b)
	default:
		fail("need -loop <file> or -demo")
	}
	g, err := repro.ParseLoop(loopSrc, m)
	if err != nil {
		fail("%v", err)
	}

	// Pick the description.
	desc := m.Expand()
	if *reduceTo != "" {
		obj, err := parseObjective(*reduceTo)
		if err != nil {
			fail("%v", err)
		}
		red, err := repro.Reduce(m, obj)
		if err != nil {
			fail("%v", err)
		}
		desc = red.Reduced
		fmt.Printf("reduced description: %d -> %d resources (%v)\n",
			len(m.Resources), red.NumResources(), obj)
	}

	var factory repro.ModuleFactory
	switch *rep {
	case "discrete":
		factory = repro.DiscreteFactory(desc)
	case "bitvector":
		k := query.MaxCyclesPerWord(len(desc.Resources), 64)
		if k < 1 {
			fail("description has %d resources: too many for a 64-bit word", len(desc.Resources))
		}
		fmt.Printf("bitvector representation: %d cycles per 64-bit word\n", k)
		factory = repro.BitvectorFactory(desc, k, 64)
	default:
		fail("unknown representation %q", *rep)
	}

	r := repro.ModuloScheduleLoop(g, m, factory, repro.SchedConfig{BudgetRatio: *budget})
	if !r.OK {
		fail("scheduling failed (MII %d)", r.MII)
	}
	if err := repro.VerifyModuloSchedule(g, m.Expand(), r); err != nil {
		fail("schedule failed verification: %v", err)
	}

	fmt.Printf("\nloop %q: %d operations\n", g.Name, len(g.Nodes))
	fmt.Printf("MII = %d (ResMII %d, RecMII %d); achieved II = %d in %d attempt(s)\n",
		r.MII, r.ResMII, r.RecMII, r.II, r.Attempts)
	fmt.Printf("scheduling decisions: %d (%d reversed: %d resource, %d dependence)\n",
		r.Decisions, r.Reversed, r.ResourceEvictions, r.DepEvictions)

	fmt.Println("\nschedule (issue cycle, MRT column, operation):")
	order := make([]int, len(g.Nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if r.Time[order[i]] != r.Time[order[j]] {
			return r.Time[order[i]] < r.Time[order[j]]
		}
		return order[i] < order[j]
	})
	for _, v := range order {
		fmt.Printf("  t=%3d  col=%2d  %-10s (%s)\n",
			r.Time[v], r.Time[v]%r.II, g.Nodes[v].Name, desc.Ops[r.Alt[v]].Name)
	}
	fmt.Println("\nverification: schedule is dependence- and resource-correct on the original description")

	if *kern {
		k, err := repro.BuildKernel(g, r)
		if err != nil {
			fail("%v", err)
		}
		fmt.Println()
		fmt.Print(k.Render(g, desc, 100))
		if err := repro.ValidateOverlap(g, m.Expand(), r, 6); err != nil {
			fail("overlap validation: %v", err)
		}
		fmt.Println("overlap validation: 6 overlapped iterations are contention-free")
	}
}

func parseObjective(s string) (core.Objective, error) {
	return core.ParseObjective(s)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "pipesched: "+format+"\n", args...)
	os.Exit(1)
}
