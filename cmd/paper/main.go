// Command paper regenerates every table and figure of Eichenberger &
// Davidson, "A Reduced Multipipeline Machine Description that Preserves
// Scheduling Constraints" (PLDI 1996).
//
// Usage:
//
//	paper -all
//	paper -table 1        # Tables 1, 2, 3, 4, 5 or 6
//	paper -fig 1          # Figures 1, 3 or 4
//	paper -summary        # headline numbers of the abstract
//	paper -table 5 -budget 2   # Table 5 ablation at budget 2N
//	paper -loops 300      # subsample the 1327-loop benchmark (faster)
//	paper -table 6 -parallel 8 # fan per-loop scheduling across 8 workers
//	paper -bench-json BENCH_parallel.json  # serial-vs-parallel wall-time report
//	paper -bench-reduction BENCH_reduction.json  # per-stage reduction wall-time report
//	paper -bench-throughput BENCH_throughput.json  # streamed-corpus scheduler throughput
//	paper -bench-throughput BENCH_throughput.json -corpus 100000 -bench-workers 1,2,4,8
//	paper -bench-serve BENCH_serve.json -bench-workers 1,8  # mdserve load test (req/s, p50/p99)
//	paper -opt-gap OPTGAP.md  # exact-vs-IMS optimality-gap corpus report
//	paper -crossover CROSSOVER.md  # FSA-vs-reduced-table selection frontier
//	paper -bench-repr BENCH_repr.json  # corpus wall time per query backend
//	paper -bench-opt BENCH_opt.json -bench-workers 1,8  # exact-scheduler wall time
//	paper -table 6 -metrics metrics.json   # emit a machine-readable profile
//	paper -bench-throughput out.json -cpuprofile cpu.pprof -memprofile mem.pprof
//
// -parallel fans the per-loop scheduling of Tables 5/6 and the kernel
// report across a bounded worker pool (0 = GOMAXPROCS); output is
// byte-identical at every worker count. Each machine is reduced at most
// once per process regardless of how many tables request it (reduction
// cache).
//
// -metrics FILE enables the observability layer for the whole run and
// writes a JSON snapshot of every counter and histogram — per-operation
// query counts and probe lengths, IMS budget/eviction statistics,
// generating-set and branch-and-bound sizes, reduction-cache hits, and
// worker-pool shape — alongside the paper tables ("-" writes to
// stdout). The emitted JSON is validated before the command exits.
// Metrics change no output and, disabled, cost the query hot path
// nothing.
//
// -cpuprofile FILE and -memprofile FILE write pprof profiles of the
// whole run (any mode; the -bench-* modes are the intended subjects —
// `make profile` captures the headline throughput run). The CPU profile
// covers everything after flag parsing; the heap profile is written at
// exit after a final GC.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/machines"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/tables"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate table 1-6")
		fig       = flag.Int("fig", 0, "regenerate figure 1, 3 or 4")
		summary   = flag.Bool("summary", false, "print the headline summary")
		memory    = flag.Bool("memory", false, "print measured reserved-table storage per representation")
		kernels   = flag.Bool("kernels", false, "software-pipeline the named Livermore-style kernels")
		all       = flag.Bool("all", false, "regenerate everything")
		budget    = flag.Int("budget", 6, "scheduling-decision budget ratio for Table 5")
		loops     = flag.Int("loops", 0, "restrict the loop benchmark to the first N loops (0 = all 1327)")
		nParallel = flag.Int("parallel", 0, "worker-pool size for per-loop scheduling (0 = GOMAXPROCS, 1 = serial)")
		benchJSON = flag.String("bench-json", "", "measure serial-vs-parallel wall time and write the report to this file (e.g. BENCH_parallel.json)")
		benchRed  = flag.String("bench-reduction", "", "measure per-stage reduction wall time and write the report to this file (e.g. BENCH_reduction.json)")
		benchSch  = flag.String("bench-sched", "", "time the IMS corpus per representation, range scan vs naive scan, and write the report to this file (e.g. BENCH_sched.json)")
		benchThru = flag.String("bench-throughput", "", "stream a stratified corpus through per-worker scheduler arenas and write the throughput report to this file (e.g. BENCH_throughput.json)")
		benchSrv  = flag.String("bench-serve", "", "load-test the mdserve handler stack (batch + session streams) and write the report to this file (e.g. BENCH_serve.json)")
		optGap    = flag.String("opt-gap", "", "schedule the stratified corpus with the exact searcher vs IMS and write the optimality-gap report to this file (e.g. OPTGAP.md)")
		crossover = flag.String("crossover", "", "measure the query-backend calibration frontier (FSA vs reduced tables) and write the report to this file (e.g. CROSSOVER.md)")
		benchRepr = flag.String("bench-repr", "", "time corpus scheduling per query backend and write the report to this file (e.g. BENCH_repr.json)")
		benchOpt  = flag.String("bench-opt", "", "time the exact scheduler against IMS on the stratified corpus and write the report to this file (e.g. BENCH_opt.json)")
		corpus    = flag.Int("corpus", 100000, "streamed-corpus size for -bench-throughput")
		benchWkrs = flag.String("bench-workers", "1,2,4,8", "comma-separated worker counts for -bench-throughput")
		metrics   = flag.String("metrics", "", "enable the observability layer and write a JSON metrics snapshot to this file (\"-\" = stdout)")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run (any mode, e.g. -bench-throughput) to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()
	workers := parallel.Workers(*nParallel)
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paper:", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle live objects before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "paper:", err)
				os.Exit(1)
			}
		}()
	}
	if *metrics != "" {
		obs.Default().SetEnabled(true)
		defer func() {
			if err := writeMetrics(*metrics); err != nil {
				fmt.Fprintln(os.Stderr, "paper:", err)
				os.Exit(1)
			}
		}()
	}
	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, workers, *loops); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		return
	}
	if *benchRed != "" {
		if err := runBenchReduction(*benchRed, workers); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		return
	}
	if *benchSch != "" {
		if err := runBenchSched(*benchSch, workers, *loops); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		return
	}
	if *benchThru != "" {
		wl, err := parseWorkersList(*benchWkrs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(2)
		}
		if err := runBenchThroughput(*benchThru, *corpus, wl); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		return
	}
	if *benchSrv != "" {
		wl, err := parseWorkersList(*benchWkrs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(2)
		}
		if err := runBenchServe(*benchSrv, wl); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		return
	}
	if *crossover != "" {
		if err := runCrossover(*crossover); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		return
	}
	if *benchRepr != "" {
		if err := runBenchRepr(*benchRepr); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		return
	}
	if *optGap != "" {
		if err := runOptGap(*optGap, workers, *loops); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		return
	}
	if *benchOpt != "" {
		wl, err := parseWorkersList(*benchWkrs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(2)
		}
		if err := runBenchOpt(*benchOpt, wl, *loops); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		return
	}
	if !*all && *table == 0 && *fig == 0 && !*summary && !*memory && !*kernels {
		flag.Usage()
		os.Exit(2)
	}

	if *all || *fig == 1 {
		fmt.Println(tables.Figure1())
	}
	if *all || *fig == 3 {
		fmt.Println(tables.Figure3())
	}
	if *all || *table == 1 {
		fmt.Println(tables.ComputeReduction(machines.Cydra5()).
			Render("Table 1: Results for the Cydra 5"))
	}
	if *all || *table == 2 {
		fmt.Println(tables.ComputeReduction(machines.Cydra5Subset()).
			Render("Table 2: Results for a subset of the Cydra 5"))
	}
	if *all || *table == 3 {
		fmt.Println(tables.ComputeReduction(machines.Alpha21064()).
			Render("Table 3: Results for the DEC Alpha 21064"))
	}
	if *all || *table == 4 {
		fmt.Println(tables.ComputeReduction(machines.MIPS()).
			Render("Table 4: Results for the MIPS R3000/R3010"))
	}
	if *all || *table == 5 || *table == 6 {
		m := machines.Cydra5()
		bench := tables.BenchmarkLoops(m)
		if *loops > 0 && *loops < len(bench) {
			bench = bench[:*loops]
		}
		if *all || *table == 5 {
			fmt.Println(tables.ComputeTable5Workers(m, bench, *budget, workers).Render())
		}
		if *all || *table == 6 {
			reps := tables.PaperRepresentations(m)
			fmt.Println(tables.ComputeTable6Workers(m, bench, reps, workers).Render())
		}
	}
	if *all || *fig == 4 {
		fmt.Println(tables.Figure4())
	}
	if *all || *summary {
		fmt.Println(tables.Summary())
	}
	if *all || *memory {
		fmt.Println(tables.RenderMemory(tables.ComputeMemory(
			[]string{"mips", "alpha", "cydra5", "parisc"}, 24)))
	}
	if *all || *kernels {
		rows, err := tables.ComputeKernelsWorkers(machines.Cydra5(), workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		fmt.Println(tables.RenderKernels(rows))
	}
}
