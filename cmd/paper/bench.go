package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/tables"
)

// benchEntry is one serial-vs-parallel wall-time comparison. The
// scheduler report (BENCH_sched.json) reuses the schema with serial_ns
// holding the range-scan corpus time, parallel_ns the naive per-cycle
// scan, and the two per-decision probe statistics filled in; benchgate
// ignores fields it does not know.
type benchEntry struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers"`
	SerialNS   int64   `json:"serial_ns"`
	ParallelNS int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
	// CheckEquivPerDecision is the naive-equivalent per-cycle probe count
	// per scheduling decision; RangeWorkPerDecision the packed words or
	// reserved-table cells the range scan examined per decision.
	CheckEquivPerDecision float64 `json:"check_equiv_per_decision,omitempty"`
	RangeWorkPerDecision  float64 `json:"range_work_per_decision,omitempty"`
	// GoMaxProcs/NumCPU record the host shape this entry was measured
	// under; 0 (older reports) means "use the report-level values".
	// benchgate skips entries whose host shape differs from the baseline
	// instead of failing them — throughput across different core counts
	// is not comparable.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	NumCPU     int `json:"num_cpu,omitempty"`
	// LoopsPerSec is the streamed-scheduling throughput (loops scheduled
	// per second of wall time, generation included) of the throughput
	// benchmark's entries.
	LoopsPerSec float64 `json:"loops_per_sec,omitempty"`
	// Failed counts corpus loops the scheduler gave up on (throughput
	// entries; the count is deterministic per corpus).
	Failed int `json:"failed,omitempty"`
	// ReqPerSec, P50US and P99US describe the serve load test's entries:
	// HTTP requests completed per second of wall time and the request
	// latency quantiles in microseconds.
	ReqPerSec float64 `json:"req_per_sec,omitempty"`
	P50US     int64   `json:"p50_us,omitempty"`
	P99US     int64   `json:"p99_us,omitempty"`
}

// benchReport is the BENCH_parallel.json schema: the host's parallelism
// plus one entry per harness (Table 5, Table 6, full-pipeline reduction,
// reduction cache). It seeds the bench trajectory: future PRs append
// runs of the same schema to track the parallel layer over time.
type benchReport struct {
	GeneratedAt string       `json:"generated_at"`
	GoMaxProcs  int          `json:"gomaxprocs"`
	NumCPU      int          `json:"num_cpu"`
	Loops       int          `json:"loops"`
	Entries     []benchEntry `json:"entries"`
}

func timeIt(fn func()) int64 {
	start := time.Now()
	fn()
	return time.Since(start).Nanoseconds()
}

func entry(name string, workers int, serial, par func()) benchEntry {
	e := benchEntry{Name: name, Workers: workers,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	e.SerialNS = timeIt(serial)
	e.ParallelNS = timeIt(par)
	if e.ParallelNS > 0 {
		e.Speedup = float64(e.SerialNS) / float64(e.ParallelNS)
	}
	return e
}

// runBenchJSON measures the serial (workers=1) against the parallel
// (workers=N) paths of the three heavy pipelines and writes the report.
// Output of the measured computations is discarded; determinism of the
// parallel paths is covered by tests, this harness only times them.
func runBenchJSON(path string, workers, loopLimit int) error {
	m := machines.Cydra5()
	bench := tables.BenchmarkLoops(m)
	if loopLimit > 0 && loopLimit < len(bench) {
		bench = bench[:loopLimit]
	}
	rep := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Loops:       len(bench),
	}

	fmt.Fprintf(os.Stderr, "paper: bench-json: %d loops, %d workers\n", len(bench), workers)

	rep.Entries = append(rep.Entries, entry("table5-loop-harness", workers,
		func() { tables.ComputeTable5Workers(m, bench, 6, 1) },
		func() { tables.ComputeTable5Workers(m, bench, 6, workers) }))

	reps := tables.PaperRepresentations(m)
	rep.Entries = append(rep.Entries, entry("table6-loop-harness", workers,
		func() { tables.ComputeTable6Workers(m, bench, reps, 1) },
		func() { tables.ComputeTable6Workers(m, bench, reps, workers) }))

	// Full reduction pipeline, bypassing the cache so both sides do the
	// work (the paper's Tables 1-4 workload across all four machines).
	reduceAll := func(w int) {
		for _, name := range []string{"mips", "alpha", "cydra5", "cydra5-subset"} {
			e := machines.ByName(name).Expand()
			for _, obj := range []core.Objective{
				{Kind: core.ResUses},
				{Kind: core.KCycleWord, K: 3},
			} {
				res := core.ReduceParallel(e, obj, w)
				if err := res.Verify(); err != nil {
					panic(err)
				}
			}
		}
	}
	rep.Entries = append(rep.Entries, entry("reduction-pipeline", workers,
		func() { reduceAll(1) },
		func() { reduceAll(workers) }))

	// Reduction cache: cold miss versus warm hit on a fresh cache.
	cache := core.NewCache()
	e := machines.Cydra5().Expand()
	obj := core.Objective{Kind: core.ResUses}
	rep.Entries = append(rep.Entries, entry("reduction-cache-hit", workers,
		func() { cache.Reduce(e, obj, workers).Verify() },
		func() { cache.Reduce(e, obj, workers).Verify() }))

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	for _, e := range rep.Entries {
		fmt.Fprintf(os.Stderr, "paper: bench-json: %-22s serial %8.1fms  parallel %8.1fms  speedup %.2fx\n",
			e.Name, float64(e.SerialNS)/1e6, float64(e.ParallelNS)/1e6, e.Speedup)
	}
	fmt.Printf("wrote %s (%d entries)\n", path, len(rep.Entries))
	return nil
}
