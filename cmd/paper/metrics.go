package main

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

// writeMetrics renders the default registry's snapshot as indented JSON,
// validates the rendered bytes with obs.ValidateSnapshotJSON, and writes
// them to path ("-" = stdout). A short summary — metric counts and the
// top-level scopes present — goes to stderr so the tables on stdout stay
// clean.
func writeMetrics(path string) error {
	var buf bytes.Buffer
	if err := obs.Default().WriteJSON(&buf); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	data := buf.Bytes()
	if err := obs.ValidateSnapshotJSON(data); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if path == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	} else if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	s := obs.Default().Snapshot()
	fmt.Fprintf(os.Stderr, "paper: metrics: %d counters, %d histograms (scopes: %s) -> %s\n",
		len(s.Counters), len(s.Histograms), strings.Join(topScopes(s), ", "), path)
	return nil
}

// topScopes lists the distinct top-level scope names in a snapshot.
func topScopes(s obs.Snapshot) []string {
	set := map[string]bool{}
	add := func(name string) {
		if i := strings.IndexByte(name, '.'); i > 0 {
			set[name[:i]] = true
		}
	}
	for _, c := range s.Counters {
		add(c.Name)
	}
	for _, h := range s.Histograms {
		add(h.Name)
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
