package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/loopgen"
	"repro/internal/machines"
	"repro/internal/query"
	"repro/internal/resmodel"
	"repro/internal/sched"
)

// optGapCorpus builds the opt-gap workload: the stratified Cydra 5
// corpus (fixed seed, so the report is reproducible byte for byte) and
// the 64-cycle-word reduced bitvector module factory, the scheduling
// stack's production representation.
func optGapCorpus(loopCount int) (*loopgenCorpus, error) {
	if loopCount <= 0 {
		loopCount = 200
	}
	m := machines.Cydra5()
	loops, err := loopgen.GenerateStrata(m, loopgen.DefaultStrata(loopCount))
	if err != nil {
		return nil, err
	}
	red := core.CachedReduce(m.Expand(), core.Objective{Kind: core.KCycleWord, K: 64})
	if err := red.Verify(); err != nil {
		return nil, err
	}
	k := query.MaxCyclesPerWord(len(red.Reduced.Resources), 64)
	factory := func(ii int) query.Module {
		mod, err := query.NewBitvector(red.Reduced, k, 64, ii)
		if err != nil {
			panic(err)
		}
		return mod
	}
	return &loopgenCorpus{m: m, loops: loops, factory: factory}, nil
}

type loopgenCorpus struct {
	m       *resmodel.Machine
	loops   []*ddg.Graph
	factory sched.ModuleFactory
}

// optGapRow aggregates one stratum of the report.
type optGapRow struct {
	name                   string
	loops, proven, seed    int
	fallbacks              int
	sumMII, sumOpt, sumIMS int
	nodes                  int64
}

// runOptGap schedules the stratified corpus with both engines and writes
// the optimality-gap report: per stratum, how often the exact search
// proved its answer, how much of the heuristic's gap above MII it closed,
// and what the proof cost in search nodes. The corpus seed, the budget
// and both schedulers are deterministic, so regenerating the report on
// any host yields identical bytes — it is a committed artifact, and this
// function enforces the invariants the test suite pins (MII <= II_opt <=
// II_ims, >= 90% proven) before writing it.
func runOptGap(path string, workers, loopCount int) error {
	c, err := optGapCorpus(loopCount)
	if err != nil {
		return err
	}
	cfg := sched.DefaultOptimalConfig()
	fmt.Fprintf(os.Stderr, "paper: opt-gap: %d loops, budget %d nodes, %d workers\n", len(c.loops), cfg.MaxNodes, workers)

	opt := sched.OptimalBatch(c.loops, c.m, c.factory, cfg, workers)
	ims := sched.ScheduleBatchArena(c.loops, c.m, c.factory, cfg.IMS, workers)

	rows := map[string]*optGapRow{}
	var order []string
	for i, g := range c.loops {
		name := g.Name
		if dot := strings.IndexByte(name, '.'); dot >= 0 {
			name = name[:dot]
		}
		row := rows[name]
		if row == nil {
			row = &optGapRow{name: name}
			rows[name] = row
			order = append(order, name)
		}
		r, h := &opt[i], &ims[i]
		if !r.OK || !h.OK {
			return fmt.Errorf("opt-gap: loop %s unschedulable (opt ok=%v, ims ok=%v)", g.Name, r.OK, h.OK)
		}
		if r.II < r.MII || r.II > h.II {
			return fmt.Errorf("opt-gap: loop %s violates MII <= II_opt <= II_ims: mii %d, opt %d, ims %d", g.Name, r.MII, r.II, h.II)
		}
		row.loops++
		if r.Proven {
			row.proven++
			if r.Nodes == 0 {
				row.seed++
			}
		} else {
			row.fallbacks++
		}
		row.sumMII += r.MII
		row.sumOpt += r.II
		row.sumIMS += h.II
		row.nodes += r.Nodes
	}

	var total optGapRow
	total.name = "**total**"
	for _, name := range order {
		r := rows[name]
		total.loops += r.loops
		total.proven += r.proven
		total.seed += r.seed
		total.fallbacks += r.fallbacks
		total.sumMII += r.sumMII
		total.sumOpt += r.sumOpt
		total.sumIMS += r.sumIMS
		total.nodes += r.nodes
	}
	if total.proven*10 < total.loops*9 {
		return fmt.Errorf("opt-gap: only %d/%d loops proven optimal, want >= 90%%", total.proven, total.loops)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# Optimality gap: exact search vs iterative modulo scheduling\n\n")
	fmt.Fprintf(&b, "Machine: Cydra 5, 64-cycle-word reduced bitvector description.\n")
	fmt.Fprintf(&b, "Corpus: %d stratified loops (`loopgen.DefaultStrata`, seed %d).\n", total.loops, loopgen.DefaultStrata(1).Seed)
	fmt.Fprintf(&b, "Budget: %d search nodes per loop (`sched.DefaultOptimalNodes`).\n\n", cfg.MaxNodes)
	fmt.Fprintf(&b, "`sched.Optimal` seeds each loop with the IMS heuristic, then proves or\n")
	fmt.Fprintf(&b, "improves its answer by branch-and-bound over II = MII, MII+1, ... An\n")
	fmt.Fprintf(&b, "IMS schedule already at MII is proof by itself (\"seed\" column); a loop\n")
	fmt.Fprintf(&b, "whose budget runs out keeps the IMS schedule (\"open\" column). The gap\n")
	fmt.Fprintf(&b, "columns sum II - MII over the stratum's loops: `gap(ims)` is what the\n")
	fmt.Fprintf(&b, "heuristic left above the lower bound, `gap(opt)` what remains after the\n")
	fmt.Fprintf(&b, "exact search (on proven loops, the true distance of the bound itself).\n\n")
	fmt.Fprintf(&b, "| stratum | loops | proven | seed | open | sum MII | sum II_opt | sum II_ims | gap(opt) | gap(ims) | nodes |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|---|---|\n")
	writeRow := func(r *optGapRow) {
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %d | %d | %d | %d | %d | %d |\n",
			r.name, r.loops, r.proven, r.seed, r.fallbacks,
			r.sumMII, r.sumOpt, r.sumIMS, r.sumOpt-r.sumMII, r.sumIMS-r.sumMII, r.nodes)
	}
	for _, name := range order {
		writeRow(rows[name])
	}
	writeRow(&total)
	fmt.Fprintf(&b, "\n%d of %d loops proven optimal (%.1f%%); %d proven by the IMS seed\n",
		total.proven, total.loops, 100*float64(total.proven)/float64(total.loops), total.seed)
	fmt.Fprintf(&b, "alone, %d by search, %d left open at this budget.\n",
		total.proven-total.seed, total.fallbacks)

	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d loops, %d proven)\n", path, total.loops, total.proven)
	return nil
}

// runBenchOpt writes the exact-scheduler wall-time report
// (BENCH_opt.json, benchReport schema): the stratified corpus scheduled
// by sched.Optimal at the default budget (serial_ns, the column benchgate
// gates) against the plain IMS pass (parallel_ns), one entry per worker
// count; speedup = ims/optimal, the price of exactness. Entries record
// the host shape so benchgate skips them on a differently-shaped host.
func runBenchOpt(path string, workersList []int, loopCount int) error {
	c, err := optGapCorpus(loopCount)
	if err != nil {
		return err
	}
	cfg := sched.DefaultOptimalConfig()
	rep := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Loops:       len(c.loops),
	}
	fmt.Fprintf(os.Stderr, "paper: bench-opt: %d loops, budget %d nodes\n", len(c.loops), cfg.MaxNodes)

	for _, w := range workersList {
		runOpt := func() { sched.OptimalBatch(c.loops, c.m, c.factory, cfg, w) }
		runIMS := func() { sched.ScheduleBatchArena(c.loops, c.m, c.factory, cfg.IMS, w) }
		runOpt() // warm the compiled-table cache before either side is timed
		runIMS()
		var optNS, imsNS int64
		for i := 0; i < benchReps; i++ {
			optNS = minNZ(optNS, timeIt(runOpt))
			imsNS = minNZ(imsNS, timeIt(runIMS))
		}
		e := benchEntry{
			Name:       fmt.Sprintf("sched-opt-w%d", w),
			Workers:    w,
			SerialNS:   optNS,
			ParallelNS: imsNS,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
		}
		if optNS > 0 {
			e.Speedup = float64(imsNS) / float64(optNS)
		}
		rep.Entries = append(rep.Entries, e)
		fmt.Fprintf(os.Stderr, "paper: bench-opt: %-14s optimal %8.1fms  ims %8.1fms  ims/opt %.2fx\n",
			e.Name, float64(optNS)/1e6, float64(imsNS)/1e6, e.Speedup)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d entries)\n", path, len(rep.Entries))
	return nil
}
