package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/loopgen"
	"repro/internal/machines"
	"repro/internal/sched"
	"repro/internal/tables"
)

// parseWorkersList parses a comma-separated worker-count list ("1,2,4,8").
func parseWorkersList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("invalid worker count %q", f)
		}
		out = append(out, w)
	}
	return out, nil
}

// runBenchThroughput writes the scheduler-throughput report
// (BENCH_throughput.json, benchReport schema): a 100k-loop stratified
// corpus (loopgen.DefaultStrata) streamed through per-worker scheduler
// arenas (sched.ScheduleStream), once per representation x worker
// count. The headline metric is loops scheduled per second of wall
// time, generation included — the corpus never exists in memory at
// once, so the measurement covers the whole streamed pipeline the way
// a compiler would run it.
//
// serial_ns holds each entry's wall time (the column benchgate gates);
// speedup is relative to the same representation at 1 worker. Every
// entry records the host shape (gomaxprocs/num_cpu) so benchgate can
// skip — not fail — entries measured under a different core count.
func runBenchThroughput(path string, corpusLoops int, workersList []int) error {
	if corpusLoops <= 0 {
		corpusLoops = 100_000
	}
	if len(workersList) == 0 {
		workersList = []int{1, 2, 4, 8}
	}
	m := machines.Cydra5()
	st := loopgen.DefaultStrata(corpusLoops)
	paperReps := tables.PaperRepresentations(m)
	cases := []struct {
		name    string
		factory sched.ModuleFactory
	}{
		// The two reduced representations Table 6 compares end to end:
		// res-uses (discrete reserved table) and the widest k-cycle-word
		// packing (bitvector).
		{"discrete", paperReps[1].Factory()},
		{"bitvec-k64", paperReps[len(paperReps)-1].Factory()},
	}
	rep := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Loops:       corpusLoops,
	}
	cfg := sched.DefaultConfig()
	fmt.Fprintf(os.Stderr, "paper: bench-throughput: %d streamed loops, workers %v\n", corpusLoops, workersList)

	warm := loopgen.DefaultStrata(2000)
	for _, rc := range cases {
		// Warm the compiled-table cache and the allocator once per
		// representation before any timed run.
		ws, err := loopgen.NewStream(m, warm)
		if err != nil {
			return err
		}
		sched.ScheduleStream(ws.Next, m, rc.factory, cfg, workersList[0], 0)

		var baseNS int64
		for _, w := range workersList {
			s, err := loopgen.NewStream(m, st)
			if err != nil {
				return err
			}
			var stats sched.StreamStats
			ns := timeIt(func() { stats = sched.ScheduleStream(s.Next, m, rc.factory, cfg, w, 0) })
			if stats.Loops != corpusLoops {
				return fmt.Errorf("bench-throughput: %s w%d scheduled %d loops, want %d", rc.name, w, stats.Loops, corpusLoops)
			}
			e := benchEntry{
				Name:       fmt.Sprintf("throughput-%s-w%d", rc.name, w),
				Workers:    w,
				SerialNS:   ns,
				GoMaxProcs: rep.GoMaxProcs,
				NumCPU:     rep.NumCPU,
				Failed:     stats.Failed,
			}
			if ns > 0 {
				e.LoopsPerSec = float64(stats.Loops) / (float64(ns) / 1e9)
			}
			if w == workersList[0] {
				baseNS = ns
			}
			if baseNS > 0 && ns > 0 {
				e.Speedup = float64(baseNS) / float64(ns)
			}
			rep.Entries = append(rep.Entries, e)
			fmt.Fprintf(os.Stderr, "paper: bench-throughput: %-26s %9.1fms  %9.0f loops/s  failed %d  x%.2f\n",
				e.Name, float64(ns)/1e6, e.LoopsPerSec, stats.Failed, e.Speedup)
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d entries)\n", path, len(rep.Entries))
	return nil
}
