package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/serve"
)

// benchServeBatchOps builds the deterministic per-request op sequence of
// the serve load test: check / range-scan / assign / free rounds, the
// mix a list scheduler issues while placing one operation.
func benchServeBatchOps(n int) []serve.BatchOp {
	ops := make([]serve.BatchOp, 0, n)
	for i := 0; len(ops)+4 <= n; i++ {
		c := (i * 3) % 16
		ops = append(ops,
			serve.BatchOp{Fn: "check", Op: 0, Cycle: c},
			serve.BatchOp{Fn: "first_free", Op: 0, Lo: 0, Hi: 31},
			serve.BatchOp{Fn: "assign", Op: 0, Cycle: c, ID: 1},
			serve.BatchOp{Fn: "free", Op: 0, Cycle: c, ID: 1},
		)
	}
	return ops
}

// quantileUS returns the q-quantile of the sorted latency list, in
// microseconds.
func quantileUS(sorted []time.Duration, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i].Microseconds()
}

// runServeWorkload spreads reqs requests over workers client goroutines
// against the running server, timing each request. do must be safe for
// concurrent use and is handed the request index.
func runServeWorkload(workers, reqs int, do func(i int) error) (wallNS int64, sorted []time.Duration, err error) {
	lat := make([]time.Duration, reqs)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
	)
	errc := make(chan error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= reqs {
					return
				}
				t0 := time.Now()
				if err := do(i); err != nil {
					errc <- err
					return
				}
				lat[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	wallNS = time.Since(start).Nanoseconds()
	select {
	case err = <-errc:
		return 0, nil, err
	default:
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return wallNS, lat, nil
}

// runBenchServe writes the mdserve load report (BENCH_serve.json,
// benchReport schema): the full handler stack on a loopback listener,
// driven by concurrent clients at each worker count, for the two
// serving modes a remote scheduler uses — one-shot /v1/batch requests
// and stateful NDJSON session streams (create, stream ops, delete).
//
// serial_ns holds each entry's workload wall time (the column benchgate
// gates); req_per_sec and the p50/p99 request latencies are recorded
// alongside. Every entry records the host shape so benchgate skips —
// not fails — entries measured under a different core count.
func runBenchServe(path string, workersList []int) error {
	if len(workersList) == 0 {
		workersList = []int{1, 8}
	}
	const (
		batchReqs  = 512
		batchOps   = 64
		streamReqs = 64
		streamOps  = 200
		warmupReqs = 32
	)
	s := serve.New(serve.Config{MaxInFlight: 64, RequestTimeout: time.Minute})
	if _, err := s.Register("bench", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		return err
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	batchBody, err := json.Marshal(serve.BatchRequest{Machine: "bench", Ops: benchServeBatchOps(batchOps)})
	if err != nil {
		return err
	}
	postJSON := func(path string, body []byte, out any) error {
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, data)
		}
		if out != nil {
			return json.Unmarshal(data, out)
		}
		return nil
	}
	doBatch := func(int) error {
		return postJSON("/v1/batch", batchBody, nil)
	}

	var streamBody bytes.Buffer
	for _, op := range benchServeBatchOps(streamOps) {
		line, err := json.Marshal(op)
		if err != nil {
			return err
		}
		streamBody.Write(line)
		streamBody.WriteByte('\n')
	}
	doStream := func(int) error {
		var si serve.SessionInfo
		if err := postJSON("/v1/sessions", []byte(`{"machine":"bench"}`), &si); err != nil {
			return err
		}
		resp, err := client.Post(ts.URL+"/v1/sessions/"+si.SessionID+"/stream",
			"application/x-ndjson", bytes.NewReader(streamBody.Bytes()))
		if err != nil {
			return err
		}
		lines := 0
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines++
		}
		resp.Body.Close()
		if err := sc.Err(); err != nil {
			return err
		}
		if want := len(benchServeBatchOps(streamOps)) + 1; lines != want {
			return fmt.Errorf("stream answered %d lines, want %d", lines, want)
		}
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+si.SessionID, nil)
		if err != nil {
			return err
		}
		dresp, err := client.Do(req)
		if err != nil {
			return err
		}
		dresp.Body.Close()
		return nil
	}

	rep := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}
	modes := []struct {
		name string
		reqs int
		do   func(int) error
	}{
		{"serve-batch", batchReqs, doBatch},
		{"serve-stream", streamReqs, doStream},
	}
	for _, mode := range modes {
		// Warm the handler stack, the connection pool and the reduction
		// cache before any timed run.
		if _, _, err := runServeWorkload(4, warmupReqs, mode.do); err != nil {
			return err
		}
		for _, w := range workersList {
			wallNS, lat, err := runServeWorkload(w, mode.reqs, mode.do)
			if err != nil {
				return err
			}
			e := benchEntry{
				Name:       fmt.Sprintf("%s-w%d", mode.name, w),
				Workers:    w,
				SerialNS:   wallNS,
				GoMaxProcs: rep.GoMaxProcs,
				NumCPU:     rep.NumCPU,
				P50US:      quantileUS(lat, 0.50),
				P99US:      quantileUS(lat, 0.99),
			}
			if wallNS > 0 {
				e.ReqPerSec = float64(mode.reqs) / (float64(wallNS) / 1e9)
			}
			rep.Entries = append(rep.Entries, e)
			fmt.Fprintf(os.Stderr, "paper: bench-serve: %-18s %9.1fms  %8.0f req/s  p50 %6dus  p99 %6dus\n",
				e.Name, float64(wallNS)/1e6, e.ReqPerSec, e.P50US, e.P99US)
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d entries)\n", path, len(rep.Entries))
	return nil
}
