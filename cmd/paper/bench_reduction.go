package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/forbidden"
	"repro/internal/machines"
)

// exactBenchBudget is the fixed node budget for the stage-exact entry: a
// deterministic amount of branch-and-bound work, large enough to time
// meaningfully but bounded regardless of the machine.
const exactBenchBudget = 200_000

// benchMachines is the Tables 1-4 workload the per-stage report runs.
var benchMachines = []string{"mips", "alpha", "cydra5", "cydra5-subset"}

// benchReps is how many times each measurement repeats; the report keeps
// the per-stage minimum. One-shot wall times on a loaded host are too
// noisy to gate a 20% regression threshold on millisecond-scale stages.
const benchReps = 3

// stageTimes accumulates wall time per reduction stage across the
// four-machine workload.
type stageTimes struct {
	fmatrix, genset, prune, sel int64
}

func minNZ(a, b int64) int64 {
	if a == 0 || (b != 0 && b < a) {
		return b
	}
	return a
}

// measureStages runs the reduction stage by stage on every bench machine
// at the given worker count benchReps times, keeping each stage's
// fastest run. SelectCover runs under both paper objectives, mirroring
// the reduction-pipeline entry of -bench-json.
func measureStages(w int) stageTimes {
	var best stageTimes
	for rep := 0; rep < benchReps; rep++ {
		t := measureStagesOnce(w)
		best.fmatrix = minNZ(best.fmatrix, t.fmatrix)
		best.genset = minNZ(best.genset, t.genset)
		best.prune = minNZ(best.prune, t.prune)
		best.sel = minNZ(best.sel, t.sel)
	}
	return best
}

func measureStagesOnce(w int) stageTimes {
	var t stageTimes
	for _, name := range benchMachines {
		e := machines.ByName(name).Expand()

		start := time.Now()
		m := forbidden.ComputeParallel(e, w)
		cm := m.Collapse(m.ComputeClasses())
		t.fmatrix += time.Since(start).Nanoseconds()

		start = time.Now()
		gen := core.GeneratingSetParallel(cm, nil, w)
		t.genset += time.Since(start).Nanoseconds()

		start = time.Now()
		pruned := core.Prune(cm, gen)
		t.prune += time.Since(start).Nanoseconds()

		start = time.Now()
		for _, obj := range []core.Objective{
			{Kind: core.ResUses},
			{Kind: core.KCycleWord, K: 3},
		} {
			core.SelectCover(cm, pruned, obj)
		}
		t.sel += time.Since(start).Nanoseconds()
	}
	return t
}

// runBenchReduction writes the per-stage reduction wall-time report
// (BENCH_reduction.json, same schema as BENCH_parallel.json): one entry
// per pipeline stage over the Tables 1-4 workload, plus the exact-cover
// branch and bound on the Cydra 5 subset under a fixed node budget.
// Prune and SelectCover are serial stages, so their parallel column
// re-measures the same serial code (speedup ~1 by construction); the
// per-stage serial times are the report's point.
func runBenchReduction(path string, workers int) error {
	rep := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}

	fmt.Fprintf(os.Stderr, "paper: bench-reduction: %d workers\n", workers)

	serial := measureStages(1)
	par := measureStages(workers)
	mk := func(name string, s, p int64) benchEntry {
		e := benchEntry{Name: name, Workers: workers, SerialNS: s, ParallelNS: p,
			GoMaxProcs: rep.GoMaxProcs, NumCPU: rep.NumCPU}
		if p > 0 {
			e.Speedup = float64(s) / float64(p)
		}
		return e
	}
	rep.Entries = append(rep.Entries,
		mk("stage-fmatrix", serial.fmatrix, par.fmatrix),
		mk("stage-genset", serial.genset, par.genset),
		mk("stage-prune", serial.prune, par.prune),
		mk("stage-select", serial.sel, par.sel),
	)

	// Exact cover: fixed node budget on the Cydra 5 subset's pruned
	// generating set, serial versus pooled subtree search.
	e := machines.ByName("cydra5-subset").Expand()
	m := forbidden.ComputeParallel(e, workers)
	cm := m.Collapse(m.ComputeClasses())
	pruned := core.Prune(cm, core.GeneratingSetParallel(cm, nil, workers))
	var exS, exP int64
	for rep := 0; rep < benchReps; rep++ {
		exS = minNZ(exS, timeIt(func() { core.ExactCoverWorkers(cm, pruned, exactBenchBudget, 1) }))
		exP = minNZ(exP, timeIt(func() { core.ExactCoverWorkers(cm, pruned, exactBenchBudget, workers) }))
	}
	rep.Entries = append(rep.Entries, mk("stage-exact", exS, exP))

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	for _, e := range rep.Entries {
		fmt.Fprintf(os.Stderr, "paper: bench-reduction: %-14s serial %9.2fms  parallel %9.2fms  speedup %.2fx\n",
			e.Name, float64(e.SerialNS)/1e6, float64(e.ParallelNS)/1e6, e.Speedup)
	}
	fmt.Printf("wrote %s (%d entries)\n", path, len(rep.Entries))
	return nil
}
