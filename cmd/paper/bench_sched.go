package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/machines"
	"repro/internal/query"
	"repro/internal/sched"
	"repro/internal/tables"
)

// runBenchSched writes the scheduler wall-time report (BENCH_sched.json,
// benchReport schema): the full IMS loop corpus scheduled once per Table
// 6 representation (original vs reduced x discrete vs bitvector), timing
// the range-query slot scan (serial_ns — the column benchgate gates)
// against the naive per-cycle CheckWithAlt scan (parallel_ns), with
// speedup = naive/range. Both scans produce byte-identical schedules
// (pinned by TestRangeScanMatchesNaiveScan), so the comparison times
// pure query-strategy differences. Each measurement is the best of
// benchReps runs. The per-representation probe statistics ride along:
// check_equiv_per_decision is the naive-equivalent probe count per
// scheduling decision and range_work_per_decision the packed words or
// table cells the range scan actually touched per decision — the gap
// between them is the paper's k-cycles-per-word economics at work.
func runBenchSched(path string, workers, loopLimit int) error {
	m := machines.Cydra5()
	loops := tables.BenchmarkLoops(m)
	if loopLimit > 0 && loopLimit < len(loops) {
		loops = loops[:loopLimit]
	}
	rep := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Loops:       len(loops),
	}

	fmt.Fprintf(os.Stderr, "paper: bench-sched: %d loops, %d workers\n", len(loops), workers)

	for _, r := range tables.PaperRepresentations(m) {
		factory := r.Factory()
		// Scheduling runs through per-worker arenas (modules reset, not
		// rebuilt; zero allocations per loop in steady state), the same
		// path the throughput benchmark ships. Schedules are identical to
		// fresh per-loop modules (TestArenaMatchesFreshCorpus).
		runCorpus := func(cfg sched.Config) {
			for _, res := range sched.ScheduleBatchArena(loops, m, factory, cfg, workers) {
				if !res.OK {
					panic(fmt.Sprintf("bench-sched: %s failed to schedule a corpus loop", r.Label))
				}
			}
		}
		// One untimed pass per scan mode first, so the shared compiled-table
		// cache and the allocator are warm before either side is measured.
		runCorpus(sched.Config{BudgetRatio: 6})
		runCorpus(sched.Config{BudgetRatio: 6, NaiveScan: true})
		// More reps than the reduction bench: the two sides differ by a
		// modest constant factor, so best-of needs enough samples for the
		// minimum to shed scheduler-external interference on both sides.
		const schedReps = 5 * benchReps
		var rangeNS, naiveNS int64
		for i := 0; i < schedReps; i++ {
			rangeNS = minNZ(rangeNS, timeIt(func() { runCorpus(sched.Config{BudgetRatio: 6}) }))
			naiveNS = minNZ(naiveNS, timeIt(func() { runCorpus(sched.Config{BudgetRatio: 6, NaiveScan: true}) }))
		}

		// One instrumented serial pass for the probe statistics: capture
		// every module the scheduler builds (one per II attempt) and fold
		// its counters after the loop is scheduled.
		var checkEquiv, rangeWork int64
		decisions := 0
		for _, g := range loops {
			var ctrs []*query.Counters
			wrapped := func(ii int) query.Module {
				mod := factory(ii)
				ctrs = append(ctrs, mod.Counters())
				return mod
			}
			res := sched.Schedule(g, m, wrapped, sched.Config{BudgetRatio: 6})
			decisions += res.Decisions
			for _, c := range ctrs {
				checkEquiv += c.CheckCalls + c.FirstFreeCycles
				rangeWork += c.FirstFreeWork
			}
		}

		e := benchEntry{
			Name:       "sched-ims-" + r.Label,
			Workers:    workers,
			SerialNS:   rangeNS,
			ParallelNS: naiveNS,
			GoMaxProcs: rep.GoMaxProcs,
			NumCPU:     rep.NumCPU,
		}
		if rangeNS > 0 {
			e.Speedup = float64(naiveNS) / float64(rangeNS)
		}
		if decisions > 0 {
			e.CheckEquivPerDecision = float64(checkEquiv) / float64(decisions)
			e.RangeWorkPerDecision = float64(rangeWork) / float64(decisions)
		}
		rep.Entries = append(rep.Entries, e)
		fmt.Fprintf(os.Stderr, "paper: bench-sched: %-22s range %8.1fms  naive %8.1fms  speedup %.2fx  checks/dec %.2f  range-work/dec %.2f\n",
			r.Label, float64(rangeNS)/1e6, float64(naiveNS)/1e6, e.Speedup, e.CheckEquivPerDecision, e.RangeWorkPerDecision)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d entries)\n", path, len(rep.Entries))
	return nil
}
