package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/loopgen"
	"repro/internal/machines"
	"repro/internal/query"
	"repro/internal/resmodel"
	"repro/internal/sched"

	_ "repro/internal/automaton" // registers the "fsa" query backend
)

// This file generates the representation-crossover artifacts: the
// committed CROSSOVER.md frontier table (where does the
// forbidden-latency automaton beat the reduced reservation tables, and
// where do the tables win?) and the BENCH_repr.json wall-time report
// the bench-compare gate tracks. The frontier is measured with the same
// deterministic calibration query.Select uses for "auto", so the
// committed table IS the selection policy, rendered.

// crossMachine is one measured description.
type crossMachine struct {
	name string
	e    *resmodel.Expanded
}

// crossStratum groups machines measured under one policy (linear or
// modulo) and carries the invariant the stratum must exhibit: which
// backend is expected to win the majority of its machines ("" = no
// expectation; the real machines are reported, not asserted).
type crossStratum struct {
	name    string
	ii      int
	expect  string
	members []crossMachine
}

// genPipes builds a wide multipipeline machine: nOps pipelines, each op
// walking a private per-pipeline resource sequence for span cycles and
// then hitting one of `shared` writeback buses. This is the shape the
// paper's multipipeline machines idealize — and the FSA's sweet spot:
// a failing spot check hits the bus conflict in one forward-state
// lookup, while the reservation tables must scan past every private
// resource (sorted before the bus) or AND every packed word below it.
func genPipes(rng *rand.Rand, nOps, span, shared int) *resmodel.Machine {
	m := &resmodel.Machine{Name: "pipes"}
	nRes := nOps*span + shared
	for r := 0; r < nRes; r++ {
		m.Resources = append(m.Resources, fmt.Sprintf("r%d", r))
	}
	for o := 0; o < nOps; o++ {
		op := resmodel.Operation{Name: fmt.Sprintf("op%d", o), Latency: span + 1}
		var t resmodel.Table
		for c := 0; c < span; c++ {
			t.Uses = append(t.Uses, resmodel.Usage{Resource: o*span + c, Cycle: c})
		}
		t.Uses = append(t.Uses, resmodel.Usage{Resource: nOps*span + rng.Intn(shared), Cycle: span})
		t.Normalize()
		op.Alts = append(op.Alts, t)
		m.Ops = append(m.Ops, op)
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

// genPipesAt cycles the wide-pipes stratum through three pipeline
// shapes (pipeline count x span, one shared bus) so the stratum spans a
// band of widths rather than one point.
func genPipesAt(rng *rand.Rand, i int) *resmodel.Machine {
	shapes := []struct{ nOps, span int }{{10, 3}, {12, 3}, {8, 4}}
	s := shapes[i%len(shapes)]
	return genPipes(rng, s.nOps, s.span, 1)
}

// genDense builds a small machine whose ops each place `uses` usages on
// random resources across cycles 0..span-1 — solid contention bands the
// reservation tables amortize well.
func genDense(rng *rand.Rand, nRes, nOps, span, uses int) *resmodel.Machine {
	m := &resmodel.Machine{Name: "dense"}
	for r := 0; r < nRes; r++ {
		m.Resources = append(m.Resources, fmt.Sprintf("r%d", r))
	}
	for o := 0; o < nOps; o++ {
		op := resmodel.Operation{Name: fmt.Sprintf("op%d", o), Latency: span + 1}
		var t resmodel.Table
		for u := 0; u < uses; u++ {
			t.Uses = append(t.Uses, resmodel.Usage{Resource: rng.Intn(nRes), Cycle: u % span})
		}
		t.Normalize()
		op.Alts = append(op.Alts, t)
		m.Ops = append(m.Ops, op)
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

// reduceFor returns the 64-cycle-word reduction of m — the variant the
// scheduling stack ships.
func reduceFor(m *resmodel.Machine) (*resmodel.Expanded, error) {
	red := core.CachedReduce(m.Expand(), core.Objective{Kind: core.KCycleWord, K: 64})
	if err := red.Verify(); err != nil {
		return nil, err
	}
	return red.Reduced, nil
}

// crossoverStrata builds the full measurement set: the four real
// machines in both description variants, plus deterministic random
// strata spanning resource count x usage density, linear and modulo.
func crossoverStrata() ([]crossStratum, error) {
	real := func(use string) ([]crossMachine, error) {
		var out []crossMachine
		for _, name := range []string{"mips", "alpha", "cydra5", "parisc"} {
			m := machines.ByName(name)
			e := m.Expand()
			if use == "reduced" {
				var err error
				if e, err = reduceFor(m); err != nil {
					return nil, err
				}
			}
			out = append(out, crossMachine{name: name, e: e})
		}
		return out, nil
	}
	origs, err := real("original")
	if err != nil {
		return nil, err
	}
	reds, err := real("reduced")
	if err != nil {
		return nil, err
	}

	gen := func(seed int64, n int, f func(*rand.Rand, int) *resmodel.Machine) []crossMachine {
		rng := rand.New(rand.NewSource(seed))
		var out []crossMachine
		for i := 0; i < n; i++ {
			m := f(rng, i)
			out = append(out, crossMachine{name: fmt.Sprintf("%s%02d", m.Name, i), e: m.Expand()})
		}
		return out
	}
	const perStratum = 8
	return []crossStratum{
		{name: "real/original", ii: 0, members: origs},
		{name: "real/reduced", ii: 0, members: reds},
		{name: "small-sparse/linear", ii: 0, members: gen(101, perStratum,
			func(rng *rand.Rand, _ int) *resmodel.Machine { return genDense(rng, 6, 5, 4, 3) })},
		{name: "small-dense/linear", ii: 0, members: gen(102, perStratum,
			func(rng *rand.Rand, _ int) *resmodel.Machine { return genDense(rng, 8, 6, 4, 10) })},
		{name: "wide-pipes/linear", ii: 0, expect: "fsa", members: gen(103, perStratum, genPipesAt)},
		{name: "small-dense/modulo-ii8", ii: 8, expect: "bitvector", members: gen(104, perStratum,
			func(rng *rand.Rand, _ int) *resmodel.Machine { return genDense(rng, 8, 6, 4, 10) })},
		// Modulo keeps the 31-resource 10x3 shape: at 12x3 (37 res) or 8x4
		// (33 res) the packed word collapses to one cycle and the discrete
		// table wins instead — a frontier the linear stratum's mixed shapes
		// show but the asserted invariant should not straddle.
		{name: "wide-pipes/modulo-ii8", ii: 8, expect: "bitvector", members: gen(105, perStratum,
			func(rng *rand.Rand, _ int) *resmodel.Machine { return genPipes(rng, 10, 3, 1) })},
	}, nil
}

// fmtCost renders a calibration entry's cost column.
func fmtCost(bc *query.BackendCost) string {
	if bc == nil || !bc.Feasible {
		return "—"
	}
	return fmt.Sprintf("%.2f", bc.CostPerOp)
}

func fmtBytes(bc *query.BackendCost) string {
	if bc == nil || !bc.Feasible {
		return "—"
	}
	return fmt.Sprintf("%d", bc.StateBytes)
}

// runCrossover measures every stratum machine under query.Select's
// calibration and writes the CROSSOVER.md frontier table. Everything is
// deterministic — fixed machine seeds, a counted (never wall-clock)
// cost model — so regeneration on any host reproduces the committed
// bytes; the Makefile target enforces that with git diff. Before
// writing, the function enforces the frontier invariants the selection
// policy promises: the winner is never costlier than a feasible fixed
// backend, the FSA carries the wide-pipes linear stratum, and the
// bitvector carries the modulo strata.
func runCrossover(path string) error {
	strata, err := crossoverStrata()
	if err != nil {
		return err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# Representation crossover: automaton vs reduced reservation tables\n\n")
	fmt.Fprintf(&b, "Measured by `query.Select`'s deterministic calibration: every feasible\n")
	fmt.Fprintf(&b, "backend answers the same seeded probe trace (range scans, assigns,\n")
	fmt.Fprintf(&b, "unamortized spot checks, frees) and is charged its own counted work per\n")
	fmt.Fprintf(&b, "naive-equivalent probe. `cost` is that ratio — lower is better — and\n")
	fmt.Fprintf(&b, "`winner` is what `\"representation\": \"auto\"` serves for the machine.\n")
	fmt.Fprintf(&b, "Real machines appear in both description variants; random strata are\n")
	fmt.Fprintf(&b, "seeded, 8 machines each. `—` marks an infeasible backend (the FSA on\n")
	fmt.Fprintf(&b, "modulo tables, or past its %d-states-per-automaton budget).\n", query.DefaultMaxFSAStates)
	fmt.Fprintf(&b, "`fsa states` sums the interned forward and reverse automaton states\n")
	fmt.Fprintf(&b, "(each automaton is bounded separately); `bytes` is live reserved-state\n")
	fmt.Fprintf(&b, "storage per backend on the trace's partial schedule.\n\n")
	fmt.Fprintf(&b, "| stratum | machine | res | cost disc | cost bv | cost fsa | fsa states | bytes disc | bytes bv | bytes fsa | winner |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|---|---|\n")

	for _, st := range strata {
		wins := map[string]int{}
		for _, cm := range st.members {
			sel, err := query.Select(cm.e, query.Policy{Representation: "auto", II: st.ii})
			if err != nil {
				return fmt.Errorf("crossover: %s/%s: %v", st.name, cm.name, err)
			}
			cal := sel.Cal
			win := cal.Cost(sel.Backend)
			if win == nil || !win.Feasible {
				return fmt.Errorf("crossover: %s/%s: winner %q has no feasible entry", st.name, cm.name, sel.Backend)
			}
			for _, bc := range cal.Backends {
				if bc.Feasible && bc.CostPerOp < win.CostPerOp {
					return fmt.Errorf("crossover: %s/%s: winner %q cost %.3f beaten by %q at %.3f",
						st.name, cm.name, sel.Backend, win.CostPerOp, bc.Backend, bc.CostPerOp)
				}
			}
			wins[sel.Backend]++
			d, bv, fsa := cal.Cost("discrete"), cal.Cost("bitvector"), cal.Cost("fsa")
			states := "—"
			if fsa != nil && fsa.Feasible {
				states = fmt.Sprintf("%d", fsa.States)
			}
			fmt.Fprintf(&b, "| %s | %s | %d | %s | %s | %s | %s | %s | %s | %s | %s |\n",
				st.name, cm.name, len(cm.e.Resources),
				fmtCost(d), fmtCost(bv), fmtCost(fsa), states,
				fmtBytes(d), fmtBytes(bv), fmtBytes(fsa), sel.Backend)
		}
		if st.expect != "" && 2*wins[st.expect] <= len(st.members) {
			return fmt.Errorf("crossover: stratum %s: expected %q to win a majority, got wins %v",
				st.name, st.expect, wins)
		}
	}

	fmt.Fprintf(&b, "\nThe frontier in words: the reduced bitvector wins wherever range scans\n")
	fmt.Fprintf(&b, "and dense contention bands dominate (all real machines, dense strata,\n")
	fmt.Fprintf(&b, "every modulo table — where the FSA is structurally excluded). The FSA\n")
	fmt.Fprintf(&b, "wins wide multipipeline machines with a shared writeback bus: too many\n")
	fmt.Fprintf(&b, "resources to pack several cycles per word, and failing spot checks that\n")
	fmt.Fprintf(&b, "one forward-state lookup answers before the tables reach the bus row.\n")

	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d strata)\n", path, len(strata))
	return nil
}

// runBenchRepr writes BENCH_repr.json (benchReport schema): real
// scheduling wall time per query backend — the PA-RISC acyclic corpus
// through OperationDriven per backend, and the Cydra 5 modulo corpus
// through arenas for the backends that support modulo tables. serial_ns
// (the gated column) is the minimum of benchReps passes.
func runBenchRepr(path string) error {
	rep := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}

	// Acyclic: 200 PA-RISC basic blocks per backend.
	pm := machines.ByName("parisc")
	pe, err := reduceFor(pm)
	if err != nil {
		return err
	}
	dcfg := loopgen.DefaultDAG(pm)
	dcfg.Blocks = 200
	dags, err := loopgen.GenerateDAGs(pm, dcfg)
	if err != nil {
		return err
	}
	for _, backend := range []string{"discrete", "bitvector", "fsa"} {
		if _, err := query.Select(pe, query.Policy{Representation: backend}); err != nil {
			return fmt.Errorf("bench-repr: %s on parisc/reduced: %v", backend, err)
		}
		factory := func(ii int) query.Module {
			sel, err := query.Select(pe, query.Policy{Representation: backend, II: ii})
			if err != nil {
				panic(err)
			}
			return sel.Module
		}
		a := sched.NewArena(factory)
		pass := func() {
			for _, g := range dags {
				if _, err := a.OperationDriven(g, pe); err != nil {
					panic(err)
				}
			}
		}
		pass() // warm the arena
		var best int64
		for i := 0; i < benchReps; i++ {
			best = minNZ(best, timeIt(pass))
		}
		rep.Entries = append(rep.Entries, benchEntry{
			Name: "repr-parisc-acyclic-" + backend, Workers: 1, SerialNS: best,
			GoMaxProcs: rep.GoMaxProcs, NumCPU: rep.NumCPU,
		})
	}
	rep.Loops = len(dags)

	// Modulo: 200 stratified Cydra 5 loops per modulo-capable policy.
	cm := machines.Cydra5()
	ce, err := reduceFor(cm)
	if err != nil {
		return err
	}
	loops, err := loopgen.GenerateStrata(cm, loopgen.DefaultStrata(200))
	if err != nil {
		return err
	}
	cfg := sched.DefaultConfig()
	for _, backend := range []string{"discrete", "bitvector", "auto"} {
		b := backend
		factory := func(ii int) query.Module {
			sel, err := query.Select(ce, query.Policy{Representation: b, II: ii})
			if err != nil {
				panic(err)
			}
			return sel.Module
		}
		sched.ScheduleBatchArena(loops, cm, factory, cfg, 1) // warm caches
		var best int64
		for i := 0; i < benchReps; i++ {
			best = minNZ(best, timeIt(func() { sched.ScheduleBatchArena(loops, cm, factory, cfg, 1) }))
		}
		rep.Entries = append(rep.Entries, benchEntry{
			Name: "repr-cydra5-modulo-" + backend, Workers: 1, SerialNS: best,
			GoMaxProcs: rep.GoMaxProcs, NumCPU: rep.NumCPU,
		})
	}

	return writeBenchReport(path, &rep)
}

// writeBenchReport marshals a report the way every bench harness does
// and prints the per-entry summary lines.
func writeBenchReport(path string, rep *benchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	for _, e := range rep.Entries {
		fmt.Fprintf(os.Stderr, "paper: bench-repr: %-28s %10.2fms\n", e.Name, float64(e.SerialNS)/1e6)
	}
	fmt.Printf("wrote %s (%d entries)\n", path, len(rep.Entries))
	return nil
}
