// wordsize: the ablation behind Tables 1-4 — how the selection objective
// and memory-word size change the reduced description, for all three of
// the paper's machines.
//
// Reducing for k-cycle words deliberately spends MORE resource usages to
// get FEWER non-empty words ("these increases permit faster detection of
// resource contentions and do not increase memory space"), so the right
// objective depends on the reserved-table representation the compiler
// uses.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
)

func main() {
	for _, name := range []string{"mips", "alpha", "cydra5"} {
		m := repro.BuiltinMachine(name)
		e := m.Expand()
		origUses := 0
		for _, o := range e.Ops {
			origUses += len(o.Table.Uses)
		}
		fmt.Printf("=== %s: %d resources, %d usages ===\n", m.Name, len(m.Resources), origUses)
		fmt.Printf("%-18s %10s %8s %14s %14s\n", "objective", "resources", "usages", "1-cyc words/op", "k-cyc words/op")

		// First find the discrete reduction to derive the word capacities.
		ru, err := repro.Reduce(m, repro.Objective{Kind: repro.ResUses})
		if err != nil {
			log.Fatal(err)
		}
		k64 := repro.MaxCyclesPerWord(ru.NumResources(), 64)
		if k64 < 1 {
			k64 = 1
		}

		objs := []repro.Objective{
			{Kind: repro.ResUses},
			{Kind: repro.KCycleWord, K: 1},
			{Kind: repro.KCycleWord, K: k64},
		}
		for _, obj := range objs {
			red, err := repro.Reduce(m, obj)
			if err != nil {
				log.Fatal(err)
			}
			k := 1
			if obj.Kind == repro.KCycleWord {
				k = obj.K
			}
			fmt.Printf("%-18v %10d %8d %14.2f %14.2f\n",
				obj, red.NumResources(), red.NumUsages(),
				core.AvgWordUsesPerOp(red.ClassTables, 1),
				core.AvgWordUsesPerOp(red.ClassTables, k))
		}
		fmt.Println()
	}
	fmt.Println("reading the table: the k-cycle-word objective trades usages for fewer")
	fmt.Println("words per query; with 64-bit words a handful of AND-and-test operations")
	fmt.Println("detect every contention (the paper's 4-7x query speedup).")
}
