// Quickstart: parse a machine description, reduce it, and answer
// contention queries — the paper's Figure 1 in ten minutes.
package main

import (
	"fmt"
	"log"

	"repro"
)

const machineSrc = `
# The example machine of Figure 1 (Eichenberger & Davidson, PLDI 1996).
# Operation A is a fully pipelined functional unit; operation B is
# partially pipelined: r3 is a multiply stage held for 4 consecutive
# cycles, r4 a rounding stage held for 2.
machine example
resources r0 r1 r2 r3 r4

op A latency 3 {
  r0: 0
  r1: 1
  r2: 2
}

op B latency 8 {
  r1: 0
  r2: 1
  r3: 2-5
  r4: 6 7
}
`

func main() {
	m, err := repro.ParseMachine(machineSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine %q: %d resources, %d operations\n\n", m.Name, len(m.Resources), len(m.Ops))

	// Reduce the description. The result is verified automatically: it
	// forbids exactly the same initiation intervals as the original.
	red, err := repro.Reduce(m, repro.Objective{Kind: repro.ResUses})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced: %d -> %d resources, 11 -> %d usages\n",
		len(m.Resources), red.NumResources(), red.NumUsages())
	fmt.Println("\nreduced description:")
	fmt.Println(repro.PrintMachine(red.Reduced.Machine()))

	// Query through the reduced description. Original and reduced answer
	// identically — that is the paper's theorem.
	mod := repro.NewDiscreteModule(red.Reduced, 0)
	orig := repro.NewDiscreteModule(m.Expand(), 0)
	a, b := red.Reduced.OpIndex("A"), red.Reduced.OpIndex("B")

	mod.Assign(a, 0, 1) // schedule A at cycle 0
	orig.Assign(a, 0, 1)
	fmt.Println("with A scheduled at cycle 0:")
	for cyc := 0; cyc <= 3; cyc++ {
		r, o := mod.Check(b, cyc), orig.Check(b, cyc)
		fmt.Printf("  can B start at cycle %d?  reduced: %-5v original: %-5v\n", cyc, r, o)
		if r != o {
			log.Fatal("BUG: descriptions disagree")
		}
	}

	// The reduced table is also cheaper to query: compare work units.
	fmt.Printf("\nwork units per check: reduced %.1f vs original %.1f\n",
		mod.Counters().CheckPerCall(), orig.Counters().CheckPerCall())
}
