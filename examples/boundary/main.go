// boundary: precise basic-block boundary conditions — the "dangling
// resource requirements" of Section 1. A long-latency operation issued
// near the end of one basic block still occupies resources when the
// successor block begins executing; a compiler that hides latencies by
// scheduling across blocks must start the successor's reserved table
// with the union of everything dangling from its predecessors.
//
// The demo schedules two consecutive blocks on the MIPS R3010: block A
// ends with a double-precision divide (17 cycles in the divider), and
// block B wants to issue its own divide immediately. With boundary
// conditions the second divide is pushed past the dangling occupancy;
// without them the "schedule" would oversubscribe the divider — which we
// show by validating both against one concatenated trace.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/query"
)

func main() {
	m := repro.BuiltinMachine("mips")
	e := m.Expand()
	fdiv := e.OpIndex("fdiv.d")
	fadd := e.OpIndex("fadd.s")
	span := func(op int) int { return e.Ops[op].Table.Span() }

	// ---- Block A: ends with fdiv.d issued 2 cycles before the branch.
	blockA := query.NewDiscrete(e, 0)
	blockA.Assign(fadd, 0, 1)
	blockA.Assign(fdiv, 2, 2) // divider busy through cycle 2+19
	exit := 4                 // block A is 4 cycles long
	fmt.Printf("block A (len %d): fadd.s@0, fdiv.d@2 (table span %d — dangles %d cycles into B)\n",
		exit, span(fdiv), 2+span(fdiv)-exit)

	// ---- Extract the dangling requirements at the block boundary.
	dangling := query.DanglingFrom(blockA.Instances(), span, exit)
	for _, d := range dangling {
		fmt.Printf("dangling into B: %s issued %d cycles before entry\n", e.Ops[d.Op].Name, d.IssueCycle)
	}

	// ---- Block B: seeded with the boundary conditions.
	blockB := query.NewDiscrete(e, 0)
	if err := blockB.SeedDangling(dangling); err != nil {
		log.Fatal(err)
	}
	first := -1
	for t := 0; t < 64; t++ {
		if blockB.Check(fdiv, t) {
			first = t
			break
		}
	}
	fmt.Printf("\nwith boundary conditions:    earliest fdiv.d in block B = cycle %d\n", first)

	// ---- The naive module that forgets the boundary would say cycle 0.
	naive := query.NewDiscrete(e, 0)
	naiveFirst := -1
	for t := 0; t < 64; t++ {
		if naive.Check(fdiv, t) {
			naiveFirst = t
			break
		}
	}
	fmt.Printf("without boundary conditions: earliest fdiv.d in block B = cycle %d\n", naiveFirst)

	// ---- Ground truth: one concatenated trace.
	concat := query.NewDiscrete(e, 0)
	concat.Assign(fadd, 0, 1)
	concat.Assign(fdiv, 2, 2)
	fmt.Printf("\nground truth on the concatenated trace:\n")
	for _, cand := range []int{naiveFirst, first} {
		ok := concat.Check(fdiv, exit+cand)
		fmt.Printf("  fdiv.d at block-B cycle %d (absolute %d): contention-free = %v\n",
			cand, exit+cand, ok)
	}
	fmt.Println("\nthe seeded module reproduces the concatenated table exactly; the naive one")
	fmt.Println("would have oversubscribed the divider across the block boundary.")
}
