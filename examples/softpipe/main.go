// softpipe: software-pipeline SAXPY (y[i] += a * x[i]) on the Cydra 5
// with Rau's Iterative Modulo Scheduler, comparing the contention query
// module across machine representations — the paper's Section 8
// experiment on one loop.
//
// The scheduler is representation-blind: original/reduced and
// discrete/bitvector produce the SAME schedule; only the work the query
// module performs differs.
package main

import (
	"fmt"
	"log"

	"repro"
)

const saxpy = `
loop saxpy
node addr  aadd    # x/y index update
node ldx   ld.w    # load x[i]
node ldy   ld.w    # load y[i]
node mul   fmul.s  # a * x[i]
node sum   fadd.s  # y[i] + a*x[i]
node sta   aadd    # store index
node st    st.w    # store y[i]
node test  icmp
node br    brtop
edge addr addr delay 2 dist 1
edge addr ldx  delay 2
edge addr ldy  delay 2
edge ldx  mul  delay 22
edge mul  sum  delay 7
edge ldy  sum  delay 22
edge sta  sta  delay 2 dist 1
edge sta  st   delay 2
edge sum  st   delay 6
edge test br   delay 1
`

func main() {
	m := repro.BuiltinMachine("cydra5")
	g, err := repro.ParseLoop(saxpy, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SAXPY on the Cydra 5: %d operations, MII = %d\n\n", len(g.Nodes), repro.MII(g, m))

	// Build the representations of Table 6.
	e := m.Expand()
	ru, err := repro.Reduce(m, repro.Objective{Kind: repro.ResUses})
	if err != nil {
		log.Fatal(err)
	}
	kw, err := repro.Reduce(m, repro.Objective{Kind: repro.KCycleWord, K: 3})
	if err != nil {
		log.Fatal(err)
	}
	k := repro.MaxCyclesPerWord(len(kw.Reduced.Resources), 64)

	type rep struct {
		name    string
		factory repro.ModuleFactory
	}
	reps := []rep{
		{"original / discrete", repro.DiscreteFactory(e)},
		{"reduced  / discrete", repro.DiscreteFactory(ru.Reduced)},
		{fmt.Sprintf("reduced  / bitvector (%d cyc/64b word)", k), repro.BitvectorFactory(kw.Reduced, k, 64)},
	}

	var ref repro.ModuloSchedule
	for i, r := range reps {
		// Wrap the factory to keep the counters of every module built.
		var counters []*repro.QueryCounters
		factory := func(ii int) repro.Module {
			mod := r.factory(ii)
			counters = append(counters, mod.Counters())
			return mod
		}
		res := repro.ModuloScheduleLoop(g, m, factory, repro.DefaultSchedConfig())
		if !res.OK {
			log.Fatalf("%s: scheduling failed", r.name)
		}
		if err := repro.VerifyModuloSchedule(g, e, res); err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		if i == 0 {
			ref = res
			fmt.Printf("schedule: II = %d, %d decisions, kernel below\n", res.II, res.Decisions)
			for v, nodeT := range res.Time {
				fmt.Printf("  %-5s t=%2d (col %d)\n", g.Nodes[v].Name, nodeT, nodeT%res.II)
			}
			fmt.Println()
		} else {
			for v := range res.Time {
				if res.Time[v] != ref.Time[v] {
					log.Fatalf("%s: schedule diverged at node %d", r.name, v)
				}
			}
		}
		var work, calls int64
		for _, c := range counters {
			work += c.TotalWork()
			calls += c.TotalCalls()
		}
		fmt.Printf("%-40s  %3d query calls, %4d work units (%.2f per call)\n",
			r.name, calls, work, float64(work)/float64(calls))
	}
	fmt.Println("\nall representations produced the identical schedule — the paper's guarantee.")
}
