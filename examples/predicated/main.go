// predicated: the Enhanced-Modulo-Scheduling extension of the reserved
// table (Section 5 of the paper cites Warter et al.'s predicate field).
// After IF-conversion, the two arms of a diamond execute under disjoint
// predicates — only one arm's operations are real in any iteration — so
// a predicate-aware reserved table lets both arms share functional-unit
// cycles, reducing the resource-constrained minimum initiation interval.
//
// The demo packs the stores of both arms of
//
//	for i { if c[i] { a[i] = x } else { b[i] = y } }
//
// into the same store-port cycles on the Cydra 5. The unpredicated table
// needs the sum of both arms' port cycles; the predicated table needs the
// maximum.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/query"
)

func main() {
	m := repro.BuiltinMachine("cydra5")
	// Reduce first: the predicated table works identically over the
	// reduced description (contention stays pairwise).
	red, err := repro.Reduce(m, repro.Objective{Kind: repro.ResUses})
	if err != nil {
		log.Fatal(err)
	}
	e := red.Reduced
	st0 := e.OpIndex("st.w.0")
	st1 := e.OpIndex("st.w.1")
	if st0 < 0 || st1 < 0 {
		log.Fatal("store alternatives missing")
	}

	// Predicates: 1 = "then" arm, 2 = "else" arm — disjoint.
	ps := query.NewPredSet(3)
	ps.MarkDisjoint(1, 2)

	// Each arm stores through BOTH memory ports (4 stores per iteration
	// total). Unpredicated, the two arms need disjoint port cycles.
	place := func(ii int, predicated bool) (placedCount int) {
		var pm *query.Predicated
		var dm repro.Module
		if predicated {
			pm = query.NewPredicated(e, ps, ii)
		} else {
			dm = repro.NewDiscreteModule(e, ii)
		}
		id := 0
		stores := []struct {
			op   int
			pred int
		}{
			{st0, 1}, {st1, 1}, // then-arm stores
			{st0, 2}, {st1, 2}, // else-arm stores
		}
		for _, st := range stores {
			for t := 0; t < ii; t++ {
				okHere := false
				if predicated {
					okHere = pm.Check(st.op, t, st.pred)
				} else {
					okHere = dm.Check(st.op, t)
				}
				if okHere {
					if predicated {
						pm.Assign(st.op, t, st.pred, id)
					} else {
						dm.Assign(st.op, t, id)
					}
					id++
					placedCount++
					break
				}
			}
		}
		return placedCount
	}

	fmt.Println("packing 2 predicated store pairs (then-arm + else-arm) into an MRT:")
	for ii := 1; ii <= 8; ii++ {
		plain := place(ii, false)
		pred := place(ii, true)
		mark := func(n int) string {
			if n == 4 {
				return "fits"
			}
			return fmt.Sprintf("only %d/4", n)
		}
		fmt.Printf("  II=%d: unpredicated %-9s predicated %s\n", ii, mark(plain), mark(pred))
	}
	fmt.Println("\nwith disjoint predicates the else-arm reuses the then-arm's port cycles,")
	fmt.Println("so the predicated kernel sustains the same stores at a smaller II —")
	fmt.Println("the EMS payoff the reserved-table representation supports with one extra field.")
}
