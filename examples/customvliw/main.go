// customvliw: author a machine description for a hypothetical 4-wide VLIW
// in terms close to its hardware structure, then let the reducer derive
// the compiler's internal description automatically — the paper's answer
// to error-prone manual reduction during hardware/compiler co-design.
//
// The example then changes the micro-architecture (the divider becomes
// partially pipelined) and re-derives the description, showing why
// automated reduction matters when "resource requirements often change".
package main

import (
	"fmt"
	"log"

	"repro"
)

// buildVLIW authors the machine. divHolds is the number of consecutive
// cycles a divide occupies the divider array — the knob the architects
// keep changing on us.
func buildVLIW(divHolds int) *repro.Machine {
	b := repro.NewMachine("vliw4")
	b.Resources(
		"SLOT0", "SLOT1", "SLOT2", "SLOT3", // issue slots
		"ALU0", "ALU1", // integer ALUs
		"MEM",                  // memory port
		"FPA1", "FPA2", "FPA3", // FP adder stages (pipelined)
		"FPM1", "FPM2", "FPM3", "DIV", // FP multiplier stages + divider array
		"WB0", "WB1", // write-back buses
	)
	// Integer add can go down either ALU (alternatives).
	b.Op("add", 1).
		Use("SLOT0", 0).Use("ALU0", 0).Use("WB0", 1).
		Alt().
		Use("SLOT1", 0).Use("ALU1", 0).Use("WB1", 1)
	b.Op("load", 3).Use("SLOT2", 0).Use("MEM", 0).Use("MEM", 1).Use("WB0", 3)
	b.Op("store", 1).Use("SLOT2", 0).Use("MEM", 0).Use("MEM", 1)
	b.Op("fadd", 3).Use("SLOT3", 0).Stages(0, "FPA1", "FPA2", "FPA3").Use("WB1", 3)
	b.Op("fmul", 4).Use("SLOT3", 0).Stages(0, "FPM1", "FPM2", "FPM3").Use("FPM3", 3).Use("WB1", 4)
	div := b.Op("fdiv", divHolds+2).Use("SLOT3", 0).Use("FPM1", 0)
	div.UseRange("DIV", 1, divHolds).Use("WB1", divHolds+1)
	return b.Build()
}

func describe(m *repro.Machine) {
	for _, obj := range []repro.Objective{
		{Kind: repro.ResUses},
		{Kind: repro.KCycleWord, K: 4},
	} {
		red, err := repro.Reduce(m, obj)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22v %2d resources, %3d usages (generating set %d -> %d after pruning)\n",
			obj, red.NumResources(), red.NumUsages(), red.GenSetSize, red.PrunedSize)
	}
}

func main() {
	fmt.Println("=== VLIW with a 6-cycle non-pipelined divider ===")
	m1 := buildVLIW(6)
	fmt.Printf("authored description: %d resources, %d usages\n", len(m1.Resources), m1.NumUsages())
	describe(m1)

	fmt.Println("\nreduced description the compiler would ship:")
	red, err := repro.Reduce(m1, repro.Objective{Kind: repro.ResUses})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(repro.PrintMachine(red.Reduced.Machine()))

	// The architects revise the divider: it now holds the array for 12
	// cycles. Regenerate instead of re-deriving by hand.
	fmt.Println("=== revision: divider now holds 12 cycles ===")
	m2 := buildVLIW(12)
	describe(m2)

	// Sanity: the two machines genuinely differ — fdiv back to back is
	// legal 7 cycles apart on the old machine, but not on the new one.
	check := func(m *repro.Machine, gap int) bool {
		mod := repro.NewDiscreteModule(m.Expand(), 0)
		fdiv := m.Expand().OpIndex("fdiv")
		mod.Assign(fdiv, 0, 1)
		return mod.Check(fdiv, gap)
	}
	fmt.Printf("\nfdiv then fdiv 7 cycles later: old machine %v, revised machine %v\n",
		check(m1, 7), check(m2, 7))
}
