// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure, plus the ablations called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Work-unit metrics (the paper's machine-independent measure) are
// reported alongside ns/op via ReportMetric.
package repro_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/automaton"
	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/loopgen"
	"repro/internal/machines"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/resmodel"
	"repro/internal/sched"
	"repro/internal/tables"
)

// --- Figure 1 / Figure 3: reducing the example machine ---

func BenchmarkFigure1ReduceExample(b *testing.B) {
	e := machines.Example().Expand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Reduce(e, core.Objective{Kind: core.ResUses})
		if res.NumResources() != 2 {
			b.Fatal("wrong reduction")
		}
	}
}

// --- Tables 1-4: reducing the paper's machines (the paper: "our
// algorithm reduced this original Cydra 5 machine description in less
// than 11 minutes on a SPARC-20") ---

func benchReduce(b *testing.B, m *resmodel.Machine, obj core.Objective) {
	e := m.Expand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Reduce(e, obj)
		if res.NumResources() == 0 {
			b.Fatal("empty reduction")
		}
	}
}

func BenchmarkTable1ReduceCydra5(b *testing.B) {
	for _, obj := range []core.Objective{
		{Kind: core.ResUses},
		{Kind: core.KCycleWord, K: 1},
		{Kind: core.KCycleWord, K: 3},
	} {
		b.Run(obj.String(), func(b *testing.B) { benchReduce(b, machines.Cydra5(), obj) })
	}
}

func BenchmarkTable2ReduceCydra5Subset(b *testing.B) {
	benchReduce(b, machines.Cydra5Subset(), core.Objective{Kind: core.ResUses})
}

func BenchmarkTable3ReduceAlpha(b *testing.B) {
	benchReduce(b, machines.Alpha21064(), core.Objective{Kind: core.ResUses})
}

func BenchmarkTable4ReduceMIPS(b *testing.B) {
	benchReduce(b, machines.MIPS(), core.Objective{Kind: core.ResUses})
}

// --- Headline (abstract): "4 to 7 times faster detection of resource
// contentions". Raw check throughput against a realistically filled
// Modulo Reservation Table, per machine and representation. ---

type headlineRep struct {
	name string
	desc *resmodel.Expanded
	k    int // 0 = discrete
}

func headlineReps(b *testing.B, m *resmodel.Machine) []headlineRep {
	e := m.Expand()
	ru := core.Reduce(e, core.Objective{Kind: core.ResUses})
	if err := ru.Verify(); err != nil {
		b.Fatal(err)
	}
	k := query.MaxCyclesPerWord(ru.NumResources(), 64)
	kw := core.Reduce(e, core.Objective{Kind: core.KCycleWord, K: k})
	if err := kw.Verify(); err != nil {
		b.Fatal(err)
	}
	if k2 := query.MaxCyclesPerWord(kw.NumResources(), 64); k2 < k {
		k = k2
	}
	return []headlineRep{
		{"original-discrete", e, 0},
		{"reduced-discrete", ru.Reduced, 0},
		{fmt.Sprintf("reduced-bitvec%d", k), kw.Reduced, k},
	}
}

func benchChecks(b *testing.B, rep headlineRep, ii int) {
	var mod query.Module
	if rep.k == 0 {
		mod = query.NewDiscrete(rep.desc, ii)
	} else {
		bv, err := query.NewBitvector(rep.desc, rep.k, 64, ii)
		if err != nil {
			b.Fatal(err)
		}
		mod = bv
	}
	// Fill roughly half the MRT deterministically.
	id := 0
	for cyc := 0; cyc < 3*ii; cyc++ {
		op := (cyc * 13) % len(rep.desc.Ops)
		if mod.Schedulable(op) && mod.Check(op, cyc) {
			mod.Assign(op, cyc, id)
			id++
		}
	}
	mod.Counters().Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := i % len(rep.desc.Ops)
		mod.Check(op, i%ii)
	}
	b.StopTimer()
	c := mod.Counters()
	b.ReportMetric(c.CheckPerCall(), "work/check")
}

func BenchmarkHeadlineCheck(b *testing.B) {
	for _, name := range []string{"mips", "alpha", "cydra5"} {
		m := machines.ByName(name)
		for _, rep := range headlineReps(b, m) {
			b.Run(name+"/"+rep.name, func(b *testing.B) {
				benchChecks(b, rep, 24)
			})
		}
	}
}

// --- Table 5: scheduling the loop benchmark ---

func BenchmarkTable5Scheduler(b *testing.B) {
	m := machines.Cydra5()
	e := m.Expand()
	loops := benchLoops(b, m, 150)
	for _, budget := range []int{2, 6} { // 2N is the paper's ablation
		b.Run(fmt.Sprintf("budget%dN", budget), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, g := range loops {
					r := sched.Schedule(g, m, func(ii int) query.Module {
						return query.NewDiscrete(e, ii)
					}, sched.Config{BudgetRatio: budget})
					if !r.OK {
						b.Fatal("schedule failed")
					}
				}
			}
		})
	}
}

// --- Table 6: the contention query module inside the scheduler, per
// representation. ns/op is the paper's "2.9 times faster" measurement on
// this host; work/call is its machine-independent counterpart. ---

func BenchmarkTable6QueryModule(b *testing.B) {
	m := machines.Cydra5()
	loops := benchLoops(b, m, 150)
	for _, rep := range tables.PaperRepresentations(m) {
		b.Run(rep.Label, func(b *testing.B) {
			var work, calls int64
			for i := 0; i < b.N; i++ {
				work, calls = 0, 0
				for _, g := range loops {
					var ctrs []*query.Counters
					factory := rep.Factory()
					r := sched.Schedule(g, m, func(ii int) query.Module {
						mod := factory(ii)
						ctrs = append(ctrs, mod.Counters())
						return mod
					}, sched.DefaultConfig())
					if !r.OK {
						b.Fatal("schedule failed")
					}
					for _, c := range ctrs {
						work += c.TotalWork()
						calls += c.TotalCalls()
					}
				}
			}
			if calls > 0 {
				b.ReportMetric(float64(work)/float64(calls), "work/call")
			}
		})
	}
}

// --- Related-work comparison (Tables 3-4 discussion): cycle-ordered list
// scheduling through the reservation-table module versus the forward
// automaton, on the automaton's home turf. ---

func BenchmarkFSAvsTables(b *testing.B) {
	m := machines.MIPS()
	e := m.Expand()
	red := core.Reduce(e, core.Objective{Kind: core.ResUses})
	if err := red.Verify(); err != nil {
		b.Fatal(err)
	}
	fsa, err := automaton.BuildForward(red.Reduced, automaton.DefaultLimit())
	if err != nil {
		b.Fatal(err)
	}
	dags, err := loopgen.GenerateDAGs(m, loopgen.DefaultDAG(m))
	if err != nil {
		b.Fatal(err)
	}
	dags = dags[:40]

	run := func(b *testing.B, mk func() sched.Issuer) {
		for i := 0; i < b.N; i++ {
			for _, g := range dags {
				if _, err := sched.ListSchedule(g, e, mk()); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("module-original", func(b *testing.B) {
		run(b, func() sched.Issuer { return &sched.ModuleIssuer{M: query.NewDiscrete(e, 0)} })
	})
	b.Run("module-reduced", func(b *testing.B) {
		run(b, func() sched.Issuer { return &sched.ModuleIssuer{M: query.NewDiscrete(red.Reduced, 0)} })
	})
	b.Run("fsa-reduced", func(b *testing.B) {
		run(b, func() sched.Issuer { return &sched.WalkerIssuer{W: fsa.Walk()} })
	})
}

// --- Related-work comparison (Section 2): the UNRESTRICTED scheduling
// model, where operations are inserted in arbitrary order. Reservation
// tables handle insertion in O(usages); the automaton pair must store
// per-cycle states and propagate every insertion through them. ---

func BenchmarkUnrestrictedInsertion(b *testing.B) {
	m := machines.MIPS()
	e := m.Expand()
	red := core.Reduce(e, core.Objective{Kind: core.ResUses})
	if err := red.Verify(); err != nil {
		b.Fatal(err)
	}
	pair, err := automaton.NewPairModule(red.Reduced, automaton.DefaultLimit())
	if err != nil {
		b.Fatal(err)
	}
	dags, err := loopgen.GenerateDAGs(m, loopgen.DefaultDAG(m))
	if err != nil {
		b.Fatal(err)
	}
	dags = dags[:25]
	run := func(b *testing.B, mk func() query.Module) {
		var work, calls int64
		for i := 0; i < b.N; i++ {
			work, calls = 0, 0
			for _, g := range dags {
				mod := mk()
				if _, err := sched.OperationDriven(g, e, mod); err != nil {
					b.Fatal(err)
				}
				work += mod.Counters().TotalWork()
				calls += mod.Counters().TotalCalls()
			}
		}
		if calls > 0 {
			b.ReportMetric(float64(work)/float64(calls), "work/call")
		}
	}
	b.Run("tables-reduced-discrete", func(b *testing.B) {
		run(b, func() query.Module { return query.NewDiscrete(red.Reduced, 0) })
	})
	b.Run("tables-reduced-bitvec", func(b *testing.B) {
		k := query.MaxCyclesPerWord(red.NumResources(), 64)
		run(b, func() query.Module {
			mod, err := query.NewBitvector(red.Reduced, k, 64, 0)
			if err != nil {
				b.Fatal(err)
			}
			return mod
		})
	})
	b.Run("fsa-pair", func(b *testing.B) {
		run(b, func() query.Module { pair.Reset(); return pair })
	})
}

// --- Ablation: 32-bit versus 64-bit words for the bitvector module. ---

func BenchmarkAblationWordSize(b *testing.B) {
	m := machines.Cydra5()
	loops := benchLoops(b, m, 60)
	e := m.Expand()
	for _, cfg := range []struct {
		bits int
	}{{32}, {64}} {
		ru := core.Reduce(e, core.Objective{Kind: core.ResUses})
		k := query.MaxCyclesPerWord(ru.NumResources(), cfg.bits)
		if k < 1 {
			b.Skipf("%d resources exceed %d-bit word", ru.NumResources(), cfg.bits)
		}
		kw := core.Reduce(e, core.Objective{Kind: core.KCycleWord, K: k})
		if k2 := query.MaxCyclesPerWord(kw.NumResources(), cfg.bits); k2 < k {
			k = k2
		}
		b.Run(fmt.Sprintf("%dbit-k%d", cfg.bits, k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, g := range loops {
					r := sched.Schedule(g, m, func(ii int) query.Module {
						mod, err := query.NewBitvector(kw.Reduced, k, cfg.bits, ii)
						if err != nil {
							b.Fatal(err)
						}
						return mod
					}, sched.DefaultConfig())
					if !r.OK {
						b.Fatal("schedule failed")
					}
				}
			}
		})
	}
}

// --- Ablation: objective choice (res-uses description driven through the
// bitvector module versus the word-optimized description). ---

func BenchmarkAblationObjective(b *testing.B) {
	m := machines.Cydra5()
	loops := benchLoops(b, m, 60)
	e := m.Expand()
	ru := core.Reduce(e, core.Objective{Kind: core.ResUses})
	k := query.MaxCyclesPerWord(ru.NumResources(), 64)
	kw := core.Reduce(e, core.Objective{Kind: core.KCycleWord, K: k})
	if k2 := query.MaxCyclesPerWord(kw.NumResources(), 64); k2 < k {
		k = k2
	}
	for _, tc := range []struct {
		name string
		desc *resmodel.Expanded
	}{{"res-uses-desc", ru.Reduced}, {"word-objective-desc", kw.Reduced}} {
		if query.MaxCyclesPerWord(len(tc.desc.Resources), 64) < k {
			continue
		}
		b.Run(tc.name, func(b *testing.B) {
			var work, calls int64
			for i := 0; i < b.N; i++ {
				work, calls = 0, 0
				for _, g := range loops {
					var ctrs []*query.Counters
					r := sched.Schedule(g, m, func(ii int) query.Module {
						mod, err := query.NewBitvector(tc.desc, k, 64, ii)
						if err != nil {
							b.Fatal(err)
						}
						ctrs = append(ctrs, mod.Counters())
						return mod
					}, sched.DefaultConfig())
					if !r.OK {
						b.Fatal("schedule failed")
					}
					for _, c := range ctrs {
						work += c.TotalWork()
						calls += c.TotalCalls()
					}
				}
			}
			if calls > 0 {
				b.ReportMetric(float64(work)/float64(calls), "work/call")
			}
		})
	}
}

// --- Ablation: fast check-with-alt (alternative-union words) versus the
// per-alternative fallback, on the alternative-heavy Cydra 5 benchmark. ---

func BenchmarkAblationFastAlt(b *testing.B) {
	m := machines.Cydra5()
	loops := benchLoops(b, m, 60)
	e := m.Expand()
	kw := core.Reduce(e, core.Objective{Kind: core.KCycleWord, K: 3})
	if err := kw.Verify(); err != nil {
		b.Fatal(err)
	}
	k := query.MaxCyclesPerWord(kw.NumResources(), 64)
	for _, fast := range []bool{false, true} {
		name := "fallback"
		if fast {
			name = "fast-alt"
		}
		b.Run(name, func(b *testing.B) {
			var work int64
			for i := 0; i < b.N; i++ {
				work = 0
				for _, g := range loops {
					var ctrs []*query.Counters
					r := sched.Schedule(g, m, func(ii int) query.Module {
						mod, err := query.NewBitvector(kw.Reduced, k, 64, ii)
						if err != nil {
							b.Fatal(err)
						}
						if fast {
							mod.EnableFastAlt()
						}
						ctrs = append(ctrs, mod.Counters())
						return mod
					}, sched.DefaultConfig())
					if !r.OK {
						b.Fatal("schedule failed")
					}
					for _, c := range ctrs {
						work += c.TotalWork()
					}
				}
			}
			b.ReportMetric(float64(work), "work-units")
		})
	}
}

// --- Parallel execution layer: the worker-pool harness and reduction
// pipeline at workers=1 (the serial reference) versus GOMAXPROCS. On a
// single-core host both sub-benchmarks measure the same work; the
// `cmd/paper -bench-json` report records the honest speedup per host. ---

func parallelWorkerCounts() []int {
	n := parallel.Workers(0)
	if n <= 1 {
		return []int{1}
	}
	return []int{1, n}
}

func BenchmarkTable5Parallel(b *testing.B) {
	m := machines.Cydra5()
	loops := benchLoops(b, m, 150)
	for _, w := range parallelWorkerCounts() {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tables.ComputeTable5Workers(m, loops, 6, w)
			}
		})
	}
}

func BenchmarkTable6Parallel(b *testing.B) {
	m := machines.Cydra5()
	loops := benchLoops(b, m, 60)
	reps := tables.PaperRepresentations(m)[:2]
	for _, w := range parallelWorkerCounts() {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tables.ComputeTable6Workers(m, loops, reps, w)
			}
		})
	}
}

func BenchmarkReductionPipelineParallel(b *testing.B) {
	e := machines.Cydra5().Expand()
	obj := core.Objective{Kind: core.ResUses}
	for _, w := range parallelWorkerCounts() {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := core.ReduceParallel(e, obj, w)
				if err := res.Verify(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReductionCacheHit measures the memo fast path: everything a
// repeated reduction costs once the content-keyed cache holds the entry
// (one fingerprint of the full Cydra 5 description plus a map lookup).
func BenchmarkReductionCacheHit(b *testing.B) {
	c := core.NewCache()
	e := machines.Cydra5().Expand()
	obj := core.Objective{Kind: core.ResUses}
	c.Reduce(e, obj, 1) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Reduce(e, obj, 1) == nil {
			b.Fatal("cache miss")
		}
	}
}

// --- Figure 4 / public API surface: end-to-end reduce through the facade.
// repro.Reduce is memoized by the process-wide reduction cache, so after
// the first iteration this measures the cached facade path. ---

func BenchmarkPublicAPIReduce(b *testing.B) {
	m := repro.BuiltinMachine("cydra5-subset")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Reduce(m, repro.Objective{Kind: repro.ResUses}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchLoops(b *testing.B, m *resmodel.Machine, n int) []*ddg.Graph {
	b.Helper()
	cfg := loopgen.Default()
	cfg.Loops = n
	loops, err := loopgen.Generate(m, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return loops
}
