package machines

import "repro/internal/resmodel"

// PA7100 returns a machine description for the HP PA-RISC PA-7100, the
// third processor family for which Bala & Rubin report automaton results
// ("new experimental evidence ... for the Alpha, PA-RISC, and MIPS
// families", Section 2). Like the others it is a reconstruction from the
// public micro-architecture: a 2-way superscalar issuing one integer and
// one floating-point operation per cycle, fully pipelined FP add and
// multiply, and a non-pipelined divide/sqrt unit (8 cycles single
// precision, 15 double) that produces the long forbidden latencies.
func PA7100() *resmodel.Machine {
	b := resmodel.NewBuilder("pa-7100")
	b.Resources(
		"I_SLOT", "F_SLOT", // dual-issue slots (one int + one fp)
		"IALU",   // integer ALU
		"SMU",    // shift/merge unit
		"AGU",    // address adder
		"DCACHE", // data-cache port
		"STQ",    // store queue
		"BR",     // branch adder
		"IRF_W",  // integer register write port
		"FALU",   // FP ALU (add path), pipelined
		"FMPY",   // FP multiplier, pipelined
		"FDIV",   // divide/sqrt unit, not pipelined
		"FRND",   // result round/normalize
		"FRF_W",  // FP register write port
	)

	ii := func(ob *resmodel.OpBuilder) *resmodel.OpBuilder { return ob.Use("I_SLOT", 0) }
	ff := func(ob *resmodel.OpBuilder) *resmodel.OpBuilder { return ob.Use("F_SLOT", 0) }

	ii(b.Op("ialu", 1)).Use("IALU", 0).Use("IRF_W", 1)
	ii(b.Op("shift", 1)).Use("SMU", 0).Use("IRF_W", 1)
	ii(b.Op("load", 2)).Use("AGU", 0).Use("DCACHE", 1).Use("IRF_W", 2)
	// Stores hold the cache port an extra cycle through the store queue.
	ii(b.Op("store", 1)).Use("AGU", 0).UseRange("DCACHE", 1, 2).Use("STQ", 1)
	ii(b.Op("branch", 1)).Use("BR", 0)

	ff(b.Op("fadd", 2)).Use("FALU", 1).Use("FRND", 2).Use("FRF_W", 2)
	ff(b.Op("fmpy", 2)).Use("FMPY", 1).Use("FRND", 2).Use("FRF_W", 2)
	// Fused multiply-add flows through both FP datapaths.
	ff(b.Op("fmpyadd", 3)).Use("FMPY", 1).Use("FALU", 2).Use("FRND", 3).Use("FRF_W", 3)
	ff(b.Op("fdiv.s", 8)).UseRange("FDIV", 1, 6).Use("FRND", 7).Use("FRF_W", 8)
	ff(b.Op("fdiv.d", 15)).UseRange("FDIV", 1, 13).Use("FRND", 14).Use("FRF_W", 15)
	ff(b.Op("fsqrt.d", 15)).Use("FALU", 1).UseRange("FDIV", 2, 13).Use("FRND", 14).Use("FRF_W", 15)
	ff(b.Op("fcmp", 1)).Use("FALU", 1)

	return b.Build()
}
