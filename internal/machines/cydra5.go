package machines

import (
	"fmt"

	"repro/internal/resmodel"
)

// Cydra5 returns a reconstruction of the Cydra 5 machine description used
// for Tables 1, 2 and 6 and Figure 4 — the most complex of the paper's
// three machines (the original modeled 56 resources, 152 usage patterns,
// 52 operation classes and 10223 forbidden latencies, all < 41).
//
// The modeled configuration matches the paper's: 7 functional units —
// 2 memory ports, 2 address-generation units, 1 FP adder, 1 FP multiplier
// and 1 branch unit. Each unit has input latches, dedicated register-read
// ports (the Cydra 5's Context Register Matrix gives every unit private
// ports — redundant resources the reducer eliminates), a stage chain that
// is fully pipelined for simple operations and held for consecutive
// cycles by partially pipelined ones (memory banks, the divide/sqrt
// array, double-precision passes), and the shared result buses and
// register write ports that couple the units together.
//
// Memory and address operations can execute on either of their two
// identical units: they are authored as alternative resource usages, so
// the expanded description has two alternative operations for each
// (Section 3), matching the benchmark's "21% of operations have exactly
// one alternative".
func Cydra5() *resmodel.Machine {
	b := resmodel.NewBuilder("cydra5")

	// 56 resources.
	var res []string
	for p := 0; p < 2; p++ {
		res = append(res,
			fmt.Sprintf("M%d_LA", p),    // address latch
			fmt.Sprintf("M%d_AG", p),    // address drive
			fmt.Sprintf("M%d_BANK", p),  // memory bank (held)
			fmt.Sprintf("M%d_ALIGN", p), // aligner
			fmt.Sprintf("M%d_DATA", p),  // data latch
			fmt.Sprintf("M%d_WBUF", p),  // store write buffer
			fmt.Sprintf("M%d_RD", p),    // register read port
		)
	}
	for p := 0; p < 2; p++ {
		res = append(res,
			fmt.Sprintf("A%d_LA", p),
			fmt.Sprintf("A%d_S1", p),
			fmt.Sprintf("A%d_S2", p),
			fmt.Sprintf("A%d_RD", p),
		)
	}
	res = append(res,
		"FA_LA", "FA_LB", "FA_S1", "FA_S2", "FA_S3", "FA_S4", "FA_S5", "FA_S6",
		"FA_RD0", "FA_RD1",
		"FM_LA", "FM_LB", "FM_S1", "FM_S2", "FM_S3", "FM_S4", "FM_S5", "FM_S6",
		"FM_DIV", "FM_RND", "FM_RD0", "FM_RD1",
		"BR_LA", "BR_S1", "BR_S2", "BR_RD",
		"RB0", "RB1", // shared result buses
		"W0", "W1", // shared register write ports
		"ICR",     // predicate (iteration control) register port
		"LOOP",    // loop counter port
		"CTX",     // context save port
		"PRED_RD", // predicate read port
	)
	b.Resources(res...)

	n := func(p int, s string) string { return fmt.Sprintf("M%d_%s", p, s) }
	an := func(p int, s string) string { return fmt.Sprintf("A%d_%s", p, s) }

	// Memory operations: one alternative per port. Loads return over the
	// shared result bus of their port after the main-memory latency.
	memOp := func(name string, lat int, build func(ob *resmodel.OpBuilder, p int)) {
		ob := b.Op(name, lat)
		for p := 0; p < 2; p++ {
			if p > 0 {
				ob = ob.Alt()
			}
			ob.Use(n(p, "LA"), 0).Use(n(p, "RD"), 0).Use(n(p, "AG"), 1)
			build(ob, p)
		}
	}
	rb := func(p int) string { return fmt.Sprintf("RB%d", p) }
	w := func(p int) string { return fmt.Sprintf("W%d", p) }

	memOp("ld.w", 22, func(ob *resmodel.OpBuilder, p int) {
		ob.UseRange(n(p, "BANK"), 2, 3).Use(n(p, "ALIGN"), 8).Use(n(p, "DATA"), 9).
			Use(rb(p), 21).Use(w(p), 22)
	})
	memOp("ld.h", 22, func(ob *resmodel.OpBuilder, p int) {
		ob.UseRange(n(p, "BANK"), 2, 3).UseRange(n(p, "ALIGN"), 8, 9).Use(n(p, "DATA"), 9).
			Use(rb(p), 21).Use(w(p), 22)
	})
	memOp("ld.d", 23, func(ob *resmodel.OpBuilder, p int) {
		ob.UseRange(n(p, "BANK"), 2, 9).Use(n(p, "ALIGN"), 8).UseRange(n(p, "DATA"), 9, 10).
			UseRange(rb(p), 21, 22).UseRange(w(p), 22, 23)
	})
	// Strided double-width load: two bank accesses back to back.
	memOp("ld.x2", 24, func(ob *resmodel.OpBuilder, p int) {
		ob.UseRange(n(p, "BANK"), 2, 13).Use(n(p, "ALIGN"), 8).Use(n(p, "ALIGN"), 10).
			Use(n(p, "DATA"), 9).Use(n(p, "DATA"), 11).
			UseRange(rb(p), 22, 23).UseRange(w(p), 23, 24)
	})
	memOp("st.w", 1, func(ob *resmodel.OpBuilder, p int) {
		ob.UseRange(n(p, "BANK"), 2, 3).Use(n(p, "DATA"), 2).Use(n(p, "WBUF"), 2)
	})
	memOp("st.h", 1, func(ob *resmodel.OpBuilder, p int) {
		ob.UseRange(n(p, "BANK"), 2, 3).Use(n(p, "DATA"), 2).Use(n(p, "ALIGN"), 2).Use(n(p, "WBUF"), 2)
	})
	memOp("st.d", 1, func(ob *resmodel.OpBuilder, p int) {
		ob.UseRange(n(p, "BANK"), 2, 9).UseRange(n(p, "DATA"), 2, 3).UseRange(n(p, "WBUF"), 2, 3)
	})
	memOp("prefetch", 0, func(ob *resmodel.OpBuilder, p int) {
		ob.UseRange(n(p, "BANK"), 2, 7)
	})

	// Address operations: one alternative per address unit; results return
	// over the shared bus of the unit's side.
	adrOp := func(name string, lat int, build func(ob *resmodel.OpBuilder, p int)) {
		ob := b.Op(name, lat)
		for p := 0; p < 2; p++ {
			if p > 0 {
				ob = ob.Alt()
			}
			ob.Use(an(p, "LA"), 0).Use(an(p, "RD"), 0)
			build(ob, p)
		}
	}
	adrOp("aadd", 2, func(ob *resmodel.OpBuilder, p int) {
		ob.Use(an(p, "S1"), 1).Use(an(p, "S2"), 2).Use(rb(p), 2)
	})
	adrOp("amul", 4, func(ob *resmodel.OpBuilder, p int) {
		ob.UseRange(an(p, "S1"), 1, 2).UseRange(an(p, "S2"), 3, 4).Use(rb(p), 4)
	})
	adrOp("amove", 1, func(ob *resmodel.OpBuilder, p int) {
		ob.Use(an(p, "S1"), 1).Use(rb(p), 1)
	})
	adrOp("acmp", 1, func(ob *resmodel.OpBuilder, p int) {
		ob.Use(an(p, "S1"), 1).Use("ICR", 2)
	})

	// FP adder unit: fully pipelined singles, double-pumped doubles, plus
	// the integer ALU operations the Cydra 5 executes on this unit.
	fa := func(name string, lat int) *resmodel.OpBuilder {
		return b.Op(name, lat).Use("FA_LA", 0).Use("FA_LB", 0).
			Use("FA_RD0", 0).Use("FA_RD1", 0)
	}
	fa("fadd.s", 6).Stages(1, "FA_S1", "FA_S2", "FA_S3", "FA_S4", "FA_S5", "FA_S6").
		Use("RB0", 6).Use("W0", 7)
	fa("fadd.d", 8).
		UseRange("FA_S1", 1, 2).UseRange("FA_S2", 2, 3).UseRange("FA_S3", 3, 4).
		UseRange("FA_S4", 4, 5).UseRange("FA_S5", 5, 6).UseRange("FA_S6", 6, 7).
		UseRange("RB0", 7, 8).UseRange("W0", 8, 9)
	fa("iadd", 1).Use("FA_S1", 1).Use("RB0", 1).Use("W0", 2)
	fa("ishift", 2).Use("FA_S1", 1).Use("FA_S2", 2).Use("RB0", 2).Use("W0", 3)
	fa("icmp", 1).Use("FA_S1", 1).Use("ICR", 2)
	fa("fcmp.pred", 2).Use("FA_S1", 1).Use("FA_S2", 2).Use("ICR", 3)
	fa("fcvt", 4).Use("FA_S1", 1).Use("FA_S3", 2).Use("FA_S6", 3).Use("RB0", 4).Use("W0", 5)
	fa("ftrunc", 5).Use("FA_S1", 1).Use("FA_S4", 3).Use("FA_S6", 4).Use("RB0", 5).Use("W0", 6)
	fa("fdtoi", 3).Use("FA_S1", 1).Use("FA_S5", 2).Use("RB0", 3).Use("W0", 4)
	fa("fmin", 2).Use("FA_S1", 1).Use("FA_S6", 2).Use("RB0", 2).Use("W0", 3)
	fa("select", 1).Use("FA_S6", 1).Use("RB0", 1).Use("W0", 2)
	b.Op("fneg", 1).Use("FA_LA", 0).Use("FA_RD0", 0).
		Use("FA_S6", 1).Use("RB0", 1).Use("W0", 2)

	// FP multiplier unit: pipelined multiplies, the iterative divide/sqrt
	// array held for many consecutive cycles, and integer multiply.
	fm := func(name string, lat int) *resmodel.OpBuilder {
		return b.Op(name, lat).Use("FM_LA", 0).Use("FM_LB", 0).
			Use("FM_RD0", 0).Use("FM_RD1", 0)
	}
	fm("fmul.s", 7).Stages(1, "FM_S1", "FM_S2", "FM_S3", "FM_S4", "FM_S5", "FM_S6").
		Use("FM_RND", 7).Use("RB1", 7).Use("W1", 8)
	fm("fmul.d", 10).
		UseRange("FM_S1", 1, 2).UseRange("FM_S2", 2, 3).UseRange("FM_S3", 3, 4).
		UseRange("FM_S4", 4, 5).UseRange("FM_S5", 5, 6).UseRange("FM_S6", 6, 7).
		UseRange("FM_RND", 8, 9).UseRange("RB1", 9, 10).UseRange("W1", 10, 11)
	fm("fmadd", 9).Stages(1, "FM_S1", "FM_S2", "FM_S3", "FM_S4", "FM_S5", "FM_S6").
		UseRange("FM_RND", 7, 8).Use("RB1", 8).Use("W1", 9)
	fm("imul", 4).Use("FM_S1", 1).Use("FM_S2", 2).Use("FM_S3", 3).Use("RB1", 4).Use("W1", 5)
	fm("imulh", 5).Use("FM_S1", 1).Use("FM_S2", 2).Use("FM_S3", 3).Use("FM_S4", 4).
		Use("RB1", 5).Use("W1", 6)
	fm("fdiv.s", 20).Use("FM_S1", 1).UseRange("FM_DIV", 2, 17).Use("FM_S6", 18).
		Use("FM_RND", 19).Use("RB1", 20).Use("W1", 21)
	fm("fdiv.d", 34).Use("FM_S1", 1).UseRange("FM_DIV", 2, 31).Use("FM_S6", 32).
		Use("FM_RND", 33).Use("RB1", 34).Use("W1", 35)
	fm("sqrt.s", 22).Use("FM_S1", 1).UseRange("FM_DIV", 2, 19).Use("FM_S6", 20).
		Use("FM_RND", 21).Use("RB1", 22).Use("W1", 23)
	fm("sqrt.d", 38).Use("FM_S1", 1).UseRange("FM_DIV", 2, 35).Use("FM_S6", 36).
		Use("FM_RND", 37).Use("RB1", 38).Use("W1", 39)
	fm("recip", 12).Use("FM_S1", 1).UseRange("FM_DIV", 2, 9).Use("FM_S6", 10).
		Use("FM_RND", 11).Use("RB1", 12).Use("W1", 13)
	fm("rsqrt.s", 24).Use("FM_S1", 1).UseRange("FM_DIV", 2, 21).Use("FM_S6", 22).
		Use("FM_RND", 23).Use("RB1", 24).Use("W1", 25)
	fm("rsqrt.d", 36).Use("FM_S1", 1).UseRange("FM_DIV", 2, 33).Use("FM_S6", 34).
		Use("FM_RND", 35).Use("RB1", 36).Use("W1", 37)
	fm("fmod", 16).Use("FM_S1", 1).UseRange("FM_DIV", 2, 13).Use("FM_S6", 14).
		Use("FM_RND", 15).Use("RB1", 16).Use("W1", 17)
	fm("idiv", 16).Use("FM_S1", 1).UseRange("FM_DIV", 2, 15).Use("RB1", 16).Use("W1", 17)
	fm("irem", 18).Use("FM_S1", 1).UseRange("FM_DIV", 2, 15).Use("FM_S6", 16).
		Use("RB1", 17).Use("W1", 18)

	// Branch unit: loop control (brtop drives the ECR/loop machinery of
	// the Cydra 5's modulo-scheduling hardware), predicated branches and
	// calls.
	br := func(name string, lat int) *resmodel.OpBuilder {
		return b.Op(name, lat).Use("BR_LA", 0).Use("BR_RD", 0)
	}
	br("brtop", 1).Use("BR_S1", 1).Use("BR_S2", 2).Use("LOOP", 2).Use("ICR", 3)
	br("br.cond", 1).Use("PRED_RD", 0).Use("BR_S1", 1).Use("BR_S2", 2)
	br("br.uncond", 1).Use("BR_S1", 1)
	br("call", 2).Use("BR_S1", 1).Use("BR_S2", 2).UseRange("CTX", 2, 3).Use("RB1", 2).Use("W1", 3)
	br("ret", 2).Use("BR_S1", 1).Use("BR_S2", 2).Use("CTX", 2)
	br("pred.set", 1).Use("BR_S1", 1).Use("ICR", 2)

	return b.Build()
}

// cydra5SubsetOps lists the operations "actually used in the 1327 loop
// benchmark" (Table 2): the memory, address, FP-add-unit, FP-multiply-unit
// and loop-control operations that innermost Fortran loops need. The two
// memory ops and the address op each expand into two alternative
// operations, giving 12 operation classes.
var cydra5SubsetOps = []string{
	"ld.w", "st.w", "aadd", // x2 alternatives each = 6 classes
	"fadd.s", "fmul.s", "fmadd", "iadd", "icmp", "brtop",
}

// Cydra5Subset returns the Cydra 5 description restricted to the
// operations used by the loop benchmark, with unused resources dropped
// (the paper's subset models 39 resources and 12 operation classes).
func Cydra5Subset() *resmodel.Machine {
	return Subset(Cydra5(), cydra5SubsetOps)
}

// Subset restricts a machine to the named operations and drops resources
// that no remaining operation uses.
func Subset(m *resmodel.Machine, opNames []string) *resmodel.Machine {
	want := map[string]bool{}
	for _, n := range opNames {
		want[n] = true
	}
	used := map[int]bool{}
	var ops []resmodel.Operation
	for _, o := range m.Ops {
		if !want[o.Name] {
			continue
		}
		ops = append(ops, o)
		for _, a := range o.Alts {
			for _, u := range a.Uses {
				used[u.Resource] = true
			}
		}
	}
	if len(ops) != len(opNames) {
		panic(fmt.Sprintf("machines: Subset: found %d of %d requested ops", len(ops), len(opNames)))
	}
	remap := make([]int, len(m.Resources))
	sub := &resmodel.Machine{Name: m.Name + "-subset"}
	for ri, name := range m.Resources {
		if used[ri] {
			remap[ri] = len(sub.Resources)
			sub.Resources = append(sub.Resources, name)
		} else {
			remap[ri] = -1
		}
	}
	for _, o := range ops {
		co := resmodel.Operation{Name: o.Name, Latency: o.Latency}
		for _, a := range o.Alts {
			t := resmodel.Table{}
			for _, u := range a.Uses {
				t.Uses = append(t.Uses, resmodel.Usage{Resource: remap[u.Resource], Cycle: u.Cycle})
			}
			co.Alts = append(co.Alts, t)
		}
		sub.Ops = append(sub.Ops, co)
	}
	if err := sub.Validate(); err != nil {
		panic(err)
	}
	return sub
}
