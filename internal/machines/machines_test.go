package machines

import (
	"testing"

	"repro/internal/core"
	"repro/internal/forbidden"
	"repro/internal/mdl"
	"repro/internal/query"
	"repro/internal/resmodel"
)

// stats captures the shape metrics the paper reports in its table captions.
type stats struct {
	resources, classes, fls, maxLat int
	reducedRes                      int
	origUses, reducedUses           float64
}

func measure(t *testing.T, m *resmodel.Machine) stats {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatalf("%s: Validate: %v", m.Name, err)
	}
	e := m.Expand()
	mat := forbidden.Compute(e)
	cls := mat.ComputeClasses()
	cm := mat.Collapse(cls)
	res := core.Reduce(e, core.Objective{Kind: core.ResUses})
	if err := res.Verify(); err != nil {
		t.Fatalf("%s: reduction changes constraints: %v", m.Name, err)
	}
	orig := make([]resmodel.Table, 0, cls.NumClasses())
	for _, rep := range cls.Rep {
		orig = append(orig, e.Ops[rep].Table)
	}
	return stats{
		resources:   len(m.Resources),
		classes:     cls.NumClasses(),
		fls:         cm.NonnegCount(),
		maxLat:      cm.MaxLatency(),
		reducedRes:  res.NumResources(),
		origUses:    core.AvgUsesPerOp(orig),
		reducedUses: core.AvgUsesPerOp(res.ClassTables),
	}
}

// within checks v is in [lo, hi].
func within(t *testing.T, name, metric string, v, lo, hi int) {
	t.Helper()
	if v < lo || v > hi {
		t.Errorf("%s: %s = %d, want within [%d, %d]", name, metric, v, lo, hi)
	}
}

// TestMIPSShape checks the reconstruction against Table 4's caption (15
// classes, 428 forbidden latencies all < 34, 22 resources reducing to 7
// with usages 17.3 -> 6.2). Loose bands: the original tables were never
// published, so only the shape must hold.
func TestMIPSShape(t *testing.T) {
	s := measure(t, MIPS())
	within(t, "mips", "resources", s.resources, 18, 26)
	within(t, "mips", "classes", s.classes, 12, 17)
	within(t, "mips", "forbidden latencies", s.fls, 250, 600)
	within(t, "mips", "max latency", s.maxLat, 25, 33)
	within(t, "mips", "reduced resources", s.reducedRes, 5, 11)
	if s.reducedUses >= s.origUses/2 {
		t.Errorf("mips: usages %0.1f -> %0.1f, want at least 2x reduction", s.origUses, s.reducedUses)
	}
}

// TestAlphaShape checks against Table 3's caption (12 classes, 293
// forbidden latencies, all < 58).
func TestAlphaShape(t *testing.T) {
	s := measure(t, Alpha21064())
	within(t, "alpha", "classes", s.classes, 11, 13)
	within(t, "alpha", "forbidden latencies", s.fls, 230, 360)
	within(t, "alpha", "max latency", s.maxLat, 50, 57)
	if s.reducedUses >= s.origUses/1.8 {
		t.Errorf("alpha: usages %0.1f -> %0.1f, want strong reduction", s.origUses, s.reducedUses)
	}
}

// TestCydra5Shape checks against Table 1's caption (56 resources, 52
// classes, 10223 forbidden latencies all < 41; reduction 56 -> 15
// resources, usages 18.2 -> 8.3, a 2.2x factor). Our reconstruction is
// sparser in absolute forbidden-latency count (see EXPERIMENTS.md) but
// must match the structural shape and the reduction factors.
func TestCydra5Shape(t *testing.T) {
	s := measure(t, Cydra5())
	within(t, "cydra5", "resources", s.resources, 56, 56)
	within(t, "cydra5", "classes", s.classes, 45, 58)
	within(t, "cydra5", "forbidden latencies", s.fls, 2000, 11000)
	within(t, "cydra5", "max latency", s.maxLat, 33, 40)
	within(t, "cydra5", "reduced resources", s.reducedRes, 12, 25)
	factor := s.origUses / s.reducedUses
	if factor < 1.8 {
		t.Errorf("cydra5: usage reduction factor %.2f, want >= 1.8 (paper: 2.2)", factor)
	}
}

// TestCydra5SubsetShape checks against Table 2's caption (12 classes; the
// paper's subset had 166 forbidden latencies and reduced usages
// 9.4 -> 2.9).
func TestCydra5SubsetShape(t *testing.T) {
	s := measure(t, Cydra5Subset())
	if s.classes != 12 {
		t.Errorf("cydra5-subset: classes = %d, want 12", s.classes)
	}
	within(t, "cydra5-subset", "forbidden latencies", s.fls, 40, 250)
	if s.reducedUses > 3.5 {
		t.Errorf("cydra5-subset: reduced usages = %.2f, want <= 3.5 (paper: 2.9)", s.reducedUses)
	}
}

// TestAlternativesPresent: the benchmark machines model the paper's "21%
// of operations have exactly one alternative" via the dual memory ports
// and dual address units.
func TestAlternativesPresent(t *testing.T) {
	m := Cydra5()
	alts := 0
	for _, o := range m.Ops {
		switch len(o.Alts) {
		case 1:
		case 2:
			alts++
		default:
			t.Errorf("op %s has %d alternatives, want 1 or 2", o.Name, len(o.Alts))
		}
	}
	if alts < 8 {
		t.Errorf("only %d ops with alternatives, want >= 8", alts)
	}
}

// TestByNameAndPrint: every built-in machine is reachable by name, round
// trips through the mdl printer/parser, and preserves its forbidden
// matrix across the round trip.
func TestByNameAndPrint(t *testing.T) {
	for _, name := range Names() {
		m := ByName(name)
		if m == nil {
			t.Fatalf("ByName(%q) = nil", name)
		}
		src := mdl.Print(m)
		m2, err := mdl.Parse(src)
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		f1 := forbidden.Compute(m.Expand())
		f2 := forbidden.Compute(m2.Expand())
		if !f1.Equal(f2) {
			t.Errorf("%s: round trip changed the forbidden matrix", name)
		}
	}
	if ByName("nope") != nil {
		t.Errorf("ByName(nope) != nil")
	}
}

// TestReducedDescriptionsAnswerQueriesIdentically replays the paper's
// verification on real machines: a deterministic query workload gets
// identical answers from the original and reduced Cydra 5 descriptions.
func TestReducedDescriptionsAnswerQueriesIdentically(t *testing.T) {
	e := Cydra5().Expand()
	red := core.Reduce(e, core.Objective{Kind: core.KCycleWord, K: 4})
	if err := red.Verify(); err != nil {
		t.Fatal(err)
	}
	k2 := query.MaxCyclesPerWord(len(red.Reduced.Resources), 64)
	origM := query.NewDiscrete(e, 11)
	redM := query.NewDiscrete(red.Reduced, 11)
	redB, err := query.NewBitvector(red.Reduced, k2, 64, 11)
	if err != nil {
		t.Fatal(err)
	}
	id := 0
	for cyc := 0; cyc < 200; cyc++ {
		op := (cyc * 7) % len(e.Ops)
		want := origM.Check(op, cyc)
		if got := redM.Check(op, cyc); got != want {
			t.Fatalf("cycle %d op %s: reduced discrete answer %v, original %v", cyc, e.Ops[op].Name, got, want)
		}
		if got := redB.Check(op, cyc); got != want {
			t.Fatalf("cycle %d op %s: reduced bitvector answer %v, original %v", cyc, e.Ops[op].Name, got, want)
		}
		if want && cyc%3 == 0 {
			origM.Assign(op, cyc, id)
			redM.Assign(op, cyc, id)
			redB.Assign(op, cyc, id)
			id++
		}
	}
	if origM.Scheduled() == 0 {
		t.Fatalf("workload scheduled nothing")
	}
}

// TestPA7100Shape: the PA-RISC model (Section 2's third processor family)
// reduces like the others, with divide-driven forbidden latencies.
func TestPA7100Shape(t *testing.T) {
	s := measure(t, PA7100())
	within(t, "parisc", "classes", s.classes, 10, 13)
	within(t, "parisc", "max latency", s.maxLat, 10, 14)
	if s.reducedRes >= s.resources {
		t.Errorf("parisc: no resource reduction (%d -> %d)", s.resources, s.reducedRes)
	}
	if s.reducedUses >= s.origUses {
		t.Errorf("parisc: no usage reduction (%.1f -> %.1f)", s.origUses, s.reducedUses)
	}
}
