package machines

import "repro/internal/resmodel"

// MIPS returns a reconstruction of the MIPS R3000/R3010 machine
// description used by Proebsting & Fraser and adopted by the paper for
// Table 4 (15 operation classes, 428 forbidden latencies, all < 34;
// 22 original resources reducing to 7).
//
// The R3000 integer pipeline (IF RD ALU MEM WB) is fully interlocked and
// fully pipelined: its stage chain contributes only issue-slot-style
// constraints, i.e. pure redundancy for the reducer. The structural
// hazards live in the multiply/divide unit (a non-pipelined iterative
// array: 12-cycle multiply, 33-cycle divide, result drained over HI/LO)
// and in the R3010 floating-point accelerator (unpack stage, two-stage
// multiplier array, adder, non-pipelined divider, rounder, status port).
func MIPS() *resmodel.Machine {
	b := resmodel.NewBuilder("mips-r3000-r3010")
	b.Resources(
		// R3000 integer pipeline
		"ISSUE", "IF", "RD", "ALU", "MEM", "WB",
		// memory interface
		"AGEN", "DPORT",
		// multiply/divide unit
		"MDU", "HILO",
		// branch adder
		"BTGT",
		// R3010 FPA
		"FP_U",   // unpack
		"FP_M1",  // multiplier first half
		"FP_M2",  // multiplier second half
		"FP_A",   // mantissa adder
		"FP_DIV", // non-pipelined divider array
		"FP_R",   // rounder
		"FP_WB",  // FP register write port
		"FP_CC",  // condition-code port
		"FP_RD",  // FP register read port
		// coprocessor transfer path
		"CP_XFER",
		// exception/status unit
		"FP_EXC",
	)

	// ipipe reserves the interlocked integer pipeline for one instruction.
	ipipe := func(ob *resmodel.OpBuilder) *resmodel.OpBuilder {
		return ob.Use("ISSUE", 0).Stages(0, "IF", "RD", "ALU", "MEM", "WB")
	}

	ipipe(b.Op("ialu", 1))
	ipipe(b.Op("load", 2)).Use("AGEN", 1).Use("DPORT", 2)
	ipipe(b.Op("store", 1)).Use("AGEN", 1).UseRange("DPORT", 2, 3)
	ipipe(b.Op("branch", 1)).Use("BTGT", 1)
	// Integer multiply: MDU busy 12 cycles from ALU stage, result into HI/LO.
	ipipe(b.Op("mult", 12)).UseRange("MDU", 2, 13).Use("HILO", 13)
	// Integer divide: MDU busy 33 cycles (bounding every latency below 34).
	ipipe(b.Op("div", 33)).UseRange("MDU", 2, 33).Use("HILO", 33)
	// mfhi/mflo interlock against a busy MDU via the HI/LO register port.
	ipipe(b.Op("mfhi", 1)).Use("HILO", 2)

	// fpipe reserves the integer pipeline plus FP operand read for one FPA op.
	fpipe := func(ob *resmodel.OpBuilder) *resmodel.OpBuilder {
		return ipipe(ob).Use("FP_RD", 1)
	}

	fpipe(b.Op("fadd.s", 2)).
		Use("FP_U", 2).Use("FP_A", 3).Use("FP_R", 4).Use("FP_WB", 5)
	fpipe(b.Op("fadd.d", 3)).
		UseRange("FP_U", 2, 3).UseRange("FP_A", 3, 4).Use("FP_R", 5).Use("FP_WB", 6)
	fpipe(b.Op("fmul.s", 4)).
		Use("FP_U", 2).UseRange("FP_M1", 3, 4).UseRange("FP_M2", 4, 5).
		Use("FP_R", 6).Use("FP_WB", 7)
	fpipe(b.Op("fmul.d", 5)).
		UseRange("FP_U", 2, 3).UseRange("FP_M1", 3, 6).UseRange("FP_M2", 4, 7).
		Use("FP_R", 8).Use("FP_WB", 9)
	fpipe(b.Op("fdiv.s", 12)).
		Use("FP_U", 2).UseRange("FP_DIV", 3, 12).Use("FP_A", 13).
		Use("FP_R", 14).Use("FP_WB", 15).Use("FP_EXC", 15)
	fpipe(b.Op("fdiv.d", 19)).
		Use("FP_U", 2).UseRange("FP_DIV", 3, 19).Use("FP_A", 20).
		Use("FP_R", 21).Use("FP_WB", 22).Use("FP_EXC", 22)
	fpipe(b.Op("fcvt", 3)).
		UseRange("FP_U", 2, 3).Use("FP_A", 4).Use("FP_R", 5).
		Use("FP_WB", 6).Use("CP_XFER", 6)
	fpipe(b.Op("fcmp", 2)).
		Use("FP_U", 2).Use("FP_A", 3).Use("FP_CC", 4)

	return b.Build()
}
