package machines

import "repro/internal/resmodel"

// Alpha21064 returns a reconstruction of the DEC Alpha 21064 machine
// description of Bala & Rubin, as used for Table 3 (12 operation classes,
// 293 forbidden latencies, all < 58).
//
// The 21064 is dual-issue: one instruction to the integer side (EBox /
// ABox / BBox) and one to the floating-point FBox per cycle, modeled as
// the two issue slots E_SLOT and F_SLOT. The integer and FP pipelines are
// fully pipelined; the structural hazards are the 21-cycle integer
// multiplier and the non-pipelined FP divider (34 cycles single, 58
// double — the source of the near-58-cycle forbidden latencies).
func Alpha21064() *resmodel.Machine {
	b := resmodel.NewBuilder("alpha-21064")
	b.Resources(
		"E_SLOT", "F_SLOT", // dual-issue slots
		"IRF_R", "FRF_R", // register-file read ports
		"E1", "E2", // EBox pipeline stages
		"SHIFT",    // shifter/zapper
		"IMUL",     // integer multiply array (not pipelined)
		"AGU",      // ABox address generator
		"DCACHE",   // data-cache port
		"WBUF",     // write buffer
		"BBOX",     // branch box
		"IRF_W",    // integer register write port
		"F1", "F2", // FBox pipeline stages (add path)
		"FM1", "FM2", // FBox multiplier stages
		"FDIV",  // FP divider (not pipelined)
		"FRND",  // FP rounder
		"FRF_W", // FP register write port
	)

	epipe := func(ob *resmodel.OpBuilder) *resmodel.OpBuilder {
		return ob.Use("E_SLOT", 0).Use("IRF_R", 0)
	}
	fpipe := func(ob *resmodel.OpBuilder) *resmodel.OpBuilder {
		return ob.Use("F_SLOT", 0).Use("FRF_R", 0)
	}

	epipe(b.Op("iadd", 1)).Stages(1, "E1", "E2").Use("IRF_W", 2)
	// The shifter is held two cycles (shift+zap path), which distinguishes
	// this class from iadd in the forbidden-latency matrix.
	epipe(b.Op("ishift", 2)).UseRange("SHIFT", 1, 2).Use("E2", 2).Use("IRF_W", 3)
	epipe(b.Op("imull", 23)).UseRange("IMUL", 1, 19).Use("IRF_W", 21)
	epipe(b.Op("load", 3)).Use("AGU", 1).Use("DCACHE", 2).Use("IRF_W", 3)
	epipe(b.Op("store", 1)).Use("AGU", 1).Use("DCACHE", 2).UseRange("WBUF", 3, 4)
	epipe(b.Op("ibr", 1)).Use("BBOX", 1)
	epipe(b.Op("jsr", 1)).Use("BBOX", 1).Use("IRF_W", 3)

	fpipe(b.Op("fadd", 6)).Stages(1, "F1", "F2").Use("FRND", 3).Use("FRF_W", 6)
	// The multiplier path reaches the rounder one cycle later than the add
	// path, distinguishing the class from fadd.
	fpipe(b.Op("fmul", 6)).Stages(1, "FM1", "FM2").Use("FM2", 3).Use("FRND", 4).Use("FRF_W", 6)
	fpipe(b.Op("fdiv.s", 34)).Use("F1", 1).UseRange("FDIV", 2, 32).
		Use("FRND", 33).Use("FRF_W", 34)
	// Double divide holds the divider for 58 cycles, producing the
	// near-58-cycle forbidden latencies the paper reports for the 21064.
	fpipe(b.Op("fdiv.d", 63)).Use("F1", 1).UseRange("FDIV", 2, 59).
		Use("FRND", 60).Use("FRF_W", 61)
	fpipe(b.Op("fbr", 1)).Use("BBOX", 1)

	return b.Build()
}
