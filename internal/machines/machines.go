// Package machines provides the machine descriptions used in the paper's
// evaluation (Section 6): the introductory example of Figure 1, the MIPS
// R3000/R3010, the DEC Alpha 21064 and the Cydra 5.
//
// The paper's exact descriptions were never published (the Cydra 5 model
// was HP Labs proprietary; Figure 4 of the scan is illegible), so these are
// structurally faithful reconstructions from the processors' public
// micro-architecture, authored — as the paper advocates — in terms close
// to the hardware structure: issue slots, fully pipelined stage chains,
// partially pipelined multiply/divide units held for consecutive cycles,
// shared result buses and register-file write ports. DESIGN.md and
// EXPERIMENTS.md record how each reconstruction's statistics compare to
// the paper's.
package machines

import "repro/internal/resmodel"

// Example returns the two-operation machine of Figure 1: operation A is a
// fully pipelined functional unit, operation B a partially pipelined one
// (resource 3 is a multiply stage used for 4 consecutive cycles, resource
// 4 a rounding stage used for 2).
func Example() *resmodel.Machine {
	b := resmodel.NewBuilder("example")
	b.Resources("r0", "r1", "r2", "r3", "r4")
	b.Op("A", 3).Stages(0, "r0", "r1", "r2")
	b.Op("B", 8).
		Use("r1", 0).
		Use("r2", 1).
		UseRange("r3", 2, 5).
		UseRange("r4", 6, 7)
	return b.Build()
}

// ByName returns a built-in machine by name ("example", "mips", "alpha",
// "cydra5", "cydra5-subset", "parisc"), or nil.
func ByName(name string) *resmodel.Machine {
	switch name {
	case "example":
		return Example()
	case "mips", "r3000":
		return MIPS()
	case "alpha", "21064":
		return Alpha21064()
	case "cydra5", "cydra":
		return Cydra5()
	case "cydra5-subset", "subset":
		return Cydra5Subset()
	case "parisc", "pa7100":
		return PA7100()
	}
	return nil
}

// Names lists the built-in machine names accepted by ByName.
func Names() []string {
	return []string{"example", "mips", "alpha", "cydra5", "cydra5-subset", "parisc"}
}
