package serve

import (
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
)

// Session is one stateful scheduling session: a long-lived query module
// (and the partial-schedule state around it) that a remote scheduler
// converses with across many requests, instead of rebuilding a fresh
// module per batch. The paper's premise is that a reduced description
// answers the scheduler's whole query stream cheaply; a session is that
// query stream's server-side endpoint. Sessions live in the server's
// sharded LRU table, bounded by Config.MaxSessions and expired after
// Config.SessionTTL idle time.
//
// All op execution on a session is serialized through its lock channel
// (acquired with the request's context, so a waiter times out rather
// than queueing forever); the module itself is single-threaded state.
type Session struct {
	id      string
	machine string
	use     string
	rep     string
	ii      int

	// lock is a context-aware mutex: one buffered slot, held for the
	// duration of each ops/stream request touching the session.
	lock chan struct{}
	// x (the op executor: module, live instances) is guarded by lock.
	x *opExec

	// ops counts executed ops; lastUse is the idle clock (unix nanos),
	// both readable without the lock for listings and TTL sweeps.
	ops     atomic.Int64
	lastUse atomic.Int64
}

// acquire serializes op execution on the session, honouring ctx.
func (sess *Session) acquire(r *http.Request) *httpError {
	select {
	case sess.lock <- struct{}{}:
		return nil
	default:
	}
	select {
	case sess.lock <- struct{}{}:
		return nil
	case <-r.Context().Done():
		return errf(http.StatusTooManyRequests, "session %s busy: another request holds it and the deadline expired", sess.id)
	}
}

func (sess *Session) release() { <-sess.lock }

// SessionRequest is the body of POST /v1/sessions. The module
// configuration fields mean exactly what they mean on a batch request;
// the difference is lifetime — the module built here survives until the
// session is deleted, evicted or expires.
type SessionRequest struct {
	// Machine names a registered description (see /v1/reduce).
	Machine string `json:"machine"`
	// Use selects "reduced" (default) or "original" description.
	Use string `json:"use,omitempty"`
	// Representation selects "discrete" (default), "bitvector", "fsa"
	// (linear tables only) or "auto" (measured per-machine selection).
	Representation string `json:"representation,omitempty"`
	// K is the bitvector packing (cycles per word); 0 selects the
	// densest legal packing.
	K int `json:"k,omitempty"`
	// WordBits is the bitvector word size, 32 or 64 (0 selects 64).
	WordBits int `json:"word_bits,omitempty"`
	// II selects a Modulo Reservation Table with II columns; 0 selects a
	// linear reserved table.
	II int `json:"ii,omitempty"`
	// Scan selects the range-scan mode for the session's lifetime:
	// "verdict" (default), "words" or "naive" — see BatchRequest.Scan.
	Scan string `json:"scan,omitempty"`
}

// SessionInfo describes one session (create response, GET info, list
// entries). Backend is the concrete backend serving the session's
// module (the measured winner under "auto"). Counters is included on
// single-session GETs only.
type SessionInfo struct {
	SessionID      string          `json:"session_id"`
	Machine        string          `json:"machine"`
	Use            string          `json:"use"`
	Representation string          `json:"representation"`
	Backend        string          `json:"backend"`
	II             int             `json:"ii"`
	Ops            int64           `json:"ops"`
	IdleMS         int64           `json:"idle_ms"`
	Counters       *query.Counters `json:"counters,omitempty"`
}

// SessionOpsRequest is the body of POST /v1/sessions/{id}/ops.
type SessionOpsRequest struct {
	Ops []BatchOp `json:"ops"`
}

// SessionOpsResponse is the body of a successful ops request. Results
// answer this request's ops; Counters are the session's cumulative
// work-unit accounting since creation. On a 4xx mid-request, ops before
// the failing one remain applied (the session is stateful; the error
// body names the failing op index).
type SessionOpsResponse struct {
	SessionID string         `json:"session_id"`
	Results   []BatchResult  `json:"results"`
	Counters  query.Counters `json:"counters"`
}

func (sess *Session) info(includeCounters bool, now time.Time) SessionInfo {
	si := SessionInfo{
		SessionID:      sess.id,
		Machine:        sess.machine,
		Use:            sess.use,
		Representation: sess.rep,
		Backend:        sess.x.backend,
		II:             sess.ii,
		Ops:            sess.ops.Load(),
		IdleMS:         (now.UnixNano() - sess.lastUse.Load()) / int64(time.Millisecond),
	}
	if si.IdleMS < 0 {
		si.IdleMS = 0
	}
	if includeCounters {
		c := *sess.x.mod.Counters()
		si.Counters = &c
	}
	return si
}

// expireSessions sweeps the session table, dropping sessions idle past
// the TTL. Called from session create and list handlers (lookups expire
// lazily), so an idle-heavy workload still converges to empty.
func (s *Server) expireSessions() {
	ttl := s.cfg.SessionTTL
	if ttl <= 0 {
		return
	}
	deadline := s.now().Add(-ttl).UnixNano()
	for range s.sessions.removeIf(func(_ string, sess *Session) bool {
		return sess.lastUse.Load() < deadline
	}) {
		obs.Inc("serve.sessions.expired")
	}
}

// lookupSession returns the live session under id, expiring it lazily:
// a session found idle past the TTL is removed and reported as 410 Gone
// (vs 404 for an id that was never, or is no longer, resident).
func (s *Server) lookupSession(id string) (*Session, *httpError) {
	sess, ok := s.sessions.get(id)
	if !ok {
		return nil, errf(http.StatusNotFound, "unknown session %q (open one via POST /v1/sessions)", id)
	}
	if ttl := s.cfg.SessionTTL; ttl > 0 {
		if s.now().UnixNano()-sess.lastUse.Load() > int64(ttl) {
			if _, removed := s.sessions.remove(id); removed {
				obs.Inc("serve.sessions.expired")
			}
			return nil, errf(http.StatusGone, "session %q expired after %s idle", id, ttl)
		}
	}
	return sess, nil
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	obs.Inc("serve.sessions.create.requests")
	var req SessionRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	me := s.lookup(req.Machine)
	if me == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown machine %q (register it via /v1/reduce)", req.Machine))
		return
	}
	e, sel, use, rep, herr := s.buildModule(me, req.Use, req.Representation, req.K, req.WordBits, req.II)
	if herr != nil {
		writeErr(w, herr.status, herr.msg)
		return
	}
	scan, herr := normalizeScan(req.Scan, sel.Module)
	if herr != nil {
		writeErr(w, herr.status, herr.msg)
		return
	}
	s.expireSessions()
	now := s.now()
	pol := query.Policy{Representation: rep, II: req.II, K: req.K, WordBits: req.WordBits}
	sess := &Session{
		id:      fmt.Sprintf("s-%06d", s.sessionSeq.Add(1)),
		machine: me.name,
		use:     use,
		rep:     rep,
		ii:      req.II,
		lock:    make(chan struct{}, 1),
		x:       newOpExec(e, me.machineFor(use), sel, rep, scan, pol, s.cfg.MaxCycle),
	}
	sess.lastUse.Store(now.UnixNano())
	for range s.sessions.put(sess.id, sess) {
		obs.Inc("serve.sessions.evictions")
	}
	obs.Inc("serve.sessions.created")
	writeJSON(w, http.StatusOK, sess.info(false, now))
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	s.expireSessions()
	now := s.now()
	items := s.sessions.items()
	infos := make([]SessionInfo, 0, len(items))
	for _, it := range items {
		infos = append(infos, it.val.info(false, now))
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].SessionID < infos[j].SessionID })
	writeJSON(w, http.StatusOK, map[string]any{"sessions": infos})
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	sess, herr := s.lookupSession(r.PathValue("id"))
	if herr != nil {
		writeErr(w, herr.status, herr.msg)
		return
	}
	// Counters are read under the session lock so a concurrent stream
	// cannot tear the snapshot.
	if herr := sess.acquire(r); herr != nil {
		writeErr(w, herr.status, herr.msg)
		return
	}
	si := sess.info(true, s.now())
	sess.release()
	writeJSON(w, http.StatusOK, si)
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, ok := s.sessions.remove(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	// An in-flight ops/stream request holding the session finishes
	// normally on its own module pointer; the table just forgets the id.
	obs.Inc("serve.sessions.deleted")
	writeJSON(w, http.StatusOK, map[string]any{"deleted": sess.id, "ops": sess.ops.Load()})
}

func (s *Server) handleSessionOps(w http.ResponseWriter, r *http.Request) {
	obs.Inc("serve.session.ops.requests")
	start := time.Now()
	defer func() { obs.Observe("serve.session.ops.latency", time.Since(start).Microseconds()) }()
	var req SessionOpsRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Ops) > s.cfg.MaxBatchOps {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("request has %d ops, limit %d", len(req.Ops), s.cfg.MaxBatchOps))
		return
	}
	sess, herr := s.lookupSession(r.PathValue("id"))
	if herr != nil {
		writeErr(w, herr.status, herr.msg)
		return
	}
	if herr := sess.acquire(r); herr != nil {
		writeErr(w, herr.status, herr.msg)
		return
	}
	defer sess.release()

	results := make([]BatchResult, 0, len(req.Ops))
	var res opResult
	for i := range req.Ops {
		if i&0x1ff == 0 {
			if err := r.Context().Err(); err != nil {
				sess.touch(s.now())
				writeErr(w, http.StatusServiceUnavailable, fmt.Sprintf("request deadline exceeded at op %d of %d", i, len(req.Ops)))
				return
			}
		}
		if herr := sess.x.exec(i, &req.Ops[i], &res); herr != nil {
			sess.touch(s.now())
			writeErr(w, herr.status, herr.msg)
			return
		}
		results = append(results, res.toBatchResult())
	}
	sess.ops.Add(int64(len(req.Ops)))
	obs.Add("serve.session.ops", int64(len(req.Ops)))
	sess.touch(s.now())
	writeJSON(w, http.StatusOK, &SessionOpsResponse{
		SessionID: sess.id,
		Results:   results,
		Counters:  *sess.x.mod.Counters(),
	})
}

// touch refreshes the session's idle clock.
func (sess *Session) touch(now time.Time) { sess.lastUse.Store(now.UnixNano()) }
