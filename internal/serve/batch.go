package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	_ "repro/internal/automaton" // registers the "fsa" query backend
	"repro/internal/ddg"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/resmodel"
	"repro/internal/sched"
)

// BatchRequest is the body of POST /v1/batch: a contention-query
// sequence executed in order on a fresh module over a registered
// description. Either assign or assign&free, but not both, should be
// used within one batch (the paper's usage contract).
type BatchRequest struct {
	// Machine names a registered description (see /v1/reduce).
	Machine string `json:"machine"`
	// Use selects "reduced" (default) or "original" description.
	Use string `json:"use,omitempty"`
	// Representation selects "discrete" (default), "bitvector", "fsa"
	// (the forbidden-latency pair automaton, linear tables only) or
	// "auto" (measured per-machine selection; the chosen backend is
	// reported in the response).
	Representation string `json:"representation,omitempty"`
	// K is the bitvector packing (cycles per word); 0 selects the
	// densest legal packing for the description's resource count.
	K int `json:"k,omitempty"`
	// WordBits is the bitvector word size, 32 or 64 (0 selects 64).
	WordBits int `json:"word_bits,omitempty"`
	// II selects a Modulo Reservation Table with II columns; 0 selects a
	// linear reserved table.
	II int `json:"ii,omitempty"`
	// Scan selects how range queries (first_free, first_free_alt) and
	// schedule-op slot scans are answered: "verdict" (default, the
	// bit-parallel candidate-verdict scan), "words" (the word-at-a-time
	// scan), or "naive" (the per-cycle reference loop). All three return
	// identical results; the knob exposes the slower paths as live
	// oracles for differential testing through the wire.
	Scan string `json:"scan,omitempty"`
	// Ops is the query sequence.
	Ops []BatchOp `json:"ops"`
}

// BatchOp is one query of a batch or session request.
type BatchOp struct {
	// Fn is "check", "assign", "assign_free", "free", "check_with_alt",
	// "first_free", "first_free_alt" or "schedule".
	Fn string `json:"fn"`
	// Op is the expanded-op index ("check_with_alt", "first_free_alt":
	// the original-op index).
	Op int `json:"op"`
	// Cycle is the schedule cycle (unused by the range queries).
	Cycle int `json:"cycle"`
	// Lo and Hi bound the inclusive cycle range of "first_free" and
	// "first_free_alt".
	Lo int `json:"lo,omitempty"`
	Hi int `json:"hi,omitempty"`
	// ID is the instance id ("assign", "assign_free", "free").
	ID int `json:"id,omitempty"`
	// Scheduler selects the "schedule" op's engine: "optimal" (default)
	// or "ims".
	Scheduler string `json:"scheduler,omitempty"`
	// Loop is the "schedule" op's dependence graph.
	Loop *LoopSpec `json:"loop,omitempty"`
	// MaxNodes caps the exact search's node budget for one "schedule"
	// op; 0 selects scheduleDefaultNodes, values above scheduleMaxNodes
	// are rejected.
	MaxNodes int64 `json:"max_nodes,omitempty"`
}

// LoopSpec is the dependence graph of a "schedule" op: one entry of Ops
// per loop operation (original-op indices into the selected
// description) plus the dependence edges between them.
type LoopSpec struct {
	Ops   []int      `json:"ops"`
	Edges []LoopEdge `json:"edges,omitempty"`
}

// LoopEdge is one dependence: To issues at least Delay cycles after
// From, Dist iterations earlier.
type LoopEdge struct {
	From  int `json:"from"`
	To    int `json:"to"`
	Delay int `json:"delay"`
	Dist  int `json:"dist,omitempty"`
}

// BatchResult is the answer to one BatchOp. Check-like ops set OK;
// check_with_alt and first_free_alt additionally set AltOp on success;
// the range queries set Cycle to the first contention-free cycle found;
// assign_free lists the evicted instance ids (omitted when none).
// A schedule op sets OK and MII, on success II plus the per-loop-op
// Times and Alts (expanded-op indices), and under the optimal engine
// Proven/Fallback (exactly one true — see sched.OptimalResult).
type BatchResult struct {
	OK       *bool `json:"ok,omitempty"`
	AltOp    *int  `json:"alt_op,omitempty"`
	Cycle    *int  `json:"cycle,omitempty"`
	Evicted  []int `json:"evicted,omitempty"`
	II       *int  `json:"ii,omitempty"`
	MII      *int  `json:"mii,omitempty"`
	Proven   *bool `json:"proven,omitempty"`
	Fallback *bool `json:"fallback,omitempty"`
	Times    []int `json:"times,omitempty"`
	Alts     []int `json:"alts,omitempty"`
}

// BatchResponse is the body of a successful POST /v1/batch. Backend is
// the concrete backend that served the batch — equal to Representation
// when one was pinned, the measured winner under "auto".
type BatchResponse struct {
	Machine        string         `json:"machine"`
	Use            string         `json:"use"`
	Representation string         `json:"representation"`
	Backend        string         `json:"backend"`
	II             int            `json:"ii"`
	Results        []BatchResult  `json:"results"`
	Counters       query.Counters `json:"counters"`
}

// httpError carries a status code alongside a client-facing message.
type httpError struct {
	status int
	msg    string
}

func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// maxModuloCycle bounds |cycle| on modulo tables: folding handles any
// cycle, but bounding keeps cycle+usage arithmetic far from integer
// overflow on every platform.
const maxModuloCycle = 1 << 30

// expandedFor returns the description variant the given use string
// selects ("original" or anything else = "reduced").
func (me *machineEntry) expandedFor(use string) *resmodel.Expanded {
	if use == "original" {
		return me.expanded
	}
	return me.red.Reduced
}

// machineFor returns the machine matching expandedFor's variant, the
// basis of the schedule op's resource-MII bound.
func (me *machineEntry) machineFor(use string) *resmodel.Machine {
	if use == "original" {
		return me.src
	}
	return me.red.Reduced.Machine()
}

// buildModule validates the module configuration of a batch or session
// request and constructs a fresh query module over the selected
// description variant through query.Select, so every representation the
// registry knows — including "fsa" and measured "auto" selection — is
// served by the same chokepoint. It returns the normalized
// use/representation strings (defaults applied) alongside the
// selection; every invalid configuration maps to a 4xx httpError.
func (s *Server) buildModule(me *machineEntry, use, rep string, k, wordBits, ii int) (
	e *resmodel.Expanded, sel *query.Selection, useOut, repOut string, herr *httpError) {
	switch use {
	case "":
		use = "reduced"
	case "reduced", "original":
	default:
		return nil, nil, "", "", errf(http.StatusBadRequest, "bad use %q (want reduced or original)", use)
	}
	e = me.expandedFor(use)

	if ii < 0 || ii > s.cfg.MaxCycle {
		return nil, nil, "", "", errf(http.StatusBadRequest, "ii %d out of range [0, %d]", ii, s.cfg.MaxCycle)
	}

	switch rep {
	case "":
		rep = "discrete"
	case "discrete", "bitvector", "fsa", "auto":
	default:
		return nil, nil, "", "", errf(http.StatusBadRequest,
			"bad representation %q (want discrete, bitvector, fsa or auto)", rep)
	}
	sel, err := query.Select(e, query.Policy{Representation: rep, II: ii, K: k, WordBits: wordBits})
	if err != nil {
		return nil, nil, "", "", errf(http.StatusBadRequest, "%v", err)
	}
	return e, sel, use, rep, nil
}

// normalizeScan validates the scan knob and applies it to a freshly
// built module. "" and "verdict" keep the bit-parallel verdict scan
// (the module default); "words" drops bitvector modules back to the
// word-at-a-time scan; "naive" makes the executor route range queries
// and schedule-op slot scans through the per-cycle reference loop.
// Backends without a verdict/word distinction (discrete, fsa) are
// unaffected except by the naive routing, so the knob composes with
// every representation, including measured "auto".
func normalizeScan(scan string, mod query.Module) (string, *httpError) {
	switch scan {
	case "":
		scan = "verdict"
	case "verdict", "words", "naive":
	default:
		return "", errf(http.StatusBadRequest, "bad scan %q (want verdict, words or naive)", scan)
	}
	if bv, ok := mod.(*query.Bitvector); ok {
		bv.SetVerdictScan(scan == "verdict")
	}
	return scan, nil
}

// placed records where a live instance was scheduled so frees and id
// reuse are validated instead of corrupting (or panicking inside) the
// module.
type placed struct{ op, cycle int }

// opResult is the value-typed answer to one op, filled in place by
// opExec.exec so the steady state of a long-lived session allocates
// nothing per op. Convert with toBatchResult (batch responses, which
// need stable per-result pointers) or appendJSON (NDJSON streaming,
// which marshals immediately and byte-identically to
// json.Marshal(BatchResult)).
type opResult struct {
	hasOK, ok bool
	hasAlt    bool
	alt       int
	hasCycle  bool
	cycle     int
	evicted   []int // module-owned scratch; copy to retain past the next op
	// Schedule-op outputs: hasSched gates ii/mii (ii and the schedule
	// slices only on ok), hasProven gates proven/fallback (the optimal
	// engine only).
	hasSched         bool
	ii, mii          int
	hasProven        bool
	proven, fallback bool
	times, alts      []int
}

func (r *opResult) reset() { *r = opResult{} }

// toBatchResult detaches the result into the wire struct, allocating
// fresh pointer cells and copying the slices.
func (r *opResult) toBatchResult() BatchResult {
	var out BatchResult
	if r.hasOK {
		ok := r.ok
		out.OK = &ok
	}
	if r.hasAlt {
		v := r.alt
		out.AltOp = &v
	}
	if r.hasCycle {
		v := r.cycle
		out.Cycle = &v
	}
	if len(r.evicted) > 0 {
		out.Evicted = append([]int(nil), r.evicted...)
	}
	if r.hasSched {
		if r.ok {
			v := r.ii
			out.II = &v
		}
		v := r.mii
		out.MII = &v
	}
	if r.hasProven {
		p, fb := r.proven, r.fallback
		out.Proven = &p
		out.Fallback = &fb
	}
	if r.hasSched && r.ok {
		out.Times = append([]int(nil), r.times...)
		out.Alts = append([]int(nil), r.alts...)
	}
	return out
}

// appendJSON appends the result's JSON encoding to b, byte-identical to
// json.Marshal of the equivalent BatchResult (same field order, same
// omitempty behaviour) without allocating. TestOpResultJSONMatchesMarshal
// pins the equivalence.
func (r *opResult) appendJSON(b []byte) []byte {
	b = append(b, '{')
	first := true
	comma := func() {
		if !first {
			b = append(b, ',')
		}
		first = false
	}
	if r.hasOK {
		comma()
		b = append(b, `"ok":`...)
		b = strconv.AppendBool(b, r.ok)
	}
	if r.hasAlt {
		comma()
		b = append(b, `"alt_op":`...)
		b = strconv.AppendInt(b, int64(r.alt), 10)
	}
	if r.hasCycle {
		comma()
		b = append(b, `"cycle":`...)
		b = strconv.AppendInt(b, int64(r.cycle), 10)
	}
	if len(r.evicted) > 0 {
		comma()
		b = append(b, `"evicted":[`...)
		for i, id := range r.evicted {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(id), 10)
		}
		b = append(b, ']')
	}
	if r.hasSched {
		if r.ok {
			comma()
			b = append(b, `"ii":`...)
			b = strconv.AppendInt(b, int64(r.ii), 10)
		}
		comma()
		b = append(b, `"mii":`...)
		b = strconv.AppendInt(b, int64(r.mii), 10)
	}
	if r.hasProven {
		comma()
		b = append(b, `"proven":`...)
		b = strconv.AppendBool(b, r.proven)
		comma()
		b = append(b, `"fallback":`...)
		b = strconv.AppendBool(b, r.fallback)
	}
	if r.hasSched && r.ok {
		b = appendIntList(b, &first, "times", r.times)
		b = appendIntList(b, &first, "alts", r.alts)
	}
	return append(b, '}')
}

// appendIntList appends `"key":[v,...]` (preceded by a comma when
// needed) unless vs is empty, mirroring encoding/json's omitempty.
func appendIntList(b []byte, first *bool, key string, vs []int) []byte {
	if len(vs) == 0 {
		return b
	}
	if !*first {
		b = append(b, ',')
	}
	*first = false
	b = append(b, '"')
	b = append(b, key...)
	b = append(b, `":[`...)
	for i, v := range vs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return append(b, ']')
}

// opExec executes validated ops against one query module, tracking the
// partial schedule's live instances. It is the single op interpreter
// shared by the one-shot batch endpoint and by scheduling sessions, so
// validation and result semantics cannot diverge between them. Every
// malformed or semantically invalid op returns a 4xx httpError before it
// can reach a code path that panics (out-of-range indices, negative
// linear cycles, assign-on-conflict, free of unknown instances); the
// fuzz harness pins this.
type opExec struct {
	e        *resmodel.Expanded
	m        *resmodel.Machine // e's machine, for the schedule op's MII bounds
	mod      query.Module
	rq       query.RangeQuerier // nil when the representation has none
	rep      string             // requested representation (normalized; may be "auto")
	backend  string             // concrete backend serving mod
	pol      query.Policy       // module policy; schedule-op arenas re-select per II
	scan     string             // normalized scan mode: "verdict", "words" or "naive"
	naive    bool               // scan == "naive": per-cycle reference routing
	ii       int
	maxCycle int
	live     map[int]placed
	// sa is the schedule op's arena (lazily built): per-II modules over
	// e selected under pol, reused across the executor's schedule ops.
	// It is independent of mod — a schedule op never touches the
	// session's partial MRT.
	sa *sched.Arena
}

func newOpExec(e *resmodel.Expanded, m *resmodel.Machine, sel *query.Selection, rep, scan string, pol query.Policy, maxCycle int) *opExec {
	rq, _ := sel.Module.(query.RangeQuerier)
	return &opExec{
		e:        e,
		m:        m,
		mod:      sel.Module,
		rq:       rq,
		rep:      rep,
		backend:  sel.Backend,
		pol:      pol,
		scan:     scan,
		naive:    scan == "naive",
		ii:       pol.II,
		maxCycle: maxCycle,
		live:     map[int]placed{},
	}
}

// Schedule-op caps: small enough that the worst-case request (dense
// graph at the node cap, every II attempt rebuilding an O(n^3) closure)
// stays well under the request deadline, large enough for real inner
// loops.
const (
	scheduleMaxLoopOps   = 64
	scheduleMaxEdges     = 256
	scheduleMaxDelay     = 255
	scheduleMaxDist      = 8
	scheduleDefaultNodes = 1 << 14
	scheduleMaxNodes     = 1 << 18
	scheduleMaxII        = 512
)

// execSchedule validates and runs one "schedule" op: modulo-schedule
// the loop over this executor's description with the exact searcher
// (scheduler "optimal", the default) or the IMS heuristic ("ims").
func (x *opExec) execSchedule(i int, op *BatchOp, res *opResult) *httpError {
	spec := op.Loop
	if spec == nil {
		return errf(http.StatusBadRequest, "op %d: schedule needs a loop", i)
	}
	if x.rep == "fsa" {
		return errf(http.StatusBadRequest,
			"op %d: representation \"fsa\" does not support the schedule op (modulo scheduling needs a reduced-table backend)", i)
	}
	if n := len(spec.Ops); n == 0 || n > scheduleMaxLoopOps {
		return errf(http.StatusBadRequest, "op %d: loop has %d ops, want [1, %d]", i, len(spec.Ops), scheduleMaxLoopOps)
	}
	if len(spec.Edges) > scheduleMaxEdges {
		return errf(http.StatusBadRequest, "op %d: loop has %d edges, limit %d", i, len(spec.Edges), scheduleMaxEdges)
	}
	if op.MaxNodes < 0 || op.MaxNodes > scheduleMaxNodes {
		return errf(http.StatusBadRequest, "op %d: max_nodes %d out of range [0, %d]", i, op.MaxNodes, scheduleMaxNodes)
	}
	g := &ddg.Graph{Name: "serve", Nodes: make([]ddg.Node, len(spec.Ops))}
	for v, opIdx := range spec.Ops {
		if opIdx < 0 || opIdx >= len(x.e.AltGroup) {
			return errf(http.StatusBadRequest, "op %d: loop op %d: original-op index %d out of range [0, %d)", i, v, opIdx, len(x.e.AltGroup))
		}
		g.Nodes[v].Op = opIdx
	}
	for k, ed := range spec.Edges {
		if ed.From < 0 || ed.From >= len(g.Nodes) || ed.To < 0 || ed.To >= len(g.Nodes) {
			return errf(http.StatusBadRequest, "op %d: loop edge %d: endpoint out of range [0, %d)", i, k, len(g.Nodes))
		}
		if ed.Delay < 0 || ed.Delay > scheduleMaxDelay {
			return errf(http.StatusBadRequest, "op %d: loop edge %d: delay %d out of range [0, %d]", i, k, ed.Delay, scheduleMaxDelay)
		}
		if ed.Dist < 0 || ed.Dist > scheduleMaxDist {
			return errf(http.StatusBadRequest, "op %d: loop edge %d: distance %d out of range [0, %d]", i, k, ed.Dist, scheduleMaxDist)
		}
		g.Edges = append(g.Edges, ddg.Edge{From: ed.From, To: ed.To, Delay: ed.Delay, Dist: ed.Dist})
	}
	if err := g.Validate(); err != nil {
		return errf(http.StatusBadRequest, "op %d: invalid loop: %v", i, err)
	}
	if x.sa == nil {
		e, pol, scan := x.e, x.pol, x.scan
		x.sa = sched.NewArena(func(ii int) query.Module {
			p := pol
			p.II = ii
			if sel, err := query.Select(e, p); err == nil {
				if bv, ok := sel.Module.(*query.Bitvector); ok {
					bv.SetVerdictScan(scan == "verdict")
				}
				return sel.Module
			}
			// Selection cannot fail for the policies buildModule admits
			// here at any II (the fsa pin is rejected above, and the
			// bitvector packing checks are II-independent), but serve must
			// never panic — fall back to the reference backend.
			return query.NewDiscrete(e, ii)
		})
	}
	switch op.Scheduler {
	case "", "optimal":
		cfg := sched.DefaultOptimalConfig()
		cfg.MaxNodes = op.MaxNodes
		if cfg.MaxNodes == 0 {
			cfg.MaxNodes = scheduleDefaultNodes
		}
		cfg.MaxII = scheduleMaxII
		cfg.NaiveScan = x.naive
		r := x.sa.Optimal(g, x.m, cfg)
		res.hasOK, res.ok = true, r.OK
		res.hasSched, res.ii, res.mii = true, r.II, r.MII
		res.hasProven, res.proven, res.fallback = true, r.Proven, r.Fallback
		res.times, res.alts = r.Time, r.Alt
	case "ims":
		cfg := sched.DefaultConfig()
		cfg.MaxII = scheduleMaxII
		cfg.NaiveScan = x.naive
		r := x.sa.Schedule(g, x.m, cfg)
		res.hasOK, res.ok = true, r.OK
		res.hasSched, res.ii, res.mii = true, r.II, r.MII
		res.times, res.alts = r.Time, r.Alt
	default:
		return errf(http.StatusBadRequest, "op %d: bad scheduler %q (want optimal or ims)", i, op.Scheduler)
	}
	return nil
}

// checkCycle validates one scheduling cycle under the table's cycle cap.
func (x *opExec) checkCycle(i, cycle int) *httpError {
	if x.ii > 0 {
		if cycle < -maxModuloCycle || cycle > maxModuloCycle {
			return errf(http.StatusBadRequest, "op %d: cycle %d out of range on modulo table", i, cycle)
		}
		return nil
	}
	if cycle < 0 || cycle > x.maxCycle {
		return errf(http.StatusBadRequest, "op %d: cycle %d out of range [0, %d] on linear table", i, cycle, x.maxCycle)
	}
	return nil
}

// checkRange validates a first_free window: both bounds obey the same
// cycle caps as per-cycle queries, and the range must be non-empty
// (lo <= hi) so a client typo cannot silently read back "no slot".
func (x *opExec) checkRange(i int, op *BatchOp) *httpError {
	if op.Lo > op.Hi {
		return errf(http.StatusBadRequest, "op %d: empty cycle range [%d, %d]", i, op.Lo, op.Hi)
	}
	for _, c := range [2]int{op.Lo, op.Hi} {
		if x.ii > 0 {
			if c < -maxModuloCycle || c > maxModuloCycle {
				return errf(http.StatusBadRequest, "op %d: range bound %d out of range on modulo table", i, c)
			}
			continue
		}
		if c < 0 || c > x.maxCycle {
			return errf(http.StatusBadRequest, "op %d: range bound %d out of range [0, %d] on linear table", i, c, x.maxCycle)
		}
	}
	return nil
}

// exec validates and runs one op, filling res (which it resets first).
// i is the op's index in its request, used for error messages only.
func (x *opExec) exec(i int, op *BatchOp, res *opResult) *httpError {
	res.reset()
	if herr := x.checkCycle(i, op.Cycle); herr != nil {
		return herr
	}
	switch op.Fn {
	case "check":
		if op.Op < 0 || op.Op >= len(x.e.Ops) {
			return errf(http.StatusBadRequest, "op %d: expanded-op index %d out of range [0, %d)", i, op.Op, len(x.e.Ops))
		}
		res.hasOK = true
		res.ok = x.mod.Check(op.Op, op.Cycle)
	case "check_with_alt":
		if op.Op < 0 || op.Op >= len(x.e.AltGroup) {
			return errf(http.StatusBadRequest, "op %d: original-op index %d out of range [0, %d)", i, op.Op, len(x.e.AltGroup))
		}
		alt, ok := x.mod.CheckWithAlt(op.Op, op.Cycle)
		res.hasOK = true
		res.ok = ok
		if ok {
			res.hasAlt = true
			res.alt = alt
		}
	case "first_free":
		if x.rq == nil {
			return errf(http.StatusBadRequest, "op %d: representation %q does not support range queries", i, x.rep)
		}
		if op.Op < 0 || op.Op >= len(x.e.Ops) {
			return errf(http.StatusBadRequest, "op %d: expanded-op index %d out of range [0, %d)", i, op.Op, len(x.e.Ops))
		}
		if herr := x.checkRange(i, op); herr != nil {
			return herr
		}
		var cycle int
		var ok bool
		if x.naive {
			cycle, ok = query.FirstFreeNaive(x.mod, op.Op, op.Lo, op.Hi)
		} else {
			cycle, ok = x.rq.FirstFree(op.Op, op.Lo, op.Hi)
		}
		res.hasOK = true
		res.ok = ok
		if ok {
			res.hasCycle = true
			res.cycle = cycle
		}
	case "first_free_alt":
		if x.rq == nil {
			return errf(http.StatusBadRequest, "op %d: representation %q does not support range queries", i, x.rep)
		}
		if op.Op < 0 || op.Op >= len(x.e.AltGroup) {
			return errf(http.StatusBadRequest, "op %d: original-op index %d out of range [0, %d)", i, op.Op, len(x.e.AltGroup))
		}
		if herr := x.checkRange(i, op); herr != nil {
			return herr
		}
		var alt, cycle int
		var ok bool
		if x.naive {
			alt, cycle, ok = query.FirstFreeWithAltNaive(x.mod, op.Op, op.Lo, op.Hi)
		} else {
			alt, cycle, ok = x.rq.FirstFreeWithAlt(op.Op, op.Lo, op.Hi)
		}
		res.hasOK = true
		res.ok = ok
		if ok {
			res.hasAlt = true
			res.alt = alt
			res.hasCycle = true
			res.cycle = cycle
		}
	case "assign":
		if op.Op < 0 || op.Op >= len(x.e.Ops) {
			return errf(http.StatusBadRequest, "op %d: expanded-op index %d out of range [0, %d)", i, op.Op, len(x.e.Ops))
		}
		if op.ID < 0 {
			return errf(http.StatusBadRequest, "op %d: negative instance id %d", i, op.ID)
		}
		if _, used := x.live[op.ID]; used {
			return errf(http.StatusBadRequest, "op %d: instance id %d already scheduled", i, op.ID)
		}
		if !x.mod.Check(op.Op, op.Cycle) {
			return errf(http.StatusConflict, "op %d: assign of op %d at cycle %d conflicts (check first, or use assign_free)", i, op.Op, op.Cycle)
		}
		x.mod.Assign(op.Op, op.Cycle, op.ID)
		x.live[op.ID] = placed{op.Op, op.Cycle}
	case "assign_free":
		if op.Op < 0 || op.Op >= len(x.e.Ops) {
			return errf(http.StatusBadRequest, "op %d: expanded-op index %d out of range [0, %d)", i, op.Op, len(x.e.Ops))
		}
		if op.ID < 0 {
			return errf(http.StatusBadRequest, "op %d: negative instance id %d", i, op.ID)
		}
		if _, used := x.live[op.ID]; used {
			return errf(http.StatusBadRequest, "op %d: instance id %d already scheduled", i, op.ID)
		}
		if !x.mod.Schedulable(op.Op) {
			return errf(http.StatusConflict, "op %d: op %d is unschedulable at II=%d", i, op.Op, x.ii)
		}
		ev := x.mod.AssignFree(op.Op, op.Cycle, op.ID)
		// ev is module-owned scratch, valid until the next module call;
		// consumers that retain results past this op must copy it
		// (toBatchResult does).
		res.evicted = ev
		for _, id := range ev {
			delete(x.live, id)
		}
		x.live[op.ID] = placed{op.Op, op.Cycle}
	case "schedule":
		if herr := x.execSchedule(i, op, res); herr != nil {
			return herr
		}
	case "free":
		in, ok := x.live[op.ID]
		if !ok {
			return errf(http.StatusBadRequest, "op %d: free of unscheduled instance id %d", i, op.ID)
		}
		if in.op != op.Op || in.cycle != op.Cycle {
			return errf(http.StatusBadRequest, "op %d: free of instance %d with op/cycle %d/%d, scheduled as %d/%d",
				i, op.ID, op.Op, op.Cycle, in.op, in.cycle)
		}
		x.mod.Free(op.Op, op.Cycle, op.ID)
		delete(x.live, op.ID)
	default:
		return errf(http.StatusBadRequest, "op %d: bad fn %q (want check, assign, assign_free, free, check_with_alt, first_free, first_free_alt or schedule)", i, op.Fn)
	}
	return nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	obs.Inc("serve.batch.requests")
	start := time.Now()
	defer func() { obs.Observe("serve.batch.latency", time.Since(start).Microseconds()) }()
	var req BatchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	me := s.lookup(req.Machine)
	if me == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown machine %q (register it via /v1/reduce)", req.Machine))
		return
	}
	resp, herr := s.execBatch(r, me, &req)
	if herr != nil {
		writeErr(w, herr.status, herr.msg)
		return
	}
	obs.Add("serve.batch.ops", int64(len(req.Ops)))
	obs.Observe("serve.batch.size", int64(len(req.Ops)))
	writeJSON(w, http.StatusOK, resp)
}

// execBatch validates and runs one batch on a fresh module.
func (s *Server) execBatch(r *http.Request, me *machineEntry, req *BatchRequest) (*BatchResponse, *httpError) {
	if len(req.Ops) > s.cfg.MaxBatchOps {
		return nil, errf(http.StatusBadRequest, "batch has %d ops, limit %d", len(req.Ops), s.cfg.MaxBatchOps)
	}
	e, sel, use, rep, herr := s.buildModule(me, req.Use, req.Representation, req.K, req.WordBits, req.II)
	if herr != nil {
		return nil, herr
	}
	scan, herr := normalizeScan(req.Scan, sel.Module)
	if herr != nil {
		return nil, herr
	}
	pol := query.Policy{Representation: rep, II: req.II, K: req.K, WordBits: req.WordBits}
	x := newOpExec(e, me.machineFor(use), sel, rep, scan, pol, s.cfg.MaxCycle)
	results := make([]BatchResult, 0, len(req.Ops))
	var res opResult
	for i := range req.Ops {
		// A long batch re-checks its deadline periodically so a drained
		// or timed-out request stops doing work.
		if i&0x1ff == 0 {
			if err := r.Context().Err(); err != nil {
				return nil, errf(http.StatusServiceUnavailable, "request deadline exceeded at op %d of %d", i, len(req.Ops))
			}
		}
		if herr := x.exec(i, &req.Ops[i], &res); herr != nil {
			return nil, herr
		}
		results = append(results, res.toBatchResult())
	}
	return &BatchResponse{
		Machine:        me.name,
		Use:            use,
		Representation: rep,
		Backend:        x.backend,
		II:             req.II,
		Results:        results,
		Counters:       *x.mod.Counters(),
	}, nil
}
