package serve

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/resmodel"
)

// BatchRequest is the body of POST /v1/batch: a contention-query
// sequence executed in order on a fresh module over a registered
// description. Either assign or assign&free, but not both, should be
// used within one batch (the paper's usage contract).
type BatchRequest struct {
	// Machine names a registered description (see /v1/reduce).
	Machine string `json:"machine"`
	// Use selects "reduced" (default) or "original" description.
	Use string `json:"use,omitempty"`
	// Representation selects "discrete" (default) or "bitvector".
	Representation string `json:"representation,omitempty"`
	// K is the bitvector packing (cycles per word); 0 selects the
	// densest legal packing for the description's resource count.
	K int `json:"k,omitempty"`
	// WordBits is the bitvector word size, 32 or 64 (0 selects 64).
	WordBits int `json:"word_bits,omitempty"`
	// II selects a Modulo Reservation Table with II columns; 0 selects a
	// linear reserved table.
	II int `json:"ii,omitempty"`
	// Ops is the query sequence.
	Ops []BatchOp `json:"ops"`
}

// BatchOp is one query of a batch.
type BatchOp struct {
	// Fn is "check", "assign", "assign_free", "free", "check_with_alt",
	// "first_free" or "first_free_alt".
	Fn string `json:"fn"`
	// Op is the expanded-op index ("check_with_alt", "first_free_alt":
	// the original-op index).
	Op int `json:"op"`
	// Cycle is the schedule cycle (unused by the range queries).
	Cycle int `json:"cycle"`
	// Lo and Hi bound the inclusive cycle range of "first_free" and
	// "first_free_alt".
	Lo int `json:"lo,omitempty"`
	Hi int `json:"hi,omitempty"`
	// ID is the instance id ("assign", "assign_free", "free").
	ID int `json:"id,omitempty"`
}

// BatchResult is the answer to one BatchOp. Check-like ops set OK;
// check_with_alt and first_free_alt additionally set AltOp on success;
// the range queries set Cycle to the first contention-free cycle found;
// assign_free lists the evicted instance ids (omitted when none).
type BatchResult struct {
	OK      *bool `json:"ok,omitempty"`
	AltOp   *int  `json:"alt_op,omitempty"`
	Cycle   *int  `json:"cycle,omitempty"`
	Evicted []int `json:"evicted,omitempty"`
}

// BatchResponse is the body of a successful POST /v1/batch.
type BatchResponse struct {
	Machine        string         `json:"machine"`
	Use            string         `json:"use"`
	Representation string         `json:"representation"`
	II             int            `json:"ii"`
	Results        []BatchResult  `json:"results"`
	Counters       query.Counters `json:"counters"`
}

// httpError carries a status code alongside a client-facing message.
type httpError struct {
	status int
	msg    string
}

func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// maxModuloCycle bounds |cycle| on modulo tables: folding handles any
// cycle, but bounding keeps cycle+usage arithmetic far from integer
// overflow on every platform.
const maxModuloCycle = 1 << 30

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	obs.Inc("serve.batch.requests")
	start := time.Now()
	defer func() { obs.Observe("serve.batch.latency", time.Since(start).Microseconds()) }()
	var req BatchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	sess := s.lookup(req.Machine)
	if sess == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown machine %q (register it via /v1/reduce)", req.Machine))
		return
	}
	resp, herr := s.execBatch(r, sess, &req)
	if herr != nil {
		writeErr(w, herr.status, herr.msg)
		return
	}
	obs.Add("serve.batch.ops", int64(len(req.Ops)))
	obs.Observe("serve.batch.size", int64(len(req.Ops)))
	writeJSON(w, http.StatusOK, resp)
}

// execBatch validates and runs one batch on a fresh module. Every
// malformed or semantically invalid input returns a 4xx httpError before
// it can reach a code path that panics (out-of-range indices, negative
// linear cycles, assign-on-conflict, free of unknown instances); the
// fuzz harness pins this.
func (s *Server) execBatch(r *http.Request, sess *session, req *BatchRequest) (*BatchResponse, *httpError) {
	use := req.Use
	switch use {
	case "":
		use = "reduced"
	case "reduced", "original":
	default:
		return nil, errf(http.StatusBadRequest, "bad use %q (want reduced or original)", req.Use)
	}
	e := sess.red.Reduced
	if use == "original" {
		e = sess.expanded
	}

	if req.II < 0 || req.II > s.cfg.MaxCycle {
		return nil, errf(http.StatusBadRequest, "ii %d out of range [0, %d]", req.II, s.cfg.MaxCycle)
	}
	if len(req.Ops) > s.cfg.MaxBatchOps {
		return nil, errf(http.StatusBadRequest, "batch has %d ops, limit %d", len(req.Ops), s.cfg.MaxBatchOps)
	}

	rep := req.Representation
	var mod query.Module
	switch rep {
	case "", "discrete":
		rep = "discrete"
		mod = query.NewDiscrete(e, req.II)
	case "bitvector":
		wordBits := req.WordBits
		if wordBits == 0 {
			wordBits = 64
		}
		k := req.K
		if k == 0 {
			k = query.MaxCyclesPerWord(len(e.Resources), wordBits)
		}
		var err error
		mod, err = query.NewBitvector(e, k, wordBits, req.II)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
	default:
		return nil, errf(http.StatusBadRequest, "bad representation %q (want discrete or bitvector)", req.Representation)
	}

	// live mirrors the module's scheduled-instance state so frees and id
	// reuse are validated instead of corrupting (or panicking inside)
	// the module.
	type placed struct{ op, cycle int }
	live := map[int]placed{}
	results := make([]BatchResult, 0, len(req.Ops))

	checkCycle := func(i int, op BatchOp) *httpError {
		if req.II > 0 {
			if op.Cycle < -maxModuloCycle || op.Cycle > maxModuloCycle {
				return errf(http.StatusBadRequest, "op %d: cycle %d out of range on modulo table", i, op.Cycle)
			}
			return nil
		}
		if op.Cycle < 0 || op.Cycle > s.cfg.MaxCycle {
			return errf(http.StatusBadRequest, "op %d: cycle %d out of range [0, %d] on linear table", i, op.Cycle, s.cfg.MaxCycle)
		}
		return nil
	}
	// checkRange validates a first_free window: both bounds obey the same
	// cycle caps as per-cycle queries, and the range must be non-empty
	// (lo <= hi) so a client typo cannot silently read back "no slot".
	checkRange := func(i int, op BatchOp) *httpError {
		if op.Lo > op.Hi {
			return errf(http.StatusBadRequest, "op %d: empty cycle range [%d, %d]", i, op.Lo, op.Hi)
		}
		for _, c := range [2]int{op.Lo, op.Hi} {
			if req.II > 0 {
				if c < -maxModuloCycle || c > maxModuloCycle {
					return errf(http.StatusBadRequest, "op %d: range bound %d out of range on modulo table", i, c)
				}
				continue
			}
			if c < 0 || c > s.cfg.MaxCycle {
				return errf(http.StatusBadRequest, "op %d: range bound %d out of range [0, %d] on linear table", i, c, s.cfg.MaxCycle)
			}
		}
		return nil
	}
	rq, _ := mod.(query.RangeQuerier)

	for i, op := range req.Ops {
		// A long batch re-checks its deadline periodically so a drained
		// or timed-out request stops doing work.
		if i&0x1ff == 0 {
			if err := r.Context().Err(); err != nil {
				return nil, errf(http.StatusServiceUnavailable, "request deadline exceeded at op %d of %d", i, len(req.Ops))
			}
		}
		if herr := checkCycle(i, op); herr != nil {
			return nil, herr
		}
		switch op.Fn {
		case "check":
			if op.Op < 0 || op.Op >= len(e.Ops) {
				return nil, errf(http.StatusBadRequest, "op %d: expanded-op index %d out of range [0, %d)", i, op.Op, len(e.Ops))
			}
			ok := mod.Check(op.Op, op.Cycle)
			results = append(results, BatchResult{OK: &ok})
		case "check_with_alt":
			if op.Op < 0 || op.Op >= len(e.AltGroup) {
				return nil, errf(http.StatusBadRequest, "op %d: original-op index %d out of range [0, %d)", i, op.Op, len(e.AltGroup))
			}
			alt, ok := mod.CheckWithAlt(op.Op, op.Cycle)
			res := BatchResult{OK: &ok}
			if ok {
				res.AltOp = &alt
			}
			results = append(results, res)
		case "first_free":
			if rq == nil {
				return nil, errf(http.StatusBadRequest, "op %d: representation %q does not support range queries", i, rep)
			}
			if op.Op < 0 || op.Op >= len(e.Ops) {
				return nil, errf(http.StatusBadRequest, "op %d: expanded-op index %d out of range [0, %d)", i, op.Op, len(e.Ops))
			}
			if herr := checkRange(i, op); herr != nil {
				return nil, herr
			}
			cycle, ok := rq.FirstFree(op.Op, op.Lo, op.Hi)
			res := BatchResult{OK: &ok}
			if ok {
				res.Cycle = &cycle
			}
			results = append(results, res)
		case "first_free_alt":
			if rq == nil {
				return nil, errf(http.StatusBadRequest, "op %d: representation %q does not support range queries", i, rep)
			}
			if op.Op < 0 || op.Op >= len(e.AltGroup) {
				return nil, errf(http.StatusBadRequest, "op %d: original-op index %d out of range [0, %d)", i, op.Op, len(e.AltGroup))
			}
			if herr := checkRange(i, op); herr != nil {
				return nil, herr
			}
			alt, cycle, ok := rq.FirstFreeWithAlt(op.Op, op.Lo, op.Hi)
			res := BatchResult{OK: &ok}
			if ok {
				res.AltOp = &alt
				res.Cycle = &cycle
			}
			results = append(results, res)
		case "assign":
			if op.Op < 0 || op.Op >= len(e.Ops) {
				return nil, errf(http.StatusBadRequest, "op %d: expanded-op index %d out of range [0, %d)", i, op.Op, len(e.Ops))
			}
			if op.ID < 0 {
				return nil, errf(http.StatusBadRequest, "op %d: negative instance id %d", i, op.ID)
			}
			if _, used := live[op.ID]; used {
				return nil, errf(http.StatusBadRequest, "op %d: instance id %d already scheduled", i, op.ID)
			}
			if !mod.Check(op.Op, op.Cycle) {
				return nil, errf(http.StatusConflict, "op %d: assign of op %d at cycle %d conflicts (check first, or use assign_free)", i, op.Op, op.Cycle)
			}
			mod.Assign(op.Op, op.Cycle, op.ID)
			live[op.ID] = placed{op.Op, op.Cycle}
			results = append(results, BatchResult{})
		case "assign_free":
			if op.Op < 0 || op.Op >= len(e.Ops) {
				return nil, errf(http.StatusBadRequest, "op %d: expanded-op index %d out of range [0, %d)", i, op.Op, len(e.Ops))
			}
			if op.ID < 0 {
				return nil, errf(http.StatusBadRequest, "op %d: negative instance id %d", i, op.ID)
			}
			if _, used := live[op.ID]; used {
				return nil, errf(http.StatusBadRequest, "op %d: instance id %d already scheduled", i, op.ID)
			}
			if !mod.Schedulable(op.Op) {
				return nil, errf(http.StatusConflict, "op %d: op %d is unschedulable at II=%d", i, op.Op, req.II)
			}
			ev := mod.AssignFree(op.Op, op.Cycle, op.ID)
			res := BatchResult{}
			if len(ev) > 0 {
				// The module may reuse the backing array across calls;
				// the response needs a stable copy.
				res.Evicted = append([]int(nil), ev...)
				for _, id := range ev {
					delete(live, id)
				}
			}
			live[op.ID] = placed{op.Op, op.Cycle}
			results = append(results, res)
		case "free":
			in, ok := live[op.ID]
			if !ok {
				return nil, errf(http.StatusBadRequest, "op %d: free of unscheduled instance id %d", i, op.ID)
			}
			if in.op != op.Op || in.cycle != op.Cycle {
				return nil, errf(http.StatusBadRequest, "op %d: free of instance %d with op/cycle %d/%d, scheduled as %d/%d",
					i, op.ID, op.Op, op.Cycle, in.op, in.cycle)
			}
			mod.Free(op.Op, op.Cycle, op.ID)
			delete(live, op.ID)
			results = append(results, BatchResult{})
		default:
			return nil, errf(http.StatusBadRequest, "op %d: bad fn %q (want check, assign, assign_free, free, check_with_alt, first_free or first_free_alt)", i, op.Fn)
		}
	}
	return &BatchResponse{
		Machine:        sess.name,
		Use:            use,
		Representation: rep,
		II:             req.II,
		Results:        results,
		Counters:       *mod.Counters(),
	}, nil
}

// expandedFor returns the description a batch with the given use string
// executes against (test helper for differential runs).
func (sess *session) expandedFor(use string) *resmodel.Expanded {
	if use == "original" {
		return sess.expanded
	}
	return sess.red.Reduced
}
