package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/mdl"
	"repro/internal/obs"
)

// post sends a JSON body through the handler and returns the recorder.
func post(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if raw, ok := body.([]byte); ok {
		buf.Write(raw)
	} else if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func decodeBody[T any](t *testing.T, rec *httptest.ResponseRecorder) *T {
	t.Helper()
	v := new(T)
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("response %d not valid JSON: %v\n%s", rec.Code, err, rec.Body.String())
	}
	return v
}

func TestReduceEndpointAndCacheHit(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	src := mdl.Print(machines.Example())

	rec := post(t, h, "/v1/reduce", ReduceRequest{Name: "ex", MDL: src})
	if rec.Code != http.StatusOK {
		t.Fatalf("reduce: status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[ReduceResponse](t, rec)
	if resp.Name != "ex" || resp.CacheHit {
		t.Errorf("first reduce: name=%q hit=%v, want ex/false", resp.Name, resp.CacheHit)
	}
	if resp.ReducedResources > resp.Resources || resp.ReducedResources < 1 {
		t.Errorf("implausible reduction: %d -> %d resources", resp.Resources, resp.ReducedResources)
	}
	if _, err := mdl.Parse(resp.ReducedMDL); err != nil {
		t.Errorf("reduced MDL does not parse: %v", err)
	}

	// Same content under a different name: a cache hit, two sessions.
	resp2 := decodeBody[ReduceResponse](t, post(t, h, "/v1/reduce", ReduceRequest{Name: "ex2", MDL: src}))
	if !resp2.CacheHit {
		t.Error("second reduce of identical content missed the cache")
	}

	var ms struct{ Machines []MachineInfo }
	if rec := get(t, h, "/v1/machines"); rec.Code != http.StatusOK {
		t.Fatalf("machines: status %d", rec.Code)
	} else if got := decodeBody[struct{ Machines []MachineInfo }](t, rec); len(got.Machines) != 2 {
		t.Errorf("machines lists %d entries, want 2", len(got.Machines))
	} else {
		ms = *got
	}
	if ms.Machines[0].Name != "ex" || ms.Machines[1].Name != "ex2" {
		t.Errorf("machines not sorted by name: %+v", ms.Machines)
	}
}

func TestReduceRejectsBadInput(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	for name, tc := range map[string]struct {
		body any
		want int
	}{
		"malformed json": {[]byte("{"), http.StatusBadRequest},
		"empty mdl":      {ReduceRequest{MDL: "  "}, http.StatusBadRequest},
		"bad mdl":        {ReduceRequest{MDL: "machine m\nop x {"}, http.StatusBadRequest},
		"bad objective":  {ReduceRequest{MDL: mdl.Print(machines.Example()), Objective: "zero-cycle"}, http.StatusBadRequest},
	} {
		if rec := post(t, h, "/v1/reduce", tc.body); rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", name, rec.Code, tc.want, rec.Body.String())
		}
	}
}

func TestBatchEndpointBasic(t *testing.T) {
	s := New(Config{})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	rec := post(t, h, "/v1/batch", BatchRequest{
		Machine: "ex",
		Use:     "original",
		Ops: []BatchOp{
			{Fn: "check", Op: 0, Cycle: 0},
			{Fn: "assign", Op: 0, Cycle: 0, ID: 1},
			{Fn: "check", Op: 0, Cycle: 0}, // now occupied
			{Fn: "check_with_alt", Op: 0, Cycle: 0},
			{Fn: "free", Op: 0, Cycle: 0, ID: 1},
			{Fn: "check", Op: 0, Cycle: 0},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[BatchResponse](t, rec)
	if len(resp.Results) != 6 {
		t.Fatalf("got %d results, want 6", len(resp.Results))
	}
	if resp.Results[0].OK == nil || !*resp.Results[0].OK {
		t.Error("check on empty table not ok")
	}
	if resp.Results[2].OK == nil || *resp.Results[2].OK {
		t.Error("check after assign reported free")
	}
	if resp.Results[5].OK == nil || !*resp.Results[5].OK {
		t.Error("check after free not ok")
	}
	if resp.Counters.CheckCalls == 0 || resp.Counters.AssignCalls != 1 || resp.Counters.FreeCalls != 1 {
		t.Errorf("counters not threaded through: %+v", resp.Counters)
	}
	if resp.Use != "original" || resp.Representation != "discrete" {
		t.Errorf("echo fields: use=%q rep=%q", resp.Use, resp.Representation)
	}
}

func TestBatchAssignFreeEvictions(t *testing.T) {
	s := New(Config{})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	rec := post(t, h, "/v1/batch", BatchRequest{
		Machine: "ex",
		Ops: []BatchOp{
			{Fn: "assign_free", Op: 0, Cycle: 0, ID: 1},
			{Fn: "assign_free", Op: 0, Cycle: 0, ID: 2}, // same slot: evicts 1
			{Fn: "free", Op: 0, Cycle: 0, ID: 2},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[BatchResponse](t, rec)
	if len(resp.Results[0].Evicted) != 0 {
		t.Errorf("first assign_free evicted %v, want none", resp.Results[0].Evicted)
	}
	if len(resp.Results[1].Evicted) != 1 || resp.Results[1].Evicted[0] != 1 {
		t.Errorf("second assign_free evicted %v, want [1]", resp.Results[1].Evicted)
	}
}

func TestBatchValidation(t *testing.T) {
	s := New(Config{MaxBatchOps: 4, MaxCycle: 100})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	many := make([]BatchOp, 5)
	for i := range many {
		many[i] = BatchOp{Fn: "check"}
	}
	for name, tc := range map[string]struct {
		req  BatchRequest
		want int
	}{
		"unknown machine": {BatchRequest{Machine: "nope"}, http.StatusNotFound},
		"bad use":         {BatchRequest{Machine: "ex", Use: "both"}, http.StatusBadRequest},
		"bad rep":         {BatchRequest{Machine: "ex", Representation: "automaton"}, http.StatusBadRequest},
		"negative ii":     {BatchRequest{Machine: "ex", II: -1}, http.StatusBadRequest},
		"too many ops":    {BatchRequest{Machine: "ex", Ops: many}, http.StatusBadRequest},
		"bad fn":          {BatchRequest{Machine: "ex", Ops: []BatchOp{{Fn: "peek"}}}, http.StatusBadRequest},
		"op out of range": {BatchRequest{Machine: "ex", Ops: []BatchOp{{Fn: "check", Op: 99}}}, http.StatusBadRequest},
		"negative op":     {BatchRequest{Machine: "ex", Ops: []BatchOp{{Fn: "check", Op: -1}}}, http.StatusBadRequest},
		"negative cycle":  {BatchRequest{Machine: "ex", Ops: []BatchOp{{Fn: "check", Cycle: -1}}}, http.StatusBadRequest},
		"huge cycle":      {BatchRequest{Machine: "ex", Ops: []BatchOp{{Fn: "check", Cycle: 101}}}, http.StatusBadRequest},
		"free unknown id": {BatchRequest{Machine: "ex", Ops: []BatchOp{{Fn: "free", ID: 5}}}, http.StatusBadRequest},
		"bad bitvector k": {BatchRequest{Machine: "ex", Representation: "bitvector", K: 500}, http.StatusBadRequest},
		"bad word bits":   {BatchRequest{Machine: "ex", Representation: "bitvector", WordBits: 48}, http.StatusBadRequest},
		"assign conflict": {BatchRequest{Machine: "ex", Ops: []BatchOp{
			{Fn: "assign", Op: 0, Cycle: 0, ID: 1},
			{Fn: "assign", Op: 0, Cycle: 0, ID: 2},
		}}, http.StatusConflict},
		"id reuse": {BatchRequest{Machine: "ex", Ops: []BatchOp{
			{Fn: "assign", Op: 0, Cycle: 0, ID: 1},
			{Fn: "assign", Op: 0, Cycle: 50, ID: 1},
		}}, http.StatusBadRequest},
		"free mismatched cycle": {BatchRequest{Machine: "ex", Ops: []BatchOp{
			{Fn: "assign", Op: 0, Cycle: 0, ID: 1},
			{Fn: "free", Op: 0, Cycle: 3, ID: 1},
		}}, http.StatusBadRequest},
	} {
		rec := post(t, h, "/v1/batch", tc.req)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", name, rec.Code, tc.want, strings.TrimSpace(rec.Body.String()))
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not {\"error\": ...}: %s", name, rec.Body.String())
		}
	}
}

func TestAdmissionGateRejectsWhenFull(t *testing.T) {
	s := New(Config{MaxInFlight: 1, RequestTimeout: 30 * time.Millisecond})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	// Hold the only slot so the request cannot be admitted.
	if err := s.gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.gate.Release()
	rec := post(t, s.Handler(), "/v1/batch", BatchRequest{Machine: "ex", Ops: []BatchOp{{Fn: "check"}}})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	// Cheap endpoints stay available during overload.
	if rec := get(t, s.Handler(), "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz during overload: status %d", rec.Code)
	}
}

func TestBatchStopsAtDeadline(t *testing.T) {
	s := New(Config{})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", nil).WithContext(ctx)
	_, herr := s.execBatch(req, s.lookup("ex"), &BatchRequest{
		Machine: "ex",
		Ops:     []BatchOp{{Fn: "check"}},
	})
	if herr == nil || herr.status != http.StatusServiceUnavailable {
		t.Fatalf("expired-context batch: %+v, want 503", herr)
	}
}

func TestBodySizeCap(t *testing.T) {
	s := New(Config{MaxBodyBytes: 64})
	big := []byte(fmt.Sprintf(`{"mdl": %q}`, strings.Repeat("x", 200)))
	rec := post(t, s.Handler(), "/v1/reduce", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", rec.Code)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	obs.Default().SetEnabled(true)
	defer obs.Default().SetEnabled(false)

	s := New(Config{CacheCapacity: 2})
	h := s.Handler()
	if rec := post(t, h, "/v1/reduce", ReduceRequest{Name: "ex", MDL: mdl.Print(machines.Example())}); rec.Code != http.StatusOK {
		t.Fatalf("reduce: %d", rec.Code)
	}
	if rec := post(t, h, "/v1/batch", BatchRequest{Machine: "ex", Ops: []BatchOp{{Fn: "check"}}}); rec.Code != http.StatusOK {
		t.Fatalf("batch: %d", rec.Code)
	}

	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	var hz struct {
		OK    bool `json:"ok"`
		Cache struct {
			Resident, Capacity int
		} `json:"cache"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil || !hz.OK {
		t.Fatalf("healthz body: %s (%v)", rec.Body.String(), err)
	}
	if hz.Cache.Capacity != 2 || hz.Cache.Resident > 2 {
		t.Errorf("healthz cache shape: %+v", hz.Cache)
	}

	rec = get(t, h, "/v1/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	data, _ := io.ReadAll(rec.Body)
	if err := obs.ValidateSnapshotJSON(data, "serve", "core"); err != nil {
		t.Fatalf("metrics snapshot invalid: %v", err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counter("serve.reduce.requests") < 1 || snap.Counter("serve.batch.requests") < 1 {
		t.Error("serve request counters missing from snapshot")
	}
}
