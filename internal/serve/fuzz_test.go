package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/machines"
)

// FuzzServeBatchDecode throws arbitrary bytes at POST /v1/batch on a
// server with a registered machine and pins the executor's contract:
// the handler never panics and never returns 5xx — every malformed or
// semantically invalid body is answered with a 4xx and a JSON error
// body. (The query modules themselves panic on contract violations such
// as negative linear cycles or assigning over a conflict; execBatch must
// pre-validate everything so no input on the wire can reach them.)
func FuzzServeBatchDecode(f *testing.F) {
	s := New(Config{})
	if _, err := s.Register("example", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		f.Fatal(err)
	}
	h := s.Handler()

	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	// A fully valid batch, then targeted mutations of each validation
	// axis: unknown machine, bad use/representation/fn, out-of-range op
	// and cycle indices, negative cycles on a linear table, id misuse
	// (reuse, free-unknown, mismatched free), assign-on-conflict, and
	// structurally broken JSON.
	f.Add(mustJSON(BatchRequest{Machine: "example", Ops: []BatchOp{
		{Fn: "check", Op: 0, Cycle: 0},
		{Fn: "assign", Op: 0, Cycle: 4, ID: 1},
		{Fn: "check_with_alt", Op: 0, Cycle: 4},
		{Fn: "free", Op: 0, Cycle: 4, ID: 1},
	}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Use: "original", Representation: "bitvector", II: 3, Ops: []BatchOp{
		{Fn: "assign_free", Op: 1, Cycle: 2, ID: 7},
		{Fn: "assign_free", Op: 1, Cycle: 2, ID: 8},
	}}))
	f.Add(mustJSON(BatchRequest{Machine: "nope", Ops: []BatchOp{{Fn: "check"}}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Use: "shrunk", Ops: []BatchOp{{Fn: "check"}}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Representation: "automaton"}))
	// Representation routing: measured auto-selection, the pinned FSA
	// backend, the FSA's linear-only rejection (ii > 0), and the FSA's
	// schedule-op rejection.
	f.Add(mustJSON(BatchRequest{Machine: "example", Representation: "auto", Ops: []BatchOp{
		{Fn: "check", Op: 0, Cycle: 0},
		{Fn: "assign", Op: 0, Cycle: 4, ID: 1},
		{Fn: "first_free_alt", Op: 0, Lo: 0, Hi: 12},
	}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Representation: "fsa", Ops: []BatchOp{
		{Fn: "check", Op: 0, Cycle: 0},
		{Fn: "assign_free", Op: 0, Cycle: 2, ID: 7},
		{Fn: "assign_free", Op: 0, Cycle: 2, ID: 8},
		{Fn: "first_free", Op: 0, Lo: 0, Hi: 12},
	}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Representation: "fsa", II: 3, Ops: []BatchOp{{Fn: "check"}}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Representation: "fsa", Ops: []BatchOp{
		{Fn: "schedule", Loop: &LoopSpec{Ops: []int{0}}},
	}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Ops: []BatchOp{{Fn: "evict", Op: 0}}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Ops: []BatchOp{{Fn: "check", Op: 9999}}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Ops: []BatchOp{{Fn: "check", Op: 0, Cycle: -1}}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", II: -2, Ops: []BatchOp{{Fn: "check"}}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", K: -1, WordBits: 13, Representation: "bitvector"}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Ops: []BatchOp{
		{Fn: "free", Op: 0, Cycle: 0, ID: 42},
	}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Ops: []BatchOp{
		{Fn: "assign", Op: 0, Cycle: 0, ID: 1},
		{Fn: "assign", Op: 0, Cycle: 0, ID: 1},
	}}))
	// Range-query seeds: a valid first_free/first_free_alt pair, an empty
	// range (lo > hi), a negative bound on a linear table, a huge bound on
	// a modulo table, and an out-of-range op index.
	f.Add(mustJSON(BatchRequest{Machine: "example", Ops: []BatchOp{
		{Fn: "assign", Op: 0, Cycle: 2, ID: 1},
		{Fn: "first_free", Op: 0, Lo: 0, Hi: 12},
		{Fn: "first_free_alt", Op: 0, Lo: 3, Hi: 9},
	}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Representation: "bitvector", II: 4, Ops: []BatchOp{
		{Fn: "first_free", Op: 1, Lo: -3, Hi: 5},
	}}))
	// Scan-mode seeds: the verdict default made explicit, the word-scan
	// and naive oracles (range queries and a schedule op under each), and
	// an invalid scan value.
	f.Add(mustJSON(BatchRequest{Machine: "example", Representation: "bitvector", II: 4, Scan: "verdict", Ops: []BatchOp{
		{Fn: "assign_free", Op: 0, Cycle: 1, ID: 1},
		{Fn: "first_free", Op: 1, Lo: 0, Hi: 11},
		{Fn: "first_free_alt", Op: 0, Lo: -2, Hi: 7},
	}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Representation: "bitvector", Scan: "words", Ops: []BatchOp{
		{Fn: "assign", Op: 0, Cycle: 2, ID: 1},
		{Fn: "first_free", Op: 0, Lo: 0, Hi: 12},
		{Fn: "schedule", Scheduler: "ims", Loop: &LoopSpec{Ops: []int{0}}},
	}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Scan: "naive", Ops: []BatchOp{
		{Fn: "first_free", Op: 0, Lo: 0, Hi: 12},
		{Fn: "first_free_alt", Op: 0, Lo: 3, Hi: 9},
		{Fn: "schedule", Loop: &LoopSpec{Ops: []int{0, 1}}},
	}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Scan: "simd", Ops: []BatchOp{{Fn: "check"}}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Ops: []BatchOp{{Fn: "first_free", Op: 0, Lo: 9, Hi: 2}}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Ops: []BatchOp{{Fn: "first_free", Op: 0, Lo: -1, Hi: 5}}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", II: 3, Ops: []BatchOp{{Fn: "first_free_alt", Op: 0, Lo: 0, Hi: 1 << 40}}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Ops: []BatchOp{{Fn: "first_free_alt", Op: 9999, Lo: 0, Hi: 5}}}))
	// Schedule-op seeds: a valid optimal run, an ims run with a budget,
	// then one mutation per validation axis (missing loop, unknown
	// scheduler, bad loop-op index, bad edge endpoint, zero-distance
	// cycle, oversized budget).
	f.Add(mustJSON(BatchRequest{Machine: "example", Ops: []BatchOp{
		{Fn: "schedule", Loop: &LoopSpec{Ops: []int{0, 1}, Edges: []LoopEdge{
			{From: 0, To: 1, Delay: 2}, {From: 1, To: 0, Delay: 1, Dist: 1}}}},
	}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Use: "original", Ops: []BatchOp{
		{Fn: "schedule", Scheduler: "ims", MaxNodes: 4096, Loop: &LoopSpec{Ops: []int{1, 1, 0}}},
	}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Ops: []BatchOp{{Fn: "schedule"}}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Ops: []BatchOp{
		{Fn: "schedule", Scheduler: "greedy", Loop: &LoopSpec{Ops: []int{0}}},
	}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Ops: []BatchOp{
		{Fn: "schedule", Loop: &LoopSpec{Ops: []int{99}}},
	}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Ops: []BatchOp{
		{Fn: "schedule", Loop: &LoopSpec{Ops: []int{0}, Edges: []LoopEdge{{From: 0, To: 7, Delay: 1}}}},
	}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Ops: []BatchOp{
		{Fn: "schedule", Loop: &LoopSpec{Ops: []int{0, 1}, Edges: []LoopEdge{
			{From: 0, To: 1, Delay: 1}, {From: 1, To: 0, Delay: 1}}}},
	}}))
	f.Add(mustJSON(BatchRequest{Machine: "example", Ops: []BatchOp{
		{Fn: "schedule", MaxNodes: 1 << 30, Loop: &LoopSpec{Ops: []int{0}}},
	}}))
	f.Add([]byte(`{"machine":"example","ops":[{"fn":"check","op":0,"cycle":`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"machine":"example","ops":"notalist"}`))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(data))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // a panic here fails the fuzz run

		code := rec.Code
		if code >= 500 {
			t.Fatalf("5xx (%d) from batch handler on input %q: %s", code, data, rec.Body.Bytes())
		}
		var br BatchRequest
		if json.Unmarshal(data, &br) != nil && code < 400 {
			t.Fatalf("malformed JSON accepted with status %d: %q", code, data)
		}
		if code != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("status %d without JSON error body: %q -> %q", code, data, rec.Body.Bytes())
			}
		}
	})
}

// FuzzServeSessionStream throws arbitrary NDJSON bodies at a fresh
// scheduling session's /stream endpoint and pins the streaming
// contract: the handler never panics, the response status is 200 (the
// NDJSON phase) or a 4xx, and every response line is one valid JSON
// value ending in either an {"error":...} line or a {"done":true}
// trailer — a mid-stream failure must never leave a torn, unparsable
// tail on the wire.
func FuzzServeSessionStream(f *testing.F) {
	s := New(Config{})
	if _, err := s.Register("example", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		f.Fatal(err)
	}
	h := s.Handler()

	f.Add([]byte("{\"fn\":\"check\",\"op\":0,\"cycle\":0}\n"))
	f.Add([]byte("{\"fn\":\"assign\",\"op\":0,\"cycle\":0,\"id\":1}\n{\"fn\":\"check\",\"op\":0,\"cycle\":0}\n{\"fn\":\"free\",\"op\":0,\"cycle\":0,\"id\":1}\n"))
	f.Add([]byte("{\"fn\":\"assign_free\",\"op\":0,\"cycle\":2,\"id\":7}\n{\"fn\":\"assign_free\",\"op\":0,\"cycle\":2,\"id\":8}\n"))
	f.Add([]byte("{\"fn\":\"first_free\",\"op\":0,\"lo\":0,\"hi\":12}\n{\"fn\":\"first_free_alt\",\"op\":0,\"lo\":3,\"hi\":9}\n"))
	f.Add([]byte("\n\n{\"fn\":\"check\",\"op\":0,\"cycle\":1}\r\n\n"))
	f.Add([]byte("{\"fn\":\"check\",\"op\":0,\"cycle\":2}")) // final op without trailing newline
	f.Add([]byte("{\"fn\":\"schedule\",\"loop\":{\"ops\":[0,1],\"edges\":[{\"from\":0,\"to\":1,\"delay\":2}]}}\n"))
	f.Add([]byte("{\"fn\":\"schedule\",\"scheduler\":\"ims\",\"loop\":{\"ops\":[1]}}\n{\"fn\":\"schedule\",\"loop\":{\"ops\":[9]}}\n"))
	f.Add([]byte("{\"fn\":\"peek\"}\n"))
	f.Add([]byte("{\"fn\":\"check\",\"op\":9999}\n"))
	f.Add([]byte("{\"fn\":\"check\",\"op\":0,\"cycle\":-5}\n"))
	f.Add([]byte("{\"fn\":\"free\",\"op\":0,\"cycle\":0,\"id\":42}\n"))
	f.Add([]byte("{\"fn\":\"check\",\"op\":0,\"cycle\":"))
	f.Add([]byte("[]\n{}\n"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xfe, 0x00, 0x0a})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Rotate the session's representation and scan mode by input
		// length so the stream contract is fuzzed over the FSA backend
		// and the verdict/words/naive scan paths too, while corpus replay
		// stays deterministic per input.
		body := `{"machine":"example","representation":"auto"}`
		switch len(data) % 4 {
		case 1:
			body = `{"machine":"example","representation":"fsa"}`
		case 2:
			body = `{"machine":"example","representation":"bitvector","ii":3,"scan":"words"}`
		case 3:
			body = `{"machine":"example","representation":"bitvector","scan":"naive"}`
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/sessions",
			bytes.NewReader([]byte(body))))
		if rec.Code != http.StatusOK {
			t.Fatalf("session create: status %d: %s", rec.Code, rec.Body.Bytes())
		}
		var si SessionInfo
		if err := json.Unmarshal(rec.Body.Bytes(), &si); err != nil {
			t.Fatal(err)
		}

		rec = httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/sessions/"+si.SessionID+"/stream", bytes.NewReader(data))
		h.ServeHTTP(rec, req) // a panic here fails the fuzz run
		if rec.Code >= 500 {
			t.Fatalf("5xx (%d) from stream handler on input %q: %s", rec.Code, data, rec.Body.Bytes())
		}
		if rec.Code != http.StatusOK {
			return // rejected before the NDJSON phase (4xx)
		}
		lines := bytes.Split(bytes.TrimSpace(rec.Body.Bytes()), []byte("\n"))
		for _, line := range lines {
			if len(line) > 0 && !json.Valid(line) {
				t.Fatalf("stream emitted a non-JSON line on input %q: %q", data, line)
			}
		}
		var last struct {
			Done  bool   `json:"done"`
			Error string `json:"error"`
		}
		tail := lines[len(lines)-1]
		if err := json.Unmarshal(tail, &last); err != nil || (!last.Done && last.Error == "") {
			t.Fatalf("stream ended without error line or done trailer on input %q: %q", data, tail)
		}
	})
}
