package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/mdl"
	"repro/internal/resmodel"
)

// postStream sends ops as one NDJSON request body to a session's stream
// endpoint over real TCP and returns the raw response lines.
func postStream(t *testing.T, url, id string, ops []BatchOp) [][]byte {
	t.Helper()
	var body bytes.Buffer
	for _, op := range ops {
		line, err := json.Marshal(op)
		if err != nil {
			t.Fatal(err)
		}
		body.Write(line)
		body.WriteByte('\n')
	}
	resp, err := http.Post(url+"/v1/sessions/"+id+"/stream", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream: status %d: %s", resp.StatusCode, out)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var lines [][]byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestStreamBasicAndTrailer(t *testing.T) {
	s := New(Config{})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	si := createSession(t, s.Handler(), SessionRequest{Machine: "ex"})

	lines := postStream(t, ts.URL, si.SessionID, []BatchOp{
		{Fn: "check", Op: 0, Cycle: 0},
		{Fn: "assign", Op: 0, Cycle: 0, ID: 1},
		{Fn: "check", Op: 0, Cycle: 0},
	})
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 3 results + trailer:\n%s", len(lines), bytes.Join(lines, []byte("\n")))
	}
	if string(lines[0]) != `{"ok":true}` || string(lines[1]) != `{}` || string(lines[2]) != `{"ok":false}` {
		t.Errorf("result lines: %s | %s | %s", lines[0], lines[1], lines[2])
	}
	var tr streamTrailer
	if err := json.Unmarshal(lines[3], &tr); err != nil || !tr.Done || tr.Ops != 3 {
		t.Fatalf("trailer %s (err %v)", lines[3], err)
	}
	if tr.Counters.CheckCalls < 2 || tr.Counters.AssignCalls != 1 {
		t.Errorf("trailer counters: %+v", tr.Counters)
	}

	// An empty body is a legal conversation of zero ops.
	lines = postStream(t, ts.URL, si.SessionID, nil)
	if len(lines) != 1 {
		t.Fatalf("empty stream: %d lines, want trailer only", len(lines))
	}
	if err := json.Unmarshal(lines[0], &tr); err != nil || !tr.Done || tr.Ops != 0 {
		t.Fatalf("empty-stream trailer: %s", lines[0])
	}

	// Streams against unknown sessions fail before the NDJSON phase.
	resp, err := http.Post(ts.URL+"/v1/sessions/s-999999/stream", "application/x-ndjson", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("stream on unknown session: status %d, want 404", resp.StatusCode)
	}
}

// TestStreamErrorLineKeepsAppliedOps pins the mid-stream failure
// contract: a bad op (or bad JSON) yields one terminal error line with
// the op index, the stream ends, and ops before the failure stay
// applied to the session.
func TestStreamErrorLineKeepsAppliedOps(t *testing.T) {
	s := New(Config{})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	h := s.Handler()

	for name, body := range map[string]string{
		"bad fn":   "{\"fn\":\"assign\",\"op\":0,\"cycle\":0,\"id\":1}\n{\"fn\":\"peek\"}\n{\"fn\":\"check\"}\n",
		"bad json": "{\"fn\":\"assign\",\"op\":0,\"cycle\":0,\"id\":1}\n{\"fn\":\n",
	} {
		si := createSession(t, h, SessionRequest{Machine: "ex"})
		resp, err := http.Post(ts.URL+"/v1/sessions/"+si.SessionID+"/stream", "application/x-ndjson", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		lines := bytes.Split(bytes.TrimSpace(out), []byte("\n"))
		if len(lines) != 2 {
			t.Fatalf("%s: %d lines, want result + error line:\n%s", name, len(lines), out)
		}
		var e struct {
			Error string `json:"error"`
			Index int    `json:"index"`
		}
		if err := json.Unmarshal(lines[1], &e); err != nil || e.Error == "" || e.Index != 1 {
			t.Fatalf("%s: error line %s (err %v)", name, lines[1], err)
		}
		// The assign that preceded the failure is applied.
		resp2 := decodeBody[SessionOpsResponse](t, post(t, h, "/v1/sessions/"+si.SessionID+"/ops",
			SessionOpsRequest{Ops: []BatchOp{{Fn: "check", Op: 0, Cycle: 0}}}))
		if resp2.Results[0].OK == nil || *resp2.Results[0].OK {
			t.Errorf("%s: op before stream failure was not applied", name)
		}
	}
}

// TestStreamConversation proves results are flushed per line: the
// client sends each op only after reading the previous op's result off
// the wire. Server-side buffering of even one line would deadlock this
// loop (bounded by the watchdog timeout).
func TestStreamConversation(t *testing.T) {
	s := New(Config{})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	si := createSession(t, s.Handler(), SessionRequest{Machine: "ex"})

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions/"+si.SessionID+"/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	type respErr struct {
		resp *http.Response
		err  error
	}
	respc := make(chan respErr, 1)
	go func() {
		resp, err := http.DefaultTransport.RoundTrip(req)
		respc <- respErr{resp, err}
	}()

	done := make(chan struct{})
	defer close(done)
	go func() { // watchdog: a buffering server stalls the loop below
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			pw.CloseWithError(fmt.Errorf("conversation stalled"))
		}
	}()

	var re respErr
	select {
	case re = <-respc:
	case <-time.After(30 * time.Second):
		t.Fatal("no response header within 30s")
	}
	if re.err != nil {
		t.Fatal(re.err)
	}
	defer re.resp.Body.Close()
	if re.resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", re.resp.StatusCode)
	}
	rd := bufio.NewReader(re.resp.Body)
	for i := 0; i < 20; i++ {
		op, _ := json.Marshal(BatchOp{Fn: "check", Op: 0, Cycle: i})
		if _, err := pw.Write(append(op, '\n')); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		line, err := rd.ReadBytes('\n')
		if err != nil {
			t.Fatalf("op %d: reading result: %v", i, err)
		}
		var res BatchResult
		if err := json.Unmarshal(line, &res); err != nil || res.OK == nil {
			t.Fatalf("op %d: result line %s (err %v)", i, line, err)
		}
	}
	pw.Close()
	var tr streamTrailer
	line, err := rd.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(line, &tr); err != nil || !tr.Done || tr.Ops != 20 {
		t.Fatalf("trailer %s (err %v)", line, err)
	}
}

// TestDifferentialStreamedSessionVsInProcess extends the differential
// suite to the tentpole's conformance claim: a stateful session driven
// through interleaved /ops and /stream requests answers byte-identically
// to one in-process module executing the same sequence — every NDJSON
// line equals json.Marshal of the in-process BatchResult, every /ops
// results array equals its marshalled chunk, and the cumulative counters
// (stream trailer and session info) equal the in-process module's.
func TestDifferentialStreamedSessionVsInProcess(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	h := s.Handler()

	rng := rand.New(rand.NewSource(7))
	const numMachines = 6
	for i := 0; i < numMachines; i++ {
		m := resmodel.Random(rng, resmodel.DefaultRandomConfig())
		m.Name = fmt.Sprintf("sm%d", i)
		if _, err := s.Register(m.Name, mustParse(t, mdl.Print(m)), core.Objective{Kind: core.ResUses}); err != nil {
			t.Fatal(err)
		}
		me := s.lookup(m.Name)

		ii := 0
		if i%2 == 1 {
			ii = 1 + rng.Intn(m.MaxSpan()+2)
		}
		for _, c := range []batchCase{
			{"reduced", "discrete", ii},
			{"original", "bitvector", ii},
		} {
			for _, assignFree := range []bool{false, true} {
				e := me.expandedFor(c.use)
				seqSeed := rng.Int63()
				ops := genSequence(rand.New(rand.NewSource(seqSeed)), e, localModule(t, e, c), c.ii, assignFree, 120)
				ref := localModule(t, e, c)
				want := replayOps(ref, ops)

				si := createSession(t, h, SessionRequest{
					Machine:        m.Name,
					Use:            c.use,
					Representation: c.representation,
					II:             c.ii,
				})

				// Drive the same sequence through alternating transport
				// chunks: NDJSON stream, then JSON ops, repeat.
				for lo := 0; lo < len(ops) || lo == 0; {
					hi := lo + 1 + rng.Intn(30)
					if hi > len(ops) {
						hi = len(ops)
					}
					chunk, wantChunk := ops[lo:hi], want[lo:hi]
					if (lo/7)%2 == 0 {
						lines := postStream(t, ts.URL, si.SessionID, chunk)
						if len(lines) != len(chunk)+1 {
							t.Fatalf("machine %d %+v: stream returned %d lines for %d ops", i, c, len(lines), len(chunk))
						}
						for j, wr := range wantChunk {
							wantLine, err := json.Marshal(wr)
							if err != nil {
								t.Fatal(err)
							}
							if !bytes.Equal(lines[j], wantLine) {
								t.Fatalf("machine %d %+v op %d: streamed line %s != in-process %s",
									i, c, lo+j, lines[j], wantLine)
							}
						}
					} else {
						rec := post(t, h, "/v1/sessions/"+si.SessionID+"/ops", SessionOpsRequest{Ops: chunk})
						if rec.Code != http.StatusOK {
							t.Fatalf("machine %d %+v: ops status %d: %s", i, c, rec.Code, rec.Body.String())
						}
						var raw struct {
							Results json.RawMessage `json:"results"`
						}
						if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
							t.Fatal(err)
						}
						wantRaw, err := json.Marshal(wantChunk)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(raw.Results, wantRaw) {
							t.Fatalf("machine %d %+v ops [%d,%d): served results differ\nserved: %s\nlocal:  %s",
								i, c, lo, hi, raw.Results, wantRaw)
						}
					}
					if hi == lo { // zero-length tail: still exercised once
						break
					}
					lo = hi
				}

				// Cumulative counters: session info vs the in-process module.
				info := decodeBody[SessionInfo](t, doReq(t, h, http.MethodGet, "/v1/sessions/"+si.SessionID))
				if info.Counters == nil || *info.Counters != *ref.Counters() {
					t.Fatalf("machine %d %+v: session counters %+v differ from in-process %+v",
						i, c, info.Counters, *ref.Counters())
				}
				if rec := doReq(t, h, http.MethodDelete, "/v1/sessions/"+si.SessionID); rec.Code != http.StatusOK {
					t.Fatalf("delete: status %d", rec.Code)
				}
			}
		}
	}
}

func mustParse(t *testing.T, src string) *resmodel.Machine {
	t.Helper()
	m, err := mdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
