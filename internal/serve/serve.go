// Package serve implements the machine-description service behind
// cmd/mdserve: a stdlib-only net/http JSON daemon that compiles, caches
// and serves reduced machine descriptions and batched contention-query
// sequences.
//
// Endpoints:
//
//	POST /v1/reduce    submit an MDL machine description; reduce it
//	                   (through the capacity-bounded reduction LRU),
//	                   register it under a name, return reduction stats
//	                   plus the reduced description.
//	POST /v1/batch     run a check/assign/assign&free/free/check-with-alt
//	                   sequence against a registered description, on the
//	                   discrete or bitvector representation, linear or
//	                   modulo, original or reduced.
//	GET  /v1/machines  list registered descriptions.
//	GET  /v1/metrics   internal/obs snapshot of the whole process.
//	GET  /healthz      liveness plus cache/registry shape.
//
// The expensive endpoints (/v1/reduce, /v1/batch) are guarded by a
// concurrency-limiting admission gate (parallel.Gate) and a per-request
// deadline; requests that cannot be admitted before their deadline get
// 429. Request bodies are size-capped. Errors are JSON
// {"error": "..."} with a 4xx status for every malformed or
// semantically invalid request — the server never panics on client
// input (pinned by FuzzServeBatchDecode).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mdl"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/resmodel"
)

// Config shapes a Server. Zero values select production defaults.
type Config struct {
	// CacheCapacity bounds the server's reduction LRU (entries, not
	// bytes). 0 selects core.DefaultCacheCapacity; < 0 means unbounded.
	CacheCapacity int
	// MaxInFlight caps concurrently admitted reduce/batch requests.
	// 0 selects 2×GOMAXPROCS.
	MaxInFlight int
	// RequestTimeout is the per-request deadline (admission wait plus
	// execution). 0 selects 30s.
	RequestTimeout time.Duration
	// Workers is the reduction pipeline's pool size. 0 selects GOMAXPROCS.
	Workers int
	// MaxBodyBytes caps request bodies. 0 selects 8 MiB.
	MaxBodyBytes int64
	// MaxBatchOps caps the ops in one batch request. 0 selects 65536.
	MaxBatchOps int
	// MaxCycle caps schedule cycles on linear reserved tables (modulo
	// tables fold and need no cap). 0 selects 1<<20.
	MaxCycle int
}

func (c Config) withDefaults() Config {
	if c.CacheCapacity == 0 {
		c.CacheCapacity = core.DefaultCacheCapacity
	}
	if c.CacheCapacity < 0 {
		c.CacheCapacity = 0 // unbounded for the LRU itself
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Workers == 0 {
		c.Workers = parallel.Workers(0)
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatchOps == 0 {
		c.MaxBatchOps = 65536
	}
	if c.MaxCycle == 0 {
		c.MaxCycle = 1 << 20
	}
	return c
}

// session is one registered machine description: the parsed machine, its
// expansion, and its verified reduction.
type session struct {
	name     string
	machine  *resmodel.Machine
	expanded *resmodel.Expanded
	red      *core.Result
}

// Server holds the session registry, the reduction LRU and the admission
// gate. Construct with New; serve with Handler.
type Server struct {
	cfg   Config
	cache *core.Cache
	gate  *parallel.Gate

	mu       sync.RWMutex
	sessions map[string]*session
}

// New returns a Server with the given configuration (zero values select
// defaults; see Config).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		cache:    core.NewCacheLRU(cfg.CacheCapacity),
		gate:     parallel.NewGate(cfg.MaxInFlight),
		sessions: map[string]*session{},
	}
}

// Cache exposes the server's reduction LRU (for stats and tests).
func (s *Server) Cache() *core.Cache { return s.cache }

// Register compiles and registers a machine under name (the machine's
// own name if empty), reducing it through the server's cache. Used by
// cmd/mdserve -preload and by tests; HTTP clients register via
// /v1/reduce. Re-registering a name replaces the previous session.
func (s *Server) Register(name string, m *resmodel.Machine, obj core.Objective) (*core.Result, error) {
	if err := obj.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if name == "" {
		name = m.Name
	}
	e := m.Expand()
	red := s.cache.Reduce(e, obj, s.cfg.Workers)
	if err := red.Verify(); err != nil {
		return nil, fmt.Errorf("serve: reduction failed verification: %w", err)
	}
	s.mu.Lock()
	s.sessions[name] = &session{name: name, machine: m, expanded: e, red: red}
	s.mu.Unlock()
	return red, nil
}

// lookup returns the named session, or nil.
func (s *Server) lookup(name string) *session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[name]
}

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/reduce", s.admit(s.handleReduce))
	mux.HandleFunc("POST /v1/batch", s.admit(s.handleBatch))
	mux.HandleFunc("GET /v1/machines", s.handleMachines)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// admit wraps an expensive handler with the per-request deadline, the
// admission gate and the body-size cap. A request that cannot take a
// gate slot before its deadline is rejected with 429 — the service sheds
// load instead of queueing unboundedly.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		if err := s.gate.Acquire(ctx); err != nil {
			obs.Inc("serve.rejected")
			writeErr(w, http.StatusTooManyRequests, "server at capacity: admission deadline exceeded")
			return
		}
		defer s.gate.Release()
		obs.Inc("serve.admitted")
		r = r.WithContext(ctx)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		h(w, r)
	}
}

// ReduceRequest is the body of POST /v1/reduce.
type ReduceRequest struct {
	// Name registers the compiled description under this name; empty
	// selects the machine's own name from the MDL source.
	Name string `json:"name,omitempty"`
	// MDL is the textual machine description (internal/mdl grammar).
	MDL string `json:"mdl"`
	// Objective is "res-uses" (default) or "<k>-cycle-word".
	Objective string `json:"objective,omitempty"`
}

// ReduceResponse reports one registered reduction.
type ReduceResponse struct {
	Name               string `json:"name"`
	CacheHit           bool   `json:"cache_hit"`
	Objective          string `json:"objective"`
	Resources          int    `json:"resources"`
	ReducedResources   int    `json:"reduced_resources"`
	Usages             int    `json:"usages"`
	ReducedUsages      int    `json:"reduced_usages"`
	Ops                int    `json:"ops"`
	ExpandedOps        int    `json:"expanded_ops"`
	Classes            int    `json:"classes"`
	GenSetSize         int    `json:"genset_size"`
	PrunedSize         int    `json:"genset_pruned"`
	ForbiddenLatencies int    `json:"forbidden_latencies"`
	MaxLatency         int    `json:"max_forbidden_latency"`
	ReducedMDL         string `json:"reduced_mdl"`
}

func (s *Server) handleReduce(w http.ResponseWriter, r *http.Request) {
	obs.Inc("serve.reduce.requests")
	start := time.Now()
	defer func() { obs.Observe("serve.reduce.latency", time.Since(start).Microseconds()) }()
	var req ReduceRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.MDL) == "" {
		writeErr(w, http.StatusBadRequest, "missing \"mdl\" machine description")
		return
	}
	m, err := mdl.Parse(req.MDL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("mdl: %v", err))
		return
	}
	obj, err := ParseObjective(req.Objective)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := r.Context().Err(); err != nil {
		writeErr(w, http.StatusServiceUnavailable, "request deadline exceeded before reduction")
		return
	}
	name := req.Name
	if name == "" {
		name = m.Name
	}
	e := m.Expand()
	red, hit := s.cache.ReduceTracked(e, obj, s.cfg.Workers)
	if err := red.Verify(); err != nil {
		// Unreachable by construction (the reduction theorem); surfaced
		// rather than swallowed in case of an implementation bug.
		writeErr(w, http.StatusInternalServerError, fmt.Sprintf("reduction failed verification: %v", err))
		return
	}
	s.mu.Lock()
	s.sessions[name] = &session{name: name, machine: m, expanded: e, red: red}
	s.mu.Unlock()
	if hit {
		obs.Inc("serve.reduce.cache_hits")
	}
	origUses := 0
	for _, o := range e.Ops {
		origUses += len(o.Table.Uses)
	}
	writeJSON(w, http.StatusOK, &ReduceResponse{
		Name:               name,
		CacheHit:           hit,
		Objective:          obj.String(),
		Resources:          len(m.Resources),
		ReducedResources:   red.NumResources(),
		Usages:             origUses,
		ReducedUsages:      red.NumUsages(),
		Ops:                len(m.Ops),
		ExpandedOps:        len(e.Ops),
		Classes:            red.Classes.NumClasses(),
		GenSetSize:         red.GenSetSize,
		PrunedSize:         red.PrunedSize,
		ForbiddenLatencies: red.ClassMatrix.NonnegCount(),
		MaxLatency:         red.ClassMatrix.MaxLatency(),
		ReducedMDL:         mdl.Print(red.Reduced.Machine()),
	})
}

// MachineInfo is one entry of GET /v1/machines.
type MachineInfo struct {
	Name             string `json:"name"`
	Resources        int    `json:"resources"`
	ReducedResources int    `json:"reduced_resources"`
	Ops              int    `json:"ops"`
	ExpandedOps      int    `json:"expanded_ops"`
	Classes          int    `json:"classes"`
}

func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]MachineInfo, 0, len(s.sessions))
	for _, sess := range s.sessions {
		infos = append(infos, MachineInfo{
			Name:             sess.name,
			Resources:        len(sess.machine.Resources),
			ReducedResources: sess.red.NumResources(),
			Ops:              len(sess.machine.Ops),
			ExpandedOps:      len(sess.expanded.Ops),
			Classes:          sess.red.Classes.NumClasses(),
		})
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"machines": infos})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := obs.Default().WriteJSON(w); err != nil {
		// Headers are gone; nothing more to do than note it.
		obs.Inc("serve.errors")
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Stats()
	s.mu.RLock()
	n := len(s.sessions)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"machines": n,
		"cache": map[string]any{
			"resident":  s.cache.Len(),
			"capacity":  s.cache.Capacity(),
			"hits":      hits,
			"misses":    misses,
			"evictions": s.cache.Evictions(),
		},
		"in_flight": s.gate.InFlight(),
	})
}

// ParseObjective parses a reduction-objective string: "" or "res-uses"
// for the discrete objective, "<k>-cycle-word" for the bitvector one.
func ParseObjective(s string) (core.Objective, error) {
	if s == "" || s == "res-uses" {
		return core.Objective{Kind: core.ResUses}, nil
	}
	if k, ok := strings.CutSuffix(s, "-cycle-word"); ok {
		n, err := strconv.Atoi(k)
		if err != nil || n < 1 {
			return core.Objective{}, fmt.Errorf("bad objective %q", s)
		}
		return core.Objective{Kind: core.KCycleWord, K: n}, nil
	}
	return core.Objective{}, fmt.Errorf("unknown objective %q (want res-uses or <k>-cycle-word)", s)
}

// decodeJSON decodes the request body into v, writing a 4xx error and
// returning false on failure. Oversized bodies (MaxBytesReader) map to
// 413, everything else malformed to 400.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("invalid JSON: %v", err))
		return false
	}
	// One JSON value per request body: trailing data is a client bug and
	// must not be silently ignored.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		writeErr(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Marshalling our own response types cannot fail; keep the
		// handler total anyway.
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	if status >= 400 {
		obs.Inc("serve.errors")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
