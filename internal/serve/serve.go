// Package serve implements the machine-description service behind
// cmd/mdserve: a stdlib-only net/http JSON daemon that compiles, caches
// and serves reduced machine descriptions, batched contention-query
// sequences, and stateful scheduling sessions that hold a long-lived
// query module per remote scheduler.
//
// Endpoints:
//
//	POST /v1/reduce    submit an MDL machine description; reduce it
//	                   (through the capacity-bounded reduction LRU),
//	                   register it under a name, return reduction stats
//	                   plus the reduced description.
//	POST /v1/batch     run a check/assign/assign&free/free/check-with-alt
//	                   sequence against a registered description, on the
//	                   discrete or bitvector representation, linear or
//	                   modulo, original or reduced. Each batch runs on a
//	                   fresh module.
//	POST /v1/sessions  open a scheduling session: a long-lived query
//	                   module (plus its partial-schedule state) that
//	                   subsequent op requests converse with.
//	POST /v1/sessions/{id}/ops     run a JSON op batch on the session's
//	                               live module; state persists.
//	POST /v1/sessions/{id}/stream  NDJSON streaming mode: one op per
//	                               request line, one result per response
//	                               line, flushed incrementally.
//	GET    /v1/sessions      list open sessions.
//	GET    /v1/sessions/{id} one session's shape, ops total and counters.
//	DELETE /v1/sessions/{id} close a session.
//	GET  /v1/machines  list registered descriptions.
//	GET  /v1/metrics   internal/obs snapshot of the whole process.
//	GET  /healthz      liveness plus cache/registry/session shape.
//
// The machine registry and the session table are sharded LRU tables
// (see registry.go): both are capacity-bounded, so unique-name reduce
// spam or session-open spam evicts oldest entries instead of growing
// the process without limit. Idle sessions additionally expire after a
// TTL.
//
// The expensive endpoints (/v1/reduce, /v1/batch, session create/ops)
// are guarded by a concurrency-limiting admission gate (parallel.Gate)
// and a per-request deadline; requests that cannot be admitted before
// their deadline get 429. Streams are admitted through the gate's
// reserved stream sub-quota so open conversations can never starve
// one-shot requests. Request bodies are size-capped. Errors are JSON
// {"error": "..."} with a 4xx status for every malformed or
// semantically invalid request — the server never panics on client
// input (pinned by FuzzServeBatchDecode).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/mdl"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/resmodel"
)

// Config shapes a Server. Zero values select production defaults.
type Config struct {
	// CacheCapacity bounds the server's reduction LRU (entries, not
	// bytes). 0 selects core.DefaultCacheCapacity; < 0 means unbounded.
	CacheCapacity int
	// MaxInFlight caps concurrently admitted reduce/batch requests.
	// 0 selects 2×GOMAXPROCS.
	MaxInFlight int
	// RequestTimeout is the per-request deadline (admission wait plus
	// execution). 0 selects 30s.
	RequestTimeout time.Duration
	// Workers is the reduction pipeline's pool size. 0 selects GOMAXPROCS.
	Workers int
	// MaxBodyBytes caps request bodies. 0 selects 8 MiB.
	MaxBodyBytes int64
	// MaxBatchOps caps the ops in one batch request. 0 selects 65536.
	MaxBatchOps int
	// MaxCycle caps schedule cycles on linear reserved tables (modulo
	// tables fold and need no cap). 0 selects 1<<20.
	MaxCycle int
	// MaxMachines bounds the machine registry (registered descriptions,
	// LRU-evicted beyond the cap). 0 selects 256; < 0 means unbounded.
	MaxMachines int
	// MaxSessions bounds the scheduling-session table (LRU-evicted
	// beyond the cap). 0 selects 1024; < 0 means unbounded.
	MaxSessions int
	// SessionTTL expires sessions idle longer than this (lazily, on
	// lookup and on session create/list sweeps). 0 selects 5m; < 0
	// disables expiry.
	SessionTTL time.Duration
	// Shards is the shard count of the machine registry and session
	// table. 0 selects 8.
	Shards int
	// MaxStreamOps caps the ops accepted on one /stream request.
	// 0 selects 1<<20.
	MaxStreamOps int
}

func (c Config) withDefaults() Config {
	if c.CacheCapacity == 0 {
		c.CacheCapacity = core.DefaultCacheCapacity
	}
	if c.CacheCapacity < 0 {
		c.CacheCapacity = 0 // unbounded for the LRU itself
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Workers == 0 {
		c.Workers = parallel.Workers(0)
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatchOps == 0 {
		c.MaxBatchOps = 65536
	}
	if c.MaxCycle == 0 {
		c.MaxCycle = 1 << 20
	}
	if c.MaxMachines == 0 {
		c.MaxMachines = 256
	}
	if c.MaxMachines < 0 {
		c.MaxMachines = 0 // unbounded for the table itself
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 1024
	}
	if c.MaxSessions < 0 {
		c.MaxSessions = 0
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 5 * time.Minute
	}
	if c.SessionTTL < 0 {
		c.SessionTTL = 0 // no expiry
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.MaxStreamOps == 0 {
		c.MaxStreamOps = 1 << 20
	}
	return c
}

// machineEntry is one registered machine description: the parsed
// machine, its expansion, and its verified reduction.
type machineEntry struct {
	name     string
	src      *resmodel.Machine
	expanded *resmodel.Expanded
	red      *core.Result
}

// Server holds the machine registry, the scheduling-session table, the
// reduction LRU and the admission gate. Construct with New; serve with
// Handler.
type Server struct {
	cfg   Config
	cache *core.Cache
	gate  *parallel.Gate

	// machines is the bounded, sharded registry of registered
	// descriptions. Evicting an entry never invalidates modules built
	// from it — sessions and in-flight batches keep their pointers; the
	// registry simply forgets the name (exactly the reduction cache's
	// eviction contract).
	machines *sharded[*machineEntry]
	// sessions is the bounded, sharded table of open scheduling
	// sessions, LRU-evicted beyond MaxSessions and TTL-expired when
	// idle.
	sessions   *sharded[*Session]
	sessionSeq atomic.Uint64

	// now is the session clock, swappable by tests so TTL expiry is
	// testable without wall-clock sleeps.
	now func() time.Time
}

// New returns a Server with the given configuration (zero values select
// defaults; see Config).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		cache:    core.NewCacheLRU(cfg.CacheCapacity),
		gate:     parallel.NewGate(cfg.MaxInFlight),
		machines: newSharded[*machineEntry](cfg.MaxMachines, cfg.Shards),
		sessions: newSharded[*Session](cfg.MaxSessions, cfg.Shards),
		now:      time.Now,
	}
}

// Cache exposes the server's reduction LRU (for stats and tests).
func (s *Server) Cache() *core.Cache { return s.cache }

// putMachine is the single insert path into the machine registry, used
// by both Register and handleReduce so the registry semantics — LRU
// position, capacity eviction, the serve.registry.evictions counter —
// cannot diverge between the two entry points.
func (s *Server) putMachine(me *machineEntry) {
	for range s.machines.put(me.name, me) {
		obs.Inc("serve.registry.evictions")
	}
}

// Register compiles and registers a machine under name (the machine's
// own name if empty), reducing it through the server's cache. Used by
// cmd/mdserve -preload and by tests; HTTP clients register via
// /v1/reduce. Re-registering a name replaces the previous entry.
func (s *Server) Register(name string, m *resmodel.Machine, obj core.Objective) (*core.Result, error) {
	if err := obj.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if name == "" {
		name = m.Name
	}
	e := m.Expand()
	red := s.cache.Reduce(e, obj, s.cfg.Workers)
	if err := red.Verify(); err != nil {
		return nil, fmt.Errorf("serve: reduction failed verification: %w", err)
	}
	s.putMachine(&machineEntry{name: name, src: m, expanded: e, red: red})
	return red, nil
}

// lookup returns the named machine entry (marking it most recently
// used), or nil.
func (s *Server) lookup(name string) *machineEntry {
	me, ok := s.machines.get(name)
	if !ok {
		return nil
	}
	return me
}

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/reduce", s.admit(s.handleReduce))
	mux.HandleFunc("POST /v1/batch", s.admit(s.handleBatch))
	mux.HandleFunc("POST /v1/sessions", s.admit(s.handleSessionCreate))
	mux.HandleFunc("GET /v1/sessions", s.handleSessionList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionInfo)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/ops", s.admit(s.handleSessionOps))
	mux.HandleFunc("POST /v1/sessions/{id}/stream", s.handleSessionStream)
	mux.HandleFunc("GET /v1/machines", s.handleMachines)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// admit wraps an expensive handler with the per-request deadline, the
// admission gate and the body-size cap. A request that cannot take a
// gate slot before its deadline is rejected with 429 — the service sheds
// load instead of queueing unboundedly.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		if err := s.gate.Acquire(ctx); err != nil {
			obs.Inc("serve.rejected")
			writeErr(w, http.StatusTooManyRequests, "server at capacity: admission deadline exceeded")
			return
		}
		defer s.gate.Release()
		obs.Inc("serve.admitted")
		r = r.WithContext(ctx)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		h(w, r)
	}
}

// ReduceRequest is the body of POST /v1/reduce.
type ReduceRequest struct {
	// Name registers the compiled description under this name; empty
	// selects the machine's own name from the MDL source.
	Name string `json:"name,omitempty"`
	// MDL is the textual machine description (internal/mdl grammar).
	MDL string `json:"mdl"`
	// Objective is "res-uses" (default) or "<k>-cycle-word".
	Objective string `json:"objective,omitempty"`
}

// ReduceResponse reports one registered reduction.
type ReduceResponse struct {
	Name               string `json:"name"`
	CacheHit           bool   `json:"cache_hit"`
	Objective          string `json:"objective"`
	Resources          int    `json:"resources"`
	ReducedResources   int    `json:"reduced_resources"`
	Usages             int    `json:"usages"`
	ReducedUsages      int    `json:"reduced_usages"`
	Ops                int    `json:"ops"`
	ExpandedOps        int    `json:"expanded_ops"`
	Classes            int    `json:"classes"`
	GenSetSize         int    `json:"genset_size"`
	PrunedSize         int    `json:"genset_pruned"`
	ForbiddenLatencies int    `json:"forbidden_latencies"`
	MaxLatency         int    `json:"max_forbidden_latency"`
	ReducedMDL         string `json:"reduced_mdl"`
}

func (s *Server) handleReduce(w http.ResponseWriter, r *http.Request) {
	obs.Inc("serve.reduce.requests")
	start := time.Now()
	defer func() { obs.Observe("serve.reduce.latency", time.Since(start).Microseconds()) }()
	var req ReduceRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.MDL) == "" {
		writeErr(w, http.StatusBadRequest, "missing \"mdl\" machine description")
		return
	}
	m, err := mdl.Parse(req.MDL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("mdl: %v", err))
		return
	}
	obj, err := ParseObjective(req.Objective)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := r.Context().Err(); err != nil {
		writeErr(w, http.StatusServiceUnavailable, "request deadline exceeded before reduction")
		return
	}
	name := req.Name
	if name == "" {
		name = m.Name
	}
	e := m.Expand()
	red, hit := s.cache.ReduceTracked(e, obj, s.cfg.Workers)
	if err := red.Verify(); err != nil {
		// Unreachable by construction (the reduction theorem); surfaced
		// rather than swallowed in case of an implementation bug.
		writeErr(w, http.StatusInternalServerError, fmt.Sprintf("reduction failed verification: %v", err))
		return
	}
	s.putMachine(&machineEntry{name: name, src: m, expanded: e, red: red})
	if hit {
		obs.Inc("serve.reduce.cache_hits")
	}
	origUses := 0
	for _, o := range e.Ops {
		origUses += len(o.Table.Uses)
	}
	writeJSON(w, http.StatusOK, &ReduceResponse{
		Name:               name,
		CacheHit:           hit,
		Objective:          obj.String(),
		Resources:          len(m.Resources),
		ReducedResources:   red.NumResources(),
		Usages:             origUses,
		ReducedUsages:      red.NumUsages(),
		Ops:                len(m.Ops),
		ExpandedOps:        len(e.Ops),
		Classes:            red.Classes.NumClasses(),
		GenSetSize:         red.GenSetSize,
		PrunedSize:         red.PrunedSize,
		ForbiddenLatencies: red.ClassMatrix.NonnegCount(),
		MaxLatency:         red.ClassMatrix.MaxLatency(),
		ReducedMDL:         mdl.Print(red.Reduced.Machine()),
	})
}

// MachineInfo is one entry of GET /v1/machines.
type MachineInfo struct {
	Name             string `json:"name"`
	Resources        int    `json:"resources"`
	ReducedResources int    `json:"reduced_resources"`
	Ops              int    `json:"ops"`
	ExpandedOps      int    `json:"expanded_ops"`
	Classes          int    `json:"classes"`
}

func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	items := s.machines.items()
	infos := make([]MachineInfo, 0, len(items))
	for _, it := range items {
		me := it.val
		infos = append(infos, MachineInfo{
			Name:             me.name,
			Resources:        len(me.src.Resources),
			ReducedResources: me.red.NumResources(),
			Ops:              len(me.src.Ops),
			ExpandedOps:      len(me.expanded.Ops),
			Classes:          me.red.Classes.NumClasses(),
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"machines": infos})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := obs.Default().WriteJSON(w); err != nil {
		// Headers are gone; nothing more to do than note it.
		obs.Inc("serve.errors")
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"machines": s.machines.len(),
		"registry": map[string]any{
			"resident": s.machines.len(),
			"capacity": s.cfg.MaxMachines,
			"shards":   len(s.machines.shards),
		},
		"sessions": map[string]any{
			"resident": s.sessions.len(),
			"capacity": s.cfg.MaxSessions,
			"shards":   len(s.sessions.shards),
			"ttl_ms":   s.cfg.SessionTTL.Milliseconds(),
		},
		"cache": map[string]any{
			"resident":  s.cache.Len(),
			"capacity":  s.cache.Capacity(),
			"hits":      hits,
			"misses":    misses,
			"evictions": s.cache.Evictions(),
		},
		"in_flight": s.gate.InFlight(),
		"streams":   s.gate.Streams(),
	})
}

// ParseObjective parses a reduction-objective string: "" or "res-uses"
// for the discrete objective, "<k>-cycle-word" for the bitvector one
// (k bounded by core.MaxObjectiveK so a wire request cannot demand an
// absurd word geometry). It delegates to core.ParseObjective, the single
// parser shared with the mdreduce and pipesched command lines.
func ParseObjective(s string) (core.Objective, error) {
	return core.ParseObjective(s)
}

// decodeJSON decodes the request body into v, writing a 4xx error and
// returning false on failure. Oversized bodies (MaxBytesReader) map to
// 413, everything else malformed to 400.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("invalid JSON: %v", err))
		return false
	}
	// One JSON value per request body: trailing data is a client bug and
	// must not be silently ignored.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		writeErr(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Marshalling our own response types cannot fail; keep the
		// handler total anyway.
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	if status >= 400 {
		obs.Inc("serve.errors")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
