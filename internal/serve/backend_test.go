package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/query"
)

// TestBatchBackendSelection pins the representation routing of
// /v1/batch: the pinned FSA backend answers exactly like the reference
// discrete backend and reports itself; "auto" reports the measured
// winner the selection layer picks for the same description; the FSA's
// structural limits (modulo tables, the schedule op) surface as 4xx.
func TestBatchBackendSelection(t *testing.T) {
	s := New(Config{})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	ops := []BatchOp{
		{Fn: "check", Op: 0, Cycle: 0},
		{Fn: "assign", Op: 0, Cycle: 0, ID: 1},
		{Fn: "check", Op: 0, Cycle: 0},
		{Fn: "check_with_alt", Op: 0, Cycle: 0},
		{Fn: "first_free", Op: 0, Lo: 0, Hi: 16},
		{Fn: "first_free_alt", Op: 0, Lo: 0, Hi: 16},
		{Fn: "free", Op: 0, Cycle: 0, ID: 1},
	}

	results := map[string]string{}
	for _, rep := range []string{"discrete", "bitvector", "fsa"} {
		rec := post(t, h, "/v1/batch", BatchRequest{Machine: "ex", Representation: rep, Ops: ops})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", rep, rec.Code, rec.Body.String())
		}
		resp := decodeBody[BatchResponse](t, rec)
		if resp.Backend != rep {
			t.Errorf("%s: backend %q, want the pinned representation", rep, resp.Backend)
		}
		raw, err := json.Marshal(resp.Results)
		if err != nil {
			t.Fatal(err)
		}
		results[rep] = string(raw)
	}
	if results["fsa"] != results["discrete"] || results["bitvector"] != results["discrete"] {
		t.Errorf("backends disagree on the same sequence:\ndiscrete:  %s\nbitvector: %s\nfsa:       %s",
			results["discrete"], results["bitvector"], results["fsa"])
	}

	// "auto" serves the measured winner and reports it.
	rec := post(t, h, "/v1/batch", BatchRequest{Machine: "ex", Representation: "auto", Ops: ops})
	if rec.Code != http.StatusOK {
		t.Fatalf("auto: status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[BatchResponse](t, rec)
	sel, err := query.Select(s.lookup("ex").expandedFor("reduced"), query.Policy{Representation: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Backend != sel.Backend {
		t.Errorf("auto: served backend %q, selection layer picked %q", resp.Backend, sel.Backend)
	}
	if raw, _ := json.Marshal(resp.Results); string(raw) != results["discrete"] {
		t.Errorf("auto answers differ from discrete:\n%s\nvs\n%s", raw, results["discrete"])
	}

	// Structural limits: the FSA is linear-only and cannot serve the
	// schedule op's per-II arenas.
	rec = post(t, h, "/v1/batch", BatchRequest{Machine: "ex", Representation: "fsa", II: 3,
		Ops: []BatchOp{{Fn: "check"}}})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("fsa with ii=3: status %d, want 400 (%s)", rec.Code, rec.Body.String())
	}
	rec = post(t, h, "/v1/batch", BatchRequest{Machine: "ex", Representation: "fsa",
		Ops: []BatchOp{{Fn: "schedule", Loop: &LoopSpec{Ops: []int{0}}}}})
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "schedule") {
		t.Errorf("fsa schedule op: status %d, want 400 naming the schedule op (%s)", rec.Code, rec.Body.String())
	}

	// "auto" serves the schedule op: its per-II arenas re-select with
	// the FSA auto-excluded for ii > 0.
	rec = post(t, h, "/v1/batch", BatchRequest{Machine: "ex", Representation: "auto",
		Ops: []BatchOp{{Fn: "schedule", Loop: &LoopSpec{Ops: []int{0, 1}, Edges: []LoopEdge{
			{From: 0, To: 1, Delay: 2}}}}}})
	if rec.Code != http.StatusOK {
		t.Fatalf("auto schedule op: status %d: %s", rec.Code, rec.Body.String())
	}
	if r := decodeBody[BatchResponse](t, rec).Results[0]; r.OK == nil || !*r.OK {
		t.Errorf("auto schedule op did not schedule: %+v", r)
	}
}

// TestSessionAndStreamBackend pins backend reporting on the stateful
// endpoints: session create/info carry the concrete backend, and the
// stream trailer names the backend that served the conversation.
func TestSessionAndStreamBackend(t *testing.T) {
	s := New(Config{})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	ts := httptest.NewServer(h)
	defer ts.Close()

	si := createSession(t, h, SessionRequest{Machine: "ex", Representation: "fsa"})
	if si.Representation != "fsa" || si.Backend != "fsa" {
		t.Errorf("fsa session: rep %q backend %q", si.Representation, si.Backend)
	}
	lines := postStream(t, ts.URL, si.SessionID, []BatchOp{
		{Fn: "check", Op: 0, Cycle: 0},
		{Fn: "assign", Op: 0, Cycle: 0, ID: 1},
		{Fn: "first_free", Op: 0, Lo: 0, Hi: 16},
	})
	var tr streamTrailer
	if err := json.Unmarshal(lines[len(lines)-1], &tr); err != nil || !tr.Done {
		t.Fatalf("trailer %s (err %v)", lines[len(lines)-1], err)
	}
	if tr.Backend != "fsa" {
		t.Errorf("stream trailer backend %q, want fsa", tr.Backend)
	}
	if tr.Counters.CheckCalls == 0 || tr.Counters.AssignCalls != 1 || tr.Counters.FirstFreeCalls != 1 {
		t.Errorf("fsa session counters not threaded: %+v", tr.Counters)
	}
	info := decodeBody[SessionInfo](t, get(t, h, "/v1/sessions/"+si.SessionID))
	if info.Backend != "fsa" {
		t.Errorf("session info backend %q, want fsa", info.Backend)
	}

	sel, err := query.Select(s.lookup("ex").expandedFor("reduced"), query.Policy{Representation: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	si = createSession(t, h, SessionRequest{Machine: "ex", Representation: "auto"})
	if si.Representation != "auto" || si.Backend != sel.Backend {
		t.Errorf("auto session: rep %q backend %q, selection layer picked %q",
			si.Representation, si.Backend, sel.Backend)
	}

	// A linear-only backend cannot back a modulo session.
	rec := post(t, h, "/v1/sessions", SessionRequest{Machine: "ex", Representation: "fsa", II: 4})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("fsa session with ii=4: status %d, want 400 (%s)", rec.Code, rec.Body.String())
	}
}
