package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"repro/internal/mdl"
	"repro/internal/query"
	"repro/internal/resmodel"
)

// batchCase is one differential configuration: a representation over a
// description variant, linear or modulo.
type batchCase struct {
	use            string // "original" | "reduced"
	representation string // "discrete" | "bitvector" | "fsa" | "auto"
	ii             int
}

// localModule builds the same module execBatch would for the case,
// through the same selection chokepoint. A nil return means the pinned
// backend cannot serve this description (the FSA over its state budget
// on a random machine); callers skip the case, mirroring the server's
// 400.
func localModule(t *testing.T, e *resmodel.Expanded, c batchCase) query.Module {
	t.Helper()
	sel, err := query.Select(e, query.Policy{Representation: c.representation, II: c.ii})
	if err != nil {
		return nil
	}
	return sel.Module
}

// genSequence generates a random query sequence that is valid under the
// batch executor's rules, using a throwaway probe module to track state
// (probe calls that lead to skipped candidates never reach the wire, so
// expectations must come from replayOps, not from the probe). assignFree
// selects the assign&free style (the paper's either/or usage contract
// per partial schedule).
func genSequence(rng *rand.Rand, e *resmodel.Expanded, probe query.Module, ii int, assignFree bool, steps int) []BatchOp {
	var ops []BatchOp
	live := map[int]struct{ op, cycle int }{}
	nextID := 1
	cycleFor := func() int {
		if ii > 0 {
			return rng.Intn(3 * ii)
		}
		return rng.Intn(14)
	}
	rangeFor := func() (int, int) {
		if ii > 0 {
			lo := rng.Intn(6*ii) - 3*ii
			return lo, lo + rng.Intn(3*ii+5)
		}
		lo := rng.Intn(16)
		return lo, lo + rng.Intn(25)
	}
	for s := 0; s < steps; s++ {
		switch r := rng.Intn(12); {
		case r < 3: // check
			ops = append(ops, BatchOp{Fn: "check", Op: rng.Intn(len(e.Ops)), Cycle: cycleFor()})
		case r < 5: // check_with_alt
			ops = append(ops, BatchOp{Fn: "check_with_alt", Op: rng.Intn(len(e.AltGroup)), Cycle: cycleFor()})
		case r < 6: // first_free
			lo, hi := rangeFor()
			ops = append(ops, BatchOp{Fn: "first_free", Op: rng.Intn(len(e.Ops)), Lo: lo, Hi: hi})
		case r < 7: // first_free_alt
			lo, hi := rangeFor()
			ops = append(ops, BatchOp{Fn: "first_free_alt", Op: rng.Intn(len(e.AltGroup)), Lo: lo, Hi: hi})
		case r < 11: // place an op
			op, cyc := rng.Intn(len(e.Ops)), cycleFor()
			if assignFree {
				if !probe.Schedulable(op) {
					continue
				}
				for _, id := range probe.AssignFree(op, cyc, nextID) {
					delete(live, id)
				}
				ops = append(ops, BatchOp{Fn: "assign_free", Op: op, Cycle: cyc, ID: nextID})
				live[nextID] = struct{ op, cycle int }{op, cyc}
				nextID++
				continue
			}
			if !probe.Check(op, cyc) {
				continue
			}
			probe.Assign(op, cyc, nextID)
			ops = append(ops, BatchOp{Fn: "assign", Op: op, Cycle: cyc, ID: nextID})
			live[nextID] = struct{ op, cycle int }{op, cyc}
			nextID++
		default: // free a random live instance
			for id, in := range live {
				probe.Free(in.op, in.cycle, id)
				ops = append(ops, BatchOp{Fn: "free", Op: in.op, Cycle: in.cycle, ID: id})
				delete(live, id)
				break
			}
		}
	}
	return ops
}

// replayOps executes ops on a fresh in-process module with exactly the
// batch executor's call pattern (assign re-checks before assigning,
// assign_free re-probes schedulability, evicted lists are copied), so
// both results and work counters are directly comparable to the served
// response.
func replayOps(mod query.Module, ops []BatchOp) []BatchResult {
	results := make([]BatchResult, 0, len(ops))
	for _, op := range ops {
		switch op.Fn {
		case "check":
			ok := mod.Check(op.Op, op.Cycle)
			results = append(results, BatchResult{OK: &ok})
		case "check_with_alt":
			alt, ok := mod.CheckWithAlt(op.Op, op.Cycle)
			res := BatchResult{OK: &ok}
			if ok {
				res.AltOp = &alt
			}
			results = append(results, res)
		case "first_free":
			cycle, ok := mod.(query.RangeQuerier).FirstFree(op.Op, op.Lo, op.Hi)
			res := BatchResult{OK: &ok}
			if ok {
				res.Cycle = &cycle
			}
			results = append(results, res)
		case "first_free_alt":
			alt, cycle, ok := mod.(query.RangeQuerier).FirstFreeWithAlt(op.Op, op.Lo, op.Hi)
			res := BatchResult{OK: &ok}
			if ok {
				res.AltOp = &alt
				res.Cycle = &cycle
			}
			results = append(results, res)
		case "assign":
			if !mod.Check(op.Op, op.Cycle) {
				panic("generated assign conflicts; generator and module disagree")
			}
			mod.Assign(op.Op, op.Cycle, op.ID)
			results = append(results, BatchResult{})
		case "assign_free":
			if !mod.Schedulable(op.Op) {
				panic("generated assign_free is unschedulable; generator and module disagree")
			}
			res := BatchResult{}
			if ev := mod.AssignFree(op.Op, op.Cycle, op.ID); len(ev) > 0 {
				res.Evicted = append([]int(nil), ev...)
			}
			results = append(results, res)
		case "free":
			mod.Free(op.Op, op.Cycle, op.ID)
			results = append(results, BatchResult{})
		}
	}
	return results
}

// postBatch sends a batch to the live server, requiring 200, and returns
// the raw results bytes plus the decoded response.
func postBatch(t *testing.T, url string, req BatchRequest) (json.RawMessage, *BatchResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch on %s/%s: status %d: %s", req.Use, req.Representation, resp.StatusCode, buf.String())
	}
	var raw struct {
		Results json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	var full BatchResponse
	if err := json.Unmarshal(buf.Bytes(), &full); err != nil {
		t.Fatal(err)
	}
	return raw.Results, &full
}

// sortedEvicted normalizes a result list for comparing answers across
// description variants: the set of instances an assign&free evicts is
// determined by the forbidden-latency matrix (and so preserved by
// reduction), but the order the module reports them in follows internal
// table layout, which reduction legitimately changes.
func sortedEvicted(results []BatchResult) []BatchResult {
	out := make([]BatchResult, len(results))
	for i, r := range results {
		out[i] = r
		if len(r.Evicted) > 0 {
			ev := append([]int(nil), r.Evicted...)
			sort.Ints(ev)
			out[i].Evicted = ev
		}
	}
	return out
}

// TestDifferentialScanModes pins the scan knob through the wire: the
// same random batch answered under scan "verdict" (default), "words"
// and "naive" must return byte-identical results, on linear and modulo
// bitvector modules over random machines, with a schedule op riding
// along so the knob's sched.Config.NaiveScan routing is covered too.
// Counters separate the modes: the verdict run reports the candidate
// cycles charged (FirstFreeCycles) identically to the word scan — the
// accounting invariant — while the naive run answers through per-cycle
// Check calls and must report no range-scan work at all.
func TestDifferentialScanModes(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(1996))
	for i := 0; i < 8; i++ {
		m := resmodel.Random(rng, resmodel.DefaultRandomConfig())
		m.Name = fmt.Sprintf("scan%d", i)
		body, _ := json.Marshal(ReduceRequest{MDL: mdl.Print(m)})
		resp, err := http.Post(ts.URL+"/v1/reduce", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("machine %d: reduce status %d", i, resp.StatusCode)
		}
		sess := s.lookup(m.Name)
		if sess == nil {
			t.Fatalf("machine %d not registered after reduce", i)
		}

		ii := 1 + rng.Intn(m.MaxSpan()+2)
		for _, c := range []batchCase{
			{"reduced", "bitvector", 0},
			{"reduced", "bitvector", ii},
			{"original", "bitvector", ii},
			{"reduced", "discrete", 0},
		} {
			e := sess.expandedFor(c.use)
			probe := localModule(t, e, c)
			ops := genSequence(rand.New(rand.NewSource(rng.Int63())), e, probe, c.ii, true, 80)
			ops = append(ops, BatchOp{Fn: "schedule", Scheduler: "ims",
				Loop: &LoopSpec{Ops: []int{0, len(e.AltGroup) - 1},
					Edges: []LoopEdge{{From: 0, To: 1, Delay: 1}}}})

			req := BatchRequest{Machine: m.Name, Use: c.use,
				Representation: c.representation, II: c.ii, Ops: ops}
			raws := make(map[string]json.RawMessage)
			fulls := make(map[string]*BatchResponse)
			for _, scan := range []string{"", "verdict", "words", "naive"} {
				req.Scan = scan
				raws[scan], fulls[scan] = postBatch(t, ts.URL, req)
			}
			for _, scan := range []string{"verdict", "words", "naive"} {
				if !bytes.Equal(raws[scan], raws[""]) {
					t.Fatalf("machine %d %+v: scan %q results differ from default\n%s\nvs\n%s",
						i, c, scan, raws[scan], raws[""])
				}
			}
			v, w, n := fulls["verdict"].Counters, fulls["words"].Counters, fulls["naive"].Counters
			if v.FirstFreeCycles != w.FirstFreeCycles {
				t.Errorf("machine %d %+v: verdict charged %d candidate cycles, word scan %d",
					i, c, v.FirstFreeCycles, w.FirstFreeCycles)
			}
			if w.FirstFreeVerdictWords != 0 || n.FirstFreeVerdictWords != 0 {
				t.Errorf("machine %d %+v: verdict words leaked into words/naive runs (%d, %d)",
					i, c, w.FirstFreeVerdictWords, n.FirstFreeVerdictWords)
			}
			if n.FirstFreeCalls != 0 {
				t.Errorf("machine %d %+v: naive run made %d range-scan calls", i, c, n.FirstFreeCalls)
			}
		}
	}

	// The knob itself is validated.
	body, _ := json.Marshal(BatchRequest{Machine: "scan0", Scan: "simd",
		Ops: []BatchOp{{Fn: "check"}}})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad scan value: status %d, want 400", resp.StatusCode)
	}
}

// TestDifferentialServedVsInProcess is the conformance harness of the
// serving layer: mdserve's handler stack on a loopback listener must
// answer batched contention-query sequences byte-identically to the
// in-process internal/query modules, for random machines, on both the
// discrete and bitvector representations, linear and modulo, in both
// assign and assign&free styles, against both the original and the
// reduced description. As a bonus it re-checks the paper's theorem over
// the wire: the reduced description's served answers equal the
// original's for the same sequence (modulo eviction report order).
func TestDifferentialServedVsInProcess(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(42))
	const numMachines = 12
	for i := 0; i < numMachines; i++ {
		m := resmodel.Random(rng, resmodel.DefaultRandomConfig())
		m.Name = fmt.Sprintf("m%d", i)
		src := mdl.Print(m)

		body, _ := json.Marshal(ReduceRequest{MDL: src})
		resp, err := http.Post(ts.URL+"/v1/reduce", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("machine %d: reduce status %d", i, resp.StatusCode)
		}

		// The in-process reference takes the identical path the server
		// does: parse the printed source, then expand / reduce. The
		// session the reduce request just registered exposes both
		// variants; using it also pins that the server serves queries
		// against the same descriptions it returned stats for.
		sess := s.lookup(m.Name)
		if sess == nil {
			t.Fatalf("machine %d not registered after reduce", i)
		}

		ii := 1 + rng.Intn(m.MaxSpan()+2)
		for _, c := range []batchCase{
			{"original", "discrete", 0},
			{"original", "discrete", ii},
			{"original", "bitvector", 0},
			{"original", "bitvector", ii},
			{"reduced", "discrete", 0},
			{"reduced", "bitvector", ii},
			{"reduced", "fsa", 0},
			{"original", "fsa", 0},
			{"reduced", "auto", 0},
			{"original", "auto", ii},
		} {
			for _, assignFree := range []bool{false, true} {
				e := sess.expandedFor(c.use)
				probe := localModule(t, e, c)
				if probe == nil {
					continue // pinned backend infeasible here (FSA over budget)
				}
				seqSeed := rng.Int63()
				ops := genSequence(rand.New(rand.NewSource(seqSeed)), e, probe, c.ii, assignFree, 100)
				ref := localModule(t, e, c)
				want := replayOps(ref, ops)

				req := BatchRequest{
					Machine:        m.Name,
					Use:            c.use,
					Representation: c.representation,
					II:             c.ii,
					Ops:            ops,
				}
				gotRaw, full := postBatch(t, ts.URL, req)
				wantRaw, err := json.Marshal(want)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotRaw, wantRaw) {
					t.Fatalf("machine %d %+v assignFree=%v: served results differ from in-process module\nserved: %s\nlocal:  %s",
						i, c, assignFree, gotRaw, wantRaw)
				}
				if full.Counters != *ref.Counters() {
					t.Errorf("machine %d %+v assignFree=%v: served counters %+v differ from in-process %+v",
						i, c, assignFree, full.Counters, *ref.Counters())
				}
				if c.representation == "auto" {
					wantSel, err := query.Select(e, query.Policy{Representation: "auto", II: c.ii})
					if err != nil {
						t.Fatal(err)
					}
					if full.Backend != wantSel.Backend {
						t.Errorf("machine %d %+v: served backend %q, local auto-selection picked %q",
							i, c, full.Backend, wantSel.Backend)
					}
				} else if full.Backend != c.representation {
					t.Errorf("machine %d %+v: served backend %q for pinned representation", i, c, full.Backend)
				}

				// Cross-representation equivalence on the wire: the FSA
				// must answer the identical sequence exactly as the
				// reference reduced-table backend (modulo eviction
				// report order).
				if c.representation == "fsa" {
					reqD := req
					reqD.Representation = "discrete"
					_, dFull := postBatch(t, ts.URL, reqD)
					a, err := json.Marshal(sortedEvicted(full.Results))
					if err != nil {
						t.Fatal(err)
					}
					b, err := json.Marshal(sortedEvicted(dFull.Results))
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(a, b) {
						t.Fatalf("machine %d %+v assignFree=%v: fsa answers differ from discrete\n%s\nvs\n%s",
							i, c, assignFree, a, b)
					}
				}

				// The wire-level reduction theorem: replaying the same
				// valid sequence against the other description variant
				// yields the same answers and evicted sets (work
				// counters legitimately differ; so can eviction order).
				otherUse := "reduced"
				if c.use == "reduced" {
					otherUse = "original"
				}
				if c.representation == "fsa" && localModule(t, sess.expandedFor(otherUse), c) == nil {
					continue // the other variant's automata exceed the budget
				}
				req.Use = otherUse
				_, otherFull := postBatch(t, ts.URL, req)
				a, err := json.Marshal(sortedEvicted(full.Results))
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(sortedEvicted(otherFull.Results))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a, b) {
					t.Fatalf("machine %d %+v assignFree=%v: %s description answers differ from %s\n%s\nvs\n%s",
						i, c, assignFree, otherUse, c.use, b, a)
				}
			}
		}
	}
}
