//go:build smoke

package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end smoke run behind `make serve-smoke`:
// build the real mdserve binary, start it on an ephemeral port, drive
// one reduce, one batch, a full scheduling-session conversation
// (create, 100 streamed NDJSON ops, idle expiry) and one metrics
// scrape over real TCP, then SIGTERM it and require a clean drain
// (exit code 0). Build-tagged so `go test ./...` stays fast.
func TestServeSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "mdserve")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/mdserve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build cmd/mdserve: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-preload", "example,cydra5-subset", "-cache", "8", "-session-ttl", "1s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints its resolved address once the listener is up.
	lines := bufio.NewScanner(stdout)
	var base string
	for lines.Scan() {
		if _, addr, ok := strings.Cut(lines.Text(), "listening on "); ok {
			base = addr
			break
		}
	}
	if base == "" {
		t.Fatalf("mdserve never announced its address: %v", lines.Err())
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	client := &http.Client{Timeout: 10 * time.Second}
	post := func(path string, body any) []byte {
		t.Helper()
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, out)
		}
		return out
	}

	// One reduce: the Figure 1 example in MDL source form.
	const exampleMDL = `machine smoke
resources bus0 bus1 alu0 alu1 wb

op add latency 2 {
  alu0: 0
  bus0: 0
  wb: 2
  alt {
    alu1: 0
    bus1: 0
    wb: 2
  }
}
op store latency 1 {
  bus0: 0
  bus1: 1
}
`
	var red ReduceResponse
	if err := json.Unmarshal(post("/v1/reduce", ReduceRequest{MDL: exampleMDL}), &red); err != nil {
		t.Fatalf("reduce response: %v", err)
	}
	if red.Name != "smoke" || red.ReducedUsages > red.Usages {
		t.Fatalf("implausible reduce response: %+v", red)
	}

	// One batch against it.
	var batch BatchResponse
	if err := json.Unmarshal(post("/v1/batch", BatchRequest{
		Machine: "smoke",
		Ops: []BatchOp{
			{Fn: "check", Op: 0, Cycle: 0},
			{Fn: "assign", Op: 0, Cycle: 0, ID: 1},
			{Fn: "check_with_alt", Op: 0, Cycle: 0},
			{Fn: "free", Op: 0, Cycle: 0, ID: 1},
		},
	}), &batch); err != nil {
		t.Fatalf("batch response: %v", err)
	}
	if len(batch.Results) != 4 || batch.Results[0].OK == nil || !*batch.Results[0].OK {
		t.Fatalf("implausible batch response: %+v", batch)
	}

	// A stateful scheduling session: create it, stream 100 ops through
	// the NDJSON conversation mode, and check every line came back plus
	// the done trailer with the right op count.
	var si SessionInfo
	if err := json.Unmarshal(post("/v1/sessions", SessionRequest{Machine: "smoke"}), &si); err != nil {
		t.Fatalf("session create response: %v", err)
	}
	var ndjson bytes.Buffer
	const streamOps = 100
	for i := 0; i < streamOps; i++ {
		op, err := json.Marshal(BatchOp{Fn: "check", Op: 0, Cycle: i % 16})
		if err != nil {
			t.Fatal(err)
		}
		ndjson.Write(op)
		ndjson.WriteByte('\n')
	}
	sresp, err := client.Post(base+"/v1/sessions/"+si.SessionID+"/stream", "application/x-ndjson", &ndjson)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	var streamLines [][]byte
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		streamLines = append(streamLines, append([]byte(nil), sc.Bytes()...))
	}
	sresp.Body.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if sresp.StatusCode != http.StatusOK || len(streamLines) != streamOps+1 {
		t.Fatalf("stream: status %d, %d lines (want %d results + trailer)", sresp.StatusCode, len(streamLines), streamOps)
	}
	var trailer struct {
		Done bool `json:"done"`
		Ops  int  `json:"ops"`
	}
	if err := json.Unmarshal(streamLines[streamOps], &trailer); err != nil || !trailer.Done || trailer.Ops != streamOps {
		t.Fatalf("stream trailer: %s (err %v)", streamLines[streamOps], err)
	}

	// Idle past the 1s TTL the session expires: first probe sees
	// 410 Gone (lazy expiry), after which the id is unknown.
	time.Sleep(1200 * time.Millisecond)
	gresp, err := client.Get(base + "/v1/sessions/" + si.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, gresp.Body)
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusGone {
		t.Fatalf("expired session probe: status %d, want 410", gresp.StatusCode)
	}

	// Metrics scrape: -preload and the requests above must have left
	// serve-scope counters behind.
	resp, err := client.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: status %d: %s", resp.StatusCode, snap)
	}
	if !bytes.Contains(snap, []byte("serve.reduce.requests")) {
		t.Fatalf("metrics snapshot missing serve counters: %s", snap)
	}

	// Clean shutdown: SIGTERM, drain, exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("mdserve did not exit cleanly on SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("mdserve did not drain within 15s of SIGTERM")
	}
}
