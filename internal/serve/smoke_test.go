//go:build smoke

package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end smoke run behind `make serve-smoke`:
// build the real mdserve binary, start it on an ephemeral port, drive
// one reduce, one batch and one metrics scrape over real TCP, then
// SIGTERM it and require a clean drain (exit code 0). Build-tagged so
// `go test ./...` stays fast.
func TestServeSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "mdserve")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/mdserve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build cmd/mdserve: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-preload", "example,cydra5-subset", "-cache", "8")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints its resolved address once the listener is up.
	lines := bufio.NewScanner(stdout)
	var base string
	for lines.Scan() {
		if _, addr, ok := strings.Cut(lines.Text(), "listening on "); ok {
			base = addr
			break
		}
	}
	if base == "" {
		t.Fatalf("mdserve never announced its address: %v", lines.Err())
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	client := &http.Client{Timeout: 10 * time.Second}
	post := func(path string, body any) []byte {
		t.Helper()
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, out)
		}
		return out
	}

	// One reduce: the Figure 1 example in MDL source form.
	const exampleMDL = `machine smoke
resources bus0 bus1 alu0 alu1 wb

op add latency 2 {
  alu0: 0
  bus0: 0
  wb: 2
  alt {
    alu1: 0
    bus1: 0
    wb: 2
  }
}
op store latency 1 {
  bus0: 0
  bus1: 1
}
`
	var red ReduceResponse
	if err := json.Unmarshal(post("/v1/reduce", ReduceRequest{MDL: exampleMDL}), &red); err != nil {
		t.Fatalf("reduce response: %v", err)
	}
	if red.Name != "smoke" || red.ReducedUsages > red.Usages {
		t.Fatalf("implausible reduce response: %+v", red)
	}

	// One batch against it.
	var batch BatchResponse
	if err := json.Unmarshal(post("/v1/batch", BatchRequest{
		Machine: "smoke",
		Ops: []BatchOp{
			{Fn: "check", Op: 0, Cycle: 0},
			{Fn: "assign", Op: 0, Cycle: 0, ID: 1},
			{Fn: "check_with_alt", Op: 0, Cycle: 0},
			{Fn: "free", Op: 0, Cycle: 0, ID: 1},
		},
	}), &batch); err != nil {
		t.Fatalf("batch response: %v", err)
	}
	if len(batch.Results) != 4 || batch.Results[0].OK == nil || !*batch.Results[0].OK {
		t.Fatalf("implausible batch response: %+v", batch)
	}

	// Metrics scrape: -preload and the requests above must have left
	// serve-scope counters behind.
	resp, err := client.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: status %d: %s", resp.StatusCode, snap)
	}
	if !bytes.Contains(snap, []byte("serve.reduce.requests")) {
		t.Fatalf("metrics snapshot missing serve counters: %s", snap)
	}

	// Clean shutdown: SIGTERM, drain, exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("mdserve did not exit cleanly on SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("mdserve did not drain within 15s of SIGTERM")
	}
}
