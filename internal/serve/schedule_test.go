package serve

import (
	"net/http"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/machines"
)

// dotLoop is a small two-op recurrence used by the schedule-op tests:
// op 1 depends on op 0 in the same iteration, op 0 on op 1 one
// iteration back.
func dotLoop() *LoopSpec {
	return &LoopSpec{
		Ops: []int{0, 1},
		Edges: []LoopEdge{
			{From: 0, To: 1, Delay: 2},
			{From: 1, To: 0, Delay: 1, Dist: 1},
		},
	}
}

// TestBatchScheduleOp drives fn:"schedule" end to end on /v1/batch:
// the optimal engine returns a proven schedule whose times satisfy the
// dependences, the ims engine returns a schedule without optimality
// flags, and the reduced and original descriptions produce identical
// results (the paper's preservation theorem on the wire).
func TestBatchScheduleOp(t *testing.T) {
	s := New(Config{})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	run := func(use string) []BatchResult {
		rec := post(t, h, "/v1/batch", BatchRequest{Machine: "ex", Use: use, Ops: []BatchOp{
			{Fn: "schedule", Loop: dotLoop()},
			{Fn: "schedule", Scheduler: "ims", Loop: dotLoop()},
		}})
		if rec.Code != http.StatusOK {
			t.Fatalf("use=%q: status %d: %s", use, rec.Code, rec.Body.String())
		}
		return decodeBody[BatchResponse](t, rec).Results
	}

	res := run("reduced")
	opt, ims := res[0], res[1]
	if opt.OK == nil || !*opt.OK || opt.II == nil || opt.MII == nil {
		t.Fatalf("optimal schedule incomplete: %+v", opt)
	}
	if opt.Proven == nil || opt.Fallback == nil || *opt.Proven == *opt.Fallback {
		t.Fatalf("want exactly one of proven/fallback: %+v", opt)
	}
	if *opt.II < *opt.MII {
		t.Fatalf("ii %d below mii %d", *opt.II, *opt.MII)
	}
	if len(opt.Times) != 2 || len(opt.Alts) != 2 {
		t.Fatalf("schedule shape: %+v", opt)
	}
	// The dependences of dotLoop at the achieved II.
	ii := *opt.II
	if opt.Times[1]-opt.Times[0] < 2 || opt.Times[0]-opt.Times[1] < 1-ii {
		t.Fatalf("schedule violates dependences at ii %d: times %v", ii, opt.Times)
	}
	if ims.OK == nil || !*ims.OK || ims.Proven != nil || ims.Fallback != nil {
		t.Fatalf("ims result shape: %+v", ims)
	}
	if *opt.Proven && *ims.II < *opt.II {
		t.Fatalf("proven optimal ii %d worse than ims ii %d", *opt.II, *ims.II)
	}

	// The reduced description preserves scheduling constraints, so both
	// descriptions achieve the same II (MII may differ — the reduced
	// machine's resource bound is its own, equally valid, lower bound).
	orig := run("original")
	if *orig[0].II != *opt.II || !reflect.DeepEqual(orig[0].Times, opt.Times) {
		t.Fatalf("optimal schedule differs across descriptions\nreduced:  %+v\noriginal: %+v", opt, orig[0])
	}
	if *orig[1].II != *ims.II {
		t.Fatalf("ims II differs across descriptions: reduced %d, original %d", *ims.II, *orig[1].II)
	}
}

// TestBatchScheduleValidation pins the pre-validation contract: every
// malformed schedule op is a 4xx before it can reach the scheduler.
func TestBatchScheduleValidation(t *testing.T) {
	s := New(Config{})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	cases := []struct {
		name string
		op   BatchOp
	}{
		{"missing loop", BatchOp{Fn: "schedule"}},
		{"empty loop", BatchOp{Fn: "schedule", Loop: &LoopSpec{}}},
		{"too many ops", BatchOp{Fn: "schedule", Loop: &LoopSpec{Ops: make([]int, scheduleMaxLoopOps+1)}}},
		{"bad op index", BatchOp{Fn: "schedule", Loop: &LoopSpec{Ops: []int{9999}}}},
		{"negative op index", BatchOp{Fn: "schedule", Loop: &LoopSpec{Ops: []int{-1}}}},
		{"bad scheduler", BatchOp{Fn: "schedule", Scheduler: "greedy", Loop: &LoopSpec{Ops: []int{0}}}},
		{"edge endpoint", BatchOp{Fn: "schedule", Loop: &LoopSpec{Ops: []int{0}, Edges: []LoopEdge{{From: 0, To: 3}}}}},
		{"edge delay", BatchOp{Fn: "schedule", Loop: &LoopSpec{Ops: []int{0}, Edges: []LoopEdge{{From: 0, To: 0, Delay: 256, Dist: 1}}}}},
		{"edge dist", BatchOp{Fn: "schedule", Loop: &LoopSpec{Ops: []int{0}, Edges: []LoopEdge{{From: 0, To: 0, Delay: 1, Dist: 9}}}}},
		{"zero-dist cycle", BatchOp{Fn: "schedule", Loop: &LoopSpec{Ops: []int{0, 1}, Edges: []LoopEdge{
			{From: 0, To: 1, Delay: 1}, {From: 1, To: 0, Delay: 1}}}}},
		{"budget too large", BatchOp{Fn: "schedule", MaxNodes: scheduleMaxNodes + 1, Loop: &LoopSpec{Ops: []int{0}}}},
		{"negative budget", BatchOp{Fn: "schedule", MaxNodes: -1, Loop: &LoopSpec{Ops: []int{0}}}},
	}
	for _, tc := range cases {
		rec := post(t, h, "/v1/batch", BatchRequest{Machine: "ex", Ops: []BatchOp{tc.op}})
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, rec.Code, rec.Body.String())
		}
	}
}

// TestSessionScheduleOp runs schedule ops through a stateful session:
// results are identical across repeated requests (the session's
// scheduling arena is reused, never corrupted by the session's own
// partial MRT), and a schedule op leaves the session's module state
// untouched.
func TestSessionScheduleOp(t *testing.T) {
	s := New(Config{})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	si := createSession(t, h, SessionRequest{Machine: "ex", II: 4})

	// Occupy the session's own MRT, then schedule: the schedule op must
	// see a fresh table, not the session's assignments.
	rec := post(t, h, "/v1/sessions/"+si.SessionID+"/ops", SessionOpsRequest{Ops: []BatchOp{
		{Fn: "assign", Op: 0, Cycle: 0, ID: 1},
		{Fn: "schedule", Loop: dotLoop()},
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("ops: status %d: %s", rec.Code, rec.Body.String())
	}
	first := decodeBody[SessionOpsResponse](t, rec).Results[1]
	if first.OK == nil || !*first.OK {
		t.Fatalf("schedule failed in session: %+v", first)
	}

	// The session's own assignment survives the schedule op.
	rec = post(t, h, "/v1/sessions/"+si.SessionID+"/ops", SessionOpsRequest{Ops: []BatchOp{
		{Fn: "check", Op: 0, Cycle: 0},
		{Fn: "schedule", Loop: dotLoop()},
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("ops: status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[SessionOpsResponse](t, rec)
	if resp.Results[0].OK == nil || *resp.Results[0].OK {
		t.Fatalf("session MRT state lost after schedule op: %+v", resp.Results[0])
	}
	if !reflect.DeepEqual(resp.Results[1], first) {
		t.Fatalf("schedule result drifted across requests\nfirst: %+v\nlater: %+v", first, resp.Results[1])
	}
}
