package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
)

// handleSessionStream is the streaming batch mode of a scheduling
// session: POST /v1/sessions/{id}/stream with an NDJSON body — one
// BatchOp JSON object per line — answered with one NDJSON line per op,
// flushed after every line, so a remote scheduler holds a wire-speed
// conversation with its live module instead of paying a request
// round-trip of framing per batch.
//
// Response framing (Content-Type application/x-ndjson):
//
//   - one result line per op line, byte-identical to the JSON encoding
//     of the equivalent BatchResult: {}, {"ok":true},
//     {"ok":true,"alt_op":2,"cycle":5}, {"evicted":[3]}, ...
//   - on an invalid op: one terminal {"error":"...","index":i} line;
//     ops before i remain applied (the session is stateful).
//   - on clean input EOF: one terminal
//     {"done":true,"ops":N,"counters":{...}} line carrying the
//     session's cumulative work-unit counters.
//
// Blank lines are skipped. The stream is deadline-gated (the server's
// per-request deadline covers the whole conversation) and admitted
// through the gate's reserved stream sub-quota (parallel.Gate
// AcquireStream), so long conversations can never occupy every
// admission slot. Execution is serialized per session; ops and results
// are bounded by Config.MaxStreamOps and Config.MaxBodyBytes.
func (s *Server) handleSessionStream(w http.ResponseWriter, r *http.Request) {
	obs.Inc("serve.stream.requests")
	start := time.Now()
	defer func() { obs.Observe("serve.stream.latency", time.Since(start).Microseconds()) }()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	if err := s.gate.AcquireStream(ctx); err != nil {
		obs.Inc("serve.rejected")
		writeErr(w, http.StatusTooManyRequests, "server at capacity: stream admission deadline exceeded")
		return
	}
	defer s.gate.ReleaseStream()
	obs.Inc("serve.admitted")
	r = r.WithContext(ctx)
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

	sess, herr := s.lookupSession(r.PathValue("id"))
	if herr != nil {
		writeErr(w, herr.status, herr.msg)
		return
	}
	if herr := sess.acquire(r); herr != nil {
		writeErr(w, herr.status, herr.msg)
		return
	}
	defer sess.release()

	// HTTP/1.x half-closes the request body once the response starts;
	// a stream reads ops and writes results interleaved, so it needs
	// full-duplex (a no-op where unsupported, e.g. test recorders).
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	out := bufio.NewWriter(w)
	// flushLine pushes one completed response line onto the wire so the
	// client's next decision never waits on server-side buffering.
	flushLine := func() {
		out.Flush()
		rc.Flush()
	}
	// Push the 200 header onto the wire before reading any op: a
	// conversational client is allowed to wait for it before sending.
	flushLine()
	// Once the header is written the status is fixed at 200; protocol
	// errors travel as terminal NDJSON lines instead.
	fail := func(index int, msg string) {
		line, _ := json.Marshal(map[string]any{"error": msg, "index": index})
		out.Write(line)
		out.WriteByte('\n')
		flushLine()
	}

	in := bufio.NewReader(r.Body)
	var (
		op      BatchOp
		res     opResult
		buf     []byte // reused result-line buffer; zero steady-state allocs
		n       int
		errLine error
	)
	for {
		if err := ctx.Err(); err != nil {
			fail(n, fmt.Sprintf("request deadline exceeded at op %d", n))
			return
		}
		var line []byte
		line, errLine = in.ReadBytes('\n')
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			if errLine != nil {
				break // clean EOF (or body error) with no pending op
			}
			continue // blank line between ops
		}
		if n >= s.cfg.MaxStreamOps {
			fail(n, fmt.Sprintf("stream exceeds %d ops", s.cfg.MaxStreamOps))
			return
		}
		op = BatchOp{}
		if err := json.Unmarshal(line, &op); err != nil {
			fail(n, fmt.Sprintf("op %d: invalid JSON: %v", n, err))
			return
		}
		if herr := sess.x.exec(n, &op, &res); herr != nil {
			fail(n, herr.msg)
			return
		}
		buf = res.appendJSON(buf[:0])
		buf = append(buf, '\n')
		out.Write(buf)
		flushLine()
		n++
		if errLine != nil {
			break // the final op arrived without a trailing newline
		}
	}
	if errLine != nil && errLine != io.EOF {
		// Body read error (cap exceeded, client gone): report and stop.
		fail(n, fmt.Sprintf("stream read: %v", errLine))
		return
	}
	sess.ops.Add(int64(n))
	obs.Add("serve.stream.ops", int64(n))
	sess.touch(s.now())
	trailer, _ := json.Marshal(streamTrailer{Done: true, Ops: n, Backend: sess.x.backend, Counters: *sess.x.mod.Counters()})
	out.Write(trailer)
	out.WriteByte('\n')
	flushLine()
}

// streamTrailer is the terminal line of a successful stream: the op
// count answered on this request, the concrete backend serving the
// session's module, and the session's cumulative counters.
type streamTrailer struct {
	Done     bool           `json:"done"`
	Ops      int            `json:"ops"`
	Backend  string         `json:"backend"`
	Counters query.Counters `json:"counters"`
}
