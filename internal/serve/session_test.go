package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/mdl"
	"repro/internal/obs"
	"repro/internal/query"
)

func doReq(t *testing.T, h http.Handler, method, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
	return rec
}

// TestOpResultJSONMatchesMarshal pins the manual NDJSON writer to the
// wire format: appendJSON must be byte-identical to json.Marshal of the
// equivalent BatchResult for every field combination, or streamed
// sessions silently diverge from one-shot batches.
func TestOpResultJSONMatchesMarshal(t *testing.T) {
	cases := []opResult{
		{},
		{hasOK: true, ok: true},
		{hasOK: true, ok: false},
		{hasOK: true, ok: true, hasAlt: true, alt: 0},
		{hasOK: true, ok: true, hasAlt: true, alt: 3},
		{hasOK: true, ok: true, hasCycle: true, cycle: 7},
		{hasOK: true, ok: true, hasCycle: true, cycle: -12},
		{hasOK: true, ok: true, hasAlt: true, alt: 2, hasCycle: true, cycle: 5},
		{evicted: []int{4}},
		{evicted: []int{9, 1, 30000}},
		{hasOK: true, ok: false, hasAlt: true, alt: -1, hasCycle: true, cycle: 1 << 30, evicted: []int{0, 2}},
		// Schedule-op shapes: proven optimal, fallback (no schedule),
		// the ims engine (no proven/fallback), failure, and empty
		// schedule slices (must be omitted like evicted).
		{hasOK: true, ok: true, hasSched: true, ii: 4, mii: 3, hasProven: true, proven: true, times: []int{0, 2, 5}, alts: []int{1, 0, 2}},
		{hasOK: true, ok: true, hasSched: true, ii: 9, mii: 7, hasProven: true, fallback: true, times: []int{0}, alts: []int{0}},
		{hasOK: true, ok: false, hasSched: true, mii: 7, hasProven: true, fallback: true},
		{hasOK: true, ok: true, hasSched: true, ii: 2, mii: 2, times: []int{0, 1}, alts: []int{3, 4}},
		{hasOK: true, ok: true, hasSched: true, ii: 1, mii: 1, times: []int{}, alts: nil},
		{hasSched: true, mii: 12},
	}
	for i, r := range cases {
		got := r.appendJSON(nil)
		want, err := json.Marshal(r.toBatchResult())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("case %d: appendJSON %s != json.Marshal %s", i, got, want)
		}
	}
}

func createSession(t *testing.T, h http.Handler, req SessionRequest) SessionInfo {
	t.Helper()
	rec := post(t, h, "/v1/sessions", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("session create: status %d: %s", rec.Code, rec.Body.String())
	}
	return *decodeBody[SessionInfo](t, rec)
}

func TestSessionLifecycle(t *testing.T) {
	s := New(Config{})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	si := createSession(t, h, SessionRequest{Machine: "ex"})
	if si.SessionID == "" || si.Machine != "ex" || si.Use != "reduced" || si.Representation != "discrete" {
		t.Fatalf("implausible session info: %+v", si)
	}

	// State persists across ops requests: the assign from the first
	// request is visible to the check in the second.
	rec := post(t, h, "/v1/sessions/"+si.SessionID+"/ops", SessionOpsRequest{Ops: []BatchOp{
		{Fn: "check", Op: 0, Cycle: 0},
		{Fn: "assign", Op: 0, Cycle: 0, ID: 1},
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("ops: status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[SessionOpsResponse](t, rec)
	if len(resp.Results) != 2 || resp.Results[0].OK == nil || !*resp.Results[0].OK {
		t.Fatalf("first ops response: %+v", resp)
	}
	resp = decodeBody[SessionOpsResponse](t, post(t, h, "/v1/sessions/"+si.SessionID+"/ops",
		SessionOpsRequest{Ops: []BatchOp{{Fn: "check", Op: 0, Cycle: 0}}}))
	if resp.Results[0].OK == nil || *resp.Results[0].OK {
		t.Fatal("assign from previous ops request not visible: session state did not persist")
	}
	if resp.Counters.AssignCalls != 1 {
		t.Errorf("cumulative counters not threaded: %+v", resp.Counters)
	}

	// Info includes cumulative op count and counters.
	info := decodeBody[SessionInfo](t, doReq(t, h, http.MethodGet, "/v1/sessions/"+si.SessionID))
	if info.Ops != 3 || info.Counters == nil || info.Counters.CheckCalls < 2 {
		t.Errorf("session info after 3 ops: %+v (counters %+v)", info, info.Counters)
	}

	// The list shows it; delete removes it; everything after is 404.
	var list struct{ Sessions []SessionInfo }
	if got := decodeBody[struct{ Sessions []SessionInfo }](t, doReq(t, h, http.MethodGet, "/v1/sessions")); len(got.Sessions) != 1 {
		t.Errorf("session list has %d entries, want 1", len(got.Sessions))
	} else {
		list = *got
	}
	if list.Sessions[0].SessionID != si.SessionID {
		t.Errorf("list returned %q, want %q", list.Sessions[0].SessionID, si.SessionID)
	}
	if rec := doReq(t, h, http.MethodDelete, "/v1/sessions/"+si.SessionID); rec.Code != http.StatusOK {
		t.Fatalf("delete: status %d", rec.Code)
	}
	for _, probe := range []*httptest.ResponseRecorder{
		doReq(t, h, http.MethodDelete, "/v1/sessions/"+si.SessionID),
		doReq(t, h, http.MethodGet, "/v1/sessions/"+si.SessionID),
		post(t, h, "/v1/sessions/"+si.SessionID+"/ops", SessionOpsRequest{Ops: []BatchOp{{Fn: "check"}}}),
	} {
		if probe.Code != http.StatusNotFound {
			t.Errorf("deleted session answered %d, want 404: %s", probe.Code, probe.Body.String())
		}
	}
}

func TestSessionCreateValidation(t *testing.T) {
	s := New(Config{})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	for name, tc := range map[string]struct {
		req  SessionRequest
		want int
	}{
		"unknown machine": {SessionRequest{Machine: "nope"}, http.StatusNotFound},
		"bad use":         {SessionRequest{Machine: "ex", Use: "both"}, http.StatusBadRequest},
		"bad rep":         {SessionRequest{Machine: "ex", Representation: "automaton"}, http.StatusBadRequest},
		"negative ii":     {SessionRequest{Machine: "ex", II: -1}, http.StatusBadRequest},
		"bad bitvector k": {SessionRequest{Machine: "ex", Representation: "bitvector", K: 500}, http.StatusBadRequest},
	} {
		if rec := post(t, h, "/v1/sessions", tc.req); rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", name, rec.Code, tc.want, rec.Body.String())
		}
	}
}

// TestSessionOpsApplyUpToError pins the stateful-session error contract:
// a mid-batch 4xx leaves the ops before the failing one applied.
func TestSessionOpsApplyUpToError(t *testing.T) {
	s := New(Config{})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	si := createSession(t, h, SessionRequest{Machine: "ex"})

	rec := post(t, h, "/v1/sessions/"+si.SessionID+"/ops", SessionOpsRequest{Ops: []BatchOp{
		{Fn: "assign", Op: 0, Cycle: 0, ID: 1},
		{Fn: "peek"}, // invalid fn
	}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad fn mid-batch: status %d, want 400", rec.Code)
	}
	resp := decodeBody[SessionOpsResponse](t, post(t, h, "/v1/sessions/"+si.SessionID+"/ops",
		SessionOpsRequest{Ops: []BatchOp{{Fn: "check", Op: 0, Cycle: 0}}}))
	if resp.Results[0].OK == nil || *resp.Results[0].OK {
		t.Fatal("assign before the failing op was rolled back; sessions must keep applied ops")
	}
}

// TestSessionTTLInjectedClock drives idle expiry entirely through the
// server's injectable clock — no wall-clock sleeps.
func TestSessionTTLInjectedClock(t *testing.T) {
	obs.Default().SetEnabled(true)
	defer obs.Default().SetEnabled(false)
	expired := obs.Default().Counter("serve.sessions.expired")

	s := New(Config{SessionTTL: time.Minute})
	now := time.Unix(1_700_000_000, 0)
	s.now = func() time.Time { return now }
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	si := createSession(t, h, SessionRequest{Machine: "ex"})

	// Activity within the TTL keeps it alive and resets the idle clock.
	now = now.Add(50 * time.Second)
	if rec := post(t, h, "/v1/sessions/"+si.SessionID+"/ops", SessionOpsRequest{Ops: []BatchOp{{Fn: "check"}}}); rec.Code != http.StatusOK {
		t.Fatalf("ops at 50s idle: status %d", rec.Code)
	}
	now = now.Add(50 * time.Second)
	if rec := doReq(t, h, http.MethodGet, "/v1/sessions/"+si.SessionID); rec.Code != http.StatusOK {
		t.Fatalf("info at 50s idle after touch: status %d", rec.Code)
	}

	// Past the TTL a lookup lazily expires it: 410 Gone, not 404.
	before := expired.Value()
	now = now.Add(61 * time.Second)
	if rec := doReq(t, h, http.MethodGet, "/v1/sessions/"+si.SessionID); rec.Code != http.StatusGone {
		t.Fatalf("lookup past TTL: status %d, want 410: %s", rec.Code, rec.Body.String())
	}
	if got := expired.Value() - before; got != 1 {
		t.Errorf("serve.sessions.expired advanced by %d, want 1", got)
	}
	// Once expired the id is simply unknown.
	if rec := doReq(t, h, http.MethodGet, "/v1/sessions/"+si.SessionID); rec.Code != http.StatusNotFound {
		t.Errorf("second lookup of expired id: status %d, want 404", rec.Code)
	}

	// The list endpoint sweeps: two idle sessions vanish together.
	a := createSession(t, h, SessionRequest{Machine: "ex"})
	b := createSession(t, h, SessionRequest{Machine: "ex"})
	now = now.Add(2 * time.Minute)
	list := decodeBody[struct{ Sessions []SessionInfo }](t, doReq(t, h, http.MethodGet, "/v1/sessions"))
	if len(list.Sessions) != 0 {
		t.Errorf("list after TTL sweep: %d sessions resident (%s, %s)", len(list.Sessions), a.SessionID, b.SessionID)
	}

	// SessionTTL < 0 disables expiry entirely.
	s2 := New(Config{SessionTTL: -1})
	now2 := time.Unix(1_700_000_000, 0)
	s2.now = func() time.Time { return now2 }
	if _, err := s2.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	h2 := s2.Handler()
	si2 := createSession(t, h2, SessionRequest{Machine: "ex"})
	now2 = now2.Add(10 * 365 * 24 * time.Hour)
	if rec := doReq(t, h2, http.MethodGet, "/v1/sessions/"+si2.SessionID); rec.Code != http.StatusOK {
		t.Errorf("session with disabled TTL expired after a decade idle: status %d", rec.Code)
	}
}

// TestSessionTableBounded registers cap+N sessions and asserts residency
// <= cap with oldest-evicted-first (single shard makes global LRU order
// exact), plus LRU — not FIFO — replacement after a touch.
func TestSessionTableBounded(t *testing.T) {
	obs.Default().SetEnabled(true)
	defer obs.Default().SetEnabled(false)
	evictions := obs.Default().Counter("serve.sessions.evictions")

	s := New(Config{MaxSessions: 3, Shards: 1})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	before := evictions.Value()
	ids := make([]string, 5)
	for i := range ids {
		ids[i] = createSession(t, h, SessionRequest{Machine: "ex"}).SessionID
	}
	if got := evictions.Value() - before; got != 2 {
		t.Errorf("serve.sessions.evictions advanced by %d, want 2", got)
	}
	wantResident := func(want ...string) {
		t.Helper()
		list := decodeBody[struct{ Sessions []SessionInfo }](t, doReq(t, h, http.MethodGet, "/v1/sessions"))
		var got []string
		for _, si := range list.Sessions {
			got = append(got, si.SessionID)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("resident sessions %v, want %v", got, want)
		}
	}
	// Oldest evicted first: 1 and 2 went, 3..5 remain.
	wantResident(ids[2], ids[3], ids[4])

	// A touch reorders: after using ids[2], the next create evicts
	// ids[3], not ids[2].
	if rec := post(t, h, "/v1/sessions/"+ids[2]+"/ops", SessionOpsRequest{Ops: []BatchOp{{Fn: "check"}}}); rec.Code != http.StatusOK {
		t.Fatalf("touch ops: status %d", rec.Code)
	}
	id6 := createSession(t, h, SessionRequest{Machine: "ex"}).SessionID
	wantResident(ids[2], ids[4], id6)

	// Default shard count: order is approximate but the bound holds.
	s2 := New(Config{MaxSessions: 4})
	if _, err := s2.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	h2 := s2.Handler()
	for i := 0; i < 20; i++ {
		createSession(t, h2, SessionRequest{Machine: "ex"})
	}
	if got := s2.sessions.len(); got > 4 {
		t.Errorf("sharded session table resident %d > capacity 4", got)
	}
}

// TestRegistryBounded is the unbounded-registry regression test: before
// this PR, Server's machine map grew without limit under unique-name
// /v1/reduce spam. Now cap+N registrations keep residency <= cap,
// oldest-evicted-first, counted by serve.registry.evictions — via both
// insert paths (Register and the /v1/reduce handler share putMachine).
func TestRegistryBounded(t *testing.T) {
	obs.Default().SetEnabled(true)
	defer obs.Default().SetEnabled(false)
	evictions := obs.Default().Counter("serve.registry.evictions")

	s := New(Config{MaxMachines: 3, Shards: 1})
	h := s.Handler()
	before := evictions.Value()
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("m%d", i)
		if _, err := s.Register(name, machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
			t.Fatal(err)
		}
	}
	if got := evictions.Value() - before; got != 2 {
		t.Errorf("serve.registry.evictions advanced by %d, want 2", got)
	}
	wantResident := func(want ...string) {
		t.Helper()
		list := decodeBody[struct{ Machines []MachineInfo }](t, get(t, h, "/v1/machines"))
		var got []string
		for _, mi := range list.Machines {
			got = append(got, mi.Name)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("resident machines %v, want %v", got, want)
		}
	}
	wantResident("m2", "m3", "m4")

	// Batch traffic touches its machine, protecting it from eviction.
	if rec := post(t, h, "/v1/batch", BatchRequest{Machine: "m2", Ops: []BatchOp{{Fn: "check"}}}); rec.Code != http.StatusOK {
		t.Fatalf("batch touch: status %d", rec.Code)
	}
	// The /v1/reduce insert path obeys the same cap and counter.
	rec := post(t, h, "/v1/reduce", ReduceRequest{Name: "m5", MDL: mdl.Print(machines.Example())})
	if rec.Code != http.StatusOK {
		t.Fatalf("reduce: status %d: %s", rec.Code, rec.Body.String())
	}
	wantResident("m2", "m4", "m5")

	// Evicting a machine never breaks sessions already built on it.
	si := createSession(t, h, SessionRequest{Machine: "m5"})
	for i := 6; i < 10; i++ {
		if _, err := s.Register(fmt.Sprintf("m%d", i), machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
			t.Fatal(err)
		}
	}
	if s.lookup("m5") != nil {
		t.Fatal("m5 should have been evicted by now")
	}
	if rec := post(t, h, "/v1/sessions/"+si.SessionID+"/ops", SessionOpsRequest{Ops: []BatchOp{{Fn: "check"}}}); rec.Code != http.StatusOK {
		t.Errorf("session on evicted machine: status %d, want 200 (modules outlive registry entries)", rec.Code)
	}

	// Default shard count: the bound holds under spam.
	s2 := New(Config{MaxMachines: 4})
	for i := 0; i < 12; i++ {
		if _, err := s2.Register(fmt.Sprintf("spam%d", i), machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s2.machines.len(); got > 4 {
		t.Errorf("sharded registry resident %d > capacity 4", got)
	}
}

// TestSessionsConcurrentHammer drives session create / ops / stream /
// list / delete and registry eviction from 8 goroutines; run under
// -race (make check does) it pins the sharded tables' and sessions'
// locking. Status codes may legitimately be 404/410/429 when a
// neighbour evicts or holds a session; only 5xx is a failure.
func TestSessionsConcurrentHammer(t *testing.T) {
	s := New(Config{MaxSessions: 6, MaxMachines: 4, Shards: 2, SessionTTL: time.Minute})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	const goroutines = 8
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rec := post(t, h, "/v1/sessions", SessionRequest{Machine: "ex"})
				if rec.Code >= 500 {
					errs <- fmt.Sprintf("create: %d %s", rec.Code, rec.Body.String())
					return
				}
				if rec.Code != http.StatusOK {
					continue
				}
				id := decodeBody[SessionInfo](t, rec).SessionID
				for _, req := range []*httptest.ResponseRecorder{
					post(t, h, "/v1/sessions/"+id+"/ops", SessionOpsRequest{Ops: []BatchOp{
						{Fn: "check", Op: 0, Cycle: g},
						{Fn: "first_free", Op: 0, Lo: 0, Hi: 20},
					}}),
					post(t, h, "/v1/sessions/"+id+"/stream",
						[]byte("{\"fn\":\"check\",\"op\":0,\"cycle\":1}\n{\"fn\":\"check_with_alt\",\"op\":0,\"cycle\":2}\n")),
					doReq(t, h, http.MethodGet, "/v1/sessions"),
					doReq(t, h, http.MethodGet, "/v1/machines"),
					doReq(t, h, http.MethodGet, "/healthz"),
				} {
					if req.Code >= 500 {
						errs <- fmt.Sprintf("goroutine %d: %d %s", g, req.Code, req.Body.String())
						return
					}
				}
				if i%8 == g%8 {
					if _, err := s.Register(fmt.Sprintf("hammer-%d-%d", g, i), machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
						errs <- err.Error()
						return
					}
				}
				if i%4 == 0 {
					doReq(t, h, http.MethodDelete, "/v1/sessions/"+id)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got, cap := s.sessions.len(), 6; got > cap {
		t.Errorf("session table resident %d > capacity %d after hammer", got, cap)
	}
	if got, cap := s.machines.len(), 4; got > cap {
		t.Errorf("registry resident %d > capacity %d after hammer", got, cap)
	}
}

// TestSessionSteadyStateZeroAlloc pins the tentpole's performance
// contract: once a session's module, live-instance map and result
// buffer are warm, executing ops and encoding their NDJSON result lines
// allocates nothing — on both representations. (JSON op decoding and
// the HTTP layer sit outside the pin; they are per-request, not per-op.)
func TestSessionSteadyStateZeroAlloc(t *testing.T) {
	s := New(Config{})
	if _, err := s.Register("ex", machines.Example(), core.Objective{Kind: core.ResUses}); err != nil {
		t.Fatal(err)
	}
	me := s.lookup("ex")
	ops := []BatchOp{
		{Fn: "check", Op: 0, Cycle: 0},
		{Fn: "check_with_alt", Op: 0, Cycle: 1},
		{Fn: "first_free", Op: 0, Lo: 0, Hi: 32},
		{Fn: "first_free_alt", Op: 0, Lo: 0, Hi: 32},
		{Fn: "assign", Op: 0, Cycle: 0, ID: 1},
		{Fn: "free", Op: 0, Cycle: 0, ID: 1},
		{Fn: "assign_free", Op: 0, Cycle: 0, ID: 2},
		{Fn: "assign_free", Op: 0, Cycle: 0, ID: 3}, // evicts 2
		{Fn: "free", Op: 0, Cycle: 0, ID: 3},
	}
	for _, rep := range []string{"discrete", "bitvector", "fsa"} {
		e, sel, _, repOut, herr := s.buildModule(me, "reduced", rep, 0, 0, 0)
		if herr != nil {
			t.Fatalf("%s: buildModule: %s", rep, herr.msg)
		}
		x := newOpExec(e, me.machineFor("reduced"), sel, repOut, "verdict", query.Policy{Representation: repOut}, s.cfg.MaxCycle)
		var res opResult
		buf := make([]byte, 0, 256)
		run := func() {
			for i := range ops {
				if herr := x.exec(i, &ops[i], &res); herr != nil {
					t.Fatalf("%s: op %d: %s", rep, i, herr.msg)
				}
				buf = res.appendJSON(buf[:0])
			}
		}
		run() // warm the live map, eviction scratch and line buffer
		if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
			t.Errorf("%s: steady-state session ops allocate %.1f allocs/run, want 0", rep, allocs)
		}
	}
}
