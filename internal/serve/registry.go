package serve

import (
	"container/list"
	"sync"
)

// sharded is a capacity-bounded string-keyed LRU table split across N
// independently locked shards. It backs both of the server's long-lived
// tables — the machine registry and the scheduling-session table — so
// neither can grow without limit under unique-key spam (the same bug
// class the reduction cache's LRU bound removed), and so that the two
// hottest lock-protected structures in the serving path are not single
// global mutexes.
//
// A key's shard is its FNV-1a hash modulo the shard count, so keys
// spread by content. The capacity is apportioned across shards
// (capacity/shards each, remainder to the low shards) and enforced
// per shard: total residency never exceeds the configured capacity, and
// within a shard eviction is strictly least-recently-used. Global
// eviction order across shards is therefore approximate — a heavily
// skewed key distribution can evict from a busy shard while a quiet one
// has room — which is the standard sharded-LRU trade, bought for
// independent locking. The shard count is clamped to the capacity so no
// shard's quota rounds down to zero.
type sharded[V any] struct {
	shards []lruShard[V]
}

type lruShard[V any] struct {
	mu      sync.Mutex
	quota   int // <= 0: unbounded
	entries map[string]*list.Element
	order   *list.List // front = most recently used; values are *lruEntry[V]
}

// lruEntry is one key/value pair of a sharded table (also the snapshot
// element type returned by items, removeIf and put's eviction list).
type lruEntry[V any] struct {
	key string
	val V
}

// newSharded returns a table holding at most capacity entries
// (capacity <= 0 means unbounded) across at most shards shards.
func newSharded[V any](capacity, shards int) *sharded[V] {
	if shards < 1 {
		shards = 1
	}
	if capacity > 0 && shards > capacity {
		shards = capacity
	}
	t := &sharded[V]{shards: make([]lruShard[V], shards)}
	for i := range t.shards {
		quota := 0
		if capacity > 0 {
			quota = capacity / shards
			if i < capacity%shards {
				quota++
			}
		}
		t.shards[i] = lruShard[V]{
			quota:   quota,
			entries: map[string]*list.Element{},
			order:   list.New(),
		}
	}
	return t
}

// fnv1a is the 64-bit FNV-1a hash of s (inlined rather than hash/fnv to
// keep shard selection allocation-free).
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

func (t *sharded[V]) shard(key string) *lruShard[V] {
	return &t.shards[fnv1a(key)%uint64(len(t.shards))]
}

// get returns the value under key, marking it most recently used.
func (t *sharded[V]) get(key string) (V, bool) {
	sh := t.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el := sh.entries[key]
	if el == nil {
		var zero V
		return zero, false
	}
	sh.order.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// put inserts (or replaces) key's value at the most-recently-used
// position and returns the entries evicted to respect the shard's
// quota. A replacement never evicts.
func (t *sharded[V]) put(key string, val V) []lruEntry[V] {
	sh := t.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el := sh.entries[key]; el != nil {
		el.Value.(*lruEntry[V]).val = val
		sh.order.MoveToFront(el)
		return nil
	}
	sh.entries[key] = sh.order.PushFront(&lruEntry[V]{key: key, val: val})
	var evicted []lruEntry[V]
	for sh.quota > 0 && sh.order.Len() > sh.quota {
		el := sh.order.Back()
		ent := sh.order.Remove(el).(*lruEntry[V])
		delete(sh.entries, ent.key)
		evicted = append(evicted, *ent)
	}
	return evicted
}

// remove deletes key, returning its value if it was resident.
func (t *sharded[V]) remove(key string) (V, bool) {
	sh := t.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el := sh.entries[key]
	if el == nil {
		var zero V
		return zero, false
	}
	ent := sh.order.Remove(el).(*lruEntry[V])
	delete(sh.entries, key)
	return ent.val, true
}

// len returns the total resident entry count across shards.
func (t *sharded[V]) len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// items snapshots every resident entry (no particular order; callers
// sort). LRU positions are not disturbed.
func (t *sharded[V]) items() []lruEntry[V] {
	var out []lruEntry[V]
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for el := sh.order.Front(); el != nil; el = el.Next() {
			out = append(out, *el.Value.(*lruEntry[V]))
		}
		sh.mu.Unlock()
	}
	return out
}

// removeIf sweeps every shard, removing (and returning) the entries pred
// selects. Used for TTL expiry of idle sessions; pred must be cheap, it
// runs under the shard lock.
func (t *sharded[V]) removeIf(pred func(key string, val V) bool) []lruEntry[V] {
	var out []lruEntry[V]
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		var next *list.Element
		for el := sh.order.Front(); el != nil; el = next {
			next = el.Next()
			ent := el.Value.(*lruEntry[V])
			if pred(ent.key, ent.val) {
				sh.order.Remove(el)
				delete(sh.entries, ent.key)
				out = append(out, *ent)
			}
		}
		sh.mu.Unlock()
	}
	return out
}
