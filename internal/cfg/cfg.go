// Package cfg provides acyclic control-flow graphs of basic blocks and a
// cross-block scheduler that carries resource requirements over block
// boundaries — the latency-hiding setting Section 1 of Eichenberger &
// Davidson (PLDI 1996) motivates: "resource requirements may dangle from
// predecessor basic blocks", and the successor's reserved table begins as
// "the union of all the resource requirements dangling from predecessor
// basic blocks".
//
// Each block's body is an acyclic dependence graph; data may also flow
// between blocks (XEdges), constraining when a consumer may issue relative
// to its block entry. Blocks are scheduled independently — each on a fresh
// reserved table seeded with its predecessors' dangling requirements — so
// the result is valid along EVERY control-flow path, which Validate-style
// replay tests confirm by concatenating paths on the original description.
package cfg

import (
	"fmt"
	"sort"

	"repro/internal/ddg"
	"repro/internal/query"
	"repro/internal/resmodel"
)

// Block is one basic block: an acyclic dependence graph plus control-flow
// successors.
type Block struct {
	Name  string
	Body  *ddg.Graph
	Succs []int
}

// XEdge is a cross-block data dependence: node FromNode of block FromBlock
// produces a value consumed by node ToNode of block ToBlock after Delay
// cycles.
type XEdge struct {
	FromBlock, FromNode int
	ToBlock, ToNode     int
	Delay               int
}

// Graph is an acyclic CFG (a trace, hammock or any forward region).
type Graph struct {
	Name   string
	Blocks []Block
	Entry  int
	XEdges []XEdge
}

// Validate checks structure: indices in range, acyclic control flow,
// acyclic block bodies with distance-0 edges only, and cross edges that
// follow control-flow reachability.
func (g *Graph) Validate() error {
	n := len(g.Blocks)
	if g.Entry < 0 || g.Entry >= n {
		return fmt.Errorf("cfg: %s: entry %d out of range", g.Name, g.Entry)
	}
	for bi, b := range g.Blocks {
		if b.Body == nil {
			return fmt.Errorf("cfg: %s: block %d has no body", g.Name, bi)
		}
		for _, e := range b.Body.Edges {
			if e.Dist != 0 {
				return fmt.Errorf("cfg: %s: block %q has a loop-carried edge", g.Name, b.Name)
			}
		}
		if err := b.Body.Validate(); err != nil {
			return err
		}
		for _, s := range b.Succs {
			if s < 0 || s >= n {
				return fmt.Errorf("cfg: %s: block %q successor %d out of range", g.Name, b.Name, s)
			}
		}
	}
	// Control-flow acyclicity.
	state := make([]int, n)
	var dfs func(v int) error
	dfs = func(v int) error {
		state[v] = 1
		for _, w := range g.Blocks[v].Succs {
			if state[w] == 1 {
				return fmt.Errorf("cfg: %s: control-flow cycle through block %q", g.Name, g.Blocks[w].Name)
			}
			if state[w] == 0 {
				if err := dfs(w); err != nil {
					return err
				}
			}
		}
		state[v] = 2
		return nil
	}
	for v := 0; v < n; v++ {
		if state[v] == 0 {
			if err := dfs(v); err != nil {
				return err
			}
		}
	}
	for _, x := range g.XEdges {
		if x.FromBlock < 0 || x.FromBlock >= n || x.ToBlock < 0 || x.ToBlock >= n {
			return fmt.Errorf("cfg: %s: cross edge block out of range", g.Name)
		}
		if x.FromNode < 0 || x.FromNode >= len(g.Blocks[x.FromBlock].Body.Nodes) ||
			x.ToNode < 0 || x.ToNode >= len(g.Blocks[x.ToBlock].Body.Nodes) {
			return fmt.Errorf("cfg: %s: cross edge node out of range", g.Name)
		}
		if x.FromBlock == x.ToBlock {
			return fmt.Errorf("cfg: %s: cross edge within one block; use a body edge", g.Name)
		}
	}
	return nil
}

// topo returns the blocks in a control-flow topological order.
func (g *Graph) topo() []int {
	n := len(g.Blocks)
	indeg := make([]int, n)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			indeg[s]++
		}
	}
	var order, ready []int
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	for len(ready) > 0 {
		sort.Ints(ready)
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, s := range g.Blocks[v].Succs {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return order
}

// Schedule is a per-block schedule of the whole region.
type Schedule struct {
	// Time and Alt are per block, per node (block-relative cycles).
	Time [][]int
	Alt  [][]int
	// Len is each block's issue length (one past its last issue cycle).
	Len []int
	// Dangling is, per block, what it leaves for its successors.
	Dangling [][]query.Dangling
}

// ScheduleRegion schedules every block of the region over the given
// (original or reduced) description. Each block runs cycle-ordered list
// scheduling on a fresh discrete reserved table seeded with the union of
// its predecessors' dangling requirements; cross-block data dependences
// delay consumers relative to their block entry by the producer's
// remaining latency, maximized over predecessors (the conservative merge
// at join points).
func ScheduleRegion(g *Graph, e *resmodel.Expanded) (*Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := len(g.Blocks)
	s := &Schedule{
		Time:     make([][]int, n),
		Alt:      make([][]int, n),
		Len:      make([]int, n),
		Dangling: make([][]query.Dangling, n),
	}
	span := func(op int) int { return e.Ops[op].Table.Span() }

	preds := make([][]int, n)
	for bi, b := range g.Blocks {
		for _, su := range b.Succs {
			preds[su] = append(preds[su], bi)
		}
	}
	// Global unique instance ids across blocks (ids must not collide when
	// a join block unions danglings from several predecessors).
	nextID := 1

	scheduled := make([]bool, n)
	for _, bi := range g.topo() {
		b := g.Blocks[bi]
		// Boundary conditions: union of predecessors' danglings.
		var seed []query.Dangling
		for _, p := range preds[bi] {
			if !scheduled[p] {
				return nil, fmt.Errorf("cfg: block %q scheduled before its predecessor %q",
					b.Name, g.Blocks[p].Name)
			}
			seed = append(seed, s.Dangling[p]...)
		}
		sort.Slice(seed, func(i, j int) bool { return seed[i].ID < seed[j].ID })
		mod := query.NewDiscrete(e, 0)
		if err := mod.SeedDanglingUnion(seed); err != nil {
			return nil, err
		}

		// Cross-block value readiness: node v of this block may not issue
		// before max over incoming cross edges of (producer issue +
		// delay - predecessor length), maximized over predecessors.
		ready := make([]int, len(b.Body.Nodes))
		for _, x := range g.XEdges {
			if x.ToBlock != bi {
				continue
			}
			if !scheduled[x.FromBlock] {
				return nil, fmt.Errorf("cfg: cross edge from unscheduled block %q", g.Blocks[x.FromBlock].Name)
			}
			rem := s.Time[x.FromBlock][x.FromNode] + x.Delay - s.Len[x.FromBlock]
			if rem > ready[x.ToNode] {
				ready[x.ToNode] = rem
			}
		}

		times, alts, blockLen, err := listScheduleSeeded(b.Body, e, mod, ready, nextID)
		if err != nil {
			return nil, fmt.Errorf("cfg: block %q: %w", b.Name, err)
		}
		nextID += len(b.Body.Nodes)
		s.Time[bi], s.Alt[bi], s.Len[bi] = times, alts, blockLen
		// Extract what dangles past this block's exit: both this block's
		// own long operations and still-dangling inherited ones.
		s.Dangling[bi] = query.DanglingFrom(mod.Instances(), span, blockLen)
		scheduled[bi] = true
	}
	return s, nil
}

// listScheduleSeeded is cycle-ordered list scheduling on a pre-seeded
// module, honoring per-node readiness offsets; instance ids start at id0.
func listScheduleSeeded(g *ddg.Graph, e *resmodel.Expanded, mod query.Module, ready []int, id0 int) (times, alts []int, blockLen int, err error) {
	n := len(g.Nodes)
	times = make([]int, n)
	alts = make([]int, n)
	for i := range times {
		times[i] = -1
	}
	preds := g.Preds()
	placed := 0
	for cycle := 0; placed < n; cycle++ {
		if cycle > 100000 {
			return nil, nil, 0, fmt.Errorf("no progress by cycle %d", cycle)
		}
		for v := 0; v < n; v++ {
			if times[v] >= 0 {
				continue
			}
			est := ready[v]
			ok := true
			for _, edge := range preds[v] {
				if times[edge.From] < 0 {
					ok = false
					break
				}
				if t := times[edge.From] + edge.Delay; t > est {
					est = t
				}
			}
			if !ok || est > cycle {
				continue
			}
			if op, free := mod.CheckWithAlt(g.Nodes[v].Op, cycle); free {
				mod.Assign(op, cycle, id0+v)
				times[v] = cycle
				alts[v] = op
				placed++
			}
		}
	}
	for v := 0; v < n; v++ {
		if times[v]+1 > blockLen {
			blockLen = times[v] + 1
		}
	}
	return times, alts, blockLen, nil
}

// Paths enumerates every entry-to-exit control path (up to limit paths).
func (g *Graph) Paths(limit int) [][]int {
	var out [][]int
	var walk func(path []int)
	walk = func(path []int) {
		if len(out) >= limit {
			return
		}
		v := path[len(path)-1]
		if len(g.Blocks[v].Succs) == 0 {
			out = append(out, append([]int(nil), path...))
			return
		}
		for _, s := range g.Blocks[v].Succs {
			walk(append(path, s))
		}
	}
	walk([]int{g.Entry})
	return out
}

// ReplayPath validates the region schedule along one control path by
// concatenating the blocks on a single fresh reserved table over the
// given description (normally the ORIGINAL machine): every operation of
// every block must be contention-free at its absolute cycle, and every
// cross-block dependence along the path must be satisfied.
func ReplayPath(g *Graph, e *resmodel.Expanded, s *Schedule, path []int) error {
	mod := query.NewDiscrete(e, 0)
	start := map[int]int{}
	abs := 0
	id := 0
	for _, bi := range path {
		start[bi] = abs
		b := g.Blocks[bi]
		for v := range b.Body.Nodes {
			t := abs + s.Time[bi][v]
			if !mod.Check(s.Alt[bi][v], t) {
				return fmt.Errorf("cfg: path %v: contention at block %q node %d (abs cycle %d)",
					path, b.Name, v, t)
			}
			mod.Assign(s.Alt[bi][v], t, id)
			id++
		}
		abs += s.Len[bi]
	}
	for _, x := range g.XEdges {
		sf, okF := start[x.FromBlock]
		st, okT := start[x.ToBlock]
		if !okF || !okT {
			continue // not on this path
		}
		if st+s.Time[x.ToBlock][x.ToNode] < sf+s.Time[x.FromBlock][x.FromNode]+x.Delay {
			return fmt.Errorf("cfg: path %v: cross dependence %d.%d -> %d.%d violated",
				path, x.FromBlock, x.FromNode, x.ToBlock, x.ToNode)
		}
	}
	// Intra-block dependences at absolute cycles.
	for _, bi := range path {
		for _, edge := range g.Blocks[bi].Body.Edges {
			if s.Time[bi][edge.To] < s.Time[bi][edge.From]+edge.Delay {
				return fmt.Errorf("cfg: block %q dependence %d->%d violated",
					g.Blocks[bi].Name, edge.From, edge.To)
			}
		}
	}
	return nil
}
