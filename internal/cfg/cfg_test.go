package cfg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/machines"
	"repro/internal/resmodel"
)

// block builds a tiny acyclic body over the MIPS machine.
func block(m *resmodel.Machine, name string, ops []string, edges [][3]int) Block {
	g := &ddg.Graph{Name: name}
	for i, op := range ops {
		idx := m.OpIndex(op)
		if idx < 0 {
			panic("bad op " + op)
		}
		g.Nodes = append(g.Nodes, ddg.Node{Name: name + "." + op, Op: idx})
		_ = i
	}
	for _, e := range edges {
		g.Edges = append(g.Edges, ddg.Edge{From: e[0], To: e[1], Delay: e[2]})
	}
	return Block{Name: name, Body: g}
}

// diamond builds an IF-THEN-ELSE hammock ending in a join block, with a
// long divide issued in the entry block dangling into every successor.
func diamond(m *resmodel.Machine) *Graph {
	g := &Graph{Name: "diamond"}
	entry := block(m, "A", []string{"fdiv.d", "ialu", "branch"}, [][3]int{{1, 2, 1}})
	then := block(m, "B", []string{"fmul.s", "store"}, [][3]int{{0, 1, 4}})
	els := block(m, "C", []string{"fdiv.s", "ialu"}, nil)
	join := block(m, "D", []string{"fdiv.d", "ialu"}, nil)
	entry.Succs = []int{1, 2}
	then.Succs = []int{3}
	els.Succs = []int{3}
	g.Blocks = []Block{entry, then, els, join}
	// A's divide feeds D's consumer.
	g.XEdges = []XEdge{{FromBlock: 0, FromNode: 0, ToBlock: 3, ToNode: 1, Delay: 19}}
	return g
}

func TestValidateCFG(t *testing.T) {
	m := machines.MIPS()
	g := diamond(m)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid diamond rejected: %v", err)
	}
	bad := diamond(m)
	bad.Blocks[3].Succs = []int{0} // back edge
	if bad.Validate() == nil {
		t.Error("cyclic CFG accepted")
	}
	bad2 := diamond(m)
	bad2.Blocks[0].Body.Edges = append(bad2.Blocks[0].Body.Edges, ddg.Edge{From: 0, To: 1, Delay: 1, Dist: 1})
	if bad2.Validate() == nil {
		t.Error("loop-carried body edge accepted")
	}
	bad3 := diamond(m)
	bad3.XEdges[0].ToNode = 99
	if bad3.Validate() == nil {
		t.Error("out-of-range cross edge accepted")
	}
	bad4 := diamond(m)
	bad4.Entry = 9
	if bad4.Validate() == nil {
		t.Error("bad entry accepted")
	}
}

// TestScheduleRegionDiamond: every control path of the diamond replays
// contention-free on the ORIGINAL description, even though the blocks were
// scheduled independently on the REDUCED one — boundary conditions plus
// reduction exactness, end to end.
func TestScheduleRegionDiamond(t *testing.T) {
	m := machines.MIPS()
	e := m.Expand()
	red := core.Reduce(e, core.Objective{Kind: core.ResUses})
	if err := red.Verify(); err != nil {
		t.Fatal(err)
	}
	g := diamond(m)
	s, err := ScheduleRegion(g, red.Reduced)
	if err != nil {
		t.Fatal(err)
	}
	paths := g.Paths(10)
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	for _, p := range paths {
		// Replay against the reduced description (what scheduling used)...
		if err := ReplayPath(g, red.Reduced, s, p); err != nil {
			t.Fatalf("reduced replay: %v", err)
		}
	}
	// The entry block's divide must dangle into the successors.
	if len(s.Dangling[0]) == 0 {
		t.Error("entry block left no dangling requirements")
	}
	// D's second fdiv.d (node 0) must be pushed past the divider occupancy
	// dangling from A along either path.
	dFdiv := s.Time[3][0]
	if dFdiv == 0 {
		t.Error("join block's divide issued at entry despite a dangling divider")
	}
	// Cross-block data dependence: D.ialu waits for A.fdiv.d's result.
	for _, p := range paths {
		abs := map[int]int{}
		a := 0
		for _, bi := range p {
			abs[bi] = a
			a += s.Len[bi]
		}
		prod := abs[0] + s.Time[0][0] + 19
		cons := abs[3] + s.Time[3][1]
		if cons < prod {
			t.Errorf("path %v: consumer at %d before producer result at %d", p, cons, prod)
		}
	}
}

// TestScheduleRegionTrace: a straight-line trace of blocks behaves like
// the boundary-condition example — a successor block cannot reuse the
// divider while the predecessor's divide is still in it.
func TestScheduleRegionTrace(t *testing.T) {
	m := machines.MIPS()
	e := m.Expand()
	b0 := block(m, "T0", []string{"fdiv.d"}, nil)
	b0.Succs = []int{1}
	b1 := block(m, "T1", []string{"fdiv.d"}, nil)
	g := &Graph{Name: "trace", Blocks: []Block{b0, b1}}
	s, err := ScheduleRegion(g, e)
	if err != nil {
		t.Fatal(err)
	}
	// T0 is 1 cycle long; the dangling divider occupies ~17 more cycles,
	// so T1's divide cannot issue immediately.
	if s.Time[1][0] < 10 {
		t.Errorf("second divide at block cycle %d, want pushed past the dangling divider", s.Time[1][0])
	}
	if err := ReplayPath(g, e, s, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
}

// Property: for random hammock regions over the MIPS machine, scheduling
// on the reduced description replays contention-free on the ORIGINAL
// description along every path.
func TestQuickRegionsReplayOnOriginal(t *testing.T) {
	m := machines.MIPS()
	e := m.Expand()
	red := core.Reduce(e, core.Objective{Kind: core.ResUses})
	if err := red.Verify(); err != nil {
		t.Fatal(err)
	}
	opNames := []string{"ialu", "load", "store", "mult", "div", "fadd.s", "fmul.d", "fdiv.s", "fdiv.d", "fcvt"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mkBlock := func(name string) Block {
			nOps := 1 + rng.Intn(5)
			var ops []string
			for i := 0; i < nOps; i++ {
				ops = append(ops, opNames[rng.Intn(len(opNames))])
			}
			var edges [][3]int
			for i := 1; i < nOps; i++ {
				if rng.Intn(2) == 0 {
					edges = append(edges, [3]int{rng.Intn(i), i, 1 + rng.Intn(20)})
				}
			}
			return block(m, name, ops, edges)
		}
		g := &Graph{Name: "rand"}
		a, b, c, d := mkBlock("a"), mkBlock("b"), mkBlock("c"), mkBlock("d")
		a.Succs = []int{1, 2}
		b.Succs = []int{3}
		c.Succs = []int{3}
		g.Blocks = []Block{a, b, c, d}
		if g.Validate() != nil {
			return true
		}
		s, err := ScheduleRegion(g, red.Reduced)
		if err != nil {
			return false
		}
		for _, p := range g.Paths(8) {
			// The strong claim: replay on the ORIGINAL description.
			if ReplayPath(g, e, s, p) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
