package mdl

import (
	"testing"

	"repro/internal/forbidden"
)

// FuzzParse: the parser never panics, and every accepted description
// round-trips through Print with an identical forbidden-latency matrix.
func FuzzParse(f *testing.F) {
	f.Add(figure1Src)
	f.Add("machine m\nresources a b\nop x latency 2 {\n a: 0 2-4\n alt {\n b: 0\n }\n}\n")
	f.Add("machine \"quoted name\"\nresources r\nop x {\n r: 0\n}\n")
	f.Add("machine m\n# comment only\n")
	f.Add("machine m\nresources r\nop x {\n r: 0-0\n}\nop y {\n}\n")
	f.Add("machine m\nop x {")
	f.Add("}} : - 7")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		out := Print(m)
		m2, err := Parse(out)
		if err != nil {
			t.Fatalf("accepted description failed to re-parse:\n%s\nerror: %v", out, err)
		}
		f1 := forbidden.Compute(m.Expand())
		f2 := forbidden.Compute(m2.Expand())
		if !f1.Equal(f2) {
			t.Fatalf("round trip changed the forbidden matrix:\n%s", out)
		}
	})
}
