package mdl

import (
	"strconv"

	"repro/internal/resmodel"
)

type parser struct {
	lex *lexer
	tok token
}

// Parse parses a machine description in the mdl language and returns a
// validated machine.
func Parse(src string) (*resmodel.Machine, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	m, err := p.parseMachine()
	if err != nil {
		return nil, err
	}
	for i := range m.Ops {
		for j := range m.Ops[i].Alts {
			m.Ops[i].Alts[j].Normalize()
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) skipNewlines() error {
	for p.tok.kind == tokNewline {
		if err := p.advance(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if p.tok.kind != k {
		return token{}, errf(p.tok.line, "expected %s (%s), got %s", k, what, p.tok.kind)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) parseMachine() (*resmodel.Machine, error) {
	if err := p.skipNewlines(); err != nil {
		return nil, err
	}
	kw, err := p.expect(tokIdent, "keyword 'machine'")
	if err != nil {
		return nil, err
	}
	if kw.text != "machine" {
		return nil, errf(kw.line, "description must start with 'machine <name>', got %q", kw.text)
	}
	m := &resmodel.Machine{}
	switch p.tok.kind {
	case tokIdent, tokString:
		m.Name = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	default:
		return nil, errf(p.tok.line, "expected machine name, got %s", p.tok.kind)
	}

	resIdx := map[string]int{}
	for {
		if err := p.skipNewlines(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokEOF {
			break
		}
		kw, err := p.expect(tokIdent, "'resources' or 'op'")
		if err != nil {
			return nil, err
		}
		switch kw.text {
		case "resources":
			for p.tok.kind == tokIdent {
				name := p.tok.text
				if _, dup := resIdx[name]; dup {
					return nil, errf(p.tok.line, "duplicate resource %q", name)
				}
				resIdx[name] = len(m.Resources)
				m.Resources = append(m.Resources, name)
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if p.tok.kind != tokNewline && p.tok.kind != tokEOF {
				return nil, errf(p.tok.line, "expected resource name or end of line, got %s", p.tok.kind)
			}
		case "op":
			op, err := p.parseOp(resIdx)
			if err != nil {
				return nil, err
			}
			m.Ops = append(m.Ops, *op)
		default:
			return nil, errf(kw.line, "expected 'resources' or 'op', got %q", kw.text)
		}
	}
	return m, nil
}

func (p *parser) parseOp(resIdx map[string]int) (*resmodel.Operation, error) {
	name, err := p.expect(tokIdent, "operation name")
	if err != nil {
		return nil, err
	}
	op := &resmodel.Operation{Name: name.text, Alts: []resmodel.Table{{}}}
	if p.tok.kind == tokIdent && p.tok.text == "latency" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		it, err := p.expect(tokInt, "latency value")
		if err != nil {
			return nil, err
		}
		op.Latency, _ = strconv.Atoi(it.text)
	}
	if _, err := p.expect(tokLBrace, "op body"); err != nil {
		return nil, err
	}
	if err := p.parseBody(resIdx, op, name.text); err != nil {
		return nil, err
	}
	return op, nil
}

// parseBody parses usage lines and alt blocks up to the matching '}'.
func (p *parser) parseBody(resIdx map[string]int, op *resmodel.Operation, opName string) error {
	for {
		if err := p.skipNewlines(); err != nil {
			return err
		}
		switch p.tok.kind {
		case tokRBrace:
			return p.advance()
		case tokIdent:
			if p.tok.text == "alt" {
				if err := p.advance(); err != nil {
					return err
				}
				if _, err := p.expect(tokLBrace, "alt body"); err != nil {
					return err
				}
				op.Alts = append(op.Alts, resmodel.Table{})
				if err := p.parseAltBody(resIdx, op, opName); err != nil {
					return err
				}
				continue
			}
			if err := p.parseUsageLine(resIdx, op, opName); err != nil {
				return err
			}
		case tokEOF:
			return errf(p.tok.line, "unterminated op %q: missing '}'", opName)
		default:
			return errf(p.tok.line, "in op %q: expected usage line, 'alt' or '}', got %s", opName, p.tok.kind)
		}
	}
}

// parseAltBody parses usage lines of one alt block up to its '}'. Nested
// alt blocks are not permitted.
func (p *parser) parseAltBody(resIdx map[string]int, op *resmodel.Operation, opName string) error {
	for {
		if err := p.skipNewlines(); err != nil {
			return err
		}
		switch p.tok.kind {
		case tokRBrace:
			return p.advance()
		case tokIdent:
			if p.tok.text == "alt" {
				return errf(p.tok.line, "in op %q: nested alt blocks are not allowed", opName)
			}
			if err := p.parseUsageLine(resIdx, op, opName); err != nil {
				return err
			}
		case tokEOF:
			return errf(p.tok.line, "unterminated alt block in op %q", opName)
		default:
			return errf(p.tok.line, "in op %q alt: expected usage line or '}', got %s", opName, p.tok.kind)
		}
	}
}

// parseUsageLine parses "<resource>: <cycles>" into the op's current alt.
func (p *parser) parseUsageLine(resIdx map[string]int, op *resmodel.Operation, opName string) error {
	rname := p.tok
	ri, ok := resIdx[rname.text]
	if !ok {
		return errf(rname.line, "op %q uses undeclared resource %q", opName, rname.text)
	}
	if err := p.advance(); err != nil {
		return err
	}
	if _, err := p.expect(tokColon, "':' after resource name"); err != nil {
		return err
	}
	alt := &op.Alts[len(op.Alts)-1]
	sawCycle := false
	for p.tok.kind == tokInt {
		lo, _ := strconv.Atoi(p.tok.text)
		if err := p.advance(); err != nil {
			return err
		}
		hi := lo
		if p.tok.kind == tokDash {
			if err := p.advance(); err != nil {
				return err
			}
			it, err := p.expect(tokInt, "range end")
			if err != nil {
				return err
			}
			hi, _ = strconv.Atoi(it.text)
			if hi < lo {
				return errf(it.line, "op %q: empty cycle range %d-%d", opName, lo, hi)
			}
		}
		for c := lo; c <= hi; c++ {
			alt.Uses = append(alt.Uses, resmodel.Usage{Resource: ri, Cycle: c})
		}
		sawCycle = true
	}
	if !sawCycle {
		return errf(rname.line, "op %q: resource %q has no cycles", opName, rname.text)
	}
	if p.tok.kind != tokNewline && p.tok.kind != tokRBrace && p.tok.kind != tokEOF {
		return errf(p.tok.line, "op %q: expected cycle number, newline or '}', got %s", opName, p.tok.kind)
	}
	return nil
}
