package mdl

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/forbidden"
	"repro/internal/resmodel"
)

const figure1Src = `
# The example machine of Figure 1 (Eichenberger & Davidson, PLDI 1996).
machine example

resources r0 r1 r2 r3 r4

op A latency 3 {
  r0: 0
  r1: 1
  r2: 2
}

op B latency 8 {
  r1: 0
  r2: 1
  r3: 2-5   // partially pipelined multiply stage
  r4: 6 7   // rounding stage
}
`

func TestParseFigure1(t *testing.T) {
	m, err := Parse(figure1Src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Name != "example" {
		t.Errorf("Name = %q", m.Name)
	}
	if len(m.Resources) != 5 {
		t.Fatalf("resources = %d, want 5", len(m.Resources))
	}
	if len(m.Ops) != 2 {
		t.Fatalf("ops = %d, want 2", len(m.Ops))
	}
	a := m.Ops[0]
	if a.Name != "A" || a.Latency != 3 || len(a.Alts[0].Uses) != 3 {
		t.Errorf("A parsed wrong: %+v", a)
	}
	b := m.Ops[1]
	if b.Name != "B" || b.Latency != 8 || len(b.Alts[0].Uses) != 8 {
		t.Errorf("B parsed wrong: %d usages", len(b.Alts[0].Uses))
	}
	if got := b.Alts[0].UsageSet(3); len(got) != 4 || got[0] != 2 || got[3] != 5 {
		t.Errorf("B r3 usage set = %v, want [2 3 4 5]", got)
	}
	if got := b.Alts[0].UsageSet(4); len(got) != 2 || got[0] != 6 || got[1] != 7 {
		t.Errorf("B r4 usage set = %v, want [6 7]", got)
	}
}

func TestParseAlternatives(t *testing.T) {
	src := `
machine alts
resources p0 p1 bus
op add latency 1 {
  p0: 0
  bus: 2
  alt {
    p1: 0
    bus: 2
  }
}
op nop latency 0 {
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(m.Ops[0].Alts) != 2 {
		t.Fatalf("alts = %d, want 2", len(m.Ops[0].Alts))
	}
	if len(m.Ops[0].Alts[1].Uses) != 2 {
		t.Errorf("alt 1 usages = %d, want 2", len(m.Ops[0].Alts[1].Uses))
	}
	if len(m.Ops[1].Alts[0].Uses) != 0 {
		t.Errorf("nop has usages")
	}
	e := m.Expand()
	if len(e.Ops) != 3 || e.Ops[0].Name != "add.0" {
		t.Errorf("expansion wrong: %d ops", len(e.Ops))
	}
}

func TestParseQuotedNameAndDefaults(t *testing.T) {
	src := "machine \"Cydra 5\"\nresources r\nop x {\n r: 0\n}\n"
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Name != "Cydra 5" {
		t.Errorf("Name = %q", m.Name)
	}
	if m.Ops[0].Latency != 0 {
		t.Errorf("default latency = %d, want 0", m.Ops[0].Latency)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing machine", "resources r\n", "must start with 'machine"},
		{"bad top keyword", "machine m\nfoo bar\n", "expected 'resources' or 'op'"},
		{"undeclared resource", "machine m\nresources r\nop x {\n zz: 0\n}\n", "undeclared resource"},
		{"no cycles", "machine m\nresources r\nop x {\n r:\n}\n", "has no cycles"},
		{"empty range", "machine m\nresources r\nop x {\n r: 5-2\n}\n", "empty cycle range"},
		{"unterminated op", "machine m\nresources r\nop x {\n r: 0\n", "missing '}'"},
		{"nested alt", "machine m\nresources r\nop x {\n alt {\n alt {\n }\n }\n}\n", "nested alt"},
		{"unterminated string", "machine \"oops\n", "unterminated string"},
		{"bad char", "machine m\nresources r\nop x {\n r: 0 @\n}\n", "unexpected character"},
		{"dup resource", "machine m\nresources r r\n", "duplicate resource"},
		{"dup op", "machine m\nresources r\nop x {\n r: 0\n}\nop x {\n r: 0\n}\n", "duplicate operation"},
		{"missing colon", "machine m\nresources r\nop x {\n r 0\n}\n", "':'"},
		{"missing op name", "machine m\nop {\n}\n", "operation name"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("%s: Parse succeeded, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	src := "machine m\nresources r\nop x {\n zz: 0\n}\n"
	_, err := Parse(src)
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if perr.Line != 4 {
		t.Errorf("error line = %d, want 4", perr.Line)
	}
}

func TestCycleRanges(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{[]int{0}, "0"},
		{[]int{0, 1}, "0 1"},
		{[]int{0, 1, 2}, "0-2"},
		{[]int{0, 2, 4, 5, 6, 9}, "0 2 4-6 9"},
		{[]int{6, 7}, "6 7"},
	}
	for _, c := range cases {
		if got := cycleRanges(c.in); got != c.want {
			t.Errorf("cycleRanges(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPrintParseRoundTripFigure1(t *testing.T) {
	m1, err := Parse(figure1Src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out := Print(m1)
	m2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-Parse:\n%s\nerror: %v", out, err)
	}
	if !machinesEquivalent(m1, m2) {
		t.Errorf("round trip changed the machine:\n%s", out)
	}
}

// machinesEquivalent compares two machines structurally (after
// normalization) and by forbidden-latency matrix.
func machinesEquivalent(a, b *resmodel.Machine) bool {
	if a.Name != b.Name || len(a.Resources) != len(b.Resources) || len(a.Ops) != len(b.Ops) {
		return false
	}
	for i := range a.Resources {
		if a.Resources[i] != b.Resources[i] {
			return false
		}
	}
	for i := range a.Ops {
		oa, ob := a.Ops[i], b.Ops[i]
		if oa.Name != ob.Name || oa.Latency != ob.Latency || len(oa.Alts) != len(ob.Alts) {
			return false
		}
		for j := range oa.Alts {
			ta, tb := oa.Alts[j].Clone(), ob.Alts[j].Clone()
			ta.Normalize()
			tb.Normalize()
			if len(ta.Uses) != len(tb.Uses) {
				return false
			}
			for k := range ta.Uses {
				if ta.Uses[k] != tb.Uses[k] {
					return false
				}
			}
		}
	}
	return forbidden.Compute(a.Expand()).Equal(forbidden.Compute(b.Expand()))
}

// Property: Print/Parse round-trips every random machine.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m1 := resmodel.Random(rng, resmodel.DefaultRandomConfig())
		out := Print(m1)
		m2, err := Parse(out)
		if err != nil {
			t.Logf("re-parse failed for seed %d:\n%s\nerror: %v", seed, out, err)
			return false
		}
		return machinesEquivalent(m1, m2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
