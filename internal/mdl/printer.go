package mdl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/resmodel"
)

// Print renders a machine in the mdl language. The output parses back to
// an equivalent machine (same resources, operations, alternatives and
// usages), so Print and Parse form a round trip.
func Print(m *resmodel.Machine) string {
	var b strings.Builder
	if isIdent(m.Name) {
		fmt.Fprintf(&b, "machine %s\n", m.Name)
	} else {
		fmt.Fprintf(&b, "machine %q\n", m.Name)
	}

	if len(m.Resources) > 0 {
		b.WriteString("\n")
		const perLine = 8
		for i := 0; i < len(m.Resources); i += perLine {
			end := i + perLine
			if end > len(m.Resources) {
				end = len(m.Resources)
			}
			fmt.Fprintf(&b, "resources %s\n", strings.Join(m.Resources[i:end], " "))
		}
	}

	for _, op := range m.Ops {
		b.WriteString("\n")
		fmt.Fprintf(&b, "op %s latency %d {\n", op.Name, op.Latency)
		for ai, alt := range op.Alts {
			indent := "  "
			if ai > 0 {
				b.WriteString("  alt {\n")
				indent = "    "
			}
			printAlt(&b, m, alt, indent)
			if ai > 0 {
				b.WriteString("  }\n")
			}
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// printAlt prints one alternative's usage lines, merging consecutive
// cycles into ranges ("4-7").
func printAlt(b *strings.Builder, m *resmodel.Machine, alt resmodel.Table, indent string) {
	byRes := map[int][]int{}
	for _, u := range alt.Uses {
		byRes[u.Resource] = append(byRes[u.Resource], u.Cycle)
	}
	res := make([]int, 0, len(byRes))
	for r := range byRes {
		res = append(res, r)
	}
	sort.Ints(res)
	for _, r := range res {
		cycles := byRes[r]
		sort.Ints(cycles)
		fmt.Fprintf(b, "%s%s: %s\n", indent, m.Resources[r], cycleRanges(cycles))
	}
}

// cycleRanges renders a sorted cycle list as "0 2 4-7".
func cycleRanges(cycles []int) string {
	var parts []string
	for i := 0; i < len(cycles); {
		j := i
		for j+1 < len(cycles) && cycles[j+1] == cycles[j]+1 {
			j++
		}
		switch {
		case j == i:
			parts = append(parts, fmt.Sprintf("%d", cycles[i]))
		case j == i+1:
			parts = append(parts, fmt.Sprintf("%d %d", cycles[i], cycles[i+1]))
		default:
			parts = append(parts, fmt.Sprintf("%d-%d", cycles[i], cycles[j]))
		}
		i = j + 1
	}
	return strings.Join(parts, " ")
}

// isIdent reports whether s lexes as a single identifier token (so it can
// be printed unquoted).
func isIdent(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentPart(s[i]) {
			return false
		}
	}
	// Reject multi-byte runes conservatively: the lexer's byte-oriented
	// checks accept ASCII identifiers only.
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}
