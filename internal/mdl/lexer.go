// Package mdl implements the textual machine-description language: a small
// front end (lexer, parser, printer) for authoring reservation-table
// machine descriptions "in terms close to the actual hardware structure of
// the target machine" (Section 1 of the paper).
//
// Grammar (comments run from '#' or '//' to end of line):
//
//	machine   <ident-or-string>
//	resources <ident> <ident> ...        // may appear multiple times
//	op <ident> [latency <int>] {
//	    <resource>: <cycles>             // usage line
//	    ...
//	  [ alt {                            // further alternatives
//	    <resource>: <cycles>
//	    ... } ]
//	}
//
// <cycles> is a space-separated list of cycle numbers and inclusive ranges
// "a-b", e.g. "0 2 4-7". When an op has any "alt { ... }" blocks, the
// usage lines preceding the first alt block form the first alternative.
package mdl

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokString
	tokLBrace
	tokRBrace
	tokColon
	tokDash
	tokNewline
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokString:
		return "string"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokColon:
		return "':'"
	case tokDash:
		return "'-'"
	case tokNewline:
		return "newline"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	line int
}

// Error is a machine-description syntax or semantic error with a line
// number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("mdl: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...interface{}) *Error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

func isIdentStart(r byte) bool {
	return r == '_' || r == '.' || unicode.IsLetter(rune(r))
}

func isIdentPart(r byte) bool {
	return r == '_' || r == '.' || r == '/' || unicode.IsLetter(rune(r)) || unicode.IsDigit(rune(r))
}

// next returns the next token. Newlines are significant (they terminate
// usage lines) and are returned as tokens; consecutive newlines collapse.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '\n':
			tok := token{kind: tokNewline, line: l.line}
			for l.pos < len(l.src) && (l.src[l.pos] == '\n' || l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\r') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			return tok, nil
		case c == '{':
			l.pos++
			return token{kind: tokLBrace, line: l.line}, nil
		case c == '}':
			l.pos++
			return token{kind: tokRBrace, line: l.line}, nil
		case c == ':':
			l.pos++
			return token{kind: tokColon, line: l.line}, nil
		case c == '-':
			l.pos++
			return token{kind: tokDash, line: l.line}, nil
		case c == '"':
			start := l.pos + 1
			end := strings.IndexByte(l.src[start:], '"')
			if end < 0 {
				return token{}, errf(l.line, "unterminated string literal")
			}
			text := l.src[start : start+end]
			l.pos = start + end + 1
			return token{kind: tokString, text: text, line: l.line}, nil
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			return token{kind: tokInt, text: l.src[start:l.pos], line: l.line}, nil
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
		default:
			return token{}, errf(l.line, "unexpected character %q", string(c))
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}
