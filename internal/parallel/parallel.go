// Package parallel provides the bounded worker pool that fans the
// repository's independent units of work — per-loop scheduling,
// forbidden-matrix rows, pair-compatibility scans, branch-and-bound
// subtrees — across GOMAXPROCS goroutines.
//
// Determinism contract: workers write results into caller-indexed slots
// and the caller merges them in index order, so any computation whose
// per-index work is independent produces byte-identical output at every
// worker count. workers <= 1 always runs serially on the calling
// goroutine and is the reference path for equivalence tests.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Workers resolves a worker-count request: n < 1 selects GOMAXPROCS
// (the default of every -parallel flag), anything else is returned as is.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// WorkerPanic wraps a panic raised inside a worker goroutine. Re-raising
// a recovered value on the caller would otherwise discard the panicking
// goroutine's stack — the one that names the failing site (e.g. which
// loop's Schedule call blew up) — so the recover handler captures
// runtime.Stack at recover time and the caller re-panics with this
// wrapper, whose message prints the original value followed by the
// worker's stack.
type WorkerPanic struct {
	// Value is the original panic value.
	Value any
	// Stack is the panicking worker goroutine's stack, captured by
	// runtime.Stack inside the recover handler (so it still contains the
	// frames between the panic site and the recover).
	Stack string
}

// Error formats the original panic value followed by the worker stack;
// implementing error makes the runtime print the full message when the
// re-raised panic goes unrecovered.
func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("%v\n\noriginal worker stack:\n%s", p.Value, p.Stack)
}

func (p *WorkerPanic) String() string { return p.Error() }

// Unwrap returns the original panic value if it was an error.
func (p *WorkerPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// ForEach runs fn(i) for every i in [0, n), fanning calls across at most
// workers goroutines with work stealing (an atomic index, so uneven item
// costs balance). workers <= 1 runs serially in index order on the
// calling goroutine. A panic in any worker is re-raised on the caller as
// a *WorkerPanic (original value plus the worker's stack) after all
// workers have drained; the serial path panics natively, stack intact.
func ForEach(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var firstPanic atomic.Pointer[WorkerPanic]
	var wg sync.WaitGroup
	metered := obs.Enabled()
	var perWorker []int64 // tasks executed per worker; each slot has one writer
	if metered {
		perWorker = make([]int64, workers)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					buf := make([]byte, 64<<10)
					buf = buf[:runtime.Stack(buf, false)]
					firstPanic.CompareAndSwap(nil, &WorkerPanic{Value: p, Stack: string(buf)})
				}
			}()
			done := int64(0)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				fn(i)
				done++
			}
			if metered {
				perWorker[w] = done
			}
		}(w)
	}
	wg.Wait()
	if p := firstPanic.Load(); p != nil {
		panic(p)
	}
	if metered {
		recordPool(perWorker, n)
	}
}

// recordPool publishes one pool run's shape to the "parallel" scope:
// pool count, total tasks, the per-worker task distribution, and the
// imbalance (max - min tasks over the pool's workers, 0 = perfectly
// level work stealing).
func recordPool(perWorker []int64, n int) {
	s := obs.Default().Scope("parallel")
	s.Counter("pools").Inc()
	s.Counter("tasks").Add(int64(n))
	tasksPer := s.Histogram("tasks_per_worker")
	min, max := perWorker[0], perWorker[0]
	for _, c := range perWorker {
		tasksPer.Observe(c)
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	s.Histogram("imbalance").Observe(max - min)
}

// Map applies fn to every index in [0, n) across the worker pool and
// returns the results in index order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// ForEachState is ForEach for loops whose body needs scratch state that
// is expensive to build: each worker calls newState once and reuses that
// state for every index it steals, so the construction cost is per
// worker, not per item. fn must leave the state reusable for the next
// index. The serial path (workers <= 1) builds exactly one state and
// runs in index order; panics propagate exactly as in ForEach.
func ForEachState[S any](n, workers int, newState func() S, fn func(st S, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n == 0 {
			return
		}
		st := newState()
		for i := 0; i < n; i++ {
			fn(st, i)
		}
		return
	}
	var next atomic.Int64
	var firstPanic atomic.Pointer[WorkerPanic]
	var wg sync.WaitGroup
	metered := obs.Enabled()
	var perWorker []int64
	if metered {
		perWorker = make([]int64, workers)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					buf := make([]byte, 64<<10)
					buf = buf[:runtime.Stack(buf, false)]
					firstPanic.CompareAndSwap(nil, &WorkerPanic{Value: p, Stack: string(buf)})
				}
			}()
			st := newState()
			done := int64(0)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				fn(st, i)
				done++
			}
			if metered {
				perWorker[w] = done
			}
		}(w)
	}
	wg.Wait()
	if p := firstPanic.Load(); p != nil {
		panic(p)
	}
	if metered {
		recordPool(perWorker, n)
	}
}
