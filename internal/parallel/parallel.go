// Package parallel provides the bounded worker pool that fans the
// repository's independent units of work — per-loop scheduling,
// forbidden-matrix rows, pair-compatibility scans, branch-and-bound
// subtrees — across GOMAXPROCS goroutines.
//
// Determinism contract: workers write results into caller-indexed slots
// and the caller merges them in index order, so any computation whose
// per-index work is independent produces byte-identical output at every
// worker count. workers <= 1 always runs serially on the calling
// goroutine and is the reference path for equivalence tests.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count request: n < 1 selects GOMAXPROCS
// (the default of every -parallel flag), anything else is returned as is.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n), fanning calls across at most
// workers goroutines with work stealing (an atomic index, so uneven item
// costs balance). workers <= 1 runs serially in index order on the
// calling goroutine. A panic in any worker is re-raised on the caller
// after all workers have drained.
func ForEach(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var firstPanic atomic.Pointer[any]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					firstPanic.CompareAndSwap(nil, &p)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if p := firstPanic.Load(); p != nil {
		panic(*p)
	}
}

// Map applies fn to every index in [0, n) across the worker pool and
// returns the results in index order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}
