package parallel

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 257
		var hits [n]atomic.Int64
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	ForEach(0, 8, func(int) { called = true })
	if called {
		t.Error("fn called for n=0")
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

// panicAtSeven is the panic site the stack assertions below look for:
// the captured worker stack must name the function that actually
// panicked, not just the pool goroutine.
func panicAtSeven(i int) {
	if i == 7 {
		panic("boom")
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	// Serial path: no goroutine, the panic propagates natively with the
	// original value and the caller's own stack.
	func() {
		defer func() {
			if p := recover(); p != "boom" {
				t.Errorf("workers=1: recovered %v, want boom", p)
			}
		}()
		ForEach(16, 1, panicAtSeven)
	}()

	// Pooled path: the panic is re-raised as a *WorkerPanic carrying the
	// original value and the panicking worker's stack, so the original
	// site stays debuggable after wg.Wait().
	func() {
		defer func() {
			p := recover()
			wp, ok := p.(*WorkerPanic)
			if !ok {
				t.Fatalf("workers=4: recovered %T (%v), want *WorkerPanic", p, p)
			}
			if wp.Value != "boom" {
				t.Errorf("workers=4: original value %v, want boom", wp.Value)
			}
			if !strings.Contains(wp.Stack, "panicAtSeven") {
				t.Errorf("workers=4: worker stack does not name the panic site:\n%s", wp.Stack)
			}
			if !strings.Contains(wp.Error(), "boom") || !strings.Contains(wp.Error(), "panicAtSeven") {
				t.Errorf("workers=4: Error() omits value or site:\n%s", wp.Error())
			}
		}()
		ForEach(16, 4, panicAtSeven)
	}()
}

// TestWorkerPanicUnwrap: a worker panicking with an error exposes it via
// Unwrap, so errors.Is/As keep working through the wrapper.
func TestWorkerPanicUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	defer func() {
		wp, ok := recover().(*WorkerPanic)
		if !ok || !errors.Is(wp, sentinel) {
			t.Errorf("recovered %v, want WorkerPanic wrapping sentinel", wp)
		}
	}()
	ForEach(8, 2, func(i int) {
		if i == 3 {
			panic(sentinel)
		}
	})
}

// TestForEachPoolMetrics: with the default registry enabled, each pooled
// run records its task distribution under the "parallel" scope; the
// serial path and the disabled state record nothing.
func TestForEachPoolMetrics(t *testing.T) {
	r := obs.Default()
	r.Reset()
	r.SetEnabled(true)
	defer func() {
		r.SetEnabled(false)
		r.Reset()
	}()

	ForEach(100, 4, func(int) {})
	s := r.Snapshot()
	if got := s.Counter("parallel.pools"); got != 1 {
		t.Errorf("parallel.pools = %d, want 1", got)
	}
	if got := s.Counter("parallel.tasks"); got != 100 {
		t.Errorf("parallel.tasks = %d, want 100", got)
	}
	h := s.Histogram("parallel.tasks_per_worker")
	if h == nil || h.Count != 4 || h.Sum != 100 {
		t.Errorf("parallel.tasks_per_worker = %+v, want 4 workers summing to 100", h)
	}
	if s.Histogram("parallel.imbalance") == nil {
		t.Error("parallel.imbalance not recorded")
	}

	// The serial path records no pool shape (there is no pool).
	r.Reset()
	ForEach(50, 1, func(int) {})
	if got := r.Snapshot().Counter("parallel.pools"); got != 0 {
		t.Errorf("serial ForEach recorded %d pools, want 0", got)
	}
}

func TestMapDeterministicOrder(t *testing.T) {
	for _, workers := range []int{1, 8} {
		got := Map(64, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: Map[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestForEachStateCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 257
		var hits [n]atomic.Int64
		var states atomic.Int64
		ForEachState(n, workers,
			func() *int { states.Add(1); v := new(int); return v },
			func(st *int, i int) { *st++; hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, got)
			}
		}
		// One state per actual worker, never more than min(workers, n) and
		// at least one.
		max := int64(workers)
		if max > n {
			max = n
		}
		if got := states.Load(); got < 1 || got > max {
			t.Fatalf("workers=%d: %d states constructed, want 1..%d", workers, got, max)
		}
	}
}

func TestForEachStateSerialOrderAndZero(t *testing.T) {
	called := false
	ForEachState(0, 8, func() int { called = true; return 0 }, func(int, int) { called = true })
	if called {
		t.Error("newState or fn called for n=0")
	}
	var order []int
	ForEachState(5, 1, func() int { return 7 }, func(st, i int) {
		if st != 7 {
			t.Fatalf("state = %d", st)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestForEachStatePanicPropagates(t *testing.T) {
	defer func() {
		p := recover()
		wp, ok := p.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *WorkerPanic", p, p)
		}
		if wp.Value != "boom" {
			t.Errorf("panic value = %v, want boom", wp.Value)
		}
	}()
	ForEachState(64, 4, func() int { return 0 }, func(_ int, i int) { panicAtSeven(i) })
	t.Fatal("panic did not propagate")
}
