package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 257
		var hits [n]atomic.Int64
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	ForEach(0, 8, func(int) { called = true })
	if called {
		t.Error("fn called for n=0")
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if p := recover(); p != "boom" {
					t.Errorf("workers=%d: recovered %v, want boom", workers, p)
				}
			}()
			ForEach(16, workers, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
		}()
	}
}

func TestMapDeterministicOrder(t *testing.T) {
	for _, workers := range []int{1, 8} {
		got := Map(64, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: Map[%d] = %d", workers, i, v)
			}
		}
	}
}
