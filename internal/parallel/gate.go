package parallel

import (
	"context"
	"sync/atomic"
)

// Gate is a concurrency-limiting admission gate: a counting semaphore
// whose Acquire honours context cancellation. Long-running servers
// (cmd/mdserve) admit at most Cap() requests into the expensive
// reduce/query paths at once; excess requests wait until a slot frees or
// their deadline expires, bounding both CPU oversubscription and the
// peak memory of concurrently-built query modules.
//
// Long-lived holders (streaming query sessions, which keep a slot for
// the whole conversation rather than one request) are admitted through
// AcquireStream, which draws from a reserved sub-quota of StreamCap()
// slots: streams can never occupy every slot, so one-shot requests
// cannot be starved by an arbitrary number of open streams, and the gate
// accounts for them separately (Streams()).
type Gate struct {
	slots chan struct{}
	// streamSlots sub-limits long-lived holders; a stream holds one
	// streamSlot AND one regular slot (acquired in that order, released
	// in reverse, so the two semaphores cannot deadlock against each
	// other).
	streamSlots chan struct{}
	streams     atomic.Int64
}

// NewGate returns a gate admitting at most n concurrent holders.
// n < 1 is clamped to 1 (a gate that admits nothing would deadlock every
// caller).
func NewGate(n int) *Gate {
	if n < 1 {
		n = 1
	}
	streamCap := n - 1
	if streamCap < 1 {
		// A 1-slot gate cannot reserve a slot for one-shots and still
		// admit streams at all; admitting one stream is the lesser evil.
		streamCap = 1
	}
	return &Gate{
		slots:       make(chan struct{}, n),
		streamSlots: make(chan struct{}, streamCap),
	}
}

// Acquire blocks until a slot is free or ctx is done, returning ctx.Err()
// in the latter case. A free slot is preferred over a concurrently-done
// context.
func (g *Gate) Acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot if one is immediately free.
func (g *Gate) TryAcquire() bool {
	select {
	case g.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release frees a slot taken by Acquire or TryAcquire. Releasing a slot
// that was never acquired is a programming error and panics.
func (g *Gate) Release() {
	select {
	case <-g.slots:
	default:
		panic("parallel: Gate.Release without matching Acquire")
	}
}

// AcquireStream admits a long-lived holder: it blocks until both a
// stream slot (of the StreamCap() reserved sub-quota) and a regular slot
// are free, or ctx is done, returning ctx.Err() in the latter case.
// Release with ReleaseStream.
func (g *Gate) AcquireStream(ctx context.Context) error {
	select {
	case g.streamSlots <- struct{}{}:
	default:
		select {
		case g.streamSlots <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if err := g.Acquire(ctx); err != nil {
		<-g.streamSlots
		return err
	}
	g.streams.Add(1)
	return nil
}

// ReleaseStream frees the pair of slots taken by AcquireStream.
// Releasing without a matching AcquireStream is a programming error and
// panics.
func (g *Gate) ReleaseStream() {
	if g.streams.Add(-1) < 0 {
		g.streams.Add(1)
		panic("parallel: Gate.ReleaseStream without matching AcquireStream")
	}
	g.Release()
	<-g.streamSlots
}

// Cap returns the number of concurrent holders the gate admits.
func (g *Gate) Cap() int { return cap(g.slots) }

// StreamCap returns the number of concurrent long-lived holders the gate
// admits: Cap()-1 (so streams can never occupy every slot), floored at 1.
func (g *Gate) StreamCap() int { return cap(g.streamSlots) }

// InFlight returns the number of slots currently held.
func (g *Gate) InFlight() int { return len(g.slots) }

// Streams returns the number of long-lived holders currently admitted
// through AcquireStream.
func (g *Gate) Streams() int64 { return g.streams.Load() }
