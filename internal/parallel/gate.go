package parallel

import "context"

// Gate is a concurrency-limiting admission gate: a counting semaphore
// whose Acquire honours context cancellation. Long-running servers
// (cmd/mdserve) admit at most Cap() requests into the expensive
// reduce/query paths at once; excess requests wait until a slot frees or
// their deadline expires, bounding both CPU oversubscription and the
// peak memory of concurrently-built query modules.
type Gate struct {
	slots chan struct{}
}

// NewGate returns a gate admitting at most n concurrent holders.
// n < 1 is clamped to 1 (a gate that admits nothing would deadlock every
// caller).
func NewGate(n int) *Gate {
	if n < 1 {
		n = 1
	}
	return &Gate{slots: make(chan struct{}, n)}
}

// Acquire blocks until a slot is free or ctx is done, returning ctx.Err()
// in the latter case. A free slot is preferred over a concurrently-done
// context.
func (g *Gate) Acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot if one is immediately free.
func (g *Gate) TryAcquire() bool {
	select {
	case g.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release frees a slot taken by Acquire or TryAcquire. Releasing a slot
// that was never acquired is a programming error and panics.
func (g *Gate) Release() {
	select {
	case <-g.slots:
	default:
		panic("parallel: Gate.Release without matching Acquire")
	}
}

// Cap returns the number of concurrent holders the gate admits.
func (g *Gate) Cap() int { return cap(g.slots) }

// InFlight returns the number of slots currently held.
func (g *Gate) InFlight() int { return len(g.slots) }
