package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateCapAndTryAcquire(t *testing.T) {
	g := NewGate(2)
	if g.Cap() != 2 {
		t.Fatalf("Cap() = %d, want 2", g.Cap())
	}
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("could not take the two free slots")
	}
	if g.TryAcquire() {
		t.Fatal("TryAcquire succeeded beyond capacity")
	}
	if g.InFlight() != 2 {
		t.Fatalf("InFlight() = %d, want 2", g.InFlight())
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
	g.Release()
	g.Release()
}

func TestGateAcquireHonorsContext(t *testing.T) {
	g := NewGate(1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire on empty gate: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Acquire on full gate = %v, want DeadlineExceeded", err)
	}
	g.Release()
	// A free slot beats an already-done context (fast path).
	done, cancelDone := context.WithCancel(context.Background())
	cancelDone()
	if err := g.Acquire(done); err != nil {
		t.Fatalf("Acquire with free slot and done ctx = %v, want nil", err)
	}
	g.Release()
}

func TestGateReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	NewGate(1).Release()
}

// TestGateBoundsConcurrency runs many goroutines through a small gate
// under -race and pins that the observed high-water concurrency never
// exceeds the gate's capacity.
func TestGateBoundsConcurrency(t *testing.T) {
	const capacity = 3
	g := NewGate(capacity)
	var inFlight, highWater atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			n := inFlight.Add(1)
			for {
				hw := highWater.Load()
				if n <= hw || highWater.CompareAndSwap(hw, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			g.Release()
		}()
	}
	wg.Wait()
	if hw := highWater.Load(); hw > capacity {
		t.Fatalf("high-water concurrency %d exceeds gate capacity %d", hw, capacity)
	}
	if g.InFlight() != 0 {
		t.Fatalf("gate not drained: %d in flight", g.InFlight())
	}
}

func TestGateClampsCapacity(t *testing.T) {
	if got := NewGate(0).Cap(); got != 1 {
		t.Fatalf("NewGate(0).Cap() = %d, want 1", got)
	}
	if got := NewGate(-5).Cap(); got != 1 {
		t.Fatalf("NewGate(-5).Cap() = %d, want 1", got)
	}
}
