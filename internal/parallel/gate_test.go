package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateCapAndTryAcquire(t *testing.T) {
	g := NewGate(2)
	if g.Cap() != 2 {
		t.Fatalf("Cap() = %d, want 2", g.Cap())
	}
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("could not take the two free slots")
	}
	if g.TryAcquire() {
		t.Fatal("TryAcquire succeeded beyond capacity")
	}
	if g.InFlight() != 2 {
		t.Fatalf("InFlight() = %d, want 2", g.InFlight())
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
	g.Release()
	g.Release()
}

func TestGateAcquireHonorsContext(t *testing.T) {
	g := NewGate(1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire on empty gate: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Acquire on full gate = %v, want DeadlineExceeded", err)
	}
	g.Release()
	// A free slot beats an already-done context (fast path).
	done, cancelDone := context.WithCancel(context.Background())
	cancelDone()
	if err := g.Acquire(done); err != nil {
		t.Fatalf("Acquire with free slot and done ctx = %v, want nil", err)
	}
	g.Release()
}

func TestGateReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	NewGate(1).Release()
}

// TestGateBoundsConcurrency runs many goroutines through a small gate
// under -race and pins that the observed high-water concurrency never
// exceeds the gate's capacity.
func TestGateBoundsConcurrency(t *testing.T) {
	const capacity = 3
	g := NewGate(capacity)
	var inFlight, highWater atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			n := inFlight.Add(1)
			for {
				hw := highWater.Load()
				if n <= hw || highWater.CompareAndSwap(hw, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			g.Release()
		}()
	}
	wg.Wait()
	if hw := highWater.Load(); hw > capacity {
		t.Fatalf("high-water concurrency %d exceeds gate capacity %d", hw, capacity)
	}
	if g.InFlight() != 0 {
		t.Fatalf("gate not drained: %d in flight", g.InFlight())
	}
}

func TestGateClampsCapacity(t *testing.T) {
	if got := NewGate(0).Cap(); got != 1 {
		t.Fatalf("NewGate(0).Cap() = %d, want 1", got)
	}
	if got := NewGate(-5).Cap(); got != 1 {
		t.Fatalf("NewGate(-5).Cap() = %d, want 1", got)
	}
}

func TestGateStreamQuotaLeavesOneShotSlot(t *testing.T) {
	g := NewGate(3)
	if g.StreamCap() != 2 {
		t.Fatalf("StreamCap() = %d, want 2", g.StreamCap())
	}
	ctx := context.Background()
	if err := g.AcquireStream(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.AcquireStream(ctx); err != nil {
		t.Fatal(err)
	}
	if g.Streams() != 2 || g.InFlight() != 2 {
		t.Fatalf("Streams()=%d InFlight()=%d, want 2/2", g.Streams(), g.InFlight())
	}
	// The stream quota is exhausted; a third stream must time out even
	// though a regular slot is still free...
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := g.AcquireStream(short); err != context.DeadlineExceeded {
		t.Fatalf("third stream: err=%v, want deadline exceeded", err)
	}
	// ...and that regular slot is still available to a one-shot request.
	if !g.TryAcquire() {
		t.Fatal("streams starved the reserved one-shot slot")
	}
	g.Release()
	g.ReleaseStream()
	g.ReleaseStream()
	if g.Streams() != 0 || g.InFlight() != 0 {
		t.Fatalf("after release: Streams()=%d InFlight()=%d, want 0/0", g.Streams(), g.InFlight())
	}
}

func TestGateStreamBlockedOnRegularSlotReleasesQuota(t *testing.T) {
	// With every regular slot held by one-shots, a stream acquire must
	// fail at the deadline and give its stream-quota slot back.
	g := NewGate(2)
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("could not fill the gate")
	}
	short, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.AcquireStream(short); err != context.DeadlineExceeded {
		t.Fatalf("stream on full gate: err=%v, want deadline exceeded", err)
	}
	g.Release()
	// The failed acquire must not leak its stream slot: StreamCap() is 1
	// here, so a leak would make this acquire hang.
	ok, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := g.AcquireStream(ok); err != nil {
		t.Fatalf("stream after freeing a slot: %v", err)
	}
	g.ReleaseStream()
	g.Release()
}

func TestGateReleaseStreamWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ReleaseStream without AcquireStream did not panic")
		}
	}()
	NewGate(2).ReleaseStream()
}

func TestGateSingleSlotStillAdmitsStreams(t *testing.T) {
	g := NewGate(1)
	if g.StreamCap() != 1 {
		t.Fatalf("StreamCap() = %d, want 1", g.StreamCap())
	}
	if err := g.AcquireStream(context.Background()); err != nil {
		t.Fatal(err)
	}
	g.ReleaseStream()
}
