// Package query implements the contention query module of Section 7 of
// Eichenberger & Davidson (PLDI 1996).
//
// A contention query module answers, for a target machine and a partial
// schedule: "can this operation be placed in this cycle without resource
// contention?" It supports the four basic functions of the paper — check,
// assign, assign&free and free — plus check-with-alt for operations with
// alternative resource usages, over two internal representations:
//
//   - Discrete: a reserved table with one row per resource and one column
//     per schedule cycle; each entry carries a flag and a field identifying
//     the operation that reserved it. Query cost is linear in the number of
//     resource usages of the operation's reservation table.
//
//   - Bitvector: the flag bits packed K cycle-bitvectors per memory word;
//     checks AND one reservation word against the reserved table per
//     non-empty word, detecting contention for K cycles at once.
//
// Both representations exist in linear form (for acyclic scheduling) and
// modulo form (a Modulo Reservation Table of II columns, for software
// pipelining). All four implementations count work units exactly as the
// paper does — one unit per resource usage handled (discrete) or per
// non-empty word handled (bitvector), plus the optimistic-to-update mode
// transition cost of assign&free — so Table 6 is measured, not modeled.
//
// Either assign or assign&free, but not both, should be used within one
// partial schedule; assign&free relies on the operation-owner fields.
package query

import (
	"fmt"

	"repro/internal/resmodel"
)

// Module is the contention query interface used by schedulers. Operations
// are identified by their expanded-op index; instances of a scheduled
// operation are identified by a caller-chosen non-negative id.
type Module interface {
	// Check reports whether op can be scheduled at cycle without resource
	// contention against the current partial schedule.
	Check(op, cycle int) bool
	// Assign reserves the resources of op scheduled at cycle for instance
	// id. It must only be called when Check returned true.
	Assign(op, cycle, id int)
	// AssignFree schedules op at cycle for instance id even if resources
	// conflict: every conflicting scheduled instance is unscheduled first
	// and returned.
	AssignFree(op, cycle, id int) []int
	// Free releases the resources reserved for instance id, which was
	// scheduled as op at cycle.
	Free(op, cycle, id int)
	// CheckWithAlt determines whether origOp — identified by its index in
	// the source (unexpanded) machine — or any of its alternative
	// operations can be scheduled at cycle. It returns the expanded-op
	// index of a contention-free alternative.
	CheckWithAlt(origOp, cycle int) (op int, ok bool)
	// Schedulable reports whether op can be scheduled at all. On a Modulo
	// Reservation Table an operation whose reservation table folds onto
	// itself modulo II (needing one resource in one steady-state cycle for
	// two different iterations) is unschedulable at this II and the
	// scheduler must try a larger II; linear tables always return true.
	Schedulable(op int) bool
	// Counters returns the work-unit accounting for this module.
	Counters() *Counters
	// Reset clears the partial schedule and the counters.
	Reset()
}

// Counters accumulates calls and work units per basic function. One work
// unit is the handling of a single resource usage or a single non-empty
// word in a reservation table (Section 8).
type Counters struct {
	CheckCalls, CheckWork           int64
	AssignCalls, AssignWork         int64
	AssignFreeCalls, AssignFreeWork int64
	FreeCalls, FreeWork             int64
	CheckWithAltCalls               int64
	// FirstFreeCalls and FirstFreeWithAltCalls count range queries
	// (RangeQuerier); FirstFreeWork is their work units — packed words or
	// reserved-table cells examined, exactly like CheckWork.
	// FirstFreeCycles is the number of per-cycle check probes a naive
	// Check/CheckWithAlt loop would have issued to answer the same range
	// query (candidate cycles scanned times alternatives tried), so
	// (CheckWork+FirstFreeWork)/(CheckCalls+FirstFreeCycles) remains the
	// paper's res-uses/word-uses-per-check metric whichever scan the
	// scheduler uses.
	FirstFreeCalls, FirstFreeWork int64
	FirstFreeCycles               int64
	FirstFreeWithAltCalls         int64
	// FirstFreeSkips counts candidate cycles a range scan answered "free"
	// through the occupancy summary bitmap alone — one summary probe (one
	// work unit) instead of one AND per packed reservation word. Always 0
	// for discrete modules and with the summary scan disabled.
	FirstFreeSkips int64
	// FirstFreeVerdictWords counts the 64-candidate verdict words built by
	// the bit-parallel range scan (see verdict.go) — the scan's throughput
	// currency, one word per up-to-64 candidate cycles ruled in or out.
	// Always 0 for discrete modules and with the verdict scan disabled.
	FirstFreeVerdictWords int64
	// ModeTransitions counts optimistic-to-update transitions of the
	// bitvector assign&free (always 0 for discrete modules).
	ModeTransitions int64
	// Unscheduled counts instances evicted by AssignFree;
	// AssignFreeEvicting counts AssignFree calls that evicted at least one
	// instance (Section 8: "the assign&free function unscheduled one or
	// more operations in 13.0% of the attempts").
	Unscheduled        int64
	AssignFreeEvicting int64
}

// Reset zeroes all counters.
func (c *Counters) Reset() { *c = Counters{} }

// AddFrom accumulates src into c field by field. It is the one place
// that knows every counter, so aggregators (Table 6, scheduler arenas,
// benchmark harnesses) cannot silently drop a newly added field.
func (c *Counters) AddFrom(src *Counters) {
	c.CheckCalls += src.CheckCalls
	c.CheckWork += src.CheckWork
	c.AssignCalls += src.AssignCalls
	c.AssignWork += src.AssignWork
	c.AssignFreeCalls += src.AssignFreeCalls
	c.AssignFreeWork += src.AssignFreeWork
	c.FreeCalls += src.FreeCalls
	c.FreeWork += src.FreeWork
	c.CheckWithAltCalls += src.CheckWithAltCalls
	c.FirstFreeCalls += src.FirstFreeCalls
	c.FirstFreeWork += src.FirstFreeWork
	c.FirstFreeCycles += src.FirstFreeCycles
	c.FirstFreeWithAltCalls += src.FirstFreeWithAltCalls
	c.FirstFreeSkips += src.FirstFreeSkips
	c.FirstFreeVerdictWords += src.FirstFreeVerdictWords
	c.ModeTransitions += src.ModeTransitions
	c.Unscheduled += src.Unscheduled
	c.AssignFreeEvicting += src.AssignFreeEvicting
}

// Sub subtracts src from c field by field (the inverse of AddFrom), for
// delta-based per-loop accounting over a long-lived arena module.
func (c *Counters) Sub(src *Counters) {
	c.CheckCalls -= src.CheckCalls
	c.CheckWork -= src.CheckWork
	c.AssignCalls -= src.AssignCalls
	c.AssignWork -= src.AssignWork
	c.AssignFreeCalls -= src.AssignFreeCalls
	c.AssignFreeWork -= src.AssignFreeWork
	c.FreeCalls -= src.FreeCalls
	c.FreeWork -= src.FreeWork
	c.CheckWithAltCalls -= src.CheckWithAltCalls
	c.FirstFreeCalls -= src.FirstFreeCalls
	c.FirstFreeWork -= src.FirstFreeWork
	c.FirstFreeCycles -= src.FirstFreeCycles
	c.FirstFreeWithAltCalls -= src.FirstFreeWithAltCalls
	c.FirstFreeSkips -= src.FirstFreeSkips
	c.FirstFreeVerdictWords -= src.FirstFreeVerdictWords
	c.ModeTransitions -= src.ModeTransitions
	c.Unscheduled -= src.Unscheduled
	c.AssignFreeEvicting -= src.AssignFreeEvicting
}

// TotalCalls returns the number of calls to the four basic functions.
func (c *Counters) TotalCalls() int64 {
	return c.CheckCalls + c.AssignCalls + c.AssignFreeCalls + c.FreeCalls
}

// TotalWork returns the total work units over the four basic functions.
func (c *Counters) TotalWork() int64 {
	return c.CheckWork + c.AssignWork + c.AssignFreeWork + c.FreeWork
}

// PerCall returns average work units per call for each function; zero
// calls yield zero.
func avg(work, calls int64) float64 {
	if calls == 0 {
		return 0
	}
	return float64(work) / float64(calls)
}

// CheckPerCall returns average work units per Check call.
func (c *Counters) CheckPerCall() float64 { return avg(c.CheckWork, c.CheckCalls) }

// AssignPerCall returns average work units per Assign call.
func (c *Counters) AssignPerCall() float64 { return avg(c.AssignWork, c.AssignCalls) }

// AssignFreePerCall returns average work units per AssignFree call.
func (c *Counters) AssignFreePerCall() float64 { return avg(c.AssignFreeWork, c.AssignFreeCalls) }

// FreePerCall returns average work units per Free call.
func (c *Counters) FreePerCall() float64 { return avg(c.FreeWork, c.FreeCalls) }

// instance records where a scheduled instance lives, for eviction and for
// the bitvector module's update-mode rebuild.
type instance struct {
	op    int
	cycle int
}

// checkWithAlt implements CheckWithAlt generically over a module's Check.
func checkWithAlt(m Module, e *resmodel.Expanded, origOp, cycle int) (int, bool) {
	if origOp < 0 || origOp >= len(e.AltGroup) {
		panic(fmt.Sprintf("query: CheckWithAlt: original op index %d out of range", origOp))
	}
	for _, op := range e.AltGroup[origOp] {
		if m.Check(op, cycle) {
			return op, true
		}
	}
	return -1, false
}

// AltGrouper is the optional module extension that exposes the
// alternative group of an original (unexpanded) operation: the
// expanded-op indices a scheduler may branch over when placing that
// operation, in the canonical group order CheckWithAlt probes them.
// Every module in this package and automaton.PairModule implement it;
// schedulers that branch per alternative (IMS re-checking a group,
// sched.Optimal enumerating candidates) assert for it instead of
// re-deriving the group from the expanded machine.
type AltGrouper interface {
	AltGroupOf(origOp int) []int
}

// MemoryFootprint reports the bytes a module devotes to reserved-table
// state (flags, owner fields, packed words, stored automaton states) —
// the storage the paper's Section 6 memory comparison is about. It is
// implemented by every module in this package.
type MemoryFootprint interface {
	// StateBytes returns the current reserved-state storage in bytes.
	StateBytes() int
}
