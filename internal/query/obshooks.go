package query

import (
	"repro/internal/obs"
)

// fnObs is the observability handle pair of one basic function: a call
// counter and a probe-length histogram (work units handled per call —
// resource usages for discrete modules, non-empty words for bitvector
// ones).
type fnObs struct {
	calls *obs.Counter
	probe *obs.Histogram
}

func (f *fnObs) observe(work int64) {
	f.calls.Inc()
	f.probe.Observe(work)
}

// ModuleObs holds a module's handles into the default registry. A module
// built while metrics are disabled carries a nil *ModuleObs and every
// hook below degenerates to an inlined nil check, keeping the query hot
// path at 0 allocs/op and unmeasurable overhead (pinned by the alloc
// tests and ReportAllocs benchmarks in this package). It is exported —
// together with RangeProbes and RegisterBackend — so backends defined
// outside this package (the automaton pair module) publish the same
// query.<kind>.* metric names under the same hot-path bargain.
type ModuleObs struct {
	check, assign, assignFree, free fnObs
	firstFree                       fnObs
	checkWithAlt                    *obs.Counter
	firstFreeWithAlt                *obs.Counter
	firstFreeSkips                  *obs.Counter
	verdictWords                    *obs.Counter
	evictions                       *obs.Counter
	modeTransitions                 *obs.Counter
}

// NewModuleObs acquires the "query.<kind>" scope handles, or nil while
// the default registry is disabled. Handles are shared by name, so every
// module of the same kind accumulates into the same process totals.
func NewModuleObs(kind string) *ModuleObs {
	if !obs.Enabled() {
		return nil
	}
	s := obs.Default().Scope("query").Scope(kind)
	fn := func(name string) fnObs {
		return fnObs{calls: s.Counter(name + ".calls"), probe: s.Histogram(name + ".probe")}
	}
	return &ModuleObs{
		check:            fn("check"),
		assign:           fn("assign"),
		assignFree:       fn("assign_free"),
		free:             fn("free"),
		firstFree:        fn("firstfree"),
		checkWithAlt:     s.Counter("check_with_alt.calls"),
		firstFreeWithAlt: s.Counter("first_free_with_alt.calls"),
		firstFreeSkips:   s.Counter("firstfree.summary_skips"),
		verdictWords:     s.Counter("firstfree.verdict_words"),
		evictions:        s.Counter("evictions"),
		modeTransitions:  s.Counter("mode_transitions"),
	}
}

func (m *ModuleObs) OnCheck(work int64) {
	if m == nil {
		return
	}
	m.check.observe(work)
}

func (m *ModuleObs) OnAssign(work int64) {
	if m == nil {
		return
	}
	m.assign.observe(work)
}

func (m *ModuleObs) OnAssignFree(work int64, evicted int) {
	if m == nil {
		return
	}
	m.assignFree.observe(work)
	m.evictions.Add(int64(evicted))
}

func (m *ModuleObs) OnFree(work int64) {
	if m == nil {
		return
	}
	m.free.observe(work)
}

func (m *ModuleObs) OnCheckWithAlt() {
	if m == nil {
		return
	}
	m.checkWithAlt.Inc()
}

// OnFirstFree records one range query and its work units under
// query.<kind>.firstfree.calls/.probe (per-op probe lengths — the
// ISSUE's per-op firstfree.probes histogram), plus any candidate
// cycles the occupancy summary answered on its own
// (query.<kind>.firstfree.summary_skips; always 0 for discrete).
func (m *ModuleObs) OnFirstFree(work, skips int64) {
	if m == nil {
		return
	}
	m.firstFree.observe(work)
	if skips != 0 {
		m.firstFreeSkips.Add(skips)
	}
}

// OnVerdictWords records verdict words built by the bit-parallel range
// scan (query.<kind>.firstfree.verdict_words). Zero deltas — the word
// scan, the naive loop, discrete modules — record nothing.
func (m *ModuleObs) OnVerdictWords(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.verdictWords.Add(n)
}

func (m *ModuleObs) OnFirstFreeWithAlt() {
	if m == nil {
		return
	}
	m.firstFreeWithAlt.Inc()
}

func (m *ModuleObs) OnModeTransition() {
	if m == nil {
		return
	}
	m.modeTransitions.Inc()
}
