package query

import (
	"repro/internal/obs"
)

// fnObs is the observability handle pair of one basic function: a call
// counter and a probe-length histogram (work units handled per call —
// resource usages for discrete modules, non-empty words for bitvector
// ones).
type fnObs struct {
	calls *obs.Counter
	probe *obs.Histogram
}

func (f *fnObs) observe(work int64) {
	f.calls.Inc()
	f.probe.Observe(work)
}

// moduleObs holds a module's handles into the default registry. A module
// built while metrics are disabled carries a nil *moduleObs and every
// hook below degenerates to an inlined nil check, keeping the query hot
// path at 0 allocs/op and unmeasurable overhead (pinned by the alloc
// tests and ReportAllocs benchmarks in this package).
type moduleObs struct {
	check, assign, assignFree, free fnObs
	firstFree                       fnObs
	checkWithAlt                    *obs.Counter
	firstFreeWithAlt                *obs.Counter
	firstFreeSkips                  *obs.Counter
	evictions                       *obs.Counter
	modeTransitions                 *obs.Counter
}

// newModuleObs acquires the "query.<kind>" scope handles, or nil while
// the default registry is disabled. Handles are shared by name, so every
// module of the same kind accumulates into the same process totals.
func newModuleObs(kind string) *moduleObs {
	if !obs.Enabled() {
		return nil
	}
	s := obs.Default().Scope("query").Scope(kind)
	fn := func(name string) fnObs {
		return fnObs{calls: s.Counter(name + ".calls"), probe: s.Histogram(name + ".probe")}
	}
	return &moduleObs{
		check:            fn("check"),
		assign:           fn("assign"),
		assignFree:       fn("assign_free"),
		free:             fn("free"),
		firstFree:        fn("firstfree"),
		checkWithAlt:     s.Counter("check_with_alt.calls"),
		firstFreeWithAlt: s.Counter("first_free_with_alt.calls"),
		firstFreeSkips:   s.Counter("firstfree.summary_skips"),
		evictions:        s.Counter("evictions"),
		modeTransitions:  s.Counter("mode_transitions"),
	}
}

func (m *moduleObs) onCheck(work int64) {
	if m == nil {
		return
	}
	m.check.observe(work)
}

func (m *moduleObs) onAssign(work int64) {
	if m == nil {
		return
	}
	m.assign.observe(work)
}

func (m *moduleObs) onAssignFree(work int64, evicted int) {
	if m == nil {
		return
	}
	m.assignFree.observe(work)
	m.evictions.Add(int64(evicted))
}

func (m *moduleObs) onFree(work int64) {
	if m == nil {
		return
	}
	m.free.observe(work)
}

func (m *moduleObs) onCheckWithAlt() {
	if m == nil {
		return
	}
	m.checkWithAlt.Inc()
}

// onFirstFree records one range query and its work units under
// query.<kind>.firstfree.calls/.probe (per-op probe lengths — the
// ISSUE's per-op firstfree.probes histogram), plus any candidate
// cycles the occupancy summary answered on its own
// (query.<kind>.firstfree.summary_skips; always 0 for discrete).
func (m *moduleObs) onFirstFree(work, skips int64) {
	if m == nil {
		return
	}
	m.firstFree.observe(work)
	if skips != 0 {
		m.firstFreeSkips.Add(skips)
	}
}

func (m *moduleObs) onFirstFreeWithAlt() {
	if m == nil {
		return
	}
	m.firstFreeWithAlt.Inc()
}

func (m *moduleObs) onModeTransition() {
	if m == nil {
		return
	}
	m.modeTransitions.Inc()
}
