package query_test

// External-package tests for query.Select: the FSA backend lives in
// internal/automaton (which imports query), so any test that needs the
// "fsa" backend registered must sit outside package query to import it
// without a cycle.

import (
	"strings"
	"testing"

	_ "repro/internal/automaton"
	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/query"
	"repro/internal/resmodel"
)

func reducedFor(t *testing.T, name string) *resmodel.Expanded {
	t.Helper()
	m := machines.ByName(name)
	if m == nil {
		t.Fatalf("unknown machine %q", name)
	}
	red := core.CachedReduce(m.Expand(), core.Objective{Kind: core.KCycleWord, K: 64})
	return red.Reduced
}

// TestSelectAutoWinnerIsCheapest pins the acceptance criterion: on
// every corpus machine the auto-picked backend's measured per-op cost
// is <= every feasible fixed backend's cost on the calibration trace.
func TestSelectAutoWinnerIsCheapest(t *testing.T) {
	for _, name := range []string{"example", "mips", "alpha", "cydra5", "parisc"} {
		e := reducedFor(t, name)
		sel, err := query.Select(e, query.Policy{Representation: "auto"})
		if err != nil {
			t.Fatalf("%s: Select(auto): %v", name, err)
		}
		if sel.Cal == nil {
			t.Fatalf("%s: auto selection returned no calibration", name)
		}
		win := sel.Cal.Cost(sel.Backend)
		if win == nil || !win.Feasible {
			t.Fatalf("%s: winner %q has no feasible calibration entry", name, sel.Backend)
		}
		for _, bc := range sel.Cal.Backends {
			if bc.Feasible && bc.CostPerOp < win.CostPerOp {
				t.Errorf("%s: winner %q cost %.3f > %q cost %.3f",
					name, sel.Backend, win.CostPerOp, bc.Backend, bc.CostPerOp)
			}
		}
		if sel.Module == nil {
			t.Fatalf("%s: nil module", name)
		}
	}
}

// TestSelectDeterministic pins that calibration is pure: repeated
// selection over the same description yields the same winner and a
// cache hit (pointer-identical calibration).
func TestSelectDeterministic(t *testing.T) {
	e := reducedFor(t, "parisc")
	a, err := query.Select(e, query.Policy{Representation: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := query.Select(e, query.Policy{Representation: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Backend != b.Backend {
		t.Fatalf("winner changed across runs: %q then %q", a.Backend, b.Backend)
	}
	if a.Cal != b.Cal {
		t.Fatalf("calibration was not cached (distinct pointers for identical key)")
	}
}

// TestSelectExcludesFSAForModulo: modulo scheduling deterministically
// rules the FSA out before any probing.
func TestSelectExcludesFSAForModulo(t *testing.T) {
	e := reducedFor(t, "example")
	sel, err := query.Select(e, query.Policy{Representation: "auto", II: 8})
	if err != nil {
		t.Fatal(err)
	}
	fsa := sel.Cal.Cost("fsa")
	if fsa == nil || fsa.Feasible {
		t.Fatalf("fsa should be infeasible for ii=8, got %+v", fsa)
	}
	if !strings.Contains(fsa.Reason, "linear") {
		t.Errorf("reason %q does not mention linear-only", fsa.Reason)
	}
	if sel.Backend == "fsa" {
		t.Fatal("fsa selected for a modulo schedule")
	}
}

// TestSelectExcludesFSAForDangling is the dangling.go regression test:
// the pair module cannot seed dangling windows, so a dangling policy
// must exclude it no matter how cheap its queries are.
func TestSelectExcludesFSAForDangling(t *testing.T) {
	e := reducedFor(t, "example")
	sel, err := query.Select(e, query.Policy{Representation: "auto", Dangling: true})
	if err != nil {
		t.Fatal(err)
	}
	fsa := sel.Cal.Cost("fsa")
	if fsa == nil || fsa.Feasible {
		t.Fatalf("fsa should be infeasible under a dangling policy, got %+v", fsa)
	}
	if !strings.Contains(fsa.Reason, "dangling") {
		t.Errorf("reason %q does not mention dangling", fsa.Reason)
	}
	if sel.Backend == "fsa" {
		t.Fatal("fsa selected under a dangling policy")
	}
	if _, ok := sel.Module.(query.DanglingSeeder); !ok {
		t.Fatalf("backend %q selected under a dangling policy does not implement DanglingSeeder", sel.Backend)
	}
}

// TestSelectExcludesFSATooLarge: the Cydra 5 automata exceed any sane
// state budget; selection must fall back to the reduced backends and
// record why.
func TestSelectExcludesFSATooLarge(t *testing.T) {
	e := reducedFor(t, "cydra5")
	sel, err := query.Select(e, query.Policy{Representation: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	fsa := sel.Cal.Cost("fsa")
	if fsa == nil || fsa.Feasible {
		t.Fatalf("fsa should exceed the state budget on cydra5, got %+v", fsa)
	}
	if sel.Backend == "fsa" {
		t.Fatal("fsa selected despite exceeding the state budget")
	}
}

// TestSelectPinned covers explicitly pinned representations, including
// the error path for a pinned-but-infeasible one.
func TestSelectPinned(t *testing.T) {
	e := reducedFor(t, "example")
	for _, rep := range []string{"discrete", "bitvector", "fsa"} {
		sel, err := query.Select(e, query.Policy{Representation: rep})
		if err != nil {
			t.Fatalf("Select(%s): %v", rep, err)
		}
		if sel.Backend != rep || sel.Module == nil {
			t.Fatalf("Select(%s) = backend %q, module %v", rep, sel.Backend, sel.Module)
		}
		if sel.Cal != nil {
			t.Errorf("pinned %s should not calibrate", rep)
		}
	}
	if _, err := query.Select(e, query.Policy{Representation: "fsa", II: 4}); err == nil {
		t.Fatal("pinned fsa with ii=4 should fail")
	}
	if _, err := query.Select(reducedFor(t, "cydra5"), query.Policy{Representation: "fsa"}); err == nil {
		t.Fatal("pinned fsa on cydra5 should exceed the state budget")
	}
	if _, err := query.Select(e, query.Policy{Representation: "nope"}); err == nil {
		t.Fatal("unknown backend should fail")
	}
}
