package query

import "fmt"

// RangeQuerier is the optional range-query extension of Module: instead
// of probing candidate cycles one Check at a time, a range query answers
// "what is the first contention-free cycle in [lo, hi]?" in a single
// call. Both reserved-table representations implement it — the bitvector
// module word-parallel (one pass over the packed reservation words rules
// out up to K candidate cycles at a time), the discrete module by
// row-scanning past the conflicting usage instead of re-probing cycle by
// cycle. Schedulers detect the capability by type assertion; modules
// that only support per-cycle queries (the automaton PairModule) keep
// the plain Module interface.
//
// Both functions answer exactly what the equivalent naive loop over
// Check/CheckWithAlt answers — same first feasible cycle, same
// alternative-group tie-break — so a scheduler switching between the two
// scans produces byte-identical schedules.
type RangeQuerier interface {
	// FirstFree returns the smallest cycle in [lo, hi] at which op can be
	// scheduled without contention, like probing Check(op, cycle) for
	// cycle = lo, lo+1, ... hi. An empty range (hi < lo) reports no slot.
	FirstFree(op, lo, hi int) (cycle int, ok bool)
	// FirstFreeWithAlt returns the smallest cycle in [lo, hi] at which
	// origOp or any of its alternatives fits, and the expanded-op index
	// of the first contention-free alternative at that cycle — exactly
	// the answer of probing CheckWithAlt(origOp, cycle) over the range.
	FirstFreeWithAlt(origOp, lo, hi int) (op, cycle int, ok bool)
}

// FirstFreeNaive is the reference implementation of FirstFree: a plain
// loop over Check. It is the semantics every RangeQuerier must match
// (the differential tests pin this) and the fallback for modules without
// range support. Work lands on the module's Check counters.
func FirstFreeNaive(m Module, op, lo, hi int) (int, bool) {
	for t := lo; t <= hi; t++ {
		if m.Check(op, t) {
			return t, true
		}
	}
	return 0, false
}

// FirstFreeWithAltNaive is the reference implementation of
// FirstFreeWithAlt: a plain loop over CheckWithAlt.
func FirstFreeWithAltNaive(m Module, origOp, lo, hi int) (int, int, bool) {
	for t := lo; t <= hi; t++ {
		if op, ok := m.CheckWithAlt(origOp, t); ok {
			return op, t, true
		}
	}
	return -1, 0, false
}

// RangeProbes returns how many Check probes the naive FirstFree loop
// would have issued: one per candidate up to and including the hit, or
// the whole range on a miss. It is exported so range-capable backends
// outside this package (the automaton pair module) account their
// FirstFreeCycles with exactly the same arithmetic — the invariant that
// keeps the paper's work-per-check metric scan-strategy- and
// representation-independent.
func RangeProbes(lo, hi, cycle int, ok bool) int64 {
	if ok {
		return int64(cycle - lo + 1)
	}
	if hi < lo {
		return 0
	}
	return int64(hi - lo + 1)
}

// RangeProbesAlt is RangeProbes for FirstFreeWithAlt: the naive loop
// tries every alternative at each failing cycle and stops at the first
// free alternative (position altIdx in the group) of the hit cycle.
// Keeping this arithmetic exact is what preserves the scheduler's
// checks-per-decision statistic across scan strategies.
func RangeProbesAlt(lo, hi, cycle, altIdx, group int, ok bool) int64 {
	if ok {
		return int64(cycle-lo)*int64(group) + int64(altIdx) + 1
	}
	if hi < lo {
		return 0
	}
	return int64(hi-lo+1) * int64(group)
}

// --- Bitvector: word-parallel range scan ---

// FirstFree implements RangeQuerier.
func (b *Bitvector) FirstFree(op, lo, hi int) (int, bool) {
	b.ctr.FirstFreeCalls++
	w0, s0, v0 := b.ctr.FirstFreeWork, b.ctr.FirstFreeSkips, b.ctr.FirstFreeVerdictWords
	cycle, ok := b.firstFree(op, lo, hi)
	b.ctr.FirstFreeCycles += RangeProbes(lo, hi, cycle, ok)
	b.met.OnFirstFree(b.ctr.FirstFreeWork-w0, b.ctr.FirstFreeSkips-s0)
	b.met.OnVerdictWords(b.ctr.FirstFreeVerdictWords - v0)
	return cycle, ok
}

func (b *Bitvector) firstFree(op, lo, hi int) (int, bool) {
	if b.ii == 0 && lo < 0 {
		panic(fmt.Sprintf("query: negative cycle %d on linear reserved table", lo))
	}
	if hi < lo {
		return 0, false
	}
	if b.c.selfConf[op] {
		b.ctr.FirstFreeWork++
		return 0, false
	}
	hiEff := b.effectiveHi(lo, hi)
	if !b.noVerdict {
		if i := b.verdictFree(op, lo, hiEff-lo+1); i >= 0 {
			return lo + i, true
		}
		return 0, false
	}
	if i := b.scanFree(op, lo, hiEff-lo+1); i >= 0 {
		return lo + i, true
	}
	return 0, false
}

// effectiveHi caps a modulo scan at one full MRT period: columns repeat
// with period II, so if none of lo .. lo+II-1 is free no later cycle is
// either.
func (b *Bitvector) effectiveHi(lo, hi int) int {
	if b.ii > 0 && hi > lo+b.ii-1 {
		return lo + b.ii - 1
	}
	return hi
}

// scanFree returns the offset in [0, L) of the first candidate cycle
// t0+i at which op fits, or -1. The candidate at cycle t probes the
// alignment t%k packing of op's table — the table pre-shifted t%k
// cycles into its base word — so every probe is a word-aligned AND
// against the reserved words starting at t/k: no per-candidate shifting
// or division, and the word index and alignment advance incrementally
// as the candidate slides. A candidate dies at its first conflicting
// word, exactly like Check; each packed word ANDed is one work unit.
//
// Before the word loop, a candidate spanning two or more packed words
// consults the occupancy summary: if every backing word in the
// candidate's window is zero (occAny over [first, last] packed word),
// the candidate is free without ANDing anything — one work unit is
// charged for the summary probe (the same cost as the single AND a
// one-word table pays) and the skip is counted in FirstFreeSkips. A
// non-zero summary proves nothing about the candidate's specific bits,
// so the scan falls through to the word loop; the summary probe then
// overlaps with the first word's AND and is not charged separately.
// The occ invariant (bit set iff word non-zero) makes the fast path
// answer exactly what the word loop would: summary-free means every
// word ANDs to zero, so schedules and FirstFreeCycles are untouched.
func (b *Bitvector) scanFree(op, t0, L int) int {
	pk := b.packed[op]
	work := int64(0)
	if b.ii > 0 {
		mirror := b.mirror
		s := b.modCycle(t0)
		q, a := s/b.k, s%b.k
		for i := 0; i < L; i++ {
			pkA := pk[a]
			if !b.noSummary && len(pkA) >= 2 &&
				!b.occAny(q+pkA[0].Word, q+pkA[len(pkA)-1].Word) {
				work++
				b.ctr.FirstFreeWork += work
				b.ctr.FirstFreeSkips++
				return i
			}
			free := true
			for _, pw := range pkA {
				work++
				// The mirror keeps cycles [0, 2*II) in sync, so a table
				// reaching past II reads the second image — no wraparound.
				if mirror[q+pw.Word]&pw.Bits != 0 {
					free = false
					break
				}
			}
			if free {
				b.ctr.FirstFreeWork += work
				return i
			}
			if s++; s == b.ii {
				s, q, a = 0, 0, 0
			} else if a++; a == b.k {
				a = 0
				q++
			}
		}
		b.ctr.FirstFreeWork += work
		return -1
	}
	reserved := b.reserved
	q, a := t0/b.k, t0%b.k
	for i := 0; i < L; i++ {
		pkA := pk[a]
		if !b.noSummary && len(pkA) >= 2 {
			loW := q + pkA[0].Word
			hiW := q + pkA[len(pkA)-1].Word
			if hiW >= len(reserved) {
				hiW = len(reserved) - 1
			}
			// Words at or beyond the table end are trivially free, so a
			// window starting past the end skips without consulting occ.
			if loW > hiW || !b.occAny(loW, hiW) {
				work++
				b.ctr.FirstFreeWork += work
				b.ctr.FirstFreeSkips++
				return i
			}
		}
		free := true
		for _, pw := range pkA {
			work++
			wi := q + pw.Word
			if wi >= len(reserved) {
				// Words are sorted: this word and every later one lie
				// beyond the reserved table, where every cycle is free.
				break
			}
			if reserved[wi]&pw.Bits != 0 {
				free = false
				break
			}
		}
		if free {
			b.ctr.FirstFreeWork += work
			return i
		}
		if a++; a == b.k {
			a = 0
			q++
		}
	}
	b.ctr.FirstFreeWork += work
	return -1
}

// FirstFreeWithAlt implements RangeQuerier.
func (b *Bitvector) FirstFreeWithAlt(origOp, lo, hi int) (int, int, bool) {
	if origOp < 0 || origOp >= len(b.e.AltGroup) {
		panic(fmt.Sprintf("query: FirstFreeWithAlt: original op index %d out of range", origOp))
	}
	if b.ii == 0 && lo < 0 {
		panic(fmt.Sprintf("query: negative cycle %d on linear reserved table", lo))
	}
	b.ctr.FirstFreeWithAltCalls++
	b.met.OnFirstFreeWithAlt()
	group := b.e.AltGroup[origOp]
	w0, s0, v0 := b.ctr.FirstFreeWork, b.ctr.FirstFreeSkips, b.ctr.FirstFreeVerdictWords
	op, cycle, altIdx, ok := b.firstFreeAlt(group, lo, hi)
	b.ctr.FirstFreeCycles += RangeProbesAlt(lo, hi, cycle, altIdx, len(group), ok)
	b.met.OnFirstFree(b.ctr.FirstFreeWork-w0, b.ctr.FirstFreeSkips-s0)
	b.met.OnVerdictWords(b.ctr.FirstFreeVerdictWords - v0)
	return op, cycle, ok
}

func (b *Bitvector) firstFreeAlt(group []int, lo, hi int) (int, int, int, bool) {
	if hi < lo {
		return -1, 0, 0, false
	}
	hiEff := b.effectiveHi(lo, hi)
	// Candidates are processed in chunks so a group whose early
	// alternatives are congested does not scan the whole range before a
	// later alternative gets a chance near lo.
	const chunk = 64
	for t0 := lo; t0 <= hiEff; t0 += chunk {
		L := chunk
		if t0+L-1 > hiEff {
			L = hiEff - t0 + 1
		}
		if !b.noVerdict {
			if op, off, ai, ok := b.verdictAltChunk(group, t0, L); ok {
				return op, t0 + off, ai, true
			}
			continue
		}
		// The earliest free cycle wins, ties broken by alternative-group
		// order exactly as the naive CheckWithAlt loop breaks them. Since
		// an earlier alternative keeps a tied cycle, each later
		// alternative only needs the candidates strictly before the best
		// hit so far — its share of the chunk shrinks as hits are found.
		best, bestAlt, bestOp := -1, -1, -1
		limit := L
		for ai, op := range group {
			if limit == 0 {
				break
			}
			if b.c.selfConf[op] {
				b.ctr.FirstFreeWork++ // the probe that discovers the fold
				continue
			}
			if i := b.scanFree(op, t0, limit); i >= 0 {
				best, bestAlt, bestOp = i, ai, op
				limit = i
			}
		}
		if best >= 0 {
			return bestOp, t0 + best, bestAlt, true
		}
	}
	return -1, 0, 0, false
}

var _ RangeQuerier = (*Bitvector)(nil)

// --- Discrete: row-scan range search ---

// FirstFree implements RangeQuerier.
func (d *Discrete) FirstFree(op, lo, hi int) (int, bool) {
	d.ctr.FirstFreeCalls++
	w0 := d.ctr.FirstFreeWork
	cycle, ok := d.firstFree(op, lo, hi)
	d.ctr.FirstFreeCycles += RangeProbes(lo, hi, cycle, ok)
	d.met.OnFirstFree(d.ctr.FirstFreeWork-w0, 0)
	return cycle, ok
}

func (d *Discrete) firstFree(op, lo, hi int) (int, bool) {
	if d.ii == 0 && lo < 0 {
		panic(fmt.Sprintf("query: negative cycle %d on linear reserved table", lo))
	}
	if hi < lo {
		return 0, false
	}
	if d.c.selfConf[op] {
		d.ctr.FirstFreeWork++
		return 0, false
	}
	hiEff := d.effectiveHi(lo, hi)
	for t := lo; t <= hiEff; {
		adv, free := d.probeAdvance(op, t)
		if free {
			return t, true
		}
		if adv < 0 {
			return 0, false
		}
		t += adv
	}
	return 0, false
}

func (d *Discrete) effectiveHi(lo, hi int) int {
	if d.ii > 0 && hi > lo+d.ii-1 {
		return lo + d.ii - 1
	}
	return hi
}

// cellAt reads a reserved-table cell without growing linear tables:
// cycles beyond the current width are trivially free. Range queries must
// not mutate the module, both for zero-allocation scans and because a
// failed probe far in the future should not inflate the table.
func (d *Discrete) cellAt(r, cycle int) int32 {
	if d.ii > 0 {
		c := cycle % d.ii
		if c < 0 {
			c += d.ii
		}
		return d.cells[r*d.width+c]
	}
	if cycle >= d.width {
		return -1
	}
	return d.cells[r*d.width+cycle]
}

// probeAdvance walks op's usages at candidate cycle t. A contention-free
// walk reports (0, true). Otherwise it forward-scans the row of the
// first conflicting usage for its next free column and reports how far
// the candidate must advance before that usage clears — every skipped
// intermediate candidate provably conflicts on the same usage, so the
// jump preserves the exact first-free cycle. On a Modulo Reservation
// Table a fully reserved row reports -1: the usage can never clear at
// this II. Every cell examined, probe or row scan, is one work unit.
func (d *Discrete) probeAdvance(op, t int) (int, bool) {
	for _, u := range d.uses(op) {
		d.ctr.FirstFreeWork++
		if d.cellAt(u.Resource, t+u.Cycle) < 0 {
			continue
		}
		if d.ii > 0 {
			for delta := 1; delta < d.ii; delta++ {
				d.ctr.FirstFreeWork++
				if d.cellAt(u.Resource, t+u.Cycle+delta) < 0 {
					return delta, false
				}
			}
			return -1, false
		}
		for delta := 1; ; delta++ {
			c := t + u.Cycle + delta
			if c >= d.width {
				return delta, false // beyond the table: free
			}
			d.ctr.FirstFreeWork++
			if d.cells[u.Resource*d.width+c] < 0 {
				return delta, false
			}
		}
	}
	return 0, true
}

// probeFree is probeAdvance without the row scan: a plain usage walk
// answering only free/blocked. firstFreeAlt switches to it once the
// group's advance floor of 1 is established — knowing how far a later
// alternative's blockage extends can no longer change the minimum.
func (d *Discrete) probeFree(op, t int) bool {
	for _, u := range d.uses(op) {
		d.ctr.FirstFreeWork++
		if d.cellAt(u.Resource, t+u.Cycle) >= 0 {
			return false
		}
	}
	return true
}

// FirstFreeWithAlt implements RangeQuerier.
func (d *Discrete) FirstFreeWithAlt(origOp, lo, hi int) (int, int, bool) {
	if origOp < 0 || origOp >= len(d.e.AltGroup) {
		panic(fmt.Sprintf("query: FirstFreeWithAlt: original op index %d out of range", origOp))
	}
	if d.ii == 0 && lo < 0 {
		panic(fmt.Sprintf("query: negative cycle %d on linear reserved table", lo))
	}
	d.ctr.FirstFreeWithAltCalls++
	d.met.OnFirstFreeWithAlt()
	group := d.e.AltGroup[origOp]
	w0 := d.ctr.FirstFreeWork
	op, cycle, altIdx, ok := d.firstFreeAlt(group, lo, hi)
	d.ctr.FirstFreeCycles += RangeProbesAlt(lo, hi, cycle, altIdx, len(group), ok)
	d.met.OnFirstFree(d.ctr.FirstFreeWork-w0, 0)
	return op, cycle, ok
}

func (d *Discrete) firstFreeAlt(group []int, lo, hi int) (int, int, int, bool) {
	if hi < lo {
		return -1, 0, 0, false
	}
	hiEff := d.effectiveHi(lo, hi)
	for t := lo; t <= hiEff; {
		// Alternatives are probed in group order so the first free one at
		// the hit cycle matches the naive CheckWithAlt tie-break. A
		// blocked alternative contributes the cycle its blocking usage
		// clears; the minimum over the group is the next candidate where
		// anything can change.
		adv := -1
		for ai, op := range group {
			if d.c.selfConf[op] {
				d.ctr.FirstFreeWork++
				continue
			}
			if adv == 1 {
				// The advance floor is already 1; only the free/blocked
				// answer matters for the remaining alternatives.
				if d.probeFree(op, t) {
					return op, t, ai, true
				}
				continue
			}
			a, free := d.probeAdvance(op, t)
			if free {
				return op, t, ai, true
			}
			if a > 0 && (adv < 0 || a < adv) {
				adv = a
			}
		}
		if adv < 0 {
			return -1, 0, 0, false
		}
		t += adv
	}
	return -1, 0, 0, false
}

var _ RangeQuerier = (*Discrete)(nil)
