package query

import (
	"math/rand"
	"testing"

	"repro/internal/machines"
	"repro/internal/resmodel"
)

// newBitvectors builds the k=1 and densest-k bitvector modules (the two
// packing extremes) for a machine at the given II.
func newBitvectors(t *testing.T, e *resmodel.Expanded, ii int) map[string]*Bitvector {
	t.Helper()
	out := map[string]*Bitvector{}
	for _, k := range []int{1, MaxCyclesPerWord(len(e.Resources), 64)} {
		if k < 1 {
			continue
		}
		bv, err := NewBitvector(e, k, 64, ii)
		if err != nil {
			t.Fatalf("NewBitvector(k=%d): %v", k, err)
		}
		out["k"+string(rune('0'+k))] = bv
	}
	return out
}

// checkOccInvariant verifies the occupancy summary's defining property:
// bit w of occ is set iff word w of the backing table is non-zero.
func checkOccInvariant(t *testing.T, name string, b *Bitvector) {
	t.Helper()
	backing := b.reserved
	if b.ii > 0 {
		backing = b.mirror
	}
	for wi, word := range backing {
		got := b.occ[wi>>6]&(1<<uint(wi&63)) != 0
		if got != (word != 0) {
			t.Fatalf("%s: occ invariant broken at word %d: word=%#x, summary bit %v",
				name, wi, word, got)
		}
	}
	for wi := len(backing); wi < 64*len(b.occ); wi++ {
		if b.occ[wi>>6]&(1<<uint(wi&63)) != 0 {
			t.Fatalf("%s: occ bit set for word %d beyond the %d-word table",
				name, wi, len(backing))
		}
	}
}

// TestOccupancySummaryInvariant drives random Assign/Free/AssignFree/
// range-query sequences over linear and modulo tables and re-derives the
// summary bitmap from the backing words after every mutation.
func TestOccupancySummaryInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for mi := 0; mi < 8; mi++ {
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		for _, ii := range []int{0, 1 + rng.Intn(8)} {
			for name, b := range newBitvectors(t, e, ii) {
				span := 40
				if ii > 0 {
					span = 3 * ii
				}
				live := map[int]instance{}
				id := 0
				for step := 0; step < 300; step++ {
					op := rng.Intn(len(e.Ops))
					cyc := rng.Intn(span)
					switch rng.Intn(5) {
					case 0, 1: // assign if free
						if b.Schedulable(op) && b.Check(op, cyc) {
							b.Assign(op, cyc, id)
							live[id] = instance{op, cyc}
							id++
						}
					case 2: // free a live instance
						for fid, in := range live {
							b.Free(in.op, in.cycle, fid)
							delete(live, fid)
							break
						}
					case 3: // range query (must not mutate)
						b.FirstFree(op, cyc, cyc+rng.Intn(2*span))
					case 4:
						b.FirstFreeWithAlt(rng.Intn(len(e.AltGroup)), cyc, cyc+rng.Intn(span))
					}
					checkOccInvariant(t, name, b)
				}
				b.Reset()
				checkOccInvariant(t, name+"-reset", b)
			}
		}
	}
}

// TestOccupancySummaryInvariantAssignFree is the same walk through the
// AssignFree path — optimistic mode, the mode transition, update-mode
// evictions and rollbacks all maintain the summary.
func TestOccupancySummaryInvariantAssignFree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for mi := 0; mi < 8; mi++ {
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		for _, ii := range []int{0, 1 + rng.Intn(8)} {
			for name, b := range newBitvectors(t, e, ii) {
				span := 40
				if ii > 0 {
					span = 3 * ii
				}
				for step := 0; step < 200; step++ {
					op := rng.Intn(len(e.Ops))
					if !b.Schedulable(op) {
						continue
					}
					b.AssignFree(op, rng.Intn(span), step)
					checkOccInvariant(t, name, b)
				}
			}
		}
	}
}

// TestSummaryScanDifferential pins the fast path's contract: with the
// summary scan disabled, every FirstFree/FirstFreeWithAlt answer and the
// FirstFreeCycles probe accounting are byte-identical to the enabled
// scan, while the enabled scan performs no more work and records its
// skips. The partial schedules are refilled identically on both modules.
func TestSummaryScanDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	totalSkips := int64(0)
	for mi := 0; mi < 10; mi++ {
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		for _, ii := range []int{0, 1 + rng.Intn(8)} {
			for name, on := range newBitvectors(t, e, ii) {
				off := newBitvectors(t, e, ii)[name]
				off.SetSummaryScan(false)
				fillRandom(rand.New(rand.NewSource(int64(mi))), on, e, ii, 25)
				fillRandom(rand.New(rand.NewSource(int64(mi))), off, e, ii, 25)
				for trial := 0; trial < 80; trial++ {
					lo := rng.Intn(45)
					if ii > 0 {
						lo = rng.Intn(6*ii) - 3*ii
					}
					hi := lo + rng.Intn(40) - 2
					cyc0on, cyc0off := on.ctr.FirstFreeCycles, off.ctr.FirstFreeCycles
					work0on, work0off := on.ctr.FirstFreeWork, off.ctr.FirstFreeWork
					if trial%2 == 0 {
						op := rng.Intn(len(e.Ops))
						gc, gok := on.FirstFree(op, lo, hi)
						wc, wok := off.FirstFree(op, lo, hi)
						if gok != wok || (wok && gc != wc) {
							t.Fatalf("machine %d ii=%d %s: FirstFree(%d,%d,%d) summary (%d,%v) != plain (%d,%v)",
								mi, ii, name, op, lo, hi, gc, gok, wc, wok)
						}
					} else {
						origOp := rng.Intn(len(e.AltGroup))
						gop, gc, gok := on.FirstFreeWithAlt(origOp, lo, hi)
						wop, wc, wok := off.FirstFreeWithAlt(origOp, lo, hi)
						if gok != wok || (wok && (gc != wc || gop != wop)) {
							t.Fatalf("machine %d ii=%d %s: FirstFreeWithAlt(%d,%d,%d) summary (%d,%d,%v) != plain (%d,%d,%v)",
								mi, ii, name, origOp, lo, hi, gop, gc, gok, wop, wc, wok)
						}
					}
					don, doff := on.ctr.FirstFreeCycles-cyc0on, off.ctr.FirstFreeCycles-cyc0off
					if don != doff {
						t.Fatalf("machine %d ii=%d %s: probe accounting diverged: summary %d, plain %d",
							mi, ii, name, don, doff)
					}
					if won, woff := on.ctr.FirstFreeWork-work0on, off.ctr.FirstFreeWork-work0off; won > woff {
						t.Fatalf("machine %d ii=%d %s: summary scan did MORE work (%d) than plain scan (%d)",
							mi, ii, name, won, woff)
					}
				}
				if off.ctr.FirstFreeSkips != 0 {
					t.Fatalf("%s: disabled summary scan recorded %d skips", name, off.ctr.FirstFreeSkips)
				}
				totalSkips += on.ctr.FirstFreeSkips
			}
		}
	}
	if totalSkips == 0 {
		t.Fatal("summary scan never skipped a candidate across the whole differential — fast path dead")
	}
}

// TestResetDoesNotAllocate pins the arena's core assumption: resetting a
// warmed module — including one that grew its linear table, entered
// update mode and evicted — allocates nothing, and the module behaves
// exactly like a fresh one afterwards.
func TestResetDoesNotAllocate(t *testing.T) {
	e := machines.Cydra5().Expand()
	type step struct{ op, cycle int }
	rng := rand.New(rand.NewSource(5))
	steps := make([]step, 40)
	for i := range steps {
		steps[i] = step{op: rng.Intn(len(e.Ops)), cycle: rng.Intn(50)}
	}
	exercise := func(m Module) {
		for i, s := range steps {
			if m.Schedulable(s.op) {
				m.AssignFree(s.op, s.cycle, i)
			}
		}
	}
	bv, err := NewBitvector(e, MaxCyclesPerWord(len(e.Resources), 64), 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]Module{"bitvector": bv, "discrete": NewDiscrete(e, 0)} {
		exercise(m) // warm: grow tables, enter update mode, populate instances
		if n := testing.AllocsPerRun(100, func() {
			m.Reset()
			exercise(m)
		}); n != 0 {
			t.Errorf("%s: reset+reuse allocated %v times per run, want 0", name, n)
		}
		m.Reset()
		// A reset module must answer like a fresh one.
		fresh := NewDiscrete(e, 0)
		if name == "bitvector" {
			f, err := NewBitvector(e, MaxCyclesPerWord(len(e.Resources), 64), 64, 0)
			if err != nil {
				t.Fatal(err)
			}
			exercise(f)
			exercise(m)
			if got, want := m.Counters(), f.Counters(); *got != *want {
				t.Errorf("%s: counters after reset+reuse = %+v, fresh = %+v", name, *got, *want)
			}
			continue
		}
		exercise(fresh)
		exercise(m)
		if got, want := m.Counters(), fresh.Counters(); *got != *want {
			t.Errorf("%s: counters after reset+reuse = %+v, fresh = %+v", name, *got, *want)
		}
	}
}
