package query

import (
	"fmt"
	"sync"

	"repro/internal/resmodel"
)

// This file is the representation-selection layer: a small registry of
// named module backends plus a measured, deterministic chooser. The
// paper argues (§2) that the reduced reservation tables beat the
// forbidden-latency automaton on description size while preserving
// constraints; the selector turns that comparison into a per-machine
// decision by running the same short synthetic probe trace on every
// feasible backend and picking the one with the lowest counted work per
// naive-equivalent probe. Costs come from the modules' own work
// counters — never wall-clock — so the choice is identical on every
// host, at every worker count, and across reruns.

// BackendOpts carries the construction knobs a backend may consume.
// Zero values mean "backend default" (wordBits 64, k packed to
// MaxCyclesPerWord, the automaton's default state budget).
type BackendOpts struct {
	II        int
	K         int
	WordBits  int
	MaxStates int
}

// BackendFactory builds a fresh module over e, or reports why this
// backend cannot serve the description (state budget exceeded, packing
// constraint violated, ...).
type BackendFactory func(e *resmodel.Expanded, o BackendOpts) (Module, error)

var (
	backendMu sync.RWMutex
	backends  = map[string]BackendFactory{}
)

// RegisterBackend installs a named module backend. The discrete and
// bitvector backends register here; the automaton package registers
// "fsa" from its init, which keeps the package dependency one-way
// (automaton imports query) while still letting Select reach it.
func RegisterBackend(name string, f BackendFactory) {
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("query: duplicate backend %q", name))
	}
	backends[name] = f
}

// LookupBackend returns the factory registered under name.
func LookupBackend(name string) (BackendFactory, bool) {
	backendMu.RLock()
	defer backendMu.RUnlock()
	f, ok := backends[name]
	return f, ok
}

func init() {
	RegisterBackend("discrete", func(e *resmodel.Expanded, o BackendOpts) (Module, error) {
		return NewDiscrete(e, o.II), nil
	})
	RegisterBackend("bitvector", func(e *resmodel.Expanded, o BackendOpts) (Module, error) {
		wordBits := o.WordBits
		if wordBits == 0 {
			wordBits = 64
		}
		k := o.K
		if k == 0 {
			k = MaxCyclesPerWord(len(e.Resources), wordBits)
		}
		return NewBitvector(e, k, wordBits, o.II)
	})
}

// DefaultMaxFSAStates bounds the total interned forward+reverse states
// the selector will admit for the FSA backend. 2^16 keeps the small
// real machines (the paper's MIPS and PA-RISC reductions, the worked
// example) eligible while deterministically excluding the ones whose
// automata blow up (the Cydra 5 exceeds 2^20 states in every variant).
const DefaultMaxFSAStates = 1 << 16

// Policy configures Select. Representation "" and "auto" both mean
// measured auto-selection; naming a backend pins it.
type Policy struct {
	Representation string
	II             int
	K              int
	WordBits       int
	// Dangling declares that the caller will seed dangling windows
	// (DanglingSeeder). The FSA pair module cannot honor them — a
	// dangling window needs up to O(span²) extra interned states — so a
	// dangling policy deterministically excludes "fsa".
	Dangling bool
	// MaxFSAStates overrides DefaultMaxFSAStates (0 = default).
	MaxFSAStates int
}

// BackendCost is one backend's measured calibration outcome.
type BackendCost struct {
	Backend    string  `json:"backend"`
	Feasible   bool    `json:"feasible"`
	Reason     string  `json:"reason,omitempty"` // why infeasible
	Probes     int64   `json:"probes,omitempty"` // naive-equivalent probes + basic calls
	Work       int64   `json:"work,omitempty"`   // counted work units over the trace
	CostPerOp  float64 `json:"cost_per_op,omitempty"`
	States     int     `json:"states,omitempty"` // FSA interned states (fwd+rev)
	StateBytes int     `json:"state_bytes,omitempty"`
}

// Calibration is the full measured outcome for one (description,
// policy) pair: every candidate backend's cost on the shared probe
// trace and the chosen winner.
type Calibration struct {
	Backends []BackendCost `json:"backends"`
	Winner   string        `json:"winner"`
}

// Cost returns the calibration entry for a backend name.
func (c *Calibration) Cost(backend string) *BackendCost {
	for i := range c.Backends {
		if c.Backends[i].Backend == backend {
			return &c.Backends[i]
		}
	}
	return nil
}

// Selection is Select's result: a fresh module of the chosen backend.
// Cal is non-nil only when auto-selection actually calibrated.
type Selection struct {
	Module  Module
	Backend string
	Cal     *Calibration
}

// calKey identifies one cached calibration. The expanded description is
// keyed by pointer identity, exactly like compileFor: callers that want
// cache hits reuse the *Expanded (machineEntry, CachedReduce and the
// arenas already do).
type calKey struct {
	e            *resmodel.Expanded
	ii, k, wBits int
	dangling     bool
	maxStates    int
}

var (
	calMu    sync.Mutex
	calCache = map[calKey]*Calibration{}
)

const calCacheCap = 512

// autoCandidates is the fixed candidate order. It is also the
// tie-break: on equal cost the earlier name wins, so selection never
// depends on map order.
var autoCandidates = [...]string{"discrete", "bitvector", "fsa"}

// Select builds a query module for e under p. A pinned representation
// is constructed directly; "auto" (or "") measures every feasible
// registered backend on a deterministic synthetic trace and returns the
// cheapest. Auto-selection can always fall back to discrete, so it
// never fails; calibrations are cached per (description, policy) with
// pointer identity on e.
func Select(e *resmodel.Expanded, p Policy) (*Selection, error) {
	rep := p.Representation
	if rep == "" {
		rep = "auto"
	}
	if rep != "auto" {
		f, ok := LookupBackend(rep)
		if !ok {
			return nil, fmt.Errorf("query: unknown backend %q", rep)
		}
		m, err := f(e, p.opts())
		if err != nil {
			return nil, err
		}
		return &Selection{Module: m, Backend: rep}, nil
	}

	cal := calibrate(e, p)
	f, _ := LookupBackend(cal.Winner)
	m, err := f(e, p.opts())
	if err != nil {
		// The winner built during calibration; a failure here means the
		// backend is nondeterministic, which is a bug worth surfacing.
		return nil, fmt.Errorf("query: auto-selected backend %q failed to rebuild: %w", cal.Winner, err)
	}
	return &Selection{Module: m, Backend: cal.Winner, Cal: cal}, nil
}

func (p Policy) opts() BackendOpts {
	maxStates := p.MaxFSAStates
	if maxStates == 0 {
		maxStates = DefaultMaxFSAStates
	}
	return BackendOpts{II: p.II, K: p.K, WordBits: p.WordBits, MaxStates: maxStates}
}

func (p Policy) key(e *resmodel.Expanded) calKey {
	o := p.opts()
	return calKey{e: e, ii: o.II, k: o.K, wBits: o.WordBits, dangling: p.Dangling, maxStates: o.MaxStates}
}

// calibrate measures every candidate backend on the shared trace,
// caching the outcome. The cache mirrors compileFor: bounded, dropped
// wholesale, double-checked around the unlocked measurement.
func calibrate(e *resmodel.Expanded, p Policy) *Calibration {
	key := p.key(e)
	calMu.Lock()
	if got, ok := calCache[key]; ok {
		calMu.Unlock()
		return got
	}
	calMu.Unlock()

	cal := measure(e, p)

	calMu.Lock()
	if got, ok := calCache[key]; ok {
		calMu.Unlock()
		return got
	}
	if len(calCache) >= calCacheCap {
		clear(calCache)
	}
	calCache[key] = cal
	calMu.Unlock()
	return cal
}

func measure(e *resmodel.Expanded, p Policy) *Calibration {
	o := p.opts()
	cal := &Calibration{}
	// Discrete is the reference: always feasible, and its trace answers
	// define correctness for the others.
	var ref []traceStep
	for _, name := range autoCandidates {
		bc := BackendCost{Backend: name}
		switch {
		case name == "fsa" && o.II != 0:
			bc.Reason = "modulo schedule (FSA pair module is linear-only)"
		case name == "fsa" && p.Dangling:
			bc.Reason = "dangling usages (FSA pair module cannot seed dangling windows)"
		default:
			f, ok := LookupBackend(name)
			if !ok {
				bc.Reason = "backend not registered"
				break
			}
			m, err := f(e, o)
			if err != nil {
				bc.Reason = err.Error()
				break
			}
			// Calibrate the bitvector on the word-per-probe scan: the
			// verdict scan charges per 64-candidate block, a different
			// currency that would skew the cross-backend cost comparison
			// (and perturb the committed CROSSOVER.md frontier) without
			// changing any answer. Production modules returned by Select
			// are fresh constructions with the verdict scan enabled.
			if bv, ok := m.(*Bitvector); ok {
				bv.SetVerdictScan(false)
			}
			steps := runTrace(m, e, o.II)
			if ref == nil {
				ref = steps
			} else if !traceEqual(ref, steps) {
				// Defensive: a backend that disagrees with discrete on the
				// trace would break byte-identical scheduling; never pick it.
				bc.Reason = "trace answers diverge from discrete"
				break
			}
			ctr := m.Counters()
			bc.Feasible = true
			bc.Work = ctr.TotalWork() + ctr.FirstFreeWork
			bc.Probes = ctr.TotalCalls() + ctr.FirstFreeCycles
			if bc.Probes > 0 {
				bc.CostPerOp = float64(bc.Work) / float64(bc.Probes)
			}
			if mf, ok := m.(MemoryFootprint); ok {
				bc.StateBytes = mf.StateBytes()
			}
			if as, ok := m.(interface{ AutomatonStates() int }); ok {
				bc.States = as.AutomatonStates()
			}
		}
		cal.Backends = append(cal.Backends, bc)
	}
	best := -1
	for i, bc := range cal.Backends {
		if !bc.Feasible {
			continue
		}
		if best < 0 || bc.CostPerOp < cal.Backends[best].CostPerOp {
			best = i
		}
	}
	// Discrete always builds, so best is always set.
	cal.Winner = cal.Backends[best].Backend
	return cal
}

// traceStep records one probe-trace decision for cross-backend
// verification.
type traceStep struct {
	op, cycle int
	ok        bool
}

// traceSteps is the length of the calibration trace: long enough that
// per-op costs dominate construction noise in the counters, short
// enough that calibration is paid once per machine and forgotten.
const traceSteps = 48

// runTrace drives m through a fixed, seeded scheduling-like workload:
// range queries (or their per-cycle fallback), assigns, spot checks and
// frees, mimicking the list scheduler's mix. The linear congruential
// generator makes the trace a pure function of the description, so
// every backend sees the identical request sequence.
func runTrace(m Module, e *resmodel.Expanded, ii int) []traceStep {
	rng := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	rq, hasRange := m.(RangeQuerier)
	window := 63
	if ii > 0 {
		window = ii - 1
	}
	type placedInst struct{ op, cycle int }
	var placed []placedInst
	steps := make([]traceStep, 0, traceSteps)
	id := 0
	front := 0
	for i := 0; i < traceSteps; i++ {
		origOp := next(len(e.AltGroup))
		lo := front + next(4)
		if ii > 0 {
			// Modulo: scan one full period from a random start, as the IMS
			// slot scan does.
			lo = next(ii)
			window = ii - 1
		}
		var (
			op, cycle int
			ok        bool
		)
		if hasRange {
			op, cycle, ok = rq.FirstFreeWithAlt(origOp, lo, lo+window)
		} else {
			for t := lo; t <= lo+window; t++ {
				if a, good := m.CheckWithAlt(origOp, t); good {
					op, cycle, ok = a, t, true
					break
				}
			}
		}
		steps = append(steps, traceStep{op: op, cycle: cycle, ok: ok})
		if ok && m.Check(op, cycle) {
			m.Assign(op, cycle, id)
			placed = append(placed, placedInst{op: op, cycle: cycle})
			id++
		}
		// Spot checks inside the contended band: the exact searcher and
		// the IMS slot scan both issue point probes that a range scan
		// cannot amortize, and they dominate real query mixes (the
		// paper's Table 6 metric is res-uses per check). Range hits and
		// misses alone would overweight backends with good scans.
		for j := 0; j < 2; j++ {
			spotOp := next(len(e.Ops))
			spot := front + next(6)
			if ii > 0 {
				spot = next(ii)
			}
			steps = append(steps, traceStep{op: spotOp, cycle: spot, ok: m.Check(spotOp, spot)})
		}
		if i%6 == 5 {
			front++
		}
		if i%5 == 4 && len(placed) > 0 {
			// Free the oldest instance, as a backtracking scheduler would.
			oldest := placed[0]
			placed = placed[1:]
			m.Free(oldest.op, oldest.cycle, id-len(placed)-1)
		}
	}
	return steps
}

func traceEqual(a, b []traceStep) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
