package query

import (
	"testing"

	"repro/internal/machines"
	"repro/internal/obs"
)

// fillDiscrete is fillBitvector's owner-cell twin: a Cydra-5 Discrete MRT
// at the given ii, filled deterministically to steady state.
func fillDiscrete(tb testing.TB, ii int) *Discrete {
	tb.Helper()
	e := machines.Cydra5().Expand()
	d := NewDiscrete(e, ii)
	id := 0
	for cyc := 0; cyc < 3*ii; cyc++ {
		op := (cyc * 13) % len(e.Ops)
		if d.Schedulable(op) && d.Check(op, cyc) {
			d.Assign(op, cyc, id)
			id++
		}
	}
	return d
}

// withMetrics runs fn with the default registry enabled, then disables
// and resets it. Module construction must happen inside fn so the
// instrumentation handles are captured while metrics are on.
func withMetrics(b *testing.B, fn func()) {
	b.Helper()
	obs.Default().SetEnabled(true)
	defer func() {
		obs.Default().SetEnabled(false)
		obs.Default().Reset()
	}()
	fn()
}

// The BenchmarkCheck*/BenchmarkAssign* pairs below pin the observability
// bargain: with metrics disabled (the default; modules hold nil metric
// handles) the hot path must report 0 allocs/op and stay within noise of
// the uninstrumented baseline; the *Metrics variants price the enabled
// path, which is allowed to pay for its atomics but not to allocate
// either.

func BenchmarkCheckDiscrete(b *testing.B) {
	d := fillDiscrete(b, 24)
	ops := len(d.e.Ops)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Check(i%ops, i%24)
	}
}

func BenchmarkCheckDiscreteMetrics(b *testing.B) {
	withMetrics(b, func() {
		d := fillDiscrete(b, 24)
		ops := len(d.e.Ops)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Check(i%ops, i%24)
		}
		b.StopTimer()
	})
}

func BenchmarkCheckBitvector(b *testing.B) {
	mod := fillBitvector(b, 24)
	ops := len(mod.e.Ops)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod.Check(i%ops, i%24)
	}
}

func BenchmarkCheckBitvectorMetrics(b *testing.B) {
	withMetrics(b, func() {
		mod := fillBitvector(b, 24)
		ops := len(mod.e.Ops)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mod.Check(i%ops, i%24)
		}
		b.StopTimer()
	})
}

// freeSlot finds an (op, cycle) that checks free on the filled module.
func freeSlot(b *testing.B, m Module, ops, span int) (int, int) {
	b.Helper()
	for c := 0; c < span; c++ {
		for o := 0; o < ops; o++ {
			if m.Schedulable(o) && m.Check(o, c) {
				return o, c
			}
		}
	}
	b.Skip("no free slot on the filled MRT")
	return -1, -1
}

func BenchmarkAssignFreeDiscrete(b *testing.B) {
	d := fillDiscrete(b, 24)
	op, cyc := freeSlot(b, d, len(d.e.Ops), 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.AssignFree(op, cyc, 1<<20)
		d.Free(op, cyc, 1<<20)
	}
}

func BenchmarkAssignFreeDiscreteMetrics(b *testing.B) {
	withMetrics(b, func() {
		d := fillDiscrete(b, 24)
		op, cyc := freeSlot(b, d, len(d.e.Ops), 24)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.AssignFree(op, cyc, 1<<20)
			d.Free(op, cyc, 1<<20)
		}
		b.StopTimer()
	})
}

func BenchmarkAssignFreeBitvectorMetrics(b *testing.B) {
	withMetrics(b, func() {
		mod := fillBitvector(b, 24)
		op, cyc := freeSlot(b, mod, len(mod.e.Ops), 24)
		mod.Counters().Reset()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mod.AssignFree(op, cyc, 1<<20)
			mod.Free(op, cyc, 1<<20)
		}
		b.StopTimer()
	})
}

// TestDisabledMetricsHotPathZeroAlloc pins that the nil-handle
// instrumentation added to Check/Assign/Free keeps the disabled hot path
// allocation-free on both representations.
func TestDisabledMetricsHotPathZeroAlloc(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("default registry unexpectedly enabled")
	}
	d := fillDiscrete(t, 24)
	ops := len(d.e.Ops)
	i := 0
	if allocs := testing.AllocsPerRun(2000, func() {
		d.Check(i%ops, i%24)
		i++
	}); allocs != 0 {
		t.Errorf("Discrete.Check allocates %.1f per call with metrics disabled, want 0", allocs)
	}
	if d.met != nil {
		t.Error("Discrete built with metrics disabled holds a live metrics handle")
	}
	bv := fillBitvector(t, 24)
	if bv.met != nil {
		t.Error("Bitvector built with metrics disabled holds a live metrics handle")
	}
}

// TestEnabledMetricsCountCalls pins that an enabled module actually
// records per-operation call counts and probe work.
func TestEnabledMetricsCountCalls(t *testing.T) {
	obs.Default().SetEnabled(true)
	defer func() {
		obs.Default().SetEnabled(false)
		obs.Default().Reset()
	}()
	obs.Default().Reset()
	d := fillDiscrete(t, 24)
	ops := len(d.e.Ops)
	for i := 0; i < 100; i++ {
		d.Check(i%ops, i%24)
	}
	s := obs.Default().Snapshot()
	if got := s.Counter("query.discrete.check.calls"); got < 100 {
		t.Errorf("query.discrete.check.calls = %d, want >= 100", got)
	}
	h := s.Histogram("query.discrete.check.probe")
	if h == nil || h.Count < 100 {
		t.Errorf("query.discrete.check.probe missing or undercounted: %+v", h)
	}
}
