package query

import (
	"fmt"

	"repro/internal/resmodel"
)

// Discrete is the discrete-representation reserved table: one row per
// resource, one column per schedule cycle, each entry holding the id of
// the instance that reserved it (or -1). With II > 0 it is a Modulo
// Reservation Table: column indices wrap modulo II.
type Discrete struct {
	e     *resmodel.Expanded
	c     *compiled
	ii    int // 0 = linear
	nRes  int
	cells []int32 // cells[r*width + col] = instance id or -1
	width int
	inst  map[int]instance
	// evictScratch backs the slice AssignFree returns, reused across
	// calls so steady-state eviction allocates nothing.
	evictScratch []int
	ctr          Counters
	met          *ModuleObs // nil while metrics are disabled
}

// NewDiscrete creates a discrete-representation module for the machine.
// ii == 0 gives a linear reserved table that grows on demand; ii > 0 gives
// a Modulo Reservation Table with ii columns.
func NewDiscrete(e *resmodel.Expanded, ii int) *Discrete {
	if ii < 0 {
		panic(fmt.Sprintf("query: NewDiscrete: negative II %d", ii))
	}
	d := &Discrete{e: e, c: compileFor(e, ii), ii: ii, nRes: len(e.Resources), inst: map[int]instance{},
		met: NewModuleObs("discrete")}
	if ii > 0 {
		d.width = ii
	} else {
		d.width = d.c.maxSpan() + 16
	}
	d.cells = make([]int32, d.nRes*d.width)
	for i := range d.cells {
		d.cells[i] = -1
	}
	return d
}

// II returns the initiation interval (0 for a linear table).
func (d *Discrete) II() int { return d.ii }

// uses returns op's (folded) reservation-table usages.
func (d *Discrete) uses(op int) []resmodel.Usage { return d.c.uses[op] }

// col maps a schedule cycle to a column index, growing linear tables.
func (d *Discrete) col(cycle int) int {
	if d.ii > 0 {
		c := cycle % d.ii
		if c < 0 {
			c += d.ii
		}
		return c
	}
	if cycle < 0 {
		panic(fmt.Sprintf("query: negative cycle %d on linear reserved table", cycle))
	}
	if cycle >= d.width {
		d.growTo(cycle + 1)
	}
	return cycle
}

func (d *Discrete) growTo(width int) {
	nw := d.width
	for nw < width {
		nw *= 2
	}
	cells := make([]int32, d.nRes*nw)
	for i := range cells {
		cells[i] = -1
	}
	for r := 0; r < d.nRes; r++ {
		copy(cells[r*nw:r*nw+d.width], d.cells[r*d.width:(r+1)*d.width])
	}
	d.cells, d.width = cells, nw
}

func (d *Discrete) cell(r, cycle int) *int32 {
	return &d.cells[r*d.width+d.col(cycle)]
}

// Schedulable implements Module.
func (d *Discrete) Schedulable(op int) bool { return !d.c.selfConf[op] }

// Check implements Module. It aborts at the first contention; the number
// of usages tested is the work performed.
func (d *Discrete) Check(op, cycle int) bool {
	d.ctr.CheckCalls++
	w0 := d.ctr.CheckWork
	ok := d.check(op, cycle)
	d.met.OnCheck(d.ctr.CheckWork - w0)
	return ok
}

func (d *Discrete) check(op, cycle int) bool {
	if d.c.selfConf[op] {
		d.ctr.CheckWork++
		return false
	}
	for _, u := range d.uses(op) {
		d.ctr.CheckWork++
		if *d.cell(u.Resource, cycle+u.Cycle) >= 0 {
			return false
		}
	}
	return true
}

// Assign implements Module.
func (d *Discrete) Assign(op, cycle, id int) {
	d.ctr.AssignCalls++
	d.mustSchedulable(op)
	w0 := d.ctr.AssignWork
	for _, u := range d.uses(op) {
		d.ctr.AssignWork++
		*d.cell(u.Resource, cycle+u.Cycle) = int32(id)
	}
	d.inst[id] = instance{op, cycle}
	d.met.OnAssign(d.ctr.AssignWork - w0)
}

// AssignFree implements Module: conflicting instances are unscheduled and
// returned, then op is scheduled. The evictions' table walks count toward
// this call's work, as in the paper.
func (d *Discrete) AssignFree(op, cycle, id int) []int {
	d.ctr.AssignFreeCalls++
	d.mustSchedulable(op)
	w0 := d.ctr.AssignFreeWork
	evicted := d.evictScratch[:0]
	for _, u := range d.uses(op) {
		d.ctr.AssignFreeWork++
		c := d.cell(u.Resource, cycle+u.Cycle)
		if other := int(*c); other >= 0 && other != id {
			evicted = append(evicted, other)
			d.evict(other)
		}
		*c = int32(id)
	}
	d.evictScratch = evicted
	d.inst[id] = instance{op, cycle}
	d.ctr.Unscheduled += int64(len(evicted))
	if len(evicted) > 0 {
		d.ctr.AssignFreeEvicting++
	}
	d.met.OnAssignFree(d.ctr.AssignFreeWork-w0, len(evicted))
	return evicted
}

func (d *Discrete) mustSchedulable(op int) {
	if d.c.selfConf[op] {
		panic(fmt.Sprintf("query: op %q is unschedulable at II=%d (reservation table folds onto itself)",
			d.e.Ops[op].Name, d.ii))
	}
}

// evict releases all cells of a conflicting instance (internal: its work
// is charged to the enclosing AssignFree, per Section 8).
func (d *Discrete) evict(id int) {
	in, ok := d.inst[id]
	if !ok {
		panic(fmt.Sprintf("query: evicting unknown instance %d", id))
	}
	for _, u := range d.uses(in.op) {
		d.ctr.AssignFreeWork++
		c := d.cell(u.Resource, in.cycle+u.Cycle)
		if int(*c) == id {
			*c = -1
		}
	}
	delete(d.inst, id)
}

// Free implements Module.
func (d *Discrete) Free(op, cycle, id int) {
	d.ctr.FreeCalls++
	w0 := d.ctr.FreeWork
	for _, u := range d.uses(op) {
		d.ctr.FreeWork++
		c := d.cell(u.Resource, cycle+u.Cycle)
		if int(*c) == id {
			*c = -1
		}
	}
	delete(d.inst, id)
	d.met.OnFree(d.ctr.FreeWork - w0)
}

// CheckWithAlt implements Module.
func (d *Discrete) CheckWithAlt(origOp, cycle int) (int, bool) {
	d.ctr.CheckWithAltCalls++
	d.met.OnCheckWithAlt()
	return checkWithAlt(d, d.e, origOp, cycle)
}

// Counters implements Module.
func (d *Discrete) Counters() *Counters { return &d.ctr }

// Reset implements Module. Like Bitvector.Reset it clears in place —
// the cell grid keeps its grown width and the instance map its buckets
// — so an arena-held module resets without allocating.
func (d *Discrete) Reset() {
	for i := range d.cells {
		d.cells[i] = -1
	}
	clear(d.inst)
	d.ctr.Reset()
}

// Scheduled returns the number of currently scheduled instances.
func (d *Discrete) Scheduled() int { return len(d.inst) }

var _ Module = (*Discrete)(nil)

// AltGroupOf returns the expanded-op indices implementing the given
// original operation (used by schedulers for forced placements).
func (d *Discrete) AltGroupOf(origOp int) []int { return d.e.AltGroup[origOp] }

// StateBytes implements MemoryFootprint: 4 bytes per (resource, cycle)
// cell (flag folded into the owner field).
func (d *Discrete) StateBytes() int { return 4 * len(d.cells) }
