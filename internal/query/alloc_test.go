package query

import (
	"testing"

	"repro/internal/machines"
)

// fillModulo builds a Cydra-5 bitvector MRT and fills roughly half of it
// deterministically, returning the module plus an (op, cycle) probe that
// stays in steady state.
func fillBitvector(tb testing.TB, ii int) *Bitvector {
	tb.Helper()
	e := machines.Cydra5().Expand()
	k := MaxCyclesPerWord(len(e.Resources), 64)
	if k < 1 {
		k = 1
	}
	b, err := NewBitvector(e, k, 64, ii)
	if err != nil {
		tb.Fatal(err)
	}
	id := 0
	for cyc := 0; cyc < 3*ii; cyc++ {
		op := (cyc * 13) % len(e.Ops)
		if b.Schedulable(op) && b.Check(op, cyc) {
			b.Assign(op, cyc, id)
			id++
		}
	}
	return b
}

// TestBitvectorSteadyStateZeroAlloc pins the satellite guarantee: once
// the reserved table is warm, the check hot path (and free) performs no
// allocations per call.
func TestBitvectorSteadyStateZeroAlloc(t *testing.T) {
	b := fillBitvector(t, 24)
	ops := len(b.e.Ops)
	i := 0
	if allocs := testing.AllocsPerRun(2000, func() {
		b.Check(i%ops, i%24)
		i++
	}); allocs != 0 {
		t.Errorf("modulo Check allocates %.1f per call, want 0", allocs)
	}

	// Linear table: grow once up front, then check/assign/free cycles in
	// the grown region must not allocate (growWords is a no-op and the
	// eviction scratch is reused).
	lin := fillBitvector(t, 0)
	op := 0
	for ; op < ops && !lin.Schedulable(op); op++ {
	}
	lin.growWords(4096)
	j := 0
	if allocs := testing.AllocsPerRun(2000, func() {
		c := 500 + (j%100)*7
		if lin.check(op, c) {
			lin.orTable(op, c, &lin.ctr.AssignWork)
			lin.andNotTable(op, c, &lin.ctr.FreeWork)
		}
		j++
	}); allocs != 0 {
		t.Errorf("linear check/or/andNot allocates %.1f per call, want 0", allocs)
	}
}

// BenchmarkBitvectorCheck measures the check hot path with allocation
// reporting; the satellite criterion is 0 allocs/op at steady state.
func BenchmarkBitvectorCheck(b *testing.B) {
	mod := fillBitvector(b, 24)
	ops := len(mod.e.Ops)
	mod.Counters().Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod.Check(i%ops, i%24)
	}
}

// BenchmarkBitvectorAssignFree measures the optimistic assign&free cycle
// (assign into a free slot, then free it) with allocation reporting.
func BenchmarkBitvectorAssignFree(b *testing.B) {
	mod := fillBitvector(b, 24)
	ops := len(mod.e.Ops)
	op, cyc := -1, -1
	for c := 0; c < 24 && op < 0; c++ {
		for o := 0; o < ops; o++ {
			if mod.Schedulable(o) && mod.Check(o, c) {
				op, cyc = o, c
				break
			}
		}
	}
	if op < 0 {
		b.Skip("no free slot on the filled MRT")
	}
	mod.Counters().Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod.AssignFree(op, cyc, 1<<20)
		mod.Free(op, cyc, 1<<20)
	}
}
