package query

import "fmt"

// Dangling describes a resource requirement dangling into a basic block
// from a predecessor: Op was issued IssueCycle cycles BEFORE the block
// entry (IssueCycle < 0), so the usages of its reservation table that fall
// at or after the entry must be reserved in the successor's schedule.
//
// Handling boundary conditions precisely is a strength of the
// reservation-table representation (Section 1): the successor block's
// reserved table is simply initialized with the union of all dangling
// requirements of its predecessors, with no special cases. (The
// finite-state-automaton pair needs up to O(s^2) extra states for the
// same effect, which is why PairModule does not support it.)
type Dangling struct {
	Op         int // expanded-op index
	IssueCycle int // < 0: cycles before block entry
	ID         int // instance id for eviction bookkeeping
}

// DanglingSeeder is implemented by reserved-table modules that support
// precise basic-block boundary conditions.
type DanglingSeeder interface {
	Module
	// SeedDangling reserves the portions of the dangling operations'
	// reservation tables that extend into this block (cycle >= 0). It must
	// be called on an empty schedule, before any Assign.
	SeedDangling(ds []Dangling) error
}

// SeedDangling implements DanglingSeeder for the discrete representation.
func (d *Discrete) SeedDangling(ds []Dangling) error {
	if d.ii > 0 {
		return fmt.Errorf("query: dangling requirements apply to linear schedules, not Modulo Reservation Tables")
	}
	if len(d.inst) > 0 {
		return fmt.Errorf("query: SeedDangling on a non-empty schedule")
	}
	for _, dg := range ds {
		if dg.IssueCycle >= 0 {
			return fmt.Errorf("query: dangling op %d has non-negative issue cycle %d", dg.Op, dg.IssueCycle)
		}
		for _, u := range d.uses(dg.Op) {
			t := dg.IssueCycle + u.Cycle
			if t < 0 {
				continue // consumed in the predecessor block
			}
			c := d.cell(u.Resource, t)
			if *c >= 0 && int(*c) != dg.ID {
				return fmt.Errorf("query: dangling requirements of instances %d and %d collide on %s at cycle %d",
					*c, dg.ID, d.e.Resources[u.Resource], t)
			}
			*c = int32(dg.ID)
		}
		d.inst[dg.ID] = instance{dg.Op, dg.IssueCycle}
	}
	return nil
}

// SeedDangling implements DanglingSeeder for the bitvector representation.
// The bitvector flags carry no owner fields, so seeding tracks cell
// ownership on the side: like Discrete.SeedDangling, a (resource, cycle)
// cell reserved twice by the SAME instance — a reservation table that
// uses one cell twice, or the same id listed twice — is not a collision;
// only two distinct instances contending for a cell is.
func (b *Bitvector) SeedDangling(ds []Dangling) error {
	if b.ii > 0 {
		return fmt.Errorf("query: dangling requirements apply to linear schedules, not Modulo Reservation Tables")
	}
	if len(b.inst) > 0 {
		return fmt.Errorf("query: SeedDangling on a non-empty schedule")
	}
	owner := make(map[[2]int]int) // (resource, cycle) -> seeding instance id
	for _, dg := range ds {
		if dg.IssueCycle >= 0 {
			return fmt.Errorf("query: dangling op %d has non-negative issue cycle %d", dg.Op, dg.IssueCycle)
		}
		for _, u := range b.c.uses[dg.Op] {
			t := dg.IssueCycle + u.Cycle
			if t < 0 {
				continue
			}
			if b.reservedBit(u.Resource, t) {
				if prev := owner[[2]int{u.Resource, t}]; prev != dg.ID {
					return fmt.Errorf("query: dangling requirements of instances %d and %d collide on %s at cycle %d",
						prev, dg.ID, b.e.Resources[u.Resource], t)
				}
				continue
			}
			b.setBit(u.Resource, t)
			owner[[2]int{u.Resource, t}] = dg.ID
		}
		b.inst[dg.ID] = instance{dg.Op, dg.IssueCycle}
	}
	return nil
}

// SeedDanglingUnion seeds the union of dangling requirements from SEVERAL
// predecessor blocks. Unlike SeedDangling it tolerates collisions between
// entries: requirements from different predecessors may overlap on a
// resource cycle because at run time only one predecessor's operations are
// actually in flight — the union is the precise conservative boundary
// condition of Section 1 ("the union of all the resource requirements
// dangling from predecessor basic blocks"). The first owner of a cell wins
// for eviction bookkeeping.
func (d *Discrete) SeedDanglingUnion(ds []Dangling) error {
	if d.ii > 0 {
		return fmt.Errorf("query: dangling requirements apply to linear schedules, not Modulo Reservation Tables")
	}
	if len(d.inst) > 0 {
		return fmt.Errorf("query: SeedDanglingUnion on a non-empty schedule")
	}
	for _, dg := range ds {
		if dg.IssueCycle >= 0 {
			return fmt.Errorf("query: dangling op %d has non-negative issue cycle %d", dg.Op, dg.IssueCycle)
		}
		for _, u := range d.uses(dg.Op) {
			t := dg.IssueCycle + u.Cycle
			if t < 0 {
				continue
			}
			c := d.cell(u.Resource, t)
			if *c < 0 {
				*c = int32(dg.ID)
			}
		}
		d.inst[dg.ID] = instance{dg.Op, dg.IssueCycle}
	}
	return nil
}

// SeedDanglingUnion implements the multi-predecessor boundary condition
// for the bitvector representation: overlapping requirements from
// different predecessors OR into the same flags without error, exactly
// mirroring Discrete.SeedDanglingUnion.
func (b *Bitvector) SeedDanglingUnion(ds []Dangling) error {
	if b.ii > 0 {
		return fmt.Errorf("query: dangling requirements apply to linear schedules, not Modulo Reservation Tables")
	}
	if len(b.inst) > 0 {
		return fmt.Errorf("query: SeedDanglingUnion on a non-empty schedule")
	}
	for _, dg := range ds {
		if dg.IssueCycle >= 0 {
			return fmt.Errorf("query: dangling op %d has non-negative issue cycle %d", dg.Op, dg.IssueCycle)
		}
		for _, u := range b.c.uses[dg.Op] {
			t := dg.IssueCycle + u.Cycle
			if t < 0 {
				continue
			}
			b.setBit(u.Resource, t)
		}
		b.inst[dg.ID] = instance{dg.Op, dg.IssueCycle}
	}
	return nil
}

// DanglingFrom extracts the dangling requirements a scheduled block
// leaves for a successor entered at cycle `exit`: every instance issued
// before the exit whose reservation table extends past it, re-anchored to
// the successor's entry. Instance ids are preserved.
func DanglingFrom(instances map[int]struct{ Op, Cycle int }, span func(op int) int, exit int) []Dangling {
	var out []Dangling
	for id, in := range instances {
		if in.Cycle < exit && in.Cycle+span(in.Op) > exit {
			out = append(out, Dangling{Op: in.Op, IssueCycle: in.Cycle - exit, ID: id})
		}
	}
	return out
}

// Instances returns the currently scheduled instances of a discrete
// module (id -> op, cycle), for boundary-condition extraction.
func (d *Discrete) Instances() map[int]struct{ Op, Cycle int } {
	out := make(map[int]struct{ Op, Cycle int }, len(d.inst))
	for id, in := range d.inst {
		out[id] = struct{ Op, Cycle int }{in.op, in.cycle}
	}
	return out
}

// Instances returns the currently scheduled instances of a bitvector
// module.
func (b *Bitvector) Instances() map[int]struct{ Op, Cycle int } {
	out := make(map[int]struct{ Op, Cycle int }, len(b.inst))
	for id, in := range b.inst {
		out[id] = struct{ Op, Cycle int }{in.op, in.cycle}
	}
	return out
}
