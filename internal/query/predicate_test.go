package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/resmodel"
)

func TestPredSetBasics(t *testing.T) {
	ps := NewPredSet(4)
	ps.MarkDisjoint(1, 2)
	if !ps.Disjoint(1, 2) || !ps.Disjoint(2, 1) {
		t.Error("disjointness not symmetric")
	}
	if ps.Disjoint(1, 3) || ps.Disjoint(0, 1) {
		t.Error("unrelated predicates reported disjoint")
	}
	for _, f := range []func(){
		func() { ps.MarkDisjoint(0, 1) },
		func() { ps.MarkDisjoint(2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid MarkDisjoint did not panic")
				}
			}()
			f()
		}()
	}
}

// TestPredicatedSharing: the EMS effect — two operations from disjoint
// IF-converted paths share a resource in the same MRT cell, which the
// unpredicated table forbids.
func TestPredicatedSharing(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	st0 := e.OpIndex("st.w.0") // port-0 store alternative
	if st0 < 0 {
		t.Fatal("st.w.0 missing")
	}
	ps := NewPredSet(3)
	ps.MarkDisjoint(1, 2) // then-path and else-path predicates

	ii := 4
	pm := NewPredicated(e, ps, ii)
	pm.Assign(st0, 0, 1, 10) // store under the then-predicate
	// Same cell under the disjoint else-predicate: allowed.
	if !pm.Check(st0, 0, 2) {
		t.Error("disjoint-predicate store rejected")
	}
	// Same cell under the always-true predicate: contention.
	if pm.Check(st0, 0, 0) {
		t.Error("always-true store accepted on an occupied cell")
	}
	// Same cell under the SAME predicate: contention.
	if pm.Check(st0, 0, 1) {
		t.Error("same-predicate store accepted on an occupied cell")
	}
	pm.Assign(st0, 0, 2, 11)
	if pm.Scheduled() != 2 {
		t.Errorf("Scheduled = %d, want 2", pm.Scheduled())
	}
	// The unpredicated table cannot fold these two stores into II=4...
	d := NewDiscrete(e, ii)
	d.Assign(st0, 0, 10)
	if d.Check(st0, 0) {
		t.Error("unpredicated table allowed the overlap")
	}
	// ...so EMS halves the store port pressure for diamond code.
	pm.Free(st0, 0, 10)
	// The pred-2 reservation remains: pred 1 (disjoint) fits, pred 0 does not.
	if !pm.Check(st0, 0, 1) {
		t.Error("freed predicate slot not reusable by a disjoint predicate")
	}
	if pm.Check(st0, 0, 0) {
		t.Error("always-true op accepted against the remaining pred-2 reservation")
	}
}

// TestPredicatedModulo: predicate sharing respects MRT wraparound and
// negative cycles.
func TestPredicatedModulo(t *testing.T) {
	e := machines.Example().Expand()
	bop := e.OpIndex("B")
	ps := NewPredSet(3)
	ps.MarkDisjoint(1, 2)
	pm := NewPredicated(e, ps, 5)
	pm.Assign(bop, -5, 1, 1) // column 0
	if pm.Check(bop, 0, 1) {
		t.Error("same predicate across wrap accepted")
	}
	if !pm.Check(bop, 0, 2) {
		t.Error("disjoint predicate across wrap rejected")
	}
}

// Property: with every predicate pairwise non-disjoint (only predicate 0
// used), the predicated module answers exactly like the discrete module —
// EMS degenerates to the paper's base representation.
func TestQuickPredicatedDegeneratesToDiscrete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		ii := rng.Intn(8)
		ps := NewPredSet(1)
		pm := NewPredicated(e, ps, ii)
		d := NewDiscrete(e, ii)
		id := 1
		for step := 0; step < 80; step++ {
			op := rng.Intn(len(e.Ops))
			cyc := rng.Intn(15)
			if pm.Check(op, cyc, 0) != d.Check(op, cyc) {
				return false
			}
			if d.Schedulable(op) && d.Check(op, cyc) && rng.Intn(2) == 0 {
				pm.Assign(op, cyc, 0, id)
				d.Assign(op, cyc, id)
				id++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: reductions preserve predicated scheduling constraints too —
// contention stays pairwise, so the reduced description's predicated
// module answers every query identically.
func TestQuickPredicatedReducedEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		red := core.Reduce(e, core.Objective{Kind: core.ResUses})
		if red.Verify() != nil {
			return false
		}
		ps := NewPredSet(4)
		ps.MarkDisjoint(1, 2)
		ps.MarkDisjoint(2, 3)
		ii := 1 + rng.Intn(8)
		po := NewPredicated(e, ps, ii)
		pr := NewPredicated(red.Reduced, ps, ii)
		id := 1
		for step := 0; step < 80; step++ {
			op := rng.Intn(len(e.Ops))
			cyc := rng.Intn(12)
			pred := rng.Intn(4)
			want := po.Check(op, cyc, pred)
			if pr.Check(op, cyc, pred) != want {
				return false
			}
			if want && rng.Intn(2) == 0 {
				po.Assign(op, cyc, pred, id)
				pr.Assign(op, cyc, pred, id)
				id++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the fast check-with-alt path gives exactly the same answers
// and alternative choices as the fallback.
func TestQuickFastAltEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := resmodel.DefaultRandomConfig()
		cfg.AltProb = 0.7 // make alternatives common
		e := resmodel.Random(rng, cfg).Expand()
		ii := rng.Intn(8)
		fast, err := NewBitvector(e, 1, 64, ii)
		if err != nil {
			return false
		}
		fast.EnableFastAlt()
		slow, err := NewBitvector(e, 1, 64, ii)
		if err != nil {
			return false
		}
		id := 1
		for step := 0; step < 100; step++ {
			orig := rng.Intn(len(e.AltGroup))
			cyc := rng.Intn(12)
			opF, okF := fast.CheckWithAlt(orig, cyc)
			opS, okS := slow.CheckWithAlt(orig, cyc)
			if okF != okS || (okF && opF != opS) {
				return false
			}
			if okF && rng.Intn(2) == 0 {
				fast.Assign(opF, cyc, id)
				slow.Assign(opS, cyc, id)
				id++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
