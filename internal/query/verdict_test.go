package query

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/resmodel"
)

// rowsMatchFlags verifies the verdict-row invariant: every maintained
// row bit equals the reserved-flags occupancy the module itself reports
// through reservedBit — bit p of resource r's row is busy(p mod II) on
// modulo tables (three images over [0, 3*II)) and busy(p) on linear
// ones, with everything beyond the written region zero.
func rowsMatchFlags(t *testing.T, b *Bitvector, ctx string) {
	t.Helper()
	lim := b.rowW * 64
	if b.ii > 0 {
		lim = 3 * b.ii
	}
	for r := 0; r < b.nRes; r++ {
		row := b.rows[r*b.rowW : (r+1)*b.rowW]
		for p := 0; p < b.rowW*64; p++ {
			got := row[p>>6]>>(p&63)&1 == 1
			want := p < lim && b.reservedBit(r, p)
			if got != want {
				t.Fatalf("%s: resource %d position %d: row bit %v, reserved flag %v", ctx, r, p, got, want)
			}
		}
	}
}

// TestVerdictRowsInvariant drives random mutation sequences — checked
// assigns, frees, evicting assign&frees, resets, and linear growth far
// past the initial table — through every row-maintenance chokepoint and
// re-verifies rows == flags after each step, on linear tables (with and
// without dangling boundary seeds) and modulo tables over random
// machines.
func TestVerdictRowsInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for mi := 0; mi < 10; mi++ {
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		for _, ii := range []int{0, 1 + rng.Intn(8)} {
			b, err := NewBitvector(e, MaxCyclesPerWord(len(e.Resources), 64), 64, ii)
			if err != nil {
				t.Fatal(err)
			}
			if ii == 0 && mi%2 == 0 {
				if err := b.SeedDangling([]Dangling{{Op: rng.Intn(len(e.Ops)), IssueCycle: -1, ID: 900}}); err != nil {
					t.Fatal(err)
				}
				rowsMatchFlags(t, b, fmt.Sprintf("machine %d ii=%d after SeedDangling", mi, ii))
			}
			live := map[int][2]int{}
			id := 0
			span := 64 // exercises growWords on linear tables
			if ii > 0 {
				span = 3 * ii
			}
			for step := 0; step < 120; step++ {
				ctx := fmt.Sprintf("machine %d ii=%d step %d", mi, ii, step)
				switch r := rng.Intn(10); {
				case r < 5:
					op, cyc := rng.Intn(len(e.Ops)), rng.Intn(span)
					if b.Schedulable(op) && b.Check(op, cyc) {
						b.Assign(op, cyc, id)
						live[id] = [2]int{op, cyc}
						id++
					}
				case r < 7:
					op, cyc := rng.Intn(len(e.Ops)), rng.Intn(span)
					if b.Schedulable(op) {
						for _, ev := range b.AssignFree(op, cyc, id) {
							delete(live, ev)
						}
						live[id] = [2]int{op, cyc}
						id++
					}
				case r < 9:
					for fid, in := range live {
						b.Free(in[0], in[1], fid)
						delete(live, fid)
						break
					}
				default:
					b.Reset()
					live = map[int][2]int{}
				}
				rowsMatchFlags(t, b, ctx)
			}
		}
	}
}

// TestQuickVerdictThreeWay is the satellite's testing/quick differential:
// for arbitrary seeds the bit-parallel verdict scan, the word-at-a-time
// scan (SetVerdictScan(false)) and the naive per-cycle reference loop
// must return identical answers AND charge identical FirstFreeCycles,
// over random machines, linear and modulo tables, and (on linear
// tables) schedules seeded with dangling boundary requirements.
func TestQuickVerdictThreeWay(t *testing.T) {
	prop := func(machineSeed int64, iiSeed, opSeed, loSeed, widthSeed uint8, fill int64) bool {
		e := resmodel.Random(rand.New(rand.NewSource(machineSeed)), resmodel.DefaultRandomConfig()).Expand()
		ii := 0
		if iiSeed%2 == 1 {
			ii = 1 + int(iiSeed)%8
		}
		k := MaxCyclesPerWord(len(e.Resources), 64)
		verdict, err := NewBitvector(e, k, 64, ii)
		if err != nil {
			return false
		}
		words, err := NewBitvector(e, k, 64, ii)
		if err != nil {
			return false
		}
		words.SetVerdictScan(false)
		if ii == 0 && fill%3 == 0 {
			ds := []Dangling{{Op: int(opSeed) % len(e.Ops), IssueCycle: -1 - int(iiSeed)%2, ID: 700}}
			if err := verdict.SeedDangling(ds); err != nil {
				return true // colliding boundary requirements; nothing to compare
			}
			if err := words.SeedDangling(ds); err != nil {
				return false
			}
		}
		fillRandom(rand.New(rand.NewSource(fill)), verdict, e, ii, 20)
		fillRandom(rand.New(rand.NewSource(fill)), words, e, ii, 20)

		op := int(opSeed) % len(e.Ops)
		lo := int(loSeed) % 40
		if ii > 0 {
			lo -= 20
		}
		hi := lo + int(widthSeed)%25
		wantCycle, wantOK := FirstFreeNaive(verdict, op, lo, hi)

		v0 := verdict.ctr.FirstFreeCycles
		gotV, okV := verdict.FirstFree(op, lo, hi)
		w0 := words.ctr.FirstFreeCycles
		gotW, okW := words.FirstFree(op, lo, hi)
		if okV != wantOK || okW != wantOK || (wantOK && (gotV != wantCycle || gotW != wantCycle)) {
			return false
		}
		if verdict.ctr.FirstFreeCycles-v0 != words.ctr.FirstFreeCycles-w0 {
			return false
		}

		origOp := int(opSeed) % len(e.AltGroup)
		wantAlt, wantC2, wantOK2 := FirstFreeWithAltNaive(verdict, origOp, lo, hi)
		v0 = verdict.ctr.FirstFreeCycles
		altV, cV, okV2 := verdict.FirstFreeWithAlt(origOp, lo, hi)
		w0 = words.ctr.FirstFreeCycles
		altW, cW, okW2 := words.FirstFreeWithAlt(origOp, lo, hi)
		if okV2 != wantOK2 || okW2 != wantOK2 ||
			(wantOK2 && (cV != wantC2 || cW != wantC2 || altV != wantAlt || altW != wantAlt)) {
			return false
		}
		return verdict.ctr.FirstFreeCycles-v0 == words.ctr.FirstFreeCycles-w0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
