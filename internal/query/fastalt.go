package query

// Fast check-with-alt for the bitvector representation — the "more
// efficient technique" Section 7 leaves open. The packed words of ALL
// alternatives of an operation are unioned offline; at query time one
// AND-and-test pass over the union words proves every alternative
// contention-free at once (each alternative's flags are a subset of the
// union's). Only when the union conflicts does the query fall back to
// testing alternatives individually. For the common case — an empty
// region of the reserved table — a dual-ported memory op costs half the
// words.
//
// The fast path is opt-in (EnableFastAlt) so that Table 6's per-call
// statistics stay comparable with the discrete representation by default.

// EnableFastAlt precomputes the alternative-union reservation words and
// turns on the fast CheckWithAlt path.
func (b *Bitvector) EnableFastAlt() {
	if b.ii > 0 {
		b.altUnion0 = make([][]packedWord, len(b.e.AltGroup))
		for orig, group := range b.e.AltGroup {
			if len(group) < 2 {
				continue
			}
			var words []packedWord
			for _, op := range group {
				if !b.c.selfConf[op] {
					words = mergeWords(words, b.packed0[op])
				}
			}
			b.altUnion0[orig] = words
		}
		return
	}
	b.altUnion = make([][][]packedWord, len(b.e.AltGroup))
	for orig, group := range b.e.AltGroup {
		if len(group) < 2 {
			continue
		}
		b.altUnion[orig] = make([][]packedWord, b.k)
		for a := 0; a < b.k; a++ {
			var words []packedWord
			for _, op := range group {
				words = mergeWords(words, b.packed[op][a])
			}
			b.altUnion[orig][a] = words
		}
	}
}

// mergeWords ORs two sorted packed-word lists.
func mergeWords(a, b []packedWord) []packedWord {
	out := make([]packedWord, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Word < b[j].Word:
			out = append(out, a[i])
			i++
		case a[i].Word > b[j].Word:
			out = append(out, b[j])
			j++
		default:
			out = append(out, packedWord{Word: a[i].Word, Bits: a[i].Bits | b[j].Bits})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// fastCheckWithAlt runs the union test; ok reports whether the fast path
// applied and decided the query.
func (b *Bitvector) fastCheckWithAlt(origOp, cycle int) (op int, free, decided bool) {
	var words []packedWord
	if b.ii > 0 {
		if b.altUnion0 == nil || b.altUnion0[origOp] == nil {
			return 0, false, false
		}
		words = b.altUnion0[origOp]
		jm := b.modCycle(cycle)
		for _, w := range words {
			b.ctr.CheckWork++
			if b.window(b.wordStart(jm, w))&w.Bits != 0 {
				return 0, false, false // union conflicts: fall back
			}
		}
	} else {
		if b.altUnion == nil || b.altUnion[origOp] == nil || cycle < 0 {
			return 0, false, false
		}
		a, base := cycle%b.k, cycle/b.k
		for _, w := range b.altUnion[origOp][a] {
			b.ctr.CheckWork++
			wi := base + w.Word
			if wi < len(b.reserved) && b.reserved[wi]&w.Bits != 0 {
				return 0, false, false
			}
		}
	}
	// Union clean: every alternative is contention-free; return the first
	// schedulable one (the same answer the fallback would give).
	b.ctr.CheckCalls++
	for _, cand := range b.e.AltGroup[origOp] {
		if !b.c.selfConf[cand] {
			return cand, true, true
		}
	}
	return 0, false, true // no schedulable alternative at this II
}
