package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/resmodel"
)

// TestBitvectorOwnerGridGrowth: update-mode assign&free at a far cycle
// grows the lazily materialized owner grid of a linear table.
func TestBitvectorOwnerGridGrowth(t *testing.T) {
	e := figure1()
	a := e.OpIndex("A")
	bv, err := NewBitvector(e, 4, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	bv.AssignFree(a, 0, 1)
	// Force the mode transition with a conflicting assign&free.
	bop := e.OpIndex("B")
	bv.AssignFree(bop, 1, 2)
	if !bv.UpdateMode() {
		t.Fatal("no mode transition")
	}
	// Far beyond the current owner grid: must grow, not panic.
	ev := bv.AssignFree(a, 5000, 3)
	if len(ev) != 0 {
		t.Fatalf("unexpected evictions: %v", ev)
	}
	if bv.Check(a, 5000) {
		t.Fatal("cell not reserved after far assign&free")
	}
	// Evicting the far instance through a conflict works too.
	ev = bv.AssignFree(bop, 5001, 4)
	if len(ev) != 1 || ev[0] != 3 {
		t.Fatalf("evicted %v, want [3]", ev)
	}
}

// TestBitvector32BitWords: the 32-bit word configuration behaves like the
// 64-bit one on the example machine.
func TestBitvector32BitWords(t *testing.T) {
	e := figure1()
	k := MaxCyclesPerWord(len(e.Resources), 32) // 6 cycles of 5 bits
	if k != 6 {
		t.Fatalf("k = %d, want 6", k)
	}
	bv, err := NewBitvector(e, k, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDiscrete(e, 0)
	for cyc := 0; cyc < 30; cyc++ {
		op := cyc % len(e.Ops)
		if bv.Check(op, cyc) != d.Check(op, cyc) {
			t.Fatalf("32-bit bitvector diverges at cycle %d", cyc)
		}
		if d.Check(op, cyc) {
			bv.Assign(op, cyc, cyc)
			d.Assign(op, cyc, cyc)
		}
	}
}

// TestDiscreteLinearGrowth: the linear reserved table grows transparently.
func TestDiscreteLinearGrowth(t *testing.T) {
	e := figure1()
	d := NewDiscrete(e, 0)
	bop := e.OpIndex("B")
	d.Assign(bop, 10_000, 1)
	if d.Check(bop, 10_001) {
		t.Fatal("overlapping B accepted after growth")
	}
	d.Free(bop, 10_000, 1)
	if !d.Check(bop, 10_001) {
		t.Fatal("cells not freed after growth")
	}
}

// TestSelfEvictionSkipped: assign&free never "evicts" the instance id it
// is placing (re-placement of the same id over its own stale cells).
func TestSelfEvictionSkipped(t *testing.T) {
	e := figure1()
	a := e.OpIndex("A")
	for _, m := range allModules(t, e, 0) {
		m.AssignFree(a, 0, 7)
		ev := m.AssignFree(a, 0, 7) // same id, same place
		if len(ev) != 0 {
			t.Fatalf("self-eviction: %v", ev)
		}
	}
}

// Property: Free is idempotent and only releases the given id's cells.
func TestQuickFreeIsolation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		d := NewDiscrete(e, 0)
		type pl struct{ op, cyc, id int }
		var placed []pl
		id := 1
		for i := 0; i < 25; i++ {
			op := rng.Intn(len(e.Ops))
			cyc := rng.Intn(12)
			if d.Check(op, cyc) {
				d.Assign(op, cyc, id)
				placed = append(placed, pl{op, cyc, id})
				id++
			}
		}
		if len(placed) == 0 {
			return true
		}
		// Free one instance twice; every other instance's cells stay.
		v := placed[rng.Intn(len(placed))]
		d.Free(v.op, v.cyc, v.id)
		d.Free(v.op, v.cyc, v.id)
		for _, p := range placed {
			if p.id == v.id || len(e.Ops[p.op].Table.Uses) == 0 {
				continue // empty tables trivially pass Check
			}
			if d.Check(p.op, p.cyc) {
				return false // its cells were wrongly released
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestStateBytes: memory accounting matches the paper's ordering — the
// packed bitvector stores several cycles per word, the discrete table one
// owner field per cell.
func TestStateBytes(t *testing.T) {
	e := figure1() // 5 resources
	ii := 24
	d := NewDiscrete(e, ii)
	bv, err := NewBitvector(e, 12, 64, ii) // 12 cycles per word
	if err != nil {
		t.Fatal(err)
	}
	db, bb := d.StateBytes(), bv.StateBytes()
	if db <= 0 || bb <= 0 {
		t.Fatalf("footprints: discrete %d, bitvector %d", db, bb)
	}
	if bb >= db {
		t.Errorf("bitvector state (%d B) not smaller than discrete (%d B)", bb, db)
	}
}
