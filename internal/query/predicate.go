package query

import (
	"fmt"

	"repro/internal/resmodel"
)

// PredSet models compile-time predicate relations for predicated
// (IF-converted) code: predicate 0 is "always true"; other predicates may
// be marked pairwise disjoint (they can never both be true in the same
// iteration — e.g. the two arms of an IF-converted diamond).
type PredSet struct {
	n        int
	disjoint [][]bool
}

// NewPredSet creates n predicates (0 .. n-1) with no disjointness known.
func NewPredSet(n int) *PredSet {
	ps := &PredSet{n: n, disjoint: make([][]bool, n)}
	for i := range ps.disjoint {
		ps.disjoint[i] = make([]bool, n)
	}
	return ps
}

// MarkDisjoint records that predicates a and b are never simultaneously
// true. Predicate 0 (always true) cannot be disjoint from anything.
func (ps *PredSet) MarkDisjoint(a, b int) {
	if a == 0 || b == 0 || a == b {
		panic(fmt.Sprintf("query: cannot mark predicates %d and %d disjoint", a, b))
	}
	ps.disjoint[a][b] = true
	ps.disjoint[b][a] = true
}

// Disjoint reports whether a and b can never both be true.
func (ps *PredSet) Disjoint(a, b int) bool { return ps.disjoint[a][b] }

// predEntry is one predicated reservation of a cell.
type predEntry struct {
	id   int32
	pred int32
}

// Predicated is the Enhanced-Modulo-Scheduling flavor of the reserved
// table (Warter et al., cited in Section 5 of the paper): each entry
// carries "a field identifying the predicate under which the resource is
// reserved", so operations from disjoint predicate paths of IF-converted
// code may share a resource in the same cycle. It is a Modulo Reservation
// Table (ii > 0) or linear table (ii == 0) over a (reduced or original)
// description; reductions preserve predicated scheduling constraints for
// the same reason as unpredicated ones — contention remains pairwise.
type Predicated struct {
	e     *resmodel.Expanded
	c     *compiled
	ps    *PredSet
	ii    int
	nRes  int
	width int
	cells [][]predEntry
	inst  map[int]instance
	ctr   Counters
}

// NewPredicated creates a predicate-aware discrete module.
func NewPredicated(e *resmodel.Expanded, ps *PredSet, ii int) *Predicated {
	if ii < 0 {
		panic("query: negative II")
	}
	p := &Predicated{e: e, c: compileFor(e, ii), ps: ps, ii: ii, nRes: len(e.Resources), inst: map[int]instance{}}
	if ii > 0 {
		p.width = ii
	} else {
		p.width = p.c.maxSpan() + 16
	}
	p.cells = make([][]predEntry, p.nRes*p.width)
	return p
}

func (p *Predicated) col(cycle int) int {
	if p.ii > 0 {
		c := cycle % p.ii
		if c < 0 {
			c += p.ii
		}
		return c
	}
	if cycle < 0 {
		panic("query: negative cycle on linear table")
	}
	if cycle >= p.width {
		nw := p.width
		for nw <= cycle {
			nw *= 2
		}
		cells := make([][]predEntry, p.nRes*nw)
		for r := 0; r < p.nRes; r++ {
			copy(cells[r*nw:], p.cells[r*p.width:(r+1)*p.width])
		}
		p.cells, p.width = cells, nw
	}
	return cycle
}

func (p *Predicated) cell(r, cycle int) *[]predEntry {
	return &p.cells[r*p.width+p.col(cycle)]
}

// Schedulable mirrors the unpredicated modules.
func (p *Predicated) Schedulable(op int) bool { return !p.c.selfConf[op] }

// Check reports whether op under predicate pred fits at cycle: a cell is
// available if every existing reservation's predicate is disjoint from
// pred.
func (p *Predicated) Check(op, cycle, pred int) bool {
	p.ctr.CheckCalls++
	if p.c.selfConf[op] {
		p.ctr.CheckWork++
		return false
	}
	for _, u := range p.c.uses[op] {
		p.ctr.CheckWork++
		for _, en := range *p.cell(u.Resource, cycle+u.Cycle) {
			if !p.ps.Disjoint(int(en.pred), pred) {
				return false
			}
		}
	}
	return true
}

// Assign reserves op's resources at cycle under pred for instance id.
func (p *Predicated) Assign(op, cycle, pred, id int) {
	p.ctr.AssignCalls++
	for _, u := range p.c.uses[op] {
		p.ctr.AssignWork++
		c := p.cell(u.Resource, cycle+u.Cycle)
		*c = append(*c, predEntry{id: int32(id), pred: int32(pred)})
	}
	p.inst[id] = instance{op, cycle}
}

// Free releases instance id's reservations.
func (p *Predicated) Free(op, cycle, id int) {
	p.ctr.FreeCalls++
	for _, u := range p.c.uses[op] {
		p.ctr.FreeWork++
		c := p.cell(u.Resource, cycle+u.Cycle)
		out := (*c)[:0]
		for _, en := range *c {
			if en.id != int32(id) {
				out = append(out, en)
			}
		}
		*c = out
	}
	delete(p.inst, id)
}

// Counters returns the work-unit accounting.
func (p *Predicated) Counters() *Counters { return &p.ctr }

// Scheduled returns the number of scheduled instances.
func (p *Predicated) Scheduled() int { return len(p.inst) }
