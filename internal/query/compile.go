package query

import (
	"sync"

	"repro/internal/resmodel"
)

// compiled holds the per-operation reservation tables preprocessed for a
// module instance. For a Modulo Reservation Table (ii > 0) the usage
// cycles are folded modulo II; if two usages of one operation fold onto
// the same (resource, cycle) cell, the operation needs the same resource
// in the same steady-state cycle for two different iterations, so it is
// unschedulable at this II (selfConf).
//
// Everything in a compiled (and in the packed tables hanging off it) is
// immutable once built, so one instance is shared by every module
// constructed for the same (description, II) — see compileFor.
type compiled struct {
	ii       int
	uses     [][]resmodel.Usage
	selfConf []bool
	spans    []int
	// maxUse[op] is the largest usage cycle of op's (folded) table — the
	// reach of a candidate's resource window past its issue cycle. The
	// verdict scan sizes its occupancy-summary probe with it.
	maxUse []int

	// packs caches the bitvector word packings derived from uses, keyed
	// by effective cycles-per-word (at most 64 entries).
	packMu sync.Mutex
	packs  map[int]*packedTables
}

// packedTables is the k-cycles-per-word packing of a compiled table:
// per-op per-alignment words (alignment a places the table a cycles into
// its base word, so a query at cycle t probes word-aligned against the
// reserved table with no per-candidate shifting). For modulo tables
// packed0 aliases the alignment-0 packing — the word every Check/Assign
// starts from. Read-only after construction.
type packedTables struct {
	packed0 [][]packedWord   // modulo: packed[op][0]
	packed  [][][]packedWord // packed[op][alignment]
}

// compiledCacheMax bounds the memoized compilations; schedulers revisit
// a handful of (description, II) pairs thousands of times across a loop
// corpus, so the cache is tiny in practice. When it fills (a long-lived
// process cycling through many descriptions), it is dropped wholesale —
// recompiling is cheap, unbounded retention of dead descriptions is not.
const compiledCacheMax = 512

type compiledKey struct {
	e  *resmodel.Expanded
	ii int
}

var (
	compiledMu    sync.Mutex
	compiledCache = map[compiledKey]*compiled{}
)

// compileFor returns the shared compiled tables for (e, ii), building
// them on first use. Identity of the description pointer is the cache
// key: resmodel.Expanded values are immutable once built, so a pointer
// revisit means the same tables. Concurrent first builds may race to
// compile; either result is valid and the map keeps one winner.
func compileFor(e *resmodel.Expanded, ii int) *compiled {
	key := compiledKey{e, ii}
	compiledMu.Lock()
	if c, ok := compiledCache[key]; ok {
		compiledMu.Unlock()
		return c
	}
	compiledMu.Unlock()
	c := compile(e, ii)
	compiledMu.Lock()
	if prev, ok := compiledCache[key]; ok {
		compiledMu.Unlock()
		return prev
	}
	if len(compiledCache) >= compiledCacheMax {
		compiledCache = map[compiledKey]*compiled{}
	}
	compiledCache[key] = c
	compiledMu.Unlock()
	return c
}

// packsFor returns the shared k-cycles-per-word packing of c, building
// it on first use. nRes is the description's resource count (constant
// for a given c).
func (c *compiled) packsFor(nRes, k int) *packedTables {
	c.packMu.Lock()
	defer c.packMu.Unlock()
	if pt, ok := c.packs[k]; ok {
		return pt
	}
	pt := &packedTables{
		packed: make([][][]packedWord, len(c.uses)),
	}
	for oi := range c.uses {
		pt.packed[oi] = make([][]packedWord, k)
		for a := 0; a < k; a++ {
			pt.packed[oi][a] = packUses(c.uses[oi], nRes, k, a)
		}
	}
	if c.ii > 0 {
		pt.packed0 = make([][]packedWord, len(c.uses))
		for oi := range c.uses {
			pt.packed0[oi] = pt.packed[oi][0]
		}
	}
	if c.packs == nil {
		c.packs = map[int]*packedTables{}
	}
	c.packs[k] = pt
	return pt
}

func compile(e *resmodel.Expanded, ii int) *compiled {
	c := &compiled{
		ii:       ii,
		uses:     make([][]resmodel.Usage, len(e.Ops)),
		selfConf: make([]bool, len(e.Ops)),
		spans:    make([]int, len(e.Ops)),
		maxUse:   make([]int, len(e.Ops)),
	}
	for oi, o := range e.Ops {
		if ii == 0 {
			c.uses[oi] = o.Table.Uses
			c.spans[oi] = o.Table.Span()
			for _, u := range o.Table.Uses {
				if u.Cycle > c.maxUse[oi] {
					c.maxUse[oi] = u.Cycle
				}
			}
			continue
		}
		seen := map[resmodel.Usage]bool{}
		folded := make([]resmodel.Usage, 0, len(o.Table.Uses))
		for _, u := range o.Table.Uses {
			fu := resmodel.Usage{Resource: u.Resource, Cycle: u.Cycle % ii}
			if seen[fu] {
				c.selfConf[oi] = true
			}
			seen[fu] = true
			folded = append(folded, fu)
		}
		if c.selfConf[oi] {
			// Unschedulable at this II; keep the folded list only for
			// diagnostics, it is never reserved.
			c.uses[oi] = nil
		} else {
			c.uses[oi] = folded
			for _, u := range folded {
				if u.Cycle > c.maxUse[oi] {
					c.maxUse[oi] = u.Cycle
				}
			}
		}
		c.spans[oi] = ii
	}
	return c
}

// maxSpan returns the largest span over all ops.
func (c *compiled) maxSpan() int {
	max := 0
	for _, s := range c.spans {
		if s > max {
			max = s
		}
	}
	return max
}
