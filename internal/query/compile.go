package query

import (
	"repro/internal/resmodel"
)

// compiled holds the per-operation reservation tables preprocessed for a
// module instance. For a Modulo Reservation Table (ii > 0) the usage
// cycles are folded modulo II; if two usages of one operation fold onto
// the same (resource, cycle) cell, the operation needs the same resource
// in the same steady-state cycle for two different iterations, so it is
// unschedulable at this II (selfConf).
type compiled struct {
	ii       int
	uses     [][]resmodel.Usage
	selfConf []bool
	spans    []int
}

func compile(e *resmodel.Expanded, ii int) *compiled {
	c := &compiled{
		ii:       ii,
		uses:     make([][]resmodel.Usage, len(e.Ops)),
		selfConf: make([]bool, len(e.Ops)),
		spans:    make([]int, len(e.Ops)),
	}
	for oi, o := range e.Ops {
		if ii == 0 {
			c.uses[oi] = o.Table.Uses
			c.spans[oi] = o.Table.Span()
			continue
		}
		seen := map[resmodel.Usage]bool{}
		folded := make([]resmodel.Usage, 0, len(o.Table.Uses))
		for _, u := range o.Table.Uses {
			fu := resmodel.Usage{Resource: u.Resource, Cycle: u.Cycle % ii}
			if seen[fu] {
				c.selfConf[oi] = true
			}
			seen[fu] = true
			folded = append(folded, fu)
		}
		if c.selfConf[oi] {
			// Unschedulable at this II; keep the folded list only for
			// diagnostics, it is never reserved.
			c.uses[oi] = nil
		} else {
			c.uses[oi] = folded
		}
		c.spans[oi] = ii
	}
	return c
}

// maxSpan returns the largest span over all ops.
func (c *compiled) maxSpan() int {
	max := 0
	for _, s := range c.spans {
		if s > max {
			max = s
		}
	}
	return max
}
