package query

import "math/bits"

// Bit-parallel candidate-verdict scans.
//
// The word-parallel scan (scanFree) still walks candidate cycles one at a
// time: each candidate ANDs its pre-shifted packed table against the
// reserved words and dies at the first conflict. The verdict scan flips
// the axes. Alongside the packed table the module maintains rows — one
// plain cycle-bitmap per resource, bit t set iff the resource is busy at
// cycle t — and answers 64 candidates per usage with one unaligned
// 64-bit window read: for a scan starting at t0, resource r busy at
// candidate t0+i iff rows[r] bit (t0+u.Cycle)+i is set. ORing the window
// reads of all usages yields a verdict word whose bit i is set iff
// candidate t0+i conflicts; the first free candidate is one
// TrailingZeros64 of its complement.
//
// Modulo tables replicate each busy column into three images — bit p set
// iff busy(p mod II) for p in [0, 3*II) — so any window read a scan can
// issue (start s+u.Cycle <= 2*II-2, plus up to II-1 candidate offsets)
// stays in bounds without wraparound handling, the same trick the
// two-image mirror plays for single-candidate windows. Linear tables map
// bit t to cycle t directly and grow in step with the reserved words;
// reads beyond the maintained width clamp to zero, matching the
// "beyond the table is free" semantics of the packed scan.
//
// The rows slab is redundant state derived from the same mutations that
// maintain mirror/reserved (every write goes through orCycle/andNotCycle
// or the five linear word-write sites, each of which updates rows in the
// same breath), so rows bit (p) == busy(p mod II) holds at every
// observable point — pinned by TestVerdictRowsInvariant.
//
// Accounting: the verdict decides where to stop, the centralized
// RangeProbes/RangeProbesAlt arithmetic decides what to charge, so
// FirstFreeCycles and schedules are byte-identical to the naive loop and
// the word scan. FirstFreeWork remains the scan's own measured work: one
// unit per usage-window read, one per self-conflict discovery, one per
// occupancy-summary skip — and FirstFreeVerdictWords counts the verdict
// words built.

// SetVerdictScan toggles the bit-parallel verdict path of the range scans
// (enabled by default). Schedules and probe accounting are byte-identical
// either way; disabling it falls back to the per-candidate word scan,
// which the differential tests and benchmarks use as an oracle. The rows
// slab is maintained regardless, so the toggle may be flipped at any
// point in a module's life.
func (b *Bitvector) SetVerdictScan(on bool) { b.noVerdict = !on }

// maskN returns a mask of the low n bits, n in [1, 64].
func maskN(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

// rowWindow reads 64 consecutive cycle bits of resource r's row starting
// at bit offset o: bit i of the result is row bit o+i. Offsets beyond the
// maintained width read zero (free).
func (b *Bitvector) rowWindow(r, o int) uint64 {
	row := b.rows[r*b.rowW : (r+1)*b.rowW]
	wi, sh := o>>6, uint(o&63)
	if wi >= len(row) {
		return 0
	}
	v := row[wi] >> sh
	if sh != 0 && wi+1 < len(row) {
		v |= row[wi+1] << (64 - sh)
	}
	return v
}

// --- rows maintenance (called from every mirror/reserved mutation) ---

// rowsOrCycleMod marks MRT cycle t (in [0, II)) busy for every resource
// in resBits, maintaining all three images.
func (b *Bitvector) rowsOrCycleMod(t int, resBits uint64) {
	lim := 3 * b.ii
	for m := resBits; m != 0; m &= m - 1 {
		r := bits.TrailingZeros64(m)
		row := b.rows[r*b.rowW : (r+1)*b.rowW]
		for p := t; p < lim; p += b.ii {
			row[p>>6] |= 1 << uint(p&63)
		}
	}
}

func (b *Bitvector) rowsAndNotCycleMod(t int, resBits uint64) {
	lim := 3 * b.ii
	for m := resBits; m != 0; m &= m - 1 {
		r := bits.TrailingZeros64(m)
		row := b.rows[r*b.rowW : (r+1)*b.rowW]
		for p := t; p < lim; p += b.ii {
			row[p>>6] &^= 1 << uint(p&63)
		}
	}
}

// rowsOrWordLin mirrors an OR of w into linear reserved word wi: each set
// bit p of w is cycle wi*k + p/nRes of resource p%nRes.
func (b *Bitvector) rowsOrWordLin(wi int, w uint64) {
	for m := w; m != 0; m &= m - 1 {
		p := bits.TrailingZeros64(m)
		cyc := wi*b.k + p/b.nRes
		b.rows[(p%b.nRes)*b.rowW+(cyc>>6)] |= 1 << uint(cyc&63)
	}
}

func (b *Bitvector) rowsAndNotWordLin(wi int, w uint64) {
	for m := w; m != 0; m &= m - 1 {
		p := bits.TrailingZeros64(m)
		cyc := wi*b.k + p/b.nRes
		b.rows[(p%b.nRes)*b.rowW+(cyc>>6)] &^= 1 << uint(cyc&63)
	}
}

// --- verdict scans ---

// windowEmpty reports whether the whole resource window [base,
// base+maxUse] is unreserved, consulting only the occupancy summary.
// base is an MRT cycle in [0, II) for modulo tables (the window then ends
// at most at cycle 2*II-2, inside the mirror), an absolute cycle for
// linear ones (words beyond the table are trivially free).
func (b *Bitvector) windowEmpty(base, maxUse int) bool {
	loW := base / b.k
	hiW := (base + maxUse) / b.k
	if b.ii == 0 {
		if hiW >= len(b.reserved) {
			hiW = len(b.reserved) - 1
		}
		if loW > hiW {
			return true
		}
	}
	return !b.occAny(loW, hiW)
}

// flushVerdict credits a verdict scan's locally accumulated counters.
func (b *Bitvector) flushVerdict(work, words, skips int64) {
	b.ctr.FirstFreeWork += work
	b.ctr.FirstFreeVerdictWords += words
	b.ctr.FirstFreeSkips += skips
}

// verdictFree is the bit-parallel scanFree: it returns the offset in
// [0, L) of the first candidate cycle t0+i at which op fits, or -1,
// processing candidates 64 per verdict word. Callers guarantee op is not
// self-conflicting and (for modulo tables) L <= II, so every row offset a
// block reads stays under 3*II.
//
// Each block first consults the occupancy summary on the block's first
// candidate window (ops with at least two usages, summary enabled): an
// all-zero window proves that candidate free, so the block answers its
// first candidate for one work unit — strictly cheaper than the >= 2
// window reads the verdict would cost — and counts a FirstFreeSkips.
// Otherwise one 64-bit window read per usage builds the verdict word.
func (b *Bitvector) verdictFree(op, t0, L int) int {
	uses := b.c.uses[op]
	maxUse := b.c.maxUse[op]
	var work, vw, skips int64
	found := -1
	s := t0
	if b.ii > 0 {
		s = b.modCycle(t0)
	}
	for blk := 0; blk < L; blk += 64 {
		n := L - blk
		if n > 64 {
			n = 64
		}
		if !b.noSummary && len(uses) >= 2 && b.windowEmpty(s, maxUse) {
			work++
			skips++
			found = blk
			break
		}
		var v uint64
		for _, u := range uses {
			work++
			v |= b.rowWindow(u.Resource, s+u.Cycle)
		}
		vw++
		if free := ^v & maskN(n); free != 0 {
			found = blk + bits.TrailingZeros64(free)
			break
		}
		// Multi-block scans only occur for L > 64, i.e. linear tables or
		// II > 64, so a single conditional subtraction re-normalizes s.
		if s += n; b.ii > 0 && s >= b.ii {
			s -= b.ii
		}
	}
	b.flushVerdict(work, vw, skips)
	return found
}

// verdictAltChunk answers one chunk of FirstFreeWithAlt: n candidate
// cycles starting at t0, over the whole alternative group at once. Each
// alternative contributes a verdict word; a clear bit 0 ends the search
// immediately (every earlier alternative conflicts at the chunk's first
// candidate, so this is the naive answer). Otherwise the AND of the
// verdicts locates the earliest cycle where any alternative fits, and the
// per-alternative words — kept in the module-owned altVerdict scratch —
// replay the naive tie-break: first free alternative in group order at
// that cycle. Callers guarantee n <= 64 and (modulo) n <= II.
func (b *Bitvector) verdictAltChunk(group []int, t0, n int) (int, int, int, bool) {
	mask := maskN(n)
	var work, vw, skips int64
	combined := mask
	scratch := b.altVerdict[:len(group)]
	base := t0
	if b.ii > 0 {
		base = b.modCycle(t0)
	}
	for ai, o := range group {
		if b.c.selfConf[o] {
			work++ // the probe that discovers the fold
			scratch[ai] = ^uint64(0)
			continue
		}
		uses := b.c.uses[o]
		if !b.noSummary && len(uses) >= 2 && b.windowEmpty(base, b.c.maxUse[o]) {
			work++
			skips++
			b.flushVerdict(work, vw, skips)
			return o, 0, ai, true
		}
		var v uint64
		for _, u := range uses {
			work++
			v |= b.rowWindow(u.Resource, base+u.Cycle)
		}
		vw++
		if v&1 == 0 {
			b.flushVerdict(work, vw, skips)
			return o, 0, ai, true
		}
		scratch[ai] = v
		combined &= v
	}
	b.flushVerdict(work, vw, skips)
	if free := ^combined & mask; free != 0 {
		i := bits.TrailingZeros64(free)
		for ai, o := range group {
			if scratch[ai]&(1<<uint(i)) == 0 {
				return o, i, ai, true
			}
		}
	}
	return -1, 0, 0, false
}
