package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/resmodel"
)

func figure1() *resmodel.Expanded {
	b := resmodel.NewBuilder("example")
	b.Resources("r0", "r1", "r2", "r3", "r4")
	b.Op("A", 3).Stages(0, "r0", "r1", "r2")
	b.Op("B", 8).
		Use("r1", 0).
		Use("r2", 1).
		UseRange("r3", 2, 5).
		UseRange("r4", 6, 7)
	return b.Build().Expand()
}

// allModules builds one module of every implementation for a machine.
func allModules(t *testing.T, e *resmodel.Expanded, ii int) map[string]Module {
	t.Helper()
	ms := map[string]Module{
		"discrete": NewDiscrete(e, ii),
	}
	for _, k := range []int{1, MaxCyclesPerWord(len(e.Resources), 64)} {
		if k < 1 {
			continue
		}
		bv, err := NewBitvector(e, k, 64, ii)
		if err != nil {
			t.Fatalf("NewBitvector(k=%d): %v", k, err)
		}
		ms["bitvec"+string(rune('0'+k))] = bv
	}
	return ms
}

func TestCheckAssignFreeLinear(t *testing.T) {
	e := figure1()
	a, bop := e.OpIndex("A"), e.OpIndex("B")
	for name, m := range allModules(t, e, 0) {
		if !m.Check(a, 0) {
			t.Fatalf("%s: Check(A,0) on empty table = false", name)
		}
		m.Assign(a, 0, 1)
		// B at 1 conflicts (1 in F[B][A]); B at 0 and 2 do not.
		if m.Check(bop, 1) {
			t.Errorf("%s: Check(B,1) after A@0 = true, want false", name)
		}
		if !m.Check(bop, 0) {
			t.Errorf("%s: Check(B,0) after A@0 = false, want true", name)
		}
		if !m.Check(bop, 2) {
			t.Errorf("%s: Check(B,2) after A@0 = false, want true", name)
		}
		// A self-conflicts only at distance 0.
		if m.Check(a, 0) {
			t.Errorf("%s: Check(A,0) after A@0 = true, want false", name)
		}
		if !m.Check(a, 1) {
			t.Errorf("%s: Check(A,1) after A@0 = false, want true", name)
		}
		m.Free(a, 0, 1)
		if !m.Check(bop, 1) {
			t.Errorf("%s: Check(B,1) after Free = false, want true", name)
		}
		if m.Counters().CheckCalls == 0 || m.Counters().CheckWork == 0 {
			t.Errorf("%s: counters not accumulating", name)
		}
		m.Reset()
		if m.Counters().CheckCalls != 0 {
			t.Errorf("%s: Reset did not clear counters", name)
		}
	}
}

func TestAssignFreeEviction(t *testing.T) {
	e := figure1()
	a, bop := e.OpIndex("A"), e.OpIndex("B")
	for name, m := range allModules(t, e, 0) {
		m.Assign(a, 0, 7)
		// B at 1 conflicts with A@0: assign&free must evict instance 7.
		evicted := m.AssignFree(bop, 1, 8)
		if len(evicted) != 1 || evicted[0] != 7 {
			t.Fatalf("%s: AssignFree evicted %v, want [7]", name, evicted)
		}
		// A@0 must now be schedulable again except where B@1 conflicts:
		// A 1 cycle before B is forbidden (-1 in F[A][B] means A@0 with B@1).
		if m.Check(a, 0) {
			t.Errorf("%s: Check(A,0) with B@1 = true, want false", name)
		}
		if !m.Check(a, 1) {
			t.Errorf("%s: Check(A,1) with B@1 = false, want true", name)
		}
		if got := m.Counters().Unscheduled; got != 1 {
			t.Errorf("%s: Unscheduled = %d, want 1", name, got)
		}
		// Non-conflicting assign&free evicts nothing.
		if ev := m.AssignFree(a, 1, 9); len(ev) != 0 {
			t.Errorf("%s: AssignFree(A,1) evicted %v, want none", name, ev)
		}
	}
}

func TestBitvectorModeTransition(t *testing.T) {
	e := figure1()
	a, bop := e.OpIndex("A"), e.OpIndex("B")
	bv, err := NewBitvector(e, 4, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bv.UpdateMode() {
		t.Fatalf("fresh module already in update mode")
	}
	bv.AssignFree(a, 0, 1) // no conflict: stays optimistic
	if bv.UpdateMode() {
		t.Fatalf("conflict-free AssignFree entered update mode")
	}
	ev := bv.AssignFree(bop, 1, 2) // conflicts with A@0
	if !bv.UpdateMode() {
		t.Fatalf("conflicting AssignFree did not enter update mode")
	}
	if len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("evicted %v, want [1]", ev)
	}
	if bv.Counters().ModeTransitions != 1 {
		t.Errorf("ModeTransitions = %d, want 1", bv.Counters().ModeTransitions)
	}
	// Later conflicting AssignFree stays in update mode (no new transition).
	bv.AssignFree(a, 0, 3)
	if bv.Counters().ModeTransitions != 1 {
		t.Errorf("ModeTransitions = %d after second conflict, want 1", bv.Counters().ModeTransitions)
	}
}

func TestCheckWithAlt(t *testing.T) {
	b := resmodel.NewBuilder("alts")
	b.Resources("p0", "p1")
	b.Op("add", 1).Use("p0", 0).Alt().Use("p1", 0)
	b.Op("other", 1).Use("p0", 0)
	e := b.Build().Expand()
	for name, m := range allModules(t, e, 0) {
		op, ok := m.CheckWithAlt(0, 0)
		if !ok || op != 0 {
			t.Fatalf("%s: CheckWithAlt on empty = (%d, %v), want (0, true)", name, op, ok)
		}
		m.Assign(e.OpIndex("other"), 0, 1) // occupies p0 at 0
		op, ok = m.CheckWithAlt(0, 0)
		if !ok || e.Ops[op].Name != "add.1" {
			t.Fatalf("%s: CheckWithAlt with p0 busy = (%d, %v), want add.1", name, op, ok)
		}
		m.Assign(op, 0, 2) // now p1 busy too
		if _, ok := m.CheckWithAlt(0, 0); ok {
			t.Errorf("%s: CheckWithAlt with both ports busy succeeded", name)
		}
		if m.Counters().CheckWithAltCalls != 3 {
			t.Errorf("%s: CheckWithAltCalls = %d, want 3", name, m.Counters().CheckWithAltCalls)
		}
	}
}

func TestModuloWrapAround(t *testing.T) {
	e := figure1()
	bop := e.OpIndex("B")
	// II = 5: B spans 8 cycles, so its table folds; usages at cycles 5,6,7
	// land on MRT columns 0,1,2. No self-collision: r3@5 -> col 0 (r3),
	// r4@6 -> col 1 (r4), r4@7 -> col 2 (r4); distinct resources at those
	// columns, so B is schedulable.
	for name, m := range allModules(t, e, 5) {
		if !m.Schedulable(bop) {
			t.Fatalf("%s: B unschedulable at II=5", name)
		}
		if !m.Check(bop, 0) {
			t.Fatalf("%s: Check(B,0) on empty MRT = false", name)
		}
		m.Assign(bop, 0, 1)
		// A second B at any offset conflicts (F[B][B] covers 0..3, and the
		// fold adds more); in particular offset 4 wraps r3@2-5 onto itself.
		for off := 0; off < 5; off++ {
			if m.Check(bop, off) {
				t.Errorf("%s: Check(B,%d) with B@0 on II=5 MRT = true, want false", name, off)
			}
		}
		m.Free(bop, 0, 1)
		if !m.Check(bop, 3) {
			t.Errorf("%s: Check(B,3) after Free = false", name)
		}
	}
}

func TestModuloSelfConflict(t *testing.T) {
	b := resmodel.NewBuilder("m")
	b.Resources("r")
	b.Op("x", 1).Use("r", 0).Use("r", 4) // folds onto itself at II=4
	e := b.Build().Expand()
	for name, m := range allModules(t, e, 4) {
		if m.Schedulable(0) {
			t.Errorf("%s: op with 0 and 4 usage schedulable at II=4", name)
		}
		if m.Check(0, 0) {
			t.Errorf("%s: Check succeeded for self-conflicting op", name)
		}
	}
	// At II=5 the same op is fine.
	for name, m := range allModules(t, e, 5) {
		if !m.Schedulable(0) || !m.Check(0, 0) {
			t.Errorf("%s: op not schedulable at II=5", name)
		}
	}
}

func TestModuloNegativeCycles(t *testing.T) {
	e := figure1()
	a := e.OpIndex("A")
	for name, m := range allModules(t, e, 4) {
		m.Assign(a, -3, 1) // -3 mod 4 == 1
		if m.Check(a, 1) {
			t.Errorf("%s: Check(A,1) after Assign(A,-3) = true, want false", name)
		}
		if m.Check(a, -7) { // also column 1
			t.Errorf("%s: Check(A,-7) = true, want false", name)
		}
		if !m.Check(a, 0) {
			t.Errorf("%s: Check(A,0) = false, want true", name)
		}
	}
}

func TestLinearNegativeCyclePanics(t *testing.T) {
	e := figure1()
	for name, m := range allModules(t, e, 0) {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Check at negative cycle on linear table did not panic", name)
				}
			}()
			m.Check(0, -1)
		}()
	}
}

func TestNewBitvectorErrors(t *testing.T) {
	e := figure1() // 5 resources
	if _, err := NewBitvector(e, 0, 64, 0); err == nil {
		t.Errorf("k=0 accepted")
	}
	if _, err := NewBitvector(e, 13, 64, 0); err == nil {
		t.Errorf("13 cycles x 5 resources accepted in 64-bit word")
	}
	if _, err := NewBitvector(e, 1, 16, 0); err == nil {
		t.Errorf("wordBits=16 accepted")
	}
	if _, err := NewBitvector(e, 1, 64, -1); err == nil {
		t.Errorf("negative II accepted")
	}
	if bv, err := NewBitvector(e, 12, 64, 3); err != nil || bv.K() != 3 {
		t.Errorf("k not capped at II: k=%d err=%v", bv.K(), err)
	}
	if MaxCyclesPerWord(5, 64) != 12 || MaxCyclesPerWord(0, 64) != 0 || MaxCyclesPerWord(56, 64) != 1 {
		t.Errorf("MaxCyclesPerWord wrong")
	}
}

// refSchedule is a brute-force reference: a multiset of reserved
// (resource, cycle) cells with owners, checked usage by usage.
type refSchedule struct {
	e     *resmodel.Expanded
	ii    int
	cells map[[2]int]int // (resource, column) -> id
	inst  map[int]instance
}

func newRef(e *resmodel.Expanded, ii int) *refSchedule {
	return &refSchedule{e: e, ii: ii, cells: map[[2]int]int{}, inst: map[int]instance{}}
}

func (r *refSchedule) col(c int) int {
	if r.ii == 0 {
		return c
	}
	c %= r.ii
	if c < 0 {
		c += r.ii
	}
	return c
}

func (r *refSchedule) selfConf(op int) bool {
	if r.ii == 0 {
		return false
	}
	seen := map[[2]int]bool{}
	for _, u := range r.e.Ops[op].Table.Uses {
		k := [2]int{u.Resource, r.col(u.Cycle)}
		if seen[k] {
			return true
		}
		seen[k] = true
	}
	return false
}

func (r *refSchedule) check(op, cycle int) bool {
	if r.selfConf(op) {
		return false
	}
	for _, u := range r.e.Ops[op].Table.Uses {
		if _, busy := r.cells[[2]int{u.Resource, r.col(cycle + u.Cycle)}]; busy {
			return false
		}
	}
	return true
}

func (r *refSchedule) assign(op, cycle, id int) {
	for _, u := range r.e.Ops[op].Table.Uses {
		r.cells[[2]int{u.Resource, r.col(cycle + u.Cycle)}] = id
	}
	r.inst[id] = instance{op, cycle}
}

func (r *refSchedule) free(id int) {
	in, ok := r.inst[id]
	if !ok {
		return
	}
	for _, u := range r.e.Ops[in.op].Table.Uses {
		k := [2]int{u.Resource, r.col(in.cycle + u.Cycle)}
		if r.cells[k] == id {
			delete(r.cells, k)
		}
	}
	delete(r.inst, id)
}

func (r *refSchedule) assignFree(op, cycle, id int) map[int]bool {
	evicted := map[int]bool{}
	for _, u := range r.e.Ops[op].Table.Uses {
		k := [2]int{u.Resource, r.col(cycle + u.Cycle)}
		if other, busy := r.cells[k]; busy && other != id && !evicted[other] {
			evicted[other] = true
			r.free(other)
		}
	}
	r.assign(op, cycle, id)
	return evicted
}

// TestQuickModulesAgreeWithReference drives every module implementation —
// over the ORIGINAL and the REDUCED description of random machines — with
// a random check/assign&free/free workload and verifies that every answer
// matches the brute-force reference on the original description. This is
// the paper's end-to-end claim: the reduced description answers every
// contention query identically.
func TestQuickModulesAgreeWithReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		red := core.Reduce(e, core.Objective{Kind: core.ResUses})
		if red.Verify() != nil {
			return false
		}
		ii := 0
		if rng.Intn(2) == 0 {
			ii = 1 + rng.Intn(10)
		}
		var mods []Module
		for _, desc := range []*resmodel.Expanded{e, red.Reduced} {
			mods = append(mods, NewDiscrete(desc, ii))
			for _, k := range []int{1, MaxCyclesPerWord(len(desc.Resources), 64)} {
				if k >= 1 {
					bv, err := NewBitvector(desc, k, 64, ii)
					if err != nil {
						return false
					}
					mods = append(mods, bv)
				}
			}
		}
		ref := newRef(e, ii)

		maxCycle := 20
		nextID := 1
		live := map[int]instance{}
		for step := 0; step < 120; step++ {
			op := rng.Intn(len(e.Ops))
			cycle := rng.Intn(maxCycle)
			if ii > 0 && rng.Intn(4) == 0 {
				cycle -= maxCycle / 2 // exercise negative cycles mod II
			}
			switch rng.Intn(4) {
			case 0, 1: // check
				want := ref.check(op, cycle)
				for _, m := range mods {
					if m.Check(op, cycle) != want {
						return false
					}
				}
			case 2: // assign&free
				if ref.selfConf(op) {
					// Unschedulable at this II: modules must agree.
					for _, m := range mods {
						if m.Schedulable(op) {
							return false
						}
					}
					continue
				}
				id := nextID
				nextID++
				wantEv := ref.assignFree(op, cycle, id)
				for _, m := range mods {
					ev := m.AssignFree(op, cycle, id)
					if len(ev) != len(wantEv) {
						return false
					}
					for _, x := range ev {
						if !wantEv[x] {
							return false
						}
					}
				}
				for evID := range wantEv {
					delete(live, evID)
				}
				live[id] = instance{op, cycle}
			case 3: // free a live instance
				for id, in := range live {
					ref.free(id)
					for _, m := range mods {
						m.Free(in.op, in.cycle, id)
					}
					delete(live, id)
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickAssignOnlyPath exercises the plain Assign path (no owner
// fields) against the reference, linear and modulo.
func TestQuickAssignOnlyPath(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		ii := rng.Intn(8) // 0..7
		var mods []Module
		mods = append(mods, NewDiscrete(e, ii))
		if k := MaxCyclesPerWord(len(e.Resources), 32); k >= 1 {
			bv, err := NewBitvector(e, k, 32, ii)
			if err != nil {
				return false
			}
			mods = append(mods, bv)
		}
		ref := newRef(e, ii)
		nextID := 1
		type placed struct {
			op, cycle, id int
		}
		var placedOps []placed
		for step := 0; step < 80; step++ {
			op := rng.Intn(len(e.Ops))
			cycle := rng.Intn(15)
			want := ref.check(op, cycle)
			for _, m := range mods {
				if m.Check(op, cycle) != want {
					return false
				}
			}
			if want && rng.Intn(2) == 0 {
				id := nextID
				nextID++
				ref.assign(op, cycle, id)
				for _, m := range mods {
					m.Assign(op, cycle, id)
				}
				placedOps = append(placedOps, placed{op, cycle, id})
			} else if len(placedOps) > 0 && rng.Intn(3) == 0 {
				p := placedOps[len(placedOps)-1]
				placedOps = placedOps[:len(placedOps)-1]
				ref.free(p.id)
				for _, m := range mods {
					m.Free(p.op, p.cycle, p.id)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestCountersPerCall(t *testing.T) {
	c := Counters{CheckCalls: 4, CheckWork: 10, FreeCalls: 2, FreeWork: 5}
	if c.CheckPerCall() != 2.5 {
		t.Errorf("CheckPerCall = %v", c.CheckPerCall())
	}
	if c.FreePerCall() != 2.5 {
		t.Errorf("FreePerCall = %v", c.FreePerCall())
	}
	if c.AssignPerCall() != 0 || c.AssignFreePerCall() != 0 {
		t.Errorf("zero-call averages not 0")
	}
	if c.TotalCalls() != 6 || c.TotalWork() != 15 {
		t.Errorf("totals wrong: %d %d", c.TotalCalls(), c.TotalWork())
	}
	c.Reset()
	if c.TotalCalls() != 0 {
		t.Errorf("Reset failed")
	}
}

// TestWorkUnitsMatchTableSizes: an unobstructed Check costs exactly the
// op's usage count (discrete) or non-empty word count (bitvector).
func TestWorkUnitsMatchTableSizes(t *testing.T) {
	e := figure1()
	bop := e.OpIndex("B")

	d := NewDiscrete(e, 0)
	d.Check(bop, 0)
	if got := d.Counters().CheckWork; got != 8 {
		t.Errorf("discrete Check work = %d, want 8 usages", got)
	}

	bv, _ := NewBitvector(e, 4, 64, 0) // B spans 8 cycles -> 2 words at align 0
	bv.Check(bop, 0)
	if got := bv.Counters().CheckWork; got != 2 {
		t.Errorf("bitvec k=4 Check work = %d, want 2 words", got)
	}
	bv2, _ := NewBitvector(e, 1, 64, 0) // 8 non-empty cycles -> 8 words
	bv2.Check(bop, 0)
	if got := bv2.Counters().CheckWork; got != 8 {
		t.Errorf("bitvec k=1 Check work = %d, want 8 words", got)
	}
	if bv.WordsPerOp(bop, 0) != 2 || bv2.WordsPerOp(bop, 0) != 8 {
		t.Errorf("WordsPerOp wrong: %d %d", bv.WordsPerOp(bop, 0), bv2.WordsPerOp(bop, 0))
	}
}
