package query

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/resmodel"
)

// TestDanglingBasics: a long op issued near the end of a predecessor
// block blocks the conflicting cycles at the start of the successor.
func TestDanglingBasics(t *testing.T) {
	ex := figure1()
	bop := ex.OpIndex("B")

	for _, mk := range []func() DanglingSeeder{
		func() DanglingSeeder { return NewDiscrete(ex, 0) },
		func() DanglingSeeder {
			bv, err := NewBitvector(ex, 4, 64, 0)
			if err != nil {
				t.Fatal(err)
			}
			return bv
		},
	} {
		m := mk()
		// B issued 3 cycles before block entry: its r3@{2..5} usages land
		// at successor cycles {-1, 0, 1, 2}, r4@{6,7} at {3, 4}.
		if err := m.SeedDangling([]Dangling{{Op: bop, IssueCycle: -3, ID: 100}}); err != nil {
			t.Fatal(err)
		}
		// A new B at cycle 0 needs r3 at {2..5}: cycles 2 collides with
		// the dangling r3@2 (from usage 5 at -3+5=2). Conflict expected.
		if m.Check(bop, 0) {
			t.Errorf("B@0 accepted despite dangling B issued at -3")
		}
		// B at cycle 3: usages r3@{5..8}, r4@{9,10}; dangling r3 ends at 2,
		// r4 occupies {3,4}: B@3 uses r4 at 9,10 — no overlap. Allowed.
		if !m.Check(bop, 3) {
			t.Errorf("B@3 rejected")
		}
	}
}

func TestDanglingErrors(t *testing.T) {
	ex := figure1()
	bop := ex.OpIndex("B")
	d := NewDiscrete(ex, 0)
	if err := d.SeedDangling([]Dangling{{Op: bop, IssueCycle: 0, ID: 1}}); err == nil {
		t.Error("non-negative issue cycle accepted")
	}
	d2 := NewDiscrete(ex, 0)
	d2.Assign(bop, 5, 1)
	if err := d2.SeedDangling([]Dangling{{Op: bop, IssueCycle: -1, ID: 2}}); err == nil {
		t.Error("seeding a non-empty schedule accepted")
	}
	d3 := NewDiscrete(ex, 4)
	if err := d3.SeedDangling(nil); err == nil {
		t.Error("seeding a modulo table accepted")
	}
	// Colliding dangling requirements (two Bs one cycle apart share r3).
	d4 := NewDiscrete(ex, 0)
	err := d4.SeedDangling([]Dangling{
		{Op: bop, IssueCycle: -3, ID: 1},
		{Op: bop, IssueCycle: -4, ID: 2},
	})
	if err == nil {
		t.Error("colliding dangling requirements accepted")
	}
}

func TestDanglingFromExtraction(t *testing.T) {
	ex := figure1()
	a, bop := ex.OpIndex("A"), ex.OpIndex("B")
	d := NewDiscrete(ex, 0)
	d.Assign(a, 0, 1)   // span 3: ends at cycle 3, before exit
	d.Assign(bop, 4, 2) // span 8: extends to cycle 12, past exit 6
	span := func(op int) int { return ex.Ops[op].Table.Span() }
	ds := DanglingFrom(d.Instances(), span, 6)
	if len(ds) != 1 || ds[0].ID != 2 || ds[0].Op != bop || ds[0].IssueCycle != -2 {
		t.Fatalf("DanglingFrom = %+v, want B re-anchored at -2", ds)
	}
}

// doubleUseMachine builds an expanded description whose only operation
// reserves the SAME (resource, cycle) cell twice — a degenerate but
// legal reservation table (e.g. produced by a generator that does not
// normalize). Constructed directly so no Normalize pass dedups it.
func doubleUseMachine() *resmodel.Expanded {
	return &resmodel.Expanded{
		Name:      "double-use",
		Resources: []string{"r0", "r1"},
		Ops: []resmodel.ExpandedOp{{
			Name:    "D",
			Latency: 1,
			Table: resmodel.Table{Uses: []resmodel.Usage{
				{Resource: 0, Cycle: 0},
				{Resource: 1, Cycle: 1},
				{Resource: 1, Cycle: 1}, // double use of the same cell
			}},
		}},
		AltGroup: [][]int{{0}},
	}
}

// TestSeedDanglingDoubleUse is the regression test for the bitvector
// false positive: one dangling op whose reservation table uses the same
// (resource, cycle) cell twice must seed cleanly on BOTH representations
// — Discrete tolerates same-ID overlap, and the bitvector path must
// agree instead of reporting a self-collision.
func TestSeedDanglingDoubleUse(t *testing.T) {
	e := doubleUseMachine()
	// IssueCycle -1: r0@0 lands at -1 (consumed in the predecessor), the
	// doubled r1@1 lands at cycle 0 twice.
	ds := []Dangling{{Op: 0, IssueCycle: -1, ID: 7}}

	d := NewDiscrete(e, 0)
	if err := d.SeedDangling(ds); err != nil {
		t.Fatalf("Discrete.SeedDangling on a double-use table: %v", err)
	}
	bv, err := NewBitvector(e, 4, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := bv.SeedDangling(ds); err != nil {
		t.Errorf("Bitvector.SeedDangling on a double-use table: %v", err)
	}
	// Both representations must answer identically after seeding.
	for cyc := 0; cyc < 6; cyc++ {
		if got, want := bv.Check(0, cyc), d.Check(0, cyc); got != want {
			t.Errorf("Check(D, %d): bitvector %v, discrete %v", cyc, got, want)
		}
	}

	// Genuine collisions (two distinct instances on one cell) must still
	// error on both representations.
	collide := []Dangling{
		{Op: 0, IssueCycle: -1, ID: 1},
		{Op: 0, IssueCycle: -1, ID: 2},
	}
	if err := NewDiscrete(e, 0).SeedDangling(collide); err == nil {
		t.Error("Discrete accepted a genuine two-instance collision")
	}
	bv2, _ := NewBitvector(e, 4, 64, 0)
	if err := bv2.SeedDangling(collide); err == nil {
		t.Error("Bitvector accepted a genuine two-instance collision")
	}
}

// TestSeedDanglingUnionParity drives randomized dangling sets — with
// deliberate overlaps, since different predecessors may dangle the same
// requirement — through Discrete.SeedDanglingUnion and
// Bitvector.SeedDanglingUnion and checks that every contention query
// answers identically afterwards (DESIGN §1's multi-predecessor boundary
// condition must not depend on the representation).
func TestSeedDanglingUnionParity(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		k := MaxCyclesPerWord(len(e.Resources), 64)
		if k < 1 {
			continue
		}

		// Random dangling set: a few ops issued shortly before the entry,
		// drawn with replacement so overlapping requirements are common.
		var ds []Dangling
		for i := 0; i < 2+rng.Intn(5); i++ {
			op := rng.Intn(len(e.Ops))
			span := e.Ops[op].Table.Span()
			if span < 2 {
				continue
			}
			ds = append(ds, Dangling{Op: op, IssueCycle: -1 - rng.Intn(span-1), ID: 100 + i})
		}
		if len(ds) == 0 {
			continue
		}

		d := NewDiscrete(e, 0)
		if err := d.SeedDanglingUnion(ds); err != nil {
			t.Fatalf("seed %d: Discrete.SeedDanglingUnion: %v", seed, err)
		}
		bv, err := NewBitvector(e, k, 64, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := bv.SeedDanglingUnion(ds); err != nil {
			t.Fatalf("seed %d: Bitvector.SeedDanglingUnion: %v", seed, err)
		}
		for op := range e.Ops {
			for cyc := 0; cyc < 12; cyc++ {
				if got, want := bv.Check(op, cyc), d.Check(op, cyc); got != want {
					t.Fatalf("seed %d: Check(op %d, cycle %d): bitvector %v, discrete %v",
						seed, op, cyc, got, want)
				}
			}
		}

		// SeedDangling (the colliding variant) must agree on whether the
		// same set is an error.
		dErr := NewDiscrete(e, 0).SeedDangling(ds)
		bv2, err := NewBitvector(e, k, 64, 0)
		if err != nil {
			t.Fatal(err)
		}
		bErr := bv2.SeedDangling(ds)
		if (dErr == nil) != (bErr == nil) {
			t.Fatalf("seed %d: SeedDangling disagreement: discrete %v, bitvector %v", seed, dErr, bErr)
		}
	}
}

// Property: scheduling a block with dangling requirements is exactly
// equivalent to scheduling the concatenated trace on one long table —
// the paper's claim that boundary conditions are handled precisely.
func TestQuickDanglingEquivalentToConcatenation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		span := func(op int) int { return e.Ops[op].Table.Span() }

		// Schedule a predecessor block greedily on a single long table.
		long := NewDiscrete(e, 0)
		exit := 6 + rng.Intn(6)
		id := 1
		for step := 0; step < 10; step++ {
			op := rng.Intn(len(e.Ops))
			cyc := rng.Intn(exit)
			if long.Check(op, cyc) {
				long.Assign(op, cyc, id)
				id++
			}
		}
		// Successor module seeded with the dangling requirements.
		ds := DanglingFrom(long.Instances(), span, exit)
		// Order for determinism.
		sort.Slice(ds, func(i, j int) bool { return ds[i].ID < ds[j].ID })
		succ := NewDiscrete(e, 0)
		if err := succ.SeedDangling(ds); err != nil {
			// Collisions cannot happen: the long table verified them.
			return false
		}
		// Every query in the successor block must answer exactly like the
		// concatenated table at offset exit.
		for step := 0; step < 60; step++ {
			op := rng.Intn(len(e.Ops))
			cyc := rng.Intn(12)
			want := long.Check(op, exit+cyc)
			if succ.Check(op, cyc) != want {
				return false
			}
			if want && rng.Intn(2) == 0 {
				long.Assign(op, exit+cyc, id)
				succ.Assign(op, cyc, id)
				id++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
