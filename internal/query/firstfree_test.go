package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machines"
	"repro/internal/resmodel"
)

// rangeModules builds every RangeQuerier implementation for a machine:
// the discrete module and the 1- and max-k-cycle-word bitvector ones.
func rangeModules(t *testing.T, e *resmodel.Expanded, ii int) map[string]Module {
	t.Helper()
	ms := map[string]Module{"discrete": NewDiscrete(e, ii)}
	for _, k := range []int{1, MaxCyclesPerWord(len(e.Resources), 64)} {
		if k < 1 {
			continue
		}
		bv, err := NewBitvector(e, k, 64, ii)
		if err != nil {
			t.Fatalf("NewBitvector(k=%d): %v", k, err)
		}
		ms["bitvec-k"+string(rune('0'+k))] = bv
	}
	return ms
}

// fillRandom assigns a random contention-free partial schedule, identical
// across modules for a fixed seed.
func fillRandom(rng *rand.Rand, m Module, e *resmodel.Expanded, ii, n int) {
	span := 40
	if ii > 0 {
		span = 3 * ii
	}
	id := 0
	for i := 0; i < n; i++ {
		op := rng.Intn(len(e.Ops))
		cyc := rng.Intn(span)
		if m.Schedulable(op) && m.Check(op, cyc) {
			m.Assign(op, cyc, id)
			id++
		}
	}
}

// TestFirstFreeMatchesNaive pins the heart of the range-query contract:
// FirstFree answers exactly what a naive loop over Check answers — same
// cycle, same found/not-found — and FirstFreeCycles advances by exactly
// the number of Check probes that loop would have issued, over random
// machines, random partial schedules, linear and modulo tables, and
// windows that are empty, in-table, straddling and beyond the table.
func TestFirstFreeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for mi := 0; mi < 12; mi++ {
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		for _, ii := range []int{0, 1 + rng.Intn(8)} {
			for name, m := range rangeModules(t, e, ii) {
				rq := m.(RangeQuerier)
				fillRandom(rand.New(rand.NewSource(int64(mi))), m, e, ii, 25)
				for trial := 0; trial < 60; trial++ {
					op := rng.Intn(len(e.Ops))
					lo := rng.Intn(45)
					if ii > 0 {
						lo = rng.Intn(6*ii) - 3*ii
					}
					hi := lo + rng.Intn(30) - 2 // sometimes empty
					checks0 := m.Counters().CheckCalls
					wantCycle, wantOK := FirstFreeNaive(m, op, lo, hi)
					// The naive loop just issued the reference probe count;
					// the range query must account exactly that number.
					naiveProbes := m.Counters().CheckCalls - checks0
					cycles0 := m.Counters().FirstFreeCycles
					gotCycle, gotOK := rq.FirstFree(op, lo, hi)
					if gotOK != wantOK || (wantOK && gotCycle != wantCycle) {
						t.Fatalf("machine %d ii=%d %s: FirstFree(%d, %d, %d) = (%d, %v), naive (%d, %v)",
							mi, ii, name, op, lo, hi, gotCycle, gotOK, wantCycle, wantOK)
					}
					if got := m.Counters().FirstFreeCycles - cycles0; got != naiveProbes {
						t.Fatalf("machine %d ii=%d %s: FirstFree(%d, %d, %d) accounted %d cycles, naive issued %d checks",
							mi, ii, name, op, lo, hi, got, naiveProbes)
					}
				}
			}
		}
	}
}

// TestFirstFreeWithAltMatchesNaive is the with-alternatives differential:
// same first feasible cycle, same alternative-group tie-break, and a
// FirstFreeCycles advance equal to the Check probes the naive
// CheckWithAlt loop issues (alternatives tried times cycles scanned).
func TestFirstFreeWithAltMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for mi := 0; mi < 12; mi++ {
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		for _, ii := range []int{0, 1 + rng.Intn(8)} {
			for name, m := range rangeModules(t, e, ii) {
				rq := m.(RangeQuerier)
				fillRandom(rand.New(rand.NewSource(int64(mi)+100)), m, e, ii, 25)
				for trial := 0; trial < 60; trial++ {
					origOp := rng.Intn(len(e.AltGroup))
					lo := rng.Intn(45)
					if ii > 0 {
						lo = rng.Intn(6*ii) - 3*ii
					}
					hi := lo + rng.Intn(30) - 2
					checks0 := m.Counters().CheckCalls
					wantOp, wantCycle, wantOK := FirstFreeWithAltNaive(m, origOp, lo, hi)
					naiveProbes := m.Counters().CheckCalls - checks0
					cycles0 := m.Counters().FirstFreeCycles
					gotOp, gotCycle, gotOK := rq.FirstFreeWithAlt(origOp, lo, hi)
					if gotOK != wantOK || (wantOK && (gotCycle != wantCycle || gotOp != wantOp)) {
						t.Fatalf("machine %d ii=%d %s: FirstFreeWithAlt(%d, %d, %d) = (op %d, cycle %d, %v), naive (op %d, cycle %d, %v)",
							mi, ii, name, origOp, lo, hi, gotOp, gotCycle, gotOK, wantOp, wantCycle, wantOK)
					}
					if got := m.Counters().FirstFreeCycles - cycles0; got != naiveProbes {
						t.Fatalf("machine %d ii=%d %s: FirstFreeWithAlt(%d, %d, %d) accounted %d cycles, naive issued %d checks",
							mi, ii, name, origOp, lo, hi, got, naiveProbes)
					}
				}
			}
		}
	}
}

// TestFirstFreeDanglingWindows runs the differential over linear tables
// seeded with dangling requirements from a predecessor block — windows at
// the block entry where the reserved table is pre-populated by boundary
// conditions rather than Assign calls.
func TestFirstFreeDanglingWindows(t *testing.T) {
	e := machines.Cydra5().Expand()
	ds := []Dangling{{Op: 0, IssueCycle: -1, ID: 900}}
	for name, m := range rangeModules(t, e, 0) {
		seeder, ok := m.(DanglingSeeder)
		if !ok {
			t.Fatalf("%s: no dangling support", name)
		}
		if err := seeder.SeedDangling(ds); err != nil {
			t.Fatalf("%s: SeedDangling: %v", name, err)
		}
		rq := m.(RangeQuerier)
		for op := 0; op < len(e.Ops); op++ {
			for lo := 0; lo < 6; lo++ {
				for hi := lo; hi < lo+8; hi++ {
					wantCycle, wantOK := FirstFreeNaive(m, op, lo, hi)
					gotCycle, gotOK := rq.FirstFree(op, lo, hi)
					if gotOK != wantOK || (wantOK && gotCycle != wantCycle) {
						t.Fatalf("%s: dangling FirstFree(%d, %d, %d) = (%d, %v), naive (%d, %v)",
							name, op, lo, hi, gotCycle, gotOK, wantCycle, wantOK)
					}
				}
			}
		}
	}
}

// TestFirstFreeQuick is quick.Check property coverage: for arbitrary
// (op, lo, width, fill seed) on a fixed machine, both representations
// agree with the naive loop at a modulo and a linear table.
func TestFirstFreeQuick(t *testing.T) {
	e := machines.Cydra5().Expand()
	prop := func(opSeed, loSeed, widthSeed uint8, fill int64) bool {
		for _, ii := range []int{0, 7} {
			for _, m := range rangeModules(t, e, ii) {
				rq := m.(RangeQuerier)
				fillRandom(rand.New(rand.NewSource(fill)), m, e, ii, 20)
				op := int(opSeed) % len(e.Ops)
				lo := int(loSeed) % 40
				if ii > 0 {
					lo -= 20
				}
				hi := lo + int(widthSeed)%25
				wantCycle, wantOK := FirstFreeNaive(m, op, lo, hi)
				gotCycle, gotOK := rq.FirstFree(op, lo, hi)
				if gotOK != wantOK || (wantOK && gotCycle != wantCycle) {
					return false
				}
				origOp := int(opSeed) % len(e.AltGroup)
				wantAlt, wantC2, wantOK2 := FirstFreeWithAltNaive(m, origOp, lo, hi)
				gotAlt, gotC2, gotOK2 := rq.FirstFreeWithAlt(origOp, lo, hi)
				if gotOK2 != wantOK2 || (wantOK2 && (gotC2 != wantC2 || gotAlt != wantAlt)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckWorkBeyondTable is the work-accounting regression test for the
// linear bitvector check: a probe whose words all fall beyond the
// reserved table must charge exactly one work unit — the comparison that
// discovered the out-of-range word — not zero and not one per remaining
// word, so CheckPerCall stays the paper's per-probed-word metric on both
// the linear and the modulo path.
func TestCheckWorkBeyondTable(t *testing.T) {
	e := figure1()
	b, err := NewBitvector(e, 1, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	opB := -1
	for i, op := range e.Ops {
		if op.Name == "B" {
			opB = i
		}
	}
	if opB < 0 {
		t.Fatal("figure1 has no op B")
	}
	words := b.WordsPerOp(opB, 0)
	if words < 2 {
		t.Fatalf("op B packs into %d words, need >= 2 for the regression", words)
	}
	far := len(b.reserved)*b.k + 5

	w0 := b.ctr.CheckWork
	if !b.Check(opB, far) {
		t.Fatalf("empty table: Check(B, %d) = false", far)
	}
	if got := b.ctr.CheckWork - w0; got != 1 {
		t.Errorf("fully out-of-range check charged %d work units, want 1", got)
	}

	// An in-range probe of the empty table still pays for every word.
	w0 = b.ctr.CheckWork
	if !b.Check(opB, 0) {
		t.Fatal("empty table: Check(B, 0) = false")
	}
	if got := b.ctr.CheckWork - w0; got != int64(words) {
		t.Errorf("in-range check charged %d work units, want %d", got, words)
	}
}

// TestFirstFreeZeroAlloc pins that steady-state range queries allocate
// nothing on either representation, with metrics disabled (the scheduler
// hot path) — mirroring the Check/AssignFree alloc pins.
func TestFirstFreeZeroAlloc(t *testing.T) {
	const ii = 24
	bv := fillBitvector(t, ii)
	d := fillDiscrete(t, ii)
	cases := []struct {
		name string
		fn   func()
	}{
		{"bitvector-first-free", func() { bv.FirstFree(3, 5, 5+ii-1) }},
		{"bitvector-first-free-alt", func() { bv.FirstFreeWithAlt(1, 5, 5+ii-1) }},
		{"discrete-first-free", func() { d.FirstFree(3, 5, 5+ii-1) }},
		{"discrete-first-free-alt", func() { d.FirstFreeWithAlt(1, 5, 5+ii-1) }},
	}
	for _, c := range cases {
		if n := testing.AllocsPerRun(2000, c.fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, n)
		}
	}
}

// The FirstFree benchmark quartet mirrors BenchmarkCheck*: metrics
// disabled must be 0 allocs/op; the *Metrics variants price the enabled
// path, which may pay for atomics but not allocate either.

func BenchmarkFirstFreeDiscrete(b *testing.B) {
	d := fillDiscrete(b, 24)
	ops := len(d.e.Ops)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.FirstFree(i%ops, i%24, i%24+23)
	}
}

func BenchmarkFirstFreeDiscreteMetrics(b *testing.B) {
	withMetrics(b, func() {
		d := fillDiscrete(b, 24)
		ops := len(d.e.Ops)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.FirstFree(i%ops, i%24, i%24+23)
		}
		b.StopTimer()
	})
}

func BenchmarkFirstFreeBitvector(b *testing.B) {
	mod := fillBitvector(b, 24)
	ops := len(mod.e.Ops)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod.FirstFree(i%ops, i%24, i%24+23)
	}
}

func BenchmarkFirstFreeBitvectorMetrics(b *testing.B) {
	withMetrics(b, func() {
		mod := fillBitvector(b, 24)
		ops := len(mod.e.Ops)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mod.FirstFree(i%ops, i%24, i%24+23)
		}
		b.StopTimer()
	})
}

func BenchmarkFirstFreeWithAltBitvector(b *testing.B) {
	mod := fillBitvector(b, 24)
	groups := len(mod.e.AltGroup)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod.FirstFreeWithAlt(i%groups, i%24, i%24+23)
	}
}

// The *Naive pair prices the reference per-cycle loop on the same
// module and ranges, so `go test -bench FirstFree` shows the per-call
// gap the range scan buys before any scheduler-level amortization.

func BenchmarkFirstFreeBitvectorNaive(b *testing.B) {
	mod := fillBitvector(b, 24)
	ops := len(mod.e.Ops)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FirstFreeNaive(mod, i%ops, i%24, i%24+23)
	}
}

func BenchmarkFirstFreeWithAltBitvectorNaive(b *testing.B) {
	mod := fillBitvector(b, 24)
	groups := len(mod.e.AltGroup)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FirstFreeWithAltNaive(mod, i%groups, i%24, i%24+23)
	}
}
