package query

import (
	"fmt"
	"sort"

	"repro/internal/resmodel"
)

// packedWord is one non-empty word of a packed reservation table: Word is
// the word offset from the query cycle's base word, Bits the resource
// flags for the K cycles the word covers.
type packedWord struct {
	Word int
	Bits uint64
}

// Bitvector is the bitvector-representation reserved table: the per-cycle
// resource flags are packed K cycle-bitvectors per memory word, so one
// AND-and-test detects contentions for K consecutive cycles. With II > 0
// it is a Modulo Reservation Table.
//
// assign&free starts in optimistic mode, carrying no operation-owner
// fields; the first conflict forces a transition to update mode, which
// scans the scheduled-instance list to reconstruct the owner fields and
// maintains them thereafter (Section 7). free stays word-based in both
// modes: the bitvector flags are the source of truth, and a stale owner
// entry under a cleared flag is never consulted.
type Bitvector struct {
	e        *resmodel.Expanded
	c        *compiled
	ii       int // 0 = linear
	nRes     int
	k        int // effective cycles per word
	wordBits int
	cycMask  uint64 // low nRes bits

	// packed[op][alignment], sorted by word: the table placed a cycles
	// into its base word, so a probe at cycle t ANDs packed[op][t%k]
	// word-aligned against the reserved words starting at t/k. Linear
	// tables grow reserved[w] (covering cycles [w*k, (w+1)*k)) on demand.
	packed   [][][]packedWord
	reserved []uint64

	// Modulo: packed0[op] is the alignment-0 packing of the folded table
	// (what Check/Assign start from); mirror covers cycles [0, 2*II)
	// (both images kept in sync) so any k-cycle window starting in
	// [0, II) is read from adjacent words without wraparound.
	packed0 [][]packedWord
	mirror  []uint64

	// occ is the occupancy summary bitmap: bit w is set iff word w of the
	// backing table (mirror for modulo, reserved for linear) is non-zero.
	// It is maintained on every table mutation and lets range scans answer
	// "this candidate's whole word window is free" in O(1) instead of
	// ANDing empty words. noSummary disables the fast path (differential
	// tests pin it byte-identical to the plain word scan).
	occ       []uint64
	noSummary bool

	// rows backs the bit-parallel verdict scan (see verdict.go): one
	// cycle-bitmap of rowW words per resource, flat. Modulo tables keep
	// three images (bit p == busy(p mod II) for p in [0, 3*II)) so any
	// window read stays in bounds; linear tables map bit t to cycle t and
	// grow in step with reserved. Maintained by the same mutations that
	// maintain mirror/reserved; noVerdict falls the range scans back to
	// the per-candidate word scan. altVerdict is the FirstFreeWithAlt
	// scratch holding one verdict word per alternative (sized for the
	// largest group at construction, so scans allocate nothing).
	rows       []uint64
	rowW       int
	noVerdict  bool
	altVerdict []uint64

	// Alternative-union packed words for the fast check-with-alt path
	// (nil until EnableFastAlt).
	altUnion  [][][]packedWord // linear: [origOp][alignment]
	altUnion0 [][]packedWord   // modulo: [origOp]

	inst       map[int]instance
	updateMode bool
	owners     []int32
	ownerWidth int
	// evictScratch backs the slice AssignFree returns, reused across
	// calls so steady-state eviction allocates nothing.
	evictScratch []int
	ctr          Counters
	met          *ModuleObs // nil while metrics are disabled
}

// NewBitvector creates a bitvector-representation module. k is the number
// of cycle-bitvectors packed per word of wordBits bits (use
// MaxCyclesPerWord to derive the densest legal packing); ii == 0 selects a
// linear reserved table, ii > 0 a Modulo Reservation Table. For modulo
// tables the effective packing is capped at ii cycles per word.
func NewBitvector(e *resmodel.Expanded, k, wordBits, ii int) (*Bitvector, error) {
	nRes := len(e.Resources)
	if wordBits != 32 && wordBits != 64 {
		return nil, fmt.Errorf("query: wordBits must be 32 or 64, got %d", wordBits)
	}
	if k < 1 {
		return nil, fmt.Errorf("query: k must be >= 1, got %d", k)
	}
	if k*nRes > wordBits {
		return nil, fmt.Errorf("query: %d cycles x %d resources = %d bits exceed the %d-bit word",
			k, nRes, k*nRes, wordBits)
	}
	if ii < 0 {
		return nil, fmt.Errorf("query: negative II %d", ii)
	}
	if ii > 0 && k > ii {
		k = ii // a word may not cover more cycles than the MRT has columns
	}
	b := &Bitvector{
		e: e, c: compileFor(e, ii), ii: ii, nRes: nRes, k: k, wordBits: wordBits,
		cycMask: uint64(1)<<uint(nRes) - 1,
		inst:    map[int]instance{},
		met:     NewModuleObs("bitvector"),
	}
	pt := b.c.packsFor(nRes, k)
	b.packed = pt.packed
	if ii > 0 {
		b.packed0 = pt.packed0
		b.mirror = make([]uint64, (2*ii+k-1)/k+2)
		b.occ = make([]uint64, (len(b.mirror)+63)/64)
		b.rowW = (3*ii+63)/64 + 1
	} else {
		b.reserved = make([]uint64, (b.c.maxSpan()+16)/k+2)
		b.occ = make([]uint64, (len(b.reserved)+63)/64)
		b.rowW = (len(b.reserved)*k+63)/64 + 1
	}
	b.rows = make([]uint64, nRes*b.rowW)
	maxGroup := 1
	for _, g := range e.AltGroup {
		if len(g) > maxGroup {
			maxGroup = len(g)
		}
	}
	b.altVerdict = make([]uint64, maxGroup)
	return b, nil
}

// SetSummaryScan toggles the occupancy-summary fast path of the range
// scans (enabled by default). Schedules and probe accounting are
// byte-identical either way; the toggle exists for the differential
// tests and for benchmarking the scan against the plain word loop.
func (b *Bitvector) SetSummaryScan(on bool) { b.noSummary = !on }

// MaxCyclesPerWord returns the densest legal packing for a machine with
// numResources resources in a word of wordBits bits, or 0 if even one
// cycle does not fit.
func MaxCyclesPerWord(numResources, wordBits int) int {
	if numResources <= 0 {
		return 0
	}
	return wordBits / numResources
}

// packUses packs usages shifted by align cycles into sorted non-empty
// words of k cycles each.
func packUses(uses []resmodel.Usage, nRes, k, align int) []packedWord {
	words := map[int]uint64{}
	for _, u := range uses {
		c := u.Cycle + align
		words[c/k] |= 1 << uint((c%k)*nRes+u.Resource)
	}
	out := make([]packedWord, 0, len(words))
	for w, bits := range words {
		out = append(out, packedWord{Word: w, Bits: bits})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Word < out[j].Word })
	return out
}

// II returns the initiation interval (0 for a linear table).
func (b *Bitvector) II() int { return b.ii }

// K returns the effective number of cycles per word.
func (b *Bitvector) K() int { return b.k }

// UpdateMode reports whether assign&free has transitioned from optimistic
// to update mode.
func (b *Bitvector) UpdateMode() bool { return b.updateMode }

// Schedulable implements Module.
func (b *Bitvector) Schedulable(op int) bool { return !b.c.selfConf[op] }

// WordsPerOp returns the number of non-empty packed words of op's
// reservation table at the given alignment — the work an unobstructed
// Check performs.
func (b *Bitvector) WordsPerOp(op, align int) int {
	if b.ii > 0 {
		return len(b.packed0[op])
	}
	return len(b.packed[op][align%b.k])
}

// --- low-level helpers ---

// growWords extends the linear reserved table to cover word w, doubling
// capacity with a single zeroed allocation (no temporary append slice).
// The occupancy summary grows in step so it always covers every word.
func (b *Bitvector) growWords(w int) {
	if w < len(b.reserved) {
		return
	}
	n := len(b.reserved)
	if n == 0 {
		n = 1
	}
	for n <= w {
		n *= 2
	}
	grown := make([]uint64, n)
	copy(grown, b.reserved)
	b.reserved = grown
	if need := (n + 63) / 64; need > len(b.occ) {
		occ := make([]uint64, need)
		copy(occ, b.occ)
		b.occ = occ
	}
	// The verdict rows cover every cycle the reserved words do; regrow
	// them in step, re-laying each resource's row out at the new stride.
	if need := (n*b.k+63)/64 + 1; need > b.rowW {
		rows := make([]uint64, b.nRes*need)
		for r := 0; r < b.nRes; r++ {
			copy(rows[r*need:], b.rows[r*b.rowW:(r+1)*b.rowW])
		}
		b.rows, b.rowW = rows, need
	}
}

// occMark records word wi of the backing table as non-zero; occSync
// re-derives word wi's summary bit from its current value after bits
// were cleared. Together they maintain the invariant
// occ[wi/64] bit wi%64 == (word wi != 0) at every mutation site.
func (b *Bitvector) occMark(wi int) { b.occ[wi>>6] |= 1 << uint(wi&63) }

func (b *Bitvector) occSync(wi int, word uint64) {
	if word == 0 {
		b.occ[wi>>6] &^= 1 << uint(wi&63)
	}
}

// occAny reports whether any word in [lo, hi] of the backing table is
// non-zero, reading only the summary bitmap.
func (b *Bitvector) occAny(lo, hi int) bool {
	w1, w2 := lo>>6, hi>>6
	headMask := ^uint64(0) << uint(lo&63)
	tailMask := ^uint64(0) >> uint(63-(hi&63))
	if w1 == w2 {
		return b.occ[w1]&headMask&tailMask != 0
	}
	if b.occ[w1]&headMask != 0 {
		return true
	}
	for w := w1 + 1; w < w2; w++ {
		if b.occ[w] != 0 {
			return true
		}
	}
	return b.occ[w2]&tailMask != 0
}

func (b *Bitvector) modCycle(cycle int) int {
	c := cycle % b.ii
	if c < 0 {
		c += b.ii
	}
	return c
}

// window reads the k-cycle window of reserved flags starting at absolute
// MRT cycle s in [0, II); its low k*nRes bits are cycles s .. s+k-1 (mod II).
func (b *Bitvector) window(s int) uint64 {
	p := s / b.k
	offCyc := s % b.k
	off := uint(offCyc * b.nRes)
	v := b.mirror[p] >> off
	if offCyc > 0 {
		v |= b.mirror[p+1] << uint((b.k-offCyc)*b.nRes)
	}
	return v
}

// orCycle ORs one cycle's resource flags into MRT cycle t, maintaining
// both mirror images.
func (b *Bitvector) orCycle(t int, bits uint64) {
	for _, tt := range [2]int{t, t + b.ii} {
		wi := tt / b.k
		b.mirror[wi] |= bits << uint((tt%b.k)*b.nRes)
		b.occMark(wi)
	}
	b.rowsOrCycleMod(t, bits)
}

func (b *Bitvector) andNotCycle(t int, bits uint64) {
	for _, tt := range [2]int{t, t + b.ii} {
		wi := tt / b.k
		b.mirror[wi] &^= bits << uint((tt%b.k)*b.nRes)
		b.occSync(wi, b.mirror[wi])
	}
	b.rowsAndNotCycleMod(t, bits)
}

// orWordMod ORs a packed word (starting at MRT cycle s, in [0, II)) into
// the mirror, cycle by cycle with wraparound.
func (b *Bitvector) orWordMod(w packedWord, s int) {
	for c := 0; c < b.k; c++ {
		bits := (w.Bits >> uint(c*b.nRes)) & b.cycMask
		if bits != 0 {
			b.orCycle((s+c)%b.ii, bits)
		}
	}
}

func (b *Bitvector) andNotWordMod(w packedWord, s int) {
	for c := 0; c < b.k; c++ {
		bits := (w.Bits >> uint(c*b.nRes)) & b.cycMask
		if bits != 0 {
			b.andNotCycle((s+c)%b.ii, bits)
		}
	}
}

// wordStart returns the MRT cycle where op's packed word w starts for a
// query at cycle jm (already reduced mod II).
func (b *Bitvector) wordStart(jm int, w packedWord) int {
	return (jm + w.Word*b.k) % b.ii
}

// --- Module implementation ---

// Check implements Module: one AND-and-test per non-empty reservation
// word, aborting at the first conflict.
func (b *Bitvector) Check(op, cycle int) bool {
	b.ctr.CheckCalls++
	w0 := b.ctr.CheckWork
	ok := false
	if b.c.selfConf[op] {
		b.ctr.CheckWork++
	} else {
		ok = b.check(op, cycle)
	}
	b.met.OnCheck(b.ctr.CheckWork - w0)
	return ok
}

func (b *Bitvector) check(op, cycle int) bool {
	if b.ii > 0 {
		jm := b.modCycle(cycle)
		for _, w := range b.packed0[op] {
			b.ctr.CheckWork++
			if b.window(b.wordStart(jm, w))&w.Bits != 0 {
				return false
			}
		}
		return true
	}
	if cycle < 0 {
		panic(fmt.Sprintf("query: negative cycle %d on linear reserved table", cycle))
	}
	a, base := cycle%b.k, cycle/b.k
	for _, w := range b.packed[op][a] {
		b.ctr.CheckWork++
		wi := base + w.Word
		if wi >= len(b.reserved) {
			// Words are sorted, so this word and every later one lie
			// beyond the reserved table and are trivially free. The
			// comparison that discovered that is the one work unit
			// charged above — mirroring the modulo path, where every
			// probed word costs exactly one unit.
			break
		}
		if b.reserved[wi]&w.Bits != 0 {
			return false
		}
	}
	return true
}

// Assign implements Module: one OR per non-empty reservation word.
func (b *Bitvector) Assign(op, cycle, id int) {
	b.ctr.AssignCalls++
	b.mustSchedulable(op)
	w0 := b.ctr.AssignWork
	b.orTable(op, cycle, &b.ctr.AssignWork)
	b.inst[id] = instance{op, cycle}
	if b.updateMode {
		b.setOwners(op, cycle, int32(id))
	}
	b.met.OnAssign(b.ctr.AssignWork - w0)
}

func (b *Bitvector) orTable(op, cycle int, work *int64) {
	if b.ii > 0 {
		jm := b.modCycle(cycle)
		for _, w := range b.packed0[op] {
			*work++
			b.orWordMod(w, b.wordStart(jm, w))
		}
		return
	}
	a, base := cycle%b.k, cycle/b.k
	for _, w := range b.packed[op][a] {
		*work++
		wi := base + w.Word
		b.growWords(wi)
		b.reserved[wi] |= w.Bits
		b.occMark(wi)
		b.rowsOrWordLin(wi, w.Bits)
	}
}

func (b *Bitvector) andNotTable(op, cycle int, work *int64) {
	if b.ii > 0 {
		jm := b.modCycle(cycle)
		for _, w := range b.packed0[op] {
			*work++
			b.andNotWordMod(w, b.wordStart(jm, w))
		}
		return
	}
	a, base := cycle%b.k, cycle/b.k
	for _, w := range b.packed[op][a] {
		*work++
		wi := base + w.Word
		if wi < len(b.reserved) {
			b.reserved[wi] &^= w.Bits
			b.occSync(wi, b.reserved[wi])
			b.rowsAndNotWordLin(wi, w.Bits)
		}
	}
}

// Free implements Module: one AND-NOT per non-empty reservation word.
func (b *Bitvector) Free(op, cycle, id int) {
	b.ctr.FreeCalls++
	w0 := b.ctr.FreeWork
	b.andNotTable(op, cycle, &b.ctr.FreeWork)
	delete(b.inst, id)
	b.met.OnFree(b.ctr.FreeWork - w0)
}

// AssignFree implements Module.
func (b *Bitvector) AssignFree(op, cycle, id int) []int {
	b.ctr.AssignFreeCalls++
	b.mustSchedulable(op)
	w0 := b.ctr.AssignFreeWork
	if !b.updateMode {
		if b.optimisticAssign(op, cycle) {
			b.inst[id] = instance{op, cycle}
			b.met.OnAssignFree(b.ctr.AssignFreeWork-w0, 0)
			return nil
		}
		// Conflict: transition from optimistic to update mode.
		b.ctr.ModeTransitions++
		b.met.OnModeTransition()
		b.enterUpdateMode()
	}
	evicted := b.updateAssignFree(op, cycle, id)
	b.inst[id] = instance{op, cycle}
	b.ctr.Unscheduled += int64(len(evicted))
	if len(evicted) > 0 {
		b.ctr.AssignFreeEvicting++
	}
	b.met.OnAssignFree(b.ctr.AssignFreeWork-w0, len(evicted))
	return evicted
}

func (b *Bitvector) mustSchedulable(op int) {
	if b.c.selfConf[op] {
		panic(fmt.Sprintf("query: op %q is unschedulable at II=%d (reservation table folds onto itself)",
			b.e.Ops[op].Name, b.ii))
	}
}

// optimisticAssign is the single-pass AND-test-then-OR of optimistic mode;
// on conflict it rolls back the words already ORed (the rollback handling
// is counted as work) and reports failure.
func (b *Bitvector) optimisticAssign(op, cycle int) bool {
	if b.ii > 0 {
		jm := b.modCycle(cycle)
		words := b.packed0[op]
		for i, w := range words {
			b.ctr.AssignFreeWork++
			s := b.wordStart(jm, w)
			if b.window(s)&w.Bits != 0 {
				for j := 0; j < i; j++ {
					b.ctr.AssignFreeWork++
					b.andNotWordMod(words[j], b.wordStart(jm, words[j]))
				}
				return false
			}
			b.orWordMod(w, s)
		}
		return true
	}
	a, base := cycle%b.k, cycle/b.k
	words := b.packed[op][a]
	for i, w := range words {
		b.ctr.AssignFreeWork++
		wi := base + w.Word
		b.growWords(wi)
		if b.reserved[wi]&w.Bits != 0 {
			for j := 0; j < i; j++ {
				b.ctr.AssignFreeWork++
				wj := base + words[j].Word
				b.reserved[wj] &^= words[j].Bits
				b.occSync(wj, b.reserved[wj])
				b.rowsAndNotWordLin(wj, words[j].Bits)
			}
			return false
		}
		b.reserved[wi] |= w.Bits
		b.occMark(wi)
		b.rowsOrWordLin(wi, w.Bits)
	}
	return true
}

// enterUpdateMode materializes the owner grid by scanning the entire
// scheduled-instance list; each reconstructed usage is one work unit,
// charged to the AssignFree that triggered the transition.
func (b *Bitvector) enterUpdateMode() {
	b.updateMode = true
	if b.ii > 0 {
		b.ownerWidth = b.ii
	} else {
		need := 16
		for _, in := range b.inst {
			if end := in.cycle + b.c.spans[in.op]; end > need {
				need = end
			}
		}
		b.ownerWidth = need
	}
	if n := b.nRes * b.ownerWidth; cap(b.owners) >= n {
		b.owners = b.owners[:n]
	} else {
		b.owners = make([]int32, n)
	}
	for i := range b.owners {
		b.owners[i] = -1
	}
	for id, in := range b.inst {
		b.ctr.AssignFreeWork += int64(len(b.c.uses[in.op]))
		b.setOwners(in.op, in.cycle, int32(id))
	}
}

func (b *Bitvector) ownerCell(r, cycle int) *int32 {
	var c int
	if b.ii > 0 {
		c = b.modCycle(cycle)
	} else {
		if cycle >= b.ownerWidth {
			// Double the grid width; only the fresh tail of each resource
			// row needs the -1 (unowned) fill. When the backing array is
			// already wide enough (a reset module regrowing), the rows are
			// reshaped in place back to front — row r moves from offset
			// r*oldWidth to the strictly larger r*newWidth, so descending
			// over rows never clobbers an unmoved one, and copy handles
			// the overlap within a row.
			ow, nw := b.ownerWidth, b.ownerWidth
			for nw <= cycle {
				nw *= 2
			}
			if cap(b.owners) >= b.nRes*nw {
				cells := b.owners[:b.nRes*nw]
				for rr := b.nRes - 1; rr >= 0; rr-- {
					row := cells[rr*nw : (rr+1)*nw]
					copy(row, cells[rr*ow:(rr+1)*ow])
					for i := ow; i < nw; i++ {
						row[i] = -1
					}
				}
				b.owners, b.ownerWidth = cells, nw
			} else {
				cells := make([]int32, b.nRes*nw)
				for rr := 0; rr < b.nRes; rr++ {
					row := cells[rr*nw : (rr+1)*nw]
					copy(row, b.owners[rr*ow:(rr+1)*ow])
					for i := ow; i < nw; i++ {
						row[i] = -1
					}
				}
				b.owners, b.ownerWidth = cells, nw
			}
		}
		c = cycle
	}
	return &b.owners[r*b.ownerWidth+c]
}

func (b *Bitvector) setOwners(op, cycle int, id int32) {
	for _, u := range b.c.uses[op] {
		*b.ownerCell(u.Resource, cycle+u.Cycle) = id
	}
}

// updateAssignFree is the usage-by-usage assign&free of update mode. The
// returned eviction list is backed by a scratch buffer owned by the
// module and is valid until the next AssignFree call — the scheduler
// consumes it immediately, so steady-state evictions allocate nothing.
func (b *Bitvector) updateAssignFree(op, cycle, id int) []int {
	evicted := b.evictScratch[:0]
	for _, u := range b.c.uses[op] {
		b.ctr.AssignFreeWork++
		t := cycle + u.Cycle
		if b.reservedBit(u.Resource, t) {
			cell := b.ownerCell(u.Resource, t)
			if other := int(*cell); other >= 0 && other != id {
				evicted = append(evicted, other)
				b.evict(other)
			}
		}
		b.setBit(u.Resource, t)
		*b.ownerCell(u.Resource, t) = int32(id)
	}
	b.evictScratch = evicted
	return evicted
}

// evict unschedules a conflicting instance usage by usage (update mode
// only); the work is charged to the enclosing AssignFree.
func (b *Bitvector) evict(id int) {
	in, ok := b.inst[id]
	if !ok {
		panic(fmt.Sprintf("query: evicting unknown instance %d", id))
	}
	for _, u := range b.c.uses[in.op] {
		b.ctr.AssignFreeWork++
		t := in.cycle + u.Cycle
		cell := b.ownerCell(u.Resource, t)
		if int(*cell) == id {
			*cell = -1
			b.clearBit(u.Resource, t)
		}
	}
	delete(b.inst, id)
}

func (b *Bitvector) reservedBit(r, cycle int) bool {
	if b.ii > 0 {
		t := b.modCycle(cycle)
		return b.mirror[t/b.k]&(1<<uint((t%b.k)*b.nRes+r)) != 0
	}
	wi := cycle / b.k
	return wi < len(b.reserved) && b.reserved[wi]&(1<<uint((cycle%b.k)*b.nRes+r)) != 0
}

func (b *Bitvector) setBit(r, cycle int) {
	if b.ii > 0 {
		b.orCycle(b.modCycle(cycle), 1<<uint(r))
		return
	}
	wi := cycle / b.k
	b.growWords(wi)
	b.reserved[wi] |= 1 << uint((cycle%b.k)*b.nRes+r)
	b.occMark(wi)
	b.rowsOrWordLin(wi, 1<<uint((cycle%b.k)*b.nRes+r))
}

func (b *Bitvector) clearBit(r, cycle int) {
	if b.ii > 0 {
		b.andNotCycle(b.modCycle(cycle), 1<<uint(r))
		return
	}
	wi := cycle / b.k
	if wi < len(b.reserved) {
		b.reserved[wi] &^= 1 << uint((cycle%b.k)*b.nRes+r)
		b.occSync(wi, b.reserved[wi])
		b.rowsAndNotWordLin(wi, 1<<uint((cycle%b.k)*b.nRes+r))
	}
}

// CheckWithAlt implements Module. With EnableFastAlt, a clean pass over
// the alternatives' unioned reservation words answers for every
// alternative at once; otherwise (or on a union conflict) alternatives
// are checked individually.
func (b *Bitvector) CheckWithAlt(origOp, cycle int) (int, bool) {
	b.ctr.CheckWithAltCalls++
	b.met.OnCheckWithAlt()
	if b.altUnion != nil || b.altUnion0 != nil {
		if op, free, decided := b.fastCheckWithAlt(origOp, cycle); decided {
			return op, free
		}
	}
	return checkWithAlt(b, b.e, origOp, cycle)
}

// Counters implements Module.
func (b *Bitvector) Counters() *Counters { return &b.ctr }

// Reset implements Module. It clears in place and keeps every backing
// buffer — the instance map's buckets, the owner grid's capacity, the
// grown reserved table — so an arena-held module resets without
// allocating (pinned by TestResetDoesNotAllocate).
func (b *Bitvector) Reset() {
	if b.ii > 0 {
		for i := range b.mirror {
			b.mirror[i] = 0
		}
	} else {
		for i := range b.reserved {
			b.reserved[i] = 0
		}
	}
	for i := range b.occ {
		b.occ[i] = 0
	}
	for i := range b.rows {
		b.rows[i] = 0
	}
	clear(b.inst)
	b.updateMode = false
	b.owners = b.owners[:0]
	b.ownerWidth = 0
	b.ctr.Reset()
}

// Scheduled returns the number of currently scheduled instances.
func (b *Bitvector) Scheduled() int { return len(b.inst) }

var _ Module = (*Bitvector)(nil)

// AltGroupOf returns the expanded-op indices implementing the given
// original operation (used by schedulers for forced placements).
func (b *Bitvector) AltGroupOf(origOp int) []int { return b.e.AltGroup[origOp] }

// StateBytes implements MemoryFootprint: the packed reserved words plus
// the owner grid once update mode has materialized it.
func (b *Bitvector) StateBytes() int {
	n := 8 * (len(b.reserved) + len(b.mirror))
	n += 4 * len(b.owners)
	return n
}
