package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterAndHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.calls")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a.calls") != c {
		t.Error("re-registration returned a different counter")
	}

	h := r.Histogram("a.probe")
	for _, v := range []int64{0, 1, 1, 3, 9, 1 << 40, -7} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Errorf("hist count = %d, want 7", h.Count())
	}
	if want := int64(0 + 1 + 1 + 3 + 9 + 1<<40 + 0); h.Sum() != want {
		t.Errorf("hist sum = %d, want %d", h.Sum(), want)
	}

	s := r.Snapshot()
	if s.Counter("a.calls") != 5 {
		t.Errorf("snapshot counter = %d", s.Counter("a.calls"))
	}
	hs := s.Histogram("a.probe")
	if hs == nil || hs.Count != 7 || hs.Max != 1<<40 {
		t.Fatalf("snapshot histogram = %+v", hs)
	}
	var n int64
	overflow := false
	for _, b := range hs.Buckets {
		n += b.Count
		if b.Le == -1 {
			overflow = true
		}
	}
	if n != 7 || !overflow {
		t.Errorf("buckets sum %d (overflow seen: %v), want 7 with overflow", n, overflow)
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	var h *Histogram
	c.Inc()
	c.Add(3)
	h.Observe(42)
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics reported non-zero values")
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(17)
	}); allocs != 0 {
		t.Errorf("nil no-op path allocates %.1f per call, want 0", allocs)
	}
}

func TestScopesNest(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("query").Scope("discrete")
	s.Counter("check.calls").Add(2)
	s.Histogram("check.probe").Observe(3)
	snap := r.Snapshot()
	if snap.Counter("query.discrete.check.calls") != 2 {
		t.Errorf("scoped counter missing: %+v", snap.Counters)
	}
	if snap.Histogram("query.discrete.check.probe") == nil {
		t.Errorf("scoped histogram missing: %+v", snap.Histograms)
	}
	f := snap.Filter("query")
	if len(f.Counters) != 1 || len(f.Histograms) != 1 {
		t.Errorf("Filter(query) = %+v", f)
	}
	if f := snap.Filter("sched"); len(f.Counters) != 0 || len(f.Histograms) != 0 {
		t.Errorf("Filter(sched) should be empty, got %+v", f)
	}
}

func TestResetZeroesButKeepsHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	h := r.Histogram("y")
	c.Add(9)
	h.Observe(9)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("Reset left non-zero values")
	}
	c.Inc() // handle must still feed the registry
	if r.Snapshot().Counter("x") != 1 {
		t.Error("handle detached from registry after Reset")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("v")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i % 17))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("concurrent totals: counter %d, hist %d, want 8000", c.Value(), h.Count())
	}
}

func TestSnapshotJSONRoundTripAndValidate(t *testing.T) {
	r := NewRegistry()
	r.Scope("query").Counter("check.calls").Add(3)
	r.Scope("sched").Histogram("decisions_per_loop").Observe(12)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if err := ValidateSnapshotJSON(buf.Bytes(), "query", "sched"); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
	if err := ValidateSnapshotJSON(buf.Bytes(), "core"); err == nil {
		t.Error("missing scope not detected")
	}
	if err := ValidateSnapshotJSON([]byte("{"), "query"); err == nil {
		t.Error("malformed JSON not detected")
	}
}

func TestPackageHelpersGateOnEnabled(t *testing.T) {
	r := Default()
	r.SetEnabled(false)
	defer func() {
		r.SetEnabled(false)
		r.Reset()
	}()
	Inc("t.helper.calls")
	Add("t.helper.calls", 5)
	Observe("t.helper.probe", 3)
	if r.Snapshot().Counter("t.helper.calls") != 0 {
		t.Error("disabled helpers still recorded")
	}
	r.SetEnabled(true)
	Inc("t.helper.calls")
	Add("t.helper.calls", 5)
	Observe("t.helper.probe", 3)
	s := r.Snapshot()
	if s.Counter("t.helper.calls") != 6 {
		t.Errorf("enabled helpers recorded %d, want 6", s.Counter("t.helper.calls"))
	}
	if h := s.Histogram("t.helper.probe"); h == nil || h.Count != 1 {
		t.Errorf("enabled Observe recorded %+v", h)
	}
}
