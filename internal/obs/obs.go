// Package obs is the zero-dependency observability layer of the
// repository: atomic counters, fixed-bucket latency/size histograms and
// named scopes over a process-wide default registry, with JSON snapshot
// export for machine-readable profiles of the paper's evaluation runs.
//
// The layer is built so that the contention-query inner loop pays
// nothing when metrics are disabled: every metric method is defined on a
// pointer receiver and is a nil-receiver no-op, so a module constructed
// while the registry is disabled holds nil handles and its per-call
// instrumentation compiles down to an inlined nil check. The
// steady-state alloc tests and ReportAllocs benchmarks in internal/query
// pin that the disabled path stays at 0 allocs/op.
//
// Hot paths acquire handles once (at module construction) with
// Registry.Counter / Registry.Histogram; rare paths use the package
// helpers Inc / Add / Observe, which look the metric up by name and
// no-op when the default registry is disabled.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver (no-ops), which is the disabled fast path.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// histBuckets is the number of exponential histogram buckets: bucket i
// counts observations v with bitlen(v) == i, i.e. v <= 2^i - 1, and the
// last bucket absorbs everything larger. 2^22 work units comfortably
// exceeds any per-call probe length or per-loop statistic in this
// repository.
const histBuckets = 24

// Histogram is a fixed-bucket exponential histogram (base-2 bucket
// boundaries: 0, 1, 3, 7, ..., 2^22-1, +Inf). Like Counter, every method
// is a nil-receiver no-op.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one sample. Negative samples are clamped to 0.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of samples observed (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry holds named metrics. Metric registration is idempotent: the
// first Counter(name) call creates the counter, later calls return the
// same one, so concurrent modules share totals by name.
type Registry struct {
	enabled  atomic.Bool
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty, disabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry used by the package helpers
// and by every instrumented layer of the repository.
func Default() *Registry { return defaultRegistry }

// Enabled reports whether the default registry is collecting. It is the
// single gate hot paths read (one atomic load).
func Enabled() bool { return defaultRegistry.Enabled() }

// SetEnabled turns collection on or off. Instrumented components
// acquire their handles at construction time, so enable metrics before
// building the modules whose traffic should be profiled.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry is collecting.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Scope returns a named scope of the registry: metrics acquired through
// it are registered as "<scope>.<name>". Scopes nest.
func (r *Registry) Scope(name string) Scope { return Scope{r: r, prefix: name} }

// Reset zeroes every registered metric, keeping registrations (and any
// handle already held by an instrumented component) valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, h := range r.hists {
		h.count.Store(0)
		h.sum.Store(0)
		h.max.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
}

// Scope is a name prefix over a registry.
type Scope struct {
	r      *Registry
	prefix string
}

// Name returns the scope's full prefix.
func (s Scope) Name() string { return s.prefix }

// Scope returns a nested scope.
func (s Scope) Scope(name string) Scope {
	return Scope{r: s.r, prefix: s.prefix + "." + name}
}

// Counter returns the scoped counter "<prefix>.<name>".
func (s Scope) Counter(name string) *Counter { return s.r.Counter(s.prefix + "." + name) }

// Histogram returns the scoped histogram "<prefix>.<name>".
func (s Scope) Histogram(name string) *Histogram { return s.r.Histogram(s.prefix + "." + name) }

// Inc increments the named counter on the default registry; no-op while
// disabled. For rare paths only — hot paths should hold a handle.
func Inc(name string) {
	if defaultRegistry.Enabled() {
		defaultRegistry.Counter(name).Inc()
	}
}

// Add adds n to the named counter on the default registry; no-op while
// disabled.
func Add(name string, n int64) {
	if defaultRegistry.Enabled() {
		defaultRegistry.Counter(name).Add(n)
	}
}

// Observe records a sample in the named histogram on the default
// registry; no-op while disabled.
func Observe(name string, v int64) {
	if defaultRegistry.Enabled() {
		defaultRegistry.Histogram(name).Observe(v)
	}
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketSnap is one non-empty histogram bucket: Le is the inclusive
// upper bound (2^i - 1), or -1 for the overflow bucket.
type BucketSnap struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistSnap is one histogram in a snapshot.
type HistSnap struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Max     int64        `json:"max"`
	Avg     float64      `json:"avg"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every registered metric, sorted by
// name for deterministic export.
type Snapshot struct {
	Counters   []CounterSnap `json:"counters"`
	Histograms []HistSnap    `json:"histograms"`
}

// Counter returns the value of the named counter in the snapshot (0 if
// absent).
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Histogram returns the named histogram in the snapshot (nil if absent).
func (s Snapshot) Histogram(name string) *HistSnap {
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}

// Filter returns the snapshot restricted to metrics whose name starts
// with one of the given scope prefixes (prefix match on "<scope>.").
func (s Snapshot) Filter(scopes ...string) Snapshot {
	in := func(name string) bool {
		for _, sc := range scopes {
			if strings.HasPrefix(name, sc+".") {
				return true
			}
		}
		return false
	}
	var out Snapshot
	for _, c := range s.Counters {
		if in(c.Name) {
			out.Counters = append(out.Counters, c)
		}
	}
	for _, h := range s.Histograms {
		if in(h.Name) {
			out.Histograms = append(out.Histograms, h)
		}
	}
	return out
}

// Exclude returns the snapshot without metrics whose name starts with
// one of the given scope prefixes (prefix match on "<scope>.") — the
// complement of Filter. Determinism tests use it to drop wall-time
// histograms, which legitimately vary run to run, before comparing
// snapshots.
func (s Snapshot) Exclude(scopes ...string) Snapshot {
	in := func(name string) bool {
		for _, sc := range scopes {
			if strings.HasPrefix(name, sc+".") {
				return true
			}
		}
		return false
	}
	var out Snapshot
	for _, c := range s.Counters {
		if !in(c.Name) {
			out.Counters = append(out.Counters, c)
		}
	}
	for _, h := range s.Histograms {
		if !in(h.Name) {
			out.Histograms = append(out.Histograms, h)
		}
	}
	return out
}

// Snapshot copies every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.v.Load()})
	}
	for name, h := range r.hists {
		hs := HistSnap{Name: name, Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
		if hs.Count > 0 {
			hs.Avg = float64(hs.Sum) / float64(hs.Count)
		}
		for i := range h.buckets {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			le := int64(-1)
			if i < histBuckets-1 {
				le = int64(1)<<uint(i) - 1
			}
			hs.Buckets = append(hs.Buckets, BucketSnap{Le: le, Count: n})
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteJSON writes the registry's snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	data, err := json.MarshalIndent(&s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ValidateSnapshotJSON parses an exported snapshot and checks that it is
// well formed (non-negative counts) and that every required scope
// contributed at least one metric. Used by `cmd/paper -metrics` and
// `make metrics` to sanity-check emitted profiles.
func ValidateSnapshotJSON(data []byte, requiredScopes ...string) error {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("obs: invalid snapshot JSON: %w", err)
	}
	for _, c := range s.Counters {
		if c.Value < 0 {
			return fmt.Errorf("obs: counter %s is negative (%d)", c.Name, c.Value)
		}
	}
	for _, h := range s.Histograms {
		if h.Count < 0 || h.Sum < 0 {
			return fmt.Errorf("obs: histogram %s has negative count or sum", h.Name)
		}
		var n int64
		for _, b := range h.Buckets {
			if b.Count < 0 {
				return fmt.Errorf("obs: histogram %s bucket le=%d is negative", h.Name, b.Le)
			}
			n += b.Count
		}
		if n != h.Count {
			return fmt.Errorf("obs: histogram %s bucket counts sum to %d, want %d", h.Name, n, h.Count)
		}
	}
	for _, scope := range requiredScopes {
		found := false
		for _, c := range s.Counters {
			if strings.HasPrefix(c.Name, scope+".") {
				found = true
				break
			}
		}
		for _, h := range s.Histograms {
			if strings.HasPrefix(h.Name, scope+".") {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("obs: snapshot has no metrics in scope %q", scope)
		}
	}
	return nil
}
