package resmodel

import (
	"fmt"
	"sort"
)

// LintWarning is one advisory finding about a machine description. None
// of these are errors — Validate covers those — but each flags a pattern
// that usually means the description was hand-reduced, drifted during
// co-design, or models something by accident (the maintenance hazards the
// paper's automated reduction exists to remove).
type LintWarning struct {
	// Code is a stable identifier: unused-resource, duplicate-table,
	// empty-op, single-use-resource, asymmetric-alts, long-span.
	Code string
	Msg  string
}

func (w LintWarning) String() string { return w.Code + ": " + w.Msg }

// Lint inspects a valid machine description and returns advisory
// warnings, sorted by code then message.
func Lint(m *Machine) []LintWarning {
	var out []LintWarning
	warnf := func(code, format string, args ...interface{}) {
		out = append(out, LintWarning{Code: code, Msg: fmt.Sprintf(format, args...)})
	}

	// Resource usage census.
	usedBy := make([][]string, len(m.Resources))
	for _, o := range m.Ops {
		for ai, a := range o.Alts {
			name := o.Name
			if len(o.Alts) > 1 {
				name = fmt.Sprintf("%s.%d", o.Name, ai)
			}
			seen := map[int]bool{}
			for _, u := range a.Uses {
				if !seen[u.Resource] {
					seen[u.Resource] = true
					usedBy[u.Resource] = append(usedBy[u.Resource], name)
				}
			}
		}
	}
	for ri, users := range usedBy {
		switch len(users) {
		case 0:
			warnf("unused-resource", "resource %q is used by no operation", m.Resources[ri])
		case 1:
			warnf("single-use-resource",
				"resource %q is used only by %s: it adds only the 0-self-contention and will reduce away",
				m.Resources[ri], users[0])
		}
	}

	// Duplicate reservation tables (same usages): candidates for operation
	// classes; harmless but often a sign of copy-paste.
	byKey := map[string][]string{}
	for _, o := range m.Ops {
		for ai, a := range o.Alts {
			t := a.Clone()
			t.Normalize()
			key := fmt.Sprintf("%v", t.Uses)
			name := o.Name
			if len(o.Alts) > 1 {
				name = fmt.Sprintf("%s.%d", o.Name, ai)
			}
			byKey[key] = append(byKey[key], name)
		}
	}
	var dupKeys []string
	for k, names := range byKey {
		if len(names) > 1 && k != "[]" {
			dupKeys = append(dupKeys, k)
		}
	}
	sort.Strings(dupKeys)
	for _, k := range dupKeys {
		warnf("duplicate-table", "operations %v have identical reservation tables (one class)", byKey[k])
	}

	for _, o := range m.Ops {
		empty := true
		for _, a := range o.Alts {
			if len(a.Uses) > 0 {
				empty = false
			}
		}
		if empty {
			warnf("empty-op", "operation %q uses no resources (no scheduling constraints at all)", o.Name)
		}
		// Alternatives of one op usually mirror each other on twin units;
		// wildly different sizes suggest a typo.
		if len(o.Alts) > 1 {
			min, max := len(o.Alts[0].Uses), len(o.Alts[0].Uses)
			for _, a := range o.Alts[1:] {
				if len(a.Uses) < min {
					min = len(a.Uses)
				}
				if len(a.Uses) > max {
					max = len(a.Uses)
				}
			}
			if min != max {
				warnf("asymmetric-alts", "operation %q alternatives have %d..%d usages", o.Name, min, max)
			}
		}
		for ai, a := range o.Alts {
			if s := a.Span(); s > 64 {
				warnf("long-span", "operation %q alt %d spans %d cycles (exceeds one 64-bit state word; automata cannot model it)",
					o.Name, ai, s)
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Code != out[j].Code {
			return out[i].Code < out[j].Code
		}
		return out[i].Msg < out[j].Msg
	})
	return out
}
