package resmodel

import "fmt"

// Builder assembles a Machine incrementally with named resources. It is the
// programmatic counterpart of the textual machine-description language and
// is used to author the processor models in internal/machines.
//
// Builder methods panic on misuse (unknown resource names, duplicate
// definitions): machine descriptions are static program data, so an
// authoring error should fail fast and loudly.
type Builder struct {
	m      Machine
	resIdx map[string]int
	opIdx  map[string]bool
}

// NewBuilder returns a builder for a machine with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		m:      Machine{Name: name},
		resIdx: map[string]int{},
		opIdx:  map[string]bool{},
	}
}

// Resources declares resources in order. Redeclaring a name panics.
func (b *Builder) Resources(names ...string) *Builder {
	for _, n := range names {
		if _, dup := b.resIdx[n]; dup {
			panic(fmt.Sprintf("resmodel: Builder: duplicate resource %q", n))
		}
		b.resIdx[n] = len(b.m.Resources)
		b.m.Resources = append(b.m.Resources, n)
	}
	return b
}

// OpBuilder assembles one operation.
type OpBuilder struct {
	b  *Builder
	op *Operation
}

// Op starts a new operation with the given name and result latency. The
// operation begins with a single empty alternative.
func (b *Builder) Op(name string, latency int) *OpBuilder {
	if b.opIdx[name] {
		panic(fmt.Sprintf("resmodel: Builder: duplicate operation %q", name))
	}
	b.opIdx[name] = true
	b.m.Ops = append(b.m.Ops, Operation{Name: name, Latency: latency, Alts: []Table{{}}})
	return &OpBuilder{b: b, op: &b.m.Ops[len(b.m.Ops)-1]}
}

// Use reserves the named resource in each of the given cycles, in the
// current alternative.
func (ob *OpBuilder) Use(resource string, cycles ...int) *OpBuilder {
	ri, ok := ob.b.resIdx[resource]
	if !ok {
		panic(fmt.Sprintf("resmodel: Builder: op %q uses unknown resource %q", ob.op.Name, resource))
	}
	alt := &ob.op.Alts[len(ob.op.Alts)-1]
	for _, c := range cycles {
		alt.Uses = append(alt.Uses, Usage{Resource: ri, Cycle: c})
	}
	return ob
}

// UseRange reserves the named resource in every cycle of [from, to]
// inclusive — the partially pipelined "stage held for several consecutive
// cycles" pattern (operation B of Figure 1).
func (ob *OpBuilder) UseRange(resource string, from, to int) *OpBuilder {
	for c := from; c <= to; c++ {
		ob.Use(resource, c)
	}
	return ob
}

// Stage reserves a chain of resources in consecutive cycles starting at
// `start`: stage[0] at start, stage[1] at start+1, ... — the fully
// pipelined pattern (operation A of Figure 1).
func (ob *OpBuilder) Stages(start int, stages ...string) *OpBuilder {
	for i, s := range stages {
		ob.Use(s, start+i)
	}
	return ob
}

// Alt closes the current alternative and starts a new, empty one. The
// alternatives of an operation are interchangeable implementations (e.g.
// issue to port 0 or port 1).
func (ob *OpBuilder) Alt() *OpBuilder {
	ob.op.Alts = append(ob.op.Alts, Table{})
	return ob
}

// Build validates and returns the machine. It panics if validation fails:
// builders author static machine models, so failure is a programming error.
func (b *Builder) Build() *Machine {
	m := b.m.Clone()
	for i := range m.Ops {
		for j := range m.Ops[i].Alts {
			m.Ops[i].Alts[j].Normalize()
		}
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}
