// Package resmodel defines the machine-description model of Eichenberger &
// Davidson (PLDI 1996): machines described by reservation tables, one per
// operation, whose rows are resources and whose columns are cycles relative
// to the operation's issue time.
//
// An operation may carry *alternative* resource usages (e.g. an add that can
// execute on either of two identical adders). Following Section 3 of the
// paper, alternatives are removed by a preprocessing step (Expand) that
// replaces each operation with one expanded operation per alternative; the
// expanded operations are recorded as an alternative group so that the
// contention query module's check-with-alt can iterate over them.
package resmodel

import (
	"fmt"
	"sort"
	"strings"
)

// Usage is a single reservation-table entry: the operation reserves Resource
// for exclusive use during cycle Cycle (relative to its issue time).
type Usage struct {
	Resource int // index into Machine.Resources
	Cycle    int // >= 0
}

// Table is a reservation table: the set of resource usages of one
// operation (or of one alternative of an operation).
type Table struct {
	Uses []Usage
}

// Clone returns a deep copy of the table.
func (t Table) Clone() Table {
	c := Table{Uses: make([]Usage, len(t.Uses))}
	copy(c.Uses, t.Uses)
	return c
}

// Normalize sorts the usages by (resource, cycle) and removes duplicates.
func (t *Table) Normalize() {
	sort.Slice(t.Uses, func(i, j int) bool {
		a, b := t.Uses[i], t.Uses[j]
		if a.Resource != b.Resource {
			return a.Resource < b.Resource
		}
		return a.Cycle < b.Cycle
	})
	out := t.Uses[:0]
	for i, u := range t.Uses {
		if i == 0 || u != t.Uses[i-1] {
			out = append(out, u)
		}
	}
	t.Uses = out
}

// Span returns one past the last cycle in which the table uses any resource,
// i.e. the number of columns. An empty table has span 0.
func (t Table) Span() int {
	max := -1
	for _, u := range t.Uses {
		if u.Cycle > max {
			max = u.Cycle
		}
	}
	return max + 1
}

// UsageSet returns the sorted set of cycles in which the table uses resource
// r — the paper's "usage set X_r".
func (t Table) UsageSet(r int) []int {
	var cycles []int
	for _, u := range t.Uses {
		if u.Resource == r {
			cycles = append(cycles, u.Cycle)
		}
	}
	sort.Ints(cycles)
	return cycles
}

// Resources returns the sorted set of distinct resources the table uses.
func (t Table) Resources() []int {
	seen := map[int]bool{}
	for _, u := range t.Uses {
		seen[u.Resource] = true
	}
	out := make([]int, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Operation is a machine operation with one or more alternative reservation
// tables. Alts has at least one element; an operation with a single
// alternative is the common case.
type Operation struct {
	Name    string
	Latency int // result latency in cycles, used by schedulers
	Alts    []Table
}

// Machine is a complete machine description: a set of named resources and a
// set of operations with reservation tables over those resources.
type Machine struct {
	Name      string
	Resources []string
	Ops       []Operation
}

// ResourceIndex returns the index of the named resource, or -1.
func (m *Machine) ResourceIndex(name string) int {
	for i, r := range m.Resources {
		if r == name {
			return i
		}
	}
	return -1
}

// OpIndex returns the index of the named operation, or -1.
func (m *Machine) OpIndex(name string) int {
	for i, o := range m.Ops {
		if o.Name == name {
			return i
		}
	}
	return -1
}

// NumUsages returns the total number of resource usages over all operations
// and alternatives.
func (m *Machine) NumUsages() int {
	n := 0
	for _, o := range m.Ops {
		for _, a := range o.Alts {
			n += len(a.Uses)
		}
	}
	return n
}

// MaxSpan returns the largest reservation-table span over all operations and
// alternatives.
func (m *Machine) MaxSpan() int {
	max := 0
	for _, o := range m.Ops {
		for _, a := range o.Alts {
			if s := a.Span(); s > max {
				max = s
			}
		}
	}
	return max
}

// Validate checks structural well-formedness: non-empty names, unique
// resource and operation names, at least one alternative per operation,
// resource indices in range, non-negative cycles, and no duplicate usages
// within an alternative.
func (m *Machine) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("resmodel: machine has no name")
	}
	seenRes := map[string]bool{}
	for i, r := range m.Resources {
		if r == "" {
			return fmt.Errorf("resmodel: %s: resource %d has empty name", m.Name, i)
		}
		if seenRes[r] {
			return fmt.Errorf("resmodel: %s: duplicate resource name %q", m.Name, r)
		}
		seenRes[r] = true
	}
	seenOp := map[string]bool{}
	for _, o := range m.Ops {
		if o.Name == "" {
			return fmt.Errorf("resmodel: %s: operation with empty name", m.Name)
		}
		if seenOp[o.Name] {
			return fmt.Errorf("resmodel: %s: duplicate operation name %q", m.Name, o.Name)
		}
		seenOp[o.Name] = true
		if len(o.Alts) == 0 {
			return fmt.Errorf("resmodel: %s: operation %q has no reservation table", m.Name, o.Name)
		}
		if o.Latency < 0 {
			return fmt.Errorf("resmodel: %s: operation %q has negative latency %d", m.Name, o.Name, o.Latency)
		}
		for ai, a := range o.Alts {
			seenUse := map[Usage]bool{}
			for _, u := range a.Uses {
				if u.Resource < 0 || u.Resource >= len(m.Resources) {
					return fmt.Errorf("resmodel: %s: op %q alt %d: resource index %d out of range [0,%d)",
						m.Name, o.Name, ai, u.Resource, len(m.Resources))
				}
				if u.Cycle < 0 {
					return fmt.Errorf("resmodel: %s: op %q alt %d: negative cycle %d", m.Name, o.Name, ai, u.Cycle)
				}
				if seenUse[u] {
					return fmt.Errorf("resmodel: %s: op %q alt %d: duplicate usage of %s at cycle %d",
						m.Name, o.Name, ai, m.Resources[u.Resource], u.Cycle)
				}
				seenUse[u] = true
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the machine.
func (m *Machine) Clone() *Machine {
	c := &Machine{
		Name:      m.Name,
		Resources: append([]string(nil), m.Resources...),
		Ops:       make([]Operation, len(m.Ops)),
	}
	for i, o := range m.Ops {
		co := Operation{Name: o.Name, Latency: o.Latency, Alts: make([]Table, len(o.Alts))}
		for j, a := range o.Alts {
			co.Alts[j] = a.Clone()
		}
		c.Ops[i] = co
	}
	return c
}

// ExpandedOp is one alternative of an original operation, promoted to a
// standalone operation with a single reservation table.
type ExpandedOp struct {
	Name    string // e.g. "load" or "load.1" for the second alternative
	Orig    int    // index of the original operation in Machine.Ops
	Alt     int    // which alternative of the original operation this is
	Latency int
	Table   Table
}

// Expanded is a machine with all alternative resource usages removed: each
// expanded operation has exactly one reservation table. It is the input
// representation for forbidden-latency analysis and reduction.
type Expanded struct {
	Name      string
	Resources []string
	Ops       []ExpandedOp
	// AltGroup maps an original operation index to the expanded operation
	// indices that implement it (its "alternative operations").
	AltGroup [][]int
	// Source is the machine this expansion was derived from.
	Source *Machine
}

// Expand removes alternative resource usages per Section 3 of the paper:
// each operation X with alternatives becomes operations X.0, X.1, ... with a
// single table each. An operation with one alternative keeps its name.
// The machine must be valid.
func (m *Machine) Expand() *Expanded {
	e := &Expanded{
		Name:      m.Name,
		Resources: append([]string(nil), m.Resources...),
		AltGroup:  make([][]int, len(m.Ops)),
		Source:    m,
	}
	for oi, o := range m.Ops {
		for ai, a := range o.Alts {
			name := o.Name
			if len(o.Alts) > 1 {
				name = fmt.Sprintf("%s.%d", o.Name, ai)
			}
			t := a.Clone()
			t.Normalize()
			e.AltGroup[oi] = append(e.AltGroup[oi], len(e.Ops))
			e.Ops = append(e.Ops, ExpandedOp{
				Name:    name,
				Orig:    oi,
				Alt:     ai,
				Latency: o.Latency,
				Table:   t,
			})
		}
	}
	return e
}

// MaxSpan returns the largest reservation-table span over all expanded ops.
func (e *Expanded) MaxSpan() int {
	max := 0
	for _, o := range e.Ops {
		if s := o.Table.Span(); s > max {
			max = s
		}
	}
	return max
}

// NumUsages returns the total number of resource usages.
func (e *Expanded) NumUsages() int {
	n := 0
	for _, o := range e.Ops {
		n += len(o.Table.Uses)
	}
	return n
}

// OpIndex returns the index of the named expanded op, or -1.
func (e *Expanded) OpIndex(name string) int {
	for i, o := range e.Ops {
		if o.Name == name {
			return i
		}
	}
	return -1
}

// Machine converts the expansion back into a plain Machine whose operations
// each have a single alternative. Useful for feeding reduced or expanded
// descriptions back through tooling that consumes Machine.
func (e *Expanded) Machine() *Machine {
	m := &Machine{Name: e.Name, Resources: append([]string(nil), e.Resources...)}
	for _, o := range e.Ops {
		m.Ops = append(m.Ops, Operation{
			Name:    o.Name,
			Latency: o.Latency,
			Alts:    []Table{o.Table.Clone()},
		})
	}
	return m
}

// TableString renders a reservation table as an ASCII grid in the style of
// Figure 1 of the paper, with one row per resource that the table uses and
// an 'X' wherever the resource is reserved.
func TableString(resources []string, t Table) string {
	span := t.Span()
	if span == 0 {
		return "(no resource usages)\n"
	}
	used := t.Resources()
	nameW := 0
	for _, r := range used {
		if len(resources[r]) > nameW {
			nameW = len(resources[r])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%*s |", nameW, "")
	for c := 0; c < span; c++ {
		fmt.Fprintf(&b, "%3d", c)
	}
	b.WriteByte('\n')
	for _, r := range used {
		fmt.Fprintf(&b, "%*s |", nameW, resources[r])
		cells := map[int]bool{}
		for _, u := range t.Uses {
			if u.Resource == r {
				cells[u.Cycle] = true
			}
		}
		for c := 0; c < span; c++ {
			if cells[c] {
				b.WriteString("  X")
			} else {
				b.WriteString("  .")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
