package resmodel

import (
	"fmt"
	"math/rand"
)

// RandomConfig controls Random machine generation for property-based tests.
type RandomConfig struct {
	MaxResources int // at least 1
	MaxOps       int // at least 1
	MaxSpan      int // maximum reservation-table span, at least 1
	MaxUsesPerOp int // at least 1
	AltProb      float64
	// EmptyOpProb is the probability that an op uses no resources at all
	// (exercising the "no forbidden latencies" edge cases).
	EmptyOpProb float64
}

// DefaultRandomConfig returns a configuration that exercises the
// interesting small-machine space: a few resources, partially pipelined
// multi-cycle usages and occasional alternatives.
func DefaultRandomConfig() RandomConfig {
	// Kept sparse on purpose: the number of maximal resources of a machine
	// grows with the number of maximal cliques of the usage-compatibility
	// relation, which explodes combinatorially for dense random forbidden
	// matrices (~75% of all latencies forbidden). Real machines — and the
	// paper's three processors — are structured and far sparser; these
	// parameters keep random machines in that regime while still exercising
	// partially pipelined patterns and alternatives.
	return RandomConfig{
		MaxResources: 5,
		MaxOps:       4,
		MaxSpan:      6,
		MaxUsesPerOp: 4,
		AltProb:      0.2,
		EmptyOpProb:  0.1,
	}
}

// Random generates a pseudo-random valid machine description from rng.
// It is deterministic for a given rng state, and every generated machine
// passes Validate. Used by testing/quick-style properties in the reduce and
// query packages: the central invariant of the paper — reduction preserves
// the forbidden-latency matrix, and therefore every contention query — is
// checked on these machines.
func Random(rng *rand.Rand, cfg RandomConfig) *Machine {
	nRes := 1 + rng.Intn(cfg.MaxResources)
	nOps := 1 + rng.Intn(cfg.MaxOps)
	m := &Machine{Name: "random"}
	for r := 0; r < nRes; r++ {
		m.Resources = append(m.Resources, fmt.Sprintf("r%d", r))
	}
	for o := 0; o < nOps; o++ {
		op := Operation{Name: fmt.Sprintf("op%d", o), Latency: rng.Intn(cfg.MaxSpan) + 1}
		nAlts := 1
		if rng.Float64() < cfg.AltProb {
			nAlts = 2
		}
		for a := 0; a < nAlts; a++ {
			var t Table
			if rng.Float64() >= cfg.EmptyOpProb {
				nUses := 1 + rng.Intn(cfg.MaxUsesPerOp)
				for u := 0; u < nUses; u++ {
					t.Uses = append(t.Uses, Usage{
						Resource: rng.Intn(nRes),
						Cycle:    rng.Intn(cfg.MaxSpan),
					})
				}
				// Bias toward consecutive-cycle reuse of one resource, the
				// partially pipelined pattern that makes reduction interesting.
				if rng.Intn(2) == 0 {
					r := rng.Intn(nRes)
					start := rng.Intn(cfg.MaxSpan)
					length := 1 + rng.Intn(3)
					for c := start; c < start+length && c < cfg.MaxSpan; c++ {
						t.Uses = append(t.Uses, Usage{Resource: r, Cycle: c})
					}
				}
			}
			t.Normalize()
			op.Alts = append(op.Alts, t)
		}
		m.Ops = append(m.Ops, op)
	}
	if err := m.Validate(); err != nil {
		panic("resmodel: Random generated invalid machine: " + err.Error())
	}
	return m
}
