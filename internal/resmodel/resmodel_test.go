package resmodel

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// figure1Machine builds the example machine of Figure 1 of the paper:
// operation A is a fully pipelined functional unit (r0@0, r1@1, r2@2);
// operation B is partially pipelined (r1@0, r2@1, r3@2-5, r4@6-7).
func figure1Machine() *Machine {
	b := NewBuilder("example")
	b.Resources("r0", "r1", "r2", "r3", "r4")
	b.Op("A", 3).Stages(0, "r0", "r1", "r2")
	b.Op("B", 8).
		Use("r1", 0).
		Use("r2", 1).
		UseRange("r3", 2, 5).
		UseRange("r4", 6, 7)
	return b.Build()
}

func TestFigure1MachineShape(t *testing.T) {
	m := figure1Machine()
	if len(m.Resources) != 5 {
		t.Fatalf("resources = %d, want 5", len(m.Resources))
	}
	if len(m.Ops) != 2 {
		t.Fatalf("ops = %d, want 2", len(m.Ops))
	}
	a, bop := m.Ops[0], m.Ops[1]
	if len(a.Alts[0].Uses) != 3 {
		t.Errorf("A usages = %d, want 3", len(a.Alts[0].Uses))
	}
	if len(bop.Alts[0].Uses) != 8 {
		t.Errorf("B usages = %d, want 8", len(bop.Alts[0].Uses))
	}
	if got := m.NumUsages(); got != 11 {
		t.Errorf("NumUsages = %d, want 11", got)
	}
	if got := m.MaxSpan(); got != 8 {
		t.Errorf("MaxSpan = %d, want 8", got)
	}
	// Usage sets of Figure 1a: B3 = {2,3,4,5}, B4 = {6,7}, A1 = {1}.
	b3 := bop.Alts[0].UsageSet(3)
	if len(b3) != 4 || b3[0] != 2 || b3[3] != 5 {
		t.Errorf("B usage set of r3 = %v, want [2 3 4 5]", b3)
	}
	if got := a.Alts[0].UsageSet(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("A usage set of r1 = %v, want [1]", got)
	}
	if got := a.Alts[0].UsageSet(3); got != nil {
		t.Errorf("A usage set of r3 = %v, want empty", got)
	}
}

func TestTableSpanAndResources(t *testing.T) {
	var empty Table
	if empty.Span() != 0 {
		t.Errorf("empty table Span = %d, want 0", empty.Span())
	}
	tab := Table{Uses: []Usage{{Resource: 2, Cycle: 7}, {Resource: 0, Cycle: 0}}}
	if tab.Span() != 8 {
		t.Errorf("Span = %d, want 8", tab.Span())
	}
	rs := tab.Resources()
	if len(rs) != 2 || rs[0] != 0 || rs[1] != 2 {
		t.Errorf("Resources = %v, want [0 2]", rs)
	}
}

func TestNormalizeSortsAndDedups(t *testing.T) {
	tab := Table{Uses: []Usage{
		{Resource: 1, Cycle: 3},
		{Resource: 0, Cycle: 5},
		{Resource: 1, Cycle: 3},
		{Resource: 0, Cycle: 2},
	}}
	tab.Normalize()
	want := []Usage{{0, 2}, {0, 5}, {1, 3}}
	if len(tab.Uses) != len(want) {
		t.Fatalf("Normalize -> %v, want %v", tab.Uses, want)
	}
	for i := range want {
		if tab.Uses[i] != want[i] {
			t.Fatalf("Normalize -> %v, want %v", tab.Uses, want)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(m *Machine)
		want string
	}{
		{"no name", func(m *Machine) { m.Name = "" }, "no name"},
		{"dup resource", func(m *Machine) { m.Resources[1] = "r0" }, "duplicate resource"},
		{"empty resource", func(m *Machine) { m.Resources[0] = "" }, "empty name"},
		{"dup op", func(m *Machine) { m.Ops[1].Name = "A" }, "duplicate operation"},
		{"empty op name", func(m *Machine) { m.Ops[0].Name = "" }, "empty name"},
		{"no alts", func(m *Machine) { m.Ops[0].Alts = nil }, "no reservation table"},
		{"neg latency", func(m *Machine) { m.Ops[0].Latency = -1 }, "negative latency"},
		{"bad resource index", func(m *Machine) { m.Ops[0].Alts[0].Uses[0].Resource = 99 }, "out of range"},
		{"negative cycle", func(m *Machine) { m.Ops[0].Alts[0].Uses[0].Cycle = -2 }, "negative cycle"},
		{"dup usage", func(m *Machine) {
			u := m.Ops[0].Alts[0].Uses[0]
			m.Ops[0].Alts[0].Uses = append(m.Ops[0].Alts[0].Uses, u)
		}, "duplicate usage"},
	}
	for _, tc := range cases {
		m := figure1Machine()
		tc.mut(m)
		err := m.Validate()
		if err == nil {
			t.Errorf("%s: Validate returned nil, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateOK(t *testing.T) {
	if err := figure1Machine().Validate(); err != nil {
		t.Fatalf("Validate = %v, want nil", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := figure1Machine()
	c := m.Clone()
	c.Ops[0].Alts[0].Uses[0].Cycle = 99
	c.Resources[0] = "mut"
	if m.Ops[0].Alts[0].Uses[0].Cycle == 99 {
		t.Errorf("Clone shares usage storage")
	}
	if m.Resources[0] == "mut" {
		t.Errorf("Clone shares resource storage")
	}
}

func TestExpandSingleAlt(t *testing.T) {
	m := figure1Machine()
	e := m.Expand()
	if len(e.Ops) != 2 {
		t.Fatalf("expanded ops = %d, want 2", len(e.Ops))
	}
	if e.Ops[0].Name != "A" || e.Ops[1].Name != "B" {
		t.Errorf("single-alt op names changed: %q %q", e.Ops[0].Name, e.Ops[1].Name)
	}
	if len(e.AltGroup) != 2 || len(e.AltGroup[0]) != 1 || e.AltGroup[0][0] != 0 {
		t.Errorf("AltGroup = %v", e.AltGroup)
	}
	if e.Source != m {
		t.Errorf("Source not set")
	}
}

func TestExpandAlternatives(t *testing.T) {
	b := NewBuilder("alts")
	b.Resources("add0", "add1", "bus")
	b.Op("add", 1).
		Use("add0", 0).Use("bus", 1).
		Alt().
		Use("add1", 0).Use("bus", 1)
	b.Op("nop", 0)
	m := b.Build()
	e := m.Expand()
	if len(e.Ops) != 3 {
		t.Fatalf("expanded ops = %d, want 3", len(e.Ops))
	}
	if e.Ops[0].Name != "add.0" || e.Ops[1].Name != "add.1" {
		t.Errorf("alt names = %q %q, want add.0 add.1", e.Ops[0].Name, e.Ops[1].Name)
	}
	if e.Ops[0].Orig != 0 || e.Ops[1].Orig != 0 || e.Ops[1].Alt != 1 {
		t.Errorf("Orig/Alt wrong: %+v %+v", e.Ops[0], e.Ops[1])
	}
	g := e.AltGroup[0]
	if len(g) != 2 || g[0] != 0 || g[1] != 1 {
		t.Errorf("AltGroup[0] = %v, want [0 1]", g)
	}
	// add.0 uses add0, add.1 uses add1, both use bus@1.
	if got := e.Ops[0].Table.UsageSet(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("add.0 usage of add0 = %v", got)
	}
	if got := e.Ops[1].Table.UsageSet(0); got != nil {
		t.Errorf("add.1 uses add0: %v", got)
	}
	if e.OpIndex("add.1") != 1 || e.OpIndex("missing") != -1 {
		t.Errorf("OpIndex wrong")
	}
	// Round-trip back to a Machine.
	m2 := e.Machine()
	if err := m2.Validate(); err != nil {
		t.Errorf("expanded-machine Validate: %v", err)
	}
	if len(m2.Ops) != 3 || m2.Ops[2].Name != "nop" {
		t.Errorf("expanded Machine ops wrong: %d", len(m2.Ops))
	}
}

func TestResourceAndOpIndex(t *testing.T) {
	m := figure1Machine()
	if m.ResourceIndex("r3") != 3 {
		t.Errorf("ResourceIndex(r3) = %d", m.ResourceIndex("r3"))
	}
	if m.ResourceIndex("nope") != -1 {
		t.Errorf("ResourceIndex(nope) != -1")
	}
	if m.OpIndex("B") != 1 || m.OpIndex("C") != -1 {
		t.Errorf("OpIndex wrong")
	}
}

func TestBuilderPanics(t *testing.T) {
	check := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	check("dup resource", func() {
		NewBuilder("m").Resources("a", "a")
	})
	check("dup op", func() {
		b := NewBuilder("m").Resources("a")
		b.Op("x", 1)
		b.Op("x", 1)
	})
	check("unknown resource", func() {
		b := NewBuilder("m").Resources("a")
		b.Op("x", 1).Use("zzz", 0)
	})
}

func TestTableString(t *testing.T) {
	m := figure1Machine()
	s := TableString(m.Resources, m.Ops[1].Alts[0])
	if !strings.Contains(s, "r3") || !strings.Contains(s, "X") {
		t.Errorf("TableString missing content:\n%s", s)
	}
	// B uses r3 at cycles 2..5 -> the r3 row has exactly 4 X marks.
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "r3") {
			if got := strings.Count(line, "X"); got != 4 {
				t.Errorf("r3 row has %d X, want 4: %q", got, line)
			}
		}
	}
	if got := TableString(m.Resources, Table{}); !strings.Contains(got, "no resource usages") {
		t.Errorf("empty TableString = %q", got)
	}
}

// Property: Random always generates valid machines whose expansion
// round-trips through Machine() and re-validates.
func TestQuickRandomMachinesValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Random(rng, DefaultRandomConfig())
		if m.Validate() != nil {
			return false
		}
		e := m.Expand()
		if len(e.Ops) < len(m.Ops) {
			return false
		}
		for oi, g := range e.AltGroup {
			if len(g) != len(m.Ops[oi].Alts) {
				return false
			}
			for ai, ei := range g {
				if e.Ops[ei].Orig != oi || e.Ops[ei].Alt != ai {
					return false
				}
			}
		}
		return e.Machine().Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: expansion preserves each alternative's usage multiset (after
// normalization).
func TestQuickExpandPreservesTables(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Random(rng, DefaultRandomConfig())
		e := m.Expand()
		for _, eo := range e.Ops {
			orig := m.Ops[eo.Orig].Alts[eo.Alt].Clone()
			orig.Normalize()
			if len(orig.Uses) != len(eo.Table.Uses) {
				return false
			}
			for i := range orig.Uses {
				if orig.Uses[i] != eo.Table.Uses[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLint(t *testing.T) {
	b := NewBuilder("lint")
	b.Resources("used", "unused", "solo")
	b.Op("a", 1).Use("used", 0)
	b.Op("b", 1).Use("used", 0) // duplicate table of a
	b.Op("c", 1).Use("solo", 0).Use("used", 1)
	b.Op("nothing", 0)
	b.Op("lop", 1).Use("used", 70)
	b.Op("twin", 1).Use("used", 0).Use("used", 3).Alt().Use("used", 0)
	m := b.Build()
	ws := Lint(m)
	byCode := map[string]int{}
	for _, w := range ws {
		byCode[w.Code]++
		if w.String() == "" {
			t.Errorf("empty warning text")
		}
	}
	for _, want := range []string{
		"unused-resource", "single-use-resource", "duplicate-table",
		"empty-op", "asymmetric-alts", "long-span",
	} {
		if byCode[want] == 0 {
			t.Errorf("missing %s warning in %v", want, ws)
		}
	}
	// A clean, well-shared machine lints quiet (modulo known classes).
	clean := NewBuilder("clean")
	clean.Resources("r", "s")
	clean.Op("x", 1).Use("r", 0).Use("s", 1)
	clean.Op("y", 1).Use("r", 1).Use("s", 0)
	if ws := Lint(clean.Build()); len(ws) != 0 {
		t.Errorf("clean machine linted dirty: %v", ws)
	}
}
