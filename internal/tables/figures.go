package tables

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/forbidden"
	"repro/internal/machines"
	"repro/internal/resmodel"
)

// Figure1 renders the paper's introductory example: the original machine
// description (reservation tables and usage sets), the forbidden-latency
// matrix, the generating set of maximal resources, and the reduced
// machine description.
func Figure1() string {
	m := machines.Example()
	e := m.Expand()
	var b strings.Builder

	b.WriteString("Figure 1: Reducing a machine description\n\n")
	b.WriteString("a) Machine description (reservation tables)\n\n")
	for _, o := range e.Ops {
		fmt.Fprintf(&b, "operation %s:\n%s\n", o.Name, resmodel.TableString(e.Resources, o.Table))
	}

	b.WriteString("   usage sets:\n")
	for _, o := range e.Ops {
		for r := range e.Resources {
			us := o.Table.UsageSet(r)
			if len(us) > 0 {
				fmt.Fprintf(&b, "     %s%d = %v\n", o.Name, r, us)
			}
		}
	}

	mat := forbidden.Compute(e)
	b.WriteString("\nb) Forbidden latency set matrix\n\n")
	for x, ox := range e.Ops {
		for y, oy := range e.Ops {
			fmt.Fprintf(&b, "   F[%s][%s] = %s\n", ox.Name, oy.Name, mat.Set(x, y))
		}
	}

	res := core.CachedReduce(e, core.Objective{Kind: core.ResUses})
	if err := res.Verify(); err != nil {
		panic(err)
	}
	b.WriteString("\nc) Generating set of maximal resources\n\n")
	cls := res.Classes
	opName := func(c int) string { return e.Ops[cls.Rep[c]].Name }
	for i, sel := range res.Selected {
		fmt.Fprintf(&b, "   resource %d': %s  (selected usages: ", i, sel.Res.StringWith(opName))
		for j, u := range sel.Uses {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s@%d", opName(u.Op), u.Cycle)
		}
		b.WriteString(")\n")
	}

	b.WriteString("\nd) Reduced machine description (reservation tables)\n\n")
	for _, o := range res.Reduced.Ops {
		fmt.Fprintf(&b, "operation %s:\n%s\n", o.Name, resmodel.TableString(res.Reduced.Resources, o.Table))
	}
	fmt.Fprintf(&b, "resources: %d -> %d; usages: A %d -> %d, B %d -> %d\n",
		len(e.Resources), res.NumResources(),
		len(e.Ops[0].Table.Uses), len(res.Reduced.Ops[0].Table.Uses),
		len(e.Ops[1].Table.Uses), len(res.Reduced.Ops[1].Table.Uses))
	return b.String()
}

// Figure3 renders the step-by-step construction of the generating set for
// the example machine (Rules 1-4 of Algorithm 1).
func Figure3() string {
	m := machines.Example()
	e := m.Expand()
	res := core.ReduceTraced(e, core.Objective{Kind: core.ResUses})
	tr := res.Trace
	opName := func(c int) string { return e.Ops[res.Classes.Rep[c]].Name }

	var b strings.Builder
	b.WriteString("Figure 3: Building the generating set for the example machine\n\n")
	for i, pt := range tr.Pairs {
		fmt.Fprintf(&b, "%c) process %d in F[%s][%s]\n",
			'a'+i, pt.Pair.F, opName(pt.Pair.X), opName(pt.Pair.Y))
		for _, st := range pt.Steps {
			switch {
			case st.Before == "" && st.After != "":
				fmt.Fprintf(&b, "     %v -> create %s\n", st.Rule, st.After)
			case st.After == "":
				fmt.Fprintf(&b, "     %v against %s\n", st.Rule, st.Before)
			default:
				fmt.Fprintf(&b, "     %v: %s -> %s\n", st.Rule, st.Before, st.After)
			}
		}
		b.WriteString("   generating set now:\n")
		for _, r := range pt.Set {
			fmt.Fprintf(&b, "     %s\n", r)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure4 renders the reservation tables of the Cydra 5 benchmark subset
// under the original description, the discrete (res-uses) reduction, and
// the 64-bit-word bitvector reduction — the paper's Figure 4.
func Figure4() string {
	m := machines.Cydra5Subset()
	e := m.Expand()
	var b strings.Builder
	b.WriteString("Figure 4: Reservation tables for the Cydra 5 benchmark subset\n\n")

	renderAll := func(title string, desc *resmodel.Expanded) {
		usages := 0
		for _, o := range desc.Ops {
			usages += len(o.Table.Uses)
		}
		fmt.Fprintf(&b, "%s (%d resources, %d resource usages)\n\n", title, len(desc.Resources), usages)
		for _, o := range desc.Ops {
			fmt.Fprintf(&b, "operation %s:\n%s\n", o.Name, resmodel.TableString(desc.Resources, o.Table))
		}
	}

	renderAll("a) Original machine description", e)

	ru := core.CachedReduce(e, core.Objective{Kind: core.ResUses})
	mustExact(ru)
	renderAll("b) Discrete-representation reduced description", ru.ReducedClass)

	rRed := ru.NumResources()
	if rRed == 0 {
		rRed = 1
	}
	k := 64 / rRed
	if k < 1 {
		k = 1
	}
	kw := core.CachedReduce(e, core.Objective{Kind: core.KCycleWord, K: k})
	mustExact(kw)
	renderAll(fmt.Sprintf("c) Bitvector-representation reduced description (64-bit word, %d cycles/word)", k),
		kw.ReducedClass)
	return b.String()
}

// Summary reports the headline numbers of the abstract: contention-query
// speedup factors and memory ratios for the three machines.
func Summary() string {
	var b strings.Builder
	b.WriteString("Headline summary (abstract / Section 6)\n\n")
	fmt.Fprintf(&b, "%-16s %10s %12s %12s %14s %12s\n",
		"machine", "words/check", "uses-speedup", "word-speedup", "state-memory%", "desc-uses%")
	for _, name := range []string{"mips", "alpha", "cydra5"} {
		t := ComputeReduction(machines.ByName(name))
		ms := t.Memory()
		fmt.Fprintf(&b, "%-16s %10.1f %11.1fx %11.1fx %13.0f%% %11.0f%%\n",
			name, ms.WordsPerCheck, ms.QuerySpeedupUses, ms.QuerySpeedupWords,
			ms.StatePct, ms.DescriptionPct)
	}
	b.WriteString("\npaper: 4-7x faster contention queries; reduced descriptions use 22-90% of\n")
	b.WriteString("the original memory; 1.6 (MIPS), 2.0 (Alpha), 3.3 (Cydra 5) words per check.\n")
	return b.String()
}
