package tables

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/query"
)

// MemoryRow is the measured reserved-state storage of one machine across
// representations, at a fixed Modulo Reservation Table size — the
// concrete form of the paper's "require 22 to 90% of the memory storage"
// and "a 64 bit word may encode the bitvector of 4 (Cydra 5) ... schedule
// cycles".
type MemoryRow struct {
	Machine        string
	II             int
	OrigDiscrete   int // bytes
	RedDiscrete    int
	RedBitvector   int
	CyclesPerWord  int
	BitvectorPct   float64 // reduced bitvector vs original discrete
	RedDiscretePct float64
}

// ComputeMemory measures module state storage for the named machines at
// the given II.
func ComputeMemory(names []string, ii int) []MemoryRow {
	var rows []MemoryRow
	for _, name := range names {
		m := machines.ByName(name)
		if m == nil {
			panic("tables: unknown machine " + name)
		}
		e := m.Expand()
		ru := core.CachedReduce(e, core.Objective{Kind: core.ResUses})
		mustExact(ru)
		k := query.MaxCyclesPerWord(ru.NumResources(), 64)
		kw := core.CachedReduce(e, core.Objective{Kind: core.KCycleWord, K: k})
		mustExact(kw)
		if k2 := query.MaxCyclesPerWord(kw.NumResources(), 64); k2 < k {
			k = k2
		}
		orig := query.NewDiscrete(e, ii)
		red := query.NewDiscrete(ru.Reduced, ii)
		bv, err := query.NewBitvector(kw.Reduced, k, 64, ii)
		if err != nil {
			panic(err)
		}
		row := MemoryRow{
			Machine:       name,
			II:            ii,
			OrigDiscrete:  orig.StateBytes(),
			RedDiscrete:   red.StateBytes(),
			RedBitvector:  bv.StateBytes(),
			CyclesPerWord: bv.K(),
		}
		if row.OrigDiscrete > 0 {
			row.BitvectorPct = 100 * float64(row.RedBitvector) / float64(row.OrigDiscrete)
			row.RedDiscretePct = 100 * float64(row.RedDiscrete) / float64(row.OrigDiscrete)
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderMemory lays out the memory comparison.
func RenderMemory(rows []MemoryRow) string {
	var b strings.Builder
	if len(rows) == 0 {
		return ""
	}
	fmt.Fprintf(&b, "Reserved-table state storage for an II=%d Modulo Reservation Table (bytes)\n\n", rows[0].II)
	fmt.Fprintf(&b, "%-14s %14s %14s %18s %10s\n",
		"machine", "orig discrete", "red. discrete", "red. bitvector", "bv % orig")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %14d %14d %11d (%d c/w) %9.0f%%\n",
			r.Machine, r.OrigDiscrete, r.RedDiscrete, r.RedBitvector, r.CyclesPerWord, r.BitvectorPct)
	}
	b.WriteString("\npaper: reduced descriptions need 22-90% of the original storage; the\n")
	b.WriteString("bitvector encodes several schedule cycles per 64-bit word.\n")
	return b.String()
}
