package tables

import (
	"strings"
	"testing"

	"repro/internal/machines"
)

func TestComputeReductionExample(t *testing.T) {
	r := ComputeReduction(machines.Example())
	if r.Classes != 2 || r.ForbiddenL != 6 || r.MaxLatency != 3 {
		t.Fatalf("example stats: %d classes %d FLs max %d", r.Classes, r.ForbiddenL, r.MaxLatency)
	}
	if r.Rows[0].NumResources != 5 {
		t.Errorf("original resources = %d", r.Rows[0].NumResources)
	}
	// Figure 1: 5 resources -> 2 under every objective.
	for _, row := range r.Rows[1:] {
		if row.NumResources != 2 {
			t.Errorf("%s: resources = %d, want 2", row.Label, row.NumResources)
		}
	}
	out := r.Render("Example")
	if !strings.Contains(out, "number of resources") || !strings.Contains(out, "res-uses") {
		t.Errorf("render missing fields:\n%s", out)
	}
}

func TestReductionTablesForPaperMachines(t *testing.T) {
	for _, tc := range []struct {
		name         string
		maxReduced   int
		minUseFactor float64
	}{
		{"mips", 12, 2.0},
		{"alpha", 13, 1.8},
		{"cydra5-subset", 12, 2.5},
	} {
		r := ComputeReduction(machines.ByName(tc.name))
		orig, disc := r.Rows[0], r.Rows[1]
		if disc.NumResources > tc.maxReduced {
			t.Errorf("%s: reduced to %d resources, want <= %d", tc.name, disc.NumResources, tc.maxReduced)
		}
		if orig.AvgUses/disc.AvgUses < tc.minUseFactor {
			t.Errorf("%s: usage reduction factor %.2f, want >= %.1f",
				tc.name, orig.AvgUses/disc.AvgUses, tc.minUseFactor)
		}
		// Word usage must improve monotonically toward wider words.
		last := r.Rows[len(r.Rows)-1]
		if last.AvgWordUses > orig.AvgWordUses {
			t.Errorf("%s: widest word column (%s) word uses %.2f > original %.2f",
				tc.name, last.Label, last.AvgWordUses, orig.AvgWordUses)
		}
		ms := r.Memory()
		if ms.QuerySpeedupWords < 2 {
			t.Errorf("%s: word-usage speedup %.2f, want >= 2 (paper: 4-7x)", tc.name, ms.QuerySpeedupWords)
		}
		if ms.StatePct > 100 {
			t.Errorf("%s: state memory %.0f%% of original", tc.name, ms.StatePct)
		}
	}
}

func TestTable5(t *testing.T) {
	m := machines.Cydra5()
	loops := BenchmarkLoops(m)
	if len(loops) != 1327 {
		t.Fatalf("benchmark loops = %d", len(loops))
	}
	t5 := ComputeTable5(m, loops[:300], 6)
	if t5.Ops.Min < 2 || t5.Ops.Avg < 10 {
		t.Errorf("ops dist wrong: %+v", t5.Ops)
	}
	if t5.IIOverMII.Min != 1 || t5.IIOverMII.PctAtMin < 80 {
		t.Errorf("II/MII dist wrong: %+v", t5.IIOverMII)
	}
	if t5.DecisionsPerOp.Max > 6.0+1e-9 {
		t.Errorf("decisions/op max %.2f exceeds budget ratio", t5.DecisionsPerOp.Max)
	}
	out := t5.Render()
	if !strings.Contains(out, "II / MII") || !strings.Contains(out, "sched. decisions") {
		t.Errorf("render missing rows:\n%s", out)
	}
}

func TestTable6SmallRun(t *testing.T) {
	m := machines.Cydra5()
	loops := BenchmarkLoops(m)[:120]
	reps := PaperRepresentations(m)
	if len(reps) < 4 {
		t.Fatalf("representations = %d", len(reps))
	}
	t6 := ComputeTable6(m, loops, reps)
	if len(t6.Weighted) != len(reps) {
		t.Fatalf("weighted columns = %d", len(t6.Weighted))
	}
	// The reduced representations must beat the original, and the widest
	// word must beat the discrete reduction (the paper's 3.46 -> 1.21).
	first, discrete, last := t6.Weighted[0], t6.Weighted[1], t6.Weighted[len(t6.Weighted)-1]
	if discrete >= first {
		t.Errorf("discrete reduction (%.2f) not better than original (%.2f)", discrete, first)
	}
	if last >= discrete {
		t.Errorf("bitvector (%.2f) not better than discrete (%.2f)", last, discrete)
	}
	if first/last < 1.8 {
		t.Errorf("query-module speedup %.2f, want >= 1.8 (paper: 2.9)", first/last)
	}
	if t6.ChecksPerDecision < 1 {
		t.Errorf("checks/decision = %.2f", t6.ChecksPerDecision)
	}
	if t6.Rows[0].Freq < 50 {
		t.Errorf("check frequency = %.1f%%, want dominant", t6.Rows[0].Freq)
	}
	out := t6.Render()
	for _, want := range []string{"check", "assign&free", "free", "weighted sum", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigures(t *testing.T) {
	f1 := Figure1()
	for _, want := range []string{"F[B][A] = {1}", "resources: 5 -> 2", "B@0, B@1, B@2, B@3"} {
		if !strings.Contains(f1, want) {
			t.Errorf("Figure1 missing %q", want)
		}
	}
	f3 := Figure3()
	for _, want := range []string{"a) process 1 in F[B][A]", "Rule 3", "Rule 1", "{B@0, A@1}"} {
		if !strings.Contains(f3, want) {
			t.Errorf("Figure3 missing %q", want)
		}
	}
	f4 := Figure4()
	for _, want := range []string{"a) Original machine description", "b) Discrete", "c) Bitvector"} {
		if !strings.Contains(f4, want) {
			t.Errorf("Figure4 missing %q", want)
		}
	}
}

func TestSummary(t *testing.T) {
	s := Summary()
	for _, want := range []string{"mips", "alpha", "cydra5", "words/check"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q:\n%s", want, s)
		}
	}
}

func TestMemoryTable(t *testing.T) {
	rows := ComputeMemory([]string{"mips", "cydra5"}, 24)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RedBitvector >= r.OrigDiscrete {
			t.Errorf("%s: bitvector state (%d B) not smaller than original discrete (%d B)",
				r.Machine, r.RedBitvector, r.OrigDiscrete)
		}
		if r.CyclesPerWord < 2 {
			t.Errorf("%s: cycles/word = %d, want >= 2", r.Machine, r.CyclesPerWord)
		}
	}
	out := RenderMemory(rows)
	if !strings.Contains(out, "cydra5") || !strings.Contains(out, "c/w") {
		t.Errorf("render missing content:\n%s", out)
	}
	if RenderMemory(nil) != "" {
		t.Errorf("empty render not empty")
	}
}

func TestKernelsReport(t *testing.T) {
	rows, err := ComputeKernels(machines.Cydra5())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.II < r.ResMII || r.II < r.RecMII {
			t.Errorf("%s: II %d below MII bounds (%d, %d)", r.Name, r.II, r.ResMII, r.RecMII)
		}
		if r.Stages < 1 {
			t.Errorf("%s: stages = %d", r.Name, r.Stages)
		}
	}
	out := RenderKernels(rows)
	for _, want := range []string{"daxpy", "tridiag", "RecMII", "stages"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
