// Package tables regenerates every table and figure of the paper's
// evaluation (Section 6 and 8): the reduction statistics of Tables 1-4,
// the loop-benchmark characteristics of Table 5, the query-module work
// units of Table 6, and Figures 1, 3 and 4. cmd/paper renders them;
// bench_test.go at the repository root times them.
package tables

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/forbidden"
	"repro/internal/resmodel"
)

// ReductionRow is one column of a Table 1-4 style table (the paper lays
// representations out as columns; we compute them as rows and transpose
// when rendering).
type ReductionRow struct {
	// Label names the representation, e.g. "original" or "4-cycle-word (64b)".
	Label string
	// Original marks the unreduced description.
	Original bool
	// Objective is the selection objective used (zero value for original).
	Objective core.Objective
	// WordBits is the memory-word size this column targets.
	WordBits int
	// K is the number of cycle-bitvectors per word used for the
	// word-usage statistic (1 for original and discrete columns).
	K int
	// NumResources, AvgUses and AvgWordUses are the paper's three metrics.
	NumResources int
	AvgUses      float64
	AvgWordUses  float64
	// Result is the underlying reduction (nil for the original column).
	Result *core.Result
}

// Reduction is a complete Table 1/2/3/4.
type Reduction struct {
	MachineName string
	Classes     int
	ForbiddenL  int
	MaxLatency  int
	Rows        []ReductionRow
}

// ComputeReduction reduces the machine for every representation the paper
// evaluates: the discrete res-uses objective plus k-cycle-word objectives
// for 32- and 64-bit words, with k derived from the reduced resource
// count exactly as the paper derives it (e.g. 15 Cydra 5 resources give
// 2 cycles per 32-bit and 4 cycles per 64-bit word).
func ComputeReduction(m *resmodel.Machine) *Reduction {
	e := m.Expand()
	mat := forbidden.Compute(e)
	cls := mat.ComputeClasses()
	cm := mat.Collapse(cls)

	origTables := make([]resmodel.Table, 0, cls.NumClasses())
	for _, rep := range cls.Rep {
		origTables = append(origTables, e.Ops[rep].Table)
	}

	t := &Reduction{
		MachineName: m.Name,
		Classes:     cls.NumClasses(),
		ForbiddenL:  cm.NonnegCount(),
		MaxLatency:  cm.MaxLatency(),
	}
	t.Rows = append(t.Rows, ReductionRow{
		Label:        "original",
		Original:     true,
		K:            1,
		NumResources: len(m.Resources),
		AvgUses:      core.AvgUsesPerOp(origTables),
		AvgWordUses:  core.AvgWordUsesPerOp(origTables, 1),
	})

	addRow := func(label string, obj core.Objective, wordBits, k int) {
		res := core.CachedReduce(e, obj)
		if err := res.Verify(); err != nil {
			panic(fmt.Sprintf("tables: reduction of %s for %v is not exact: %v", m.Name, obj, err))
		}
		t.Rows = append(t.Rows, ReductionRow{
			Label:        label,
			Objective:    obj,
			WordBits:     wordBits,
			K:            k,
			NumResources: res.NumResources(),
			AvgUses:      core.AvgUsesPerOp(res.ClassTables),
			AvgWordUses:  core.AvgWordUsesPerOp(res.ClassTables, k),
			Result:       res,
		})
	}

	addRow("res-uses (discrete)", core.Objective{Kind: core.ResUses}, 0, 1)
	// Word sizes follow from the discrete reduction's resource count.
	rRed := t.Rows[1].NumResources
	if rRed == 0 {
		rRed = 1
	}
	k32 := 32 / rRed
	if k32 < 1 {
		k32 = 1
	}
	k64 := 64 / rRed
	if k64 < 1 {
		k64 = 1
	}
	addRow("1-cycle-word (32b)", core.Objective{Kind: core.KCycleWord, K: 1}, 32, 1)
	if k32 > 1 {
		addRow(fmt.Sprintf("%d-cycle-word (32b)", k32), core.Objective{Kind: core.KCycleWord, K: k32}, 32, k32)
	}
	if k64 > k32 {
		addRow(fmt.Sprintf("%d-cycle-word (64b)", k64), core.Objective{Kind: core.KCycleWord, K: k64}, 64, k64)
	}
	return t
}

// Render lays the table out in the paper's format: representations as
// columns, the three metrics as rows.
func (t *Reduction) Render(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d operation classes, %d forbidden latencies (all < %d)\n",
		title, t.Classes, t.ForbiddenL, t.MaxLatency+1)
	fmt.Fprintf(&b, "machine: %s\n\n", t.MachineName)

	cols := make([]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		cols = append(cols, r.Label)
	}
	width := 12
	for _, c := range cols {
		if len(c)+2 > width {
			width = len(c) + 2
		}
	}
	row := func(name string, f func(r ReductionRow) string) {
		fmt.Fprintf(&b, "%-34s", name)
		for _, r := range t.Rows {
			fmt.Fprintf(&b, "%*s", width, f(r))
		}
		b.WriteByte('\n')
	}
	row("objective function minimizing:", func(r ReductionRow) string {
		if r.Original {
			return "-"
		}
		return r.Objective.String()
	})
	row("number of resources", func(r ReductionRow) string {
		return fmt.Sprintf("%d", r.NumResources)
	})
	row("avg resource usages / operation", func(r ReductionRow) string {
		return fmt.Sprintf("%.1f", r.AvgUses)
	})
	row("avg word usages / operation", func(r ReductionRow) string {
		return fmt.Sprintf("%.1f", r.AvgWordUses)
	})
	return b.String()
}

// MemorySummary reports the paper's Section 6 memory comparison for this
// machine: the reserved-table state storage per schedule cycle (bits) of
// the original description versus the densest reduced bitvector
// representation, and the description storage ratio (reduced usages over
// original usages).
type MemorySummary struct {
	MachineName        string
	OrigBitsPerCycle   int
	RedBitsPerCycle    int
	RedCyclesPerWord   int
	StatePct           float64 // reduced / original reserved-table storage
	DescriptionPct     float64 // reduced / original usage-entry storage
	QuerySpeedupUses   float64 // avg uses original / avg uses reduced (discrete)
	QuerySpeedupWords  float64 // word uses original / word uses best bitvector
	WordsPerCheck      float64 // avg word usages of the best bitvector column
	BestBitvectorLabel string
}

// Memory computes the summary from a computed Reduction.
func (t *Reduction) Memory() MemorySummary {
	orig := t.Rows[0]
	discrete := t.Rows[1]
	best := t.Rows[len(t.Rows)-1]
	ms := MemorySummary{
		MachineName:        t.MachineName,
		OrigBitsPerCycle:   orig.NumResources,
		RedBitsPerCycle:    best.NumResources,
		RedCyclesPerWord:   best.K,
		BestBitvectorLabel: best.Label,
		WordsPerCheck:      best.AvgWordUses,
	}
	// Reserved-table storage: the original packs 1 cycle per word; the
	// reduced description packs K cycles per word.
	origWordsPerCycle := 1.0
	redWordsPerCycle := 1.0 / float64(best.K)
	ms.StatePct = 100 * redWordsPerCycle / origWordsPerCycle
	if orig.AvgUses > 0 {
		ms.DescriptionPct = 100 * discrete.AvgUses / orig.AvgUses
		ms.QuerySpeedupUses = orig.AvgUses / discrete.AvgUses
	}
	if best.AvgWordUses > 0 {
		ms.QuerySpeedupWords = orig.AvgWordUses / best.AvgWordUses
	}
	return ms
}
