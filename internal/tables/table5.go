package tables

import (
	"fmt"
	"strings"

	"repro/internal/ddg"
	"repro/internal/loopgen"
	"repro/internal/query"
	"repro/internal/resmodel"
	"repro/internal/sched"
)

// Dist summarizes a per-loop statistic the way Table 5 does: minimum,
// the fraction of samples at the minimum, the average, and the maximum.
type Dist struct {
	Min      float64
	PctAtMin float64
	Avg      float64
	Max      float64
}

func computeDist(samples []float64) Dist {
	if len(samples) == 0 {
		return Dist{}
	}
	d := Dist{Min: samples[0], Max: samples[0]}
	sum := 0.0
	for _, s := range samples {
		if s < d.Min {
			d.Min = s
		}
		if s > d.Max {
			d.Max = s
		}
		sum += s
	}
	at := 0
	for _, s := range samples {
		if s < d.Min+1e-9 {
			at++
		}
	}
	d.PctAtMin = 100 * float64(at) / float64(len(samples))
	d.Avg = sum / float64(len(samples))
	return d
}

func (d Dist) String() string {
	return fmt.Sprintf("%8.2f %7.1f%% %8.2f %8.2f", d.Min, d.PctAtMin, d.Avg, d.Max)
}

// Table5 reproduces "Characteristics of the 1327 loop benchmark".
type Table5 struct {
	BudgetRatio    int
	Loops          int
	Ops            Dist // operations per loop iteration
	II             Dist // initiation interval
	IIOverMII      Dist
	DecisionsPerOp Dist // per loop AND per attempt, like the paper
	// ExceededPct is the fraction of attempts that ran out of budget.
	ExceededPct float64
	// NoReversalPct is the fraction of loops with no reversed decision.
	NoReversalPct float64
}

// ComputeTable5 schedules the benchmark with the given budget ratio and
// summarizes it. The query module is the original discrete description
// (the representation does not change any schedule, so the statistics are
// representation-independent).
func ComputeTable5(m *resmodel.Machine, loops []*ddg.Graph, budgetRatio int) *Table5 {
	return ComputeTable5Workers(m, loops, budgetRatio, 1)
}

// ComputeTable5Workers is ComputeTable5 with the per-loop Schedule calls
// fanned across a bounded worker pool (workers < 1 selects GOMAXPROCS).
// Loops are scheduled independently — every Schedule call builds private
// query modules over the shared read-only expanded description — and the
// per-loop results are merged in loop order, so the rendered table is
// byte-identical at every worker count.
func ComputeTable5Workers(m *resmodel.Machine, loops []*ddg.Graph, budgetRatio, workers int) *Table5 {
	e := m.Expand()
	results := sched.ScheduleBatch(loops, m, func(int) sched.ModuleFactory {
		return func(ii int) query.Module { return query.NewDiscrete(e, ii) }
	}, sched.Config{BudgetRatio: budgetRatio}, workers)

	t := &Table5{BudgetRatio: budgetRatio, Loops: len(loops)}
	var ops, iis, ratios, decPerOp []float64
	attempts, exceeded, noRev := 0, 0, 0
	for i, g := range loops {
		r := results[i]
		if !r.OK {
			panic(fmt.Sprintf("tables: %s failed to schedule", g.Name))
		}
		n := float64(len(g.Nodes))
		ops = append(ops, n)
		iis = append(iis, float64(r.II))
		ratios = append(ratios, float64(r.II)/float64(r.MII))
		for _, d := range r.AttemptDecisions {
			decPerOp = append(decPerOp, float64(d)/n)
		}
		attempts += r.Attempts
		exceeded += r.BudgetExceeded
		if r.Reversed == 0 {
			noRev++
		}
	}
	t.Ops = computeDist(ops)
	t.II = computeDist(iis)
	t.IIOverMII = computeDist(ratios)
	t.DecisionsPerOp = computeDist(decPerOp)
	if attempts > 0 {
		t.ExceededPct = 100 * float64(exceeded) / float64(attempts)
	}
	t.NoReversalPct = 100 * float64(noRev) / float64(len(loops))
	return t
}

// Render lays Table 5 out in the paper's format.
func (t *Table5) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: Characteristics of the %d loop benchmark (budget %dN)\n\n", t.Loops, t.BudgetRatio)
	fmt.Fprintf(&b, "%-28s %8s %8s %8s %8s\n", "measurement:", "min", "% at min", "avg", "max")
	fmt.Fprintf(&b, "%-28s %s\n", "number of operations", t.Ops)
	fmt.Fprintf(&b, "%-28s %s\n", "initiation interval (II)", t.II)
	fmt.Fprintf(&b, "%-28s %s\n", "II / MII", t.IIOverMII)
	fmt.Fprintf(&b, "%-28s %s\n", "sched. decisions / operation", t.DecisionsPerOp)
	fmt.Fprintf(&b, "\nattempts exceeding the %dN budget: %.1f%%; loops with no reversed decision: %.1f%%\n",
		t.BudgetRatio, t.ExceededPct, t.NoReversalPct)
	return b.String()
}

// BenchmarkLoops generates the paper's loop benchmark for the machine.
func BenchmarkLoops(m *resmodel.Machine) []*ddg.Graph {
	loops, err := loopgen.Generate(m, loopgen.Default())
	if err != nil {
		panic(err)
	}
	return loops
}
