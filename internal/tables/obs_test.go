package tables

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/machines"
	"repro/internal/obs"
)

// obsRun executes fn with metrics freshly enabled and returns the
// resulting snapshot restricted to the worker-count-invariant scopes.
// parallel.* is deliberately excluded: tasks_per_worker and imbalance
// describe pool shape and legitimately change with the worker count.
// core.stage.* wall-time histograms are excluded for the same reason:
// stage durations vary run to run. sched.arena.* module build/reuse
// counts depend on how many per-worker arenas exist, so they are
// excluded too.
func obsRun(t *testing.T, fn func()) obs.Snapshot {
	t.Helper()
	r := obs.Default()
	r.SetEnabled(true)
	r.Reset()
	defer func() {
		r.SetEnabled(false)
		r.Reset()
	}()
	fn()
	return r.Snapshot().Filter("query", "sched", "core").Exclude("core.stage", "sched.arena")
}

// TestInstrumentedRunsStayDeterministic pins the two halves of the
// observability contract at once: (1) enabling metrics changes no output
// — Table 5, Table 6 and the kernel report render byte-identical to the
// metrics-off baseline at workers 1 and 8 — and (2) the query/sched/core
// counter totals are themselves invariant under the worker count, because
// the parallel harness only redistributes the same per-loop work.
func TestInstrumentedRunsStayDeterministic(t *testing.T) {
	m := machines.Cydra5()
	loops := BenchmarkLoops(m)
	if len(loops) > 60 {
		loops = loops[:60]
	}
	render := func(workers int) string {
		// Representations are rebuilt inside each run so the reduction
		// lookups (cache hits after the warm-up baseline below) land in
		// every instrumented snapshot.
		reps := PaperRepresentations(m)
		if len(reps) > 3 {
			reps = reps[:3]
		}
		var b bytes.Buffer
		b.WriteString(ComputeTable5Workers(m, loops, 6, workers).Render())
		b.WriteString(ComputeTable6Workers(m, loops, reps, workers).Render())
		rows, err := ComputeKernelsWorkers(m, workers)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(RenderKernels(rows))
		return b.String()
	}

	baseline := render(1) // metrics off

	var out1, out8 string
	snap1 := obsRun(t, func() { out1 = render(1) })
	snap8 := obsRun(t, func() { out8 = render(8) })

	if out1 != baseline {
		t.Errorf("workers=1 output changes when metrics are enabled")
	}
	if out8 != baseline {
		t.Errorf("workers=8 instrumented output differs from the serial metrics-off baseline")
	}
	if !reflect.DeepEqual(snap1, snap8) {
		t.Errorf("query/sched/core metric totals differ between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			snapString(t, snap1), snapString(t, snap8))
	}
	for _, scope := range []string{"query", "sched", "core"} {
		if f := snap1.Filter(scope); len(f.Counters) == 0 && len(f.Histograms) == 0 {
			t.Errorf("instrumented run recorded no %s.* metrics", scope)
		}
	}
	if snap1.Counter("sched.loops") == 0 {
		t.Error("sched.loops counter stayed zero over an instrumented run")
	}
}

func snapString(t *testing.T, s obs.Snapshot) string {
	t.Helper()
	var b bytes.Buffer
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "%s: %d\n", c.Name, c.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "%s: count=%d sum=%d max=%d\n", h.Name, h.Count, h.Sum, h.Max)
	}
	return b.String()
}
