package tables

import (
	"fmt"
	"strings"

	"repro/internal/loopgen"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/resmodel"
	"repro/internal/sched"
)

// KernelRow is one named kernel's scheduling outcome.
type KernelRow struct {
	Name      string
	Desc      string
	Ops       int
	ResMII    int
	RecMII    int
	II        int
	Stages    int
	Decisions int
}

// ComputeKernels software-pipelines the named Livermore/BLAS-style
// kernels on the machine (through the original description; reduced
// descriptions produce identical schedules).
func ComputeKernels(m *resmodel.Machine) ([]KernelRow, error) {
	return ComputeKernelsWorkers(m, 1)
}

// ComputeKernelsWorkers is ComputeKernels with the per-kernel Schedule
// calls fanned across a bounded worker pool (workers < 1 selects
// GOMAXPROCS). Rows come back in kernel order regardless of worker
// count; the first error in kernel order is reported.
func ComputeKernelsWorkers(m *resmodel.Machine, workers int) ([]KernelRow, error) {
	e := m.Expand()
	ks, err := loopgen.ParseKernels(m)
	if err != nil {
		return nil, err
	}
	kernels := loopgen.Kernels()
	rows := make([]KernelRow, len(kernels))
	errs := make([]error, len(kernels))
	parallel.ForEach(len(kernels), parallel.Workers(workers), func(i int) {
		k := kernels[i]
		g := ks[i]
		r := sched.Schedule(g, m, func(ii int) query.Module {
			return query.NewDiscrete(e, ii)
		}, sched.DefaultConfig())
		if !r.OK {
			errs[i] = fmt.Errorf("tables: kernel %s failed to schedule", k.Name)
			return
		}
		kern, err := sched.BuildKernel(g, r)
		if err != nil {
			errs[i] = err
			return
		}
		rows[i] = KernelRow{
			Name: k.Name, Desc: k.Desc, Ops: len(g.Nodes),
			ResMII: r.ResMII, RecMII: r.RecMII, II: r.II,
			Stages: kern.Stages, Decisions: r.Decisions,
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// RenderKernels lays out the kernel report.
func RenderKernels(rows []KernelRow) string {
	var b strings.Builder
	b.WriteString("Named kernels, software-pipelined on the Cydra 5\n\n")
	fmt.Fprintf(&b, "%-12s %4s %7s %7s %4s %7s %10s\n",
		"kernel", "ops", "ResMII", "RecMII", "II", "stages", "decisions")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %4d %7d %7d %4d %7d %10d\n",
			r.Name, r.Ops, r.ResMII, r.RecMII, r.II, r.Stages, r.Decisions)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %s\n", r.Name, r.Desc)
	}
	return b.String()
}
