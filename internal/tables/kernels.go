package tables

import (
	"fmt"
	"strings"

	"repro/internal/loopgen"
	"repro/internal/query"
	"repro/internal/resmodel"
	"repro/internal/sched"
)

// KernelRow is one named kernel's scheduling outcome.
type KernelRow struct {
	Name      string
	Desc      string
	Ops       int
	ResMII    int
	RecMII    int
	II        int
	Stages    int
	Decisions int
}

// ComputeKernels software-pipelines the named Livermore/BLAS-style
// kernels on the machine (through the original description; reduced
// descriptions produce identical schedules).
func ComputeKernels(m *resmodel.Machine) ([]KernelRow, error) {
	e := m.Expand()
	ks, err := loopgen.ParseKernels(m)
	if err != nil {
		return nil, err
	}
	var rows []KernelRow
	for i, k := range loopgen.Kernels() {
		g := ks[i]
		r := sched.Schedule(g, m, func(ii int) query.Module {
			return query.NewDiscrete(e, ii)
		}, sched.DefaultConfig())
		if !r.OK {
			return nil, fmt.Errorf("tables: kernel %s failed to schedule", k.Name)
		}
		kern, err := sched.BuildKernel(g, r)
		if err != nil {
			return nil, err
		}
		rows = append(rows, KernelRow{
			Name: k.Name, Desc: k.Desc, Ops: len(g.Nodes),
			ResMII: r.ResMII, RecMII: r.RecMII, II: r.II,
			Stages: kern.Stages, Decisions: r.Decisions,
		})
	}
	return rows, nil
}

// RenderKernels lays out the kernel report.
func RenderKernels(rows []KernelRow) string {
	var b strings.Builder
	b.WriteString("Named kernels, software-pipelined on the Cydra 5\n\n")
	fmt.Fprintf(&b, "%-12s %4s %7s %7s %4s %7s %10s\n",
		"kernel", "ops", "ResMII", "RecMII", "II", "stages", "decisions")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %4d %7d %7d %4d %7d %10d\n",
			r.Name, r.Ops, r.ResMII, r.RecMII, r.II, r.Stages, r.Decisions)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %s\n", r.Name, r.Desc)
	}
	return b.String()
}
