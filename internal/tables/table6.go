package tables

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/resmodel"
	"repro/internal/sched"
)

// Representation is one column of Table 6: a machine description plus an
// internal representation for the reserved table.
type Representation struct {
	Label string
	// Desc is the (original or reduced) expanded description.
	Desc *resmodel.Expanded
	// Bitvector selects the packed representation; K and WordBits apply
	// only then.
	Bitvector bool
	K         int
	WordBits  int
}

// Factory returns the module factory for this representation.
func (r Representation) Factory() sched.ModuleFactory {
	if !r.Bitvector {
		return func(ii int) query.Module { return query.NewDiscrete(r.Desc, ii) }
	}
	return func(ii int) query.Module {
		m, err := query.NewBitvector(r.Desc, r.K, r.WordBits, ii)
		if err != nil {
			panic(fmt.Sprintf("tables: %s: %v", r.Label, err))
		}
		return m
	}
}

// PaperRepresentations builds the five columns of Table 6 for a machine:
// the original discrete description, the res-uses reduction (discrete),
// and the 1-, k32- and k64-cycle-word bitvector reductions.
func PaperRepresentations(m *resmodel.Machine) []Representation {
	e := m.Expand()
	reps := []Representation{{Label: "original", Desc: e}}
	ru := core.CachedReduce(e, core.Objective{Kind: core.ResUses})
	mustExact(ru)
	reps = append(reps, Representation{Label: "res-uses", Desc: ru.Reduced})

	rRed := ru.NumResources()
	if rRed == 0 {
		rRed = 1
	}
	addWord := func(k, bits int) {
		obj := core.Objective{Kind: core.KCycleWord, K: k}
		res := core.CachedReduce(e, obj)
		mustExact(res)
		// The description's own resource count bounds the packing.
		rr := res.NumResources()
		if rr == 0 {
			rr = 1
		}
		kk := k
		if max := bits / rr; kk > max {
			kk = max
		}
		if kk < 1 {
			kk = 1
		}
		reps = append(reps, Representation{
			Label:     fmt.Sprintf("%d-cycle-word (%db)", k, bits),
			Desc:      res.Reduced,
			Bitvector: true,
			K:         kk,
			WordBits:  bits,
		})
	}
	addWord(1, 32)
	if k32 := 32 / rRed; k32 > 1 {
		addWord(k32, 32)
	}
	if k64 := 64 / rRed; k64 > 32/rRed {
		addWord(k64, 64)
	}
	return reps
}

func mustExact(r *core.Result) {
	if err := r.Verify(); err != nil {
		panic(err)
	}
}

// FuncRow is the measured work-units-per-call of one basic function
// across all representations.
type FuncRow struct {
	Name    string
	PerCall []float64
	// Freq is the function's share of basic-function calls (identical
	// across representations since schedules are identical).
	Freq float64
}

// Table6 reproduces "Performance of the basic functions (in work units
// per call)" plus the Section 8 scheduler statistics.
type Table6 struct {
	Labels   []string
	Rows     []FuncRow // check, assign&free, free
	Weighted []float64
	// Scheduler statistics (Section 8).
	ChecksPerDecision  float64
	CheckDistribution  map[string]float64 // bucket -> % of decisions
	EvictingAFPct      float64            // % of assign&free calls that unscheduled
	ResourceReversePct float64            // % of reversals due to resources
}

// loopStats is the per-loop slice of Table 6's measurements: the query
// counters the loop's Schedule call accumulated (an arena snapshot
// delta), plus the scheduler statistics of its result. Each worker
// writes only its own loop's slot, and the slots are merged serially in
// loop order, so the aggregation is race-free and reproduces the serial
// iteration exactly.
type loopStats struct {
	ctrs         query.Counters
	reversed     int
	resourceRev  int
	checksPerDec []int
}

// ComputeTable6 schedules the loop benchmark once per representation and
// measures the contention query module.
func ComputeTable6(m *resmodel.Machine, loops []*ddg.Graph, reps []Representation) *Table6 {
	return ComputeTable6Workers(m, loops, reps, 1)
}

// ComputeTable6Workers is ComputeTable6 with each representation's
// per-loop Schedule calls fanned across a bounded worker pool (workers
// < 1 selects GOMAXPROCS). Each worker schedules through its own
// sched.Arena — modules are built once per worker and reset between
// loops, never shared — and per-loop counter attribution differences
// the arena's monotone counter snapshots around the call. The rendered
// table is byte-identical at every worker count and to the historical
// fresh-module-per-loop runs.
func ComputeTable6Workers(m *resmodel.Machine, loops []*ddg.Graph, reps []Representation, workers int) *Table6 {
	t := &Table6{CheckDistribution: map[string]float64{}}
	for ri, rep := range reps {
		t.Labels = append(t.Labels, rep.Label)
		factory := rep.Factory()
		stats := make([]loopStats, len(loops))
		parallel.ForEachState(len(loops), parallel.Workers(workers),
			func() *sched.Arena { return sched.NewArena(factory) },
			func(a *sched.Arena, i int) {
				g := loops[i]
				c0 := a.Counters()
				r := a.Schedule(g, m, sched.DefaultConfig())
				if !r.OK {
					panic(fmt.Sprintf("tables: %s: %s failed", rep.Label, g.Name))
				}
				s := &stats[i]
				s.ctrs = a.Counters()
				s.ctrs.Sub(&c0)
				s.reversed = r.Reversed
				s.resourceRev = r.ResourceEvictions
				s.checksPerDec = r.ChecksPerDecision
			})

		total := query.Counters{}
		reversed, resourceRev := 0, 0
		var checksPerDec []int
		for i := range stats {
			addCounters(&total, &stats[i].ctrs)
			reversed += stats[i].reversed
			resourceRev += stats[i].resourceRev
			checksPerDec = append(checksPerDec, stats[i].checksPerDec...)
		}
		// The scheduler's slot search answers through range queries when
		// the module supports them; FirstFreeCycles is the number of
		// per-cycle probes the equivalent naive loop would have issued
		// and FirstFreeWork their work units, so folding them into the
		// check row keeps Table 6's res-uses/word-uses-per-check metric
		// — and the frequency column — identical whichever scan strategy
		// the scheduler used.
		checkCalls := total.CheckCalls + total.FirstFreeCycles
		checkWork := total.CheckWork + total.FirstFreeWork
		if ri == 0 {
			t.Rows = []FuncRow{{Name: "check"}, {Name: "assign&free"}, {Name: "free"}}
			calls := float64(checkCalls + total.AssignFreeCalls + total.FreeCalls)
			t.Rows[0].Freq = 100 * float64(checkCalls) / calls
			t.Rows[1].Freq = 100 * float64(total.AssignFreeCalls) / calls
			t.Rows[2].Freq = 100 * float64(total.FreeCalls) / calls
			// Scheduler statistics from the first (reference) run.
			sum := 0
			buckets := map[string]int{}
			for _, c := range checksPerDec {
				sum += c
				switch {
				case c <= 0:
					buckets["0"]++
				case c <= 4:
					buckets[fmt.Sprintf("%d", c)]++
				case c <= 20:
					buckets["5-20"]++
				default:
					buckets["21+"]++
				}
			}
			if len(checksPerDec) > 0 {
				t.ChecksPerDecision = float64(sum) / float64(len(checksPerDec))
				for k, v := range buckets {
					t.CheckDistribution[k] = 100 * float64(v) / float64(len(checksPerDec))
				}
			}
			if total.AssignFreeCalls > 0 {
				t.EvictingAFPct = 100 * float64(total.AssignFreeEvicting) / float64(total.AssignFreeCalls)
			}
			if reversed > 0 {
				t.ResourceReversePct = 100 * float64(resourceRev) / float64(reversed)
			}
		}
		t.Rows[0].PerCall = append(t.Rows[0].PerCall, perCall(checkWork, checkCalls))
		t.Rows[1].PerCall = append(t.Rows[1].PerCall, perCall(total.AssignFreeWork, total.AssignFreeCalls))
		t.Rows[2].PerCall = append(t.Rows[2].PerCall, perCall(total.FreeWork, total.FreeCalls))
		work := checkWork + total.AssignFreeWork + total.FreeWork
		calls := checkCalls + total.AssignFreeCalls + total.FreeCalls
		t.Weighted = append(t.Weighted, perCall(work, calls))
	}
	return t
}

func perCall(work, calls int64) float64 {
	if calls == 0 {
		return 0
	}
	return float64(work) / float64(calls)
}

// addCounters delegates to Counters.AddFrom so the field list lives in
// one place (the query package, next to the struct).
func addCounters(dst, src *query.Counters) { dst.AddFrom(src) }

// Render lays Table 6 out in the paper's format.
func (t *Table6) Render() string {
	var b strings.Builder
	b.WriteString("Table 6: Performance of the basic functions (in work units per call)\n\n")
	width := 10
	for _, l := range t.Labels {
		if len(l)+2 > width {
			width = len(l) + 2
		}
	}
	fmt.Fprintf(&b, "%-14s", "")
	for _, l := range t.Labels {
		fmt.Fprintf(&b, "%*s", width, l)
	}
	fmt.Fprintf(&b, "%12s\n", "frequency")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s", r.Name)
		for _, v := range r.PerCall {
			fmt.Fprintf(&b, "%*.2f", width, v)
		}
		fmt.Fprintf(&b, "%11.1f%%\n", r.Freq)
	}
	fmt.Fprintf(&b, "%-14s", "weighted sum:")
	for _, v := range t.Weighted {
		fmt.Fprintf(&b, "%*.2f", width, v)
	}
	fmt.Fprintf(&b, "%12s\n", "100.0%")
	if len(t.Weighted) >= 2 {
		first, last := t.Weighted[0], t.Weighted[len(t.Weighted)-1]
		if last > 0 {
			fmt.Fprintf(&b, "\nquery-module speedup, original -> %s: %.1fx\n",
				t.Labels[len(t.Labels)-1], first/last)
		}
	}

	b.WriteString("\nScheduler statistics (Section 8):\n")
	fmt.Fprintf(&b, "  check queries per scheduling decision: %.2f\n", t.ChecksPerDecision)
	var keys []string
	for k := range t.CheckDistribution {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "    %s checks: %.1f%% of decisions\n", k, t.CheckDistribution[k])
	}
	fmt.Fprintf(&b, "  assign&free calls that unscheduled operations: %.1f%%\n", t.EvictingAFPct)
	fmt.Fprintf(&b, "  reversals due to resource contention: %.1f%% (rest: dependences)\n", t.ResourceReversePct)
	return b.String()
}
