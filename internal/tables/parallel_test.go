package tables

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/machines"
	"repro/internal/parallel"
	"repro/internal/query"
)

// TestTables56ParallelDeterminism pins the worker-pool harness's core
// guarantee: the rendered Table 5 and Table 6 are byte-identical at
// workers=1 and workers=8 on the same (deterministic) benchmark — any
// counter-merge ordering bug shows up as a diff here.
func TestTables56ParallelDeterminism(t *testing.T) {
	m := machines.Cydra5()
	loops := BenchmarkLoops(m)
	if len(loops) > 80 {
		loops = loops[:80]
	}

	t5serial := ComputeTable5Workers(m, loops, 6, 1).Render()
	t5par := ComputeTable5Workers(m, loops, 6, 8).Render()
	if t5serial != t5par {
		t.Errorf("Table 5 differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", t5serial, t5par)
	}
	if got := ComputeTable5(m, loops, 6).Render(); got != t5serial {
		t.Errorf("ComputeTable5 does not match its Workers(1) form")
	}

	reps := PaperRepresentations(m)
	if len(reps) > 3 {
		reps = reps[:3] // original + res-uses + first bitvector keeps -race fast
	}
	t6serial := ComputeTable6Workers(m, loops, reps, 1).Render()
	t6par := ComputeTable6Workers(m, loops, reps, 8).Render()
	if t6serial != t6par {
		t.Errorf("Table 6 differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", t6serial, t6par)
	}
}

func TestKernelsParallelDeterminism(t *testing.T) {
	m := machines.Cydra5()
	serial, err := ComputeKernelsWorkers(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ComputeKernelsWorkers(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if RenderKernels(serial) != RenderKernels(par) {
		t.Errorf("kernel report differs between workers=1 and workers=8")
	}
}

// TestAddCountersSumsEveryField drives addCounters through reflection so
// a Counters field added without a matching merge line fails the test
// instead of silently dropping statistics.
func TestAddCountersSumsEveryField(t *testing.T) {
	var src, dst query.Counters
	sv, dv := reflect.ValueOf(&src).Elem(), reflect.ValueOf(&dst).Elem()
	for i := 0; i < sv.NumField(); i++ {
		sv.Field(i).SetInt(int64(i + 1))
		dv.Field(i).SetInt(int64(10 * (i + 1)))
	}
	addCounters(&dst, &src)
	for i := 0; i < dv.NumField(); i++ {
		want := int64(i+1) + int64(10*(i+1))
		if got := dv.Field(i).Int(); got != want {
			t.Errorf("addCounters drops field %s: got %d, want %d",
				dv.Type().Field(i).Name, got, want)
		}
	}
}

// TestCountersConcurrentMerge exercises the concurrent aggregation
// pattern of the worker-pool harness: goroutines accumulate into
// indexed private slots, the caller merges in index order, and the total
// equals the serial sum regardless of completion order.
func TestCountersConcurrentMerge(t *testing.T) {
	const n = 64
	slots := make([]query.Counters, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &slots[i]
			for j := 0; j <= i; j++ {
				c.CheckCalls++
				c.CheckWork += 2
				c.AssignFreeCalls++
				c.Unscheduled += int64(j % 3)
			}
		}(i)
	}
	wg.Wait()

	total := query.Counters{}
	for i := range slots {
		addCounters(&total, &slots[i])
	}
	var wantChecks, wantWork, wantUnscheduled int64
	for i := 0; i < n; i++ {
		wantChecks += int64(i + 1)
		wantWork += 2 * int64(i+1)
		for j := 0; j <= i; j++ {
			wantUnscheduled += int64(j % 3)
		}
	}
	if total.CheckCalls != wantChecks || total.CheckWork != wantWork ||
		total.AssignFreeCalls != wantChecks || total.Unscheduled != wantUnscheduled {
		t.Errorf("merged totals %+v; want checks %d work %d unscheduled %d",
			total, wantChecks, wantWork, wantUnscheduled)
	}
}

// TestScheduleBatchMatchesSerial cross-checks the sched-level batch
// harness against one-by-one scheduling.
func TestScheduleBatchMatchesSerial(t *testing.T) {
	m := machines.Cydra5()
	loops := BenchmarkLoops(m)[:40]
	serial := ComputeTable5Workers(m, loops, 6, 1)
	for _, workers := range []int{parallel.Workers(0), 3} {
		got := ComputeTable5Workers(m, loops, 6, workers)
		if *got != *serial {
			t.Errorf("workers=%d: Table 5 struct differs from serial", workers)
		}
	}
}
