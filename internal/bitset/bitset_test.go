package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptySet(t *testing.T) {
	var s Set
	if !s.Empty() {
		t.Errorf("zero Set not Empty")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
	if s.Contains(0) || s.Contains(63) || s.Contains(64) {
		t.Errorf("empty set Contains returned true")
	}
	if s.Min() != -1 || s.Max() != -1 {
		t.Errorf("Min/Max of empty set = %d/%d, want -1/-1", s.Min(), s.Max())
	}
	if s.String() != "{}" {
		t.Errorf("String = %q, want {}", s.String())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(10)
	vals := []int{0, 1, 63, 64, 65, 127, 128, 1000}
	for _, v := range vals {
		s.Add(v)
	}
	for _, v := range vals {
		if !s.Contains(v) {
			t.Errorf("Contains(%d) = false after Add", v)
		}
	}
	if s.Len() != len(vals) {
		t.Errorf("Len = %d, want %d", s.Len(), len(vals))
	}
	if got := s.Min(); got != 0 {
		t.Errorf("Min = %d, want 0", got)
	}
	if got := s.Max(); got != 1000 {
		t.Errorf("Max = %d, want 1000", got)
	}
	s.Remove(63)
	s.Remove(1000)
	s.Remove(5000) // absent, beyond capacity: no-op
	if s.Contains(63) || s.Contains(1000) {
		t.Errorf("Contains true after Remove")
	}
	if s.Len() != len(vals)-2 {
		t.Errorf("Len after removes = %d, want %d", s.Len(), len(vals)-2)
	}
	if got := s.Max(); got != 128 {
		t.Errorf("Max after removes = %d, want 128", got)
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Add(-1) did not panic")
		}
	}()
	var s Set
	s.Add(-1)
}

func TestDoubleAddIdempotent(t *testing.T) {
	var s Set
	s.Add(42)
	s.Add(42)
	if s.Len() != 1 {
		t.Errorf("Len = %d after double add, want 1", s.Len())
	}
}

func TestFromSliceAndSlice(t *testing.T) {
	in := []int{5, 3, 3, 70, 0}
	s := FromSlice(in)
	want := []int{0, 3, 5, 70}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestUnionIntersectDifference(t *testing.T) {
	a := FromSlice([]int{1, 2, 3, 100})
	b := FromSlice([]int{2, 3, 4, 200})

	u := a.Clone()
	u.UnionWith(b)
	for _, v := range []int{1, 2, 3, 4, 100, 200} {
		if !u.Contains(v) {
			t.Errorf("union missing %d", v)
		}
	}
	if u.Len() != 6 {
		t.Errorf("union Len = %d, want 6", u.Len())
	}

	i := a.Clone()
	i.IntersectWith(b)
	if got := i.Slice(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("intersection = %v, want [2 3]", got)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if got := d.Slice(); len(got) != 2 || got[0] != 1 || got[1] != 100 {
		t.Errorf("difference = %v, want [1 100]", got)
	}
}

func TestIntersectsAndSubset(t *testing.T) {
	a := FromSlice([]int{1, 64})
	b := FromSlice([]int{64})
	c := FromSlice([]int{2, 65})
	if !a.Intersects(b) {
		t.Errorf("a.Intersects(b) = false")
	}
	if a.Intersects(c) {
		t.Errorf("a.Intersects(c) = true")
	}
	if !b.SubsetOf(a) {
		t.Errorf("b.SubsetOf(a) = false")
	}
	if a.SubsetOf(b) {
		t.Errorf("a.SubsetOf(b) = true")
	}
	var empty Set
	if !empty.SubsetOf(a) || !empty.SubsetOf(&empty) {
		t.Errorf("empty set should be subset of everything")
	}
	if empty.Intersects(a) {
		t.Errorf("empty set intersects something")
	}
}

func TestEqualAcrossCapacities(t *testing.T) {
	a := New(1000)
	b := New(1)
	a.Add(3)
	b.Add(3)
	if !a.Equal(b) || !b.Equal(a) {
		t.Errorf("sets with same content but different capacity not Equal")
	}
	if a.Key() != b.Key() {
		t.Errorf("Key differs for equal sets")
	}
	b.Add(999)
	if a.Equal(b) {
		t.Errorf("unequal sets reported Equal")
	}
	if a.Key() == b.Key() {
		t.Errorf("Key equal for unequal sets")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromSlice([]int{1, 2, 3, 4, 5})
	var seen []int
	s.ForEach(func(v int) bool {
		seen = append(seen, v)
		return v < 3
	})
	if len(seen) != 3 || seen[2] != 3 {
		t.Errorf("early stop visited %v, want [1 2 3]", seen)
	}
}

func TestShiftedUnionWith(t *testing.T) {
	a := FromSlice([]int{10})
	b := FromSlice([]int{0, 2})
	a.ShiftedUnionWith(b, 5)
	if got := a.Slice(); len(got) != 3 || got[0] != 5 || got[1] != 7 || got[2] != 10 {
		t.Errorf("shifted union = %v, want [5 7 10]", got)
	}
	a.ShiftedUnionWith(b, 0) // delta 0 path
	if !a.Contains(0) || !a.Contains(2) {
		t.Errorf("delta-0 shifted union missing elements")
	}
}

func TestIntersectsShifted(t *testing.T) {
	a := FromSlice([]int{5, 9})
	b := FromSlice([]int{0, 3})
	if !a.IntersectsShifted(b, 5) { // {5, 8} vs {5, 9}
		t.Errorf("IntersectsShifted(+5) = false, want true")
	}
	if a.IntersectsShifted(b, 1) { // {1, 4}
		t.Errorf("IntersectsShifted(+1) = true, want false")
	}
	if a.IntersectsShifted(b, -10) { // negative values ignored
		t.Errorf("IntersectsShifted(-10) = true, want false")
	}
	if !a.IntersectsShifted(b, 9) { // {9, 12}
		t.Errorf("IntersectsShifted(+9) = false, want true")
	}
}

func TestClearRetainsIndependence(t *testing.T) {
	a := FromSlice([]int{1, 2, 3})
	c := a.Clone()
	a.Clear()
	if !a.Empty() {
		t.Errorf("Clear left elements")
	}
	if c.Len() != 3 {
		t.Errorf("Clone shares storage with original")
	}
}

// Property: a Set behaves like a map[int]bool under a random operation
// sequence.
func TestQuickSetVsMap(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		ref := map[int]bool{}
		for _, o := range ops {
			v := int(o % 300)
			switch rng.Intn(3) {
			case 0:
				s.Add(v)
				ref[v] = true
			case 1:
				s.Remove(v)
				delete(ref, v)
			case 2:
				if s.Contains(v) != ref[v] {
					return false
				}
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		keys := make([]int, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		got := s.Slice()
		if len(got) != len(keys) {
			return false
		}
		for i := range keys {
			if got[i] != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: union is commutative and subset-consistent; intersection is a
// subset of both operands.
func TestQuickAlgebra(t *testing.T) {
	gen := func(vals []uint16) *Set {
		s := &Set{}
		for _, v := range vals {
			s.Add(int(v % 500))
		}
		return s
	}
	f := func(av, bv []uint16) bool {
		a, b := gen(av), gen(bv)
		u1 := a.Clone()
		u1.UnionWith(b)
		u2 := b.Clone()
		u2.UnionWith(a)
		if !u1.Equal(u2) {
			return false
		}
		if !a.SubsetOf(u1) || !b.SubsetOf(u1) {
			return false
		}
		i := a.Clone()
		i.IntersectWith(b)
		if !i.SubsetOf(a) || !i.SubsetOf(b) {
			return false
		}
		// a intersects b iff intersection non-empty.
		if a.Intersects(b) == i.Empty() {
			return false
		}
		// difference and intersection partition a.
		d := a.Clone()
		d.DifferenceWith(b)
		d.UnionWith(i)
		return d.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSignedBasics(t *testing.T) {
	s := NewSigned(-10, 10)
	if s.Lo() != -10 {
		t.Errorf("Lo = %d, want -10", s.Lo())
	}
	for _, v := range []int{-10, -1, 0, 3, 10} {
		s.Add(v)
	}
	for _, v := range []int{-10, -1, 0, 3, 10} {
		if !s.Contains(v) {
			t.Errorf("Contains(%d) = false", v)
		}
	}
	if s.Contains(-11) || s.Contains(4) {
		t.Errorf("Contains reported absent value")
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d, want 5", s.Len())
	}
	want := []int{-10, -1, 0, 3, 10}
	got := s.Slice()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
	if s.String() != "{-10, -1, 0, 3, 10}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSignedAddBelowRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Add below range did not panic")
		}
	}()
	NewSigned(-5, 5).Add(-6)
}

func TestSignedEqualDifferentOffsets(t *testing.T) {
	a := NewSigned(-10, 10)
	b := NewSigned(-3, 20)
	for _, v := range []int{-2, 0, 7} {
		a.Add(v)
		b.Add(v)
	}
	if !a.Equal(b) || !b.Equal(a) {
		t.Errorf("value-equal Signed sets with different offsets not Equal")
	}
	b.Add(8)
	if a.Equal(b) || b.Equal(a) {
		t.Errorf("unequal Signed sets reported Equal")
	}
	c := NewSigned(-10, 10)
	c.Add(-9) // same Len as a? no: a has 3, c has 1
	if a.Equal(c) {
		t.Errorf("sets with different Len reported Equal")
	}
}

func TestSignedCloneIndependent(t *testing.T) {
	a := NewSigned(-3, 3)
	a.Add(-3)
	c := a.Clone()
	c.Add(2)
	if a.Contains(2) {
		t.Errorf("Clone shares storage")
	}
	if !c.Contains(-3) {
		t.Errorf("Clone lost element")
	}
}

func TestNewSignedEmptyRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("NewSigned with hi<lo did not panic")
		}
	}()
	NewSigned(3, 2)
}
