package bitset

import (
	"fmt"
	"strings"
)

// Signed is a dense set of integers that may be negative, stored as a Set
// shifted by a fixed offset. It is the representation used for
// forbidden-latency sets, whose elements range over [-L, +L] where L bounds
// the reservation-table span.
//
// The offset is fixed at construction; adding a value outside the declared
// range panics, which turns range-analysis bugs into loud failures instead
// of silently wrong scheduling constraints.
type Signed struct {
	lo   int // value represented by bit 0
	bits Set
}

// NewSigned returns an empty set able to hold values in [lo, hi].
func NewSigned(lo, hi int) *Signed {
	if hi < lo {
		panic(fmt.Sprintf("bitset: NewSigned(%d, %d): empty range", lo, hi))
	}
	s := &Signed{lo: lo}
	s.bits.grow((hi - lo) / wordBits)
	return s
}

// Lo returns the smallest representable value.
func (s *Signed) Lo() int { return s.lo }

// Add inserts v. v must be within the declared range.
func (s *Signed) Add(v int) {
	if v < s.lo {
		panic(fmt.Sprintf("bitset: Signed.Add(%d): below range start %d", v, s.lo))
	}
	s.bits.Add(v - s.lo)
}

// Contains reports whether v is in the set.
func (s *Signed) Contains(v int) bool {
	return v >= s.lo && s.bits.Contains(v-s.lo)
}

// Len returns the number of elements.
func (s *Signed) Len() int { return s.bits.Len() }

// Empty reports whether the set has no elements.
func (s *Signed) Empty() bool { return s.bits.Empty() }

// Equal reports whether s and t hold exactly the same values. Sets with
// different offsets compare by value, not by representation.
func (s *Signed) Equal(t *Signed) bool {
	if s.lo == t.lo {
		return s.bits.Equal(&t.bits)
	}
	if s.Len() != t.Len() {
		return false
	}
	eq := true
	s.ForEach(func(v int) bool {
		if !t.Contains(v) {
			eq = false
			return false
		}
		return true
	})
	return eq
}

// ForEach calls f on every element in increasing order; stops if f returns
// false.
func (s *Signed) ForEach(f func(v int) bool) {
	s.bits.ForEach(func(b int) bool {
		return f(b + s.lo)
	})
}

// Slice returns the elements in increasing order.
func (s *Signed) Slice() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(v int) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Clone returns an independent copy.
func (s *Signed) Clone() *Signed {
	return &Signed{lo: s.lo, bits: *s.bits.Clone()}
}

// String renders the set as "{a, b, c}".
func (s *Signed) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(v int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", v)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
