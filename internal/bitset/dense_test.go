package bitset

import (
	"math/rand"
	"testing"
)

func TestDenseBasics(t *testing.T) {
	d := NewDense(130)
	if d.Universe() != 130 || d.Len() != 0 {
		t.Fatalf("fresh Dense: universe=%d len=%d", d.Universe(), d.Len())
	}
	for _, v := range []int{0, 63, 64, 129} {
		d.Add(v)
		if !d.Contains(v) {
			t.Errorf("Contains(%d) false after Add", v)
		}
	}
	if d.Len() != 4 {
		t.Errorf("Len = %d, want 4", d.Len())
	}
	if d.Contains(-1) || d.Contains(130) {
		t.Error("Contains accepted out-of-universe values")
	}
	var got []int
	d.ForEach(func(v int) bool { got = append(got, v); return true })
	want := []int{0, 63, 64, 129}
	if len(got) != len(want) {
		t.Fatalf("ForEach = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v", got, want)
		}
	}
	n := 0
	d.ForEach(func(v int) bool { n++; return false })
	if n != 1 {
		t.Errorf("ForEach early stop visited %d elements", n)
	}
}

func TestDenseAddPanicsOutsideUniverse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add outside the universe did not panic")
		}
	}()
	NewDense(8).Add(8)
}

func TestDenseMismatchedUniversePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Equal across universes did not panic")
		}
	}()
	NewDense(8).Equal(NewDense(9))
}

// Property: Equal, SubsetOf and Hash agree with the reference Set over
// random universes.
func TestDenseMatchesSet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		a, b := NewDense(n), NewDense(n)
		sa, sb := New(n), New(n)
		for i := 0; i < rng.Intn(2*n); i++ {
			v := rng.Intn(n)
			a.Add(v)
			sa.Add(v)
		}
		for i := 0; i < rng.Intn(2*n); i++ {
			v := rng.Intn(n)
			b.Add(v)
			sb.Add(v)
		}
		if a.Equal(b) != sa.Equal(sb) {
			t.Fatalf("trial %d: Equal disagrees with Set", trial)
		}
		if a.SubsetOf(b) != sa.SubsetOf(sb) {
			t.Fatalf("trial %d: SubsetOf disagrees with Set", trial)
		}
		if a.Len() != sa.Len() {
			t.Fatalf("trial %d: Len disagrees with Set", trial)
		}
		if (a.Hash() == b.Hash()) != (sa.Key() == sb.Key()) {
			// Hash collisions are possible in principle but must not occur
			// on a 200-trial random corpus; Key is the exact oracle.
			if a.Equal(b) {
				t.Fatalf("trial %d: equal sets hash differently", trial)
			}
		}
		if a.Equal(b) && a.Hash() != b.Hash() {
			t.Fatalf("trial %d: equal sets hash differently", trial)
		}
	}
}
