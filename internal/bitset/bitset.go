// Package bitset provides dense, growable bit sets used throughout the
// machine-description reduction pipeline: forbidden-latency sets, resource
// usage masks, packed reservation-table words and automaton state keys.
//
// The zero value of Set is an empty set ready to use.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit set over non-negative integers. It grows on demand.
// The zero value is an empty set.
type Set struct {
	words []uint64
}

// New returns a set with capacity preallocated for values in [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice returns a set containing exactly the given values.
func FromSlice(vals []int) *Set {
	s := &Set{}
	for _, v := range vals {
		s.Add(v)
	}
	return s
}

func (s *Set) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Add inserts v into the set. v must be non-negative.
func (s *Set) Add(v int) {
	if v < 0 {
		panic(fmt.Sprintf("bitset: Add(%d): negative value", v))
	}
	w := v / wordBits
	s.grow(w)
	s.words[w] |= 1 << uint(v%wordBits)
}

// Remove deletes v from the set. Removing an absent value is a no-op.
func (s *Set) Remove(v int) {
	if v < 0 {
		return
	}
	w := v / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(v%wordBits)
	}
}

// Contains reports whether v is in the set.
func (s *Set) Contains(v int) bool {
	if v < 0 {
		return false
	}
	w := v / wordBits
	return w < len(s.words) && s.words[w]&(1<<uint(v%wordBits)) != 0
}

// Len returns the number of elements in the set.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, retaining capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// UnionWith adds every element of t to s.
func (s *Set) UnionWith(t *Set) {
	s.grow(len(t.words) - 1)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s every element not in t.
func (s *Set) IntersectWith(t *Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &= t.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// DifferenceWith removes from s every element of t.
func (s *Set) DifferenceWith(t *Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &^= t.words[i]
		}
	}
}

// Intersects reports whether s and t share at least one element.
func (s *Set) Intersects(t *Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every element of s is also in t.
func (s *Set) SubsetOf(t *Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same elements.
func (s *Set) Equal(t *Set) bool {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		var sw, tw uint64
		if i < len(s.words) {
			sw = s.words[i]
		}
		if i < len(t.words) {
			tw = t.words[i]
		}
		if sw != tw {
			return false
		}
	}
	return true
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest element, or -1 if the set is empty.
func (s *Set) Max() int {
	for i := len(s.words) - 1; i >= 0; i-- {
		if w := s.words[i]; w != 0 {
			return i*wordBits + (wordBits - 1 - bits.LeadingZeros64(w))
		}
	}
	return -1
}

// ForEach calls f on every element in increasing order. If f returns false
// the iteration stops early.
func (s *Set) ForEach(f func(v int) bool) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(i*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns the elements in increasing order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(v int) bool {
		out = append(out, v)
		return true
	})
	return out
}

// ShiftedUnionWith adds (v + delta) to s for every v in t; every shifted
// value must be non-negative.
func (s *Set) ShiftedUnionWith(t *Set, delta int) {
	if delta == 0 {
		s.UnionWith(t)
		return
	}
	t.ForEach(func(v int) bool {
		s.Add(v + delta)
		return true
	})
}

// IntersectsShifted reports whether s and {v + delta : v in t} share an
// element. Shifted values that fall below zero are ignored.
func (s *Set) IntersectsShifted(t *Set, delta int) bool {
	found := false
	t.ForEach(func(v int) bool {
		if s.Contains(v + delta) {
			found = true
			return false
		}
		return true
	})
	return found
}

// Key returns a canonical string key for use as a map key. Two sets have the
// same key iff they are Equal.
func (s *Set) Key() string {
	// Trim trailing zero words so equal sets with different capacity match.
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	var b strings.Builder
	b.Grow(n * 8)
	for i := 0; i < n; i++ {
		w := s.words[i]
		for j := 0; j < 8; j++ {
			b.WriteByte(byte(w >> uint(8*j)))
		}
	}
	return b.String()
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(v int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", v)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
