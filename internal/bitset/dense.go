package bitset

import (
	"fmt"
	"math/bits"
)

// Dense is a bit set over a fixed universe [0, n). Unlike Set it never
// grows: every Dense built for the same universe has the same word count,
// so Equal and SubsetOf are straight word loops with no length
// normalization, and Hash gives a cheap dedup key for grouping sets
// before an Equal confirmation. The reduction pipeline uses Dense for
// per-resource forbidden-triple sets, where the universe (the dense
// triple index) is known up front.
type Dense struct {
	words []uint64
	n     int
}

// NewDense returns an empty set over the universe [0, n).
func NewDense(n int) *Dense {
	if n < 0 {
		n = 0
	}
	return &Dense{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Universe returns the universe size n the set was built for.
func (d *Dense) Universe() int { return d.n }

// Add inserts v. v must be inside the universe.
func (d *Dense) Add(v int) {
	if v < 0 || v >= d.n {
		panic(fmt.Sprintf("bitset: Dense.Add(%d): outside universe [0, %d)", v, d.n))
	}
	d.words[v/wordBits] |= 1 << uint(v%wordBits)
}

// Contains reports whether v is in the set.
func (d *Dense) Contains(v int) bool {
	if v < 0 || v >= d.n {
		return false
	}
	return d.words[v/wordBits]&(1<<uint(v%wordBits)) != 0
}

// Len returns the number of elements.
func (d *Dense) Len() int {
	n := 0
	for _, w := range d.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether d and o contain the same elements. Both sets must
// share a universe size.
func (d *Dense) Equal(o *Dense) bool {
	if d.n != o.n {
		panic(fmt.Sprintf("bitset: Dense.Equal: universe mismatch %d vs %d", d.n, o.n))
	}
	for i, w := range d.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of d is in o. Both sets must
// share a universe size.
func (d *Dense) SubsetOf(o *Dense) bool {
	if d.n != o.n {
		panic(fmt.Sprintf("bitset: Dense.SubsetOf: universe mismatch %d vs %d", d.n, o.n))
	}
	for i, w := range d.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Hash returns an FNV-1a hash of the set's words. Equal sets hash
// identically; distinct sets collide only with FNV's usual odds, so use
// Hash to bucket candidates and Equal to confirm.
func (d *Dense) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range d.words {
		for s := 0; s < 64; s += 8 {
			h ^= (w >> uint(s)) & 0xff
			h *= prime64
		}
	}
	return h
}

// ForEach calls f on every element in increasing order; returning false
// stops the iteration.
func (d *Dense) ForEach(f func(v int) bool) {
	for i, w := range d.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(i*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}
