package sched

import (
	"fmt"
	"sort"

	"repro/internal/ddg"
	"repro/internal/query"
	"repro/internal/resmodel"
)

// OperationDriven schedules an acyclic dependence graph in *operation*
// order rather than cycle order: operations are processed in topological
// order with critical-path priority, and each is inserted at its earliest
// dependence-feasible, contention-free cycle. Because independent chains
// interleave, insertions jump backwards in time — the unrestricted
// placement model that the Cydra 5 compiler's operation-driven scheduler
// uses for scalar code (Section 1) and that cycle-ordered automaton
// walkers cannot serve. Any query.Module backend works, including the
// automaton PairModule; the work each backend performs to support
// arbitrary insertion is what the paper compares.
func OperationDriven(g *ddg.Graph, e *resmodel.Expanded, mod query.Module) (ListResult, error) {
	n := len(g.Nodes)
	res := ListResult{Time: make([]int, n), Alt: make([]int, n)}
	for _, edge := range g.Edges {
		if edge.Dist != 0 {
			return res, fmt.Errorf("sched: OperationDriven requires an acyclic graph")
		}
	}
	if err := g.Validate(); err != nil {
		return res, err
	}
	prio := heights(g, 1)
	preds := g.Preds()

	// Topological order via repeated selection of ready ops, highest
	// priority first — so unrelated critical chains are scheduled before
	// short chains, and short-chain ops later insert at EARLIER cycles.
	placed := make([]bool, n)
	time := make([]int, n)
	order := make([]int, 0, n)
	inDeg := make([]int, n)
	for _, edge := range g.Edges {
		inDeg[edge.To]++
	}
	var ready []int
	for v := 0; v < n; v++ {
		if inDeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	succs := g.Succs()
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool {
			a, b := ready[i], ready[j]
			if prio[a] != prio[b] {
				return prio[a] > prio[b]
			}
			return a < b
		})
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, edge := range succs[v] {
			inDeg[edge.To]--
			if inDeg[edge.To] == 0 {
				ready = append(ready, edge.To)
			}
		}
	}
	if len(order) != n {
		return res, fmt.Errorf("sched: graph is cyclic")
	}

	// Reservation-table modules answer the whole slot search with one
	// range query; backends without range support (the automaton
	// PairModule) keep the per-cycle probe. Both find the same first
	// feasible cycle with the same alternative tie-break.
	rq, _ := mod.(query.RangeQuerier)
	id := 0
	for _, v := range order {
		estart := 0
		for _, edge := range preds[v] {
			if t := time[edge.From] + edge.Delay; t > estart {
				estart = t
			}
		}
		if rq != nil {
			op, t, ok := rq.FirstFreeWithAlt(g.Nodes[v].Op, estart, estart+100000)
			if !ok {
				return res, fmt.Errorf("sched: no slot found for node %d", v)
			}
			mod.Assign(op, t, id)
			id++
			time[v] = t
			res.Alt[v] = op
			placed[v] = true
			continue
		}
		found := false
		for t := estart; !found; t++ {
			if t > estart+100000 {
				return res, fmt.Errorf("sched: no slot found for node %d", v)
			}
			if op, ok := mod.CheckWithAlt(g.Nodes[v].Op, t); ok {
				mod.Assign(op, t, id)
				id++
				time[v] = t
				res.Alt[v] = op
				placed[v] = true
				found = true
			}
		}
	}
	copy(res.Time, time)
	for v := 0; v < n; v++ {
		if end := time[v] + e.Ops[res.Alt[v]].Latency; end > res.Makespan {
			res.Makespan = end
		}
		if time[v]+1 > res.Cycles {
			res.Cycles = time[v] + 1
		}
	}
	return res, nil
}
