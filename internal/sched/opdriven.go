package sched

import (
	"fmt"

	"repro/internal/ddg"
	"repro/internal/query"
	"repro/internal/resmodel"
)

// OperationDriven schedules an acyclic dependence graph in *operation*
// order rather than cycle order: operations are processed in topological
// order with critical-path priority, and each is inserted at its earliest
// dependence-feasible, contention-free cycle. Because independent chains
// interleave, insertions jump backwards in time — the unrestricted
// placement model that the Cydra 5 compiler's operation-driven scheduler
// uses for scalar code (Section 1) and that cycle-ordered automaton
// walkers cannot serve. Any query.Module backend works, including the
// automaton PairModule; the work each backend performs to support
// arbitrary insertion is what the paper compares.
func OperationDriven(g *ddg.Graph, e *resmodel.Expanded, mod query.Module) (ListResult, error) {
	var lsc listScratch
	var res ListResult
	err := operationDrivenInto(&res, g, e, mod, &lsc)
	return res, err
}

// operationDrivenInto is OperationDriven over caller-owned result and
// scratch buffers — the arena path. Behaviour is identical to the fresh
// path, which merely passes transient buffers.
func operationDrivenInto(res *ListResult, g *ddg.Graph, e *resmodel.Expanded, mod query.Module, lsc *listScratch) error {
	n := len(g.Nodes)
	resetListResult(res, n)
	for _, edge := range g.Edges {
		if edge.Dist != 0 {
			return fmt.Errorf("sched: OperationDriven requires an acyclic graph")
		}
	}
	if err := g.Validate(); err != nil {
		return err
	}
	lsc.succs.build(g, false)
	lsc.prio = intsZero(lsc.prio, n)
	heightsInto(lsc.prio, 1, &lsc.succs)
	prio := lsc.prio
	lsc.preds.build(g, true)
	preds := &lsc.preds

	// Topological order via repeated selection of ready ops, highest
	// priority first — so unrelated critical chains are scheduled before
	// short chains, and short-chain ops later insert at EARLIER cycles.
	lsc.placed = boolsZero(lsc.placed, n)
	lsc.time = intsZero(lsc.time, n)
	lsc.inDeg = intsZero(lsc.inDeg, n)
	placed, time, inDeg := lsc.placed, lsc.time, lsc.inDeg
	order := lsc.order[:0]
	for _, edge := range g.Edges {
		inDeg[edge.To]++
	}
	// ready is consumed from the front via a head index, so the sorted
	// remainder is ready[head:] — the same set the slice-popping loop
	// sorted, in the same total order.
	ready := lsc.ready[:0]
	for v := 0; v < n; v++ {
		if inDeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	succs := &lsc.succs
	for head := 0; head < len(ready); {
		sortByPrio(ready[head:], prio)
		v := ready[head]
		head++
		order = append(order, v)
		for _, edge := range succs.at(v) {
			inDeg[edge.To]--
			if inDeg[edge.To] == 0 {
				ready = append(ready, edge.To)
			}
		}
	}
	lsc.ready, lsc.order = ready[:0], order[:0] // retain grown capacity
	if len(order) != n {
		return fmt.Errorf("sched: graph is cyclic")
	}

	// Reservation-table modules answer the whole slot search with one
	// range query; backends without range support (the automaton
	// PairModule) keep the per-cycle probe. Both find the same first
	// feasible cycle with the same alternative tie-break.
	rq, _ := mod.(query.RangeQuerier)
	id := 0
	for _, v := range order {
		estart := 0
		for _, edge := range preds.at(v) {
			if t := time[edge.From] + edge.Delay; t > estart {
				estart = t
			}
		}
		if rq != nil {
			op, t, ok := rq.FirstFreeWithAlt(g.Nodes[v].Op, estart, estart+100000)
			if !ok {
				return fmt.Errorf("sched: no slot found for node %d", v)
			}
			mod.Assign(op, t, id)
			id++
			time[v] = t
			res.Alt[v] = op
			placed[v] = true
			continue
		}
		found := false
		for t := estart; !found; t++ {
			if t > estart+100000 {
				return fmt.Errorf("sched: no slot found for node %d", v)
			}
			if op, ok := mod.CheckWithAlt(g.Nodes[v].Op, t); ok {
				mod.Assign(op, t, id)
				id++
				time[v] = t
				res.Alt[v] = op
				placed[v] = true
				found = true
			}
		}
	}
	copy(res.Time, time)
	for v := 0; v < n; v++ {
		if end := time[v] + e.Ops[res.Alt[v]].Latency; end > res.Makespan {
			res.Makespan = end
		}
		if time[v]+1 > res.Cycles {
			res.Cycles = time[v] + 1
		}
	}
	return nil
}
