package sched

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/loopgen"
	"repro/internal/machines"
	"repro/internal/query"
	"repro/internal/resmodel"
)

// selectFactory returns a ModuleFactory pinned to one registered
// backend over e via the selection chokepoint. Feasibility must be
// established by the caller before handing the factory to worker
// goroutines (a factory cannot report errors).
func selectFactory(e *resmodel.Expanded, rep string) ModuleFactory {
	return func(ii int) query.Module {
		sel, err := query.Select(e, query.Policy{Representation: rep, II: ii})
		if err != nil {
			panic(err)
		}
		return sel.Module
	}
}

// TestAcyclicCorpusBackendsIdentical is the full-corpus differential
// suite for the hybrid backend: scheduling 200 basic blocks over the
// reduced PA-RISC description must produce byte-identical schedules on
// the FSA, discrete and bitvector backends — sequentially and through
// striped per-worker arenas at 1 and 8 workers — and the backends must
// agree on every query-count statistic the auto-selector's cost model
// normalizes by (calls and naive-equivalent range probes; only the work
// per probe may differ).
func TestAcyclicCorpusBackendsIdentical(t *testing.T) {
	m := machines.ByName("parisc")
	red := core.Reduce(m.Expand(), core.Objective{Kind: core.KCycleWord, K: 64})
	if err := red.Verify(); err != nil {
		t.Fatal(err)
	}
	e := red.Reduced
	dcfg := loopgen.DefaultDAG(m)
	dcfg.Blocks = 200
	dags, err := loopgen.GenerateDAGs(m, dcfg)
	if err != nil {
		t.Fatal(err)
	}

	backends := []string{"discrete", "bitvector", "fsa"}
	results := map[string][]ListResult{}
	totals := map[string]*query.Counters{}
	for _, rep := range backends {
		if _, err := query.Select(e, query.Policy{Representation: rep}); err != nil {
			t.Fatalf("%s infeasible on parisc/reduced: %v", rep, err)
		}
		rs := make([]ListResult, 0, len(dags))
		total := &query.Counters{}
		for _, g := range dags {
			sel, err := query.Select(e, query.Policy{Representation: rep})
			if err != nil {
				t.Fatal(err)
			}
			r, err := OperationDriven(g, e, sel.Module)
			if err != nil {
				t.Fatalf("%s/%s: %v", rep, g.Name, err)
			}
			rs = append(rs, r)
			total.AddFrom(sel.Module.Counters())
		}
		results[rep] = rs
		totals[rep] = total
	}

	ref, refCtr := results["discrete"], totals["discrete"]
	for _, rep := range []string{"bitvector", "fsa"} {
		for i := range dags {
			if !reflect.DeepEqual(results[rep][i], ref[i]) {
				t.Fatalf("%s/%s: schedule differs from discrete\n%s: %+v\ndiscrete: %+v",
					rep, dags[i].Name, rep, results[rep][i], ref[i])
			}
		}
		c := totals[rep]
		if c.TotalCalls() != refCtr.TotalCalls() ||
			c.FirstFreeCalls != refCtr.FirstFreeCalls ||
			c.FirstFreeWithAltCalls != refCtr.FirstFreeWithAltCalls ||
			c.FirstFreeCycles != refCtr.FirstFreeCycles {
			t.Errorf("%s: query-count statistics differ from discrete\n%s: calls=%d ff=%d ffa=%d probes=%d\ndiscrete: calls=%d ff=%d ffa=%d probes=%d",
				rep, rep, c.TotalCalls(), c.FirstFreeCalls, c.FirstFreeWithAltCalls, c.FirstFreeCycles,
				refCtr.TotalCalls(), refCtr.FirstFreeCalls, refCtr.FirstFreeWithAltCalls, refCtr.FirstFreeCycles)
		}
	}

	// Striped per-worker arenas: module reuse via Reset must not change
	// a single placement at any worker count.
	for _, rep := range backends {
		factory := selectFactory(e, rep)
		for _, workers := range []int{1, 8} {
			got := make([]ListResult, len(dags))
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					a := NewArena(factory)
					for i := w; i < len(dags); i += workers {
						r, err := a.OperationDriven(dags[i], e)
						if err != nil {
							panic(err)
						}
						got[i] = r
					}
				}(w)
			}
			wg.Wait()
			for i := range dags {
				if !reflect.DeepEqual(got[i], ref[i]) {
					t.Fatalf("%s workers=%d %s: arena schedule differs from discrete reference\narena: %+v\nref:   %+v",
						rep, workers, dags[i].Name, got[i], ref[i])
				}
			}
		}
	}
}

// TestAutoBackendCorpusDeterministic pins "auto" end to end at the
// scheduler layer: modulo-scheduling a 200-loop Cydra 5 corpus through
// arenas whose factory auto-selects per II yields exactly the pinned
// discrete backend's schedules (backend equivalence), identically at 1
// and 8 workers and across repeated runs (the calibration is pure and
// cached, never wall-clock).
func TestAutoBackendCorpusDeterministic(t *testing.T) {
	m := machines.Cydra5()
	red := core.Reduce(m.Expand(), core.Objective{Kind: core.KCycleWord, K: 64})
	if err := red.Verify(); err != nil {
		t.Fatal(err)
	}
	e := red.Reduced
	loops, err := loopgen.GenerateStrata(m, loopgen.DefaultStrata(200))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	ref := ScheduleBatchArena(loops, m, selectFactory(e, "discrete"), cfg, 1)
	for _, workers := range []int{1, 8} {
		for run := 0; run < 2; run++ {
			got := ScheduleBatchArena(loops, m, selectFactory(e, "auto"), cfg, workers)
			for i := range loops {
				if !reflect.DeepEqual(got[i], ref[i]) {
					t.Fatalf("workers=%d run=%d loop %d (%s): auto schedule differs from discrete\nauto:     %+v\ndiscrete: %+v",
						workers, run, i, loops[i].Name, got[i], ref[i])
				}
			}
		}
	}
}
