package sched

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/loopgen"
	"repro/internal/machines"
	"repro/internal/query"
	"repro/internal/resmodel"
)

func linearFactory(e *resmodel.Expanded) func() interface {
	Check(op, cycle int) bool
	Assign(op, cycle, id int)
} {
	return func() interface {
		Check(op, cycle int) bool
		Assign(op, cycle, id int)
	} {
		return query.NewDiscrete(e, 0)
	}
}

func TestKernelDotProduct(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	g := dotProduct(t, m)
	r := Schedule(g, m, discreteFactory(e), DefaultConfig())
	if !r.OK {
		t.Fatal("schedule failed")
	}
	k, err := BuildKernel(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if k.II != r.II {
		t.Errorf("kernel II = %d, want %d", k.II, r.II)
	}
	// Every node appears exactly once across the kernel rows.
	seen := map[int]bool{}
	for _, row := range k.Rows {
		for _, op := range row {
			if seen[op.Node] {
				t.Errorf("node %d appears twice in kernel", op.Node)
			}
			seen[op.Node] = true
			if op.Stage != r.Time[op.Node]/r.II {
				t.Errorf("node %d stage = %d, want %d", op.Node, op.Stage, r.Time[op.Node]/r.II)
			}
		}
	}
	if len(seen) != len(g.Nodes) {
		t.Errorf("kernel holds %d nodes, want %d", len(seen), len(g.Nodes))
	}
	// The memory latency (22) forces multiple stages.
	if k.Stages < 2 {
		t.Errorf("Stages = %d, want >= 2 for a 22-cycle load latency", k.Stages)
	}
	out := k.Render(g, e, 10)
	for _, want := range []string{"II=", "cycle", "prologue"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	// Steady-state overlap is resource- and dependence-correct for many
	// iterations.
	if err := ValidateOverlap(g, e, r, 8, linearFactory(e)); err != nil {
		t.Fatalf("ValidateOverlap: %v", err)
	}
}

func TestBuildKernelFailedSchedule(t *testing.T) {
	g := &ddg.Graph{Name: "x", Nodes: []ddg.Node{{Op: 0}}}
	if _, err := BuildKernel(g, Result{}); err == nil {
		t.Fatal("failed schedule accepted")
	}
}

// Property: for random benchmark loops, the flattened overlapped
// execution of the modulo schedule is contention-free and
// dependence-correct on the ORIGINAL machine description.
func TestQuickOverlapValid(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	f := func(seed int64) bool {
		cfg := loopgen.Default()
		cfg.Seed = seed
		cfg.Loops = 2
		loops, err := loopgen.Generate(m, cfg)
		if err != nil {
			return false
		}
		for _, g := range loops {
			r := Schedule(g, m, discreteFactory(e), DefaultConfig())
			if !r.OK {
				return false
			}
			if ValidateOverlap(g, e, r, 5, linearFactory(e)) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestNamedKernelsSchedule: every named Livermore-style kernel software-
// pipelines at its MII on the Cydra 5, identically across original and
// reduced descriptions, with valid steady-state overlap.
func TestNamedKernelsSchedule(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	red := core.Reduce(e, core.Objective{Kind: core.ResUses})
	if err := red.Verify(); err != nil {
		t.Fatal(err)
	}
	ks, err := loopgen.ParseKernels(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range loopgen.Kernels() {
		g := ks[i]
		r1 := Schedule(g, m, discreteFactory(e), DefaultConfig())
		r2 := Schedule(g, m, discreteFactory(red.Reduced), DefaultConfig())
		if !r1.OK || !r2.OK {
			t.Fatalf("%s: scheduling failed", k.Name)
		}
		if r1.II != r2.II {
			t.Fatalf("%s: II differs across descriptions: %d vs %d", k.Name, r1.II, r2.II)
		}
		for v := range r1.Time {
			if r1.Time[v] != r2.Time[v] {
				t.Fatalf("%s: schedules differ at node %d", k.Name, v)
			}
		}
		if err := VerifySchedule(g, e, r1); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if err := ValidateOverlap(g, e, r1, 6, linearFactory(e)); err != nil {
			t.Fatalf("%s: overlap: %v", k.Name, err)
		}
		if r1.II != r1.MII {
			t.Logf("%s: II %d > MII %d (acceptable, logged)", k.Name, r1.II, r1.MII)
		}
	}
}
