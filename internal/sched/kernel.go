package sched

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ddg"
	"repro/internal/resmodel"
)

// Kernel is the flat form of a software-pipelined loop: the steady-state
// kernel of II cycles in which every operation appears once (tagged with
// its stage), plus the prologue and epilogue that fill and drain the
// pipeline. On the Cydra 5 the prologue/epilogue are folded into the
// kernel by predicated execution under the ICR rotating predicates; the
// flat form below is the machine-independent rendering.
type Kernel struct {
	II     int
	Stages int // number of overlapped iterations in steady state
	// Rows[c] lists the operations issuing in kernel cycle c; Stage says
	// which iteration (relative to the newest) each belongs to.
	Rows [][]KernelOp
}

// KernelOp is one operation instance in the kernel.
type KernelOp struct {
	Node  int // index into the loop's nodes
	Alt   int // expanded-op placed
	Stage int // floor(schedule time / II)
}

// BuildKernel folds a modulo schedule into its kernel.
func BuildKernel(g *ddg.Graph, r Result) (*Kernel, error) {
	if !r.OK {
		return nil, fmt.Errorf("sched: cannot build a kernel from a failed schedule")
	}
	k := &Kernel{II: r.II, Rows: make([][]KernelOp, r.II)}
	for v := range g.Nodes {
		t := r.Time[v]
		stage := t / r.II
		if stage+1 > k.Stages {
			k.Stages = stage + 1
		}
		row := t % r.II
		k.Rows[row] = append(k.Rows[row], KernelOp{Node: v, Alt: r.Alt[v], Stage: stage})
	}
	for _, row := range k.Rows {
		sort.Slice(row, func(i, j int) bool {
			if row[i].Stage != row[j].Stage {
				return row[i].Stage < row[j].Stage
			}
			return row[i].Node < row[j].Node
		})
	}
	return k, nil
}

// Render prints the kernel with its prologue and epilogue for a loop
// executing `trip` iterations (trip >= Stages). Iteration i's operation at
// stage s executes in absolute cycle i*II + (schedule time), so the
// prologue covers cycles before the first full kernel, the kernel repeats
// trip-Stages+1 times, and the epilogue drains the last Stages-1
// iterations.
func (k *Kernel) Render(g *ddg.Graph, e *resmodel.Expanded, trip int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "software-pipelined kernel: II=%d, %d stage(s)\n", k.II, k.Stages)
	for c, row := range k.Rows {
		fmt.Fprintf(&b, "  cycle %2d:", c)
		if len(row) == 0 {
			b.WriteString("  (empty)")
		}
		for _, op := range row {
			fmt.Fprintf(&b, "  %s[i-%d]", g.Nodes[op.Node].Name, op.Stage)
		}
		b.WriteByte('\n')
	}
	if trip >= k.Stages && k.Stages > 1 {
		fmt.Fprintf(&b, "prologue: %d cycles (pipeline fill), kernel executed %d time(s), epilogue: %d cycles (drain)\n",
			(k.Stages-1)*k.II, trip-k.Stages+1, (k.Stages-1)*k.II)
	}
	_ = e
	return b.String()
}

// Expand lays out the first `iters` iterations of the pipelined loop as a
// flat (iteration, node, cycle) trace — primarily for validating that the
// kernel's overlapped execution is exactly the modulo schedule repeated
// every II cycles.
func (k *Kernel) Expand(g *ddg.Graph, r Result, iters int) []FlatOp {
	var out []FlatOp
	for i := 0; i < iters; i++ {
		for v := range g.Nodes {
			out = append(out, FlatOp{Iteration: i, Node: v, Alt: r.Alt[v], Cycle: i*r.II + r.Time[v]})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Cycle != out[b].Cycle {
			return out[a].Cycle < out[b].Cycle
		}
		if out[a].Iteration != out[b].Iteration {
			return out[a].Iteration < out[b].Iteration
		}
		return out[a].Node < out[b].Node
	})
	return out
}

// FlatOp is one operation instance of the flattened pipelined execution.
type FlatOp struct {
	Iteration int
	Node      int
	Alt       int
	Cycle     int
}

// ValidateOverlap replays the flattened execution of `iters` iterations
// on a fresh linear reserved table over the given description and checks
// that no two instances contend — the end-to-end proof that the modulo
// schedule's steady state is resource-correct across iterations, not just
// within the MRT abstraction.
func ValidateOverlap(g *ddg.Graph, e *resmodel.Expanded, r Result, iters int, newLinear func() interface {
	Check(op, cycle int) bool
	Assign(op, cycle, id int)
}) error {
	if !r.OK {
		return fmt.Errorf("sched: schedule not OK")
	}
	k, err := BuildKernel(g, r)
	if err != nil {
		return err
	}
	mod := newLinear()
	for idx, f := range k.Expand(g, r, iters) {
		if !mod.Check(f.Alt, f.Cycle) {
			return fmt.Errorf("sched: overlap violation: iteration %d node %d (%s) at absolute cycle %d",
				f.Iteration, f.Node, g.Nodes[f.Node].Name, f.Cycle)
		}
		mod.Assign(f.Alt, f.Cycle, idx)
	}
	// Dependences across iterations.
	for i := 0; i < iters; i++ {
		for _, edge := range g.Edges {
			j := i + edge.Dist
			if j >= iters {
				continue
			}
			tFrom := i*r.II + r.Time[edge.From]
			tTo := j*r.II + r.Time[edge.To]
			if tTo < tFrom+edge.Delay {
				return fmt.Errorf("sched: cross-iteration dependence violated: %d->%d (dist %d) at iterations %d->%d",
					edge.From, edge.To, edge.Dist, i, j)
			}
		}
	}
	return nil
}
