package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/loopgen"
	"repro/internal/machines"
	"repro/internal/query"
	"repro/internal/resmodel"
)

// discreteFactory builds Modulo Reservation Table modules over e.
func discreteFactory(e *resmodel.Expanded) ModuleFactory {
	return func(ii int) query.Module { return query.NewDiscrete(e, ii) }
}

func bitvecFactory(e *resmodel.Expanded, k int) ModuleFactory {
	return func(ii int) query.Module {
		m, err := query.NewBitvector(e, k, 64, ii)
		if err != nil {
			panic(err)
		}
		return m
	}
}

// dotProduct builds the canonical software-pipelining example on Cydra 5:
// s += a[i] * b[i].
func dotProduct(t *testing.T, m *resmodel.Machine) *ddg.Graph {
	t.Helper()
	src := `
loop dotprod
node addr aadd
node lda  ld.w
node ldb  ld.w
node mul  fmul.s
node acc  fadd.s
node test icmp
node br   brtop
edge addr addr delay 2 dist 1
edge addr lda delay 2
edge addr ldb delay 2
edge lda mul delay 22
edge ldb mul delay 22
edge mul acc delay 7
edge acc acc delay 6 dist 1
edge test br delay 1
`
	g, err := ddg.Parse(src, m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestScheduleDotProduct(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	g := dotProduct(t, m)
	r := Schedule(g, m, discreteFactory(e), DefaultConfig())
	if !r.OK {
		t.Fatalf("schedule failed: %+v", r)
	}
	if r.RecMII != 6 {
		t.Errorf("RecMII = %d, want 6 (fadd.s self-recurrence)", r.RecMII)
	}
	if r.II < r.MII {
		t.Fatalf("II %d < MII %d", r.II, r.MII)
	}
	if err := VerifySchedule(g, e, r); err != nil {
		t.Fatalf("VerifySchedule: %v", err)
	}
	// The two loads must land on different ports or different cycles; the
	// verifier above already guarantees it, but check the alt mechanism
	// engaged: lda and ldb are alternatives of the same op.
	if e.Ops[r.Alt[1]].Orig != e.Ops[r.Alt[2]].Orig {
		t.Errorf("loads placed as different source ops")
	}
}

// TestSameScheduleAcrossDescriptions reproduces the paper's Section 6
// verification: "precisely the same schedules were produced regardless of
// the machine description used by the compiler". The scheduler is
// deterministic, and original/reduced descriptions answer every query
// identically, so the resulting schedules must be identical.
func TestSameScheduleAcrossDescriptions(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	redRU := core.Reduce(e, core.Objective{Kind: core.ResUses})
	redKW := core.Reduce(e, core.Objective{Kind: core.KCycleWord, K: 4})
	if err := redRU.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := redKW.Verify(); err != nil {
		t.Fatal(err)
	}
	kRU := query.MaxCyclesPerWord(len(redRU.Reduced.Resources), 64)
	kKW := query.MaxCyclesPerWord(len(redKW.Reduced.Resources), 64)

	factories := map[string]ModuleFactory{
		"orig/discrete":    discreteFactory(e),
		"reduced/discrete": discreteFactory(redRU.Reduced),
		"reduced/bitvec":   bitvecFactory(redRU.Reduced, kRU),
		"word/bitvec":      bitvecFactory(redKW.Reduced, kKW),
	}

	cfg := loopgen.Default()
	cfg.Loops = 60
	loops, err := loopgen.Generate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range loops {
		var ref Result
		first := true
		for name, f := range factories {
			r := Schedule(g, m, f, DefaultConfig())
			if !r.OK {
				t.Fatalf("%s: %s failed to schedule", g.Name, name)
			}
			if err := VerifySchedule(g, e, r); err != nil {
				t.Fatalf("%s: %s produced invalid schedule: %v", g.Name, name, err)
			}
			if first {
				ref = r
				first = false
				continue
			}
			if r.II != ref.II || r.Decisions != ref.Decisions {
				t.Fatalf("%s: %s diverged: II %d vs %d, decisions %d vs %d",
					g.Name, name, r.II, ref.II, r.Decisions, ref.Decisions)
			}
			for v := range r.Time {
				if r.Time[v] != ref.Time[v] || r.Alt[v] != ref.Alt[v] {
					t.Fatalf("%s: %s placed node %d at %d (alt %d), ref %d (alt %d)",
						g.Name, name, v, r.Time[v], r.Alt[v], ref.Time[v], ref.Alt[v])
				}
			}
		}
	}
}

// TestBudgetForcesHigherII: an impossible budget forces the scheduler to
// give up on tight IIs but still eventually succeed.
func TestBudgetForcesHigherII(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	cfg := loopgen.Default()
	cfg.Loops = 25
	loops, err := loopgen.Generate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range loops {
		tight := Schedule(g, m, discreteFactory(e), Config{BudgetRatio: 6})
		loose := Schedule(g, m, discreteFactory(e), Config{BudgetRatio: 1})
		if !tight.OK || !loose.OK {
			t.Fatalf("%s: scheduling failed (tight %v loose %v)", g.Name, tight.OK, loose.OK)
		}
		if loose.II < tight.II {
			t.Errorf("%s: budget 1N found better II (%d) than 6N (%d)", g.Name, loose.II, tight.II)
		}
		if err := VerifySchedule(g, e, loose); err != nil {
			t.Errorf("%s: loose schedule invalid: %v", g.Name, err)
		}
	}
}

// TestScheduleAchievesMIIMostly mirrors Table 5's headline: the II/MII
// ratio is 1 for the overwhelming majority of loops.
func TestScheduleAchievesMIIMostly(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	cfg := loopgen.Default()
	cfg.Loops = 200
	loops, err := loopgen.Generate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	atMII := 0
	for _, g := range loops {
		r := Schedule(g, m, discreteFactory(e), DefaultConfig())
		if !r.OK {
			t.Fatalf("%s: failed", g.Name)
		}
		if r.II == r.MII {
			atMII++
		}
	}
	frac := float64(atMII) / float64(len(loops))
	if frac < 0.80 {
		t.Errorf("II == MII on only %.1f%% of loops, want >= 80%% (paper: 95.6%%)", 100*frac)
	}
}

// TestHeights: height priority is the longest II-adjusted path to a leaf.
func TestHeights(t *testing.T) {
	g := &ddg.Graph{Name: "h", Nodes: make([]ddg.Node, 4)}
	g.Edges = []ddg.Edge{
		{From: 0, To: 1, Delay: 3},
		{From: 1, To: 3, Delay: 2},
		{From: 2, To: 3, Delay: 9},
	}
	h := heights(g, 4)
	if h[3] != 0 || h[1] != 2 || h[0] != 5 || h[2] != 9 {
		t.Errorf("heights = %v, want [5 2 9 0]", h)
	}
	// Loop-carried edges are discounted by II. The added recurrence
	// 0->1->3->0 has delay 11 over distance 2, so RecMII = 6; at a
	// feasible II the cycle weight is non-positive and heights converge.
	g.Edges = append(g.Edges, ddg.Edge{From: 3, To: 0, Delay: 6, Dist: 2})
	h = heights(g, 6) // back edge weight 6-12 = -6
	if h[0] != 5 || h[3] != 0 {
		t.Errorf("heights at II=6 = %v, want h[0]=5 h[3]=0", h)
	}
	h = heights(g, 7) // larger II discounts the back edge further
	if h[3] != 0 || h[2] != 9 {
		t.Errorf("heights at II=7 = %v, want h[3]=0 h[2]=9", h)
	}
}

// TestVerifyScheduleCatchesViolations: the verifier rejects corrupted
// schedules.
func TestVerifyScheduleCatchesViolations(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	g := dotProduct(t, m)
	r := Schedule(g, m, discreteFactory(e), DefaultConfig())
	if !r.OK {
		t.Fatal("schedule failed")
	}
	// Dependence violation: move the multiply before its load completes.
	bad := r
	bad.Time = append([]int(nil), r.Time...)
	bad.Time[3] = bad.Time[1] // mul at load's cycle
	if err := VerifySchedule(g, e, bad); err == nil {
		t.Errorf("dependence violation not caught")
	}
	// Resource violation: force both loads onto the same port and cycle.
	bad2 := r
	bad2.Time = append([]int(nil), r.Time...)
	bad2.Alt = append([]int(nil), r.Alt...)
	bad2.Time[2] = bad2.Time[1]
	bad2.Alt[2] = bad2.Alt[1]
	if err := VerifySchedule(g, e, bad2); err == nil {
		t.Errorf("resource violation not caught")
	}
	// Wrong alternative: claim a node was placed as an unrelated op.
	bad3 := r
	bad3.Alt = append([]int(nil), r.Alt...)
	bad3.Alt[0] = e.OpIndex("fmul.s")
	if err := VerifySchedule(g, e, bad3); err == nil {
		t.Errorf("wrong alternative not caught")
	}
}

// Property: every random benchmark loop schedules successfully, verifies
// against the original description, and II >= MII.
func TestQuickScheduleRandomLoops(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	f := func(seed int64) bool {
		cfg := loopgen.Default()
		cfg.Seed = seed
		cfg.Loops = 3
		loops, err := loopgen.Generate(m, cfg)
		if err != nil {
			return false
		}
		for _, g := range loops {
			r := Schedule(g, m, discreteFactory(e), DefaultConfig())
			if !r.OK || r.II < r.MII {
				return false
			}
			if VerifySchedule(g, e, r) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestLoopgenMarginals: the generated benchmark matches Table 5's
// published marginals.
func TestLoopgenMarginals(t *testing.T) {
	m := machines.Cydra5()
	loops, err := loopgen.Generate(m, loopgen.Default())
	if err != nil {
		t.Fatal(err)
	}
	s := loopgen.Summarize(m, loops)
	if s.Loops != 1327 {
		t.Errorf("loops = %d, want 1327", s.Loops)
	}
	if s.MinOps < 2 || s.MinOps > 4 {
		t.Errorf("min ops = %d, want ~2", s.MinOps)
	}
	if s.AvgOps < 13 || s.AvgOps > 23 {
		t.Errorf("avg ops = %.2f, want ~17.5", s.AvgOps)
	}
	if s.MaxOps > 161 || s.MaxOps < 80 {
		t.Errorf("max ops = %d, want <= 161 and large", s.MaxOps)
	}
	if s.AltFraction < 0.12 || s.AltFraction > 0.45 {
		t.Errorf("alt fraction = %.2f, want ~0.21", s.AltFraction)
	}
	_ = rand.Int // keep math/rand import meaningful if tests change
}

// TestScheduleFailsAtCappedII: an impossible MaxII cap makes Schedule
// report failure instead of looping.
func TestScheduleFailsAtCappedII(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	g := dotProduct(t, m)
	r := Schedule(g, m, discreteFactory(e), Config{BudgetRatio: 6, MaxII: 2}) // MII is 6
	if r.OK {
		t.Fatal("schedule succeeded below MII")
	}
	if r.Attempts != 0 {
		t.Fatalf("attempts = %d, want 0 (MaxII below MII)", r.Attempts)
	}
}

// TestAttemptDecisionsRecorded: per-attempt decision counts cover every
// attempt and sum to the total.
func TestAttemptDecisionsRecorded(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	cfg := loopgen.Default()
	cfg.Loops = 30
	loops, err := loopgen.Generate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range loops {
		r := Schedule(g, m, discreteFactory(e), DefaultConfig())
		if !r.OK {
			t.Fatal("failed")
		}
		if len(r.AttemptDecisions) != r.Attempts {
			t.Fatalf("%d attempt records for %d attempts", len(r.AttemptDecisions), r.Attempts)
		}
		sum := 0
		for _, d := range r.AttemptDecisions {
			sum += d
		}
		if sum != r.Decisions {
			t.Fatalf("attempt decisions sum %d != total %d", sum, r.Decisions)
		}
		if len(r.ChecksPerDecision) != r.Decisions {
			t.Fatalf("%d check records for %d decisions", len(r.ChecksPerDecision), r.Decisions)
		}
	}
}

// TestRangeScanMatchesNaiveScan pins the tentpole guarantee on the full
// 1327-loop corpus: the word-parallel range scan and the naive
// per-cycle CheckWithAlt scan produce byte-identical schedules — same
// II, same placements, same alternatives, same per-decision statistics
// — at workers 1 and 8, on both reserved-table representations.
func TestRangeScanMatchesNaiveScan(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	k := query.MaxCyclesPerWord(len(e.Resources), 64)
	if k < 1 {
		k = 1
	}
	loops, err := loopgen.Generate(m, loopgen.Default())
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		loops = loops[:150]
	}
	factories := map[string]ModuleFactory{
		"discrete": discreteFactory(e),
		"bitvec":   bitvecFactory(e, k),
	}
	for name, f := range factories {
		factory := func(int) ModuleFactory { return f }
		naive := ScheduleBatch(loops, m, factory, Config{BudgetRatio: 6, NaiveScan: true}, 1)
		for _, workers := range []int{1, 8} {
			ranged := ScheduleBatch(loops, m, factory, Config{BudgetRatio: 6}, workers)
			for i, r := range ranged {
				ref := naive[i]
				if r.OK != ref.OK || r.II != ref.II || r.Decisions != ref.Decisions ||
					r.Reversed != ref.Reversed || r.Attempts != ref.Attempts {
					t.Fatalf("%s workers=%d %s: range scan diverged: OK %v/%v II %d/%d decisions %d/%d",
						name, workers, loops[i].Name, r.OK, ref.OK, r.II, ref.II, r.Decisions, ref.Decisions)
				}
				for v := range r.Time {
					if r.Time[v] != ref.Time[v] || r.Alt[v] != ref.Alt[v] {
						t.Fatalf("%s workers=%d %s: node %d placed at %d (alt %d), naive %d (alt %d)",
							name, workers, loops[i].Name, v, r.Time[v], r.Alt[v], ref.Time[v], ref.Alt[v])
					}
				}
				if len(r.ChecksPerDecision) != len(ref.ChecksPerDecision) {
					t.Fatalf("%s workers=%d %s: %d checks-per-decision entries, naive %d",
						name, workers, loops[i].Name, len(r.ChecksPerDecision), len(ref.ChecksPerDecision))
				}
				for j := range r.ChecksPerDecision {
					if r.ChecksPerDecision[j] != ref.ChecksPerDecision[j] {
						t.Fatalf("%s workers=%d %s: decision %d issued %d checks, naive %d",
							name, workers, loops[i].Name, j, r.ChecksPerDecision[j], ref.ChecksPerDecision[j])
					}
				}
				if len(r.ScanWidths) != r.Decisions {
					t.Fatalf("%s workers=%d %s: %d scan widths for %d decisions",
						name, workers, loops[i].Name, len(r.ScanWidths), r.Decisions)
				}
			}
		}
	}
}

// benchmarkIMSCorpus schedules a slice of the loop corpus on the
// reduced 3-cycle-word bitvector — the BENCH_sched.json headline pair,
// here as a Go benchmark so the two scan strategies can be compared
// under -benchtime averaging and profiled with -cpuprofile.
func benchmarkIMSCorpus(b *testing.B, cfg Config) {
	m := machines.Cydra5()
	red := core.Reduce(m.Expand(), core.Objective{Kind: core.KCycleWord, K: 3})
	if err := red.Verify(); err != nil {
		b.Fatal(err)
	}
	factory := bitvecFactory(red.Reduced, 3)
	loops, err := loopgen.Generate(m, loopgen.Default())
	if err != nil {
		b.Fatal(err)
	}
	loops = loops[:200]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range ScheduleBatch(loops, m, func(int) ModuleFactory { return factory }, cfg, 1) {
			if !r.OK {
				b.Fatal("corpus loop failed to schedule")
			}
		}
	}
}

func BenchmarkIMSCorpusRangeScan(b *testing.B) {
	benchmarkIMSCorpus(b, Config{BudgetRatio: 6})
}

func BenchmarkIMSCorpusNaiveScan(b *testing.B) {
	benchmarkIMSCorpus(b, Config{BudgetRatio: 6, NaiveScan: true})
}
