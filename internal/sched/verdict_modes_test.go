package sched

import (
	"reflect"
	"testing"

	"repro/internal/loopgen"
	"repro/internal/machines"
	"repro/internal/query"
)

// wordsScanFactory wraps a bitvector factory so every module it builds
// runs the word-at-a-time range scan instead of the default bit-parallel
// verdict scan (see query.SetVerdictScan).
func wordsScanFactory(f ModuleFactory) ModuleFactory {
	return func(ii int) query.Module {
		mod := f(ii)
		mod.(*query.Bitvector).SetVerdictScan(false)
		return mod
	}
}

// TestVerdictScanModesCorpusIdentical is the tentpole acceptance
// criterion: modulo-scheduling the full 200-loop Cydra 5 corpus over the
// reduced packed-bitvector description must produce byte-identical
// schedules in all three scan modes — bit-parallel verdict words (the
// default), the word-at-a-time scan, and the naive per-cycle reference
// loop — through per-worker arenas at 1 and 8 workers. The two range
// scans must also agree on every counter except their internal work
// units, including the naive-equivalent FirstFreeCycles probe charge,
// and the scheduler's probe currency (CheckCalls + FirstFreeCycles)
// must be conserved even against the naive mode that never issues a
// range query at all.
func TestVerdictScanModesCorpusIdentical(t *testing.T) {
	m := machines.Cydra5()
	st := loopgen.DefaultStrata(200)
	loops, err := loopgen.GenerateStrata(m, st)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	naiveCfg := cfg
	naiveCfg.NaiveScan = true

	verdictFactory := reducedBitvecFactory(t, m.Expand())
	modes := []struct {
		name    string
		factory ModuleFactory
		cfg     Config
	}{
		{"verdict", verdictFactory, cfg},
		{"words", wordsScanFactory(verdictFactory), cfg},
		{"naive", verdictFactory, naiveCfg},
	}

	ref := ScheduleBatchArena(loops, m, modes[0].factory, modes[0].cfg, 1)
	for _, mode := range modes {
		for _, workers := range []int{1, 8} {
			got := ScheduleBatchArena(loops, m, mode.factory, mode.cfg, workers)
			for i := range loops {
				if !reflect.DeepEqual(got[i], ref[i]) {
					t.Fatalf("%s workers=%d loop %d (%s): schedule differs from verdict reference\n%s: %+v\nverdict: %+v",
						mode.name, workers, i, loops[i].Name, mode.name, got[i], ref[i])
				}
			}
		}
	}

	// Counter accounting, through the streamed driver so per-worker arena
	// counters are summed exactly once per mode.
	stats := map[string]StreamStats{}
	for _, mode := range modes {
		var first StreamStats
		for wi, workers := range []int{1, 8} {
			s, err := loopgen.NewStream(m, st)
			if err != nil {
				t.Fatal(err)
			}
			got := ScheduleStream(s.Next, m, mode.factory, mode.cfg, workers, 64)
			if wi == 0 {
				first = got
			} else if !reflect.DeepEqual(got, first) {
				t.Fatalf("%s: stream stats differ between workers=1 and workers=%d\nw1: %+v\nw%d: %+v",
					mode.name, workers, first, workers, got)
			}
		}
		stats[mode.name] = first
	}

	v, w, n := stats["verdict"], stats["words"], stats["naive"]
	if v.Counters.FirstFreeVerdictWords == 0 {
		t.Error("verdict mode built no verdict words; the bit-parallel scan did not run")
	}
	if w.Counters.FirstFreeVerdictWords != 0 || n.Counters.FirstFreeVerdictWords != 0 {
		t.Errorf("non-verdict modes charged verdict words: words=%d naive=%d",
			w.Counters.FirstFreeVerdictWords, n.Counters.FirstFreeVerdictWords)
	}
	if n.Counters.FirstFreeCalls != 0 || n.Counters.FirstFreeWithAltCalls != 0 {
		t.Errorf("naive mode issued range queries: ff=%d ffa=%d",
			n.Counters.FirstFreeCalls, n.Counters.FirstFreeWithAltCalls)
	}

	// The two range scans must agree on everything but internal work
	// units (words examined, summary skips, verdict words built).
	vc, wc := v.Counters, w.Counters
	vc.FirstFreeWork, wc.FirstFreeWork = 0, 0
	vc.FirstFreeSkips, wc.FirstFreeSkips = 0, 0
	vc.FirstFreeVerdictWords, wc.FirstFreeVerdictWords = 0, 0
	vz, wz := v, w
	vz.Counters, wz.Counters = vc, wc
	if !reflect.DeepEqual(vz, wz) {
		t.Errorf("verdict and word-scan stats differ beyond work units\nverdict: %+v\nwords:   %+v", vz, wz)
	}

	// Probe-currency conservation across all three modes: the per-cycle
	// probes a naive loop issues equal the naive-equivalent probes the
	// range scans charge (ims.go budgets decisions in this currency).
	probes := func(s StreamStats) int64 { return s.Counters.CheckCalls + s.Counters.FirstFreeCycles }
	if probes(v) != probes(n) || probes(w) != probes(n) {
		t.Errorf("probe currency not conserved: verdict=%d words=%d naive=%d",
			probes(v), probes(w), probes(n))
	}
	if v.Loops != n.Loops || v.Failed != n.Failed || v.Decisions != n.Decisions ||
		v.SumII != n.SumII || v.SumMII != n.SumMII {
		t.Errorf("aggregate schedule stats differ between verdict and naive\nverdict: %+v\nnaive:   %+v", v, n)
	}
}

// TestArenaScanModesZeroAlloc extends the steady-state allocation pin to
// every scan mode of the reduced bitvector backend: after one warmup
// pass, scheduling a corpus through an arena allocates nothing per loop
// whether ranges are answered by verdict words, the word-at-a-time scan,
// or the naive per-cycle loop. In particular the verdict rows and the
// 3*II modulo images are slab storage reused across Reset, never
// reallocated per loop.
func TestArenaScanModesZeroAlloc(t *testing.T) {
	m := machines.Cydra5()
	loops, err := loopgen.GenerateStrata(m, loopgen.DefaultStrata(32))
	if err != nil {
		t.Fatal(err)
	}
	verdictFactory := reducedBitvecFactory(t, m.Expand())
	cfg := DefaultConfig()
	naiveCfg := cfg
	naiveCfg.NaiveScan = true
	for _, tc := range []struct {
		name    string
		factory ModuleFactory
		cfg     Config
	}{
		{"verdict", verdictFactory, cfg},
		{"words", wordsScanFactory(verdictFactory), cfg},
		{"naive", verdictFactory, naiveCfg},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := NewArena(tc.factory)
			var res Result
			for _, g := range loops {
				a.ScheduleInto(&res, g, m, tc.cfg) // warmup: grow buffers, build modules
			}
			allocs := testing.AllocsPerRun(10, func() {
				for _, g := range loops {
					a.ScheduleInto(&res, g, m, tc.cfg)
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state %s ScheduleInto allocates %.1f times per corpus pass, want 0", tc.name, allocs)
			}
		})
	}
}
