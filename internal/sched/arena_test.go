package sched

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/loopgen"
	"repro/internal/machines"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/resmodel"
)

// reducedBitvecFactory reduces e under the k-cycle-word objective and
// returns a packed-bitvector factory over the reduction — the
// representation the throughput benchmark ships.
func reducedBitvecFactory(t *testing.T, e *resmodel.Expanded) ModuleFactory {
	t.Helper()
	red := core.Reduce(e, core.Objective{Kind: core.KCycleWord, K: 64})
	if err := red.Verify(); err != nil {
		t.Fatal(err)
	}
	k := query.MaxCyclesPerWord(len(red.Reduced.Resources), 64)
	return bitvecFactory(red.Reduced, k)
}

// obsRun executes fn with metrics freshly enabled and returns the
// query/sched snapshot. sched.arena is excluded: module build/reuse
// counts legitimately depend on the worker count and on whether an
// arena was used at all.
func obsRun(t *testing.T, fn func()) obs.Snapshot {
	t.Helper()
	r := obs.Default()
	r.SetEnabled(true)
	r.Reset()
	defer func() {
		r.SetEnabled(false)
		r.Reset()
	}()
	fn()
	return r.Snapshot().Filter("query", "sched").Exclude("sched.arena")
}

// TestArenaMatchesFreshCorpus pins the tentpole equivalence: scheduling
// a corpus through per-worker arenas — at one worker and at eight —
// produces byte-identical Results and identical query/sched metric
// totals to fresh per-loop Schedule calls, for both representations.
func TestArenaMatchesFreshCorpus(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	st := loopgen.DefaultStrata(200)
	loops, err := loopgen.GenerateStrata(m, st)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	for _, tc := range []struct {
		name    string
		factory ModuleFactory
	}{
		{"discrete", discreteFactory(e)},
		{"bitvec-k64", reducedBitvecFactory(t, e)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var fresh []Result
			freshSnap := obsRun(t, func() {
				fresh = ScheduleBatch(loops, m, func(int) ModuleFactory { return tc.factory }, cfg, 1)
			})
			for _, workers := range []int{1, 8} {
				var got []Result
				gotSnap := obsRun(t, func() {
					got = ScheduleBatchArena(loops, m, tc.factory, cfg, workers)
				})
				for i := range loops {
					if !reflect.DeepEqual(got[i], fresh[i]) {
						t.Fatalf("workers=%d loop %d (%s): arena result differs from fresh\narena: %+v\nfresh: %+v",
							workers, i, loops[i].Name, got[i], fresh[i])
					}
				}
				if !reflect.DeepEqual(gotSnap, freshSnap) {
					t.Errorf("workers=%d: arena metric totals differ from fresh run", workers)
				}
			}
		})
	}
}

// TestScheduleStreamMatchesFresh pins the streamed driver against the
// fresh path: ScheduleStream over the strata stream reports, at one and
// at eight workers, exactly the aggregate statistics and query counters
// a fresh per-loop run accumulates.
func TestScheduleStreamMatchesFresh(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	st := loopgen.DefaultStrata(300)
	loops, err := loopgen.GenerateStrata(m, st)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	factory := reducedBitvecFactory(t, e)

	var want StreamStats
	for _, g := range loops {
		var ctrs []*query.Counters
		wrapped := func(ii int) query.Module {
			mod := factory(ii)
			ctrs = append(ctrs, mod.Counters())
			return mod
		}
		r := Schedule(g, m, wrapped, cfg)
		want.Loops++
		if r.OK {
			want.SumII += int64(r.II)
		} else {
			want.Failed++
		}
		want.SumMII += int64(r.MII)
		want.Decisions += int64(r.Decisions)
		for _, c := range ctrs {
			want.Counters.AddFrom(c)
		}
	}

	for _, workers := range []int{1, 8} {
		s, err := loopgen.NewStream(m, st)
		if err != nil {
			t.Fatal(err)
		}
		got := ScheduleStream(s.Next, m, factory, cfg, workers, 64)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: stream stats differ from fresh run\ngot:  %+v\nwant: %+v", workers, got, want)
		}
	}
}

// acyclicCopy strips the loop-carried edges, leaving the single-
// iteration dependence graph the acyclic schedulers accept.
func acyclicCopy(g *ddg.Graph) *ddg.Graph {
	a := &ddg.Graph{Name: g.Name, Nodes: g.Nodes}
	for _, e := range g.Edges {
		if e.Dist == 0 {
			a.Edges = append(a.Edges, e)
		}
	}
	return a
}

// TestArenaAcyclicMatchesFresh pins the arena variants of the acyclic
// schedulers against their fresh counterparts over a corpus, exercising
// module reuse across consecutive graphs.
func TestArenaAcyclicMatchesFresh(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	loops, err := loopgen.GenerateStrata(m, loopgen.DefaultStrata(120))
	if err != nil {
		t.Fatal(err)
	}
	la := NewArena(discreteFactory(e))
	oa := NewArena(discreteFactory(e))
	for _, g := range loops {
		ag := acyclicCopy(g)

		wantL, errL := ListSchedule(ag, e, &ModuleIssuer{M: query.NewDiscrete(e, 0)})
		gotL, gerrL := la.ListSchedule(ag, e)
		if (errL == nil) != (gerrL == nil) {
			t.Fatalf("%s: list error mismatch: fresh %v, arena %v", g.Name, errL, gerrL)
		}
		if errL == nil && !reflect.DeepEqual(gotL, wantL) {
			t.Fatalf("%s: arena list schedule differs\narena: %+v\nfresh: %+v", g.Name, gotL, wantL)
		}

		wantO, errO := OperationDriven(ag, e, query.NewDiscrete(e, 0))
		gotO, gerrO := oa.OperationDriven(ag, e)
		if (errO == nil) != (gerrO == nil) {
			t.Fatalf("%s: opdriven error mismatch: fresh %v, arena %v", g.Name, errO, gerrO)
		}
		if errO == nil && !reflect.DeepEqual(gotO, wantO) {
			t.Fatalf("%s: arena opdriven schedule differs\narena: %+v\nfresh: %+v", g.Name, gotO, wantO)
		}
	}
}

// TestArenaSteadyStateZeroAlloc pins the headline allocation property:
// after one warmup pass over the corpus, scheduling through an arena
// allocates nothing per loop — modules are reset not rebuilt, scratch
// vectors and the Result's slices retain their grown capacity.
func TestArenaSteadyStateZeroAlloc(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	loops, err := loopgen.GenerateStrata(m, loopgen.DefaultStrata(32))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	for _, tc := range []struct {
		name    string
		factory ModuleFactory
	}{
		{"discrete", discreteFactory(e)},
		{"bitvec-k64", reducedBitvecFactory(t, e)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := NewArena(tc.factory)
			var res Result
			for _, g := range loops {
				a.ScheduleInto(&res, g, m, cfg) // warmup: grow buffers, build modules
			}
			allocs := testing.AllocsPerRun(10, func() {
				for _, g := range loops {
					a.ScheduleInto(&res, g, m, cfg)
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state ScheduleInto allocates %.1f times per corpus pass, want 0", allocs)
			}
		})
	}
}
