package sched

import (
	"testing"

	"repro/internal/automaton"
	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/loopgen"
	"repro/internal/machines"
	"repro/internal/query"
)

func TestListScheduleRespectsDeps(t *testing.T) {
	m := machines.MIPS()
	e := m.Expand()
	g := &ddg.Graph{Name: "bb", Nodes: []ddg.Node{
		{Name: "a", Op: m.OpIndex("load")},
		{Name: "b", Op: m.OpIndex("fmul.s")},
		{Name: "c", Op: m.OpIndex("fadd.s")},
	}}
	g.Edges = []ddg.Edge{
		{From: 0, To: 1, Delay: 2},
		{From: 1, To: 2, Delay: 4},
	}
	iss := &ModuleIssuer{M: query.NewDiscrete(e, 0)}
	r, err := ListSchedule(g, e, iss)
	if err != nil {
		t.Fatal(err)
	}
	if r.Time[1] < r.Time[0]+2 || r.Time[2] < r.Time[1]+4 {
		t.Errorf("dependences violated: %v", r.Time)
	}
	if r.Makespan <= 0 {
		t.Errorf("Makespan = %d", r.Makespan)
	}
}

func TestListScheduleRejectsLoops(t *testing.T) {
	m := machines.MIPS()
	e := m.Expand()
	g := &ddg.Graph{Name: "loop", Nodes: []ddg.Node{{Op: 0}}}
	g.Edges = []ddg.Edge{{From: 0, To: 0, Delay: 1, Dist: 1}}
	iss := &ModuleIssuer{M: query.NewDiscrete(e, 0)}
	if _, err := ListSchedule(g, e, iss); err == nil {
		t.Fatalf("loop-carried edge accepted")
	}
}

// TestListScheduleModuleVsAutomaton: the reservation-table module and the
// forward automaton accept exactly the same schedules, so the greedy
// cycle-ordered list scheduler must produce identical results through
// either backend — and through the original or the reduced description.
func TestListScheduleModuleVsAutomaton(t *testing.T) {
	for _, name := range []string{"example", "mips"} {
		m := machines.ByName(name)
		e := m.Expand()
		red := core.Reduce(e, core.Objective{Kind: core.ResUses})
		if err := red.Verify(); err != nil {
			t.Fatal(err)
		}
		fsa, err := automaton.BuildForward(red.Reduced, automaton.DefaultLimit())
		if err != nil {
			t.Fatalf("%s: automaton: %v", name, err)
		}
		dags, err := loopgen.GenerateDAGs(m, loopgen.DefaultDAG(m))
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range dags[:30] {
			backends := map[string]Issuer{
				"module/orig":    &ModuleIssuer{M: query.NewDiscrete(e, 0)},
				"module/reduced": &ModuleIssuer{M: query.NewDiscrete(red.Reduced, 0)},
				"fsa/reduced":    &WalkerIssuer{W: fsa.Walk()},
			}
			var ref ListResult
			first := true
			for bname, iss := range backends {
				r, err := ListSchedule(g, e, iss)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", name, g.Name, bname, err)
				}
				if first {
					ref = r
					first = false
					continue
				}
				for v := range r.Time {
					if r.Time[v] != ref.Time[v] {
						t.Fatalf("%s/%s: %s placed node %d at %d, ref %d",
							name, g.Name, bname, v, r.Time[v], ref.Time[v])
					}
				}
			}
		}
	}
}

// TestListScheduleBitvectorAgrees: bitvector modules drive the list
// scheduler to the same schedules.
func TestListScheduleBitvectorAgrees(t *testing.T) {
	m := machines.Alpha21064()
	e := m.Expand()
	k := query.MaxCyclesPerWord(len(e.Resources), 64)
	bv, err := query.NewBitvector(e, k, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	dags, err := loopgen.GenerateDAGs(m, loopgen.DefaultDAG(m))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range dags[:20] {
		bv.Reset()
		d := query.NewDiscrete(e, 0)
		r1, err1 := ListSchedule(g, e, &ModuleIssuer{M: d})
		r2, err2 := ListSchedule(g, e, &ModuleIssuer{M: bv})
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for v := range r1.Time {
			if r1.Time[v] != r2.Time[v] {
				t.Fatalf("%s: node %d: discrete %d bitvec %d", g.Name, v, r1.Time[v], r2.Time[v])
			}
		}
	}
}
