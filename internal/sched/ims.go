// Package sched implements the schedulers of Section 8 of Eichenberger &
// Davidson (PLDI 1996): Rau's Iterative Modulo Scheduler (MICRO-27, 1994)
// for software-pipelined loops, and an acyclic list scheduler for
// straight-line code.
//
// The Iterative Modulo Scheduler is the paper's "state-of-the-art
// scheduler": it schedules operations in priority order (height-based, so
// critical-path operations first, *not* in cycle order), reverses prior
// scheduling decisions when resource contentions or dependence violations
// occur, and retries with a larger initiation interval when a budget of
// scheduling decisions (BudgetRatio x N) is exhausted. It therefore
// satisfies the unrestricted scheduling model: the contention query module
// must support arbitrary placement order and unscheduling, which is
// exactly what the paper's reduced reservation tables provide and what
// finite-state-automaton approaches struggle with.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/ddg"
	"repro/internal/query"
	"repro/internal/resmodel"
)

// ModuleFactory builds a contention query module for a given initiation
// interval (ii > 0 for a Modulo Reservation Table). The factory fixes the
// machine description in use — original or reduced, discrete or bitvector
// — which is how the paper compares representations under an identical
// scheduler.
type ModuleFactory func(ii int) query.Module

// Config controls the Iterative Modulo Scheduler.
type Config struct {
	// BudgetRatio bounds scheduling decisions per attempt at
	// BudgetRatio*N (the paper uses 6N, and reports 2N as an ablation).
	BudgetRatio int
	// MaxII caps the initiation-interval search; 0 derives a safe cap.
	MaxII int
	// NaiveScan disables the range-query slot scan even when the module
	// supports it, probing candidate cycles one CheckWithAlt at a time.
	// Schedules are byte-identical either way (the range scan preserves
	// probe order exactly); the flag exists for differential tests and
	// for benchmarking the scan strategies against each other.
	NaiveScan bool
}

// DefaultConfig returns the paper's configuration (budget 6N).
func DefaultConfig() Config { return Config{BudgetRatio: 6} }

// Result is a modulo schedule for one loop.
type Result struct {
	OK     bool
	II     int
	MII    int
	ResMII int
	RecMII int
	// Time is the issue cycle of each node (non-negative; the MRT column
	// is Time mod II).
	Time []int
	// Alt is the expanded-operation index actually placed for each node
	// (check-with-alt's choice).
	Alt []int
	// Attempts is the number of IIs tried (1 = scheduled at MII).
	Attempts int
	// Decisions counts scheduling decisions over all attempts; Reversed
	// counts decisions undone (by resource eviction or dependence
	// violation); ResourceEvictions and DepEvictions split Reversed by
	// cause. BudgetExceeded counts attempts abandoned on budget.
	Decisions         int
	Reversed          int
	ResourceEvictions int
	DepEvictions      int
	BudgetExceeded    int
	// AttemptDecisions records the number of scheduling decisions made in
	// each II attempt (Table 5 averages decisions/op over loops AND
	// attempts).
	AttemptDecisions []int
	// ChecksPerDecision records, for every scheduling decision, how many
	// check queries the time-slot search issued (Section 8: "on average,
	// the scheduler issues 4.74 check queries per scheduling decision").
	// Under the range-query scan this counts the per-cycle probes the
	// equivalent naive loop would have issued, so the statistic is
	// identical whichever scan strategy answered the search.
	ChecksPerDecision []int
	// ScanWidths records, for every scheduling decision, how many
	// candidate cycles the time-slot search covered: slot-estart+1 when a
	// slot was found, the full II-wide window otherwise. A width above 1
	// is a window the word-parallel scan can rule out in fewer passes
	// than the naive per-cycle probe.
	ScanWidths []int
}

// Schedule modulo-schedules the loop g for machine m, issuing all
// contention queries through modules built by factory. The factory's
// modules must be Modulo Reservation Tables over a description whose
// alternative groups mirror m's operations (the original expansion or any
// reduction of it).
func Schedule(g *ddg.Graph, m *resmodel.Machine, factory ModuleFactory, cfg Config) Result {
	var sc schedScratch
	var res Result
	scheduleInto(&res, g, m, factory, cfg, &sc)
	observeSchedule(&res)
	return res
}

// edgeCSR is an adjacency list in compressed-sparse-row form over
// reusable buffers: group v's edges are edges[off[v]:off[v+1]], in
// global edge order within each group — exactly the per-node order
// Graph.Preds/Graph.Succs produce, so switching the scheduler onto the
// CSR changes no iteration order anywhere.
type edgeCSR struct {
	off   []int32
	edges []ddg.Edge
}

func (c *edgeCSR) at(v int) []ddg.Edge { return c.edges[c.off[v]:c.off[v+1]] }

// build groups g.Edges by destination (byTo) or source node with a
// counting sort; after the fill pass off[v] holds group v's end, which
// is off[v+1]'s start, so one descending shift restores the offsets.
func (c *edgeCSR) build(g *ddg.Graph, byTo bool) {
	n := len(g.Nodes)
	if cap(c.off) < n+1 {
		c.off = make([]int32, n+1)
	} else {
		c.off = c.off[:n+1]
	}
	if cap(c.edges) < len(g.Edges) {
		c.edges = make([]ddg.Edge, len(g.Edges))
	} else {
		c.edges = c.edges[:len(g.Edges)]
	}
	off := c.off
	for i := range off {
		off[i] = 0
	}
	for _, e := range g.Edges {
		k := e.From
		if byTo {
			k = e.To
		}
		off[k+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	for _, e := range g.Edges {
		k := e.From
		if byTo {
			k = e.To
		}
		c.edges[off[k]] = e
		off[k]++
	}
	for v := n; v >= 1; v-- {
		off[v] = off[v-1]
	}
	off[0] = 0
}

// schedScratch holds every buffer one Schedule call needs, so an arena
// (or any caller that keeps a scratch per worker) schedules loop after
// loop without allocating once the buffers have grown to the corpus's
// largest shape. The zero value is ready to use.
type schedScratch struct {
	st           state
	mii          ddg.MIIScratch
	usage        ddg.UsageCounter // boxed MachineUsage, cached per machine
	usageM       *resmodel.Machine
	preds, succs edgeCSR
	height       []int
	time         []int
	alt          []int
	prevTime     []int
	everSched    []bool
	inQueue      []bool
	queue        []int
}

func intsZero(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

func boolsZero(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// resetResult reuses res's slices (grown capacity retained) and zeroes
// everything else, so a Result cycled through ScheduleInto behaves like
// a fresh one.
func resetResult(res *Result, n int) {
	*res = Result{
		Time:              intsZero(res.Time, n),
		Alt:               intsZero(res.Alt, n),
		AttemptDecisions:  res.AttemptDecisions[:0],
		ChecksPerDecision: res.ChecksPerDecision[:0],
		ScanWidths:        res.ScanWidths[:0],
	}
}

// scheduleInto is the one scheduling code path: Schedule runs it with a
// fresh scratch, an Arena with its per-worker one. moduleOf supplies
// the query module for each II attempt — the raw factory on the fresh
// path, the arena's reset-and-reuse cache otherwise.
func scheduleInto(res *Result, g *ddg.Graph, m *resmodel.Machine, moduleOf ModuleFactory, cfg Config, sc *schedScratch) {
	if cfg.BudgetRatio <= 0 {
		cfg.BudgetRatio = 6
	}
	n := len(g.Nodes)
	resetResult(res, n)
	if sc.usageM != m {
		sc.usage = ddg.MachineUsage{M: m}
		sc.usageM = m
	}
	res.ResMII = sc.mii.ResMII(g, sc.usage)
	res.RecMII = sc.mii.RecMII(g)
	res.MII = res.ResMII
	if res.RecMII > res.MII {
		res.MII = res.RecMII
	}
	maxII := cfg.MaxII
	if maxII == 0 {
		maxII = res.MII + totalDelay(g) + n + 8
	}
	sc.preds.build(g, true)
	sc.succs.build(g, false)
	s := &sc.st
	s.g, s.preds, s.succs, s.cfg, s.res, s.sc = g, &sc.preds, &sc.succs, cfg, res, sc
	for ii := res.MII; ii <= maxII; ii++ {
		res.Attempts++
		d0 := res.Decisions
		ok := s.attempt(ii, moduleOf(ii))
		res.AttemptDecisions = append(res.AttemptDecisions, res.Decisions-d0)
		if ok {
			res.OK = true
			res.II = ii
			break
		}
	}
	s.res, s.mod, s.rq = nil, nil, nil // drop per-loop references
}

func totalDelay(g *ddg.Graph) int {
	t := 0
	for _, e := range g.Edges {
		if e.Delay > 0 {
			t += e.Delay
		}
	}
	return t
}

type state struct {
	g     *ddg.Graph
	preds *edgeCSR
	succs *edgeCSR
	cfg   Config
	res   *Result
	sc    *schedScratch

	ii        int
	mod       query.Module
	rq        query.RangeQuerier // non-nil when mod supports range scans
	height    []int
	time      []int // -1 = unscheduled
	alt       []int
	prevTime  []int
	everSched []bool
	inQueue   []bool
	queue     []int // unscheduled nodes, managed as a sorted-extract set
}

// attempt runs one iterative-scheduling attempt at the given II.
func (s *state) attempt(ii int, mod query.Module) bool {
	g := s.g
	n := len(g.Nodes)
	s.ii, s.mod = ii, mod
	s.rq = nil
	if !s.cfg.NaiveScan {
		s.rq, _ = mod.(query.RangeQuerier)
	}

	// Every operation must have at least one alternative that does not
	// fold onto itself at this II.
	for _, node := range g.Nodes {
		if _, ok := schedulableAlt(mod, node.Op); !ok {
			return false
		}
	}

	// All attempt-local vectors come out of the scratch; they are resized
	// (retaining capacity) and zeroed, which is exactly the state a fresh
	// make would produce.
	sc := s.sc
	sc.height = intsZero(sc.height, n)
	heightsInto(sc.height, ii, s.succs)
	sc.time = intsZero(sc.time, n)
	sc.alt = intsZero(sc.alt, n)
	sc.prevTime = intsZero(sc.prevTime, n)
	sc.everSched = boolsZero(sc.everSched, n)
	sc.inQueue = boolsZero(sc.inQueue, n)
	s.height, s.time, s.alt, s.prevTime = sc.height, sc.time, sc.alt, sc.prevTime
	s.everSched, s.inQueue = sc.everSched, sc.inQueue
	s.queue = sc.queue[:0]
	for v := 0; v < n; v++ {
		s.time[v] = -1
		s.push(v)
	}

	budget := s.cfg.BudgetRatio * n
	for len(s.queue) > 0 {
		if budget <= 0 {
			s.res.BudgetExceeded++
			s.sc.queue = s.queue[:0] // retain grown capacity
			return false
		}
		v := s.pop()
		ctr := mod.Counters()
		c0 := ctr.CheckCalls + ctr.FirstFreeCycles
		estart := s.earlyStart(v)
		timeSlot, altOp, found := s.findTimeSlot(v, estart, estart+ii-1)
		width := ii
		if found {
			width = timeSlot - estart + 1
		} else {
			// Forced placement (Rau): at estart the first time, otherwise
			// just after the previous placement.
			timeSlot = estart
			if s.everSched[v] && s.prevTime[v]+1 > timeSlot {
				timeSlot = s.prevTime[v] + 1
			}
			altOp, _ = schedulableAlt(mod, g.Nodes[v].Op)
		}
		s.place(v, timeSlot, altOp)
		budget--
		s.res.Decisions++
		s.res.ChecksPerDecision = append(s.res.ChecksPerDecision, int(ctr.CheckCalls+ctr.FirstFreeCycles-c0))
		s.res.ScanWidths = append(s.res.ScanWidths, width)
	}
	s.sc.queue = s.queue[:0] // retain grown capacity
	return true
}

// schedulableAlt returns the first alternative of origOp that is
// schedulable at the module's II.
func schedulableAlt(mod query.Module, origOp int) (int, bool) {
	// The module's CheckWithAlt iterates the alt group, but for forced
	// placement we need an alternative regardless of current contention;
	// probe via Schedulable on the group.
	if ag, ok := mod.(query.AltGrouper); ok {
		for _, op := range ag.AltGroupOf(origOp) {
			if mod.Schedulable(op) {
				return op, true
			}
		}
		return -1, false
	}
	panic("sched: module does not expose alternative groups")
}

// push inserts v into the unscheduled set.
func (s *state) push(v int) {
	if !s.inQueue[v] {
		s.inQueue[v] = true
		s.queue = append(s.queue, v)
	}
}

// pop removes and returns the highest-priority unscheduled node: maximum
// height, ties broken by lower node index (deterministic).
func (s *state) pop() int {
	best := 0
	for i := 1; i < len(s.queue); i++ {
		a, b := s.queue[i], s.queue[best]
		if s.height[a] > s.height[b] || (s.height[a] == s.height[b] && a < b) {
			best = i
		}
	}
	v := s.queue[best]
	s.queue[best] = s.queue[len(s.queue)-1]
	s.queue = s.queue[:len(s.queue)-1]
	s.inQueue[v] = false
	return v
}

// earlyStart computes the earliest legal issue time of v with respect to
// its currently scheduled predecessors (clamped at 0).
func (s *state) earlyStart(v int) int {
	estart := 0
	for _, e := range s.preds.at(v) {
		if e.From == v {
			continue // self-recurrences never constrain their own estart
		}
		if s.time[e.From] < 0 {
			continue
		}
		if t := s.time[e.From] + e.Delay - s.ii*e.Dist; t > estart {
			estart = t
		}
	}
	return estart
}

// findTimeSlot searches [minT, maxT] for the first contention-free slot
// for v or any of its alternatives. When the module supports range
// queries the whole window is answered in one word-parallel (or
// row-scan) call; the fallback probes one CheckWithAlt per cycle. Both
// return the same first feasible cycle with the same alternative-group
// tie-break, so the choice of scan never changes a schedule.
func (s *state) findTimeSlot(v, minT, maxT int) (int, int, bool) {
	origOp := s.g.Nodes[v].Op
	if s.rq != nil {
		op, t, ok := s.rq.FirstFreeWithAlt(origOp, minT, maxT)
		if !ok {
			return 0, 0, false
		}
		return t, op, true
	}
	for t := minT; t <= maxT; t++ {
		if op, ok := s.mod.CheckWithAlt(origOp, t); ok {
			return t, op, true
		}
	}
	return 0, 0, false
}

// place schedules v at time t using expanded op altOp, displacing
// resource-conflicting instances and dependence-violated neighbors.
func (s *state) place(v, t, altOp int) {
	evicted := s.mod.AssignFree(altOp, t, v)
	s.time[v] = t
	s.alt[v] = altOp
	s.prevTime[v] = t
	s.everSched[v] = true
	for _, id := range evicted {
		if id == v {
			continue
		}
		s.time[id] = -1
		s.push(id)
		s.res.Reversed++
		s.res.ResourceEvictions++
	}
	// Displace scheduled neighbors whose dependence constraints this
	// placement violates (successors too early, predecessors too late).
	for _, e := range s.succs.at(v) {
		q := e.To
		if q == v || s.time[q] < 0 {
			continue
		}
		if s.time[q] < t+e.Delay-s.ii*e.Dist {
			s.unschedule(q)
		}
	}
	for _, e := range s.preds.at(v) {
		p := e.From
		if p == v || s.time[p] < 0 {
			continue
		}
		if t < s.time[p]+e.Delay-s.ii*e.Dist {
			s.unschedule(p)
		}
	}
	// Copy final times into the result on the fly (cheap; last write wins).
	copy(s.res.Time, s.time)
	copy(s.res.Alt, s.alt)
}

func (s *state) unschedule(q int) {
	s.mod.Free(s.alt[q], s.time[q], q)
	s.time[q] = -1
	s.push(q)
	s.res.Reversed++
	s.res.DepEvictions++
}

// heights computes the height-based priority of Rau's scheduler: the
// longest latency-weighted path (II-adjusted for loop-carried edges) from
// each node to any leaf. Computed by relaxation; converges because every
// dependence cycle has non-positive weight at II >= RecMII.
func heights(g *ddg.Graph, ii int) []int {
	var succs edgeCSR
	succs.build(g, false)
	h := make([]int, len(g.Nodes))
	heightsInto(h, ii, &succs)
	return h
}

// heightsInto is heights over a caller-owned zeroed vector and a
// prebuilt successor CSR.
func heightsInto(h []int, ii int, succs *edgeCSR) {
	n := len(h)
	for pass := 0; pass <= n; pass++ {
		changed := false
		for v := n - 1; v >= 0; v-- {
			for _, e := range succs.at(v) {
				if nh := h[e.To] + e.Delay - ii*e.Dist; nh > h[v] {
					h[v] = nh
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

// VerifySchedule checks a successful Result against the loop and the
// ORIGINAL machine description: every dependence is satisfied modulo II
// and the chosen alternatives are contention-free on a fresh Modulo
// Reservation Table. Used by tests to cross-validate schedules produced
// through reduced descriptions.
func VerifySchedule(g *ddg.Graph, e *resmodel.Expanded, r Result) error {
	if !r.OK {
		return fmt.Errorf("sched: schedule not OK")
	}
	for _, edge := range g.Edges {
		if r.Time[edge.To] < r.Time[edge.From]+edge.Delay-r.II*edge.Dist {
			return fmt.Errorf("sched: dependence %d->%d violated: t%d=%d, t%d=%d, delay %d dist %d II %d",
				edge.From, edge.To, edge.From, r.Time[edge.From], edge.To, r.Time[edge.To],
				edge.Delay, edge.Dist, r.II)
		}
	}
	mod := query.NewDiscrete(e, r.II)
	order := make([]int, len(g.Nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return r.Time[order[i]] < r.Time[order[j]] })
	for _, v := range order {
		altOp := r.Alt[v]
		if g.Nodes[v].Op != e.Ops[altOp].Orig {
			return fmt.Errorf("sched: node %d placed as expanded op %d which is not an alternative of op %d",
				v, altOp, g.Nodes[v].Op)
		}
		if !mod.Check(altOp, r.Time[v]) {
			return fmt.Errorf("sched: resource contention for node %d (%s) at cycle %d",
				v, g.Nodes[v].Name, r.Time[v])
		}
		mod.Assign(altOp, r.Time[v], v)
	}
	return nil
}
