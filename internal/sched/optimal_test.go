package sched

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ddg"
	"repro/internal/loopgen"
	"repro/internal/machines"
	"repro/internal/query"
	"repro/internal/resmodel"
)

func TestOptimalDotProduct(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	g := dotProduct(t, m)
	r := Optimal(g, m, discreteFactory(e), DefaultOptimalConfig())
	if !r.OK || !r.Proven || r.Fallback {
		t.Fatalf("optimal run not proven: %+v", r)
	}
	if r.II < r.MII {
		t.Fatalf("II %d < MII %d", r.II, r.MII)
	}
	if err := VerifySchedule(g, e, r.Result); err != nil {
		t.Fatalf("VerifySchedule: %v", err)
	}
	ims := Schedule(g, m, discreteFactory(e), DefaultConfig())
	if ims.OK && r.II > ims.II {
		t.Errorf("optimal II %d worse than IMS II %d", r.II, ims.II)
	}
}

// TestOptimalPropertyCorpus is the satellite property test over the
// 200-loop stratified corpus: wherever the exact search completes
// within budget, MII <= II_opt <= II_ims, and every schedule — produced
// here over the reduced bitvector representation — revalidates on the
// naive (non-range, per-cycle Check) query path over the ORIGINAL
// machine description, the independent oracle VerifySchedule drives.
// It also pins the acceptance bar: at the default budget, at least 90%
// of the corpus is solved to proven optimality.
func TestOptimalPropertyCorpus(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	st := loopgen.DefaultStrata(200)
	loops, err := loopgen.GenerateStrata(m, st)
	if err != nil {
		t.Fatal(err)
	}
	factory := reducedBitvecFactory(t, e)
	cfg := DefaultOptimalConfig()
	opt := OptimalBatch(loops, m, factory, cfg, 4)
	ims := ScheduleBatchArena(loops, m, factory, cfg.IMS, 4)

	proven := 0
	for i, g := range loops {
		r := opt[i]
		if r.Proven {
			proven++
			if !r.OK {
				t.Fatalf("%s: proven but not OK: %+v", g.Name, r)
			}
			if r.II < r.MII {
				t.Errorf("%s: proven II %d < MII %d", g.Name, r.II, r.MII)
			}
			if ims[i].OK && r.II > ims[i].II {
				t.Errorf("%s: proven II %d > IMS II %d", g.Name, r.II, ims[i].II)
			}
		}
		if r.Fallback {
			// The fallback contract: Result is exactly the IMS run.
			if !reflect.DeepEqual(r.Result, ims[i]) {
				t.Errorf("%s: fallback Result differs from IMS\nopt: %+v\nims: %+v", g.Name, r.Result, ims[i])
			}
		}
		if r.OK {
			if err := VerifySchedule(g, e, r.Result); err != nil {
				t.Errorf("%s: schedule fails the naive oracle: %v", g.Name, err)
			}
		}
	}
	if min := (len(loops) * 9) / 10; proven < min {
		t.Errorf("proven optimal on %d/%d loops, want >= %d", proven, len(loops), min)
	}
}

// TestOptimalDeterministicAcrossWorkers is the satellite differential
// test: the per-loop OptimalResults and the sched/query obs counter
// totals are byte-identical at batch workers 1 and 8, under the range
// scan and under Config.NaiveScan, at two budgets that force different
// proven/fallback mixtures. Additionally the
// results themselves (schedules, node counts, outcomes) are identical
// across the two scan modes — only query-module counters may differ,
// and those live outside OptimalResult.
func TestOptimalDeterministicAcrossWorkers(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	st := loopgen.DefaultStrata(120)
	loops, err := loopgen.GenerateStrata(m, st)
	if err != nil {
		t.Fatal(err)
	}
	factory := reducedBitvecFactory(t, e)
	for _, bc := range []struct {
		name   string
		budget int64
	}{
		{"mid-budget", 24576},
		{"tiny-budget", 2048},
	} {
		t.Run(bc.name, func(t *testing.T) {
			var byMode [2][]OptimalResult
			for mi, naive := range []bool{false, true} {
				cfg := DefaultOptimalConfig()
				cfg.MaxNodes = bc.budget
				cfg.NaiveScan = naive
				var ref []OptimalResult
				refSnap := obsRun(t, func() {
					ref = OptimalBatch(loops, m, factory, cfg, 1)
				})
				gotSnap := obsRun(t, func() {
					got := OptimalBatch(loops, m, factory, cfg, 8)
					for i := range loops {
						if !reflect.DeepEqual(got[i], ref[i]) {
							t.Fatalf("naive=%v workers=8 loop %d (%s): result differs\ngot: %+v\nref: %+v",
								naive, i, loops[i].Name, got[i], ref[i])
						}
					}
				})
				if !reflect.DeepEqual(gotSnap, refSnap) {
					t.Errorf("naive=%v: metric totals differ between workers 1 and 8", naive)
				}
				byMode[mi] = ref
			}
			for i := range loops {
				if !reflect.DeepEqual(byMode[0][i], byMode[1][i]) {
					t.Fatalf("loop %d (%s): range-scan result differs from naive-scan\nrange: %+v\nnaive: %+v",
						i, loops[i].Name, byMode[0][i], byMode[1][i])
				}
			}
		})
	}
}

// TestOptimalFrontierWorkersDeterministic pins the frontier-level
// parallelism: one loop searched with cfg.Workers 1 and 8 yields
// byte-identical OptimalResults (schedule, node count, task count),
// including at a budget tight enough to truncate tasks.
func TestOptimalFrontierWorkersDeterministic(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	st := loopgen.DefaultStrata(60)
	loops, err := loopgen.GenerateStrata(m, st)
	if err != nil {
		t.Fatal(err)
	}
	factory := discreteFactory(e)
	for _, budget := range []int64{16384, 2048} {
		cfg := DefaultOptimalConfig()
		cfg.MaxNodes = budget
		ref := make([]OptimalResult, len(loops))
		for i, g := range loops {
			ref[i] = Optimal(g, m, factory, cfg)
		}
		cfg.Workers = 8
		for i, g := range loops {
			got := Optimal(g, m, factory, cfg)
			if !reflect.DeepEqual(got, ref[i]) {
				t.Fatalf("budget=%d loop %d (%s): Workers=8 differs from Workers=1\ngot: %+v\nref: %+v",
					budget, i, g.Name, got, ref[i])
			}
		}
	}
}

// TestOptimalFallbackMatchesIMS drives the budget to its floor: with
// one node the exact search can decide nothing, so every loop returns
// the IMS seed byte-identically — proven when the seed achieves MII,
// fallback otherwise — and exactly one of Proven/Fallback is set.
func TestOptimalFallbackMatchesIMS(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	st := loopgen.DefaultStrata(40)
	loops, err := loopgen.GenerateStrata(m, st)
	if err != nil {
		t.Fatal(err)
	}
	factory := discreteFactory(e)
	cfg := DefaultOptimalConfig()
	cfg.MaxNodes = 1
	fallbacks := 0
	for _, g := range loops {
		r := Optimal(g, m, factory, cfg)
		if r.Proven == r.Fallback {
			t.Fatalf("%s: want exactly one of Proven/Fallback: %+v", g.Name, r)
		}
		ims := Schedule(g, m, factory, cfg.IMS)
		if !reflect.DeepEqual(r.Result, ims) {
			t.Fatalf("%s: Result differs from IMS seed\nopt: %+v\nims: %+v", g.Name, r.Result, ims)
		}
		if r.Proven && !(r.II == r.MII || r.InfeasibleIIs == ims.II-r.MII) {
			t.Fatalf("%s: proven at budget 1 without a proof: %+v", g.Name, r)
		}
		if r.Fallback {
			fallbacks++
		}
	}
	if fallbacks == 0 {
		t.Error("corpus has no open-gap loop; the fallback path went unexercised")
	}
}

// oracleMinII exhaustively searches for the smallest feasible II in
// [lo, hi] by enumerating every (time, alternative) assignment over a
// bounded horizon. The horizon (n-1)*(II+maxDelay)+1 is complete: any
// feasible schedule normalizes into it by sliding every node above a
// larger gap down one II (residues — hence the MRT — are untouched, and
// cross-gap dependence slack only grows). Returns -1 when no II in
// range is feasible.
func oracleMinII(g *ddg.Graph, e *resmodel.Expanded, lo, hi int) int {
	n := len(g.Nodes)
	maxW := 0
	for _, ed := range g.Edges {
		if ed.Delay > maxW {
			maxW = ed.Delay
		}
	}
	times := make([]int, n)
	alts := make([]int, n)
	for ii := lo; ii <= hi; ii++ {
		mod := query.NewDiscrete(e, ii)
		horizon := (n-1)*(ii+maxW) + 1
		var rec func(v int) bool
		rec = func(v int) bool {
			if v == n {
				for _, ed := range g.Edges {
					if times[ed.To]-times[ed.From] < ed.Delay-ii*ed.Dist {
						return false
					}
				}
				return true
			}
			for tm := 0; tm < horizon; tm++ {
				for _, a := range e.AltGroup[g.Nodes[v].Op] {
					if !mod.Schedulable(a) || !mod.Check(a, tm) {
						continue
					}
					mod.Assign(a, tm, v)
					times[v] = tm
					alts[v] = a
					if rec(v + 1) {
						mod.Free(a, tm, v)
						return true
					}
					mod.Free(a, tm, v)
				}
			}
			return false
		}
		if n == 0 || rec(0) {
			return ii
		}
	}
	return -1
}

// TestOptimalMatchesBruteForce cross-checks the branch-and-bound —
// including its infeasibility proofs — against time-enumeration over
// random tiny loops on two machines with alternatives. Wherever the
// oracle finds a minimum feasible II within its window, the exact
// search must report exactly that II; where the oracle proves the
// window infeasible, the search must not claim an II inside it.
func TestOptimalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range []*resmodel.Machine{machines.Cydra5Subset(), machines.MIPS()} {
		e := m.Expand()
		factory := discreteFactory(e)
		cases := 0
		for cases < 25 {
			n := 1 + rng.Intn(3)
			g := &ddg.Graph{Name: "tiny", Nodes: make([]ddg.Node, n)}
			for v := range g.Nodes {
				g.Nodes[v].Op = rng.Intn(len(m.Ops))
			}
			for k := rng.Intn(5); k > 0; k-- {
				g.Edges = append(g.Edges, ddg.Edge{
					From:  rng.Intn(n),
					To:    rng.Intn(n),
					Delay: rng.Intn(5),
					Dist:  rng.Intn(3),
				})
			}
			if g.Validate() != nil {
				continue
			}
			cfg := DefaultOptimalConfig()
			cfg.MaxNodes = 1 << 22
			r := Optimal(g, m, factory, cfg)
			if r.MII > 12 {
				continue // keep the oracle's horizon cheap
			}
			cases++
			if !r.Proven {
				t.Fatalf("case %d: tiny loop not proven within budget: %+v", cases, r)
			}
			hi := r.MII + 8
			want := oracleMinII(g, e, r.MII, hi)
			if want >= 0 {
				if !r.OK || r.II != want {
					t.Errorf("case %d: optimal II = %d (ok=%v), oracle says %d\nnodes=%+v edges=%+v",
						cases, r.II, r.OK, want, g.Nodes, g.Edges)
				}
			} else if r.OK && r.II <= hi {
				t.Errorf("case %d: optimal claims II %d but oracle proves [%d,%d] infeasible\nnodes=%+v edges=%+v",
					cases, r.II, r.MII, hi, g.Nodes, g.Edges)
			}
			if r.OK {
				if err := VerifySchedule(g, e, r.Result); err != nil {
					t.Errorf("case %d: VerifySchedule: %v", cases, err)
				}
			}
		}
	}
}

// TestOptimalArenaSteadyAllocs pins the arena bargain for the exact
// scheduler: once warmed up on a loop shape, re-searching allocates a
// small constant per loop (witness install and result bookkeeping) —
// nothing proportional to the thousands of nodes expanded. The loop is
// the corpus's first with an IMS-over-MII gap, so the budgeted search
// actually runs (a seed-proven loop would expand zero nodes).
func TestOptimalArenaSteadyAllocs(t *testing.T) {
	m := machines.Cydra5()
	e := m.Expand()
	st := loopgen.DefaultStrata(200)
	loops, err := loopgen.GenerateStrata(m, st)
	if err != nil {
		t.Fatal(err)
	}
	var g *ddg.Graph
	for _, cand := range loops {
		r := Schedule(cand, m, discreteFactory(e), DefaultConfig())
		if r.OK && r.II > r.MII {
			g = cand
			break
		}
	}
	if g == nil {
		t.Fatal("corpus has no IMS-over-MII loop to search")
	}
	a := NewArena(discreteFactory(e))
	cfg := DefaultOptimalConfig()
	cfg.MaxNodes = 4096
	var res OptimalResult
	a.OptimalInto(&res, g, m, cfg)
	allocs := testing.AllocsPerRun(20, func() {
		a.OptimalInto(&res, g, m, cfg)
	})
	if res.Nodes < 1 {
		t.Fatalf("no nodes expanded: %+v", res)
	}
	if allocs > 16 {
		t.Errorf("steady-state Optimal allocates %.1f allocs/loop over %d nodes, want <= 16", allocs, res.Nodes)
	}
}
