package sched

import (
	"fmt"

	"repro/internal/automaton"
	"repro/internal/ddg"
	"repro/internal/query"
	"repro/internal/resmodel"
)

// Issuer abstracts a cycle-ordered scheduling backend: the list scheduler
// walks cycles monotonically, attempting to issue operations in the
// current cycle. Both the reservation-table query module and the
// finite-state automaton support this restricted model, which makes it
// the fair common ground for comparing them (the automaton cannot easily
// support the unrestricted model of the Iterative Modulo Scheduler).
type Issuer interface {
	// TryIssue attempts to place expanded op in the current cycle,
	// reserving its resources on success.
	TryIssue(op int) bool
	// Advance moves to the next cycle.
	Advance()
}

// ModuleIssuer adapts a linear contention query module to Issuer.
type ModuleIssuer struct {
	M      query.Module
	cycle  int
	nextID int
}

// TryIssue implements Issuer.
func (mi *ModuleIssuer) TryIssue(op int) bool {
	if !mi.M.Check(op, mi.cycle) {
		return false
	}
	mi.M.Assign(op, mi.cycle, mi.nextID)
	mi.nextID++
	return true
}

// Advance implements Issuer.
func (mi *ModuleIssuer) Advance() { mi.cycle++ }

// WalkerIssuer adapts a forward-automaton walker to Issuer.
type WalkerIssuer struct {
	W *automaton.Walker
}

// TryIssue implements Issuer.
func (wi *WalkerIssuer) TryIssue(op int) bool { return wi.W.Issue(op) }

// Advance implements Issuer.
func (wi *WalkerIssuer) Advance() { wi.W.Advance() }

// ListResult is an acyclic schedule.
type ListResult struct {
	Time     []int
	Alt      []int
	Makespan int // one past the last issue cycle plus the op's latency
	Cycles   int // cycles walked by the issuer
}

// listScratch holds the reusable buffers of the acyclic schedulers
// (ListSchedule and OperationDriven), the acyclic counterpart of
// schedScratch. The zero value is ready to use.
type listScratch struct {
	prio         []int
	preds, succs edgeCSR
	time         []int
	placed       []bool
	ready        []int
	order        []int
	inDeg        []int
}

// resetListResult is resetResult for acyclic schedules.
func resetListResult(res *ListResult, n int) {
	res.Time = intsZero(res.Time, n)
	res.Alt = intsZero(res.Alt, n)
	res.Makespan, res.Cycles = 0, 0
}

// sortByPrio sorts ready by (priority descending, node index ascending)
// — the total order the schedulers' previous sort.Slice comparators
// induced, so any correct sort yields the identical permutation. The
// insertion sort keeps arena-path scheduling allocation-free.
func sortByPrio(ready, prio []int) {
	for i := 1; i < len(ready); i++ {
		v := ready[i]
		j := i - 1
		for j >= 0 && (prio[v] > prio[ready[j]] || (prio[v] == prio[ready[j]] && v < ready[j])) {
			ready[j+1] = ready[j]
			j--
		}
		ready[j+1] = v
	}
}

// ListSchedule schedules an acyclic dependence graph (all edges must have
// Dist == 0) in cycle order: at each cycle, data-ready operations are
// tried in critical-path priority order against the issuer. It is the
// greedy list scheduler classically paired with automaton-based
// contention detection.
func ListSchedule(g *ddg.Graph, e *resmodel.Expanded, iss Issuer) (ListResult, error) {
	var lsc listScratch
	var res ListResult
	err := listScheduleInto(&res, g, e, iss, &lsc)
	return res, err
}

// listScheduleInto is ListSchedule over caller-owned result and scratch
// buffers — the arena path. Behaviour is identical to the fresh path,
// which merely passes transient buffers.
func listScheduleInto(res *ListResult, g *ddg.Graph, e *resmodel.Expanded, iss Issuer, lsc *listScratch) error {
	n := len(g.Nodes)
	resetListResult(res, n)
	for _, edge := range g.Edges {
		if edge.Dist != 0 {
			return fmt.Errorf("sched: ListSchedule requires an acyclic graph; edge %d->%d has dist %d",
				edge.From, edge.To, edge.Dist)
		}
	}
	if err := g.Validate(); err != nil {
		return err
	}
	// Critical-path priority (acyclic heights).
	lsc.succs.build(g, false)
	lsc.prio = intsZero(lsc.prio, n)
	heightsInto(lsc.prio, 1, &lsc.succs)
	prio := lsc.prio
	lsc.preds.build(g, true)
	preds := &lsc.preds

	lsc.time = intsZero(lsc.time, n)
	lsc.placed = boolsZero(lsc.placed, n)
	time, placed := lsc.time, lsc.placed
	for i := range time {
		time[i] = -1
	}
	remaining := n
	for cycle := 0; remaining > 0; cycle++ {
		// Safety valve: a correct issuer always makes progress eventually.
		if cycle > 100000 {
			return fmt.Errorf("sched: ListSchedule made no progress by cycle %d", cycle)
		}
		ready := lsc.ready[:0]
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			est := 0
			ok := true
			for _, edge := range preds.at(v) {
				if time[edge.From] < 0 {
					ok = false
					break
				}
				if t := time[edge.From] + edge.Delay; t > est {
					est = t
				}
			}
			if ok && est <= cycle {
				ready = append(ready, v)
			}
		}
		lsc.ready = ready[:0] // retain grown capacity
		sortByPrio(ready, prio)
		issued := false
		for _, v := range ready {
			for _, altOp := range e.AltGroup[g.Nodes[v].Op] {
				if iss.TryIssue(altOp) {
					time[v] = cycle
					res.Alt[v] = altOp
					placed[v] = true
					remaining--
					issued = true
					break
				}
			}
		}
		iss.Advance()
		res.Cycles = cycle + 1
		// Empty cycle on a range-capable module backend: nothing can
		// issue until either a blocked ready node's first contention-free
		// cycle or a dependence-pending node's earliest start, so jump
		// straight there. Every skipped cycle provably issues nothing
		// (the partial schedule is unchanged, so the ready set and every
		// contention answer in between are too), keeping the schedule —
		// and the final cycle count — byte-identical to the one-cycle-at-
		// a-time walk. Automaton backends advance cycle by cycle (their
		// per-cycle state transition cannot be skipped).
		if !issued && remaining > 0 {
			if mi, ok := iss.(*ModuleIssuer); ok {
				if rq, ok := mi.M.(query.RangeQuerier); ok {
					next := fastForwardTarget(g, e, preds, time, placed, rq, cycle)
					if next > cycle+1 {
						mi.cycle = next
						cycle = next - 1
					}
				}
			}
		}
	}
	copy(res.Time, time)
	for v := 0; v < n; v++ {
		if end := time[v] + e.Ops[res.Alt[v]].Latency; end > res.Makespan {
			res.Makespan = end
		}
	}
	return nil
}

// fastForwardTarget returns the earliest cycle after an empty cycle at
// which the list scheduler's state can change: the smallest earliest
// start among dependence-pending nodes whose predecessors are all
// placed, or the smallest first contention-free cycle among any ready
// node's alternatives. -1 means nothing can ever issue; the caller then
// advances normally and runs into the safety valve exactly as the naive
// walk would.
func fastForwardTarget(g *ddg.Graph, e *resmodel.Expanded, preds *edgeCSR,
	time []int, placed []bool, rq query.RangeQuerier, cycle int) int {
	next := -1
	for v := range g.Nodes {
		if placed[v] {
			continue
		}
		est, ok := 0, true
		for _, edge := range preds.at(v) {
			if time[edge.From] < 0 {
				ok = false
				break
			}
			if t := time[edge.From] + edge.Delay; t > est {
				est = t
			}
		}
		if !ok {
			continue
		}
		if est > cycle {
			if next < 0 || est < next {
				next = est
			}
			continue
		}
		// Ready but resource-blocked this cycle: the next cycle any of
		// its alternatives fits. The high bound mirrors the safety valve.
		for _, altOp := range e.AltGroup[g.Nodes[v].Op] {
			if t, found := rq.FirstFree(altOp, cycle+1, 100001); found && (next < 0 || t < next) {
				next = t
			}
		}
	}
	return next
}
