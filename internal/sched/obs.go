package sched

import (
	"repro/internal/obs"
)

// observeSchedule publishes one Schedule call's Iterative Modulo
// Scheduling statistics to the "sched" scope of the default registry:
// the budget actually spent (scheduling decisions across all II
// attempts), evictions split by cause, and backtracking per loop. It is
// a no-op while metrics are disabled; Schedule is called once per loop,
// so the registry lookups here are far off the query hot path.
func observeSchedule(r *Result) {
	if !obs.Enabled() {
		return
	}
	s := obs.Default().Scope("sched")
	s.Counter("loops").Inc()
	if !r.OK {
		s.Counter("failed").Inc()
	}
	s.Counter("attempts").Add(int64(r.Attempts))
	s.Counter("decisions").Add(int64(r.Decisions))
	s.Counter("reversed").Add(int64(r.Reversed))
	s.Counter("resource_evictions").Add(int64(r.ResourceEvictions))
	s.Counter("dep_evictions").Add(int64(r.DepEvictions))
	s.Counter("budget_exceeded").Add(int64(r.BudgetExceeded))

	s.Histogram("budget_spent_per_loop").Observe(int64(r.Decisions))
	s.Histogram("reversals_per_loop").Observe(int64(r.Reversed))
	s.Histogram("attempts_per_loop").Observe(int64(r.Attempts))
	checks := s.Histogram("checks_per_decision")
	for _, c := range r.ChecksPerDecision {
		checks.Observe(int64(c))
	}
	// The candidate-cycle window each time-slot search covered; widths
	// above 1 are the multi-cycle eliminations the word-parallel range
	// scan answers in a single pass over the packed words.
	widths := s.Histogram("scan.width")
	for _, w := range r.ScanWidths {
		widths.Observe(int64(w))
	}
}

// observeOptimal publishes one Optimal call's search statistics to the
// "sched.opt" scope: outcomes (proven / fallback / failed), search
// nodes, frontier tasks and IIs proven infeasible, plus per-loop
// distributions of the node spend and the proven II-over-MII gap. Every
// quantity is deterministic at any worker count, so differential tests
// can pin snapshot equality across batch worker counts.
func observeOptimal(r *OptimalResult) {
	if !obs.Enabled() {
		return
	}
	s := obs.Default().Scope("sched").Scope("opt")
	s.Counter("loops").Inc()
	if r.Proven {
		s.Counter("proven").Inc()
	}
	if r.Fallback {
		s.Counter("fallbacks").Inc()
	}
	if !r.OK {
		s.Counter("failed").Inc()
	}
	s.Counter("nodes").Add(r.Nodes)
	s.Counter("tasks").Add(int64(r.Tasks))
	s.Counter("infeasible_iis").Add(int64(r.InfeasibleIIs))
	s.Histogram("nodes_per_loop").Observe(r.Nodes)
	if r.Proven {
		s.Histogram("gap").Observe(int64(r.II - r.MII))
	}
}
