package sched

import (
	"math"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/resmodel"
)

// This file implements sched.Optimal: an exact branch-and-bound modulo
// scheduler in the implicit-enumeration family the combinatorial
// scheduling literature surveys (PAPERS.md), over the same contention
// query API the heuristic IMS uses.
//
// The run is seeded with one IMS pass. When the heuristic already
// achieves MII the loop is proven optimal with zero search nodes —
// the common case on the paper's corpus. Otherwise the exact search
// decides each II in [MII, II_ims) in turn: finding a schedule after
// proving every smaller II infeasible is a proof of optimality, and
// proving the whole interval infeasible promotes the IMS schedule
// itself to proven-optimal. Only a budget truncation leaves the gap
// open, in which case the seed schedule is returned as the fallback.
//
// Within one II the search branches on *residues*: each node's issue
// cycle decomposes as time = II*stage + residue with residue in
// [0, II). The residue together with the chosen alternative fixes the
// node's Modulo Reservation Table footprint, so resource feasibility is
// maintained incrementally on a query module (Check/Assign on descent,
// Free on backtrack). Dependence feasibility over the unassigned stages
// is decided exactly: with W the all-pairs longest dependence path
// (edge weight Delay - II*Dist), a residue assignment extends to a full
// schedule iff the derived stage constraints
//
//	stage(q) - stage(p) >= ceil((W[p][q] + r_p - r_q) / II)
//
// over the assigned nodes admit a solution, i.e. iff their longest-path
// closure D has no positive diagonal. Eliminating the *unassigned*
// nodes is exact because no congruence constrains them — their
// variables are projected through W. D is maintained incrementally (one
// O(k^2) pass per placement with an undo log), so the search backtracks
// in time proportional to what the placement changed. At a leaf,
// stage(q) = max(0, max_p D[p][q]) reconstructs the canonical earliest
// schedule.
//
// The branch order is deterministic: nodes statically ordered by
// height (descending, ties by lower index — the priority IMS pops),
// candidates per node by ascending residue, alternatives in group
// order, exactly the sequence a naive CheckWithAlt loop probes. The
// range-query scan (RangeQuerier.FirstFreeWithAlt) skips empty residues
// without changing that sequence, so schedules are byte-identical under
// Config.NaiveScan. The first node is pinned to residue 0: rotating a
// modulo schedule by one cycle is an MRT symmetry, so the restriction
// loses no solutions and also preserves infeasibility proofs.
//
// Parallelism reuses the exact-cover frontier machinery from
// internal/core: the search always expands serially to a fixed depth
// (optSpawnDepth — constant, unlike core's worker-adaptive depth, so
// the task list is identical at every worker count), collects the
// frontier prefixes as tasks, and runs each task as an independent
// deterministic DFS with a fixed node budget. A core.BoundedMin over
// the lowest solved task index lets workers skip tasks that can no
// longer supply the canonical witness; tasks at or below the final
// bound always run, so the result — schedule, node count, outcome — is
// byte-identical at any Workers setting. Parallel workers search on
// fresh factory modules (never the arena's cached ones), so arena
// query counters stay deterministic; only obs-registry query counters
// include speculative task work when Workers > 1.
const (
	// DefaultOptimalNodes is the default per-loop search-node budget,
	// spent across all II attempts. On the paper's 200-loop corpus the
	// proven-optimal rate is flat from 2^14 through 2^18 nodes (the
	// open-gap loops are hard at any budget), so the default sits at a
	// modest 2^16.
	DefaultOptimalNodes = 1 << 16

	// optSpawnDepth is the frontier depth of the task decomposition.
	// It is a constant — not core's worker-adaptive spawnDepth —
	// because the task list must be identical at every worker count
	// for results to be worker-count-invariant.
	optSpawnDepth = 2

	// optMinTaskNodes floors the per-task node budget so late tasks of
	// a mostly-spent loop still make progress; the bounded overshoot
	// (tasks * floor) is deterministic.
	optMinTaskNodes = 256

	// optNegInf marks "no path" in the W and D matrices; quarter-range
	// so guarded additions cannot wrap.
	optNegInf = math.MinInt64 / 4
)

// OptimalConfig controls the exact scheduler.
type OptimalConfig struct {
	// MaxNodes is the per-loop search-node budget across all II
	// attempts (<= 0 selects DefaultOptimalNodes). The budget is
	// deliberately the only resource limit — a wall-clock budget would
	// make outcomes timing-dependent.
	MaxNodes int64
	// MaxII caps the initiation-interval search; 0 derives the same
	// safe cap IMS uses.
	MaxII int
	// Workers fans the frontier tasks of each II attempt over a worker
	// pool (<= 1 runs them sequentially on the caller's module).
	// Results are byte-identical at every setting.
	Workers int
	// NaiveScan disables the range-query candidate scan, probing one
	// cycle at a time; schedules and search statistics are
	// byte-identical either way (only query-module counters differ).
	NaiveScan bool
	// IMS configures the heuristic seed pass, whose schedule doubles as
	// the fallback when MaxNodes is exhausted with the optimality gap
	// still open. Its NaiveScan is overridden to match this config's.
	IMS Config
}

// DefaultOptimalConfig returns the default exact-search configuration.
func DefaultOptimalConfig() OptimalConfig {
	return OptimalConfig{MaxNodes: DefaultOptimalNodes, Workers: 1, IMS: DefaultConfig()}
}

// OptimalResult is the outcome of an exact scheduling run. Exactly one
// of Proven and Fallback is set.
type OptimalResult struct {
	// Result holds the schedule and MII fields. When the exact search
	// supplied the schedule, Attempts counts its II attempts; when the
	// IMS seed supplied it (proven via infeasibility of every lower II,
	// or unproven fallback), every Result field describes the IMS run.
	Result
	// Proven reports that II is optimal: every feasible II below it was
	// ruled out, either by the exact search or because II == MII.
	Proven bool
	// Fallback reports that the node budget ran out (or the II cap was
	// hit) with the gap still open, and Result is the unproven IMS
	// seed.
	Fallback bool
	// Nodes counts exact-search nodes expanded across all II attempts
	// (identical at every Workers setting; preserved on fallback).
	Nodes int64
	// InfeasibleIIs counts IIs proven infeasible before the outcome.
	InfeasibleIIs int
	// Tasks counts frontier tasks spawned across all II attempts.
	Tasks int
}

// Optimal exactly modulo-schedules the loop g for machine m, issuing
// all contention queries through modules built by factory (the same
// contract as Schedule). See OptimalConfig for budget and fallback
// semantics.
func Optimal(g *ddg.Graph, m *resmodel.Machine, factory ModuleFactory, cfg OptimalConfig) OptimalResult {
	var sc optScratch
	var res OptimalResult
	optimalInto(&res, g, m, factory, factory, cfg, &sc)
	observeOptimal(&res)
	return res
}

// OptimalBatch runs Optimal over every loop through per-worker arenas
// (one arena per pool worker, modules reused across the loops it
// steals). Results are index-ordered and byte-identical at every
// worker count.
func OptimalBatch(loops []*ddg.Graph, m *resmodel.Machine, factory ModuleFactory, cfg OptimalConfig, workers int) []OptimalResult {
	out := make([]OptimalResult, len(loops))
	parallel.ForEachState(len(loops), parallel.Workers(workers),
		func() *Arena { return NewArena(factory) },
		func(a *Arena, i int) { a.OptimalInto(&out[i], loops[i], m, cfg) })
	return out
}

// optScratch holds every reusable buffer one Optimal call needs; the
// zero value is ready. It embeds a schedScratch for the MII
// computation, the height-based order and the IMS fallback.
type optScratch struct {
	sched schedScratch
	run   optRun
	st    optState
	tasks []optTask
	sol   optSolution
	ims   Result
	bound core.BoundedMin
}

// optRun is the per-II description shared read-only by the expansion
// state and every frontier worker.
type optRun struct {
	g      *ddg.Graph
	n      int
	ii     int
	naive  bool
	order  []int   // position -> node, height desc, ties by index
	w      []int64 // n*n all-pairs longest dependence path at this II
	altOff []int32 // node -> [altOff[v], altOff[v+1]) into altBuf
	altBuf []int   // schedulable expanded alts, group order
	// perTask is the node budget of each frontier task this II.
	perTask int64
}

func (r *optRun) altsOf(v int) []int { return r.altBuf[r.altOff[v]:r.altOff[v+1]] }

// cWeight is the stage-constraint weight of assigned position p -> q:
// stage(q) - stage(p) >= ceil((W[vp][vq] + r_p - r_q) / II).
func (r *optRun) cWeight(vp, vq, rp, rq int) int64 {
	w := r.w[vp*r.n+vq]
	if w == optNegInf {
		return optNegInf
	}
	return ceilDiv(w+int64(rp)-int64(rq), int64(r.ii))
}

// ceilDiv is ceil(a/b) for b > 0 under Go's truncating division.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b > 0 {
		q++
	}
	return q
}

// optSolution is a captured schedule in node order.
type optSolution struct {
	time []int
	alt  []int
}

func (s *optSolution) copyFrom(src *optSolution) {
	s.time = append(s.time[:0], src.time...)
	s.alt = append(s.alt[:0], src.alt...)
}

// dUndo is one overwritten D entry; the log replays backwards on
// backtrack.
type dUndo struct {
	idx int32
	old int64
}

// optCand is one branching decision: place the position's node at this
// residue with this expanded alternative.
type optCand struct {
	cycle int
	alt   int
}

// optTask is one frontier prefix plus its (deterministic) outcome.
type optTask struct {
	path    [optSpawnDepth]optCand
	depth   int
	status  searchStatus
	nodes   int64
	skipped bool
}

type searchStatus int8

const (
	searchExhausted searchStatus = iota // subtree fully enumerated, no schedule
	searchFound                         // schedule captured
	searchTruncated                     // node budget hit
)

// optState is one search's mutable state: the module holding the
// partial MRT, the incremental stage closure D with its undo log, and
// the residue/alternative choices along the current path. Steady-state
// search allocates nothing (the undo log amortizes).
type optState struct {
	run    *optRun
	mod    query.Module
	rq     query.RangeQuerier
	d      []int64 // n*n closure over assigned positions
	resid  []int   // position -> residue on the current path
	altSel []int   // position -> expanded alt on the current path
	row    []int64 // addNode scratch: direct weights new -> earlier
	col    []int64 // addNode scratch: direct weights earlier -> new
	log    []dUndo
	nodes  int64
	limit  int64
	sol    optSolution
	found  bool
}

// attach points the state at a run and module, growing buffers as
// needed. Stale D entries need no clearing: every read is of a pair of
// positions on the active path, which addNode rewrote on this descent.
func (s *optState) attach(run *optRun, mod query.Module, naive bool) {
	s.run = run
	s.mod = mod
	s.rq = nil
	if !naive {
		s.rq, _ = mod.(query.RangeQuerier)
	}
	n := run.n
	s.d = growInt64(s.d, n*n)
	s.resid = intsZero(s.resid, n)
	s.altSel = intsZero(s.altSel, n)
	s.row = growInt64(s.row, n)
	s.col = growInt64(s.col, n)
	s.log = s.log[:0]
}

// addNode extends the stage-feasibility closure with position k placed
// at residue rk, relaxing earlier pairs through it and logging every
// overwrite. It reports infeasibility (a positive cycle) and the undo
// mark for backtracking. One relaxation pass is exact: D[k][k] <= 0
// means no longest path needs k twice.
func (s *optState) addNode(k, rk int) (mark int, ok bool) {
	mark = len(s.log)
	r := s.run
	n := r.n
	vk := r.order[k]
	d := s.d
	row, col := s.row, s.col
	for q := 0; q < k; q++ {
		vq := r.order[q]
		row[q] = r.cWeight(vk, vq, rk, s.resid[q])
		col[q] = r.cWeight(vq, vk, s.resid[q], rk)
	}
	// Close the new row and column through the already-closed prefix: a
	// longest path leaving k starts with a direct edge, one entering k
	// ends with one.
	for q := 0; q < k; q++ {
		best := row[q]
		for p := 0; p < k; p++ {
			if rp := row[p]; rp != optNegInf {
				if dpq := d[p*n+q]; dpq != optNegInf && rp+dpq > best {
					best = rp + dpq
				}
			}
		}
		d[k*n+q] = best
		best = col[q]
		for p := 0; p < k; p++ {
			if cp := col[p]; cp != optNegInf {
				if dqp := d[q*n+p]; dqp != optNegInf && dqp+cp > best {
					best = dqp + cp
				}
			}
		}
		d[q*n+k] = best
	}
	// The tightest cycle through k.
	dkk := r.cWeight(vk, vk, rk, rk)
	for q := 0; q < k; q++ {
		if a, b := d[k*n+q], d[q*n+k]; a != optNegInf && b != optNegInf && a+b > dkk {
			dkk = a + b
		}
	}
	d[k*n+k] = dkk
	if dkk > 0 {
		return mark, false
	}
	for p := 0; p < k; p++ {
		dpk := d[p*n+k]
		if dpk == optNegInf {
			continue
		}
		for q := 0; q < k; q++ {
			dkq := d[k*n+q]
			if dkq == optNegInf {
				continue
			}
			if v := dpk + dkq; v > d[p*n+q] {
				s.log = append(s.log, dUndo{int32(p*n + q), d[p*n+q]})
				d[p*n+q] = v
				if p == q && v > 0 {
					return mark, false
				}
			}
		}
	}
	return mark, true
}

// undoNode rolls the closure back to the given mark.
func (s *optState) undoNode(mark int) {
	for i := len(s.log) - 1; i >= mark; i-- {
		u := s.log[i]
		s.d[u.idx] = u.old
	}
	s.log = s.log[:mark]
}

// capture reconstructs the earliest schedule of a feasible leaf:
// stage(q) = max(0, max_p D[p][q]) satisfies every closed stage
// constraint (the closure makes the pairwise check sufficient).
func (s *optState) capture() {
	r := s.run
	n := r.n
	s.sol.time = intsZero(s.sol.time, n)
	s.sol.alt = intsZero(s.sol.alt, n)
	d := s.d
	for q := 0; q < n; q++ {
		var sq int64
		for p := 0; p < n; p++ {
			if v := d[p*n+q]; v != optNegInf && v > sq {
				sq = v
			}
		}
		v := r.order[q]
		s.sol.time[v] = int(sq)*r.ii + s.resid[q]
		s.sol.alt[v] = s.altSel[q]
	}
	s.found = true
}

// nextFreeCycle advances to the first cycle in [t, hi] where some
// schedulable alternative of position k's node is contention-free,
// returning the cycle and the index (within the node's filtered alt
// list) of the first free alternative. The range path and the naive
// path return identical answers (the RangeQuerier contract); only the
// query-module counters differ.
func (s *optState) nextFreeCycle(v, t, hi int) (cycle, firstAlt int, ok bool) {
	r := s.run
	alts := r.altsOf(v)
	if s.rq != nil {
		op, cyc, ok2 := s.rq.FirstFreeWithAlt(r.g.Nodes[v].Op, t, hi)
		if !ok2 {
			return 0, 0, false
		}
		for ai, a := range alts {
			if a == op {
				return cyc, ai, true
			}
		}
		panic("sched: range scan returned an unschedulable alternative")
	}
	for ; t <= hi; t++ {
		for ai, a := range alts {
			if s.mod.Check(a, t) {
				return t, ai, true
			}
		}
	}
	return 0, 0, false
}

// dfs enumerates placements of position k onward in canonical order.
// Every call is one counted search node.
func (s *optState) dfs(k int) searchStatus {
	s.nodes++
	if s.nodes > s.limit {
		return searchTruncated
	}
	r := s.run
	if k == r.n {
		s.capture()
		return searchFound
	}
	vk := r.order[k]
	alts := r.altsOf(vk)
	hi := r.ii - 1
	if k == 0 {
		hi = 0 // MRT rotation symmetry: pin the first residue
	}
	for t := 0; t <= hi; {
		cyc, first, ok := s.nextFreeCycle(vk, t, hi)
		if !ok {
			break
		}
		for ai := first; ai < len(alts); ai++ {
			a := alts[ai]
			if ai > first && !s.mod.Check(a, cyc) {
				continue
			}
			s.mod.Assign(a, cyc, vk)
			s.resid[k] = cyc
			s.altSel[k] = a
			mark, feasible := s.addNode(k, cyc)
			sub := searchExhausted
			if feasible {
				sub = s.dfs(k + 1)
			}
			s.undoNode(mark)
			s.mod.Free(a, cyc, vk)
			if sub != searchExhausted {
				return sub
			}
		}
		t = cyc + 1
	}
	return searchExhausted
}

// expand is dfs stopping at the frontier depth, emitting each surviving
// prefix as a task instead of recursing into it. Frontier nodes are not
// counted here — the task's dfs counts them — so the budget sees every
// node exactly once whichever path expands it.
func (s *optState) expand(k int, prefix *[optSpawnDepth]optCand, tasks *[]optTask) searchStatus {
	r := s.run
	if k == optSpawnDepth && k < r.n {
		t := optTask{depth: k}
		t.path = *prefix
		*tasks = append(*tasks, t)
		return searchExhausted
	}
	s.nodes++
	if s.nodes > s.limit {
		return searchTruncated
	}
	if k == r.n {
		s.capture()
		return searchFound
	}
	vk := r.order[k]
	alts := r.altsOf(vk)
	hi := r.ii - 1
	if k == 0 {
		hi = 0
	}
	for t := 0; t <= hi; {
		cyc, first, ok := s.nextFreeCycle(vk, t, hi)
		if !ok {
			break
		}
		for ai := first; ai < len(alts); ai++ {
			a := alts[ai]
			if ai > first && !s.mod.Check(a, cyc) {
				continue
			}
			s.mod.Assign(a, cyc, vk)
			s.resid[k] = cyc
			s.altSel[k] = a
			mark, feasible := s.addNode(k, cyc)
			sub := searchExhausted
			if feasible {
				prefix[k] = optCand{cycle: cyc, alt: a}
				sub = s.expand(k+1, prefix, tasks)
			}
			s.undoNode(mark)
			s.mod.Free(a, cyc, vk)
			if sub != searchExhausted {
				return sub
			}
		}
		t = cyc + 1
	}
	return searchExhausted
}

// runTask replays a frontier prefix (guaranteed feasible — expansion
// pruned it) and searches its subtree under the per-task budget.
func (s *optState) runTask(t *optTask) {
	r := s.run
	var marks [optSpawnDepth]int
	for j := 0; j < t.depth; j++ {
		c := t.path[j]
		v := r.order[j]
		s.mod.Assign(c.alt, c.cycle, v)
		s.resid[j] = c.cycle
		s.altSel[j] = c.alt
		mark, feasible := s.addNode(j, c.cycle)
		if !feasible {
			panic("sched: frontier prefix infeasible on replay")
		}
		marks[j] = mark
	}
	s.nodes = 0
	s.limit = r.perTask
	s.found = false
	t.status = s.dfs(t.depth)
	t.nodes = s.nodes
	for j := t.depth - 1; j >= 0; j-- {
		c := t.path[j]
		s.undoNode(marks[j])
		s.mod.Free(c.alt, c.cycle, r.order[j])
	}
}

// optSearch is one Optimal call's driver.
type optSearch struct {
	g        *ddg.Graph
	cfg      OptimalConfig
	moduleOf ModuleFactory // expansion/serial/fallback modules (arena-cached)
	factory  ModuleFactory // fresh modules for parallel frontier workers
	sc       *optScratch
}

// searchII decides one II: found (with the canonical witness in
// sc.sol), proven infeasible, or truncated by the budget. used is the
// deterministic node count charged against the loop budget.
func (o *optSearch) searchII(ii int, budget int64) (found, truncated bool, used int64, ntasks int) {
	sc := o.sc
	r := &sc.run
	g := o.g
	n := len(g.Nodes)
	r.g, r.n, r.ii = g, n, ii
	r.naive = o.cfg.NaiveScan

	mod := o.moduleOf(ii)
	ag, ok := mod.(query.AltGrouper)
	if !ok {
		panic("sched: module does not expose alternative groups")
	}
	// Filter each node's alternative group down to the alternatives
	// schedulable at this II; a node with none proves the II infeasible
	// outright (the guard IMS applies per placement).
	r.altOff = growInt32(r.altOff, n+1)
	r.altBuf = r.altBuf[:0]
	r.altOff[0] = 0
	for v := 0; v < n; v++ {
		for _, op := range ag.AltGroupOf(g.Nodes[v].Op) {
			if mod.Schedulable(op) {
				r.altBuf = append(r.altBuf, op)
			}
		}
		if int(r.altOff[v]) == len(r.altBuf) {
			return false, false, 0, 0
		}
		r.altOff[v+1] = int32(len(r.altBuf))
	}

	// Static branch order: height descending, ties by lower node index
	// — the same priority IMS pops.
	ss := &sc.sched
	ss.height = intsZero(ss.height, n)
	heightsInto(ss.height, ii, &ss.succs)
	r.order = intsZero(r.order, n)
	for i := range r.order {
		r.order[i] = i
	}
	orderByHeight(r.order, ss.height)

	r.w = growInt64(r.w, n*n)
	buildW(r.w, g, ii)

	st := &sc.st
	st.attach(r, mod, r.naive)
	st.nodes = 0
	st.limit = budget
	st.found = false
	var prefix [optSpawnDepth]optCand
	sc.tasks = sc.tasks[:0]
	switch st.expand(0, &prefix, &sc.tasks) {
	case searchFound:
		sc.sol.copyFrom(&st.sol)
		return true, false, st.nodes, 0
	case searchTruncated:
		return false, true, st.nodes, 0
	}
	used = st.nodes
	tasks := sc.tasks
	ntasks = len(tasks)
	if ntasks == 0 {
		return false, false, used, 0 // every prefix pruned: II infeasible
	}
	per := (budget - used) / int64(ntasks)
	if per < optMinTaskNodes {
		per = optMinTaskNodes
	}
	r.perTask = per

	bound := &sc.bound
	bound.Reset(int64(ntasks)) // past-the-end sentinel: no task solved yet

	if workers := parallel.Workers(o.cfg.Workers); o.cfg.Workers > 1 && workers > 1 && ntasks > 1 {
		parallel.ForEachState(ntasks, workers,
			func() *optState {
				w := new(optState)
				w.attach(r, o.factory(ii), r.naive)
				return w
			},
			func(w *optState, i int) {
				if bound.Prunes(int64(i)) {
					tasks[i].skipped = true
					return
				}
				w.runTask(&tasks[i])
				if tasks[i].status == searchFound {
					bound.TryImprove(int64(i), func() { sc.sol.copyFrom(&w.sol) })
				}
			})
	} else {
		for i := range tasks {
			if bound.Prunes(int64(i)) {
				tasks[i].skipped = true
				continue
			}
			st.runTask(&tasks[i])
			if tasks[i].status == searchFound {
				bound.TryImprove(int64(i), func() { sc.sol.copyFrom(&st.sol) })
			}
		}
	}

	// Classify. Tasks at or below the lowest solved index can never be
	// skipped (the bound cannot drop below it until that task itself
	// solves), so the charged node count is worker-count-invariant.
	if star := bound.Bound(); star < int64(ntasks) {
		for i := int64(0); i <= star; i++ {
			used += tasks[i].nodes
		}
		return true, false, used, ntasks
	}
	for i := range tasks {
		used += tasks[i].nodes
		if tasks[i].status == searchTruncated {
			truncated = true
		}
	}
	return false, truncated, used, ntasks
}

// optimalInto is the one exact-scheduling code path: Optimal runs it
// with a fresh scratch, an Arena with its per-worker one. moduleOf
// supplies the module for each II attempt (and the IMS fallback);
// factory builds the fresh modules parallel frontier workers search on.
func optimalInto(res *OptimalResult, g *ddg.Graph, m *resmodel.Machine, moduleOf, factory ModuleFactory, cfg OptimalConfig, sc *optScratch) {
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = DefaultOptimalNodes
	}
	cfg.IMS.NaiveScan = cfg.NaiveScan
	n := len(g.Nodes)
	resetResult(&res.Result, n)
	res.Proven, res.Fallback = false, false
	res.Nodes, res.InfeasibleIIs, res.Tasks = 0, 0, 0
	ss := &sc.sched
	// Seed with the IMS heuristic on the same modules and scan mode: its
	// schedule is the fallback, and when it achieves MII (or the search
	// below proves every smaller II infeasible) it is itself the proven
	// optimum. scheduleInto computes the MII fields as a side effect.
	scheduleInto(&sc.ims, g, m, moduleOf, cfg.IMS, ss)
	res.MII, res.ResMII, res.RecMII = sc.ims.MII, sc.ims.ResMII, sc.ims.RecMII
	if sc.ims.OK && sc.ims.II == sc.ims.MII {
		copyResultInto(&res.Result, &sc.ims)
		res.Proven = true
		return
	}
	// hi is the last II the exact search must decide: one below the
	// seed's II when the seed succeeded, the full cap otherwise.
	hi := cfg.MaxII
	if hi <= 0 {
		hi = res.MII + totalDelay(g) + n + 8
	}
	if sc.ims.OK && sc.ims.II-1 < hi {
		hi = sc.ims.II - 1
	}
	ss.succs.build(g, false)
	o := &optSearch{g: g, cfg: cfg, moduleOf: moduleOf, factory: factory, sc: sc}
	for ii := res.MII; ii <= hi; ii++ {
		res.Attempts++
		found, truncated, used, ntasks := o.searchII(ii, cfg.MaxNodes-res.Nodes)
		res.Nodes += used
		res.Tasks += ntasks
		if found {
			res.OK, res.II, res.Proven = true, ii, true
			copy(res.Time, sc.sol.time)
			copy(res.Alt, sc.sol.alt)
			return
		}
		if truncated || res.Nodes >= cfg.MaxNodes {
			// The gap is open: deterministic fallback to the seed.
			// Result now describes the IMS run; the exact search's
			// accounting survives in Nodes/InfeasibleIIs/Tasks.
			copyResultInto(&res.Result, &sc.ims)
			res.Fallback = true
			return
		}
		res.InfeasibleIIs++
	}
	// Every II below the seed's proven infeasible: the seed is optimal.
	// (Without a successful seed — or with cfg.MaxII cutting the search
	// short of it — nothing is proven and the failed seed is returned.)
	copyResultInto(&res.Result, &sc.ims)
	if sc.ims.OK && hi == sc.ims.II-1 {
		res.Proven = true
	} else {
		res.Fallback = true
	}
}

// copyResultInto copies src into dst, reusing dst's slice capacity.
func copyResultInto(dst, src *Result) {
	t, a := dst.Time[:0], dst.Alt[:0]
	ad, cd, sw := dst.AttemptDecisions[:0], dst.ChecksPerDecision[:0], dst.ScanWidths[:0]
	*dst = *src
	dst.Time = append(t, src.Time...)
	dst.Alt = append(a, src.Alt...)
	dst.AttemptDecisions = append(ad, src.AttemptDecisions...)
	dst.ChecksPerDecision = append(cd, src.ChecksPerDecision...)
	dst.ScanWidths = append(sw, src.ScanWidths...)
}

// orderByHeight stably sorts order (initially ascending indices) by
// descending height; stability keeps ties in index order. Insertion
// sort: allocation-free and n is small.
func orderByHeight(order, height []int) {
	for i := 1; i < len(order); i++ {
		v := order[i]
		h := height[v]
		j := i - 1
		for j >= 0 && h > height[order[j]] {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = v
	}
}

// buildW fills w with the all-pairs longest dependence path at this II
// (edge weight Delay - II*Dist, parallel edges folded by max), the
// Floyd-Warshall over guarded additions ddg uses for feasibility.
func buildW(w []int64, g *ddg.Graph, ii int) {
	n := len(g.Nodes)
	w = w[:n*n]
	for i := range w {
		w[i] = optNegInf
	}
	for _, e := range g.Edges {
		wt := int64(e.Delay) - int64(ii)*int64(e.Dist)
		if wt > w[e.From*n+e.To] {
			w[e.From*n+e.To] = wt
		}
	}
	for k := 0; k < n; k++ {
		kn := k * n
		for i := 0; i < n; i++ {
			ik := w[i*n+k]
			if ik == optNegInf {
				continue
			}
			row := w[i*n : i*n+n]
			for j := 0; j < n; j++ {
				if kj := w[kn+j]; kj != optNegInf && ik+kj > row[j] {
					row[j] = ik + kj
				}
			}
		}
	}
}

func growInt64(b []int64, n int) []int64 {
	if cap(b) < n {
		return make([]int64, n)
	}
	return b[:n]
}

func growInt32(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}
