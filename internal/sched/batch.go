package sched

import (
	"repro/internal/ddg"
	"repro/internal/parallel"
	"repro/internal/resmodel"
)

// ScheduleBatch modulo-schedules every loop of a benchmark independently
// across a bounded worker pool of the given size (workers < 1 selects
// GOMAXPROCS, workers == 1 is the serial reference path). Loops are the
// trivially parallel unit of the paper's evaluation: each Schedule call
// builds its own query modules through the factory, so nothing mutable is
// shared between workers.
//
// factory(i) returns the ModuleFactory for loop i. The modules a
// ModuleFactory builds are mutable and must be private to that loop's
// Schedule call; the factory may capture shared state only if it is
// read-only (an *resmodel.Expanded is; a query.Module is not).
//
// Results are returned indexed by loop, so merging statistics in index
// order reproduces the serial iteration byte for byte.
func ScheduleBatch(loops []*ddg.Graph, m *resmodel.Machine, factory func(loop int) ModuleFactory, cfg Config, workers int) []Result {
	return parallel.Map(len(loops), parallel.Workers(workers), func(i int) Result {
		return Schedule(loops[i], m, factory(i), cfg)
	})
}
