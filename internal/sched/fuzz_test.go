package sched

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ddg"
	"repro/internal/query"
	"repro/internal/resmodel"
)

// The fuzz byte format encodes a small machine followed by a small
// dependence graph, both in the sparse regime the corpus occupies: up
// to 5 resources, 5 operations with at most 2 alternatives, 6 usages
// per alternative with cycles in [0, 6); up to 5 graph nodes and 8
// edges with delays in [0, 6) and distances in [0, 3). Layout:
//
//	[nRes-1] [nOps-1] then per op:
//	  [latency] [altSel] then per alternative:
//	    [nUses] then nUses × ([resource] [cycle])
//	[nNodes-1] then nNodes × [op]
//	[nEdges] then nEdges × ([from] [to] [delay] [dist])
//
// Every byte is reduced modulo its field's range; truncated input reads
// as zero, so all byte strings decode. Graphs rejected by ddg.Validate
// (zero-distance cycles) are skipped, not failures.
const (
	schedFuzzMaxRes   = 5
	schedFuzzMaxOps   = 5
	schedFuzzMaxUses  = 6
	schedFuzzMaxCyc   = 6
	schedFuzzMaxNodes = 5
	schedFuzzMaxEdges = 8
)

type schedFuzzReader struct {
	data []byte
	pos  int
}

func (r *schedFuzzReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func schedFuzzDecode(data []byte) (*resmodel.Machine, *ddg.Graph) {
	r := &schedFuzzReader{data: data}
	nRes := 1 + int(r.next())%schedFuzzMaxRes
	nOps := 1 + int(r.next())%schedFuzzMaxOps
	m := &resmodel.Machine{Name: "fuzz"}
	for i := 0; i < nRes; i++ {
		m.Resources = append(m.Resources, fmt.Sprintf("r%d", i))
	}
	for o := 0; o < nOps; o++ {
		op := resmodel.Operation{Name: fmt.Sprintf("op%d", o), Latency: int(r.next() % 8)}
		nAlts := 1
		if r.next()%4 == 0 {
			nAlts = 2
		}
		for a := 0; a < nAlts; a++ {
			var t resmodel.Table
			nUses := int(r.next()) % (schedFuzzMaxUses + 1)
			for u := 0; u < nUses; u++ {
				t.Uses = append(t.Uses, resmodel.Usage{
					Resource: int(r.next()) % nRes,
					Cycle:    int(r.next()) % schedFuzzMaxCyc,
				})
			}
			t.Normalize()
			op.Alts = append(op.Alts, t)
		}
		m.Ops = append(m.Ops, op)
	}
	if m.Validate() != nil {
		return nil, nil
	}
	n := 1 + int(r.next())%schedFuzzMaxNodes
	g := &ddg.Graph{Name: "fuzz", Nodes: make([]ddg.Node, n)}
	for v := 0; v < n; v++ {
		g.Nodes[v].Op = int(r.next()) % nOps
	}
	for k := int(r.next()) % (schedFuzzMaxEdges + 1); k > 0; k-- {
		g.Edges = append(g.Edges, ddg.Edge{
			From:  int(r.next()) % n,
			To:    int(r.next()) % n,
			Delay: int(r.next()) % 6,
			Dist:  int(r.next()) % 3,
		})
	}
	if g.Validate() != nil {
		return nil, nil
	}
	return m, g
}

// FuzzOptimalNeverInvalid fuzzes the exact scheduler's safety
// contract over random tiny machines and dependence graphs: it never
// panics, any schedule it returns revalidates on a fresh naive query
// module (VerifySchedule) with II >= MII, its outcome flags are
// consistent (exactly one of Proven/Fallback), the range-scan and
// naive-scan runs are byte-identical, and a proven II never exceeds
// what the IMS heuristic achieves.
func FuzzOptimalNeverInvalid(f *testing.F) {
	// A two-alternative machine with a shared writeback bus feeding a
	// three-node recurrence, a self-loop, a dense single-resource
	// machine, and degenerate truncated input.
	f.Add([]byte{2, 2, 1, 0, 2, 0, 0, 1, 1, 2, 0, 1, 1, 1, 2, 3, 0, 1, 2, 1, 2, 2, 0, 1, 1, 0, 3, 1})
	f.Add([]byte{0, 0, 3, 1, 2, 0, 0, 0, 2, 0, 1, 0, 0, 4, 2})
	f.Add([]byte{0, 1, 5, 1, 1, 0, 3, 1, 1, 0, 1, 0, 0, 2, 1})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, g := schedFuzzDecode(data)
		if m == nil {
			return
		}
		e := m.Expand()
		factory := func(ii int) query.Module { return query.NewDiscrete(e, ii) }
		cfg := DefaultOptimalConfig()
		cfg.MaxNodes = 512
		r := Optimal(g, m, factory, cfg)
		if r.Proven == r.Fallback {
			t.Fatalf("want exactly one of Proven/Fallback: %+v", r)
		}
		if r.OK {
			if r.II < r.MII {
				t.Fatalf("II %d below MII %d: %+v", r.II, r.MII, r)
			}
			if err := VerifySchedule(g, e, r.Result); err != nil {
				t.Fatalf("schedule fails revalidation: %v\nresult %+v\nmachine %+v\ngraph %+v", err, r, m, g)
			}
		}
		cfgN := cfg
		cfgN.NaiveScan = true
		if rn := Optimal(g, m, factory, cfgN); !reflect.DeepEqual(rn, r) {
			t.Fatalf("naive scan diverges\nrange: %+v\nnaive: %+v\nmachine %+v\ngraph %+v", r, rn, m, g)
		}
		ims := Schedule(g, m, factory, cfg.IMS)
		if r.Proven && ims.OK && r.II > ims.II {
			t.Fatalf("proven II %d worse than IMS II %d\nmachine %+v\ngraph %+v", r.II, ims.II, m, g)
		}
	})
}
