package sched

import (
	"testing"

	"repro/internal/automaton"
	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/loopgen"
	"repro/internal/machines"
	"repro/internal/query"
	"repro/internal/resmodel"
)

// verifyAcyclic checks an operation-driven schedule against dependences
// and the original description's resources.
func verifyAcyclic(t *testing.T, g *ddg.Graph, e *resmodel.Expanded, r ListResult) {
	t.Helper()
	for _, edge := range g.Edges {
		if r.Time[edge.To] < r.Time[edge.From]+edge.Delay {
			t.Fatalf("dependence %d->%d violated: %d vs %d+%d",
				edge.From, edge.To, r.Time[edge.To], r.Time[edge.From], edge.Delay)
		}
	}
	mod := query.NewDiscrete(e, 0)
	for v := range g.Nodes {
		if !mod.Check(r.Alt[v], r.Time[v]) {
			t.Fatalf("resource contention at node %d", v)
		}
		mod.Assign(r.Alt[v], r.Time[v], v)
	}
}

func TestOperationDrivenMIPS(t *testing.T) {
	m := machines.MIPS()
	e := m.Expand()
	dags, err := loopgen.GenerateDAGs(m, loopgen.DefaultDAG(m))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range dags[:25] {
		r, err := OperationDriven(g, e, query.NewDiscrete(e, 0))
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		verifyAcyclic(t, g, e, r)
	}
}

// TestOperationDrivenInsertsBackwards: the workload genuinely exercises
// arbitrary insertion order (some op is placed at a cycle earlier than a
// previously placed op), which is what distinguishes the unrestricted
// model from cycle-ordered scheduling.
func TestOperationDrivenInsertsBackwards(t *testing.T) {
	m := machines.MIPS()
	e := m.Expand()
	// Long critical chain plus an independent late-priority op: the chain
	// is scheduled first (cycles 0, 35, ...), then the independent op
	// inserts back at cycle ~0.
	g := &ddg.Graph{Name: "back", Nodes: []ddg.Node{
		{Name: "d1", Op: m.OpIndex("div")},
		{Name: "d2", Op: m.OpIndex("div")},
		{Name: "solo", Op: m.OpIndex("fadd.s")},
	}}
	g.Edges = []ddg.Edge{{From: 0, To: 1, Delay: 33}}
	r, err := OperationDriven(g, e, query.NewDiscrete(e, 0))
	if err != nil {
		t.Fatal(err)
	}
	verifyAcyclic(t, g, e, r)
	if r.Time[2] >= r.Time[1] {
		t.Errorf("independent op not inserted backwards: times %v", r.Time)
	}
}

// TestOperationDrivenPairVsTables: the automaton pair module and the
// reservation-table modules drive the operation-driven scheduler to
// identical schedules — both answer every query identically — on the
// machines whose automata fit.
func TestOperationDrivenPairVsTables(t *testing.T) {
	for _, name := range []string{"example", "mips"} {
		m := machines.ByName(name)
		e := m.Expand()
		red := core.Reduce(e, core.Objective{Kind: core.ResUses})
		if err := red.Verify(); err != nil {
			t.Fatal(err)
		}
		pair, err := automaton.NewPairModule(red.Reduced, automaton.DefaultLimit())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dags, err := loopgen.GenerateDAGs(m, loopgen.DefaultDAG(m))
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range dags[:12] {
			rt, err := OperationDriven(g, e, query.NewDiscrete(e, 0))
			if err != nil {
				t.Fatal(err)
			}
			pair.Reset()
			rp, err := OperationDriven(g, e, pair)
			if err != nil {
				t.Fatal(err)
			}
			for v := range rt.Time {
				if rt.Time[v] != rp.Time[v] {
					t.Fatalf("%s/%s: node %d placed at %d (tables) vs %d (pair)",
						name, g.Name, v, rt.Time[v], rp.Time[v])
				}
			}
			verifyAcyclic(t, g, red.Reduced, rp)
		}
	}
}

func TestOperationDrivenRejectsLoops(t *testing.T) {
	m := machines.MIPS()
	e := m.Expand()
	g := &ddg.Graph{Name: "loop", Nodes: []ddg.Node{{Op: 0}}}
	g.Edges = []ddg.Edge{{From: 0, To: 0, Delay: 1, Dist: 1}}
	if _, err := OperationDriven(g, e, query.NewDiscrete(e, 0)); err == nil {
		t.Fatal("loop-carried edge accepted")
	}
}
