package sched

import (
	"repro/internal/ddg"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/resmodel"
)

// Arena owns every reusable piece of scheduler state for one worker:
// the contention query modules (one per initiation interval seen,
// Reset between loops instead of rebuilt), the scheduler's scratch
// vectors, and the MII computation's buffers. Scheduling a corpus
// through an arena produces byte-identical schedules and query
// counters to fresh per-loop Schedule calls — only the allocation
// behaviour differs: after a warmup pass over the largest loop shape,
// an arena schedules at zero allocations per loop (pinned by
// TestArenaSteadyStateZeroAlloc).
//
// An arena must not be shared between goroutines; batch drivers keep
// one arena per worker (ScheduleBatchArena, ScheduleStream).
type Arena struct {
	factory  ModuleFactory
	moduleOf ModuleFactory // method value over module, bound once
	modules  map[int]query.Module
	total    query.Counters
	sc       schedScratch
	osc      optScratch
	lsc      listScratch
	mi       ModuleIssuer
	met      *arenaObs
}

// NewArena returns an arena whose modules come from factory (exactly
// the factory a fresh Schedule call would use).
func NewArena(factory ModuleFactory) *Arena {
	a := &Arena{factory: factory, modules: make(map[int]query.Module), met: newArenaObs()}
	a.moduleOf = a.module
	return a
}

// module returns the cached module for ii, building it on first use.
// A cached module's counters are folded into the arena total before
// the Reset wipes them, so Counters() is monotone across loops and
// equals the sum a fresh-module run would have produced.
func (a *Arena) module(ii int) query.Module {
	if mod, ok := a.modules[ii]; ok {
		a.total.AddFrom(mod.Counters())
		mod.Reset()
		a.met.onReuse()
		return mod
	}
	mod := a.factory(ii)
	a.modules[ii] = mod
	a.met.onBuild()
	return mod
}

// Counters returns the arena's cumulative query counters: everything
// folded at reuse time plus the live counters of the cached modules.
// All counter fields are sums, so the map's iteration order is
// irrelevant. Callers wanting per-loop attribution difference two
// snapshots (Counters is monotone).
func (a *Arena) Counters() query.Counters {
	c := a.total
	for _, mod := range a.modules {
		c.AddFrom(mod.Counters())
	}
	return c
}

// ScheduleInto is Schedule writing into a caller-owned Result; cycling
// the same Result through keeps its slices' capacity, making the call
// allocation-free in steady state.
func (a *Arena) ScheduleInto(res *Result, g *ddg.Graph, m *resmodel.Machine, cfg Config) {
	scheduleInto(res, g, m, a.moduleOf, cfg, &a.sc)
	observeSchedule(res)
}

// Schedule is the package-level Schedule through this arena's reused
// modules and scratch.
func (a *Arena) Schedule(g *ddg.Graph, m *resmodel.Machine, cfg Config) Result {
	var res Result
	a.ScheduleInto(&res, g, m, cfg)
	return res
}

// OptimalInto is Optimal writing into a caller-owned OptimalResult,
// searching on the arena's cached modules and scratch. Parallel
// frontier workers (cfg.Workers > 1) search on fresh factory modules —
// never the cached ones — so the arena's query counters stay
// deterministic; outcomes are byte-identical either way.
func (a *Arena) OptimalInto(res *OptimalResult, g *ddg.Graph, m *resmodel.Machine, cfg OptimalConfig) {
	optimalInto(res, g, m, a.moduleOf, a.factory, cfg, &a.osc)
	observeOptimal(res)
}

// Optimal is the package-level Optimal through this arena's reused
// modules and scratch.
func (a *Arena) Optimal(g *ddg.Graph, m *resmodel.Machine, cfg OptimalConfig) OptimalResult {
	var res OptimalResult
	a.OptimalInto(&res, g, m, cfg)
	return res
}

// ListScheduleInto is ListSchedule on the arena's cached linear module
// (a ModuleIssuer over the ii=0 table).
func (a *Arena) ListScheduleInto(res *ListResult, g *ddg.Graph, e *resmodel.Expanded) error {
	a.mi = ModuleIssuer{M: a.module(0)}
	return listScheduleInto(res, g, e, &a.mi, &a.lsc)
}

// ListSchedule wraps ListScheduleInto with a fresh result.
func (a *Arena) ListSchedule(g *ddg.Graph, e *resmodel.Expanded) (ListResult, error) {
	var res ListResult
	err := a.ListScheduleInto(&res, g, e)
	return res, err
}

// OperationDrivenInto is OperationDriven on the arena's cached linear
// module.
func (a *Arena) OperationDrivenInto(res *ListResult, g *ddg.Graph, e *resmodel.Expanded) error {
	return operationDrivenInto(res, g, e, a.module(0), &a.lsc)
}

// OperationDriven wraps OperationDrivenInto with a fresh result.
func (a *Arena) OperationDriven(g *ddg.Graph, e *resmodel.Expanded) (ListResult, error) {
	var res ListResult
	err := a.OperationDrivenInto(&res, g, e)
	return res, err
}

// ScheduleBatchArena is ScheduleBatch through per-worker arenas: each
// worker builds its modules once and reuses them across every loop it
// steals. Results — schedules, statistics, and summed query counters —
// are identical to ScheduleBatch at any worker count; only the
// allocation profile differs.
func ScheduleBatchArena(loops []*ddg.Graph, m *resmodel.Machine, factory ModuleFactory, cfg Config, workers int) []Result {
	out := make([]Result, len(loops))
	parallel.ForEachState(len(loops), parallel.Workers(workers),
		func() *Arena { return NewArena(factory) },
		func(a *Arena, i int) { out[i] = a.Schedule(loops[i], m, cfg) })
	return out
}

// StreamStats aggregates a streamed scheduling run. Counters sums the
// query-module counters of every worker's arena.
type StreamStats struct {
	Loops     int
	Failed    int
	Decisions int64
	SumII     int64
	SumMII    int64
	Counters  query.Counters
}

// ScheduleStream schedules loops pulled from next until it reports
// ok=false, through per-worker arenas, retaining nothing per loop —
// the flat-memory path for 10^5..10^6-loop corpora (loopgen.Stream is
// the intended source). next is called only from this goroutine, so an
// unsynchronized generator is fine; chunk bounds how many loops are in
// flight at once per buffer (<= 0 selects a default). Failed loops are
// counted, not fatal.
//
// The chunks are double-buffered: while the workers schedule one chunk,
// this goroutine generates the next, so the pipeline's wall time
// approaches max(generation, scheduling) instead of their sum — the
// CPU profile of the 100k-loop throughput benchmark showed ~20% of the
// pipeline in corpus generation (math/rand reseeding per loop), all of
// it previously serialized between scheduling bursts. Results, stats
// and counters are identical to the strictly alternating pipeline: the
// same loops reach the same arena pool in the same chunk order, and at
// most one extra chunk is in flight.
func ScheduleStream(next func() (*ddg.Graph, bool), m *resmodel.Machine, factory ModuleFactory, cfg Config, workers, chunk int) StreamStats {
	workers = parallel.Workers(workers)
	if chunk <= 0 {
		chunk = 256
	}
	type streamWorker struct {
		a     *Arena
		res   Result
		stats StreamStats
	}
	// parallel.ForEachState builds fresh state per call, so the arenas
	// live in a free-list the per-chunk workers borrow from: any chunk's
	// worker goroutine continues whichever arena it draws.
	pool := make(chan *streamWorker, workers)
	for w := 0; w < workers; w++ {
		pool <- &streamWorker{a: NewArena(factory)}
	}
	fill := func(buf []*ddg.Graph) []*ddg.Graph {
		for len(buf) < chunk {
			g, ok := next()
			if !ok {
				break
			}
			buf = append(buf, g)
		}
		return buf
	}
	cur := fill(make([]*ddg.Graph, 0, chunk))
	spare := make([]*ddg.Graph, 0, chunk)
	for len(cur) > 0 {
		buf := cur
		done := make(chan struct{})
		go func() {
			parallel.ForEach(len(buf), workers, func(i int) {
				w := <-pool
				w.a.ScheduleInto(&w.res, buf[i], m, cfg)
				w.stats.Loops++
				if w.res.OK {
					w.stats.SumII += int64(w.res.II)
				} else {
					w.stats.Failed++
				}
				w.stats.SumMII += int64(w.res.MII)
				w.stats.Decisions += int64(w.res.Decisions)
				buf[i] = nil // the schedule is consumed; let the loop go
				pool <- w
			})
			close(done)
		}()
		spare = spare[:0]
		if len(cur) == chunk {
			// A full chunk may not be the last; overlap the next fill
			// with the in-flight scheduling. A short chunk means the
			// generator is exhausted — don't call next again after false.
			spare = fill(spare)
		}
		<-done
		cur, spare = spare, cur
	}
	var total StreamStats
	for w := 0; w < workers; w++ {
		wk := <-pool
		total.Loops += wk.stats.Loops
		total.Failed += wk.stats.Failed
		total.Decisions += wk.stats.Decisions
		total.SumII += wk.stats.SumII
		total.SumMII += wk.stats.SumMII
		c := wk.a.Counters()
		total.Counters.AddFrom(&c)
	}
	return total
}

// arenaObs publishes module cache behaviour under the "sched.arena"
// scope; nil (metrics disabled) makes every hook a no-op, keeping the
// arena's own overhead off the measured path.
type arenaObs struct {
	builds *obs.Counter
	reuses *obs.Counter
}

func newArenaObs() *arenaObs {
	if !obs.Enabled() {
		return nil
	}
	s := obs.Default().Scope("sched").Scope("arena")
	return &arenaObs{builds: s.Counter("module_builds"), reuses: s.Counter("module_reuses")}
}

func (m *arenaObs) onBuild() {
	if m == nil {
		return
	}
	m.builds.Inc()
}

func (m *arenaObs) onReuse() {
	if m == nil {
		return
	}
	m.reuses.Inc()
}
