package core

import (
	"fmt"
	"testing"
)

func TestParseObjective(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Objective
		ok   bool
	}{
		{"", Objective{Kind: ResUses}, true},
		{"res-uses", Objective{Kind: ResUses}, true},
		{"1-cycle-word", Objective{Kind: KCycleWord, K: 1}, true},
		{"64-cycle-word", Objective{Kind: KCycleWord, K: 64}, true},
		{fmt.Sprintf("%d-cycle-word", MaxObjectiveK), Objective{Kind: KCycleWord, K: MaxObjectiveK}, true},
		{fmt.Sprintf("%d-cycle-word", MaxObjectiveK+1), Objective{}, false},
		{"99999999999-cycle-word", Objective{}, false},
		{"1073741824-cycle-word", Objective{}, false}, // the wire crasher shape: absurd word geometry
		{"0-cycle-word", Objective{}, false},
		{"-3-cycle-word", Objective{}, false},
		{"x-cycle-word", Objective{}, false},
		{"cycle-word", Objective{}, false},
		{"res-uses ", Objective{}, false},
		{"zero-cycle", Objective{}, false},
	} {
		got, err := ParseObjective(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseObjective(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseObjective(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

// FuzzParseObjective pins the shared objective grammar (wire format and
// mdreduce/pipesched flags): parsing never panics, anything accepted
// validates (in particular K stays within MaxObjectiveK), and the
// accepted form round-trips through String.
func FuzzParseObjective(f *testing.F) {
	f.Add("")
	f.Add("res-uses")
	f.Add("1-cycle-word")
	f.Add("64-cycle-word")
	f.Add("1024-cycle-word")
	f.Add("1073741824-cycle-word") // the wire crasher shape: absurd word geometry
	f.Add("99999999999999999999-cycle-word")
	f.Add("-3-cycle-word")
	f.Add("0-cycle-word")
	f.Add("x-cycle-word")
	f.Add("res-uses\n")
	f.Fuzz(func(t *testing.T, s string) {
		obj, err := ParseObjective(s)
		if err != nil {
			return
		}
		if err := obj.Validate(); err != nil {
			t.Fatalf("ParseObjective(%q) accepted an invalid objective %+v: %v", s, obj, err)
		}
		if obj.Kind == KCycleWord && (obj.K < 1 || obj.K > MaxObjectiveK) {
			t.Fatalf("ParseObjective(%q) accepted K=%d outside [1, %d]", s, obj.K, MaxObjectiveK)
		}
	})
}

func TestValidateBoundsK(t *testing.T) {
	if err := (Objective{Kind: KCycleWord, K: MaxObjectiveK}).Validate(); err != nil {
		t.Errorf("K=MaxObjectiveK rejected: %v", err)
	}
	if err := (Objective{Kind: KCycleWord, K: MaxObjectiveK + 1}).Validate(); err == nil {
		t.Error("K above MaxObjectiveK accepted")
	}
	if err := (Objective{Kind: KCycleWord, K: 1 << 40}).Validate(); err == nil {
		t.Error("absurd K accepted")
	}
}
