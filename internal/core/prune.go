package core

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/forbidden"
)

// Prune removes from the generating set every resource whose generated
// forbidden-latency set is covered by (is a subset of) that of a remaining
// resource. This eliminates submaximal resources as well as redundant
// maximal resources such as mirror images (first step of the selection
// heuristic, Section 5).
//
// Triple sets are dense bitsets over the matrix's forbidden-triple
// universe: dedup buckets by a word hash and confirms with an exact
// equality check, and dominance is a word-wise subset test. Pairs of an
// unsound resource generating latencies the machine allows fall outside
// the universe and are ignored, as in SelectCover.
func Prune(m *forbidden.Matrix, G []*Resource) []*Resource {
	ti := newTripleIndex(m)

	type entry struct {
		r   *Resource
		set *bitset.Dense
	}
	entries := make([]entry, 0, len(G))
	for _, r := range G {
		if r.dead || r.NumUses() == 0 {
			continue
		}
		set := bitset.NewDense(ti.Len())
		us := r.Uses()
		for _, a := range us {
			for _, b := range us {
				f := b.Cycle - a.Cycle
				if f < 0 {
					continue
				}
				if t := ti.index(a.Op, b.Op, f); t >= 0 {
					set.Add(int(t))
				}
			}
		}
		entries = append(entries, entry{r, set})
	}

	// Identical triple sets: keep a single representative with the fewest
	// usages (cheaper for the selection step), ties preferring the earlier
	// entry. Buckets by hash; equality confirmed exactly, so collisions
	// only cost a comparison.
	byHash := map[uint64][]int{} // hash -> current representative entry indices
	keep := make([]bool, len(entries))
	for i := range keep {
		keep[i] = true
	}
	for i, e := range entries {
		h := e.set.Hash()
		bucket := byHash[h]
		dup := false
		for bi, j := range bucket {
			if !e.set.Equal(entries[j].set) {
				continue
			}
			dup = true
			if e.r.NumUses() < entries[j].r.NumUses() {
				keep[j] = false
				bucket[bi] = i
			} else {
				keep[i] = false
			}
			break
		}
		if !dup {
			byHash[h] = append(bucket, i)
		}
	}
	dedup := entries[:0]
	for i, e := range entries {
		if keep[i] {
			dedup = append(dedup, e)
		}
	}
	entries = dedup

	// Sort by triple-set size descending so any strict superset precedes
	// its subsets; then drop every entry dominated by a kept one.
	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].set.Len() > entries[j].set.Len()
	})
	var kept []entry
	for _, e := range entries {
		dominated := false
		for _, k := range kept {
			if k.set.Len() > e.set.Len() && e.set.SubsetOf(k.set) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, e)
		}
	}
	out := make([]*Resource, len(kept))
	for i, e := range kept {
		out[i] = e.r
	}
	return out
}
