package core

import "repro/internal/resmodel"

// AvgUsesPerOp returns the average number of resource usages per operation
// over the given reservation tables — the paper's "average resource usages /
// operation" metric, with every operation class weighted equally.
func AvgUsesPerOp(tables []resmodel.Table) float64 {
	if len(tables) == 0 {
		return 0
	}
	total := 0
	for _, t := range tables {
		total += len(t.Uses)
	}
	return float64(total) / float64(len(tables))
}

// WordUses returns the number of non-empty groups of k consecutive cycles
// in the reservation table when the cycle axis is shifted by align — the
// number of memory words a bitvector-representation check must test for a
// query at a cycle congruent to align (mod k).
func WordUses(t resmodel.Table, k, align int) int {
	if k < 1 {
		panic("core: WordUses requires k >= 1")
	}
	words := map[int]bool{}
	for _, u := range t.Uses {
		words[(u.Cycle+align)/k] = true
	}
	return len(words)
}

// AvgWordUsesPerOp returns the paper's "average word usages / operation":
// the number of non-empty k-cycle groups in each reservation table,
// averaged over all operation classes and over all k possible alignments
// between the reserved and reservation tables.
func AvgWordUsesPerOp(tables []resmodel.Table, k int) float64 {
	if len(tables) == 0 {
		return 0
	}
	total := 0
	for _, t := range tables {
		for a := 0; a < k; a++ {
			total += WordUses(t, k, a)
		}
	}
	return float64(total) / float64(len(tables)*k)
}

// OriginalClassTables extracts the reservation tables of the class
// representatives from an expanded machine, for like-for-like statistics
// against a Result's ClassTables.
func OriginalClassTables(e *resmodel.Expanded, classes [][]int, rep []int) []resmodel.Table {
	out := make([]resmodel.Table, len(rep))
	for i, r := range rep {
		out[i] = e.Ops[r].Table.Clone()
	}
	return out
}
