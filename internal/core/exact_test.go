package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/forbidden"
	"repro/internal/resmodel"
)

// buildFromSelection constructs an expanded machine from a selection over
// the class matrix, for independent verification of a cover.
func buildFromSelection(cm *forbidden.Matrix, sel []Selected, names []string) *resmodel.Expanded {
	e := &resmodel.Expanded{Name: "cover"}
	tables := make([]resmodel.Table, cm.NumOps)
	for si, s := range sel {
		e.Resources = append(e.Resources, string(rune('a'+si%26))+string(rune('0'+si/26)))
		for _, u := range s.Uses {
			tables[u.Op].Uses = append(tables[u.Op].Uses, resmodel.Usage{Resource: si, Cycle: u.Cycle})
		}
	}
	for ci := range tables {
		tables[ci].Normalize()
		name := "c"
		if ci < len(names) {
			name = names[ci]
		}
		e.Ops = append(e.Ops, resmodel.ExpandedOp{Name: name, Orig: ci, Table: tables[ci]})
		e.AltGroup = append(e.AltGroup, []int{ci})
	}
	return e
}

func TestExactCoverExampleOptimal(t *testing.T) {
	ex := figure1()
	m := forbidden.Compute(ex)
	cls := m.ComputeClasses()
	cm := m.Collapse(cls)
	pruned := Prune(cm, GeneratingSet(cm, nil))

	res := ExactCover(cm, pruned, 0)
	if !res.Optimal {
		t.Fatalf("search did not complete (%d nodes)", res.Nodes)
	}
	// Figure 1's reduction (5 usages) is optimal for the example machine:
	// resource {B@0, A@1} is forced, and F[B][B] = {1,2,3} needs three
	// usages in one resource.
	if res.Usages != 5 {
		t.Fatalf("optimal usages = %d, want 5", res.Usages)
	}
	greedy := SelectCover(cm, pruned, Objective{Kind: ResUses})
	if totalUsages(greedy) != res.Usages {
		t.Errorf("greedy = %d usages, optimal = %d: greedy should be optimal here",
			totalUsages(greedy), res.Usages)
	}
	// The optimal cover must itself be exact.
	built := buildFromSelection(cm, res.Selected, nil)
	if !forbidden.Compute(built).Equal(cm) {
		t.Fatalf("optimal cover does not preserve the forbidden matrix")
	}
}

// Property: the exact cover never uses more usages than the greedy
// heuristic, and always preserves the forbidden matrix.
func TestQuickExactCoverBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := resmodel.DefaultRandomConfig()
		cfg.MaxOps = 3
		cfg.MaxSpan = 5
		cfg.MaxUsesPerOp = 3
		e := resmodel.Random(rng, cfg).Expand()
		m := forbidden.Compute(e)
		cls := m.ComputeClasses()
		cm := m.Collapse(cls)
		pruned := Prune(cm, GeneratingSet(cm, nil))

		greedy := SelectCover(cm, pruned, Objective{Kind: ResUses})
		res := ExactCover(cm, pruned, 200000)
		if res.Usages > totalUsages(greedy) {
			return false // exact worse than its own initial bound
		}
		built := buildFromSelection(cm, res.Selected, nil)
		return forbidden.Compute(built).Equal(cm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestGreedyGap measures the heuristic's gap to optimal over a corpus of
// random machines — the justification for the paper's "fast and effective
// heuristic".
func TestGreedyGap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := resmodel.DefaultRandomConfig()
	cfg.MaxOps = 3
	cfg.MaxSpan = 5
	cfg.MaxUsesPerOp = 3
	totalGreedy, totalOpt, solved := 0, 0, 0
	for i := 0; i < 60; i++ {
		e := resmodel.Random(rng, cfg).Expand()
		m := forbidden.Compute(e)
		cls := m.ComputeClasses()
		cm := m.Collapse(cls)
		pruned := Prune(cm, GeneratingSet(cm, nil))
		greedy := totalUsages(SelectCover(cm, pruned, Objective{Kind: ResUses}))
		res := ExactCover(cm, pruned, 300000)
		if !res.Optimal {
			continue
		}
		solved++
		totalGreedy += greedy
		totalOpt += res.Usages
	}
	if solved < 40 {
		t.Fatalf("only %d/60 instances solved to optimality", solved)
	}
	if totalOpt == 0 {
		return
	}
	gap := float64(totalGreedy-totalOpt) / float64(totalOpt)
	t.Logf("greedy gap to optimal over %d instances: %.1f%% (%d vs %d usages)",
		solved, 100*gap, totalGreedy, totalOpt)
	if gap > 0.25 {
		t.Errorf("greedy heuristic is %.0f%% above optimal, want <= 25%%", 100*gap)
	}
}
