package core

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/resmodel"
)

// Fingerprint returns the FNV-1a content hash of the canonicalized
// expanded machine description: operation count, resource count, and for
// every operation its latency, original-operation index, alternative
// index, and reservation-table usages sorted by (resource, cycle), plus
// the alternative-group structure. Names are deliberately excluded — two
// descriptions that generate the same forbidden-latency matrix inputs
// hash equally regardless of labeling — so the hash keys reductions by
// scheduling-relevant content only.
func Fingerprint(e *resmodel.Expanded) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wi := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	wi(len(e.Resources))
	wi(len(e.Ops))
	us := make([]resmodel.Usage, 0, 16)
	for _, o := range e.Ops {
		wi(o.Latency)
		wi(o.Orig)
		wi(o.Alt)
		us = append(us[:0], o.Table.Uses...)
		sort.Slice(us, func(i, j int) bool {
			if us[i].Resource != us[j].Resource {
				return us[i].Resource < us[j].Resource
			}
			return us[i].Cycle < us[j].Cycle
		})
		wi(len(us))
		for _, u := range us {
			wi(u.Resource)
			wi(u.Cycle)
		}
	}
	wi(len(e.AltGroup))
	for _, g := range e.AltGroup {
		wi(len(g))
		for _, op := range g {
			wi(op)
		}
	}
	return h.Sum64()
}

// cacheKey identifies one reduction: the content hash of the input
// description plus the full objective (kind and k-cycle-word parameter).
// The word size of the eventual bitvector module is not part of the key
// because it does not influence the reduction, only how the reduced
// description is packed.
type cacheKey struct {
	fp   uint64
	kind ObjectiveKind
	k    int
}

// cacheEntry memoizes one reduction. The sync.Once serializes concurrent
// first requests for the same key (classic singleflight), so a machine is
// reduced at most once per entry lifetime even when tables race for it.
// The entry carries its key so eviction can unlink it from the index.
type cacheEntry struct {
	key  cacheKey
	once sync.Once
	res  *Result
}

// Cache is a content-keyed, capacity-bounded LRU memo of completed
// reductions. Reducing a machine is orders of magnitude more expensive
// than hashing it, and cmd/paper re-reduces the same machines for every
// table and figure; the cache makes each (machine, objective) reduction
// a once-per-residency cost. Because Result.Verify is itself memoized, a
// cache hit also skips verification re-computation — the verification
// outcome is part of the cached entry.
//
// When a capacity is set, inserting a new entry beyond it evicts the
// least-recently-used entry; a later request for an evicted key is a
// miss that recomputes the reduction (content hashing guarantees the
// recomputed Result is equivalent). Eviction never invalidates a Result
// already handed to a caller — holders keep their pointer; only the
// index forgets it. Long-running processes (cmd/mdserve) therefore hold
// at most capacity resident reductions instead of growing without bound.
//
// Cached Results are shared: callers must treat them (including Reduced,
// ReducedClass and ClassTables) as read-only, which every consumer in
// this repository already does.
type Cache struct {
	mu        sync.Mutex
	capacity  int // <= 0: unbounded
	entries   map[cacheKey]*list.Element
	lru       *list.List // front = most recently used; values are *cacheEntry
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// DefaultCacheCapacity bounds the process-wide DefaultCache. It is far
// above the working set of any cmd/paper run (a handful of machines ×
// objectives) while capping resident reductions in serving processes
// that see unbounded distinct machines.
const DefaultCacheCapacity = 256

// NewCache returns an empty, unbounded reduction cache.
func NewCache() *Cache { return NewCacheLRU(0) }

// NewCacheLRU returns an empty reduction cache holding at most capacity
// entries (capacity <= 0 means unbounded).
func NewCacheLRU(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		entries:  map[cacheKey]*list.Element{},
		lru:      list.New(),
	}
}

// DefaultCache is the process-wide reduction cache used by CachedReduce,
// bounded to DefaultCacheCapacity resident reductions.
var DefaultCache = NewCacheLRU(DefaultCacheCapacity)

// Reduce returns the cached reduction of e under obj, computing it with
// ReduceParallel on first request. Concurrent requests for the same key
// block on the single in-flight computation instead of duplicating it.
func (c *Cache) Reduce(e *resmodel.Expanded, obj Objective, workers int) *Result {
	res, _ := c.ReduceTracked(e, obj, workers)
	return res
}

// ReduceTracked is Reduce, additionally reporting whether the result was
// served from cache (true) or computed by this call's singleflight
// (false). Exactly one request per entry lifetime reports a miss.
func (c *Cache) ReduceTracked(e *resmodel.Expanded, obj Objective, workers int) (*Result, bool) {
	key := cacheKey{fp: Fingerprint(e), kind: obj.Kind, k: obj.K}
	c.mu.Lock()
	var ent *cacheEntry
	if el := c.entries[key]; el != nil {
		c.lru.MoveToFront(el)
		ent = el.Value.(*cacheEntry)
	} else {
		ent = &cacheEntry{key: key}
		c.entries[key] = c.lru.PushFront(ent)
		c.evictOverflowLocked()
	}
	c.mu.Unlock()
	hit := true
	ent.once.Do(func() {
		hit = false
		ent.res = ReduceParallel(e, obj, workers)
	})
	// The ad-hoc atomics back Stats(); the same outcome is promoted onto
	// the default registry so -metrics profiles include cache behaviour.
	if hit {
		c.hits.Add(1)
		obs.Inc("core.cache.hits")
	} else {
		c.misses.Add(1)
		obs.Inc("core.cache.misses")
	}
	return ent.res, hit
}

// evictOverflowLocked drops least-recently-used entries until the cache
// respects its capacity. Must be called with c.mu held. Evicting an
// entry whose reduction is still in flight is safe: its waiters hold the
// entry pointer and complete normally; the index simply forgets the key.
func (c *Cache) evictOverflowLocked() {
	for c.capacity > 0 && c.lru.Len() > c.capacity {
		el := c.lru.Back()
		ent := c.lru.Remove(el).(*cacheEntry)
		delete(c.entries, ent.key)
		c.evictions.Add(1)
		obs.Inc("core.cache.evictions")
	}
}

// Capacity returns the configured capacity (<= 0 means unbounded).
func (c *Cache) Capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// SetCapacity changes the capacity, immediately evicting LRU entries if
// the cache is over the new bound. capacity <= 0 removes the bound.
func (c *Cache) SetCapacity(capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	c.evictOverflowLocked()
}

// Stats returns the hit and miss counts so far. Every Reduce call is
// exactly one hit or one miss, so hits+misses equals total calls; each
// miss corresponds to one entry insertion, so misses == Evictions()+Len()
// at any quiescent point.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Evictions returns the number of entries dropped by the LRU bound.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }

// Len returns the number of resident cached reductions.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// CachedReduce reduces through the process-wide DefaultCache with the
// serial reference pipeline.
func CachedReduce(e *resmodel.Expanded, obj Objective) *Result {
	return DefaultCache.Reduce(e, obj, 1)
}

// CachedReduceParallel reduces through the process-wide DefaultCache,
// fanning a cache miss's pipeline across the given worker count.
func CachedReduceParallel(e *resmodel.Expanded, obj Objective, workers int) *Result {
	return DefaultCache.Reduce(e, obj, workers)
}
