package core

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/resmodel"
)

// Fingerprint returns the FNV-1a content hash of the canonicalized
// expanded machine description: operation count, resource count, and for
// every operation its latency, original-operation index, alternative
// index, and reservation-table usages sorted by (resource, cycle), plus
// the alternative-group structure. Names are deliberately excluded — two
// descriptions that generate the same forbidden-latency matrix inputs
// hash equally regardless of labeling — so the hash keys reductions by
// scheduling-relevant content only.
func Fingerprint(e *resmodel.Expanded) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wi := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	wi(len(e.Resources))
	wi(len(e.Ops))
	us := make([]resmodel.Usage, 0, 16)
	for _, o := range e.Ops {
		wi(o.Latency)
		wi(o.Orig)
		wi(o.Alt)
		us = append(us[:0], o.Table.Uses...)
		sort.Slice(us, func(i, j int) bool {
			if us[i].Resource != us[j].Resource {
				return us[i].Resource < us[j].Resource
			}
			return us[i].Cycle < us[j].Cycle
		})
		wi(len(us))
		for _, u := range us {
			wi(u.Resource)
			wi(u.Cycle)
		}
	}
	wi(len(e.AltGroup))
	for _, g := range e.AltGroup {
		wi(len(g))
		for _, op := range g {
			wi(op)
		}
	}
	return h.Sum64()
}

// cacheKey identifies one reduction: the content hash of the input
// description plus the full objective (kind and k-cycle-word parameter).
// The word size of the eventual bitvector module is not part of the key
// because it does not influence the reduction, only how the reduced
// description is packed.
type cacheKey struct {
	fp   uint64
	kind ObjectiveKind
	k    int
}

// cacheEntry memoizes one reduction. The sync.Once serializes concurrent
// first requests for the same key (classic singleflight), so a machine is
// reduced exactly once per process even when tables race for it.
type cacheEntry struct {
	once sync.Once
	res  *Result
}

// Cache is a content-keyed memo of completed reductions. Reducing a
// machine is orders of magnitude more expensive than hashing it, and
// cmd/paper re-reduces the same machines for every table and figure;
// the cache makes each (machine, objective) reduction a once-per-process
// cost. Because Result.Verify is itself memoized, a cache hit also skips
// verification re-computation — the verification outcome is part of the
// cached entry.
//
// Cached Results are shared: callers must treat them (including Reduced,
// ReducedClass and ClassTables) as read-only, which every consumer in
// this repository already does.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	hits    atomic.Int64
	misses  atomic.Int64
}

// NewCache returns an empty reduction cache.
func NewCache() *Cache { return &Cache{entries: map[cacheKey]*cacheEntry{}} }

// DefaultCache is the process-wide reduction cache used by CachedReduce.
var DefaultCache = NewCache()

// Reduce returns the cached reduction of e under obj, computing it with
// ReduceParallel on first request. Concurrent requests for the same key
// block on the single in-flight computation instead of duplicating it.
func (c *Cache) Reduce(e *resmodel.Expanded, obj Objective, workers int) *Result {
	key := cacheKey{fp: Fingerprint(e), kind: obj.Kind, k: obj.K}
	c.mu.Lock()
	ent := c.entries[key]
	if ent == nil {
		ent = &cacheEntry{}
		c.entries[key] = ent
	}
	c.mu.Unlock()
	hit := true
	ent.once.Do(func() {
		hit = false
		ent.res = ReduceParallel(e, obj, workers)
	})
	// The ad-hoc atomics back Stats(); the same outcome is promoted onto
	// the default registry so -metrics profiles include cache behaviour.
	if hit {
		c.hits.Add(1)
		obs.Inc("core.cache.hits")
	} else {
		c.misses.Add(1)
		obs.Inc("core.cache.misses")
	}
	return ent.res
}

// Stats returns the hit and miss counts so far.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of cached reductions.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// CachedReduce reduces through the process-wide DefaultCache with the
// serial reference pipeline.
func CachedReduce(e *resmodel.Expanded, obj Objective) *Result {
	return DefaultCache.Reduce(e, obj, 1)
}

// CachedReduceParallel reduces through the process-wide DefaultCache,
// fanning a cache miss's pipeline across the given worker count.
func CachedReduceParallel(e *resmodel.Expanded, obj Objective, workers int) *Result {
	return DefaultCache.Reduce(e, obj, workers)
}
