package core

import (
	"fmt"

	"repro/internal/forbidden"
	"repro/internal/parallel"
)

// Rule identifies which rule of Algorithm 1 fired for a trace step.
type Rule int

const (
	// Rule1: the elementary pair is fully compatible with the resource, so
	// its usages are added to the resource.
	Rule1 Rule = 1
	// Rule2: the pair is partially compatible; a new resource is created
	// from the pair plus the compatible usages of the resource.
	Rule2 Rule = 2
	// Rule2Discard: the pair is incompatible with every usage of the
	// resource; the would-be new resource is the bare pair and is discarded.
	Rule2Discard Rule = -2
	// Rule3: no resource contains both usages of the pair, so the pair
	// itself becomes a new resource.
	Rule3 Rule = 3
	// Rule4: an operation whose only forbidden latency is the trivial
	// 0-self-contention gets a dedicated single-usage resource.
	Rule4 Rule = 4
)

func (r Rule) String() string {
	switch r {
	case Rule1:
		return "Rule 1 (fully compatible: add pair to resource)"
	case Rule2:
		return "Rule 2 (partially compatible: new resource)"
	case Rule2Discard:
		return "Rule 2 (incompatible: bare pair discarded)"
	case Rule3:
		return "Rule 3 (create resource from pair)"
	case Rule4:
		return "Rule 4 (single-usage resource)"
	}
	return fmt.Sprintf("Rule(%d)", int(r))
}

// TraceStep records one rule application while processing one elementary
// pair, for the Figure 3 rendering.
type TraceStep struct {
	Rule   Rule
	Before string // resource the rule was applied against ("" for Rules 3/4)
	After  string // resulting resource ("" when discarded)
}

// PairTrace records the processing of one elementary pair.
type PairTrace struct {
	Pair  ElemPair
	Steps []TraceStep
	// Set renders the full generating set after this pair was processed.
	Set []string
}

// Trace captures the step-by-step execution of the generating-set
// construction (Figure 3 of the paper). Pass nil to GeneratingSet to skip
// trace collection.
type Trace struct {
	OpName func(int) string
	Pairs  []PairTrace
}

// GeneratingSet executes Algorithm 1 of the paper: it builds a generating
// set of maximal resources for the forbidden-latency matrix m. The result
// forbids only latencies forbidden by m (soundness) and contains every
// maximal resource of the target machine, possibly alongside some
// submaximal ones (Theorem 1); Prune removes the latter.
func GeneratingSet(m *forbidden.Matrix, tr *Trace) []*Resource {
	return GeneratingSetParallel(m, tr, 1)
}

// scanThreshold is the live-resource count below which the
// pair-compatibility scan is not worth fanning out (goroutine overhead
// exceeds the scan work on small generating sets).
const scanThreshold = 24

// GeneratingSetParallel is GeneratingSet with the pair-compatibility
// scans fanned across a worker pool. For each elementary pair, testing
// the pair against one resource of the current set is read-only (it
// consults only that resource's usages and the forbidden-latency matrix),
// so the scans of all resources run concurrently; the rule applications,
// which mutate the set, stay serial and in the original deterministic
// order. The constructed set is identical at every worker count because
// resources in G[:snap] are never mutated before their own rule fires.
func GeneratingSetParallel(m *forbidden.Matrix, tr *Trace, workers int) []*Resource {
	workers = parallel.Workers(workers)
	opName := func(i int) string { return fmt.Sprintf("op%d", i) }
	if tr != nil && tr.OpName != nil {
		opName = tr.OpName
	}

	var G []*Resource

	// subsetOfRes reports whether every usage of a is in b: a linear merge
	// over the sorted usage slices.
	subsetOfRes := func(a, b *Resource) bool {
		if len(a.uses) > len(b.uses) {
			return false
		}
		j := 0
		for _, u := range a.uses {
			for j < len(b.uses) && b.uses[j] < u {
				j++
			}
			if j >= len(b.uses) || b.uses[j] != u {
				return false
			}
			j++
		}
		return true
	}

	// register inserts r into G, maintaining G as an antichain under
	// usage-set inclusion: r is discarded when a live superset already
	// exists (the superset serves as the growth seed in Theorem 1's
	// induction), and live subsets of r are tombstoned (they are dominated
	// — their generated latencies are a subset of r's, so the final
	// pruning would remove them anyway). This keeps the generating set
	// near the true number of maximal resources instead of accumulating
	// combinatorially many submaximal intermediates on dense machines.
	register := func(r *Resource) bool {
		for _, q := range G {
			if q.dead {
				continue
			}
			if subsetOfRes(r, q) {
				return false
			}
			if subsetOfRes(q, r) {
				q.dead = true
			}
		}
		G = append(G, r)
		return true
	}

	// scan is the outcome of testing one elementary pair against one
	// resource of the current set: whether every usage is compatible with
	// both pair usages, and the compatible subset otherwise.
	type scan struct {
		fully      bool
		compatible []uint32
	}
	var scans []scan

	for _, p := range elementaryPairs(m) {
		u0, u1 := p.usages()
		containsBoth := false
		var pt *PairTrace
		if tr != nil {
			pt = &PairTrace{Pair: p}
		}

		snap := len(G) // resources created for this pair are not reprocessed with it

		// Phase 1: compatibility scans. Read-only against the matrix and
		// each resource's usage set, so they fan out across workers.
		// Resources in G[:snap] are only ever mutated by their own Rule 1
		// application below, which consumes this scan first, so scanning
		// ahead of the serial rule applications sees exactly the usage
		// sets the serial algorithm would.
		if cap(scans) < snap {
			// Grow while keeping the old slots: their compatible buffers are
			// reused across pairs, so steady state allocates nothing here.
			grown := make([]scan, snap)
			copy(grown, scans[:cap(scans)])
			scans = grown
		}
		scans = scans[:snap]
		scanWorkers := 1
		if workers > 1 && snap >= scanThreshold {
			scanWorkers = workers
		}
		parallel.ForEach(snap, scanWorkers, func(i int) {
			q := G[i]
			if q.dead {
				scans[i] = scan{compatible: scans[i].compatible[:0]}
				return
			}
			compatible := scans[i].compatible[:0]
			fully := true
			for _, u := range q.uses {
				if compat(m, u, u0) && compat(m, u, u1) {
					compatible = append(compatible, u)
				} else {
					fully = false
				}
			}
			scans[i] = scan{fully: fully, compatible: compatible}
		})

		// Phase 2: rule applications, serial and in set order (they mutate
		// the set). Deadness is re-checked here: a resource tombstoned by
		// an earlier application is skipped exactly as in the serial walk.
		for i := 0; i < snap; i++ {
			q := G[i]
			if q.dead {
				continue
			}
			fully, compatible := scans[i].fully, scans[i].compatible
			switch {
			case fully:
				// Rule 1: add the pair's usages to q in place, then restore
				// the antichain (q may have converged onto or absorbed
				// another resource).
				before := ""
				if pt != nil {
					before = q.StringWith(opName)
				}
				q.add(u0)
				q.add(u1)
				for j, other := range G {
					if j == i || other.dead {
						continue
					}
					if subsetOfRes(q, other) {
						q.dead = true
						break
					}
					if subsetOfRes(other, q) {
						other.dead = true
					}
				}
				containsBoth = true
				if pt != nil {
					pt.Steps = append(pt.Steps, TraceStep{Rule1, before, q.StringWith(opName)})
				}
			default:
				// Rule 2: consider a new resource = pair + compatible usages
				// of q. If that resource is simply the pair itself with no
				// other usages, it is discarded (Rule 3 decides later).
				nr := newResource(append(compatible, u0, u1)...)
				if nr.NumUses() > 2 {
					added := register(nr)
					containsBoth = true // nr (or its live duplicate) contains both
					if pt != nil {
						after := ""
						if added {
							after = nr.StringWith(opName)
						}
						pt.Steps = append(pt.Steps, TraceStep{Rule2, q.StringWith(opName), after})
					}
				} else if pt != nil {
					pt.Steps = append(pt.Steps, TraceStep{Rule2Discard, q.StringWith(opName), ""})
				}
			}
		}

		if !containsBoth {
			// Rule 3: the pair itself becomes a new resource.
			nr := newResource(u0, u1)
			register(nr)
			if pt != nil {
				pt.Steps = append(pt.Steps, TraceStep{Rule3, "", nr.StringWith(opName)})
			}
		}

		if pt != nil {
			for _, r := range G {
				if !r.dead {
					pt.Set = append(pt.Set, r.StringWith(opName))
				}
			}
			tr.Pairs = append(tr.Pairs, *pt)
		}
	}

	// Rule 4: operations whose only forbidden latency is the trivial
	// 0-self-contention need a dedicated single-usage resource; every other
	// resource-using operation appears in some elementary pair, which
	// already forbids its 0-self-contention.
	for x := 0; x < m.NumOps; x++ {
		if m.SelfOnly(x) {
			nr := newResource(encodeU(x, 0))
			if register(nr) && tr != nil {
				tr.Pairs = append(tr.Pairs, PairTrace{
					Pair:  ElemPair{X: x, Y: x, F: 0},
					Steps: []TraceStep{{Rule4, "", nr.StringWith(opName)}},
				})
			}
		}
	}

	// Drop tombstoned duplicates.
	out := G[:0]
	for _, r := range G {
		if !r.dead {
			out = append(out, r)
		}
	}
	return out
}
