package core

import (
	"fmt"
	"sort"

	"repro/internal/forbidden"
)

// ObjectiveKind selects what the cover-selection heuristic minimizes.
type ObjectiveKind int

const (
	// ResUses minimizes the number of resource usages in the reduced
	// description — the right objective for the discrete reserved-table
	// representation, whose query cost is linear in usages.
	ResUses ObjectiveKind = iota
	// KCycleWord minimizes the number of non-empty groups of K consecutive
	// cycles ("words") in the reduced reservation tables, and secondarily
	// maximizes the usages within those words — the right objective for the
	// bitvector representation packing K cycle-bitvectors per memory word.
	KCycleWord
)

// Objective configures the selection heuristic.
type Objective struct {
	Kind ObjectiveKind
	// K is the number of cycle-bitvectors packed per memory word; used only
	// by KCycleWord.
	K int
}

func (o Objective) String() string {
	switch o.Kind {
	case ResUses:
		return "res-uses"
	case KCycleWord:
		return fmt.Sprintf("%d-cycle-word uses", o.K)
	}
	return "unknown-objective"
}

// Validate reports configuration errors.
func (o Objective) Validate() error {
	switch o.Kind {
	case ResUses:
		return nil
	case KCycleWord:
		if o.K < 1 {
			return fmt.Errorf("core: KCycleWord objective requires K >= 1, got %d", o.K)
		}
		if o.K > MaxObjectiveK {
			return fmt.Errorf("core: KCycleWord objective requires K <= %d, got %d", MaxObjectiveK, o.K)
		}
		return nil
	}
	return fmt.Errorf("core: unknown objective kind %d", o.Kind)
}

// Selected is one synthesized resource of the reduced machine description:
// the subset of a generating-set resource's usages chosen by the cover.
type Selected struct {
	Res  *Resource
	Uses []U
}

type candidate struct {
	res  int
	a, b uint32
}

// SelectCover implements Step 3 of the reduction: choose resources and
// usages from the (pruned) generating set so that every non-negative
// forbidden latency of the matrix is generated, minimizing the objective.
//
// The heuristic follows Section 5 of the paper: repeatedly take an
// uncovered forbidden latency with the shortest candidate usage-pair list;
// select the usage pair covering the most not-yet-covered latencies (ties:
// larger sum of newly covered latencies); under KCycleWord, first prefer
// pairs opening the fewest new words, and after each selection mark every
// other usage of selected resources that falls in an already-open word.
func SelectCover(m *forbidden.Matrix, G []*Resource, obj Objective) []Selected {
	if err := obj.Validate(); err != nil {
		panic(err)
	}
	span := m.Span

	// Dense universe of non-negative forbidden triples: triple t is the
	// dense index ti.index(x, y, f), and dense order equals tcode order, so
	// tie-breaks below sort exactly as the sparse codes they replaced.
	ti := newTripleIndex(m)
	numT := ti.Len()

	// Candidate usage pairs per dense triple.
	cands := make([][]candidate, numT)
	for ri, r := range G {
		us := r.Uses()
		for _, ua := range us {
			for _, ub := range us {
				f := ub.Cycle - ua.Cycle
				if f < 0 {
					continue
				}
				t := ti.index(ua.Op, ub.Op, f)
				if t < 0 {
					// A pair of an unsound resource generating a latency the
					// machine allows; it can never cover anything.
					continue
				}
				cands[t] = append(cands[t], candidate{ri, encodeU(ua.Op, ua.Cycle), encodeU(ub.Op, ub.Cycle)})
			}
		}
	}

	// Process uncovered triples in order of ascending candidate-list length.
	order := make([]int32, numT)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		li, lj := len(cands[order[i]]), len(cands[order[j]])
		if li != lj {
			return li < lj
		}
		return order[i] < order[j]
	})

	covered := make([]bool, numT)
	selected := make([]map[uint32]bool, len(G))
	for i := range selected {
		selected[i] = map[uint32]bool{}
	}
	wordOpen := map[int64]bool{} // (op, word) cells already non-empty
	wordKey := func(op, cycle int) int64 {
		return int64(op)*int64(span+1) + int64(cycle/obj.K)
	}

	// newUses lists the candidate's usages not yet selected in its resource.
	newUses := func(c candidate) []uint32 {
		var n []uint32
		if !selected[c.res][c.a] {
			n = append(n, c.a)
		}
		if c.b != c.a && !selected[c.res][c.b] {
			n = append(n, c.b)
		}
		return n
	}

	// newlyCovered returns the uncovered triples that selecting the new
	// usages in resource c.res would generate.
	newlyCovered := func(res int, news []uint32) map[int32]struct{} {
		out := map[int32]struct{}{}
		base := make([]uint32, 0, len(selected[res])+len(news))
		for u := range selected[res] {
			base = append(base, u)
		}
		base = append(base, news...)
		addPair := func(a, b uint32) {
			ua, ub := decodeU(a), decodeU(b)
			if f := ub.Cycle - ua.Cycle; f >= 0 {
				if t := ti.index(ua.Op, ub.Op, f); t >= 0 && !covered[t] {
					out[t] = struct{}{}
				}
			}
		}
		for _, n := range news {
			for _, u := range base {
				addPair(n, u)
				addPair(u, n)
			}
		}
		return out
	}

	wordCost := func(news []uint32) int {
		cost := 0
		seen := map[int64]bool{}
		for _, n := range news {
			u := decodeU(n)
			k := wordKey(u.Op, u.Cycle)
			if !wordOpen[k] && !seen[k] {
				seen[k] = true
				cost++
			}
		}
		return cost
	}

	sumF := func(ts map[int32]struct{}) int64 {
		var s int64
		for t := range ts {
			s += ti.code(t) % int64(span) // the f component
		}
		return s
	}

	// freeMark selects, in every resource that already has selections,
	// every unselected usage lying in an open word (KCycleWord only).
	freeMark := func() {
		if obj.Kind != KCycleWord {
			return
		}
		for ri, sel := range selected {
			if len(sel) == 0 {
				continue
			}
			var free []uint32
			for _, u := range G[ri].uses {
				if sel[u] {
					continue
				}
				du := decodeU(u)
				if wordOpen[wordKey(du.Op, du.Cycle)] {
					free = append(free, u)
				}
			}
			if len(free) == 0 {
				continue
			}
			// G[ri].uses is sorted, so free already is.
			nc := newlyCovered(ri, free)
			for _, u := range free {
				sel[u] = true
			}
			for t := range nc {
				covered[t] = true
			}
		}
	}

	for _, t := range order {
		if covered[t] {
			continue
		}
		cs := cands[t]
		if len(cs) == 0 {
			panic(fmt.Sprintf("core: forbidden latency triple %d has no candidate usage pair; generating set incomplete", ti.code(t)))
		}
		// Choose the best candidate under the objective.
		bestIdx := -1
		var bestNews []uint32
		var bestCov map[int32]struct{}
		var bestWordCost int
		var bestSum int64
		for i, c := range cs {
			news := newUses(c)
			cov := newlyCovered(c.res, news)
			wc := 0
			if obj.Kind == KCycleWord {
				wc = wordCost(news)
			}
			s := sumF(cov)
			better := false
			switch {
			case bestIdx < 0:
				better = true
			case obj.Kind == KCycleWord && wc != bestWordCost:
				better = wc < bestWordCost
			case len(cov) != len(bestCov):
				better = len(cov) > len(bestCov)
			case s != bestSum:
				better = s > bestSum
			case len(news) != len(bestNews):
				better = len(news) < len(bestNews)
			}
			if better {
				bestIdx, bestNews, bestCov, bestWordCost, bestSum = i, news, cov, wc, s
			}
		}
		c := cs[bestIdx]
		for _, u := range bestNews {
			selected[c.res][u] = true
			if obj.Kind == KCycleWord {
				du := decodeU(u)
				wordOpen[wordKey(du.Op, du.Cycle)] = true
			}
		}
		for tc := range bestCov {
			covered[tc] = true
		}
		freeMark()
	}

	// Assemble the reduced resources in deterministic order.
	var out []Selected
	for ri, sel := range selected {
		if len(sel) == 0 {
			continue
		}
		us := make([]U, 0, len(sel))
		for u := range sel {
			us = append(us, decodeU(u))
		}
		sort.Slice(us, func(i, j int) bool {
			if us[i].Cycle != us[j].Cycle {
				return us[i].Cycle < us[j].Cycle
			}
			return us[i].Op < us[j].Op
		})
		out = append(out, Selected{Res: G[ri], Uses: us})
	}
	return out
}
