package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/machines"
	"repro/internal/resmodel"
)

// distinctRandomMachines generates n random machines with pairwise
// distinct content fingerprints (Random can occasionally repeat small
// machines; the LRU accounting below needs a known working-set size).
func distinctRandomMachines(t *testing.T, n int) []*resmodel.Expanded {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	seen := map[uint64]bool{}
	out := make([]*resmodel.Expanded, 0, n)
	for tries := 0; len(out) < n; tries++ {
		if tries > 1000*n {
			t.Fatalf("could not generate %d distinct machines", n)
		}
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		fp := Fingerprint(e)
		if seen[fp] {
			continue
		}
		seen[fp] = true
		out = append(out, e)
	}
	return out
}

// reductionShape is the content summary the race test re-verifies after
// evicted entries are recomputed: identical input hash must yield an
// identical reduced description.
type reductionShape struct {
	reducedFP               uint64
	numResources, numUsages int
}

func shapeOf(r *Result) reductionShape {
	return reductionShape{
		reducedFP:    Fingerprint(r.Reduced),
		numResources: r.NumResources(),
		numUsages:    r.NumUsages(),
	}
}

// TestCacheLRURaceAndReconcile hammers a small-capacity cache from many
// goroutines with a working set larger than the capacity, under -race in
// tier-1. It pins the bounded-cache contract:
//
//   - hits + misses == total Reduce calls (every call is exactly one),
//   - misses == evictions + resident entries (every miss inserts one
//     entry; entries only leave via eviction),
//   - evictions > 0 (the working set exceeds capacity),
//   - every returned Result — including recomputations of evicted
//     entries — has content identical to the serial reference
//     (content-hash re-verify of the reduced description).
func TestCacheLRURaceAndReconcile(t *testing.T) {
	const (
		capacity = 4
		distinct = 12
		callers  = 8
		rounds   = 150
	)
	es := distinctRandomMachines(t, distinct)
	obj := Objective{Kind: ResUses}

	// Serial reference shapes, computed outside any cache.
	want := make([]reductionShape, distinct)
	for i, e := range es {
		want[i] = shapeOf(Reduce(e, obj))
	}

	c := NewCacheLRU(capacity)
	var wg sync.WaitGroup
	errs := make(chan string, callers)
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for r := 0; r < rounds; r++ {
				i := rng.Intn(distinct)
				res := c.Reduce(es[i], obj, 1)
				if got := shapeOf(res); got != want[i] {
					errs <- "cached/recomputed reduction differs from serial reference"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	hits, misses := c.Stats()
	total := int64(callers * rounds)
	if hits+misses != total {
		t.Errorf("hits (%d) + misses (%d) = %d, want total calls %d", hits, misses, hits+misses, total)
	}
	if ev := c.Evictions(); ev == 0 {
		t.Error("working set of 12 over capacity 4 produced no evictions")
	} else if misses != ev+int64(c.Len()) {
		t.Errorf("misses (%d) != evictions (%d) + resident (%d)", misses, ev, c.Len())
	}
	if c.Len() > capacity {
		t.Errorf("resident entries %d exceed capacity %d", c.Len(), capacity)
	}
}

// TestCacheCapacityBound is the regression test for the formerly
// unbounded process-wide cache: resident entries never exceed the
// configured capacity, LRU order decides who is evicted, and
// SetCapacity shrinks immediately.
func TestCacheCapacityBound(t *testing.T) {
	const capacity = 3
	es := distinctRandomMachines(t, 8)
	obj := Objective{Kind: ResUses}

	c := NewCacheLRU(capacity)
	for i, e := range es {
		c.Reduce(e, obj, 1)
		if c.Len() > capacity {
			t.Fatalf("after %d inserts: %d resident entries exceed capacity %d", i+1, c.Len(), capacity)
		}
	}
	if ev := c.Evictions(); ev != int64(len(es)-capacity) {
		t.Errorf("evictions = %d, want %d", ev, len(es)-capacity)
	}

	// The three most recent (5, 6, 7) are resident: touching 5 then
	// inserting an evicted machine must evict 6 (the LRU), not 5.
	if _, hit := c.ReduceTracked(es[5], obj, 1); !hit {
		t.Error("most-recent entry was evicted; want resident hit")
	}
	if _, hit := c.ReduceTracked(es[0], obj, 1); hit {
		t.Error("long-evicted entry reported as hit")
	}
	if _, hit := c.ReduceTracked(es[5], obj, 1); !hit {
		t.Error("recently-touched entry evicted before LRU sibling")
	}
	if _, hit := c.ReduceTracked(es[6], obj, 1); hit {
		t.Error("LRU entry survived eviction ahead of a recently-touched one")
	}

	c.SetCapacity(1)
	if c.Len() > 1 {
		t.Errorf("SetCapacity(1) left %d resident entries", c.Len())
	}
	c.SetCapacity(0)
	for _, e := range es {
		c.Reduce(e, obj, 1)
	}
	if c.Len() != len(es) {
		t.Errorf("unbounded cache holds %d entries after %d distinct machines", c.Len(), len(es))
	}
}

// TestDefaultCacheIsBounded pins the satellite fix itself: the
// process-wide cache used by CachedReduce is no longer unbounded.
func TestDefaultCacheIsBounded(t *testing.T) {
	if got := DefaultCache.Capacity(); got != DefaultCacheCapacity {
		t.Fatalf("DefaultCache capacity = %d, want %d", got, DefaultCacheCapacity)
	}
	if DefaultCacheCapacity <= 0 {
		t.Fatal("DefaultCacheCapacity must be a positive bound")
	}
}

// TestCacheEvictedRecomputeSharesNothing: a hit after eviction returns a
// fresh *Result (not the evicted pointer), yet identical content — the
// recompute path of a bounded serving process.
func TestCacheEvictedRecomputeSharesNothing(t *testing.T) {
	c := NewCacheLRU(1)
	e1 := machines.Cydra5Subset().Expand()
	e2 := machines.MIPS().Expand()
	obj := Objective{Kind: ResUses}

	first := c.Reduce(e1, obj, 1)
	c.Reduce(e2, obj, 1) // evicts e1
	second, hit := c.ReduceTracked(e1, obj, 1)
	if hit {
		t.Fatal("evicted entry served as hit")
	}
	if first == second {
		t.Fatal("recompute returned the evicted Result pointer")
	}
	if shapeOf(first) != shapeOf(second) {
		t.Fatal("recomputed reduction differs from the evicted one")
	}
	if !first.Matrix.Equal(second.Matrix) {
		t.Fatal("recomputed forbidden matrix differs from the evicted one")
	}
}
