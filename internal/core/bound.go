package core

import (
	"sync"
	"sync/atomic"
)

// BoundedMin is the shared state of a minimizing branch-and-bound search
// fanned across a worker pool: a lock-free bound that every search node
// reads to prune, and a mutex that serializes witness installation so
// only strict improvements publish. Two searches share this machinery:
// the exact-cover search (bound = usage count of the best cover found)
// and the optimal modulo scheduler's frontier (bound = lowest frontier
// task index that reached a schedule). The bound only tightens, so the
// final bound value is identical at every worker count; whether the
// *witness* is worker-count-invariant depends on the caller's install
// discipline (exact-cover accepts any optimal witness, the scheduler
// keys installs by task index to make the witness canonical).
type BoundedMin struct {
	bound        atomic.Int64
	improvements atomic.Int64
	mu           sync.Mutex
}

// Reset installs the initial bound (a greedy seed, or a past-the-end
// sentinel when no solution is known yet) and clears the improvement
// count.
func (b *BoundedMin) Reset(v int64) {
	b.bound.Store(v)
	b.improvements.Store(0)
}

// Bound returns the current bound.
func (b *BoundedMin) Bound() int64 { return b.bound.Load() }

// Prunes reports whether a node with admissible lower bound v cannot
// improve on the best solution found so far.
func (b *BoundedMin) Prunes(v int64) bool { return v >= b.bound.Load() }

// Improvements returns how many times the bound was lowered.
func (b *BoundedMin) Improvements() int64 { return b.improvements.Load() }

// TryImprove lowers the bound to v and runs install under the lock; it
// reports false (and does not run install) when another worker already
// reached v or better. install runs while the lock is held, so it must
// only record the witness.
func (b *BoundedMin) TryImprove(v int64, install func()) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if v >= b.bound.Load() {
		return false
	}
	b.bound.Store(v)
	b.improvements.Add(1)
	install()
	return true
}
