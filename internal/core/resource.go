// Package core implements the machine-description reduction of
// Eichenberger & Davidson (PLDI 1996) — the paper's primary contribution.
//
// Given the forbidden-latency matrix of a target machine (package
// forbidden), the reduction proceeds in two steps:
//
//   - Step 2 (GeneratingSet): build the generating set of maximal
//     resources by processing elementary usage pairs with Rules 1-4 of
//     Algorithm 1. A maximal resource is a synthesized resource that (a)
//     forbids only latencies forbidden in the target machine and (b) admits
//     no additional usage without forbidding a latency the target machine
//     does not forbid.
//
//   - Step 3 (Prune + SelectCover): prune dominated resources, then select
//     a subset of the remaining resources and their usages that covers
//     every forbidden latency, minimizing an objective chosen for the
//     scheduler's internal representation (res-uses for a discrete
//     reserved table, k-cycle-word uses for a packed bitvector table).
//
// The resulting reduced machine description generates exactly the same
// forbidden-latency matrix as the original and therefore answers every
// contention query identically; Verify checks this by reconstruction.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/forbidden"
)

// U is a resource usage within a synthesized resource: operation (class) Op
// uses the resource in cycle Cycle.
type U struct {
	Op    int
	Cycle int
}

const cycleBits = 15
const cycleMask = 1<<cycleBits - 1

func encodeU(op, cycle int) uint32 {
	if cycle < 0 || cycle > cycleMask {
		panic(fmt.Sprintf("core: usage cycle %d out of range", cycle))
	}
	return uint32(op)<<cycleBits | uint32(cycle)
}

func decodeU(e uint32) U {
	return U{Op: int(e >> cycleBits), Cycle: int(e & cycleMask)}
}

// Resource is a synthesized resource under construction: a set of mutually
// compatible usages, stored as a sorted slice of encoded usages. The slice
// representation keeps the generating-set inner loops (compatibility scans,
// subset checks, antichain maintenance) on linear cache-friendly merges
// with zero map operations — the maps this replaced dominated the
// reduction pipeline's profile. All resources built by the generating-set
// algorithm have their earliest usage in cycle 0 (the paper's canonical
// form).
type Resource struct {
	uses []uint32 // sorted ascending (encoded (op, cycle) order)
	dead bool     // tombstoned duplicate
}

func newResource(us ...uint32) *Resource {
	r := &Resource{uses: make([]uint32, 0, len(us))}
	for _, u := range us {
		r.add(u)
	}
	return r
}

func (r *Resource) has(u uint32) bool {
	i := sort.Search(len(r.uses), func(i int) bool { return r.uses[i] >= u })
	return i < len(r.uses) && r.uses[i] == u
}

// add inserts u in sorted position (no-op when present). Resources stay
// small (tens of usages), so the O(n) insertion loses to no map here.
func (r *Resource) add(u uint32) {
	i := sort.Search(len(r.uses), func(i int) bool { return r.uses[i] >= u })
	if i < len(r.uses) && r.uses[i] == u {
		return
	}
	r.uses = append(r.uses, 0)
	copy(r.uses[i+1:], r.uses[i:])
	r.uses[i] = u
}

// NumUses returns the number of usages in the resource.
func (r *Resource) NumUses() int { return len(r.uses) }

// Uses returns the usages sorted by (cycle, op).
func (r *Resource) Uses() []U {
	out := make([]U, 0, len(r.uses))
	for _, e := range r.uses {
		out = append(out, decodeU(e))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycle != out[j].Cycle {
			return out[i].Cycle < out[j].Cycle
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// String renders the resource as "{A@0, B@2}" using opName for labels.
func (r *Resource) StringWith(opName func(int) string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, u := range r.Uses() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s@%d", opName(u.Op), u.Cycle)
	}
	b.WriteByte('}')
	return b.String()
}

// compat reports whether two usages may coexist in one synthesized resource:
// the latency their collision would forbid must already be forbidden in the
// target machine. Usages (X, cx) and (Y, cy) sharing a resource forbid
// latency (cy - cx) in F[X][Y].
func compat(m *forbidden.Matrix, a, b uint32) bool {
	ua, ub := decodeU(a), decodeU(b)
	return m.Forbidden(ua.Op, ub.Op, ub.Cycle-ua.Cycle)
}

// ElemPair is the elementary pair associated with a non-negative forbidden
// latency F in F[X][Y]: a usage by X in cycle 0 and a usage by Y in cycle F.
type ElemPair struct {
	X, Y, F int
}

func (p ElemPair) usages() (u0, u1 uint32) {
	return encodeU(p.X, 0), encodeU(p.Y, p.F)
}

// elementaryPairs lists the elementary pairs of the matrix in deterministic
// order (ascending latency, then operation indices), excluding pairs for
// negative latencies (redundant by symmetry), the 0 self-contention
// latencies (handled by Rule 4), and one of the two mirror-image orderings
// of each latency-0 cross pair.
func elementaryPairs(m *forbidden.Matrix) []ElemPair {
	var pairs []ElemPair
	for x := 0; x < m.NumOps; x++ {
		for y := 0; y < m.NumOps; y++ {
			m.Set(x, y).ForEach(func(f int) bool {
				if f < 0 {
					return true
				}
				if f == 0 && (x == y || x > y) {
					return true // self-contention or mirror duplicate
				}
				pairs = append(pairs, ElemPair{X: x, Y: y, F: f})
				return true
			})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if a.F != b.F {
			return a.F < b.F
		}
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	return pairs
}
