package core

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxObjectiveK bounds the K of a KCycleWord objective. K is the number
// of cycle-bitvectors packed per memory word, so any real machine word
// keeps it at or below the word size (64 today); 1024 leaves generous
// headroom for hypothetical wide words while keeping word-geometry
// arithmetic (cycle/K, span/K grouping) far from overflow and rejecting
// the absurd geometries an untrusted wire request could otherwise
// demand.
const MaxObjectiveK = 1024

// ParseObjective parses a reduction-objective string: "" or "res-uses"
// for the discrete objective, "<k>-cycle-word" for the bitvector one
// with 1 <= k <= MaxObjectiveK. It is the single parser behind the
// serve wire format and the mdreduce/pipesched command-line flags, so
// the accepted grammar (and the K bound) cannot diverge between them.
func ParseObjective(s string) (Objective, error) {
	if s == "" || s == "res-uses" {
		return Objective{Kind: ResUses}, nil
	}
	if k, ok := strings.CutSuffix(s, "-cycle-word"); ok {
		n, err := strconv.Atoi(k)
		if err != nil || n < 1 {
			return Objective{}, fmt.Errorf("bad objective %q", s)
		}
		obj := Objective{Kind: KCycleWord, K: n}
		if err := obj.Validate(); err != nil {
			return Objective{}, fmt.Errorf("bad objective %q: %v", s, err)
		}
		return obj, nil
	}
	return Objective{}, fmt.Errorf("unknown objective %q (want res-uses or <k>-cycle-word)", s)
}
