package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/forbidden"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/resmodel"
)

// Result is a complete reduction of a machine description.
type Result struct {
	// Input is the expanded machine the reduction started from.
	Input *resmodel.Expanded
	// Matrix is the forbidden-latency matrix of the input (per expanded op).
	Matrix *forbidden.Matrix
	// Classes partitions the input's operations into operation classes.
	Classes *forbidden.Classes
	// ClassMatrix is the matrix restricted to class representatives.
	ClassMatrix *forbidden.Matrix
	// Objective is the selection objective that was minimized.
	Objective Objective
	// GenSetSize and PrunedSize count the generating set before and after
	// pruning.
	GenSetSize, PrunedSize int
	// Selected lists the synthesized resources with their chosen usages.
	Selected []Selected
	// ResourceNames names the synthesized resources ("q0", "q1", ...).
	ResourceNames []string
	// ClassTables holds the reduced reservation table of each operation
	// class, over the synthesized resources.
	ClassTables []resmodel.Table
	// ReducedClass is the reduced machine with one operation per class.
	ReducedClass *resmodel.Expanded
	// Reduced is the reduced machine with one operation per input operation
	// (each op carries its class's reduced table); AltGroup mirrors the
	// input so check-with-alt keeps working.
	Reduced *resmodel.Expanded
	// Trace, when requested, records the generating-set construction.
	Trace *Trace

	// workers is the pool size the reduction ran with; Verify reuses it.
	workers int
	// Verification is expensive (it recomputes two forbidden-latency
	// matrices) and its outcome is immutable, so it runs once per Result;
	// cached Results (see Cache) therefore skip re-verification for free.
	verifyOnce sync.Once
	verifyErr  error
}

// Reduce runs the full three-step reduction of the paper on an expanded
// machine description.
func Reduce(e *resmodel.Expanded, obj Objective) *Result {
	return reduce(e, obj, false, 1)
}

// ReduceParallel is Reduce with the independent inner work — the
// forbidden-matrix rows and the pair-compatibility scans of the
// generating-set construction — fanned across a worker pool of the given
// size (workers < 1 selects GOMAXPROCS). The Result is identical to
// Reduce's at every worker count; workers == 1 is the serial reference.
func ReduceParallel(e *resmodel.Expanded, obj Objective, workers int) *Result {
	return reduce(e, obj, false, parallel.Workers(workers))
}

// ReduceTraced is Reduce with Figure-3-style trace collection enabled.
func ReduceTraced(e *resmodel.Expanded, obj Objective) *Result {
	return reduce(e, obj, true, 1)
}

func reduce(e *resmodel.Expanded, obj Objective, traced bool, workers int) *Result {
	if err := obj.Validate(); err != nil {
		panic(err)
	}
	if workers < 1 {
		workers = 1
	}
	r := &Result{Input: e, Objective: obj, workers: workers}

	// Per-stage wall-time histograms (µs) live under core.stage.*, a scope
	// determinism tests exclude: durations vary run to run and with the
	// worker count, unlike the core.* totals above them.
	metered := obs.Enabled()
	var stage obs.Scope
	var stageStart time.Time
	if metered {
		stage = obs.Default().Scope("core").Scope("stage")
		stageStart = time.Now()
	}
	endStage := func(name string) {
		if metered {
			now := time.Now()
			stage.Histogram(name).Observe(now.Sub(stageStart).Microseconds())
			stageStart = now
		}
	}

	r.Matrix = forbidden.ComputeParallel(e, workers)
	r.Classes = r.Matrix.ComputeClasses()
	r.ClassMatrix = r.Matrix.Collapse(r.Classes)
	endStage("fmatrix")

	var tr *Trace
	if traced {
		tr = &Trace{OpName: func(c int) string {
			return e.Ops[r.Classes.Rep[c]].Name
		}}
	}
	gen := GeneratingSetParallel(r.ClassMatrix, tr, workers)
	r.Trace = tr
	r.GenSetSize = len(gen)
	endStage("genset")
	pruned := Prune(r.ClassMatrix, gen)
	r.PrunedSize = len(pruned)
	endStage("prune")
	r.Selected = SelectCover(r.ClassMatrix, pruned, obj)
	endStage("select")
	if metered {
		s := obs.Default().Scope("core")
		s.Counter("reductions").Inc()
		s.Histogram("genset_size").Observe(int64(r.GenSetSize))
		s.Histogram("genset_pruned").Observe(int64(r.PrunedSize))
		s.Histogram("selected_resources").Observe(int64(len(r.Selected)))
	}

	// Build the reduced reservation tables, one per class.
	numClasses := r.Classes.NumClasses()
	r.ClassTables = make([]resmodel.Table, numClasses)
	for si, sel := range r.Selected {
		r.ResourceNames = append(r.ResourceNames, fmt.Sprintf("q%d", si))
		for _, u := range sel.Uses {
			r.ClassTables[u.Op].Uses = append(r.ClassTables[u.Op].Uses,
				resmodel.Usage{Resource: si, Cycle: u.Cycle})
		}
	}
	for i := range r.ClassTables {
		r.ClassTables[i].Normalize()
	}

	// Class-level reduced machine.
	r.ReducedClass = &resmodel.Expanded{
		Name:      e.Name + ".reduced.classes",
		Resources: append([]string(nil), r.ResourceNames...),
	}
	for ci := 0; ci < numClasses; ci++ {
		rep := r.Classes.Rep[ci]
		r.ReducedClass.Ops = append(r.ReducedClass.Ops, resmodel.ExpandedOp{
			Name:    e.Ops[rep].Name,
			Orig:    ci,
			Latency: e.Ops[rep].Latency,
			Table:   r.ClassTables[ci].Clone(),
		})
		r.ReducedClass.AltGroup = append(r.ReducedClass.AltGroup, []int{ci})
	}

	// Per-operation reduced machine, mirroring the input's alt structure.
	r.Reduced = &resmodel.Expanded{
		Name:      e.Name + ".reduced",
		Resources: append([]string(nil), r.ResourceNames...),
		Source:    e.Source,
	}
	for oi, o := range e.Ops {
		r.Reduced.Ops = append(r.Reduced.Ops, resmodel.ExpandedOp{
			Name:    o.Name,
			Orig:    o.Orig,
			Alt:     o.Alt,
			Latency: o.Latency,
			Table:   r.ClassTables[r.Classes.OfOp[oi]].Clone(),
		})
	}
	for _, g := range e.AltGroup {
		r.Reduced.AltGroup = append(r.Reduced.AltGroup, append([]int(nil), g...))
	}
	return r
}

// Verify recomputes the forbidden-latency matrix of the reduced machine
// description and checks that it is exactly the matrix of the original —
// the paper's correctness criterion ("querying for resource contentions
// using either the original or reduced machine descriptions yields the
// same answer"). It checks both the per-operation and the class-level
// reduced machines. The check runs once per Result and is memoized:
// repeated calls (including via the reduction cache) return the recorded
// outcome without recomputation.
func (r *Result) Verify() error {
	r.verifyOnce.Do(func() { r.verifyErr = r.verify() })
	return r.verifyErr
}

func (r *Result) verify() error {
	workers := r.workers
	if workers < 1 {
		workers = 1
	}
	got := forbidden.ComputeParallel(r.Reduced, workers)
	if d := got.Diff(r.Matrix, r.Input); d != "" {
		return fmt.Errorf("core: reduced description changes scheduling constraints: %s", d)
	}
	gotC := forbidden.ComputeParallel(r.ReducedClass, workers)
	if d := gotC.Diff(r.ClassMatrix, r.ReducedClass); d != "" {
		return fmt.Errorf("core: class-level reduced description changes scheduling constraints: %s", d)
	}
	return nil
}

// NumResources returns the number of synthesized resources in the reduced
// description.
func (r *Result) NumResources() int { return len(r.Selected) }

// NumUsages returns the total number of resource usages over the reduced
// class tables.
func (r *Result) NumUsages() int {
	n := 0
	for _, t := range r.ClassTables {
		n += len(t.Uses)
	}
	return n
}
