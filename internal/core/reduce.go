package core

import (
	"fmt"

	"repro/internal/forbidden"
	"repro/internal/resmodel"
)

// Result is a complete reduction of a machine description.
type Result struct {
	// Input is the expanded machine the reduction started from.
	Input *resmodel.Expanded
	// Matrix is the forbidden-latency matrix of the input (per expanded op).
	Matrix *forbidden.Matrix
	// Classes partitions the input's operations into operation classes.
	Classes *forbidden.Classes
	// ClassMatrix is the matrix restricted to class representatives.
	ClassMatrix *forbidden.Matrix
	// Objective is the selection objective that was minimized.
	Objective Objective
	// GenSetSize and PrunedSize count the generating set before and after
	// pruning.
	GenSetSize, PrunedSize int
	// Selected lists the synthesized resources with their chosen usages.
	Selected []Selected
	// ResourceNames names the synthesized resources ("q0", "q1", ...).
	ResourceNames []string
	// ClassTables holds the reduced reservation table of each operation
	// class, over the synthesized resources.
	ClassTables []resmodel.Table
	// ReducedClass is the reduced machine with one operation per class.
	ReducedClass *resmodel.Expanded
	// Reduced is the reduced machine with one operation per input operation
	// (each op carries its class's reduced table); AltGroup mirrors the
	// input so check-with-alt keeps working.
	Reduced *resmodel.Expanded
	// Trace, when requested, records the generating-set construction.
	Trace *Trace
}

// Reduce runs the full three-step reduction of the paper on an expanded
// machine description.
func Reduce(e *resmodel.Expanded, obj Objective) *Result {
	return reduce(e, obj, false)
}

// ReduceTraced is Reduce with Figure-3-style trace collection enabled.
func ReduceTraced(e *resmodel.Expanded, obj Objective) *Result {
	return reduce(e, obj, true)
}

func reduce(e *resmodel.Expanded, obj Objective, traced bool) *Result {
	if err := obj.Validate(); err != nil {
		panic(err)
	}
	r := &Result{Input: e, Objective: obj}
	r.Matrix = forbidden.Compute(e)
	r.Classes = r.Matrix.ComputeClasses()
	r.ClassMatrix = r.Matrix.Collapse(r.Classes)

	var tr *Trace
	if traced {
		tr = &Trace{OpName: func(c int) string {
			return e.Ops[r.Classes.Rep[c]].Name
		}}
	}
	gen := GeneratingSet(r.ClassMatrix, tr)
	r.Trace = tr
	r.GenSetSize = len(gen)
	pruned := Prune(r.ClassMatrix, gen)
	r.PrunedSize = len(pruned)
	r.Selected = SelectCover(r.ClassMatrix, pruned, obj)

	// Build the reduced reservation tables, one per class.
	numClasses := r.Classes.NumClasses()
	r.ClassTables = make([]resmodel.Table, numClasses)
	for si, sel := range r.Selected {
		r.ResourceNames = append(r.ResourceNames, fmt.Sprintf("q%d", si))
		for _, u := range sel.Uses {
			r.ClassTables[u.Op].Uses = append(r.ClassTables[u.Op].Uses,
				resmodel.Usage{Resource: si, Cycle: u.Cycle})
		}
	}
	for i := range r.ClassTables {
		r.ClassTables[i].Normalize()
	}

	// Class-level reduced machine.
	r.ReducedClass = &resmodel.Expanded{
		Name:      e.Name + ".reduced.classes",
		Resources: append([]string(nil), r.ResourceNames...),
	}
	for ci := 0; ci < numClasses; ci++ {
		rep := r.Classes.Rep[ci]
		r.ReducedClass.Ops = append(r.ReducedClass.Ops, resmodel.ExpandedOp{
			Name:    e.Ops[rep].Name,
			Orig:    ci,
			Latency: e.Ops[rep].Latency,
			Table:   r.ClassTables[ci].Clone(),
		})
		r.ReducedClass.AltGroup = append(r.ReducedClass.AltGroup, []int{ci})
	}

	// Per-operation reduced machine, mirroring the input's alt structure.
	r.Reduced = &resmodel.Expanded{
		Name:      e.Name + ".reduced",
		Resources: append([]string(nil), r.ResourceNames...),
		Source:    e.Source,
	}
	for oi, o := range e.Ops {
		r.Reduced.Ops = append(r.Reduced.Ops, resmodel.ExpandedOp{
			Name:    o.Name,
			Orig:    o.Orig,
			Alt:     o.Alt,
			Latency: o.Latency,
			Table:   r.ClassTables[r.Classes.OfOp[oi]].Clone(),
		})
	}
	for _, g := range e.AltGroup {
		r.Reduced.AltGroup = append(r.Reduced.AltGroup, append([]int(nil), g...))
	}
	return r
}

// Verify recomputes the forbidden-latency matrix of the reduced machine
// description and checks that it is exactly the matrix of the original —
// the paper's correctness criterion ("querying for resource contentions
// using either the original or reduced machine descriptions yields the
// same answer"). It checks both the per-operation and the class-level
// reduced machines.
func (r *Result) Verify() error {
	got := forbidden.Compute(r.Reduced)
	if d := got.Diff(r.Matrix, r.Input); d != "" {
		return fmt.Errorf("core: reduced description changes scheduling constraints: %s", d)
	}
	gotC := forbidden.Compute(r.ReducedClass)
	if d := gotC.Diff(r.ClassMatrix, r.ReducedClass); d != "" {
		return fmt.Errorf("core: class-level reduced description changes scheduling constraints: %s", d)
	}
	return nil
}

// NumResources returns the number of synthesized resources in the reduced
// description.
func (r *Result) NumResources() int { return len(r.Selected) }

// NumUsages returns the total number of resource usages over the reduced
// class tables.
func (r *Result) NumUsages() int {
	n := 0
	for _, t := range r.ClassTables {
		n += len(t.Uses)
	}
	return n
}
