package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/forbidden"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// ExactCoverResult is the outcome of the optimal cover search.
type ExactCoverResult struct {
	// Selected is the best selection found (minimum total usages).
	Selected []Selected
	// Usages is its total usage count.
	Usages int
	// Optimal reports whether the search completed (false: the node
	// budget ran out and Selected is only the best found so far).
	Optimal bool
	// Nodes is the number of search nodes explored.
	Nodes int
	// BoundImprovements counts complete covers that improved on the
	// shared best bound (1 = the greedy seed was never beaten).
	BoundImprovements int
}

// ExactCover computes a minimum-resource-usage cover of the forbidden
// latencies by branch and bound over the pruned generating set — the
// integer-programming formulation the paper mentions and sets aside for a
// fast heuristic (Section 5). It is exponential and intended for small
// machines, to quantify how close the greedy SelectCover lands; maxNodes
// bounds the search (0 means 1e6).
func ExactCover(m *forbidden.Matrix, G []*Resource, maxNodes int) ExactCoverResult {
	return ExactCoverWorkers(m, G, maxNodes, 1)
}

// ExactCoverWorkers is ExactCover with the root-level subtrees of the
// branch and bound explored concurrently: each candidate of the root
// branching triple gets its own search state, and all workers share an
// atomic best-usages bound so an improvement found in one subtree
// immediately prunes the others. The optimum value is identical at every
// worker count (the bound only tightens); the witness selection may be a
// different optimum. workers <= 1 is the serial reference path.
func ExactCoverWorkers(m *forbidden.Matrix, G []*Resource, maxNodes, workers int) ExactCoverResult {
	if maxNodes <= 0 {
		maxNodes = 1 << 20
	}
	workers = parallel.Workers(workers)
	numOps, span := m.NumOps, m.Span

	var universe []int64
	for x := 0; x < numOps; x++ {
		for y := 0; y < numOps; y++ {
			m.Set(x, y).ForEach(func(f int) bool {
				if f >= 0 {
					universe = append(universe, tcode(x, y, f, numOps, span))
				}
				return true
			})
		}
	}
	cands := make(map[int64][]candidate)
	for ri, r := range G {
		us := r.Uses()
		for _, ua := range us {
			for _, ub := range us {
				f := ub.Cycle - ua.Cycle
				if f < 0 {
					continue
				}
				t := tcode(ua.Op, ub.Op, f, numOps, span)
				cands[t] = append(cands[t], candidate{ri, encodeU(ua.Op, ua.Cycle), encodeU(ub.Op, ub.Cycle)})
			}
		}
	}

	// Greedy solution provides the initial upper bound.
	greedy := SelectCover(m, G, Objective{Kind: ResUses})
	sh := &exactShared{maxNodes: int64(maxNodes)}
	sh.best = ExactCoverResult{Selected: greedy, Usages: totalUsages(greedy)}
	sh.bestUsages.Store(int64(sh.best.Usages))

	newState := func() *exactState {
		st := &exactState{
			m: m, G: G, cands: cands,
			covered:  make(map[int64]int, len(universe)),
			selected: make([]map[uint32]bool, len(G)),
			universe: universe,
			sh:       sh,
		}
		for i := range st.selected {
			st.selected[i] = map[uint32]bool{}
		}
		return st
	}

	completed := true
	rootCands := rootBranch(universe, cands)
	if workers <= 1 || len(rootCands) < 2 {
		completed = newState().search(0)
	} else {
		// The root node itself, then one independent subtree per root
		// candidate; the shared atomic bound links their pruning.
		sh.nodes.Add(1)
		var incomplete atomic.Bool
		parallel.ForEach(len(rootCands), workers, func(ci int) {
			st := newState()
			c := rootCands[ci]
			added := st.apply(c)
			if !st.search(1) {
				incomplete.Store(true)
			}
			st.undo(c, added)
		})
		completed = !incomplete.Load()
	}

	best := sh.best
	best.Optimal = completed
	best.Nodes = int(sh.nodes.Load())
	best.BoundImprovements = int(sh.improvements.Load())
	if obs.Enabled() {
		s := obs.Default().Scope("core").Scope("exact")
		s.Counter("searches").Inc()
		s.Counter("nodes").Add(int64(best.Nodes))
		s.Counter("bound_improvements").Add(int64(best.BoundImprovements))
		if !best.Optimal {
			s.Counter("truncated").Inc()
		}
	}
	return best
}

// rootBranch picks the root branching triple exactly as search does on an
// empty cover — the uncovered triple with the fewest candidates — and
// returns its candidate list (nil when the universe is already empty).
func rootBranch(universe []int64, cands map[int64][]candidate) []candidate {
	var pick int64 = -1
	pickLen := 1 << 30
	for _, t := range universe {
		if l := len(cands[t]); l < pickLen {
			pick, pickLen = t, l
		}
	}
	if pick < 0 {
		return nil
	}
	return cands[pick]
}

func totalUsages(sel []Selected) int {
	n := 0
	for _, s := range sel {
		n += len(s.Uses)
	}
	return n
}

// exactShared is the state shared by all concurrent subtree searches: the
// node budget and the best cover found so far. bestUsages doubles as the
// lock-free pruning bound read on every search node; best itself is
// updated under the mutex.
type exactShared struct {
	nodes        atomic.Int64
	maxNodes     int64
	bestUsages   atomic.Int64
	improvements atomic.Int64
	mu           sync.Mutex
	best         ExactCoverResult
}

// record installs a complete cover if it still improves on the best.
func (sh *exactShared) record(usages int, snapshot func() []Selected) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if int64(usages) >= sh.bestUsages.Load() {
		return // another worker got there first
	}
	sh.bestUsages.Store(int64(usages))
	sh.improvements.Add(1)
	sh.best.Usages = usages
	sh.best.Selected = snapshot()
}

type exactState struct {
	m        *forbidden.Matrix
	G        []*Resource
	cands    map[int64][]candidate
	covered  map[int64]int // triple -> cover count
	selected []map[uint32]bool
	universe []int64
	usages   int
	sh       *exactShared
}

// search explores selections; returns false if the node budget was hit.
func (s *exactState) search(depth int) bool {
	if s.sh.nodes.Add(1) > s.sh.maxNodes {
		return false
	}
	if int64(s.usages) >= s.sh.bestUsages.Load() {
		return true // bound: cannot improve
	}
	// Pick the uncovered triple with the fewest candidates.
	var pick int64 = -1
	pickLen := 1 << 30
	found := false
	for _, t := range s.universe {
		if s.covered[t] > 0 {
			continue
		}
		found = true
		if l := len(s.cands[t]); l < pickLen {
			pick, pickLen = t, l
		}
	}
	if !found {
		// Complete cover, strictly better than the bound read above (the
		// shared record re-checks under the lock).
		s.sh.record(s.usages, s.snapshot)
		return true
	}
	complete := true
	for _, c := range s.cands[pick] {
		added := s.apply(c)
		if !s.search(depth + 1) {
			complete = false
		}
		s.undo(c, added)
		if s.sh.nodes.Load() > s.sh.maxNodes {
			return false
		}
	}
	return complete
}

// apply selects candidate c's usages; returns which were newly added.
func (s *exactState) apply(c candidate) [2]bool {
	var added [2]bool
	for i, u := range [2]uint32{c.a, c.b} {
		if i == 1 && c.b == c.a {
			break
		}
		if !s.selected[c.res][u] {
			s.selected[c.res][u] = true
			added[i] = true
			s.usages++
			s.coverDelta(c.res, u, +1)
		}
	}
	return added
}

func (s *exactState) undo(c candidate, added [2]bool) {
	for i, u := range [2]uint32{c.a, c.b} {
		if i == 1 && c.b == c.a {
			break
		}
		if added[i] {
			s.coverDelta(c.res, u, -1)
			delete(s.selected[c.res], u)
			s.usages--
		}
	}
}

// coverDelta updates cover counts for every triple generated by pairing
// usage u with the selected usages of its resource (including itself).
// Called with u already present in (delta>0) or still present in
// (delta<0) the selected set, so pairs are enumerated consistently.
func (s *exactState) coverDelta(res int, u uint32, delta int) {
	du := decodeU(u)
	numOps, span := s.m.NumOps, s.m.Span
	for v := range s.selected[res] {
		dv := decodeU(v)
		if f := dv.Cycle - du.Cycle; f >= 0 {
			s.covered[tcode(du.Op, dv.Op, f, numOps, span)] += delta
		}
		if v != u {
			if f := du.Cycle - dv.Cycle; f >= 0 {
				s.covered[tcode(dv.Op, du.Op, f, numOps, span)] += delta
			}
		}
	}
}

func (s *exactState) snapshot() []Selected {
	var out []Selected
	for ri, sel := range s.selected {
		if len(sel) == 0 {
			continue
		}
		us := make([]U, 0, len(sel))
		for u := range sel {
			us = append(us, decodeU(u))
		}
		sort.Slice(us, func(i, j int) bool {
			if us[i].Cycle != us[j].Cycle {
				return us[i].Cycle < us[j].Cycle
			}
			return us[i].Op < us[j].Op
		})
		out = append(out, Selected{Res: s.G[ri], Uses: us})
	}
	return out
}
