package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/forbidden"
	"repro/internal/resmodel"
)

// figure1 builds the example machine of Figure 1 of the paper.
func figure1() *resmodel.Expanded {
	b := resmodel.NewBuilder("example")
	b.Resources("r0", "r1", "r2", "r3", "r4")
	b.Op("A", 3).Stages(0, "r0", "r1", "r2")
	b.Op("B", 8).
		Use("r1", 0).
		Use("r2", 1).
		UseRange("r3", 2, 5).
		UseRange("r4", 6, 7)
	return b.Build().Expand()
}

// TestFigure1 reproduces the end-to-end reduction of Figure 1: the example
// machine reduces from 5 resources to 2, operation A from 3 usages to 1,
// and operation B from 8 usages to 4 (one on each resource plus the three
// usages needed to generate F[B][B] = {1,2,3}).
func TestFigure1(t *testing.T) {
	e := figure1()
	res := Reduce(e, Objective{Kind: ResUses})
	if err := res.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got := res.NumResources(); got != 2 {
		t.Fatalf("reduced resources = %d, want 2", got)
	}
	a := res.Classes.OfOp[e.OpIndex("A")]
	bb := res.Classes.OfOp[e.OpIndex("B")]
	if got := len(res.ClassTables[a].Uses); got != 1 {
		t.Errorf("A reduced usages = %d, want 1 (was 3)", got)
	}
	if got := len(res.ClassTables[bb].Uses); got != 4 {
		t.Errorf("B reduced usages = %d, want 4 (was 8)", got)
	}
	if res.NumUsages() != 5 {
		t.Errorf("total reduced usages = %d, want 5", res.NumUsages())
	}
}

// TestFigure1MaximalResources checks Step 2 + pruning: the example machine
// has exactly two maximal resources, {B@0, A@1} and {B@0, B@1, B@2, B@3}
// (Figure 1c).
func TestFigure1MaximalResources(t *testing.T) {
	e := figure1()
	m := forbidden.Compute(e)
	cls := m.ComputeClasses()
	cm := m.Collapse(cls)
	gen := GeneratingSet(cm, nil)
	pruned := Prune(cm, gen)
	if len(pruned) != 2 {
		names := make([]string, len(pruned))
		for i, r := range pruned {
			names[i] = r.StringWith(func(c int) string { return e.Ops[cls.Rep[c]].Name })
		}
		t.Fatalf("pruned generating set = %v, want the 2 maximal resources", names)
	}
	render := map[string]bool{}
	for _, r := range pruned {
		render[r.StringWith(func(c int) string { return e.Ops[cls.Rep[c]].Name })] = true
	}
	for _, want := range []string{"{B@0, A@1}", "{B@0, B@1, B@2, B@3}"} {
		if !render[want] {
			t.Errorf("maximal resource %s missing; got %v", want, render)
		}
	}
}

// TestFigure3Trace replays the step-by-step construction of Figure 3: the
// four non-negative forbidden latencies are processed in order 1 in F[B][A],
// 1 in F[B][B], 2 in F[B][B], 3 in F[B][B], applying Rule 3, Rule 3,
// Rule 1, Rule 1 respectively (with the bare-pair Rule 2 candidates against
// the mixed resource discarded).
func TestFigure3Trace(t *testing.T) {
	e := figure1()
	res := ReduceTraced(e, Objective{Kind: ResUses})
	tr := res.Trace
	if tr == nil || len(tr.Pairs) != 4 {
		t.Fatalf("trace pairs = %d, want 4", len(tr.Pairs))
	}
	// Pair order: (B,A,1), (B,B,1), (B,B,2), (B,B,3), using class indices.
	bb := res.Classes.OfOp[e.OpIndex("B")]
	aa := res.Classes.OfOp[e.OpIndex("A")]
	wantPairs := []ElemPair{{bb, aa, 1}, {bb, bb, 1}, {bb, bb, 2}, {bb, bb, 3}}
	for i, w := range wantPairs {
		if tr.Pairs[i].Pair != w {
			t.Errorf("pair %d = %+v, want %+v", i, tr.Pairs[i].Pair, w)
		}
	}
	// Step a: Rule 3 creates {B@0, A@1}.
	if got := tr.Pairs[0].Steps; len(got) != 1 || got[0].Rule != Rule3 || got[0].After != "{B@0, A@1}" {
		t.Errorf("step a = %+v, want Rule 3 creating {B@0, A@1}", got)
	}
	// Step b: bare-pair discard against {B@0, A@1}, then Rule 3 creates {B@0, B@1}.
	sb := tr.Pairs[1].Steps
	if len(sb) != 2 || sb[0].Rule != Rule2Discard || sb[1].Rule != Rule3 || sb[1].After != "{B@0, B@1}" {
		t.Errorf("step b = %+v, want discard then Rule 3 {B@0, B@1}", sb)
	}
	// Step c: discard against resource 0, Rule 1 extends resource 1.
	sc := tr.Pairs[2].Steps
	if len(sc) != 2 || sc[0].Rule != Rule2Discard || sc[1].Rule != Rule1 || sc[1].After != "{B@0, B@1, B@2}" {
		t.Errorf("step c = %+v, want discard then Rule 1 -> {B@0, B@1, B@2}", sc)
	}
	// Step d: discard, then Rule 1 -> {B@0, B@1, B@2, B@3}.
	sd := tr.Pairs[3].Steps
	if len(sd) != 2 || sd[1].Rule != Rule1 || sd[1].After != "{B@0, B@1, B@2, B@3}" {
		t.Errorf("step d = %+v, want Rule 1 -> {B@0, B@1, B@2, B@3}", sd)
	}
	// Final generating set: exactly the two maximal resources.
	if got := tr.Pairs[3].Set; len(got) != 2 {
		t.Errorf("final generating set = %v, want 2 resources", got)
	}
}

// TestRule4 covers operations whose only forbidden latency is the trivial
// self-contention: they get a dedicated single-usage resource.
func TestRule4(t *testing.T) {
	b := resmodel.NewBuilder("m")
	b.Resources("ra", "rb", "rc")
	b.Op("lonely", 1).Use("ra", 0)
	b.Op("x", 1).Use("rb", 0)
	b.Op("y", 1).Use("rb", 1)
	b.Op("idle", 1) // no resources at all: needs no synthesized resource
	e := b.Build().Expand()
	res := Reduce(e, Objective{Kind: ResUses})
	if err := res.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	lt := res.ClassTables[res.Classes.OfOp[e.OpIndex("lonely")]]
	if len(lt.Uses) != 1 {
		t.Errorf("lonely reduced usages = %d, want 1", len(lt.Uses))
	}
	it := res.ClassTables[res.Classes.OfOp[e.OpIndex("idle")]]
	if len(it.Uses) != 0 {
		t.Errorf("idle reduced usages = %d, want 0", len(it.Uses))
	}
}

// TestReduceNeverIncreases checks the reduction is never worse than the
// original description on the paper's metrics for the example machine and
// both objectives.
func TestReduceNeverIncreasesFigure1(t *testing.T) {
	e := figure1()
	for _, obj := range []Objective{{Kind: ResUses}, {Kind: KCycleWord, K: 1}, {Kind: KCycleWord, K: 4}} {
		res := Reduce(e, obj)
		if err := res.Verify(); err != nil {
			t.Fatalf("%v: Verify: %v", obj, err)
		}
		if res.NumResources() > len(e.Resources) {
			t.Errorf("%v: resources %d > original %d", obj, res.NumResources(), len(e.Resources))
		}
		if res.NumUsages() > e.NumUsages() {
			t.Errorf("%v: usages %d > original %d", obj, res.NumUsages(), e.NumUsages())
		}
	}
}

func TestObjectiveValidateAndString(t *testing.T) {
	if err := (Objective{Kind: KCycleWord, K: 0}).Validate(); err == nil {
		t.Errorf("K=0 validated")
	}
	if err := (Objective{Kind: ResUses}).Validate(); err != nil {
		t.Errorf("ResUses invalid: %v", err)
	}
	if err := (Objective{Kind: ObjectiveKind(99)}).Validate(); err == nil {
		t.Errorf("bogus kind validated")
	}
	if s := (Objective{Kind: KCycleWord, K: 4}).String(); !strings.Contains(s, "4-cycle-word") {
		t.Errorf("String = %q", s)
	}
	if s := (Objective{Kind: ResUses}).String(); s != "res-uses" {
		t.Errorf("String = %q", s)
	}
}

func TestRuleString(t *testing.T) {
	for _, r := range []Rule{Rule1, Rule2, Rule2Discard, Rule3, Rule4} {
		if r.String() == "" || strings.HasPrefix(r.String(), "Rule(") {
			t.Errorf("Rule %d has no description", int(r))
		}
	}
	if !strings.HasPrefix(Rule(42).String(), "Rule(") {
		t.Errorf("unknown rule String = %q", Rule(42).String())
	}
}

func TestSubsetOf(t *testing.T) {
	cases := []struct {
		a, b []int64
		want bool
	}{
		{nil, nil, true},
		{nil, []int64{1}, true},
		{[]int64{1}, nil, false},
		{[]int64{1, 3}, []int64{1, 2, 3}, true},
		{[]int64{1, 4}, []int64{1, 2, 3}, false},
		{[]int64{2}, []int64{1, 3}, false},
	}
	for _, c := range cases {
		if got := subsetOf(c.a, c.b); got != c.want {
			t.Errorf("subsetOf(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// The central invariant of the paper: for random machines, the reduced
// description generates exactly the same forbidden-latency matrix as the
// original, under every objective.
func TestQuickReducePreservesConstraints(t *testing.T) {
	objs := []Objective{{Kind: ResUses}, {Kind: KCycleWord, K: 1}, {Kind: KCycleWord, K: 2}, {Kind: KCycleWord, K: 4}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		obj := objs[rng.Intn(len(objs))]
		res := Reduce(e, obj)
		return res.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the reduced description's size is within its guaranteed
// bounds: a positive resource count whenever any latency is forbidden, and
// at most 2 selected usages per covered forbidden triple (each greedy step
// covers at least one new triple at the cost of at most two usages; under
// KCycleWord, free-marked usages never open a new word). Note the
// reduction is NOT guaranteed to shrink tiny unstructured machines — with
// no redundancy to remove, the pair-granularity of the cover can cost a
// few extra usages (observed on ~4% of random machines); the paper's
// machines shrink because their pipelined patterns are highly redundant.
func TestQuickReduceShrinks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		res := Reduce(e, Objective{Kind: ResUses})
		n := res.ClassMatrix.NonnegCount()
		if n > 0 && res.NumResources() == 0 {
			return false
		}
		return res.NumUsages() <= 2*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: every resource in the generating set is sound (forbids only
// latencies of the target machine), and after pruning no resource's triple
// set is contained in another's.
func TestQuickGeneratingSetSoundAndPruned(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		m := forbidden.Compute(e)
		cls := m.ComputeClasses()
		cm := m.Collapse(cls)
		gen := GeneratingSet(cm, nil)
		for _, r := range gen {
			us := r.Uses()
			for _, a := range us {
				for _, b := range us {
					if !cm.Forbidden(a.Op, b.Op, b.Cycle-a.Cycle) {
						return false // resource forbids a latency the machine allows
					}
				}
			}
			// Canonical form: earliest usage in cycle 0.
			if len(us) > 0 && us[0].Cycle != 0 {
				return false
			}
		}
		pruned := Prune(cm, gen)
		for i := range pruned {
			ti := genTriples(cm, pruned[i])
			for j := range pruned {
				if i == j {
					continue
				}
				if subsetOf(ti, genTriples(cm, pruned[j])) {
					return false // dominated resource survived pruning
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: the word-usage statistic is consistent: with k=1 the word usage
// equals the number of distinct non-empty cycles, and larger k never
// increases it.
func TestQuickWordUsesMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		for _, o := range e.Ops {
			cyc := map[int]bool{}
			for _, u := range o.Table.Uses {
				cyc[u.Cycle] = true
			}
			if WordUses(o.Table, 1, 0) != len(cyc) {
				return false
			}
			prev := AvgWordUsesPerOp([]resmodel.Table{o.Table}, 1)
			for k := 2; k <= 8; k *= 2 {
				cur := AvgWordUsesPerOp([]resmodel.Table{o.Table}, k)
				if cur > prev+1e-9 {
					return false
				}
				prev = cur
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWordUses(t *testing.T) {
	tab := resmodel.Table{Uses: []resmodel.Usage{
		{Resource: 0, Cycle: 0}, {Resource: 1, Cycle: 1}, {Resource: 0, Cycle: 5},
	}}
	if got := WordUses(tab, 4, 0); got != 2 { // cycles {0,1} in word 0, {5} in word 1
		t.Errorf("WordUses(k=4, a=0) = %d, want 2", got)
	}
	if got := WordUses(tab, 4, 3); got != 3 { // shifted cycles {3,4,8}: words 0,1,2
		t.Errorf("WordUses(k=4, a=3) = %d, want 3", got)
	}
	if got := AvgWordUsesPerOp([]resmodel.Table{tab}, 1); got != 3 {
		t.Errorf("AvgWordUsesPerOp(k=1) = %v, want 3", got)
	}
}

// TestKCycleWordObjectiveReducesWords: on Figure 1's machine, reducing for
// a k-cycle-word representation must not produce more word usages than the
// res-uses reduction evaluated at the same k.
func TestKCycleWordObjectiveReducesWords(t *testing.T) {
	e := figure1()
	for _, k := range []int{2, 4} {
		ru := Reduce(e, Objective{Kind: ResUses})
		kw := Reduce(e, Objective{Kind: KCycleWord, K: k})
		if err := kw.Verify(); err != nil {
			t.Fatalf("k=%d Verify: %v", k, err)
		}
		wRU := AvgWordUsesPerOp(ru.ClassTables, k)
		wKW := AvgWordUsesPerOp(kw.ClassTables, k)
		if wKW > wRU+1e-9 {
			t.Errorf("k=%d: word-objective word uses %.3f > res-uses %.3f", k, wKW, wRU)
		}
	}
}

func TestEmptyMachineReduce(t *testing.T) {
	b := resmodel.NewBuilder("empty")
	b.Resources("r")
	b.Op("nop", 0)
	e := b.Build().Expand()
	res := Reduce(e, Objective{Kind: ResUses})
	if err := res.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res.NumResources() != 0 || res.NumUsages() != 0 {
		t.Errorf("empty machine reduced to %d resources / %d usages", res.NumResources(), res.NumUsages())
	}
}

// TestAlternativesReduce: alternatives expand into distinct expanded ops;
// the reduced machine must preserve alt groups and constraints.
func TestAlternativesReduce(t *testing.T) {
	b := resmodel.NewBuilder("alts")
	b.Resources("p0", "p1", "bus")
	b.Op("add", 1).Use("p0", 0).Use("bus", 2).Alt().Use("p1", 0).Use("bus", 2)
	b.Op("mul", 2).UseRange("p0", 0, 1)
	e := b.Build().Expand()
	res := Reduce(e, Objective{Kind: ResUses})
	if err := res.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(res.Reduced.AltGroup) != 2 || len(res.Reduced.AltGroup[0]) != 2 {
		t.Errorf("AltGroup not preserved: %v", res.Reduced.AltGroup)
	}
	if res.Reduced.Ops[0].Name != "add.0" || res.Reduced.Ops[1].Name != "add.1" {
		t.Errorf("op names not preserved: %v %v", res.Reduced.Ops[0].Name, res.Reduced.Ops[1].Name)
	}
}

// TestTraceRule2AndRule4Strings: trace records for the rules Figure 3's
// example machine does not exercise.
func TestTraceRule2AndRule4Strings(t *testing.T) {
	// Rule 2: a pair partially compatible with an existing resource that
	// has a third usage. Construct: ops X, Y, Z where X-Y and X-Z combine
	// but Y-Z are incompatible at the relevant offsets.
	b := resmodel.NewBuilder("m")
	b.Resources("r", "s", "q")
	b.Op("X", 1).Use("r", 0).Use("s", 0).Use("q", 0)
	b.Op("Y", 1).Use("r", 1)
	b.Op("Z", 1).Use("s", 2)
	b.Op("W", 1).Use("q", 9) // far usage: keeps W in its own pairs
	e := b.Build().Expand()
	res := ReduceTraced(e, Objective{Kind: ResUses})
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	var rules []Rule
	for _, pt := range res.Trace.Pairs {
		for _, st := range pt.Steps {
			rules = append(rules, st.Rule)
		}
	}
	has := func(r Rule) bool {
		for _, x := range rules {
			if x == r {
				return true
			}
		}
		return false
	}
	if !has(Rule3) {
		t.Errorf("trace never applied Rule 3: %v", rules)
	}
	// Rule 4: an op whose only forbidden latency is its 0-self-contention.
	b2 := resmodel.NewBuilder("m2")
	b2.Resources("own")
	b2.Op("solo", 1).Use("own", 0)
	e2 := b2.Build().Expand()
	res2 := ReduceTraced(e2, Objective{Kind: ResUses})
	found := false
	for _, pt := range res2.Trace.Pairs {
		for _, st := range pt.Steps {
			if st.Rule == Rule4 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("Rule 4 not traced for a self-only op")
	}
	if res2.NumResources() != 1 || res2.NumUsages() != 1 {
		t.Errorf("solo machine reduced to %d res / %d uses", res2.NumResources(), res2.NumUsages())
	}
}

// TestKCycleWordFreeMarking: once the word objective opens a word of an
// operation's reduced table, every other usage of a selected resource in
// that word is marked for free (Section 5's secondary objective), so the
// word count never exceeds what the cover alone would open, while usage
// counts may grow.
func TestKCycleWordFreeMarking(t *testing.T) {
	// B's maximal resource {B@0..B@3} fits one 4-cycle word: the word
	// objective should select ALL FOUR usages (free-marked), where
	// res-uses selects only three.
	e := figure1()
	ru := Reduce(e, Objective{Kind: ResUses})
	kw := Reduce(e, Objective{Kind: KCycleWord, K: 4})
	if err := kw.Verify(); err != nil {
		t.Fatal(err)
	}
	bb := kw.Classes.OfOp[e.OpIndex("B")]
	ruB := len(ru.ClassTables[bb].Uses)
	kwB := len(kw.ClassTables[bb].Uses)
	if ruB != 4 {
		t.Errorf("res-uses B usages = %d, want 4", ruB)
	}
	if kwB < ruB {
		t.Errorf("word objective selected fewer usages (%d) than res-uses (%d)", kwB, ruB)
	}
	// And the word metric must not be worse.
	if AvgWordUsesPerOp(kw.ClassTables, 4) > AvgWordUsesPerOp(ru.ClassTables, 4)+1e-9 {
		t.Errorf("word objective produced more words than res-uses at k=4")
	}
}
