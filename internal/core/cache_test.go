package core

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/forbidden"
	"repro/internal/machines"
	"repro/internal/resmodel"
)

// TestFingerprintStableAndNameBlind checks the cache key's two defining
// properties: re-expanding the same machine hashes identically, and the
// hash depends on scheduling-relevant content only (renaming resources
// and operations does not change it, changing a usage cycle does).
func TestFingerprintStableAndNameBlind(t *testing.T) {
	m := machines.Cydra5()
	if Fingerprint(m.Expand()) != Fingerprint(m.Expand()) {
		t.Fatal("fingerprint differs across fresh expansions of the same machine")
	}

	build := func(name, r0, r1, op string, shift int) *resmodel.Expanded {
		b := resmodel.NewBuilder(name)
		b.Resources(r0, r1)
		b.Op(op, 4).Use(r0, 0).Use(r1, 1+shift)
		return b.Build().Expand()
	}
	base := build("a", "x", "y", "A", 0)
	renamed := build("b", "left", "right", "Zed", 0)
	shifted := build("a", "x", "y", "A", 1)
	if Fingerprint(base) != Fingerprint(renamed) {
		t.Error("fingerprint depends on names; want content-only hashing")
	}
	if Fingerprint(base) == Fingerprint(shifted) {
		t.Error("fingerprint ignores a usage-cycle change")
	}
}

// TestCacheSingleflight pins the memo contract: concurrent first requests
// for one key run the reduction exactly once and all receive the same
// verified *Result; later requests are hits.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	e := machines.Cydra5().Expand()
	obj := Objective{Kind: ResUses}

	const callers = 8
	results := make([]*Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Reduce(e, obj, 1)
		}(i)
	}
	wg.Wait()

	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a distinct Result; singleflight failed", i)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != callers-1 {
		t.Errorf("stats = %d hits / %d misses, want %d / 1", hits, misses, callers-1)
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
	if err := results[0].Verify(); err != nil {
		t.Errorf("cached result fails verification: %v", err)
	}

	// A different objective is a different key — a miss, not a collision.
	if c.Reduce(e, Objective{Kind: KCycleWord, K: 3}, 1) == results[0] {
		t.Error("distinct objectives share a cache entry")
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d entries after second objective, want 2", c.Len())
	}
}

// genSetKey canonicalizes a generating set for comparison: the sorted
// usage lists of all live resources.
func genSetKey(G []*Resource) []string {
	var keys []string
	for _, r := range G {
		us := r.Uses()
		sort.Slice(us, func(i, j int) bool {
			if us[i].Op != us[j].Op {
				return us[i].Op < us[j].Op
			}
			return us[i].Cycle < us[j].Cycle
		})
		keys = append(keys, fmt.Sprint(us))
	}
	sort.Strings(keys)
	return keys
}

// TestParallelPipelineMatchesSerial is the equivalence suite for every
// parallel stage of the reduction pipeline: the F matrix, the generating
// set, and the end-to-end reduction must match the serial reference
// exactly at any worker count.
func TestParallelPipelineMatchesSerial(t *testing.T) {
	for _, m := range []*resmodel.Machine{machines.Cydra5(), machines.MIPS()} {
		e := m.Expand()

		serialF := forbidden.Compute(e)
		for _, w := range []int{2, 8} {
			if !serialF.Equal(forbidden.ComputeParallel(e, w)) {
				t.Errorf("%s: F matrix differs at workers=%d", m.Name, w)
			}
		}

		cls := serialF.ComputeClasses()
		cm := serialF.Collapse(cls)
		serialG := genSetKey(GeneratingSet(cm, nil))
		for _, w := range []int{2, 8} {
			parG := genSetKey(GeneratingSetParallel(cm, nil, w))
			if len(parG) != len(serialG) {
				t.Errorf("%s: generating set size %d at workers=%d, want %d",
					m.Name, len(parG), w, len(serialG))
				continue
			}
			for i := range serialG {
				if parG[i] != serialG[i] {
					t.Errorf("%s: generating set differs at workers=%d: %s vs %s",
						m.Name, w, parG[i], serialG[i])
					break
				}
			}
		}

		for _, obj := range []Objective{{Kind: ResUses}, {Kind: KCycleWord, K: 3}} {
			serial := Reduce(e, obj)
			par := ReduceParallel(e, obj, 8)
			if err := par.Verify(); err != nil {
				t.Errorf("%s/%v: parallel reduction fails verification: %v", m.Name, obj, err)
			}
			if serial.NumResources() != par.NumResources() || serial.NumUsages() != par.NumUsages() {
				t.Errorf("%s/%v: parallel reduction %d res/%d uses, serial %d/%d",
					m.Name, obj, par.NumResources(), par.NumUsages(),
					serial.NumResources(), serial.NumUsages())
			}
			if !serial.ClassMatrix.Equal(par.ClassMatrix) {
				t.Errorf("%s/%v: class matrices differ between serial and parallel", m.Name, obj)
			}
		}
	}
}

// TestExactCoverWorkersSameOptimum checks the shared-bound branch and
// bound: the optimum usage count is invariant under worker count (the
// witness cover may legitimately differ).
func TestExactCoverWorkersSameOptimum(t *testing.T) {
	for _, m := range []*resmodel.Machine{machines.Cydra5(), machines.MIPS()} {
		f := forbidden.Compute(m.Expand())
		cm := f.Collapse(f.ComputeClasses())
		G := Prune(cm, GeneratingSet(cm, nil))
		serial := ExactCover(cm, G, 200_000)
		for _, w := range []int{2, 8} {
			par := ExactCoverWorkers(cm, G, 200_000, w)
			if par.Optimal != serial.Optimal || (serial.Optimal && par.Usages != serial.Usages) {
				t.Errorf("%s: workers=%d cover (usages=%d optimal=%v), serial (usages=%d optimal=%v)",
					m.Name, w, par.Usages, par.Optimal, serial.Usages, serial.Optimal)
			}
		}
	}
}
