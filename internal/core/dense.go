package core

import (
	"repro/internal/forbidden"
)

// tcode encodes the non-negative forbidden-latency triple "X scheduled f
// cycles after Y conflicts" — i.e. f in F[X][Y] — as a single integer.
func tcode(x, y, f, numOps, span int) int64 {
	return (int64(x)*int64(numOps)+int64(y))*int64(span) + int64(f)
}

// tripleIndex maps the non-negative forbidden-latency triples of a matrix
// to dense indices [0, Len()): index order is the (x, y, f) enumeration
// order, which equals ascending tcode order, so comparisons and stable
// sorts over dense indices order exactly like the sparse codes they
// replace. Built once per reduction stage and shared by the selection
// heuristic, the pruner and the exact-cover search, it turns every
// per-triple map in those inner loops into flat array indexing.
type tripleIndex struct {
	codes        []int64 // dense index -> tcode, ascending
	idx          map[int64]int32
	numOps, span int
}

func newTripleIndex(m *forbidden.Matrix) *tripleIndex {
	ti := &tripleIndex{numOps: m.NumOps, span: m.Span}
	for x := 0; x < m.NumOps; x++ {
		for y := 0; y < m.NumOps; y++ {
			m.Set(x, y).ForEach(func(f int) bool {
				if f >= 0 {
					ti.codes = append(ti.codes, tcode(x, y, f, m.NumOps, m.Span))
				}
				return true
			})
		}
	}
	ti.idx = make(map[int64]int32, len(ti.codes))
	for i, c := range ti.codes {
		ti.idx[c] = int32(i)
	}
	return ti
}

// Len returns the number of triples in the universe.
func (ti *tripleIndex) Len() int { return len(ti.codes) }

// index returns the dense index of triple (x, y, f), or -1 when the
// latency is not forbidden (the triple is outside the universe).
func (ti *tripleIndex) index(x, y, f int) int32 {
	i, ok := ti.idx[tcode(x, y, f, ti.numOps, ti.span)]
	if !ok {
		return -1
	}
	return i
}

// code returns the sparse tcode of dense index t.
func (ti *tripleIndex) code(t int32) int64 { return ti.codes[t] }
