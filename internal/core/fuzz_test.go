package core

import (
	"fmt"
	"testing"

	"repro/internal/forbidden"
	"repro/internal/machines"
	"repro/internal/resmodel"
)

// The fuzz byte format for FuzzReducePreservesF encodes a small machine
// plus an objective. The caps keep random machines in the sparse regime
// real processors occupy (see resmodel.DefaultRandomConfig): up to 6
// resources, 6 operations with at most 2 alternatives, 8 usages per
// alternative, cycles in [0, 8). Layout:
//
//	[obj] [nRes-1] [nOps-1] then per op:
//	  [latency] [altSel] then per alternative:
//	    [nUses] then nUses × ([resource] [cycle])
//
// Every byte is reduced modulo its field's range, so all byte strings
// decode to either a valid machine or nil (too short / empty is fine:
// missing bytes read as zero).
const (
	fuzzMaxRes  = 6
	fuzzMaxOps  = 6
	fuzzMaxUses = 8
	fuzzMaxCyc  = 8
)

// byteReader yields bytes from data, returning 0 once exhausted (so
// truncated inputs still decode deterministically).
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func decodeObjective(b byte) Objective {
	if sel := int(b % 4); sel > 0 {
		return Objective{Kind: KCycleWord, K: sel}
	}
	return Objective{Kind: ResUses}
}

func decodeMachine(r *byteReader) *resmodel.Machine {
	nRes := 1 + int(r.next())%fuzzMaxRes
	nOps := 1 + int(r.next())%fuzzMaxOps
	m := &resmodel.Machine{Name: "fuzz"}
	for i := 0; i < nRes; i++ {
		m.Resources = append(m.Resources, fmt.Sprintf("r%d", i))
	}
	for o := 0; o < nOps; o++ {
		op := resmodel.Operation{Name: fmt.Sprintf("op%d", o), Latency: int(r.next() % 8)}
		nAlts := 1
		if r.next()%4 == 0 {
			nAlts = 2
		}
		for a := 0; a < nAlts; a++ {
			var t resmodel.Table
			nUses := int(r.next()) % (fuzzMaxUses + 1)
			for u := 0; u < nUses; u++ {
				t.Uses = append(t.Uses, resmodel.Usage{
					Resource: int(r.next()) % nRes,
					Cycle:    int(r.next()) % fuzzMaxCyc,
				})
			}
			t.Normalize()
			op.Alts = append(op.Alts, t)
		}
		m.Ops = append(m.Ops, op)
	}
	if err := m.Validate(); err != nil {
		// Unreachable: every decoded field is in range and Normalize
		// removes duplicate usages. Treat as a rejected input, not a bug
		// in the reduction under test.
		return nil
	}
	return m
}

// encodeMachine is the seed-side inverse of decodeMachine; ok is false
// when the machine exceeds the fuzz caps.
func encodeMachine(obj Objective, m *resmodel.Machine) ([]byte, bool) {
	if len(m.Resources) > fuzzMaxRes || len(m.Ops) > fuzzMaxOps {
		return nil, false
	}
	var out []byte
	switch obj.Kind {
	case ResUses:
		out = append(out, 0)
	case KCycleWord:
		if obj.K < 1 || obj.K > 3 {
			return nil, false
		}
		out = append(out, byte(obj.K))
	}
	out = append(out, byte(len(m.Resources)-1), byte(len(m.Ops)-1))
	for _, o := range m.Ops {
		if len(o.Alts) > 2 {
			return nil, false
		}
		altSel := byte(1)
		if len(o.Alts) == 2 {
			altSel = 0
		}
		out = append(out, byte(o.Latency%8), altSel)
		for _, a := range o.Alts {
			if len(a.Uses) > fuzzMaxUses {
				return nil, false
			}
			out = append(out, byte(len(a.Uses)))
			for _, u := range a.Uses {
				if u.Cycle >= fuzzMaxCyc {
					return nil, false
				}
				out = append(out, byte(u.Resource), byte(u.Cycle))
			}
		}
	}
	return out, true
}

// FuzzReducePreservesF fuzzes the paper's central theorem end to end:
// for any valid machine description and objective, the reduced
// description's forbidden-latency matrix equals the original's exactly
// (and the class-level reduction passes Verify, which re-derives both
// matrices). A crasher here is a reduction that silently changes
// scheduling constraints — the failure mode the paper exists to prevent.
func FuzzReducePreservesF(f *testing.F) {
	// Figure 1's example machine under both objective kinds.
	for _, obj := range []Objective{{Kind: ResUses}, {Kind: KCycleWord, K: 2}} {
		if seed, ok := encodeMachine(obj, machines.Example()); ok {
			f.Add(seed)
		} else {
			f.Fatal("example machine no longer fits the fuzz caps; widen them")
		}
	}
	// Table 5/6-flavoured patterns: a partially pipelined two-stage unit
	// with a shared result bus, an op with two alternatives on identical
	// units, and an empty (no-usage) op — the structures that make the
	// Cydra 5 reduction interesting, shrunk to fuzz scale.
	pipelined := resmodel.NewBuilder("pipelined")
	pipelined.Resources("stage1", "stage2", "bus")
	pipelined.Op("mult", 5).Use("stage1", 0).Use("stage1", 1).Use("stage2", 2).Use("stage2", 3).Use("bus", 5)
	pipelined.Op("add", 2).Use("stage1", 0).Use("bus", 2)
	pipelined.Op("nop", 1)
	if seed, ok := encodeMachine(Objective{Kind: ResUses}, pipelined.Build()); ok {
		f.Add(seed)
	}
	alts := resmodel.NewBuilder("alts")
	alts.Resources("a0", "a1", "wb")
	alts.Op("add", 1).Use("a0", 0).Use("wb", 1).Alt().Use("a1", 0).Use("wb", 1)
	alts.Op("store", 0).Use("wb", 0)
	if seed, ok := encodeMachine(Objective{Kind: KCycleWord, K: 3}, alts.Build()); ok {
		f.Add(seed)
	}
	// Raw bytes: truncated input and a dense single-resource machine.
	f.Add([]byte{})
	f.Add([]byte{2, 0, 2, 1, 1, 4, 0, 0, 0, 1, 0, 2, 0, 3, 3, 1, 2, 0, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := &byteReader{data: data}
		obj := decodeObjective(r.next())
		m := decodeMachine(r)
		if m == nil {
			return
		}
		e := m.Expand()
		red := Reduce(e, obj)
		got := forbidden.Compute(red.Reduced)
		if !got.Equal(red.Matrix) {
			t.Fatalf("reduced description changes the forbidden-latency matrix:\nmachine:\n%+v\nobjective %v\ndiff: %s",
				m, obj, got.Diff(red.Matrix, e))
		}
		if err := red.Verify(); err != nil {
			t.Fatalf("reduction fails verification on fuzz machine %+v: %v", m, err)
		}
	})
}
