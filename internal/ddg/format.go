package ddg

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/resmodel"
)

// Parse reads a loop dependence graph in the textual format:
//
//	loop <name>
//	node <name> <machine-op-name>
//	edge <from-node> <to-node> delay <int> [dist <int>]
//
// Comments run from '#' to end of line. Node operands of edge lines refer
// to node names. Operation names are resolved against the machine.
func Parse(src string, m *resmodel.Machine) (*Graph, error) {
	g := &Graph{}
	nodeIdx := map[string]int{}
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		lineNo := ln + 1
		switch fields[0] {
		case "loop":
			if len(fields) != 2 {
				return nil, fmt.Errorf("ddg: line %d: want 'loop <name>'", lineNo)
			}
			g.Name = fields[1]
		case "node":
			if len(fields) != 3 {
				return nil, fmt.Errorf("ddg: line %d: want 'node <name> <op>'", lineNo)
			}
			name, opName := fields[1], fields[2]
			if _, dup := nodeIdx[name]; dup {
				return nil, fmt.Errorf("ddg: line %d: duplicate node %q", lineNo, name)
			}
			op := m.OpIndex(opName)
			if op < 0 {
				return nil, fmt.Errorf("ddg: line %d: unknown operation %q on machine %q", lineNo, opName, m.Name)
			}
			nodeIdx[name] = len(g.Nodes)
			g.Nodes = append(g.Nodes, Node{Name: name, Op: op})
		case "edge":
			if len(fields) < 5 || fields[3] != "delay" {
				return nil, fmt.Errorf("ddg: line %d: want 'edge <from> <to> delay <int> [dist <int>]'", lineNo)
			}
			from, ok := nodeIdx[fields[1]]
			if !ok {
				return nil, fmt.Errorf("ddg: line %d: unknown node %q", lineNo, fields[1])
			}
			to, ok := nodeIdx[fields[2]]
			if !ok {
				return nil, fmt.Errorf("ddg: line %d: unknown node %q", lineNo, fields[2])
			}
			delay, err := strconv.Atoi(fields[4])
			if err != nil {
				return nil, fmt.Errorf("ddg: line %d: bad delay %q", lineNo, fields[4])
			}
			dist := 0
			if len(fields) >= 7 && fields[5] == "dist" {
				dist, err = strconv.Atoi(fields[6])
				if err != nil {
					return nil, fmt.Errorf("ddg: line %d: bad dist %q", lineNo, fields[6])
				}
			} else if len(fields) != 5 {
				return nil, fmt.Errorf("ddg: line %d: trailing tokens", lineNo)
			}
			g.Edges = append(g.Edges, Edge{From: from, To: to, Delay: delay, Dist: dist})
		default:
			return nil, fmt.Errorf("ddg: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if g.Name == "" {
		return nil, fmt.Errorf("ddg: missing 'loop <name>' line")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Print renders the graph in the format accepted by Parse.
func Print(g *Graph, m *resmodel.Machine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "loop %s\n", g.Name)
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "node %s %s\n", n.Name, m.Ops[n.Op].Name)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "edge %s %s delay %d", g.Nodes[e.From].Name, g.Nodes[e.To].Name, e.Delay)
		if e.Dist != 0 {
			fmt.Fprintf(&b, " dist %d", e.Dist)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
