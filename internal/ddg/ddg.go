// Package ddg provides data-dependence graphs for innermost loops and the
// minimum-initiation-interval (MII) computation used by modulo scheduling:
// the scheduler substrate for Section 8 of Eichenberger & Davidson (PLDI
// 1996), which evaluates the contention query module inside Rau's
// Iterative Modulo Scheduler.
package ddg

import (
	"fmt"
	"math"
)

// Node is one operation of a loop body. Op indexes the operation in the
// *source* (unexpanded) machine description, so a node with alternatives
// can be placed by check-with-alt.
type Node struct {
	Name string
	Op   int
}

// Edge is a dependence: To must issue no earlier than Delay cycles after
// From, when From executes Dist iterations earlier:
//
//	time(To) >= time(From) + Delay - II*Dist
//
// Dist == 0 is an intra-iteration dependence; Dist >= 1 is loop-carried.
type Edge struct {
	From, To int
	Delay    int
	Dist     int
}

// Graph is a loop-body dependence graph. Unlike an acyclic DAG it may
// contain cycles, provided every cycle has positive total distance.
type Graph struct {
	Name  string
	Nodes []Node
	Edges []Edge
}

// Validate checks indices, non-negative distances, and that every
// zero-distance cycle is absent (each dependence cycle must cross at
// least one iteration boundary).
func (g *Graph) Validate() error {
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.Nodes) || e.To < 0 || e.To >= len(g.Nodes) {
			return fmt.Errorf("ddg: %s: edge %d->%d out of range [0,%d)", g.Name, e.From, e.To, len(g.Nodes))
		}
		if e.Dist < 0 {
			return fmt.Errorf("ddg: %s: edge %d->%d has negative distance %d", g.Name, e.From, e.To, e.Dist)
		}
	}
	// Detect a zero-distance cycle by DFS over Dist==0 edges.
	adj := make([][]int, len(g.Nodes))
	for _, e := range g.Edges {
		if e.Dist == 0 {
			adj[e.From] = append(adj[e.From], e.To)
		}
	}
	state := make([]int, len(g.Nodes)) // 0 new, 1 active, 2 done
	var dfs func(v int) bool
	dfs = func(v int) bool {
		state[v] = 1
		for _, w := range adj[v] {
			if state[w] == 1 {
				return false
			}
			if state[w] == 0 && !dfs(w) {
				return false
			}
		}
		state[v] = 2
		return true
	}
	for v := range g.Nodes {
		if state[v] == 0 && !dfs(v) {
			return fmt.Errorf("ddg: %s: zero-distance dependence cycle through node %d (%s)",
				g.Name, v, g.Nodes[v].Name)
		}
	}
	return nil
}

// Preds returns, for each node, the incoming edges.
func (g *Graph) Preds() [][]Edge {
	out := make([][]Edge, len(g.Nodes))
	for _, e := range g.Edges {
		out[e.To] = append(out[e.To], e)
	}
	return out
}

// Succs returns, for each node, the outgoing edges.
func (g *Graph) Succs() [][]Edge {
	out := make([][]Edge, len(g.Nodes))
	for _, e := range g.Edges {
		out[e.From] = append(out[e.From], e)
	}
	return out
}

// RecMII returns the recurrence-constrained minimum initiation interval:
// the smallest II >= 1 such that no dependence cycle C has
// delay(C) > II * dist(C). Computed by binary search over II with
// positive-cycle detection (Floyd–Warshall longest paths) at each probe.
func (g *Graph) RecMII() int {
	hasCycleEdge := false
	hi := 1
	for _, e := range g.Edges {
		if e.Dist > 0 {
			hasCycleEdge = true
		}
		if e.Delay > 0 {
			hi += e.Delay
		}
	}
	if !hasCycleEdge {
		return 1
	}
	lo := 1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.feasibleII(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// feasibleII reports whether no dependence cycle has positive weight under
// edge weight (Delay - II*Dist).
func (g *Graph) feasibleII(ii int) bool {
	n := len(g.Nodes)
	const neg = math.MinInt64 / 4
	dist := make([][]int64, n)
	for i := range dist {
		dist[i] = make([]int64, n)
		for j := range dist[i] {
			dist[i][j] = neg
		}
	}
	for _, e := range g.Edges {
		w := int64(e.Delay) - int64(ii)*int64(e.Dist)
		if w > dist[e.From][e.To] {
			dist[e.From][e.To] = w
		}
	}
	for k := 0; k < n; k++ {
		dk := dist[k]
		for i := 0; i < n; i++ {
			dik := dist[i][k]
			if dik == neg {
				continue
			}
			di := dist[i]
			for j := 0; j < n; j++ {
				if dk[j] == neg {
					continue
				}
				if v := dik + dk[j]; v > di[j] {
					di[j] = v
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if dist[i][i] > 0 {
			return false
		}
	}
	return true
}

// UsageCounter abstracts the machine information ResMII needs: how many
// times alternative a of (source) operation op uses resource r, and the
// machine's resource and alternative counts.
type UsageCounter interface {
	NumResources() int
	NumAlts(op int) int
	Uses(op, alt, resource int) int
}

// ResMII returns the resource-constrained minimum initiation interval: for
// every resource, the usages the loop body needs per iteration must fit in
// II cycles of that resource. Following Rau's bin-packing estimate,
// operations with alternatives are assigned greedily to the alternative
// that minimizes the maximum resource load (so three loads over two
// memory ports count 2+1, not 1.5 each).
func (g *Graph) ResMII(uc UsageCounter) int {
	nr := uc.NumResources()
	load := make([]int, nr)
	altUses := func(op, alt int) []int {
		us := make([]int, nr)
		for r := 0; r < nr; r++ {
			us[r] = uc.Uses(op, alt, r)
		}
		return us
	}
	maxAfter := func(us []int) int {
		m := 0
		for r, u := range us {
			if l := load[r] + u; l > m {
				m = l
			}
		}
		return m
	}
	for _, node := range g.Nodes {
		na := uc.NumAlts(node.Op)
		bestAlt, bestMax := 0, math.MaxInt32
		for a := 0; a < na; a++ {
			if m := maxAfter(altUses(node.Op, a)); m < bestMax {
				bestAlt, bestMax = a, m
			}
		}
		for r, u := range altUses(node.Op, bestAlt) {
			load[r] += u
		}
	}
	mii := 1
	for _, l := range load {
		if l > mii {
			mii = l
		}
	}
	return mii
}

// MII returns max(ResMII, RecMII).
func (g *Graph) MII(uc UsageCounter) int {
	res, rec := g.ResMII(uc), g.RecMII()
	if res > rec {
		return res
	}
	return rec
}
