// Package ddg provides data-dependence graphs for innermost loops and the
// minimum-initiation-interval (MII) computation used by modulo scheduling:
// the scheduler substrate for Section 8 of Eichenberger & Davidson (PLDI
// 1996), which evaluates the contention query module inside Rau's
// Iterative Modulo Scheduler.
package ddg

import (
	"fmt"
	"math"
)

// Node is one operation of a loop body. Op indexes the operation in the
// *source* (unexpanded) machine description, so a node with alternatives
// can be placed by check-with-alt.
type Node struct {
	Name string
	Op   int
}

// Edge is a dependence: To must issue no earlier than Delay cycles after
// From, when From executes Dist iterations earlier:
//
//	time(To) >= time(From) + Delay - II*Dist
//
// Dist == 0 is an intra-iteration dependence; Dist >= 1 is loop-carried.
type Edge struct {
	From, To int
	Delay    int
	Dist     int
}

// Graph is a loop-body dependence graph. Unlike an acyclic DAG it may
// contain cycles, provided every cycle has positive total distance.
type Graph struct {
	Name  string
	Nodes []Node
	Edges []Edge
}

// Validate checks indices, non-negative distances, and that every
// zero-distance cycle is absent (each dependence cycle must cross at
// least one iteration boundary).
func (g *Graph) Validate() error {
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.Nodes) || e.To < 0 || e.To >= len(g.Nodes) {
			return fmt.Errorf("ddg: %s: edge %d->%d out of range [0,%d)", g.Name, e.From, e.To, len(g.Nodes))
		}
		if e.Dist < 0 {
			return fmt.Errorf("ddg: %s: edge %d->%d has negative distance %d", g.Name, e.From, e.To, e.Dist)
		}
	}
	// Detect a zero-distance cycle by DFS over Dist==0 edges.
	adj := make([][]int, len(g.Nodes))
	for _, e := range g.Edges {
		if e.Dist == 0 {
			adj[e.From] = append(adj[e.From], e.To)
		}
	}
	state := make([]int, len(g.Nodes)) // 0 new, 1 active, 2 done
	var dfs func(v int) bool
	dfs = func(v int) bool {
		state[v] = 1
		for _, w := range adj[v] {
			if state[w] == 1 {
				return false
			}
			if state[w] == 0 && !dfs(w) {
				return false
			}
		}
		state[v] = 2
		return true
	}
	for v := range g.Nodes {
		if state[v] == 0 && !dfs(v) {
			return fmt.Errorf("ddg: %s: zero-distance dependence cycle through node %d (%s)",
				g.Name, v, g.Nodes[v].Name)
		}
	}
	return nil
}

// Preds returns, for each node, the incoming edges.
func (g *Graph) Preds() [][]Edge {
	out := make([][]Edge, len(g.Nodes))
	for _, e := range g.Edges {
		out[e.To] = append(out[e.To], e)
	}
	return out
}

// Succs returns, for each node, the outgoing edges.
func (g *Graph) Succs() [][]Edge {
	out := make([][]Edge, len(g.Nodes))
	for _, e := range g.Edges {
		out[e.From] = append(out[e.From], e)
	}
	return out
}

// RecMII returns the recurrence-constrained minimum initiation interval:
// the smallest II >= 1 such that no dependence cycle C has
// delay(C) > II * dist(C). Every cycle lies within one strongly
// connected component, so the graph is decomposed into SCCs first and
// the binary search over II (with Floyd–Warshall positive-cycle
// detection at each probe) runs per component. Loop bodies are mostly
// acyclic chains with a few small recurrences, so the cubic work runs
// on component sizes of a handful of nodes rather than the whole body.
func (g *Graph) RecMII() int {
	hasCycleEdge := false
	for _, e := range g.Edges {
		if e.Dist > 0 {
			hasCycleEdge = true
			break
		}
	}
	if !hasCycleEdge {
		return 1
	}
	mii := 1
	for _, comp := range g.cycleComponents() {
		mii = comp.recMII(mii)
	}
	return mii
}

// component is one strongly connected subgraph with edges renumbered to
// local node indices.
type component struct {
	n     int
	edges []Edge
}

// cycleComponents returns the strongly connected components of g that
// can contain a dependence cycle: size >= 2, or a single node with a
// self-edge. Tarjan's algorithm over all edges (distance 0 edges can
// participate in a recurrence alongside loop-carried ones).
func (g *Graph) cycleComponents() []component {
	n := len(g.Nodes)
	adj := make([][]int, n)
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next, nComp := 0, 0
	var strong func(v int)
	strong = func(v int) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == unvisited {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = nComp
				if w == v {
					break
				}
			}
			nComp++
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == unvisited {
			strong(v)
		}
	}
	// Renumber nodes within each component and collect intra-component
	// edges; components that cannot hold a cycle are dropped.
	size := make([]int, nComp)
	local := make([]int, n)
	for v := 0; v < n; v++ {
		local[v] = size[comp[v]]
		size[comp[v]]++
	}
	out := make([]component, nComp)
	keep := make([]bool, nComp)
	for ci := range out {
		out[ci].n = size[ci]
		keep[ci] = size[ci] >= 2
	}
	for _, e := range g.Edges {
		ci := comp[e.From]
		if ci != comp[e.To] {
			continue
		}
		out[ci].edges = append(out[ci].edges, Edge{
			From: local[e.From], To: local[e.To], Delay: e.Delay, Dist: e.Dist,
		})
		keep[ci] = true // self-edge makes a 1-node component cyclic
	}
	kept := out[:0]
	for ci, c := range out {
		if keep[ci] {
			kept = append(kept, c)
		}
	}
	return kept
}

// recMII returns max(lo, recurrence MII of this component). The caller
// threads the running maximum through as lo so a component whose cycles
// are all slacker than an already-found recurrence costs one
// feasibility probe.
func (c component) recMII(lo int) int {
	hi := 1
	for _, e := range c.edges {
		if e.Delay > 0 {
			hi += e.Delay
		}
	}
	if hi <= lo {
		return lo // every cycle here fits in lo already
	}
	// One flat scratch matrix serves every binary-search step: it is
	// re-seeded per candidate II, so the allocation is paid once per
	// component instead of once per feasibility test.
	scratch := make([]int64, c.n*c.n)
	if feasibleII(c.n, c.edges, lo, scratch) {
		return lo
	}
	lo++
	for lo < hi {
		mid := (lo + hi) / 2
		if feasibleII(c.n, c.edges, mid, scratch) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// feasibleII reports whether no dependence cycle of g has positive
// weight under edge weight (Delay - II*Dist); the whole-graph reference
// for the per-component search in RecMII. dist is an n*n scratch matrix
// (row-major) that is fully overwritten.
func (g *Graph) feasibleII(ii int, dist []int64) bool {
	return feasibleII(len(g.Nodes), g.Edges, ii, dist)
}

func feasibleII(n int, edges []Edge, ii int, dist []int64) bool {
	const neg = math.MinInt64 / 4
	dist = dist[:n*n]
	for i := range dist {
		dist[i] = neg
	}
	for _, e := range edges {
		w := int64(e.Delay) - int64(ii)*int64(e.Dist)
		if w > dist[e.From*n+e.To] {
			dist[e.From*n+e.To] = w
		}
	}
	for k := 0; k < n; k++ {
		dk := dist[k*n : k*n+n]
		for i := 0; i < n; i++ {
			dik := dist[i*n+k]
			if dik == neg {
				continue
			}
			di := dist[i*n : i*n+n]
			for j := 0; j < n; j++ {
				if dk[j] == neg {
					continue
				}
				if v := dik + dk[j]; v > di[j] {
					di[j] = v
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if dist[i*n+i] > 0 {
			return false
		}
	}
	return true
}

// UsageCounter abstracts the machine information ResMII needs: how many
// times alternative a of (source) operation op uses resource r, and the
// machine's resource and alternative counts.
type UsageCounter interface {
	NumResources() int
	NumAlts(op int) int
	Uses(op, alt, resource int) int
}

// UsageFiller is an optional extension of UsageCounter: fill a
// per-resource usage-count vector for (op, alt) in one pass over the
// usage list instead of one Uses probe per resource. ResMII detects it
// by type assertion, so counters without it still work.
type UsageFiller interface {
	FillUses(op, alt int, us []int)
}

// ResMII returns the resource-constrained minimum initiation interval: for
// every resource, the usages the loop body needs per iteration must fit in
// II cycles of that resource. Following Rau's bin-packing estimate,
// operations with alternatives are assigned greedily to the alternative
// that minimizes the maximum resource load (so three loads over two
// memory ports count 2+1, not 1.5 each).
func (g *Graph) ResMII(uc UsageCounter) int {
	nr := uc.NumResources()
	load := make([]int, nr)
	us := make([]int, nr)
	best := make([]int, nr)
	filler, _ := uc.(UsageFiller)
	altUses := func(op, alt int) {
		if filler != nil {
			filler.FillUses(op, alt, us)
			return
		}
		for r := 0; r < nr; r++ {
			us[r] = uc.Uses(op, alt, r)
		}
	}
	maxAfter := func(us []int) int {
		m := 0
		for r, u := range us {
			if l := load[r] + u; l > m {
				m = l
			}
		}
		return m
	}
	for _, node := range g.Nodes {
		na := uc.NumAlts(node.Op)
		bestMax := math.MaxInt32
		for i := range best {
			best[i] = 0
		}
		for a := 0; a < na; a++ {
			altUses(node.Op, a)
			if m := maxAfter(us); m < bestMax {
				bestMax = m
				copy(best, us)
			}
		}
		for r, u := range best {
			load[r] += u
		}
	}
	mii := 1
	for _, l := range load {
		if l > mii {
			mii = l
		}
	}
	return mii
}

// MII returns max(ResMII, RecMII).
func (g *Graph) MII(uc UsageCounter) int {
	res, rec := g.ResMII(uc), g.RecMII()
	if res > rec {
		return res
	}
	return rec
}
