package ddg

import (
	"math/rand"
	"testing"
)

// randomGraph builds a loop-shaped graph: a chain with random extra
// edges, self-recurrences and occasional back edges with distance.
func randomGraph(rng *rand.Rand, n int) *Graph {
	g := &Graph{Name: "rand"}
	for i := 0; i < n; i++ {
		g.Nodes = append(g.Nodes, Node{Name: "v", Op: 0})
	}
	for i := 1; i < n; i++ {
		from := rng.Intn(i)
		g.Edges = append(g.Edges, Edge{From: from, To: i, Delay: 1 + rng.Intn(20)})
	}
	extra := rng.Intn(2 * n)
	for i := 0; i < extra; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		e := Edge{From: a, To: b, Delay: rng.Intn(24)}
		if b <= a {
			e.Dist = 1 + rng.Intn(2) // backward or self: must cross an iteration
		} else if rng.Intn(4) == 0 {
			e.Dist = 1
		}
		g.Edges = append(g.Edges, e)
	}
	return g
}

// TestMIIScratchMatchesGraph pins MIIScratch's ResMII/RecMII to the
// Graph methods over many random graphs, with the scratch reused across
// graphs (the arena's usage pattern).
func TestMIIScratchMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	uc := fixedUsage{}
	var s MIIScratch
	for i := 0; i < 300; i++ {
		g := randomGraph(rng, 2+rng.Intn(30))
		if err := g.Validate(); err != nil {
			t.Fatalf("graph %d invalid: %v", i, err)
		}
		if got, want := s.RecMII(g), g.RecMII(); got != want {
			t.Fatalf("graph %d: scratch RecMII = %d, Graph.RecMII = %d", i, got, want)
		}
		if got, want := s.ResMII(g, uc), g.ResMII(uc); got != want {
			t.Fatalf("graph %d: scratch ResMII = %d, Graph.ResMII = %d", i, got, want)
		}
		if got, want := s.MII(g, uc), g.MII(uc); got != want {
			t.Fatalf("graph %d: scratch MII = %d, Graph.MII = %d", i, got, want)
		}
	}
}

// fixedUsage is a tiny UsageCounter: every op has two alternatives using
// one of two resources once.
type fixedUsage struct{}

func (fixedUsage) NumResources() int { return 2 }
func (fixedUsage) NumAlts(op int) int {
	return 2
}
func (fixedUsage) Uses(op, alt, resource int) int {
	if alt == resource {
		return 1
	}
	return 0
}

// TestMIIScratchZeroAllocSteadyState pins that a warmed scratch computes
// MII without allocating — the property the scheduler arena relies on.
func TestMIIScratchZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	graphs := make([]*Graph, 16)
	for i := range graphs {
		graphs[i] = randomGraph(rng, 4+rng.Intn(24))
	}
	var s MIIScratch
	uc := fixedUsage{}
	for _, g := range graphs {
		s.MII(g, uc) // warm every buffer across the shape mix
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, g := range graphs {
			s.MII(g, uc)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed MIIScratch.MII allocated %.1f times per run, want 0", allocs)
	}
}
