package ddg

// MIIScratch computes ResMII and RecMII through reusable buffers, so a
// scheduler arena can take the minimum-II computation off the per-loop
// allocation path. The zero value is ready to use; a scratch must not be
// shared between goroutines. Results are identical to Graph.ResMII and
// Graph.RecMII (pinned by the equivalence tests in this package) — only
// the allocation behaviour differs: after a warmup call on the largest
// loop shape, further calls allocate nothing.
type MIIScratch struct {
	// ResMII buffers (per-resource loads).
	load, us, best []int

	// RecMII buffers: adjacency CSR, iterative-Tarjan state, per-component
	// edge grouping and the Floyd–Warshall matrix.
	adjOff, adjDst, cursor []int32
	index, low, comp       []int32
	local                  []int32
	onStack                []bool
	stack                  []int32
	frameV, frameE         []int32
	compSize, compEdgeCnt  []int32
	compOff                []int32
	compEdges              []Edge
	hasEdge                []bool
	matrix                 []int64
}

func i32buf(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

func intbuf(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	return b[:n]
}

// MII returns max(ResMII, RecMII), like Graph.MII.
func (s *MIIScratch) MII(g *Graph, uc UsageCounter) int {
	res, rec := s.ResMII(g, uc), s.RecMII(g)
	if res > rec {
		return res
	}
	return rec
}

// ResMII is Graph.ResMII with the per-resource vectors drawn from the
// scratch instead of allocated per call.
func (s *MIIScratch) ResMII(g *Graph, uc UsageCounter) int {
	nr := uc.NumResources()
	s.load = intbuf(s.load, nr)
	s.us = intbuf(s.us, nr)
	s.best = intbuf(s.best, nr)
	load, us, best := s.load, s.us, s.best
	for i := range load {
		load[i] = 0
	}
	filler, _ := uc.(UsageFiller)
	for _, node := range g.Nodes {
		na := uc.NumAlts(node.Op)
		bestMax := int(^uint(0) >> 1)
		for i := range best {
			best[i] = 0
		}
		for a := 0; a < na; a++ {
			if filler != nil {
				filler.FillUses(node.Op, a, us)
			} else {
				for r := 0; r < nr; r++ {
					us[r] = uc.Uses(node.Op, a, r)
				}
			}
			m := 0
			for r, u := range us {
				if l := load[r] + u; l > m {
					m = l
				}
			}
			if m < bestMax {
				bestMax = m
				copy(best, us)
			}
		}
		for r, u := range best {
			load[r] += u
		}
	}
	mii := 1
	for _, l := range load {
		if l > mii {
			mii = l
		}
	}
	return mii
}

// RecMII is Graph.RecMII on reusable buffers: the SCC decomposition runs
// an iterative Tarjan (explicit DFS stack — no recursion, no closures),
// intra-component edges are grouped by a stable counting sort, and one
// grow-only matrix serves every component's feasibility search. The
// components are processed in the same order, with the same
// running-maximum threading, as the recursive implementation, so the
// result — and every feasibility probe — is identical.
func (s *MIIScratch) RecMII(g *Graph) int {
	hasCycleEdge := false
	for _, e := range g.Edges {
		if e.Dist > 0 {
			hasCycleEdge = true
			break
		}
	}
	if !hasCycleEdge {
		return 1
	}
	n := len(g.Nodes)

	// Adjacency CSR by source node.
	s.adjOff = i32buf(s.adjOff, n+1)
	s.adjDst = i32buf(s.adjDst, len(g.Edges))
	s.cursor = i32buf(s.cursor, n+1)
	adjOff, adjDst, cursor := s.adjOff, s.adjDst, s.cursor
	for i := range adjOff {
		adjOff[i] = 0
	}
	for _, e := range g.Edges {
		adjOff[e.From+1]++
	}
	for i := 0; i < n; i++ {
		adjOff[i+1] += adjOff[i]
	}
	copy(cursor, adjOff)
	for _, e := range g.Edges {
		adjDst[cursor[e.From]] = int32(e.To)
		cursor[e.From]++
	}

	nComp := s.sccs(n, adjOff, adjDst)

	// Local renumbering within each component, in node order (matching
	// Graph.cycleComponents), and intra-component edge counts.
	s.compSize = i32buf(s.compSize, nComp)
	s.compEdgeCnt = i32buf(s.compEdgeCnt, nComp)
	s.compOff = i32buf(s.compOff, nComp+1)
	s.local = i32buf(s.local, n)
	s.hasEdge = boolbuf(s.hasEdge, nComp)
	for c := 0; c < nComp; c++ {
		s.compSize[c] = 0
		s.compEdgeCnt[c] = 0
		s.hasEdge[c] = false
	}
	for v := 0; v < n; v++ {
		c := s.comp[v]
		s.local[v] = s.compSize[c]
		s.compSize[c]++
	}
	for _, e := range g.Edges {
		if c := s.comp[e.From]; c == s.comp[e.To] {
			s.compEdgeCnt[c]++
			s.hasEdge[c] = true
		}
	}
	s.compOff[0] = 0
	for c := 0; c < nComp; c++ {
		s.compOff[c+1] = s.compOff[c] + s.compEdgeCnt[c]
	}
	total := int(s.compOff[nComp])
	if cap(s.compEdges) < total {
		s.compEdges = make([]Edge, total)
	}
	s.compEdges = s.compEdges[:total]
	copy(s.cursor[:nComp], s.compOff[:nComp])
	for _, e := range g.Edges {
		c := s.comp[e.From]
		if c != s.comp[e.To] {
			continue
		}
		s.compEdges[s.cursor[c]] = Edge{
			From: int(s.local[e.From]), To: int(s.local[e.To]), Delay: e.Delay, Dist: e.Dist,
		}
		s.cursor[c]++
	}

	mii := 1
	for c := 0; c < nComp; c++ {
		cn := int(s.compSize[c])
		if cn < 2 && !s.hasEdge[c] {
			continue
		}
		edges := s.compEdges[s.compOff[c]:s.compOff[c+1]]
		hi := 1
		for _, e := range edges {
			if e.Delay > 0 {
				hi += e.Delay
			}
		}
		if hi <= mii {
			continue // every cycle here fits in the running maximum already
		}
		if cap(s.matrix) < cn*cn {
			s.matrix = make([]int64, cn*cn)
		}
		if feasibleII(cn, edges, mii, s.matrix[:cn*cn]) {
			continue
		}
		lo := mii + 1
		for lo < hi {
			mid := (lo + hi) / 2
			if feasibleII(cn, edges, mid, s.matrix[:cn*cn]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		mii = lo
	}
	return mii
}

func boolbuf(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	return b[:n]
}

// sccs runs Tarjan's algorithm with an explicit DFS stack, filling
// s.comp[v] with component ids, and returns the component count.
// Component ids are assigned in the same order as the recursive
// implementation (completion order of Tarjan roots).
func (s *MIIScratch) sccs(n int, adjOff, adjDst []int32) int {
	s.index = i32buf(s.index, n)
	s.low = i32buf(s.low, n)
	s.comp = i32buf(s.comp, n)
	s.onStack = boolbuf(s.onStack, n)
	idx, low, comp := s.index, s.low, s.comp
	for i := 0; i < n; i++ {
		idx[i], comp[i], s.onStack[i] = -1, -1, false
	}
	stack := s.stack[:0]
	fv := s.frameV[:0]
	fe := s.frameE[:0]
	var next, nComp int32
	for root := 0; root < n; root++ {
		if idx[root] >= 0 {
			continue
		}
		idx[root], low[root] = next, next
		next++
		stack = append(stack, int32(root))
		s.onStack[root] = true
		fv = append(fv, int32(root))
		fe = append(fe, adjOff[root])
		for len(fv) > 0 {
			v := fv[len(fv)-1]
			e := fe[len(fe)-1]
			if e < adjOff[v+1] {
				fe[len(fe)-1] = e + 1
				w := adjDst[e]
				if idx[w] < 0 {
					idx[w], low[w] = next, next
					next++
					stack = append(stack, w)
					s.onStack[w] = true
					fv = append(fv, w)
					fe = append(fe, adjOff[w])
				} else if s.onStack[w] && idx[w] < low[v] {
					low[v] = idx[w]
				}
				continue
			}
			fv = fv[:len(fv)-1]
			fe = fe[:len(fe)-1]
			if len(fv) > 0 {
				if p := fv[len(fv)-1]; low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == idx[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					s.onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	s.stack, s.frameV, s.frameE = stack[:0], fv[:0], fe[:0]
	return int(nComp)
}
