package ddg

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/machines"
)

// chainGraph builds a linear dependence chain a -> b -> c ... with the
// given delays.
func chainGraph(delays ...int) *Graph {
	g := &Graph{Name: "chain"}
	for i := 0; i <= len(delays); i++ {
		g.Nodes = append(g.Nodes, Node{Name: string(rune('a' + i)), Op: 0})
	}
	for i, d := range delays {
		g.Edges = append(g.Edges, Edge{From: i, To: i + 1, Delay: d})
	}
	return g
}

func TestValidate(t *testing.T) {
	g := chainGraph(1, 2)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	// Zero-distance cycle.
	g.Edges = append(g.Edges, Edge{From: 2, To: 0, Delay: 1, Dist: 0})
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "zero-distance") {
		t.Fatalf("zero-distance cycle not rejected: %v", err)
	}
	// Same cycle with distance 1 is fine.
	g.Edges[len(g.Edges)-1].Dist = 1
	if err := g.Validate(); err != nil {
		t.Fatalf("distance-1 cycle rejected: %v", err)
	}
	// Bad indices and negative distance.
	bad := chainGraph(1)
	bad.Edges[0].To = 99
	if bad.Validate() == nil {
		t.Errorf("out-of-range edge accepted")
	}
	bad2 := chainGraph(1)
	bad2.Edges[0].Dist = -1
	if bad2.Validate() == nil {
		t.Errorf("negative distance accepted")
	}
}

func TestRecMIIAcyclic(t *testing.T) {
	g := chainGraph(5, 7, 3)
	if got := g.RecMII(); got != 1 {
		t.Errorf("acyclic RecMII = %d, want 1", got)
	}
}

func TestRecMIISimpleRecurrence(t *testing.T) {
	// Self-recurrence: x -> x with delay 6, dist 1: RecMII = 6.
	g := &Graph{Name: "rec", Nodes: []Node{{Name: "x"}}}
	g.Edges = []Edge{{From: 0, To: 0, Delay: 6, Dist: 1}}
	if got := g.RecMII(); got != 6 {
		t.Errorf("RecMII = %d, want 6", got)
	}
	// Two-node recurrence with total delay 9, dist 2: ceil(9/2) = 5.
	g2 := &Graph{Name: "rec2", Nodes: []Node{{Name: "x"}, {Name: "y"}}}
	g2.Edges = []Edge{
		{From: 0, To: 1, Delay: 4, Dist: 0},
		{From: 1, To: 0, Delay: 5, Dist: 2},
	}
	if got := g2.RecMII(); got != 5 {
		t.Errorf("RecMII = %d, want 5", got)
	}
}

func TestRecMIIMultipleCycles(t *testing.T) {
	// Two recurrences; the tighter one dominates.
	g := &Graph{Name: "multi", Nodes: make([]Node, 4)}
	g.Edges = []Edge{
		{From: 0, To: 1, Delay: 2},
		{From: 1, To: 0, Delay: 2, Dist: 1}, // cycle delay 4 / dist 1 -> 4
		{From: 2, To: 3, Delay: 10},
		{From: 3, To: 2, Delay: 10, Dist: 4}, // cycle delay 20 / dist 4 -> 5
	}
	if got := g.RecMII(); got != 5 {
		t.Errorf("RecMII = %d, want 5", got)
	}
}

func TestResMIICydra(t *testing.T) {
	m := machines.Cydra5()
	uc := MachineUsage{M: m}
	ldw := m.OpIndex("ld.w")
	fadd := m.OpIndex("fadd.s")
	if ldw < 0 || fadd < 0 {
		t.Fatal("ops missing")
	}
	// Four ld.w ops: each holds a memory bank 2 cycles, two banks
	// available (alternatives) -> balanced assignment gives 2 loads per
	// bank, ResMII = 4.
	g := &Graph{Name: "mem", Nodes: []Node{
		{Op: ldw}, {Op: ldw}, {Op: ldw}, {Op: ldw},
	}}
	if got := g.ResMII(uc); got != 4 {
		t.Errorf("ResMII = %d, want 4", got)
	}
	// Five ld.w: the greedy bin-pack charges 3 to one bank: ResMII = 6
	// (the fractional bound would claim 5).
	g5 := &Graph{Name: "mem5", Nodes: []Node{
		{Op: ldw}, {Op: ldw}, {Op: ldw}, {Op: ldw}, {Op: ldw},
	}}
	if got := g5.ResMII(uc); got != 6 {
		t.Errorf("ResMII(5 loads) = %d, want 6", got)
	}
	// Six fadd.s: single adder, each stage used once -> ResMII = 6.
	g2 := &Graph{Name: "fa", Nodes: make([]Node, 6)}
	for i := range g2.Nodes {
		g2.Nodes[i].Op = fadd
	}
	if got := g2.ResMII(uc); got != 6 {
		t.Errorf("ResMII = %d, want 6", got)
	}
	// MII takes the max of both bounds.
	g2.Edges = []Edge{{From: 0, To: 0, Delay: 13, Dist: 1}}
	if got := g2.MII(uc); got != 13 {
		t.Errorf("MII = %d, want 13 (RecMII dominates)", got)
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	m := machines.Cydra5()
	src := `
loop dotprod
# a[i]*b[i] summed
node addr aadd
node lda  ld.w
node ldb  ld.w
node mul  fmul.s
node acc  fadd.s
node br   brtop
edge addr lda delay 2
edge addr ldb delay 2
edge lda mul delay 22
edge ldb mul delay 22
edge mul acc delay 7
edge acc acc delay 6 dist 1
edge addr addr delay 2 dist 1
edge acc br delay 1
`
	g, err := Parse(src, m)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(g.Nodes) != 6 || len(g.Edges) != 8 {
		t.Fatalf("parsed %d nodes %d edges", len(g.Nodes), len(g.Edges))
	}
	if g.RecMII() != 6 {
		t.Errorf("dotprod RecMII = %d, want 6 (acc self-recurrence)", g.RecMII())
	}
	out := Print(g, m)
	g2, err := Parse(out, m)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if len(g2.Nodes) != len(g.Nodes) || len(g2.Edges) != len(g.Edges) {
		t.Fatalf("round trip changed graph")
	}
	if g2.RecMII() != g.RecMII() {
		t.Errorf("round trip changed RecMII")
	}
}

func TestParseErrors(t *testing.T) {
	m := machines.Cydra5()
	cases := []struct{ name, src, want string }{
		{"no loop", "node a iadd\n", "missing 'loop"},
		{"bad op", "loop l\nnode a zzz\n", "unknown operation"},
		{"dup node", "loop l\nnode a iadd\nnode a iadd\n", "duplicate node"},
		{"bad edge node", "loop l\nnode a iadd\nedge a b delay 1\n", "unknown node"},
		{"bad delay", "loop l\nnode a iadd\nedge a a delay x\n", "bad delay"},
		{"bad directive", "loop l\nfoo\n", "unknown directive"},
		{"trailing", "loop l\nnode a iadd\nedge a a delay 1 bogus\n", "trailing"},
		{"zero cycle", "loop l\nnode a iadd\nnode b iadd\nedge a b delay 1\nedge b a delay 1\n", "zero-distance"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src, m); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
}

// Property: RecMII is exactly the max over explicit simple cycles for
// randomly generated two-block recurrence structures, and feasibility is
// monotone in II.
func TestQuickRecMIIMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		g := &Graph{Name: "q", Nodes: make([]Node, n)}
		// Random forward edges.
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					g.Edges = append(g.Edges, Edge{From: i, To: j, Delay: rng.Intn(10)})
				}
			}
		}
		// A few back edges with positive distance.
		for k := 0; k < 1+rng.Intn(3); k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i < j {
				i, j = j, i
			}
			g.Edges = append(g.Edges, Edge{From: i, To: j, Delay: rng.Intn(12), Dist: 1 + rng.Intn(3)})
		}
		if g.Validate() != nil {
			return true // skip rare invalid shapes
		}
		mii := g.RecMII()
		if mii < 1 {
			return false
		}
		scratch := make([]int64, len(g.Nodes)*len(g.Nodes))
		if !g.feasibleII(mii, scratch) {
			return false
		}
		if mii > 1 && g.feasibleII(mii-1, scratch) {
			return false
		}
		return g.feasibleII(mii+7, scratch)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
