package ddg

import "repro/internal/resmodel"

// MachineUsage adapts a machine description to the UsageCounter interface
// used by ResMII.
type MachineUsage struct {
	M *resmodel.Machine
}

// NumResources implements UsageCounter.
func (mu MachineUsage) NumResources() int { return len(mu.M.Resources) }

// NumAlts implements UsageCounter.
func (mu MachineUsage) NumAlts(op int) int { return len(mu.M.Ops[op].Alts) }

// Uses implements UsageCounter.
func (mu MachineUsage) Uses(op, alt, resource int) int {
	n := 0
	for _, u := range mu.M.Ops[op].Alts[alt].Uses {
		if u.Resource == resource {
			n++
		}
	}
	return n
}

// FillUses implements UsageFiller: one pass over the alternative's usage
// list instead of one Uses scan per resource.
func (mu MachineUsage) FillUses(op, alt int, us []int) {
	for i := range us {
		us[i] = 0
	}
	for _, u := range mu.M.Ops[op].Alts[alt].Uses {
		us[u.Resource]++
	}
}

var (
	_ UsageCounter = MachineUsage{}
	_ UsageFiller  = MachineUsage{}
)
