package ddg

import (
	"testing"

	"repro/internal/machines"
)

// FuzzParseDDG: the loop parser never panics, and accepted graphs
// round-trip through Print with identical structure and RecMII.
func FuzzParseDDG(f *testing.F) {
	f.Add("loop l\nnode a iadd\nnode b fmul.s\nedge a b delay 1\n")
	f.Add("loop l\nnode a fadd.s\nedge a a delay 6 dist 1\n")
	f.Add("loop l\n# empty body\n")
	f.Add("edge x y delay")
	f.Add("loop l\nnode a ld.w\nnode b st.w\nedge a b delay 22\nedge b a delay 1 dist 2\n")
	m := machines.Cydra5()
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src, m)
		if err != nil {
			return
		}
		out := Print(g, m)
		g2, err := Parse(out, m)
		if err != nil {
			t.Fatalf("accepted graph failed to re-parse:\n%s\nerror: %v", out, err)
		}
		if len(g2.Nodes) != len(g.Nodes) || len(g2.Edges) != len(g.Edges) {
			t.Fatalf("round trip changed the graph")
		}
		if g.RecMII() != g2.RecMII() {
			t.Fatalf("round trip changed RecMII")
		}
	})
}
