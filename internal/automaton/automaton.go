// Package automaton implements the finite-state-automaton approach to
// contention detection that the paper compares against (Section 2):
// Proebsting & Fraser's forward automaton recognizing all contention-free
// schedules, and the time-reversed automaton of Bala & Rubin's
// forward/reverse pair.
//
// A state is the residual resource commitment of the current partial
// schedule — for each resource, the set of future cycles already reserved
// relative to "now". Transitions either issue an operation in the current
// cycle (defined only when contention-free) or advance to the next cycle
// (shifting every commitment down by one). The automaton answers a
// contention query with a single table lookup, but supports only
// cycle-ordered scheduling directly; supporting unrestricted schedulers
// requires storing and repairing per-cycle states, which is the overhead
// the paper's reduced reservation tables avoid.
package automaton

import (
	"fmt"
	"math/bits"

	"repro/internal/resmodel"
)

// maxSpanBits bounds reservation-table spans so one uint64 per resource
// encodes a state.
const maxSpanBits = 64

// Automaton is a contention-recognizing finite-state machine for one
// machine description.
type Automaton struct {
	e       *resmodel.Expanded
	reverse bool
	span    int
	// tables[op][r] is the commitment mask of op's reservation table for
	// resource r (bit c = resource r used c cycles from issue).
	tables [][]uint64
	// issue[state*numOps + op] is the successor after issuing op in the
	// current cycle, or -1 on contention. advance[state] is the successor
	// after a cycle boundary.
	issue   []int32
	advance []int32
	numOps  int
}

// Limit bounds automaton construction; machines whose automata exceed it
// (as the paper notes, "a potential problem of this approach is the size
// of these automata") fail with ErrTooLarge.
type Limit struct {
	MaxStates int
}

// DefaultLimit allows a million states.
func DefaultLimit() Limit { return Limit{MaxStates: 1 << 20} }

// ErrTooLarge reports an automaton blowing past the state limit.
type ErrTooLarge struct {
	States int
}

func (e *ErrTooLarge) Error() string {
	return fmt.Sprintf("automaton: state count exceeds limit (%d states reached)", e.States)
}

// BuildForward constructs the forward automaton of the machine.
func BuildForward(e *resmodel.Expanded, lim Limit) (*Automaton, error) {
	return build(e, false, lim)
}

// BuildReverse constructs the automaton over time-reversed reservation
// tables (Bala & Rubin's reverse automaton, used to check whether an
// operation can be inserted before already-scheduled ones).
func BuildReverse(e *resmodel.Expanded, lim Limit) (*Automaton, error) {
	return build(e, true, lim)
}

func build(e *resmodel.Expanded, reverse bool, lim Limit) (*Automaton, error) {
	span := e.MaxSpan()
	if span > maxSpanBits {
		return nil, fmt.Errorf("automaton: reservation-table span %d exceeds %d cycles", span, maxSpanBits)
	}
	if lim.MaxStates <= 0 {
		lim = DefaultLimit()
	}
	a := &Automaton{e: e, reverse: reverse, span: span, numOps: len(e.Ops)}
	a.tables = make([][]uint64, len(e.Ops))
	for oi, o := range e.Ops {
		masks := make([]uint64, len(e.Resources))
		os := o.Table.Span()
		for _, u := range o.Table.Uses {
			c := u.Cycle
			if reverse {
				c = os - 1 - u.Cycle
			}
			masks[u.Resource] |= 1 << uint(c)
		}
		a.tables[oi] = masks
	}

	// BFS over canonical states.
	nRes := len(e.Resources)
	key := func(st []uint64) string {
		b := make([]byte, 0, nRes*8)
		for _, w := range st {
			for s := 0; s < 64; s += 8 {
				b = append(b, byte(w>>uint(s)))
			}
		}
		return string(b)
	}
	var states [][]uint64
	index := map[string]int32{}
	intern := func(st []uint64) int32 {
		k := key(st)
		if i, ok := index[k]; ok {
			return i
		}
		i := int32(len(states))
		index[k] = i
		states = append(states, st)
		return i
	}
	empty := make([]uint64, nRes)
	intern(empty)

	for si := 0; si < len(states); si++ {
		if len(states) > lim.MaxStates {
			return nil, &ErrTooLarge{States: len(states)}
		}
		st := states[si]
		// Issue transitions.
		for op := 0; op < a.numOps; op++ {
			masks := a.tables[op]
			conflict := false
			for r := 0; r < nRes; r++ {
				if st[r]&masks[r] != 0 {
					conflict = true
					break
				}
			}
			if conflict {
				a.issue = append(a.issue, -1)
				continue
			}
			ns := make([]uint64, nRes)
			for r := 0; r < nRes; r++ {
				ns[r] = st[r] | masks[r]
			}
			a.issue = append(a.issue, intern(ns))
		}
		// Advance transition.
		ns := make([]uint64, nRes)
		for r := 0; r < nRes; r++ {
			ns[r] = st[r] >> 1
		}
		a.advance = append(a.advance, intern(ns))
	}
	return a, nil
}

// NumStates returns the number of automaton states.
func (a *Automaton) NumStates() int { return len(a.advance) }

// NumOps returns the number of operations the automaton recognizes.
func (a *Automaton) NumOps() int { return a.numOps }

// BitsPerState returns the storage needed to name one state (the paper's
// comparison encodes each factored state in 8 bits; an unfactored
// automaton needs ceil(log2(numStates)) bits).
func (a *Automaton) BitsPerState() int {
	if n := a.NumStates(); n > 1 {
		return bits.Len(uint(n - 1))
	}
	return 1
}

// Walker traverses the automaton along a schedule, one cycle at a time.
type Walker struct {
	a   *Automaton
	cur int32
}

// Walk returns a walker positioned at the empty-schedule state.
func (a *Automaton) Walk() *Walker { return &Walker{a: a} }

// CanIssue reports whether op can issue in the current cycle: a single
// table lookup.
func (w *Walker) CanIssue(op int) bool {
	return w.a.issue[int(w.cur)*w.a.numOps+op] >= 0
}

// Issue issues op in the current cycle; it reports false (and stays put)
// on contention.
func (w *Walker) Issue(op int) bool {
	n := w.a.issue[int(w.cur)*w.a.numOps+op]
	if n < 0 {
		return false
	}
	w.cur = n
	return true
}

// Advance moves to the next cycle.
func (w *Walker) Advance() { w.cur = w.a.advance[w.cur] }

// State returns the current state id (for Bala–Rubin-style per-cycle
// state storage).
func (w *Walker) State() int32 { return w.cur }

// SetState repositions the walker (restoring a stored per-cycle state).
func (w *Walker) SetState(s int32) { w.cur = s }
