package automaton

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machines"
	"repro/internal/query"
	"repro/internal/resmodel"
)

func newPair(t testing.TB, e *resmodel.Expanded) *PairModule {
	t.Helper()
	p, err := NewPairModule(e, DefaultLimit())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPairModuleBasics(t *testing.T) {
	e := machines.Example().Expand()
	p := newPair(t, e)
	a, b := e.OpIndex("A"), e.OpIndex("B")

	if !p.Check(a, 5) {
		t.Fatal("empty schedule rejects A@5")
	}
	p.Assign(a, 5, 1)
	// B at 6 conflicts (1 in F[B][A]); B at 5 and 7 do not.
	if p.Check(b, 6) {
		t.Error("B@6 accepted next to A@5")
	}
	if !p.Check(b, 5) || !p.Check(b, 7) {
		t.Error("B@5 or B@7 rejected")
	}
	// The unrestricted model: insert BEFORE the existing op. A@5 means B
	// cannot start at cycle 4 (its r1@0 meets A's r1@1? B@4: B uses r1 at
	// 4, A uses r1 at 6 — no; F[B][A]=1 means B@6 bad. F[A][B]=-1 means
	// A 1 before B: A@5 with B@6. For insertion before: B@4 has A issued
	// 1 cycle after B -> -1 in F[B][A]? Check directly:
	want := !overlapsAt(e, b, 4, a, 5)
	if p.Check(b, 4) != want {
		t.Errorf("B@4 = %v, want %v", p.Check(b, 4), want)
	}
	p.Free(a, 5, 1)
	if !p.Check(b, 6) {
		t.Error("B@6 rejected after Free")
	}
}

func overlapsAt(e *resmodel.Expanded, op1, t1, op2, t2 int) bool {
	return tablesOverlap(e.Ops[op1].Table, t1, e.Ops[op2].Table, t2)
}

// TestPairModuleNestedConflict: the case a naive forward/reverse state
// lookup misses — a short op nested inside a long op's span — must be
// caught by the propagation step.
func TestPairModuleNestedConflict(t *testing.T) {
	b := resmodel.NewBuilder("nested")
	b.Resources("issue", "stage")
	b.Op("long", 8).Use("issue", 0).Use("stage", 6) // uses stage late
	b.Op("short", 1).Use("issue", 0).Use("stage", 1)
	e := b.Build().Expand()
	p := newPair(t, e)
	long, short := e.OpIndex("long"), e.OpIndex("short")

	// short at cycle 7 uses stage at 8... place short first, then try
	// long at 2 whose stage usage lands at 8: conflict, and short@7 is
	// strictly inside [2, 2+span(long)) with a later start.
	p.Assign(short, 7, 1)
	if p.Check(long, 2) {
		t.Fatal("nested conflict missed: long@2 stage@8 vs short@7 stage@8")
	}
	if !p.Check(long, 3) {
		t.Fatal("long@3 should fit (stage at 9)")
	}
	// Insert the long op BEFORE the short one in time with no conflict.
	if !p.Check(long, 0) {
		t.Fatal("long@0 should fit (stage at 6)")
	}
}

// Property: PairModule answers every check/assign/free workload exactly
// like the discrete reservation-table module, over random machines and
// arbitrary (unrestricted) insertion orders.
func TestQuickPairModuleVsDiscrete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		p, err := NewPairModule(e, DefaultLimit())
		if err != nil {
			return false
		}
		d := query.NewDiscrete(e, 0)
		type placed struct{ op, cycle, id int }
		var live []placed
		nextID := 1
		for step := 0; step < 120; step++ {
			op := rng.Intn(len(e.Ops))
			cycle := rng.Intn(25)
			switch rng.Intn(3) {
			case 0:
				if p.Check(op, cycle) != d.Check(op, cycle) {
					return false
				}
			case 1:
				if d.Check(op, cycle) {
					// keep both consistent: only assign when free
					p.Assign(op, cycle, nextID)
					d.Assign(op, cycle, nextID)
					live = append(live, placed{op, cycle, nextID})
					nextID++
				}
			case 2:
				if len(live) > 0 {
					i := rng.Intn(len(live))
					pl := live[i]
					live = append(live[:i], live[i+1:]...)
					p.Free(pl.op, pl.cycle, pl.id)
					d.Free(pl.op, pl.cycle, pl.id)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: AssignFree evicts exactly the overlapping instances, matching
// the discrete module.
func TestQuickPairAssignFreeVsDiscrete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		p, err := NewPairModule(e, DefaultLimit())
		if err != nil {
			return false
		}
		d := query.NewDiscrete(e, 0)
		nextID := 1
		for step := 0; step < 50; step++ {
			op := rng.Intn(len(e.Ops))
			cycle := rng.Intn(15)
			id := nextID
			nextID++
			evP := p.AssignFree(op, cycle, id)
			evD := d.AssignFree(op, cycle, id)
			if len(evP) != len(evD) {
				return false
			}
			got := map[int]bool{}
			for _, x := range evP {
				got[x] = true
			}
			for _, x := range evD {
				if !got[x] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPairModuleStatesStoredGrows(t *testing.T) {
	e := machines.Example().Expand()
	p := newPair(t, e)
	before := p.StatesStored()
	p.Assign(e.OpIndex("B"), 90, 1)
	if p.StatesStored() <= before {
		t.Errorf("StatesStored did not grow: %d -> %d", before, p.StatesStored())
	}
	p.Reset()
	if p.Counters().CheckCalls != 0 || len(p.inst) != 0 {
		t.Errorf("Reset incomplete")
	}
	if !p.Check(e.OpIndex("B"), 90) {
		t.Errorf("after Reset, B@90 rejected")
	}
}

func TestPairModuleCheckWithAlt(t *testing.T) {
	b := resmodel.NewBuilder("alts")
	b.Resources("p0", "p1")
	b.Op("add", 1).Use("p0", 0).Alt().Use("p1", 0)
	e := b.Build().Expand()
	p := newPair(t, e)
	op, ok := p.CheckWithAlt(0, 0)
	if !ok || op != 0 {
		t.Fatalf("CheckWithAlt = (%d, %v)", op, ok)
	}
	p.Assign(0, 0, 1)
	op, ok = p.CheckWithAlt(0, 0)
	if !ok || e.Ops[op].Name != "add.1" {
		t.Fatalf("CheckWithAlt with p0 busy = (%d, %v)", op, ok)
	}
}
