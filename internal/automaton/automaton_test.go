package automaton

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/query"
	"repro/internal/resmodel"
)

func TestExampleMachineAutomaton(t *testing.T) {
	e := machines.Example().Expand()
	a, err := BuildForward(e, DefaultLimit())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumStates() < 3 {
		t.Fatalf("suspiciously few states: %d", a.NumStates())
	}
	w := a.Walk()
	aOp, bOp := e.OpIndex("A"), e.OpIndex("B")
	if !w.Issue(aOp) {
		t.Fatalf("cannot issue A at cycle 0 of empty schedule")
	}
	// A self-conflicts at distance 0.
	if w.CanIssue(aOp) {
		t.Errorf("A can issue twice in one cycle")
	}
	w.Advance()
	// B one cycle after A is forbidden (1 in F[B][A]).
	if w.CanIssue(bOp) {
		t.Errorf("B can issue 1 cycle after A")
	}
	w.Advance()
	if !w.Issue(bOp) {
		t.Errorf("B cannot issue 2 cycles after A")
	}
}

// TestAgainstQueryModule: cycle-ordered issue decisions of the automaton
// agree with the reservation-table query module on random machines.
func TestQuickAgainstQueryModule(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := resmodel.Random(rng, resmodel.DefaultRandomConfig()).Expand()
		a, err := BuildForward(e, DefaultLimit())
		if err != nil {
			// A random machine can legitimately exceed the state limit;
			// the agreement property is conditional on a built automaton.
			return true
		}
		mod := query.NewDiscrete(e, 0)
		w := a.Walk()
		cycle := 0
		id := 0
		for step := 0; step < 200; step++ {
			if rng.Intn(3) == 0 {
				w.Advance()
				cycle++
				continue
			}
			op := rng.Intn(len(e.Ops))
			want := mod.Check(op, cycle)
			if w.CanIssue(op) != want {
				return false
			}
			if want && rng.Intn(2) == 0 {
				if !w.Issue(op) {
					return false
				}
				mod.Assign(op, cycle, id)
				id++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestReverseAutomaton: the reverse automaton recognizes the time-reversed
// schedule. Issuing ops in reverse cycle order with reversed tables must
// accept exactly the schedules the forward automaton accepts forwards.
func TestReverseAutomaton(t *testing.T) {
	e := machines.Example().Expand()
	fwd, err := BuildForward(e, DefaultLimit())
	if err != nil {
		t.Fatal(err)
	}
	rev, err := BuildReverse(e, DefaultLimit())
	if err != nil {
		t.Fatal(err)
	}
	// Schedule: A@0, B@2 — accepted forwards (tested above). Reverse
	// order: the reversed table of each op is anchored at its own span, so
	// replay ops by descending (time + span) completion order.
	type placed struct{ op, time int }
	sched := []placed{{e.OpIndex("A"), 0}, {e.OpIndex("B"), 2}}
	// Forward acceptance.
	wf := fwd.Walk()
	cyc := 0
	for _, p := range sched {
		for cyc < p.time {
			wf.Advance()
			cyc++
		}
		if !wf.Issue(p.op) {
			t.Fatalf("forward automaton rejected valid schedule")
		}
	}
	// Reverse acceptance: issue at reversed issue times
	// rt = maxEnd - (time + span(op)).
	maxEnd := 0
	for _, p := range sched {
		if end := p.time + e.Ops[p.op].Table.Span(); end > maxEnd {
			maxEnd = end
		}
	}
	wr := rev.Walk()
	rcyc := 0
	// Order by reversed time.
	order := []int{1, 0}
	if maxEnd-(sched[0].time+e.Ops[sched[0].op].Table.Span()) <
		maxEnd-(sched[1].time+e.Ops[sched[1].op].Table.Span()) {
		order = []int{0, 1}
	}
	for _, i := range order {
		p := sched[i]
		rt := maxEnd - (p.time + e.Ops[p.op].Table.Span())
		for rcyc < rt {
			wr.Advance()
			rcyc++
		}
		if !wr.Issue(p.op) {
			t.Fatalf("reverse automaton rejected valid schedule (op %d at reversed cycle %d)", p.op, rt)
		}
	}
}

func TestMIPSAutomatonSize(t *testing.T) {
	// The automaton is built over the reduced description: it accepts
	// exactly the same schedules (same forbidden-latency matrix) and is
	// drastically smaller — the full original description blows past a
	// million states, which is the size problem the paper's Section 2
	// discusses. Proebsting & Fraser report 6175 states for their
	// (simpler) MIPS model; ours lands within an order of magnitude.
	e := machines.MIPS().Expand()
	red := core.Reduce(e, core.Objective{Kind: core.ResUses})
	a, err := BuildForward(red.ReducedClass, DefaultLimit())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumStates() < 1000 || a.NumStates() > 1<<20 {
		t.Errorf("MIPS reduced automaton states = %d, want ~6e4", a.NumStates())
	}
	if a.BitsPerState() < 7 {
		t.Errorf("BitsPerState = %d", a.BitsPerState())
	}
	t.Logf("MIPS forward automaton (reduced description): %d states, %d bits/state",
		a.NumStates(), a.BitsPerState())
	// The original description's automaton exceeds any practical limit.
	if _, err := BuildForward(e, Limit{MaxStates: 1 << 17}); err == nil {
		t.Errorf("original-description automaton unexpectedly fit in 131072 states")
	}
}

func TestSpanTooLarge(t *testing.T) {
	b := resmodel.NewBuilder("wide")
	b.Resources("r")
	b.Op("x", 1).Use("r", 0).Use("r", 70)
	if _, err := BuildForward(b.Build().Expand(), DefaultLimit()); err == nil {
		t.Fatalf("span 71 accepted")
	}
}

func TestStateLimit(t *testing.T) {
	e := machines.MIPS().Expand()
	_, err := BuildForward(e, Limit{MaxStates: 4})
	if _, ok := err.(*ErrTooLarge); !ok {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestWalkerStateSaveRestore(t *testing.T) {
	e := machines.Example().Expand()
	a, _ := BuildForward(e, DefaultLimit())
	w := a.Walk()
	w.Issue(e.OpIndex("A"))
	s := w.State()
	w.Advance()
	w.Advance()
	w.SetState(s)
	if w.CanIssue(e.OpIndex("A")) {
		t.Errorf("restored state lost A's reservation")
	}
}
