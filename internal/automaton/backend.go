package automaton

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/resmodel"
)

// The automaton package registers the FSA pair module as the "fsa"
// query backend. Registration-by-init keeps the package dependency
// one-way — automaton imports query, never the reverse — while letting
// query.Select construct FSA modules by name. Any program that links
// the scheduler (which uses this package's walkers) gets the backend
// for free.
func init() {
	query.RegisterBackend("fsa", func(e *resmodel.Expanded, o query.BackendOpts) (query.Module, error) {
		if o.II != 0 {
			return nil, fmt.Errorf("automaton: fsa backend supports linear schedules only (ii=%d)", o.II)
		}
		lim := DefaultLimit()
		if o.MaxStates != 0 {
			lim.MaxStates = o.MaxStates
		}
		return NewPairModule(e, lim)
	})
}
